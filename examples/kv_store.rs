//! A concurrent key-value cache on the HP++ chaining hash map.
//!
//! Run with: `cargo run --release --example kv_store`
//!
//! Simulates a session cache: lookups dominate, entries churn via
//! insert/remove, and memory must stay bounded even under constant
//! replacement — the workload class behind the paper's HashMap rows
//! (Fig. 8/11).

use std::sync::atomic::{AtomicU64, Ordering::Relaxed};
use std::time::Instant;

use ds::hpp::HashMap;
use ds::ConcurrentMap;

const SESSIONS: u64 = 100_000;

fn main() {
    let cache: HashMap<u64, u64> = ConcurrentMap::new();
    let hits = AtomicU64::new(0);
    let misses = AtomicU64::new(0);
    let started = Instant::now();

    let workers = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4);

    std::thread::scope(|s| {
        for w in 0..workers as u64 {
            let cache = &cache;
            let hits = &hits;
            let misses = &misses;
            s.spawn(move || {
                let mut handle = cache.handle();
                let mut state = 0x9E3779B97F4A7C15u64.wrapping_mul(w + 1);
                let mut next = move || {
                    state ^= state << 13;
                    state ^= state >> 7;
                    state ^= state << 17;
                    state
                };
                for i in 0..400_000u64 {
                    let session = next() % SESSIONS;
                    match i % 10 {
                        // 80% lookups
                        0..=7 => {
                            if cache.get(&mut handle, &session).is_some() {
                                hits.fetch_add(1, Relaxed);
                            } else {
                                misses.fetch_add(1, Relaxed);
                                // Cache miss: populate.
                                cache.insert(&mut handle, session, i);
                            }
                        }
                        // 10% invalidations
                        8 => {
                            cache.remove(&mut handle, &session);
                        }
                        // 10% refreshes
                        _ => {
                            cache.remove(&mut handle, &session);
                            cache.insert(&mut handle, session, i);
                        }
                    }
                }
            });
        }
    });

    let h = hits.load(Relaxed);
    let m = misses.load(Relaxed);
    println!(
        "{workers} workers, {:.2}s: {h} hits / {m} misses ({:.1}% hit rate)",
        started.elapsed().as_secs_f64(),
        100.0 * h as f64 / (h + m) as f64,
    );
    println!(
        "unreclaimed blocks at exit: {} (bounded despite constant churn)",
        smr_common::counters::garbage_now()
    );
}
