//! A session cache served by the sharded KV service.
//!
//! Run with: `cargo run --release --example kv_store`
//!
//! The PR-7 promotion of this example into `crates/kv-service` left this
//! file as the service's demo client. The workload is unchanged — lookups
//! dominate, entries churn via invalidation and refresh, and memory must
//! stay bounded under constant replacement (the class behind the paper's
//! HashMap rows, Fig. 8/11) — but the map now lives behind the service:
//! keys route to `KV_SHARDS` shards, each shard's worker drains commands
//! in batches from a bounded ring, and each shard retires into its own
//! HP++ domain, so one slow shard cannot hold back its siblings' memory.
//!
//! Environment knobs (see EXPERIMENTS.md): `KV_SHARDS`, `KV_BATCH`,
//! `KV_RING`, `KV_BUCKETS`.

use std::sync::atomic::{AtomicU64, Ordering::Relaxed};
use std::time::Instant;

use kv_service::{Command, KvConfig, KvService};

const SESSIONS: u64 = 100_000;

fn main() {
    let cfg = KvConfig::from_env();
    let shards = cfg.shards;
    // Default store: HP++, one private domain per shard.
    let svc: KvService = KvService::start(cfg);
    let hits = AtomicU64::new(0);
    let misses = AtomicU64::new(0);
    let started = Instant::now();

    let workers = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4);

    std::thread::scope(|s| {
        for w in 0..workers as u64 {
            let mut client = svc.client();
            let hits = &hits;
            let misses = &misses;
            s.spawn(move || {
                let mut state = 0x9E3779B97F4A7C15u64.wrapping_mul(w + 1);
                let mut next = move || {
                    state ^= state << 13;
                    state ^= state >> 7;
                    state ^= state << 17;
                    state
                };
                for i in 0..400_000u64 {
                    let session = next() % SESSIONS;
                    match i % 10 {
                        // 80% lookups
                        0..=7 => {
                            if client.get(session).expect("shard down").is_some() {
                                hits.fetch_add(1, Relaxed);
                            } else {
                                misses.fetch_add(1, Relaxed);
                                // Cache miss: populate.
                                client.insert(session, i).expect("shard down");
                            }
                        }
                        // 10% invalidations
                        8 => {
                            client.remove(session).expect("shard down");
                        }
                        // 10% refreshes: pipelined — both commands ride the
                        // same ring (same key → same shard) and the worker
                        // executes them in order, often in one batch.
                        _ => {
                            client.submit(Command::Del { key: session }).expect("shard down");
                            client
                                .submit(Command::Put { key: session, value: i })
                                .expect("shard down");
                            client.drain(|_, r| {
                                r.expect("shard down");
                            });
                        }
                    }
                }
            });
        }
    });

    let stats = svc.shutdown();
    let h = hits.load(Relaxed);
    let m = misses.load(Relaxed);
    println!(
        "{workers} clients -> {shards} shards, {:.2}s: {h} hits / {m} misses ({:.1}% hit rate)",
        started.elapsed().as_secs_f64(),
        100.0 * h as f64 / (h + m) as f64,
    );
    for (i, s) in stats.iter().enumerate() {
        println!(
            "  shard {i}: {} ops in {} batches (max batch {}, peak garbage {})",
            s.ops, s.batches, s.max_batch, s.peak_garbage
        );
    }
    println!(
        "unreclaimed blocks at exit: {} (bounded despite constant churn)",
        smr_common::counters::garbage_now()
    );
}
