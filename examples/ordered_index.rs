//! An ordered index on the Natarajan–Mittal tree under HP++.
//!
//! Run with: `cargo run --release --example ordered_index`
//!
//! NMTree is the paper's flagship "HP cannot, HP++ can" structure: its seek
//! walks through flagged/tagged edges optimistically. This example uses it
//! as an order-book-style index: writers post and cancel orders at price
//! levels, readers probe prices, and a robustness check confirms memory
//! stays bounded.

use std::sync::atomic::{AtomicU64, Ordering::Relaxed};

use ds::hpp::NMTree;
use ds::ConcurrentMap;

fn main() {
    let index: NMTree<u64, u64> = ConcurrentMap::new();
    let posted = AtomicU64::new(0);
    let cancelled = AtomicU64::new(0);
    let probes = AtomicU64::new(0);

    std::thread::scope(|s| {
        // Posting threads: insert orders at pseudo-random price levels.
        for t in 0..3u64 {
            let index = &index;
            let posted = &posted;
            let cancelled = &cancelled;
            s.spawn(move || {
                let mut handle = index.handle();
                let mut price = 10_000 + t;
                for qty in 0..60_000u64 {
                    price = (price.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407))
                        % 20_000;
                    if index.insert(&mut handle, price, qty) {
                        posted.fetch_add(1, Relaxed);
                    } else if index.remove(&mut handle, &price).is_some() {
                        cancelled.fetch_add(1, Relaxed);
                    }
                }
            });
        }
        // Probing threads: point lookups across the price range.
        for _ in 0..3 {
            let index = &index;
            let probes = &probes;
            s.spawn(move || {
                let mut handle = index.handle();
                let mut found = 0u64;
                for p in 0..200_000u64 {
                    if index.get(&mut handle, &(p % 20_000)).is_some() {
                        found += 1;
                    }
                }
                probes.fetch_add(found, Relaxed);
            });
        }
    });

    println!(
        "posted {} orders, cancelled {}, probes found {} live levels",
        posted.load(Relaxed),
        cancelled.load(Relaxed),
        probes.load(Relaxed),
    );
    println!(
        "unreclaimed blocks at exit: {}",
        smr_common::counters::garbage_now()
    );
}
