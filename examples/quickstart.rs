//! Quickstart: protecting a lock-free list with HP++.
//!
//! Run with: `cargo run --release --example quickstart`
//!
//! A Harris list (optimistic traversal — the structure the original hazard
//! pointers cannot protect, paper §2.3) is shared by a handful of writer
//! and reader threads; HP++ reclaims removed nodes safely and promptly.

use std::sync::atomic::{AtomicU64, Ordering::Relaxed};

use ds::hpp::HHSList;
use ds::ConcurrentMap;

fn main() {
    let list: HHSList<u64, String> = HHSList::new();
    let total_removed = AtomicU64::new(0);

    std::thread::scope(|s| {
        // Writers: each owns a key stripe, inserting and removing.
        for w in 0..4u64 {
            let list = &list;
            let total_removed = &total_removed;
            s.spawn(move || {
                // Every thread registers once and reuses its handle — it
                // carries this thread's hazard pointers.
                let mut handle = list.handle();
                for round in 0..200 {
                    for k in (w * 100)..(w * 100 + 100) {
                        list.insert(&mut handle, k, format!("value-{k}-r{round}"));
                    }
                    for k in (w * 100)..(w * 100 + 100) {
                        if list.remove(&mut handle, &k).is_some() {
                            total_removed.fetch_add(1, Relaxed);
                        }
                    }
                }
            });
        }
        // Readers: traverse concurrently; HP++'s wait-free-style get walks
        // straight through logically deleted nodes.
        for _ in 0..2 {
            let list = &list;
            s.spawn(move || {
                let mut handle = list.handle();
                let mut hits = 0u64;
                for _ in 0..20_000 {
                    for k in (0..400).step_by(37) {
                        if list.get(&mut handle, &k).is_some() {
                            hits += 1;
                        }
                    }
                }
                println!("reader done ({hits} hits)");
            });
        }
    });

    println!(
        "removed {} nodes; {} still awaiting reclamation (bounded by HP++'s \
         hazard count + thresholds)",
        total_removed.load(Relaxed),
        smr_common::counters::garbage_now(),
    );
}
