//! Long-running reads under reclamation pressure: HP++ vs PEBR.
//!
//! Run with: `cargo run --release --example long_running_scan`
//!
//! Reproduces the paper's Fig. 10 phenomenon in miniature: reader threads
//! issue `get`s deep into a large list while writers churn the head. PEBR's
//! coarse-grained ejection keeps aborting the long reads, so its read
//! throughput collapses as the structure grows; HP++'s protection failure
//! is per-pointer (only an actually-invalidated source aborts a read), so
//! its readers keep pace with EBR's.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering::Relaxed};
use std::time::Duration;

use ds::ConcurrentMap;

fn measure<M: ConcurrentMap<u64, u64> + Send + Sync>(name: &str, range: u64) {
    let list = M::new();
    {
        // Descending prefill: each insert lands at the head (O(n) total).
        let mut handle = list.handle();
        let mut k = range & !1;
        while k >= 2 {
            k -= 2;
            list.insert(&mut handle, k, k);
        }
    }
    let stop = AtomicBool::new(false);
    let reads = AtomicU64::new(0);
    std::thread::scope(|s| {
        for seed in 0..2u64 {
            let list = &list;
            let stop = &stop;
            let reads = &reads;
            s.spawn(move || {
                let mut handle = list.handle();
                let mut x = seed + 1;
                let mut n = 0u64;
                while !stop.load(Relaxed) {
                    x ^= x << 13;
                    x ^= x >> 7;
                    x ^= x << 17;
                    std::hint::black_box(list.get(&mut handle, &(x % range)));
                    n += 1;
                }
                reads.fetch_add(n, Relaxed);
            });
        }
        for _ in 0..2 {
            let list = &list;
            let stop = &stop;
            s.spawn(move || {
                let mut handle = list.handle();
                let mut k = 0u64;
                while !stop.load(Relaxed) {
                    list.insert(&mut handle, k % 32, k);
                    list.remove(&mut handle, &(k % 32));
                    k += 1;
                }
            });
        }
        std::thread::sleep(Duration::from_millis(800));
        stop.store(true, Relaxed);
    });
    println!("{name:>24}: {:>9} reads completed", reads.load(Relaxed));
}

fn main() {
    // The ejection effect needs reads that are long relative to reclamation
    // pressure; scale the list so one get takes a macroscopic time. (For
    // the paper-faithful experiment at 2^18..2^26 keys, run
    // `cargo run --release -p bench --bin fig10`.)
    let range: u64 = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(1 << 16);
    println!("long-running gets over a {range}-key list with head churn:");
    measure::<ds::guarded::HHSList<u64, u64, ebr::Ebr>>("EBR (not robust)", range);
    measure::<ds::guarded::HHSList<u64, u64, pebr::Pebr>>("PEBR (ejects readers)", range);
    measure::<ds::hpp::HHSList<u64, u64>>("HP++ (fine-grained)", range);
    println!();
    println!("On big lists (pass a key count, e.g. 4194304, and use --release) PEBR's");
    println!("readers get ejected mid-traversal and its count collapses, while HP++");
    println!("tracks EBR with a fraction of the unreclaimed memory — the paper's Fig. 10.");
}
