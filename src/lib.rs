//! HP++ suite: umbrella crate re-exporting the workspace libraries.
//!
//! See the `hp_plus` crate for the paper's core contribution and `ds` for the
//! benchmark data-structure suite.

pub use cdrc;
pub use ds;
pub use ebr;
pub use hp;
pub use hp_plus;
pub use kv_service;
pub use nr;
pub use pebr;
pub use smr_common;
