//! Cross-crate tests for the §4.2 applicability structures: Treiber stacks
//! (HP and HP++ flavors) and the Michael–Scott queue (guard-based flavors).

use std::collections::HashSet;
use std::sync::Mutex;

#[test]
fn hp_and_hpp_stacks_agree_under_interleaving() {
    let hp_stack = ds::hp::TreiberStack::new();
    let hpp_stack = ds::hpp::TreiberStack::new();
    let mut hh = hp_stack.handle();
    let mut hh2 = hpp_stack.handle();
    for i in 0..1000u64 {
        hp_stack.push(i);
        hpp_stack.push(i);
        if i % 3 == 0 {
            assert_eq!(hp_stack.pop(&mut hh), hpp_stack.pop(&mut hh2));
        }
    }
    loop {
        let (a, b) = (hp_stack.pop(&mut hh), hpp_stack.pop(&mut hh2));
        assert_eq!(a, b);
        if a.is_none() {
            break;
        }
    }
}

#[test]
fn msqueue_across_schemes_preserves_fifo_per_producer() {
    fn run<S: smr_common::GuardedScheme>() {
        let q: ds::guarded::MSQueue<u64, S> = ds::guarded::MSQueue::new();
        let seen = Mutex::new(HashSet::new());
        std::thread::scope(|s| {
            for t in 0..3u64 {
                let q = &q;
                s.spawn(move || {
                    let mut h = q.handle();
                    for i in 0..500 {
                        q.enqueue(&mut h, t * 10_000 + i);
                    }
                });
            }
            for _ in 0..2 {
                let q = &q;
                let seen = &seen;
                s.spawn(move || {
                    let mut h = q.handle();
                    // Per-producer FIFO: values from one producer must
                    // arrive in order at any single consumer.
                    let mut last: [Option<u64>; 3] = [None; 3];
                    let mut got = 0;
                    while got < 750 {
                        if let Some(v) = q.dequeue(&mut h) {
                            let p = (v / 10_000) as usize;
                            if let Some(prev) = last[p] {
                                assert!(v > prev, "per-producer order violated");
                            }
                            last[p] = Some(v);
                            assert!(seen.lock().unwrap().insert(v), "duplicate {v}");
                            got += 1;
                        }
                    }
                });
            }
        });
        assert_eq!(seen.lock().unwrap().len(), 1500);
    }
    run::<ebr::Ebr>();
    run::<pebr::Pebr>();
    run::<nr::Nr>();
}

#[test]
fn stacks_reclaim_promptly() {
    let s = ds::hpp::TreiberStack::new();
    let mut h = s.handle();
    let before = smr_common::counters::garbage_now();
    for i in 0..2000u64 {
        s.push(i);
        assert_eq!(s.pop(&mut h), Some(i));
    }
    let grown = smr_common::counters::garbage_now().saturating_sub(before);
    assert!(grown < 2 * hp_plus::RECLAIM_PERIOD as u64 + 64, "grew {grown}");
}
