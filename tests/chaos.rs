//! Seeded chaos campaign against the supervised KV service (ISSUE 10).
//!
//! One seed deterministically derives a multi-fault schedule — panics,
//! delays, and yield storms spread over worker-only fault points — which
//! runs against a live client workload, with deterministic
//! [`KvService::inject_crash`] kills layered on top. The campaign asserts
//! the full recovery contract:
//!
//! * every client op resolves (success or *typed* error) within the
//!   deadline budget `(retries + 1) × op_timeout + slack` — chaos may slow
//!   or kill shards but must never hang a caller;
//! * every killed shard serves traffic again on a bumped generation;
//! * every quarantined domain's settled garbage sits within the scheme's
//!   published bound, and after shutdown the global ledger balances to
//!   exactly `before + Σ settled` — quarantine leaks what the records say
//!   and nothing else;
//! * the same seed replays the same injection log (normalized: one-shot
//!   triggers fire in a thread-timing-dependent *order*, so logs are
//!   compared as sorted sets — see DESIGN.md §1.12).
//!
//! Knobs (all optional):
//!
//! * `SMR_CHAOS_SEED`   — campaign seed (default below); print it on
//!   failure to replay.
//! * `SMR_CHAOS_OPS`    — client ops per campaign (default 3000). CI's
//!   quick smoke sets a few hundred.
//! * `SMR_CHAOS_POINTS` — number of fault triggers derived from the seed
//!   (default 6, min 3 so all three fault kinds appear).
//!
//! Panics are scheduled only on points crossed exclusively by shard
//! workers (`kv::worker::batch`, `hpp::try_unlink::after_frontier`);
//! client-crossed points (`kv::ring::full`, `backoff::park`) never get a
//! trigger, so chaos kills workers — the thing supervision recovers — and
//! never the test harness itself.
//!
//! Requires `--features fault-injection`. The installed plan holds the
//! process-wide plan lock, which serializes these tests.
#![cfg(feature = "fault-injection")]

use std::time::{Duration, Instant};

use kv_service::{Client, HppStore, KvConfig, KvError, KvService};
use smr_common::counters;
use smr_common::fault::{self, FaultAction, LogEntry};

const DEFAULT_SEED: u64 = 0xC4A0_55ED;
const DEFAULT_OPS: u64 = 3_000;
const DEFAULT_POINTS: u64 = 6;

const OP_TIMEOUT: Duration = Duration::from_secs(2);
const RETRIES: u32 = 3;

/// Points only shard workers cross — safe targets for injected panics.
const PANIC_POINTS: &[&str] = &["kv::worker::batch", "hpp::try_unlink::after_frontier"];
/// Worker-only points for non-fatal scheduling noise.
const NOISE_POINTS: &[&str] = &[
    "kv::worker::batch",
    "hpp::try_unlink::after_frontier",
    "hpp::try_unlink::after_detach",
    "hpp::try_unlink::mid_invalidation",
];

fn knob(name: &str, default: u64) -> u64 {
    smr_common::env::parse_u64(name).filter(|&v| v > 0).unwrap_or(default)
}

/// The campaign PRNG: every random decision flows through this, so the
/// whole schedule (and workload) is a pure function of the seed.
struct SplitMix64(u64);

impl SplitMix64 {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// Derives the fault schedule from the seed: `points` one-shot triggers
/// cycling through Panic → Delay → YieldStorm (so ≥ 3 distinct kinds
/// whenever `points ≥ 3`). Every trigger gets a globally unique `nth` —
/// the engine fires only the first trigger matching a crossing, so unique
/// `nth`s are what make "every trigger fires exactly once" (and with it
/// the log-determinism assertion) hold. All `nth`s stay small (≤ 3·points)
/// because a one-shot trigger that never fires in one run but fires during
/// shutdown in another would break same-seed log equality.
fn build_plan(seed: u64, points: u64) -> (fault::FaultPlan, usize) {
    let mut rng = SplitMix64(seed);
    let mut plan = fault::plan();
    let n = points.max(3);
    for i in 0..n {
        let nth = 2 + 3 * i + rng.next() % 3;
        plan = match i % 3 {
            0 => {
                let point = PANIC_POINTS[rng.next() as usize % PANIC_POINTS.len()];
                plan.at(point, nth, FaultAction::Panic)
            }
            1 => {
                let point = NOISE_POINTS[rng.next() as usize % NOISE_POINTS.len()];
                let ms = 1 + rng.next() % 4;
                plan.at(point, nth, FaultAction::Delay(Duration::from_millis(ms)))
            }
            _ => {
                let point = NOISE_POINTS[rng.next() as usize % NOISE_POINTS.len()];
                let storm = 10 + (rng.next() % 40) as u32;
                plan.at(point, nth, FaultAction::YieldStorm(storm))
            }
        };
    }
    (plan, n as usize)
}

fn budget() -> Duration {
    OP_TIMEOUT * (RETRIES + 1) + Duration::from_secs(3)
}

/// Asserts the op-resolution contract: within budget, and any failure is
/// one of the two typed mid-campaign errors (`Stopped` would mean the
/// supervised service gave a shard up for dead).
fn check_resolved<T: std::fmt::Debug>(what: &str, r: &Result<T, KvError>, t0: Instant) {
    let elapsed = t0.elapsed();
    assert!(
        elapsed < budget(),
        "{what} blew the deadline budget: {elapsed:?} >= {:?}",
        budget()
    );
    match r {
        Ok(_) | Err(KvError::RetryAfter(_)) | Err(KvError::DeadlineExceeded) => {}
        Err(e) => panic!("{what} resolved to a terminal error mid-campaign: {e:?}"),
    }
}

/// Deterministic kill: crash `shard`, wait for the supervisor to bump its
/// generation, then prove the respawned incarnation serves again.
fn crash_and_verify(svc: &KvService<HppStore>, client: &mut Client<HppStore>, shard: usize) {
    let gen_before = svc.generation(shard).0;
    assert!(svc.inject_crash(shard), "crash command not accepted");
    let deadline = Instant::now() + Duration::from_secs(20);
    while svc.generation(shard).0 == gen_before {
        assert!(Instant::now() < deadline, "shard {shard} never respawned");
        std::thread::yield_now();
    }
    assert!(svc.generation(shard).0 > gen_before, "generation must bump");
    // The killed shard serves again. A scheduled panic may kill it a
    // second time mid-probe, so allow a few attempts — each within budget.
    let probe = (0u64..).find(|&k| svc.shard_of(k) == shard).expect("mixer covers every shard");
    let mut served = false;
    for _ in 0..5 {
        let t0 = Instant::now();
        let r = client.get(probe);
        check_resolved("post-respawn probe", &r, t0);
        if r.is_ok() {
            served = true;
            break;
        }
    }
    assert!(served, "respawned shard {shard} never served traffic again");
}

/// One full campaign. Returns the injection log (taken before teardown).
fn run_campaign(seed: u64, ops: u64, points: u64) -> Vec<LogEntry> {
    let before = counters::garbage_now();
    let (plan, n_triggers) = build_plan(seed, points);
    let plan = plan.install();

    let svc = KvService::<HppStore>::start(
        KvConfig {
            shards: 3,
            batch: 8,
            ring_depth: 128,
            buckets: 64,
            ..KvConfig::new()
        }
        .with_op_timeout(OP_TIMEOUT)
        .with_retries(RETRIES),
    );
    let mut client = svc.client();
    let mut rng = SplitMix64(seed ^ 0xD1CE_D00D);

    // Insert/remove pairs: every remove of a live key is an unlink, which
    // is what drives the hpp fault points and loads the domains with real
    // garbage for the crashes to quarantine.
    let pairs = (ops / 2).max(300);
    let crash_at = [pairs / 3, 2 * pairs / 3];
    for i in 0..pairs {
        if i == crash_at[0] {
            crash_and_verify(&svc, &mut client, 0);
        }
        if i == crash_at[1] {
            crash_and_verify(&svc, &mut client, 1);
        }
        let key = rng.next() % 4096;
        let t0 = Instant::now();
        check_resolved("insert", &client.insert(key, i), t0);
        let t0 = Instant::now();
        check_resolved("remove", &client.remove(key), t0);
    }

    // Audit trail: settled garbage within the published bound, monotone
    // record generations, and ≥ 2 distinct shards actually hit.
    let mut total_settled = 0u64;
    for i in 0..3 {
        let mut prev = None;
        for r in svc.quarantine_records(i) {
            if let Some(bound) = r.bound {
                assert!(
                    r.settled_garbage <= bound,
                    "shard {i} gen {}: settled {} over published bound {bound}",
                    r.generation,
                    r.settled_garbage
                );
            }
            if let Some(p) = prev {
                assert!(r.generation > p, "shard {i}: record generations must be monotone");
            }
            prev = Some(r.generation);
            total_settled += r.settled_garbage;
        }
    }
    assert!(!svc.quarantine_records(0).is_empty(), "shard 0 was crashed");
    assert!(!svc.quarantine_records(1).is_empty(), "shard 1 was crashed");
    let health = svc.health();
    assert!(health.shards.iter().map(|h| h.respawns).sum::<u64>() >= 2);
    assert_eq!(health.quarantined_garbage(), total_settled);

    // Take the log before teardown: shutdown crosses fault points too, and
    // the determinism contract covers the campaign, not the teardown.
    let log = fault::take_log();
    assert_eq!(
        log.len(),
        n_triggers,
        "every scheduled one-shot trigger must fire during the campaign \
         (seed {seed:#x}; log {log:?})"
    );

    drop(client);
    svc.shutdown();
    drop(plan);
    assert_eq!(
        counters::garbage_now(),
        before + total_settled,
        "orphan balance after recovery: quarantined domains leak exactly \
         what their records say (seed {seed:#x})"
    );
    log
}

/// Sorted view for cross-run comparison: one-shot triggers fire at fixed
/// (point, hit, action) coordinates, but worker-thread timing permutes the
/// order they land in the log.
fn normalized(mut log: Vec<LogEntry>) -> Vec<LogEntry> {
    log.sort_by(|a, b| {
        (&a.point, a.hit, format!("{:?}", a.action))
            .cmp(&(&b.point, b.hit, format!("{:?}", b.action)))
    });
    log
}

#[test]
fn chaos_campaign_resolves_every_op_and_balances_garbage() {
    let seed = knob("SMR_CHAOS_SEED", DEFAULT_SEED);
    let ops = knob("SMR_CHAOS_OPS", DEFAULT_OPS);
    let points = knob("SMR_CHAOS_POINTS", DEFAULT_POINTS);
    eprintln!("chaos: seed={seed:#x} ops={ops} points={points} (set SMR_CHAOS_SEED to replay)");
    let log = run_campaign(seed, ops, points);
    eprintln!("chaos: campaign took {} injections", log.len());
}

#[test]
fn same_seed_replays_identical_injection_log() {
    let seed = knob("SMR_CHAOS_SEED", DEFAULT_SEED);
    let a = normalized(run_campaign(seed, 600, DEFAULT_POINTS));
    let b = normalized(run_campaign(seed, 600, DEFAULT_POINTS));
    assert!(!a.is_empty(), "campaign must take injections");
    assert_eq!(a, b, "same seed must replay the same injection set (seed {seed:#x})");
}

#[test]
fn stalled_worker_turns_into_deadline_errors_then_recovers() {
    // The fourth fault kind, deterministically: a stall wedges the worker
    // after its second batch (the point sits after execution, so ops 1–2
    // complete). The queued third op must fail with `DeadlineExceeded` —
    // not hang — and once the stall releases, the shard serves again on
    // its *original* generation: a slow worker is not a dead worker, so
    // supervision must not have respawned anything.
    let _plan = fault::plan().at("kv::worker::batch", 2, FaultAction::Stall).install();
    let svc = KvService::<HppStore>::start(
        KvConfig {
            shards: 1,
            batch: 4,
            ring_depth: 16,
            buckets: 16,
            ..KvConfig::new()
        }
        .with_op_timeout(Duration::from_millis(200))
        .with_retries(0),
    );
    let mut client = svc.client();
    assert_eq!(client.insert(1, 11), Ok(true));
    assert_eq!(client.get(1), Ok(Some(11)));
    // The worker is now stalled at the batch point. The next op times out
    // client-side instead of hanging.
    let t0 = Instant::now();
    assert_eq!(client.insert(2, 22), Err(KvError::DeadlineExceeded));
    let elapsed = t0.elapsed();
    assert!(
        elapsed >= Duration::from_millis(200) && elapsed < budget(),
        "deadline error must land at the op timeout, took {elapsed:?}"
    );
    fault::release("kv::worker::batch");
    assert_eq!(client.get(1), Ok(Some(11)), "released worker serves again");
    assert_eq!(svc.generation(0).0, 0, "a stalled worker must not be respawned");
    assert_eq!(svc.health().shards[0].respawns, 0);
    svc.shutdown();
}
