//! Property-based tests: arbitrary operation traces applied to each map
//! flavor must behave exactly like a `BTreeMap`.

use std::collections::BTreeMap;

use proptest::prelude::*;
use smr_common::ConcurrentMap;

#[derive(Debug, Clone)]
enum Op {
    Insert(u64, u64),
    Remove(u64),
    Get(u64),
}

fn op_strategy(key_space: u64) -> impl Strategy<Value = Op> {
    prop_oneof![
        (0..key_space, any::<u64>()).prop_map(|(k, v)| Op::Insert(k, v)),
        (0..key_space).prop_map(Op::Remove),
        (0..key_space).prop_map(Op::Get),
    ]
}

fn run_trace<M: ConcurrentMap<u64, u64>>(ops: &[Op]) {
    let m = M::new();
    let mut h = m.handle();
    let mut model: BTreeMap<u64, u64> = BTreeMap::new();
    for (i, op) in ops.iter().enumerate() {
        match *op {
            Op::Insert(k, v) => {
                let expected = !model.contains_key(&k);
                prop_assert_eq_like(m.insert(&mut h, k, v), expected, i, "insert");
                if expected {
                    model.insert(k, v);
                }
            }
            Op::Remove(k) => {
                prop_assert_eq_like(m.remove(&mut h, &k), model.remove(&k), i, "remove");
            }
            Op::Get(k) => {
                prop_assert_eq_like(m.get(&mut h, &k), model.get(&k).copied(), i, "get");
            }
        }
    }
    // Final sweep: identical contents.
    for k in 0..32 {
        assert_eq!(m.get(&mut h, &k), model.get(&k).copied(), "final sweep {k}");
    }
}

fn prop_assert_eq_like<T: PartialEq + std::fmt::Debug>(got: T, want: T, i: usize, what: &str) {
    assert_eq!(got, want, "step {i}: {what} diverged from the model");
}

macro_rules! trace_props {
    ($name:ident, $ty:ty) => {
        proptest! {
            #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]
            #[test]
            fn $name(ops in proptest::collection::vec(op_strategy(32), 1..400)) {
                run_trace::<$ty>(&ops);
            }
        }
    };
}

trace_props!(trace_hmlist_ebr, ds::guarded::HMList<u64, u64, ebr::Ebr>);
trace_props!(trace_hmlist_hyaline, ds::guarded::HMList<u64, u64, hyaline::Hyaline>);
trace_props!(
    trace_hashmap_hyaline,
    ds::hash_map::HashMap<u64, u64, ds::guarded::HHSList<u64, u64, hyaline::Hyaline>>
);
trace_props!(trace_hhslist_hpp, ds::hpp::HHSList<u64, u64>);
trace_props!(trace_hmlist_hp, ds::hp::HMList<u64, u64>);
trace_props!(trace_hmlist_rc, ds::cdrc::HMList<u64, u64>);
trace_props!(trace_skiplist_hpp, ds::hpp::SkipList<u64, u64>);
trace_props!(trace_nmtree_hpp, ds::hpp::NMTree<u64, u64>);
trace_props!(trace_efrbtree_hp, ds::hp::EFRBTree<u64, u64>);
trace_props!(trace_hashmap_hpp, ds::hpp::HashMap<u64, u64>);

proptest! {
    #![proptest_config(ProptestConfig { cases: 256, ..ProptestConfig::default() })]

    /// Tagged-pointer algebra: composing and decomposing is lossless for
    /// any alignment-permitted tag.
    #[test]
    fn tagged_roundtrip(addr in 0usize..usize::MAX / 16, tag in 0usize..8) {
        let ptr = (addr * 8) as *mut u64; // 8-aligned
        let word = smr_common::tagged::compose(ptr, tag & 7);
        let (p, t) = smr_common::tagged::decompose::<u64>(word);
        prop_assert_eq!(p, ptr);
        prop_assert_eq!(t, tag & 7);
    }

    /// Shared<T> tag surgery never disturbs the pointer part.
    #[test]
    fn shared_with_tag_preserves_ptr(addr in 1usize..usize::MAX / 16, a in 0usize..8, b in 0usize..8) {
        let raw = (addr * 8) as *mut u64;
        let s = smr_common::Shared::from_raw(raw).with_tag(a & 7);
        prop_assert_eq!(s.as_raw(), raw);
        let s2 = s.with_tag(b & 7);
        prop_assert_eq!(s2.as_raw(), raw);
        prop_assert_eq!(s2.tag(), b & 7);
    }
}
