//! The symmetric-fence fallback (`SMR_NO_MEMBARRIER=1`) must be fully
//! functional: correctness of the schemes cannot depend on `membarrier`
//! availability. This test binary forces the fallback before any fence is
//! issued (own process ⇒ own OnceLock), then runs scheme stresses.

use smr_common::ConcurrentMap;

fn force_symmetric() {
    // Must happen before the first fence::strategy() call in this process.
    std::env::set_var("SMR_NO_MEMBARRIER", "1");
    assert_eq!(
        smr_common::fence::strategy(),
        smr_common::fence::Strategy::SeqCst
    );
}

#[test]
fn schemes_work_with_symmetric_fences() {
    force_symmetric();

    // HP under churn + concurrent readers.
    {
        let m: ds::hp::HMList<u64, u64> = ConcurrentMap::new();
        std::thread::scope(|s| {
            for t in 0..3u64 {
                let m = &m;
                s.spawn(move || {
                    let mut h = m.handle();
                    for i in 0..2000 {
                        let k = (t * 1000 + i) % 64;
                        m.insert(&mut h, k, k * 1000);
                        if let Some(v) = m.get(&mut h, &k) {
                            assert_eq!(v, k * 1000);
                        }
                        m.remove(&mut h, &k);
                    }
                });
            }
        });
    }

    // HP++ under churn + concurrent readers (exercises the epoched heavy
    // fence path with plain SC fences).
    {
        let m: ds::hpp::HHSList<u64, u64> = ConcurrentMap::new();
        std::thread::scope(|s| {
            for t in 0..3u64 {
                let m = &m;
                s.spawn(move || {
                    let mut h = m.handle();
                    for i in 0..2000 {
                        let k = (t * 1000 + i) % 64;
                        m.insert(&mut h, k, k * 1000);
                        if let Some(v) = m.get(&mut h, &k) {
                            assert_eq!(v, k * 1000);
                        }
                        m.remove(&mut h, &k);
                    }
                });
            }
        });
    }

    // Garbage still bounded in fallback mode.
    let m: ds::hpp::HMList<u64, u64> = ConcurrentMap::new();
    let mut h = m.handle();
    let before = smr_common::counters::garbage_now();
    for round in 0..300u64 {
        for k in 0..8 {
            m.insert(&mut h, k, round);
        }
        for k in 0..8 {
            m.remove(&mut h, &k);
        }
    }
    let grown = smr_common::counters::garbage_now().saturating_sub(before);
    assert!(grown < 1000, "garbage grew to {grown} under symmetric fences");
}
