//! The full (structure × scheme) matrix, exercised across crate boundaries:
//! every applicable pair from the paper's Table 2 gets a sequential
//! semantics check and a concurrent accounting stress.

mod common;

use common::{check_concurrent, check_sequential};
use ds::hash_map::HashMap;

macro_rules! matrix_test {
    ($name:ident, $ty:ty) => {
        #[test]
        fn $name() {
            check_sequential::<$ty>(1500, 48, 0xA11CE);
            check_concurrent::<$ty>(6, 400, 48);
        }
    };
}

// HMList row.
matrix_test!(hmlist_nr, ds::guarded::HMList<u64, u64, nr::Nr>);
matrix_test!(hmlist_ebr, ds::guarded::HMList<u64, u64, ebr::Ebr>);
matrix_test!(hmlist_pebr, ds::guarded::HMList<u64, u64, pebr::Pebr>);
matrix_test!(hmlist_hyaline, ds::guarded::HMList<u64, u64, hyaline::Hyaline>);
matrix_test!(hmlist_hp, ds::hp::HMList<u64, u64>);
matrix_test!(hmlist_hpp, ds::hpp::HMList<u64, u64>);
matrix_test!(hmlist_rc, ds::cdrc::HMList<u64, u64>);

// HHSList row (HP inapplicable — §2.3).
matrix_test!(hhslist_nr, ds::guarded::HHSList<u64, u64, nr::Nr>);
matrix_test!(hhslist_ebr, ds::guarded::HHSList<u64, u64, ebr::Ebr>);
matrix_test!(hhslist_pebr, ds::guarded::HHSList<u64, u64, pebr::Pebr>);
matrix_test!(hhslist_hyaline, ds::guarded::HHSList<u64, u64, hyaline::Hyaline>);
matrix_test!(hhslist_hpp, ds::hpp::HHSList<u64, u64>);
matrix_test!(hhslist_rc, ds::cdrc::HHSList<u64, u64>);

// HashMap row.
matrix_test!(hashmap_ebr, HashMap<u64, u64, ds::guarded::HHSList<u64, u64, ebr::Ebr>>);
matrix_test!(hashmap_pebr, HashMap<u64, u64, ds::guarded::HHSList<u64, u64, pebr::Pebr>>);
matrix_test!(hashmap_hyaline, HashMap<u64, u64, ds::guarded::HHSList<u64, u64, hyaline::Hyaline>>);
matrix_test!(hashmap_hp, ds::hp::HashMap<u64, u64>);
matrix_test!(hashmap_hpp, ds::hpp::HashMap<u64, u64>);
matrix_test!(hashmap_rc, HashMap<u64, u64, ds::cdrc::HHSList<u64, u64>>);

// SkipList row.
matrix_test!(skiplist_nr, ds::guarded::SkipList<u64, u64, nr::Nr>);
matrix_test!(skiplist_ebr, ds::guarded::SkipList<u64, u64, ebr::Ebr>);
matrix_test!(skiplist_pebr, ds::guarded::SkipList<u64, u64, pebr::Pebr>);
matrix_test!(skiplist_hyaline, ds::guarded::SkipList<u64, u64, hyaline::Hyaline>);
matrix_test!(skiplist_hp, ds::hp::SkipList<u64, u64>);
matrix_test!(skiplist_hpp, ds::hpp::SkipList<u64, u64>);

// NMTree row (HP inapplicable — §2.3).
matrix_test!(nmtree_nr, ds::guarded::NMTree<u64, u64, nr::Nr>);
matrix_test!(nmtree_ebr, ds::guarded::NMTree<u64, u64, ebr::Ebr>);
matrix_test!(nmtree_pebr, ds::guarded::NMTree<u64, u64, pebr::Pebr>);
matrix_test!(nmtree_hyaline, ds::guarded::NMTree<u64, u64, hyaline::Hyaline>);
matrix_test!(nmtree_hpp, ds::hpp::NMTree<u64, u64>);

// EFRBTree row.
matrix_test!(efrbtree_nr, ds::guarded::EFRBTree<u64, u64, nr::Nr>);
matrix_test!(efrbtree_ebr, ds::guarded::EFRBTree<u64, u64, ebr::Ebr>);
matrix_test!(efrbtree_pebr, ds::guarded::EFRBTree<u64, u64, pebr::Pebr>);
matrix_test!(efrbtree_hyaline, ds::guarded::EFRBTree<u64, u64, hyaline::Hyaline>);
matrix_test!(efrbtree_hp, ds::hp::EFRBTree<u64, u64>);
matrix_test!(efrbtree_hpp, ds::hpp::EFRBTree<u64, u64>);

// BonsaiTree row.
matrix_test!(bonsai_nr, ds::guarded::BonsaiTree<u64, u64, nr::Nr>);
matrix_test!(bonsai_ebr, ds::guarded::BonsaiTree<u64, u64, ebr::Ebr>);
matrix_test!(bonsai_pebr, ds::guarded::BonsaiTree<u64, u64, pebr::Pebr>);
matrix_test!(bonsai_hyaline, ds::guarded::BonsaiTree<u64, u64, hyaline::Hyaline>);
matrix_test!(bonsai_hp, ds::hp::BonsaiTree<u64, u64>);
matrix_test!(bonsai_hpp, ds::hpp::BonsaiTree<u64, u64>);
