//! Robustness (paper §4.4, Table 1): garbage stays bounded for the
//! hazard-based schemes even under churn, and a stalled EBR critical
//! section makes garbage grow without bound while PEBR ejects the offender.

use std::sync::atomic::{AtomicBool, Ordering::Relaxed};
use std::time::Duration;

use smr_common::{ConcurrentMap, GuardedScheme, SchemeGuard};

fn churn_n<M: ConcurrentMap<u64, u64>>(m: &M, h: &mut M::Handle, rounds: u64) {
    for r in 0..rounds {
        for k in 0..16 {
            m.insert(h, k, r);
        }
        for k in 0..16 {
            m.remove(h, &k);
        }
    }
}

#[test]
fn hp_garbage_bounded_under_churn() {
    let m: ds::hp::HMList<u64, u64> = ConcurrentMap::new();
    let mut h = m.handle();
    let before = smr_common::counters::garbage_now();
    churn_n(&m, &mut h, 500);
    let grown = smr_common::counters::garbage_now().saturating_sub(before);
    assert!(grown < 1000, "HP garbage grew to {grown}");
}

#[test]
fn hpp_garbage_bounded_under_churn() {
    let m: ds::hpp::HHSList<u64, u64> = ConcurrentMap::new();
    let mut h = m.handle();
    let before = smr_common::counters::garbage_now();
    churn_n(&m, &mut h, 500);
    let grown = smr_common::counters::garbage_now().saturating_sub(before);
    assert!(grown < 1000, "HP++ garbage grew to {grown}");
}

#[test]
fn ebr_stalled_pin_grows_unboundedly_pebr_does_not() {
    // Deterministic version of the Table 1 robustness experiment: the
    // staller provably pins *before* the churners run a fixed amount of
    // work, so the garbage growth does not depend on scheduling.
    fn run<S: GuardedScheme>() -> u64 {
        const ROUNDS: u64 = 1000; // 16 retires per round per churner

        let m: ds::guarded::HMList<u64, u64, S> = ds::guarded::HMList::new();
        let pinned = AtomicBool::new(false);
        let stop = AtomicBool::new(false);
        let before = smr_common::counters::garbage_now();
        let growth = std::thread::scope(|s| {
            // Staller: enters a critical section and never leaves,
            // refreshing only if ejected — a cooperative-but-slow reader.
            s.spawn(|| {
                let mut h = S::handle();
                let mut g = S::pin(&mut h);
                pinned.store(true, Relaxed);
                while !stop.load(Relaxed) {
                    if !g.validate() {
                        g.refresh(); // PEBR path: ejection observed
                    }
                    std::thread::sleep(Duration::from_millis(1));
                }
            });
            while !pinned.load(Relaxed) {
                std::thread::yield_now();
            }
            // Churners: a fixed amount of retiring work.
            std::thread::scope(|s2| {
                for _ in 0..2 {
                    let m = &m;
                    s2.spawn(move || {
                        let mut h = ConcurrentMap::handle(m);
                        churn_n(m, &mut h, ROUNDS);
                    });
                }
            });
            let growth = smr_common::counters::garbage_now().saturating_sub(before);
            stop.store(true, Relaxed);
            growth
        });
        growth
    }

    let ebr_growth = run::<ebr::Ebr>();
    let pebr_growth = run::<pebr::Pebr>();
    // 2 churners × 1000 rounds × 16 removals ≈ 32k retires, none of which
    // EBR may free under the stalled pin (modulo a bounded prefix retired
    // before the pin was visible).
    assert!(
        ebr_growth > 10_000,
        "EBR with a stalled pin should accumulate; got {ebr_growth}"
    );
    assert!(
        pebr_growth < ebr_growth / 2,
        "PEBR should eject the staller and stay below EBR: pebr={pebr_growth} ebr={ebr_growth}"
    );
}

#[test]
fn hybrid_hp_retire_through_hpp_thread() {
    // §4.2 backward compatibility: an HP++ thread can retire nodes protected
    // with the original HP validation, in the same domain.
    let domain = hp_plus::default_domain();
    let mut t = domain.register();
    let slot = smr_common::Atomic::new(7u64);

    let hp = t.hazard_pointer();
    let p = slot.load(std::sync::atomic::Ordering::Acquire);
    assert!(hp.try_protect(p, &slot).is_ok());

    // Swap in a new value and retire the old through the HP++ thread's
    // plain-HP path.
    let fresh = smr_common::Shared::from_owned(8u64);
    let old = slot.swap(fresh, std::sync::atomic::Ordering::AcqRel);
    unsafe { t.retire(old.as_raw()) };

    // Protected: must survive a reclaim.
    t.reclaim();
    assert_eq!(unsafe { *old.deref() }, 7);

    hp.reset();
    t.reclaim();
    unsafe { slot.into_owned() };
}
