//! Robustness (paper §4.4, Table 1): garbage stays bounded for the
//! hazard-based schemes even under churn, and a stalled EBR critical
//! section makes garbage grow without bound while PEBR ejects the offender.
//!
//! Every bound here is *derived from the schemes' published formulas*
//! (HP's `k·H + threshold` rule, EBR's `max(floor, 8·participants)`
//! trigger, PEBR's collect/eject thresholds, hyaline's handover trigger)
//! rather than hard-coded, so tuning `HP_RECLAIM_K` /
//! `EBR_COLLECT_THRESHOLD` / `HYALINE_BATCH_THRESHOLD` does not break
//! them. The guarded schemes are enumerated by the shared registry
//! (`bench::schemes`), so a newly added scheme is churned here without
//! touching this file — and fails until it states its derived bound.
//! The deterministic fault-driven matrix lives in `tests/fault_matrix.rs`
//! (requires the `fault-injection` feature); these tests stay always-on.

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering::Relaxed};
use std::sync::Mutex;
use std::time::Duration;

use smr_common::{ConcurrentMap, GuardedScheme, SchemeGuard};

/// The garbage counters are process-global; tests in this binary run in
/// parallel by default, so each counter-sensitive test holds this lock.
static SERIAL: Mutex<()> = Mutex::new(());

fn serial() -> std::sync::MutexGuard<'static, ()> {
    SERIAL.lock().unwrap_or_else(|e| e.into_inner())
}

fn churn_n<M: ConcurrentMap<u64, u64>>(m: &M, h: &mut M::Handle, rounds: u64) {
    for r in 0..rounds {
        for k in 0..16 {
            m.insert(h, k, r);
        }
        for k in 0..16 {
            m.remove(h, &k);
        }
    }
}

#[test]
fn hp_garbage_bounded_under_churn() {
    let _serial = serial();
    let m: ds::hp::HMList<u64, u64> = ConcurrentMap::new();
    let mut h = m.handle();
    let before = smr_common::counters::garbage_now();
    churn_n(&m, &mut h, 500);
    let grown = smr_common::counters::garbage_now().saturating_sub(before);
    // Michael's bound: a thread's unreclaimed garbage never exceeds the
    // adaptive scan trigger `max(RECLAIM_THRESHOLD, k·H)`; allow the floor
    // *plus* the k·H term (the trigger is their max) and a 2x margin for
    // garbage other threads of this process may hold.
    let h_slots = hp::default_domain().slot_capacity() as u64;
    let bound = 2 * (hp::reclaim_k() as u64 * h_slots + hp::RECLAIM_THRESHOLD as u64);
    assert!(
        grown < bound,
        "HP garbage grew to {grown}, bound {bound} (H={h_slots})"
    );
}

#[test]
fn hpp_garbage_bounded_under_churn() {
    let _serial = serial();
    let m: ds::hpp::HHSList<u64, u64> = ConcurrentMap::new();
    let mut h = m.handle();
    let before = smr_common::counters::garbage_now();
    churn_n(&m, &mut h, 500);
    let grown = smr_common::counters::garbage_now().saturating_sub(before);
    // HP++ counts garbage at unlink: on top of HP's `k·H + threshold` bag
    // bound, up to RECLAIM_PERIOD unlinked batches (HHSList removes detach
    // ≤ 2 nodes each) may await deferred invalidation (Algorithm 3).
    let h_slots = hp_plus::default_domain().hp_domain().slot_capacity() as u64;
    let bound = 2
        * (hp::reclaim_k() as u64 * h_slots
            + hp::RECLAIM_THRESHOLD as u64
            + 2 * hp_plus::RECLAIM_PERIOD as u64);
    assert!(
        grown < bound,
        "HP++ garbage grew to {grown}, bound {bound} (H={h_slots})"
    );
}

/// Registry-driven churn: every scheme in `bench::schemes::GUARDED` runs
/// the same quiescent churn. NR must leak the whole retire volume; every
/// other guarded scheme must stay under the bound derived from its own
/// trigger formula. The `match` below is deliberately exhaustive over the
/// registry — adding a guarded scheme there fails this test until the
/// scheme's derived bound is stated.
#[test]
fn guarded_registry_churn_bounds() {
    let _serial = serial();
    const ROUNDS: u64 = 500;
    const TOTAL_RETIRES: u64 = ROUNDS * 16;

    struct Churn;
    impl bench::schemes::GuardedVisitor for Churn {
        fn visit<S: GuardedScheme>(&mut self, scheme: bench::Scheme) {
            let m: ds::guarded::HMList<u64, u64, S> = ConcurrentMap::new();
            let mut h = ConcurrentMap::handle(&m);
            let before = smr_common::counters::garbage_now();
            churn_n(&m, &mut h, ROUNDS);
            let grown = smr_common::counters::garbage_now().saturating_sub(before);
            drop(h);
            match scheme {
                bench::Scheme::Nr => assert!(
                    grown >= TOTAL_RETIRES,
                    "NR must leak every retire: {grown} < {TOTAL_RETIRES}"
                ),
                bench::Scheme::Ebr => {
                    // A quiescent single pinner collects every threshold
                    // retires; a few generation bags stay in flight.
                    let bound = 4 * ebr::default_collector().collect_threshold() as u64;
                    assert!(grown < bound, "EBR churn garbage {grown} over bound {bound}");
                }
                bench::Scheme::Pebr => {
                    let bound = 2 * (pebr::EJECT_THRESHOLD + 2 * pebr::COLLECT_THRESHOLD) as u64;
                    assert!(grown < bound, "PEBR churn garbage {grown} over bound {bound}");
                }
                bench::Scheme::Hyaline => {
                    // One participant: the local batch below the handover
                    // trigger plus the handed-over batch its own critical
                    // section still references.
                    let bound = hyaline::garbage_bound(1) as u64;
                    assert!(
                        grown < bound,
                        "hyaline churn garbage {grown} over bound {bound}"
                    );
                }
                other => panic!("registry grew {other}: state its derived churn bound here"),
            }
        }
    }
    bench::schemes::for_each_guarded(&mut Churn);
}

#[test]
fn ebr_stalled_pin_grows_unboundedly_pebr_does_not() {
    let _serial = serial();
    // Deterministic version of the Table 1 robustness experiment: the
    // staller provably pins *before* the churners run a fixed amount of
    // work, so the garbage growth does not depend on scheduling.
    const ROUNDS: u64 = 1000; // 16 retires per round per churner
    const CHURNERS: u64 = 2;

    fn run<S: GuardedScheme>() -> u64 {
        let m: ds::guarded::HMList<u64, u64, S> = ds::guarded::HMList::new();
        let pinned = AtomicBool::new(false);
        let stop = AtomicBool::new(false);
        let before = smr_common::counters::garbage_now();
        let growth = std::thread::scope(|s| {
            // Staller: enters a critical section and never leaves,
            // refreshing only if ejected — a cooperative-but-slow reader.
            s.spawn(|| {
                let mut h = S::handle();
                let mut g = S::pin(&mut h);
                pinned.store(true, Relaxed);
                while !stop.load(Relaxed) {
                    if !g.validate() {
                        g.refresh(); // PEBR path: ejection observed
                    }
                    std::thread::sleep(Duration::from_millis(1));
                }
            });
            while !pinned.load(Relaxed) {
                std::thread::yield_now();
            }
            // Churners: a fixed amount of retiring work.
            std::thread::scope(|s2| {
                for _ in 0..CHURNERS {
                    let m = &m;
                    s2.spawn(move || {
                        let mut h = ConcurrentMap::handle(m);
                        churn_n(m, &mut h, ROUNDS);
                    });
                }
            });
            let growth = smr_common::counters::garbage_now().saturating_sub(before);
            stop.store(true, Relaxed);
            growth
        });
        growth
    }

    let ebr_growth = run::<ebr::Ebr>();
    let pebr_growth = run::<pebr::Pebr>();

    // EBR under a stalled pin frees *nothing* retired after the pin became
    // visible: every retire is stamped at or after the staller's epoch, and
    // the epoch can advance at most once past it. The growth must therefore
    // be the whole retire volume, minus a small slack for collections that
    // raced the pin becoming visible (bounded by the collection trigger).
    let total_retires = CHURNERS * ROUNDS * 16;
    let slack = 4 * ebr::default_collector().collect_threshold() as u64;
    assert!(
        ebr_growth > total_retires - slack,
        "EBR with a stalled pin should accumulate ~{total_retires}; got {ebr_growth}"
    );
    // PEBR ejects the straggler once a thread's local garbage passes
    // EJECT_THRESHOLD, after which epochs advance and collections free.
    // Steady state per participant: the eject trigger plus a few collect
    // batches in flight; 3 participants, 2x margin.
    let pebr_bound = 2 * 3 * (pebr::EJECT_THRESHOLD + 2 * pebr::COLLECT_THRESHOLD) as u64;
    assert!(
        pebr_growth < pebr_bound,
        "PEBR should stay near its eject threshold: pebr={pebr_growth} bound={pebr_bound}"
    );
    assert!(
        pebr_growth < ebr_growth / 2,
        "PEBR should eject the staller and stay below EBR: pebr={pebr_growth} ebr={ebr_growth}"
    );
}

#[test]
fn hybrid_hp_retire_through_hpp_thread() {
    // §4.2 backward compatibility: an HP++ thread can retire nodes protected
    // with the original HP validation, in the same domain.
    let domain = hp_plus::default_domain();
    let mut t = domain.register();
    let slot = smr_common::Atomic::new(7u64);

    let hp = t.hazard_pointer();
    let p = slot.load(std::sync::atomic::Ordering::Acquire);
    assert!(hp.try_protect(p, &slot).is_ok());

    // Swap in a new value and retire the old through the HP++ thread's
    // plain-HP path.
    let fresh = smr_common::Shared::from_owned(8u64);
    let old = slot.swap(fresh, std::sync::atomic::Ordering::AcqRel);
    unsafe { t.retire(old.as_raw()) };

    // Protected: must survive a reclaim.
    t.reclaim();
    assert_eq!(unsafe { *old.deref() }, 7);

    hp.reset();
    t.reclaim();
    unsafe { slot.into_owned() };
}

#[test]
fn hp_panicking_worker_donates_garbage() {
    // A worker that panics mid-operation unwinds through its `hp::Thread`;
    // the Drop-guard teardown must still donate every unfreed node to the
    // domain orphan list, where a survivor adopts and frees it (exact
    // counter deltas — zero leaked nodes).
    let _serial = serial();
    static DROPS: AtomicUsize = AtomicUsize::new(0);
    struct Canary(#[allow(dead_code)] u64);
    impl Drop for Canary {
        fn drop(&mut self) {
            DROPS.fetch_add(1, Relaxed);
        }
    }
    const N: usize = 10;

    let d: &'static hp::Domain = Box::leak(Box::new(hp::Domain::new()));
    let mut survivor = d.register();
    // Handshake: the survivor protects the worker's nodes before the worker
    // retires them, so the worker's teardown reclaim can free none of them
    // and the donation path is fully exercised.
    let (ptr_tx, ptr_rx) = std::sync::mpsc::channel::<Vec<usize>>();
    let (go_tx, go_rx) = std::sync::mpsc::channel::<()>();
    let worker = std::thread::spawn(move || {
        let mut t = d.register();
        let ptrs: Vec<usize> = (0..N)
            .map(|_| Box::into_raw(Box::new(Canary(7))) as usize)
            .collect();
        ptr_tx.send(ptrs.clone()).unwrap();
        go_rx.recv().unwrap();
        for &p in &ptrs {
            unsafe { t.retire(p as *mut Canary) };
        }
        panic!("worker dies mid-operation");
    });
    let ptrs = ptr_rx.recv().unwrap();
    let mut hps = Vec::new();
    for &p in &ptrs {
        let hp = survivor.hazard_pointer();
        hp.protect_raw(p as *mut Canary);
        hps.push(hp);
    }
    go_tx.send(()).unwrap();
    assert!(worker.join().is_err(), "worker must have panicked");

    assert_eq!(DROPS.load(Relaxed), 0, "protected nodes must survive");
    assert_eq!(d.orphan_count(), N, "panicking worker donated everything");
    for hp in hps {
        survivor.recycle(hp);
    }
    survivor.reclaim(); // adopts orphans and frees all of them
    assert_eq!(DROPS.load(Relaxed), N, "survivor freed every orphan");
    assert_eq!(d.orphan_count(), 0);
    assert_eq!(survivor.retired_count(), 0);
}

#[test]
fn ebr_panicking_worker_donates_garbage() {
    // Same property for EBR: a panic while a guard is live must unwind
    // through Guard (unpin) and LocalHandle (unregister + donate) so the
    // epoch is not wedged and no garbage is stranded.
    let _serial = serial();
    static DROPS: AtomicUsize = AtomicUsize::new(0);
    struct Canary(#[allow(dead_code)] u64);
    impl Drop for Canary {
        fn drop(&mut self) {
            DROPS.fetch_add(1, Relaxed);
        }
    }
    const N: usize = 20;

    let c: &'static ebr::Collector = Box::leak(Box::new(ebr::Collector::new()));
    let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        let mut h = c.register();
        let g = h.pin();
        for _ in 0..N {
            unsafe { g.defer_destroy(smr_common::Shared::from_owned(Canary(7))) };
        }
        panic!("worker dies inside a critical section");
    }));
    assert!(err.is_err());
    assert_eq!(DROPS.load(Relaxed), 0, "nothing freed during the unwind");
    assert_eq!(
        c.participants(),
        0,
        "panicking worker must have unregistered"
    );

    // The epoch is free to advance again; a survivor adopts and frees all N.
    let mut survivor = c.register();
    for _ in 0..100 {
        let g = survivor.pin();
        g.flush();
        drop(g);
        if DROPS.load(Relaxed) == N {
            break;
        }
    }
    assert_eq!(DROPS.load(Relaxed), N, "survivor freed every orphan");
}
