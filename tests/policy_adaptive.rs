//! End-to-end exercise of the [`Adaptive`] reclamation policy against a
//! real HP domain and the PR-4 [`GarbageWatchdog`] — the integration half
//! of the policy test story (the trigger-equivalence property tests live
//! with `smr_common::policy` itself).
//!
//! The lifecycle under test is the fig12 scan-storm narrative:
//!
//! 1. a stalled collector (frozen watchdog progress token) produces a
//!    pressure verdict, and the policy tightens within that one sample;
//! 2. while tightened, the trigger fires at the floored threshold, so the
//!    retired backlog stays far below the base trigger;
//! 3. once the watchdog sees progress again, each completed scan relaxes
//!    the threshold geometrically back to the base;
//! 4. at every point — including maximum relaxation with live hazard
//!    slots — the backlog respects the derived Table-1 cap
//!    `k·H + RECLAIM_THRESHOLD`, because the effective threshold is
//!    clamped to that expression by construction.

use std::sync::{Arc, Mutex};
use std::time::Duration;

use smr_common::counters;
use smr_common::policy::{Adaptive, Verdict};
use smr_common::watchdog::{GarbageWatchdog, WatchdogStatus};

/// The adaptive tighten/relax counters are process-global and asserted as
/// exact deltas: tests in this binary take turns.
static SERIAL: Mutex<()> = Mutex::new(());

/// Retires `n` heap nodes on `thread`, returning the highest backlog seen
/// after any single retire — the worst point the installed policy let the
/// bag reach.
fn churn(thread: &mut hp::Thread, n: usize) -> usize {
    let mut peak = 0;
    for i in 0..n {
        unsafe { thread.retire(Box::into_raw(Box::new(i as u64))) };
        peak = peak.max(thread.retired_count());
    }
    peak
}

#[test]
fn stall_tightens_within_one_sample_then_relaxes_after_release() {
    let _guard = SERIAL.lock().unwrap();
    let domain: &'static hp::Domain = Box::leak(Box::new(hp::Domain::new()));
    let adaptive = Arc::new(Adaptive::new(hp::legacy_trigger()));
    assert!(domain.set_policy(adaptive.clone()), "fresh domain must accept a policy");
    let mut thread = domain.register();

    // Healthy steady state first: no verdict reported yet (`Unknown` relaxes
    // like `Healthy`), scans fire at the base trigger, and even the relaxed
    // level cannot push past it — with no hazard slots the k·H+floor cap
    // *is* the base threshold.
    let base = hp::legacy_trigger().threshold(domain.slot_capacity());
    let peak = churn(&mut thread, 3 * base);
    assert!(peak <= base, "healthy churn peaked at {peak} > base trigger {base}");

    // The stalled collector: the watchdog's progress token freezes across
    // the stall window. The first post-window sample is the pressure
    // verdict, and feeding it to the domain must tighten immediately.
    let bound = hp::legacy_trigger().bound(domain.slot_capacity());
    let mut watchdog = GarbageWatchdog::new(bound, Duration::from_millis(10));
    let status = watchdog.observe(1, thread.retired_count());
    assert_eq!(status, WatchdogStatus::Healthy, "fresh token must read healthy");

    let tightens_before = counters::adaptive_tightens();
    std::thread::sleep(Duration::from_millis(15));
    let status = watchdog.observe(1, thread.retired_count());
    let verdict = Verdict::from(&status);
    assert!(verdict.is_pressure(), "frozen token past the window must be pressure: {status:?}");
    domain.report_verdict(verdict);
    assert_eq!(
        counters::adaptive_tightens(),
        tightens_before + 1,
        "one pressure sample must tighten exactly once"
    );
    assert!(adaptive.level() < 0, "pressure must leave the level tightened");
    let tightened = adaptive.effective_threshold(domain.slot_capacity());
    assert!(
        tightened < base,
        "tightened threshold {tightened} must undercut the base {base}"
    );

    // Under pressure the trigger fires at the tightened threshold (and the
    // firing scans must NOT relax it), so the backlog stays pinned low.
    let peak = churn(&mut thread, 3 * base);
    assert!(peak <= tightened, "pressure churn peaked at {peak} > tightened {tightened}");
    assert!(adaptive.level() < 0, "scans under pressure must not relax");

    // Repeat verdicts are idempotent: already at the floor, no re-tighten.
    domain.report_verdict(Verdict::GrowingUnbounded);
    assert_eq!(counters::adaptive_tightens(), tightens_before + 1);

    // Release: the token advances, the verdict goes healthy, and each
    // completed scan now steps the threshold back up geometrically —
    // 16 → 32 → 64 → base, where the k·H+floor clamp pins it.
    let relaxes_before = counters::adaptive_relaxes();
    let status = watchdog.observe(2, thread.retired_count());
    assert_eq!(status, WatchdogStatus::Healthy, "advanced token must read healthy");
    domain.report_verdict(Verdict::from(&status));
    churn(&mut thread, 6 * base);
    assert!(
        counters::adaptive_relaxes() > relaxes_before,
        "healthy scans after release must relax the level"
    );
    assert!(adaptive.level() >= 0, "level {} still tightened after release", adaptive.level());
    assert_eq!(
        adaptive.effective_threshold(domain.slot_capacity()),
        base,
        "relaxation must settle back at the (clamped) base threshold"
    );

    thread.reclaim();
    assert_eq!(thread.retired_count(), 0, "nothing protected: final scan drains the bag");
}

#[test]
fn relaxed_threshold_never_escapes_the_derived_bound() {
    let _guard = SERIAL.lock().unwrap();
    let domain: &'static hp::Domain = Box::leak(Box::new(hp::Domain::new()));
    let adaptive = Arc::new(Adaptive::new(hp::legacy_trigger()));
    assert!(domain.set_policy(adaptive.clone()));
    let mut thread = domain.register();

    // One live hazard slot (H = 1) protecting a retired node: scans must
    // carry it as a survivor, and the Table-1 cap becomes
    // k·H + RECLAIM_THRESHOLD — strictly between the base trigger and the
    // unclamped fully-relaxed threshold, so only the clamp keeps the
    // backlog inside it.
    let slot = thread.hazard_pointer();
    let protected = Box::into_raw(Box::new(0xDEADu64));
    slot.protect_raw(protected);
    unsafe { thread.retire(protected) };

    let slots = domain.slot_capacity();
    assert!(slots >= 1, "acquiring a hazard pointer must allocate a slot");
    let base = hp::legacy_trigger().threshold(slots);
    let bound = hp::legacy_trigger().bound(slots);
    assert!(
        base << 2 > bound,
        "precondition: unclamped max relaxation ({}) must exceed the bound ({bound}), \
         or this test would not exercise the clamp",
        base << 2
    );

    // Churn far past every relaxation step. No verdict is ever reported
    // (the bench-harness shape), so the level climbs to its maximum — and
    // the backlog must still never cross the derived bound.
    let peak = churn(&mut thread, 8 * bound);
    assert!(adaptive.level() > 0, "healthy churn must have relaxed the level");
    assert!(
        adaptive.effective_threshold(slots) <= bound,
        "effective threshold escaped the k·H+floor clamp"
    );
    assert!(peak <= bound, "relaxed churn peaked at {peak} > derived bound {bound}");
    assert!(
        thread.retired_count() >= 1,
        "the protected node must have survived every scan"
    );

    // Drop protection: the survivor is freed by the next scan.
    slot.reset();
    thread.reclaim();
    assert_eq!(thread.retired_count(), 0, "unprotected survivor must drain");
    thread.recycle(slot);
}
