//! Shared helpers for the cross-crate integration tests.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, Ordering::Relaxed};

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use smr_common::ConcurrentMap;

/// Random single-threaded trace cross-checked against a `BTreeMap`.
pub fn check_sequential<M: ConcurrentMap<u64, u64>>(steps: u64, key_space: u64, seed: u64) {
    let m = M::new();
    let mut h = m.handle();
    let mut model: BTreeMap<u64, u64> = BTreeMap::new();
    let mut rng = SmallRng::seed_from_u64(seed);
    for i in 0..steps {
        let key = rng.gen_range(0..key_space);
        match rng.gen_range(0..3) {
            0 => {
                let expected = !model.contains_key(&key);
                assert_eq!(m.insert(&mut h, key, i), expected, "insert({key})@{i}");
                if expected {
                    model.insert(key, i);
                }
            }
            1 => {
                assert_eq!(m.remove(&mut h, &key), model.remove(&key), "remove({key})@{i}");
            }
            _ => {
                assert_eq!(
                    m.get(&mut h, &key),
                    model.get(&key).copied(),
                    "get({key})@{i}"
                );
            }
        }
    }
}

/// Multi-threaded stress with per-key net accounting.
pub fn check_concurrent<M>(threads: usize, ops_per_thread: usize, keys: usize)
where
    M: ConcurrentMap<u64, u64> + Send + Sync,
{
    let m = M::new();
    let net: Vec<AtomicI64> = (0..keys).map(|_| AtomicI64::new(0)).collect();
    std::thread::scope(|s| {
        for tid in 0..threads {
            let m = &m;
            let net = &net;
            s.spawn(move || {
                let mut h = m.handle();
                let mut rng = SmallRng::seed_from_u64(tid as u64 * 31 + 7);
                for _ in 0..ops_per_thread {
                    let key = rng.gen_range(0..keys as u64);
                    match rng.gen_range(0..3) {
                        0 => {
                            if m.insert(&mut h, key, key * 1000) {
                                net[key as usize].fetch_add(1, Relaxed);
                            }
                        }
                        1 => {
                            if let Some(v) = m.remove(&mut h, &key) {
                                assert_eq!(v, key * 1000, "corrupt value for key {key}");
                                net[key as usize].fetch_sub(1, Relaxed);
                            }
                        }
                        _ => {
                            if let Some(v) = m.get(&mut h, &key) {
                                assert_eq!(v, key * 1000, "corrupt value for key {key}");
                            }
                        }
                    }
                }
            });
        }
    });
    let mut h = m.handle();
    for key in 0..keys as u64 {
        let n = net[key as usize].load(Relaxed);
        assert!(n == 0 || n == 1, "key {key}: net count {n}");
        assert_eq!(
            m.get(&mut h, &key).is_some(),
            n == 1,
            "key {key}: final presence disagrees with accounting"
        );
    }
}
