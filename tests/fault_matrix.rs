//! The scheme × fault adversarial robustness matrix (ISSUE 5 tentpole).
//!
//! Each test installs a deterministic [`smr_common::fault`] plan that
//! attacks one dangerous interleaving *inside* protect/retire/unlink —
//! stalled readers, mid-invalidation preemption, panicking writers,
//! dead-thread orphan storms, retire storms under a stalled collector —
//! and asserts the scheme's Table 1 contract with exact counter deltas:
//! bounded garbage for HP/HP++/PEBR, the mid-enter-ejection and stalled-
//! leaver bounds for hyaline, unbounded growth (flagged by the
//! [`GarbageWatchdog`]) for EBR, and zero leaked nodes once faults clear.
//!
//! Requires `--features fault-injection`. Plans serialize on a process
//! lock, so these tests are safe under the default parallel test runner.
#![cfg(feature = "fault-injection")]

use std::sync::atomic::{AtomicUsize, Ordering::Relaxed};
use std::time::{Duration, Instant};

use smr_common::fault::{self, FaultAction};
use smr_common::watchdog::{GarbageWatchdog, WatchdogStatus};
use smr_common::ConcurrentMap;

/// Spin until `cond` holds, failing the test after a generous deadline so a
/// broken handshake cannot hang CI (the stall itself times out at 30 s).
fn wait_for(what: &str, mut cond: impl FnMut() -> bool) {
    let deadline = Instant::now() + Duration::from_secs(20);
    while !cond() {
        assert!(Instant::now() < deadline, "timed out waiting for {what}");
        std::thread::yield_now();
    }
}

#[test]
fn schedule_is_deterministic_for_same_seed() {
    // Same seed + same single-threaded operation sequence must replay the
    // exact same injection log (the acceptance criterion for
    // `SMR_FAULT_SEED` reproducibility). Both runs execute on this thread,
    // so the per-thread PRNG reseeds identically on each plan install.
    fn run(seed: u64) -> Vec<fault::LogEntry> {
        let _plan = fault::plan().seeded(seed, 4).install();
        let d: &'static hp::Domain = Box::leak(Box::new(hp::Domain::new()));
        let mut t = d.register();
        let hp = t.hazard_pointer();
        let slot = smr_common::Atomic::new(0u64);
        for i in 0..200u64 {
            let p = slot.load(std::sync::atomic::Ordering::Acquire);
            let _ = hp.try_protect(p, &slot);
            let old = slot.swap(
                smr_common::Shared::from_owned(i),
                std::sync::atomic::Ordering::AcqRel,
            );
            hp.reset();
            unsafe { t.retire(old.as_raw()) };
        }
        t.reclaim();
        t.recycle(hp);
        drop(t);
        unsafe { slot.into_owned() };
        fault::take_log()
    }

    let a = run(0xDEC0DE);
    let b = run(0xDEC0DE);
    assert!(!a.is_empty(), "seeded run must take some injections");
    assert_eq!(a, b, "same seed must replay the same injection sequence");
}

#[test]
fn hp_stalled_reader_keeps_garbage_bounded() {
    // A reader stalled forever in the announce-to-validate window holds a
    // published hazard. HP's contract: the writer keeps reclaiming around
    // it — at most the announced node survives, the retired bag never
    // exceeds the adaptive threshold (Table 1 "bounded").
    static DROPS: AtomicUsize = AtomicUsize::new(0);
    struct Canary(#[allow(dead_code)] u64);
    impl Drop for Canary {
        fn drop(&mut self) {
            DROPS.fetch_add(1, Relaxed);
        }
    }

    let plan = fault::plan()
        .at("hp::protect::after_announce", 1, FaultAction::Stall)
        .install();
    let d: &'static hp::Domain = Box::leak(Box::new(hp::Domain::new()));
    let slot: &'static smr_common::Atomic<Canary> =
        Box::leak(Box::new(smr_common::Atomic::new(Canary(7))));

    let victim = std::thread::spawn(move || {
        let mut t = d.register();
        let hp = t.hazard_pointer();
        let p = slot.load(std::sync::atomic::Ordering::Acquire);
        // Stalls inside the announce closure; when released, validation
        // fails (the writer has swapped the slot) and protection is reset.
        let _ = hp.try_protect(p, slot);
        t.recycle(hp);
    });
    wait_for("victim stalled in protect", || {
        fault::stalled_count("hp::protect::after_announce") == 1
    });

    // Writer churn: the victim's announced hazard covers the initial node
    // only; every other retired node must be freed by threshold reclaims.
    let mut writer = d.register();
    let n = 3 * writer.reclaim_threshold();
    for _ in 0..n {
        let old = slot.swap(
            smr_common::Shared::from_owned(Canary(7)),
            std::sync::atomic::Ordering::AcqRel,
        );
        unsafe { writer.retire(old.as_raw()) };
        assert!(
            writer.retired_count() <= writer.reclaim_threshold(),
            "stalled reader must not break the retire bound: {} > {}",
            writer.retired_count(),
            writer.reclaim_threshold()
        );
    }
    // The stalled reader pinned exactly one node (the initial one).
    assert!(
        DROPS.load(Relaxed) >= n - writer.reclaim_threshold() - 1,
        "writer reclaimed around the stalled reader: {} freed of {n}",
        DROPS.load(Relaxed)
    );

    fault::release("hp::protect::after_announce");
    victim.join().unwrap();
    drop(plan);

    // Exact balance: n retires (initial node + n-1 swapped-out canaries;
    // the last canary still sits in the slot, freed below).
    writer.reclaim();
    assert_eq!(DROPS.load(Relaxed), n, "every retired node freed");
    unsafe { slot.load(std::sync::atomic::Ordering::Acquire).drop_owned() };
}

#[test]
fn ebr_stalled_pin_wedges_epoch_and_watchdog_reports_growth() {
    // The EBR failure mode: a thread stalled inside pin (epoch announced,
    // not yet validated) blocks every advance past epoch+1. Garbage grows
    // without bound and the GarbageWatchdog must say so; releasing the
    // stall lets a survivor reclaim everything, to the exact node.
    static DROPS: AtomicUsize = AtomicUsize::new(0);
    struct Canary(#[allow(dead_code)] u64);
    impl Drop for Canary {
        fn drop(&mut self) {
            DROPS.fetch_add(1, Relaxed);
        }
    }

    let plan = fault::plan()
        .at("ebr::pin::before_validate", 1, FaultAction::Stall)
        .install();
    let c: &'static ebr::Collector = Box::leak(Box::new(ebr::Collector::new()));

    let victim = std::thread::spawn(move || {
        let mut h = c.register();
        let g = h.pin(); // stalls inside pin_slow
        drop(g);
    });
    wait_for("victim stalled in pin", || {
        fault::stalled_count("ebr::pin::before_validate") == 1
    });

    // Worker churn on this thread (the nth=1 trigger is consumed, so our
    // own pins pass through).
    let mut worker = c.register();
    let bound = 4 * c.collect_threshold();
    let mut watchdog = GarbageWatchdog::new(bound, Duration::from_millis(50));
    let mut created = 0usize;
    let mut saw_growth = None;
    for _ in 0..400 {
        let g = worker.pin();
        for _ in 0..64 {
            unsafe { g.defer_destroy(smr_common::Shared::from_owned(Canary(7))) };
            created += 1;
        }
        g.flush(); // tries to advance; wedged behind the stalled pin
        drop(g);
        let garbage = created - DROPS.load(Relaxed);
        if let s @ WatchdogStatus::GrowingUnbounded { .. } =
            watchdog.observe(c.epoch(), garbage)
        {
            saw_growth = Some(s);
            break;
        }
        std::thread::sleep(Duration::from_millis(2));
    }
    let status = saw_growth.expect("watchdog must flag unbounded EBR growth");
    match status {
        WatchdogStatus::GrowingUnbounded { garbage, .. } => {
            assert!(garbage > bound, "flagged garbage {garbage} exceeds {bound}")
        }
        _ => unreachable!(),
    }

    fault::release("ebr::pin::before_validate");
    victim.join().unwrap();
    drop(plan);

    // With the stall gone the epoch advances again: a few flushes free
    // every single canary (exact counter delta — zero leaks).
    for _ in 0..100 {
        let g = worker.pin();
        g.flush();
        drop(g);
        if DROPS.load(Relaxed) == created {
            break;
        }
    }
    assert_eq!(DROPS.load(Relaxed), created, "all {created} canaries freed");
}

#[test]
fn pebr_ejects_straggler_despite_scheduling_noise() {
    // PEBR's robustness mechanism under injected scheduling chaos: yield
    // storms on every other pin and on the ejection mark itself must not
    // stop the reclaimer from ejecting a straggler, and the straggler's
    // refresh must restore protection.
    use smr_common::SchemeGuard;

    let plan = fault::plan()
        .every("pebr::pin::before_validate", 2, FaultAction::YieldStorm(50))
        .every("pebr::eject::after_mark", 1, FaultAction::YieldStorm(20))
        .install();
    let c: &'static pebr::Collector = Box::leak(Box::new(pebr::Collector::new()));
    let mut straggler = c.register();
    let mut reclaimer = c.register();

    let mut sg = straggler.pin();
    assert!(sg.validate());
    {
        let rg = reclaimer.pin();
        for _ in 0..(pebr::EJECT_THRESHOLD + 2 * pebr::COLLECT_THRESHOLD) {
            unsafe { rg.defer_destroy_inner(smr_common::Shared::from_owned(0u64)) };
        }
        drop(rg);
    }
    assert!(
        !sg.validate(),
        "straggler must be ejected despite injected yield storms"
    );
    assert!(fault::hits("pebr::eject::after_mark") > 0, "ejection ran");
    sg.refresh();
    assert!(sg.validate(), "refresh restores a protective pin");
    drop(sg);
    drop(plan);
}

#[test]
fn hpp_mid_invalidation_preemption_leaks_nothing() {
    // Preempt HP++ threads inside `do_invalidation` — after a batch's nodes
    // are invalidated but before its frontier protections are parked — and
    // on the unlink frontier window, while two threads churn one list.
    // Contract: deferred invalidation tolerates arbitrary preemption there;
    // once the threads quiesce, a fresh thread reclaims every node.
    let plan = fault::plan()
        .every(
            "hpp::try_unlink::mid_invalidation",
            1,
            FaultAction::YieldStorm(20),
        )
        .every("hpp::try_unlink::after_frontier", 3, FaultAction::YieldStorm(10))
        .every("hpp::reclaim::before_revoke", 2, FaultAction::YieldStorm(15))
        .install();

    let before = smr_common::counters::garbage_now();
    let m: ds::hpp::HHSList<u64, u64> = ConcurrentMap::new();
    std::thread::scope(|s| {
        for t in 0..2u64 {
            let m = &m;
            s.spawn(move || {
                let mut h = m.handle();
                for r in 0..150 {
                    for k in 0..8 {
                        m.insert(&mut h, t * 1000 + k, r);
                    }
                    for k in 0..8 {
                        m.remove(&mut h, &(t * 1000 + k));
                    }
                }
            });
        }
    });
    drop(plan);

    // Both churners are gone (their teardowns donated leftovers). A fresh
    // thread adopts and frees everything: global garbage returns to — or
    // below — where it started (below if earlier tests left orphans).
    let mut t = hp_plus::default_domain().register();
    for _ in 0..100 {
        t.reclaim();
        if smr_common::counters::garbage_now() <= before {
            break;
        }
    }
    let after = smr_common::counters::garbage_now();
    assert!(
        after <= before,
        "mid-invalidation preemption leaked {} nodes",
        after - before
    );
}

#[test]
fn hp_panicking_teardown_still_donates() {
    // A thread that dies *inside its own teardown* (injected panic at the
    // start of the final reclaim) must still donate every retired node —
    // the satellite-1 Drop guard in `hp::Thread::drop`.
    static DROPS: AtomicUsize = AtomicUsize::new(0);
    struct Canary(#[allow(dead_code)] u64);
    impl Drop for Canary {
        fn drop(&mut self) {
            DROPS.fetch_add(1, Relaxed);
        }
    }
    const N: usize = 50; // below RECLAIM_THRESHOLD: nothing freed early

    let plan = fault::plan()
        .at("hp::teardown::before_reclaim", 1, FaultAction::Panic)
        .install();
    let d: &'static hp::Domain = Box::leak(Box::new(hp::Domain::new()));
    let mut t = d.register();
    for _ in 0..N {
        let p = Box::into_raw(Box::new(Canary(7)));
        unsafe { t.retire(p) };
    }
    let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| drop(t)));
    assert!(err.is_err(), "teardown must have panicked");
    assert_eq!(DROPS.load(Relaxed), 0, "nothing freed by the dying thread");
    assert_eq!(d.orphan_count(), N, "the Drop guard donated all {N} nodes");

    let mut survivor = d.register();
    survivor.reclaim();
    assert_eq!(DROPS.load(Relaxed), N, "survivor adopted and freed all {N}");
    assert_eq!(d.orphan_count(), 0);
    assert_eq!(survivor.retired_count(), 0);
    drop(plan);
}

#[test]
fn ebr_dead_thread_orphan_storm_reclaims_exactly() {
    // The dead-thread acceptance criterion: 8 threads die without flushing
    // (donating via handle teardown) under seeded scheduling noise; the
    // survivor must reclaim *exactly* every node — zero leaks, asserted by
    // exact counter deltas.
    static DROPS: AtomicUsize = AtomicUsize::new(0);
    struct Canary(#[allow(dead_code)] u64);
    impl Drop for Canary {
        fn drop(&mut self) {
            DROPS.fetch_add(1, Relaxed);
        }
    }
    const THREADS: usize = 8;
    const PER_THREAD: usize = 100;

    let plan = fault::plan().seeded(0xC0FFEE, 16).install();
    let c: &'static ebr::Collector = Box::leak(Box::new(ebr::Collector::new()));
    std::thread::scope(|s| {
        for _ in 0..THREADS {
            s.spawn(|| {
                let mut h = c.register();
                for _ in 0..PER_THREAD / 4 {
                    let g = h.pin();
                    for _ in 0..4 {
                        unsafe { g.defer_destroy(smr_common::Shared::from_owned(Canary(7))) };
                    }
                    drop(g);
                }
                // The handle drops dead without a flush: teardown donates.
            });
        }
    });
    drop(plan);

    let total = THREADS * PER_THREAD;
    let mut survivor = c.register();
    for _ in 0..1000 {
        let g = survivor.pin();
        g.flush();
        drop(g);
        if DROPS.load(Relaxed) == total {
            break;
        }
    }
    assert_eq!(
        DROPS.load(Relaxed),
        total,
        "dead threads must leak zero of their {total} retired nodes"
    );
}

#[test]
fn hp_retire_storm_under_stalled_collector_stays_bounded() {
    // One thread stalls *inside reclaim* (mid-scan, its bag swapped out).
    // Other threads' retire storms must keep reclaiming independently —
    // per-thread bags are private, so a stalled collector bounds only its
    // own garbage (Table 1 "bounded", per thread).
    static DROPS: AtomicUsize = AtomicUsize::new(0);
    struct Canary(#[allow(dead_code)] u64);
    impl Drop for Canary {
        fn drop(&mut self) {
            DROPS.fetch_add(1, Relaxed);
        }
    }

    let plan = fault::plan()
        .at("hp::reclaim::before_fence", 1, FaultAction::Stall)
        .install();
    let d: &'static hp::Domain = Box::leak(Box::new(hp::Domain::new()));

    let victim = std::thread::spawn(move || {
        let mut t = d.register();
        let n = t.reclaim_threshold();
        // The n-th retire triggers reclaim, which stalls mid-scan.
        for _ in 0..n {
            let p = Box::into_raw(Box::new(Canary(7)));
            unsafe { t.retire(p) };
        }
        n
    });
    wait_for("victim stalled in reclaim", || {
        fault::stalled_count("hp::reclaim::before_fence") == 1
    });

    const WORKER_N: usize = 2000;
    let workers: Vec<_> = (0..3)
        .map(|_| {
            std::thread::spawn(move || {
                let mut t = d.register();
                for _ in 0..WORKER_N {
                    let p = Box::into_raw(Box::new(Canary(7)));
                    unsafe { t.retire(p) };
                    assert!(
                        t.retired_count() <= t.reclaim_threshold(),
                        "a stalled collector must not break other threads' bounds"
                    );
                }
            })
        })
        .collect();
    for w in workers {
        w.join().unwrap();
    }
    // Workers freed (almost) everything while the victim was wedged.
    assert!(
        DROPS.load(Relaxed) >= 3 * WORKER_N - 3 * hp::RECLAIM_THRESHOLD,
        "retire storm reclaimed concurrently: {} freed",
        DROPS.load(Relaxed)
    );

    fault::release("hp::reclaim::before_fence");
    let victim_n = victim.join().unwrap();
    drop(plan);

    // Exact balance: every node from the victim and all workers is freed
    // once all threads have torn down (no survivor sweep needed — nothing
    // was protected).
    assert_eq!(
        DROPS.load(Relaxed),
        victim_n + 3 * WORKER_N,
        "zero leaks after the stall clears"
    );
}

#[test]
fn ebr_retire_storm_under_stalled_collector_grows_then_drains() {
    // The EBR counterpart: the victim stalls inside `try_advance` — after
    // verifying all participants but *before publishing* the new epoch —
    // while still pinned. The epoch wedges one step later, a concurrent
    // retire storm grows unboundedly (watchdog-flagged), and releasing the
    // stall drains everything to the exact node.
    static DROPS: AtomicUsize = AtomicUsize::new(0);
    struct Canary(#[allow(dead_code)] u64);
    impl Drop for Canary {
        fn drop(&mut self) {
            DROPS.fetch_add(1, Relaxed);
        }
    }

    let plan = fault::plan()
        .at("ebr::advance::before_publish", 1, FaultAction::Stall)
        .install();
    let c: &'static ebr::Collector = Box::leak(Box::new(ebr::Collector::new()));
    static VICTIM_CREATED: AtomicUsize = AtomicUsize::new(0);

    let victim = std::thread::spawn(move || {
        let mut h = c.register();
        let g = h.pin();
        // Enough deferred nodes to trigger a collection, whose try_advance
        // stalls at the publish point (still pinned!).
        for _ in 0..c.collect_threshold() + 1 {
            unsafe { g.defer_destroy(smr_common::Shared::from_owned(Canary(7))) };
            VICTIM_CREATED.fetch_add(1, Relaxed);
        }
        drop(g);
    });
    wait_for("victim stalled in try_advance", || {
        fault::stalled_count("ebr::advance::before_publish") == 1
    });

    let mut worker = c.register();
    let bound = 4 * c.collect_threshold();
    let mut watchdog = GarbageWatchdog::new(bound, Duration::from_millis(50));
    let mut created = 0usize;
    let mut flagged = false;
    for _ in 0..400 {
        let g = worker.pin();
        for _ in 0..64 {
            unsafe { g.defer_destroy(smr_common::Shared::from_owned(Canary(7))) };
            created += 1;
        }
        g.flush();
        drop(g);
        let garbage = created + VICTIM_CREATED.load(Relaxed) - DROPS.load(Relaxed);
        if matches!(
            watchdog.observe(c.epoch(), garbage),
            WatchdogStatus::GrowingUnbounded { .. }
        ) {
            flagged = true;
            break;
        }
        std::thread::sleep(Duration::from_millis(2));
    }
    assert!(flagged, "watchdog must flag growth behind the stalled advance");

    fault::release("ebr::advance::before_publish");
    victim.join().unwrap();
    drop(plan);

    let total = created + VICTIM_CREATED.load(Relaxed);
    for _ in 0..200 {
        let g = worker.pin();
        g.flush();
        drop(g);
        if DROPS.load(Relaxed) == total {
            break;
        }
    }
    assert_eq!(DROPS.load(Relaxed), total, "all {total} canaries freed");
}

#[test]
fn backoff_parked_thread_keeps_garbage_bounded_and_drains() {
    // Contention-machinery adversary: a thread escalates its CAS backoff all
    // the way to the park phase *while still holding its hazard pointer*
    // (exactly the state of a retry loop between failed attempts), and the
    // park stalls forever — an OS descheduling it indefinitely. Contract:
    // the sleeper pins at most its one announced node; every other thread's
    // retire bound holds, and releasing the stall drains to the exact node.
    static DROPS: AtomicUsize = AtomicUsize::new(0);
    struct Canary(#[allow(dead_code)] u64);
    impl Drop for Canary {
        fn drop(&mut self) {
            DROPS.fetch_add(1, Relaxed);
        }
    }

    let plan = fault::plan()
        .at("backoff::park", 1, FaultAction::Stall)
        .install();
    let d: &'static hp::Domain = Box::leak(Box::new(hp::Domain::new()));
    let slot: &'static smr_common::Atomic<Canary> =
        Box::leak(Box::new(smr_common::Atomic::new(Canary(7))));

    let victim = std::thread::spawn(move || {
        let mut t = d.register();
        let hp = t.hazard_pointer();
        let p = slot.load(std::sync::atomic::Ordering::Acquire);
        let _ = hp.try_protect(p, slot);
        // Mid-retry-loop: escalate a tiny-config backoff into the park
        // phase while the protection is still published. The first park
        // stalls on the fault point; later snoozes (after release) are
        // 1 µs sleeps.
        let mut b = smr_common::backoff::Backoff::with_config(
            smr_common::backoff::BackoffConfig {
                spin_limit: 0,
                max_exp: 0,
                disabled: false,
            },
            0xBACC0FF,
        );
        for _ in 0..16 {
            b.snooze();
        }
        hp.reset();
        t.recycle(hp);
    });
    wait_for("victim stalled in backoff park", || {
        fault::stalled_count("backoff::park") == 1
    });

    // Writer churn around the sleeper: its hazard covers the initial node
    // only, so every other thread keeps its Table 1 retire bound.
    let mut writer = d.register();
    let n = 3 * writer.reclaim_threshold();
    for _ in 0..n {
        let old = slot.swap(
            smr_common::Shared::from_owned(Canary(7)),
            std::sync::atomic::Ordering::AcqRel,
        );
        unsafe { writer.retire(old.as_raw()) };
        assert!(
            writer.retired_count() <= writer.reclaim_threshold(),
            "a parked thread must not break the retire bound: {} > {}",
            writer.retired_count(),
            writer.reclaim_threshold()
        );
    }
    assert!(
        DROPS.load(Relaxed) >= n - writer.reclaim_threshold() - 1,
        "writer reclaimed around the parked thread: {} freed of {n}",
        DROPS.load(Relaxed)
    );

    fault::release("backoff::park");
    victim.join().unwrap();
    drop(plan);

    // Exact balance once the sleeper wakes and drops its hazard: all n
    // retired nodes freed, only the slot's final occupant left.
    writer.reclaim();
    assert_eq!(DROPS.load(Relaxed), n, "every retired node freed");
    unsafe { slot.load(std::sync::atomic::Ordering::Acquire).drop_owned() };
}

#[test]
fn hyaline_stalled_enter_is_ejected_and_garbage_stays_bounded() {
    // Hyaline's answer to the stall EBR cannot survive: a thread stalled in
    // the announce-to-validate window (era + PENDING published, critical
    // section not yet validated) holds no references, so the next handover
    // ejects its stale announcement instead of reserving it a batch node.
    // Contract: churn from other threads stays under the derived
    // batches-in-flight bound, and releasing the stall drains to the exact
    // node — the victim re-validates against the bumped era and pins
    // nothing retroactively.
    static DROPS: AtomicUsize = AtomicUsize::new(0);
    struct Canary(#[allow(dead_code)] u64);
    impl Drop for Canary {
        fn drop(&mut self) {
            DROPS.fetch_add(1, Relaxed);
        }
    }

    let plan = fault::plan()
        .at("hyaline::enter::before_validate", 1, FaultAction::Stall)
        .install();
    let d: &'static hyaline::Domain = Box::leak(Box::new(hyaline::Domain::new()));

    let victim = std::thread::spawn(move || {
        let mut h = d.register();
        let g = h.pin(); // stalls mid-enter: announced, unvalidated
        drop(g);
    });
    wait_for("victim stalled in enter", || {
        fault::stalled_count("hyaline::enter::before_validate") == 1
    });

    // Worker churn (the nth=1 trigger is consumed, so our own enters pass
    // through). Every handover ejects the victim and frees the batch as
    // soon as our own leave returns its reference.
    let mut worker = d.register();
    let bound = hyaline::garbage_bound(2); // victim + worker
    let mut created = 0usize;
    for _ in 0..40 {
        let g = worker.pin();
        for _ in 0..64 {
            unsafe { g.defer_destroy(smr_common::Shared::from_owned(Canary(7))) };
            created += 1;
        }
        g.flush();
        drop(g);
        let garbage = created - DROPS.load(Relaxed);
        assert!(
            garbage <= bound,
            "stalled enter must not break the handover bound: {garbage} > {bound}"
        );
    }
    assert!(
        DROPS.load(Relaxed) > 0,
        "handovers reclaimed around the stalled enter"
    );

    fault::release("hyaline::enter::before_validate");
    victim.join().unwrap();
    drop(plan);

    // Exact balance: the released victim validated a fresh era, so it never
    // held a reference — a final flush round frees every single canary.
    for _ in 0..8 {
        let g = worker.pin();
        g.flush();
        drop(g);
        if DROPS.load(Relaxed) == created {
            break;
        }
    }
    assert_eq!(DROPS.load(Relaxed), created, "all {created} canaries freed");
}

#[test]
fn hyaline_stalled_leaver_pins_one_batch_and_drains_exactly() {
    // The handover-decrement window: a leaver that detached its retirement
    // list (critical section already over — its slot word is 0) but stalled
    // before releasing the references. Contract: exactly the batches on the
    // detached list stay pinned; later handovers skip the empty slot, so
    // everyone else's garbage keeps draining, and the release frees the
    // held batch to the exact node.
    use std::sync::atomic::AtomicBool;
    use std::sync::atomic::Ordering::{Acquire, Release};
    static DROPS: AtomicUsize = AtomicUsize::new(0);
    struct Canary(#[allow(dead_code)] u64);
    impl Drop for Canary {
        fn drop(&mut self) {
            DROPS.fetch_add(1, Relaxed);
        }
    }
    static PINNED: AtomicBool = AtomicBool::new(false);
    static HANDED: AtomicBool = AtomicBool::new(false);
    const FIRST: usize = 48;

    let plan = fault::plan()
        .at("hyaline::leave::before_decrement", 1, FaultAction::Stall)
        .install();
    let d: &'static hyaline::Domain = Box::leak(Box::new(hyaline::Domain::new()));

    let victim = std::thread::spawn(move || {
        let mut h = d.register();
        let g = h.pin();
        PINNED.store(true, Release);
        while !HANDED.load(Acquire) {
            std::thread::yield_now();
        }
        drop(g); // detaches the handed-over list, then stalls mid-walk
    });
    wait_for("victim pinned", || PINNED.load(Acquire));

    // Hand the victim's validated critical section one batch of references.
    // Our own guard stays live until the victim has stalled, so the
    // victim's leave is the first to cross the fault point.
    let mut worker = d.register();
    let mut created = 0usize;
    {
        let g = worker.pin();
        for _ in 0..FIRST {
            unsafe { g.defer_destroy(smr_common::Shared::from_owned(Canary(7))) };
            created += 1;
        }
        g.flush(); // the victim's slot takes one reference (ours does too)
        HANDED.store(true, Release);
        wait_for("victim stalled in leave", || {
            fault::stalled_count("hyaline::leave::before_decrement") == 1
        });
        drop(g); // our reference comes back; the victim's is now the last
    }
    assert_eq!(DROPS.load(Relaxed), 0, "the detached list still pins its batch");

    // Churn around the wedged leaver: its slot word is already 0, so new
    // handovers never reach it — only the first batch stays pinned.
    let bound = FIRST + hyaline::garbage_bound(2);
    for _ in 0..30 {
        let g = worker.pin();
        for _ in 0..64 {
            unsafe { g.defer_destroy(smr_common::Shared::from_owned(Canary(7))) };
            created += 1;
        }
        g.flush();
        drop(g);
        let garbage = created - DROPS.load(Relaxed);
        assert!(
            garbage <= bound,
            "stalled leaver must pin only its detached list: {garbage} > {bound}"
        );
    }
    assert_eq!(
        created - DROPS.load(Relaxed),
        FIRST,
        "exactly the handed-over batch remains pinned"
    );

    fault::release("hyaline::leave::before_decrement");
    victim.join().unwrap();
    drop(plan);

    // The woken leaver's decrement was the zero transition: exact balance.
    assert_eq!(DROPS.load(Relaxed), created, "all {created} canaries freed");
}

#[test]
fn hyaline_preempted_retire_and_handover_windows_leak_nothing() {
    // Preempt hyaline threads at the retire-link, the post-fence handover
    // traverse, and the final refs adjustment — the three windows where a
    // batch is visible to leavers but its count is not yet settled — while
    // two threads churn one list. Contract: leavers driving the count
    // negative before the adjustment is exactly the designed race; once the
    // threads quiesce, a fresh handle adopts the donated leftovers and
    // global garbage returns to where it started.
    let plan = fault::plan()
        .every("hyaline::retire::after_link", 2, FaultAction::YieldStorm(20))
        .every(
            "hyaline::handover::before_traverse",
            1,
            FaultAction::YieldStorm(10),
        )
        .every(
            "hyaline::handover::before_adjust",
            1,
            FaultAction::YieldStorm(15),
        )
        .install();

    let before = smr_common::counters::garbage_now();
    let m: ds::guarded::HMList<u64, u64, hyaline::Hyaline> = ConcurrentMap::new();
    std::thread::scope(|s| {
        for t in 0..2u64 {
            let m = &m;
            s.spawn(move || {
                let mut h = m.handle();
                for r in 0..150 {
                    for k in 0..8 {
                        m.insert(&mut h, t * 1000 + k, r);
                    }
                    for k in 0..8 {
                        m.remove(&mut h, &(t * 1000 + k));
                    }
                }
            });
        }
    });
    drop(plan);

    // Both churners are gone (their teardowns donated unhanded batches). A
    // fresh handle adopts and hands them over; its own leave frees them.
    let mut survivor = hyaline::default_domain().register();
    for _ in 0..100 {
        let g = survivor.pin();
        g.flush();
        drop(g);
        if smr_common::counters::garbage_now() <= before {
            break;
        }
    }
    let after = smr_common::counters::garbage_now();
    assert!(
        after <= before,
        "preempted handover windows leaked {} nodes",
        after - before
    );
}

#[test]
fn hyaline_panicking_teardown_still_donates() {
    // A thread that dies *inside its own teardown* (injected panic before
    // the donation) must still unregister its slot and donate every
    // unhanded payload — the Drop guard in `LocalHandle::drop` runs during
    // unwinding too. Exact orphan balance, then a survivor adopts and
    // frees everything through the normal handover grace period.
    static DROPS: AtomicUsize = AtomicUsize::new(0);
    struct Canary(#[allow(dead_code)] u64);
    impl Drop for Canary {
        fn drop(&mut self) {
            DROPS.fetch_add(1, Relaxed);
        }
    }
    const N: usize = 50; // below the handover threshold: nothing freed early

    let plan = fault::plan()
        .at("hyaline::teardown::before_donate", 1, FaultAction::Panic)
        .install();
    let d: &'static hyaline::Domain = Box::leak(Box::new(hyaline::Domain::new()));
    let mut t = d.register();
    {
        let g = t.pin();
        for _ in 0..N {
            unsafe { g.defer_destroy(smr_common::Shared::from_owned(Canary(7))) };
        }
        drop(g);
    }
    let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| drop(t)));
    assert!(err.is_err(), "teardown must have panicked");
    assert_eq!(DROPS.load(Relaxed), 0, "nothing freed by the dying thread");
    assert_eq!(d.orphan_count(), N, "the Drop guard donated all {N} nodes");
    assert_eq!(d.participants(), 0, "the dying slot was unregistered");

    let mut survivor = d.register();
    {
        let g = survivor.pin();
        g.flush(); // adopt the orphans, hand them to our own slot
        drop(g); // the leave is the zero transition
    }
    assert_eq!(DROPS.load(Relaxed), N, "survivor adopted and freed all {N}");
    assert_eq!(d.orphan_count(), 0);
    drop(plan);
}

#[test]
fn all_fault_points_are_reachable() {
    // Coverage: every point a crate declares in its FAULT_POINTS const is
    // actually crossed by a small targeted scenario — a renamed or orphaned
    // injection point fails here instead of silently rotting.
    let plan = fault::plan().install(); // armed, no triggers: just counts

    // hp: protect, retire, both reclaim windows, teardown.
    {
        let d: &'static hp::Domain = Box::leak(Box::new(hp::Domain::new()));
        let mut t = d.register();
        let hp = t.hazard_pointer();
        let slot = smr_common::Atomic::new(1u64);
        let p = slot.load(std::sync::atomic::Ordering::Acquire);
        let _ = hp.try_protect(p, &slot);
        hp.reset();
        t.recycle(hp);
        let raw = Box::into_raw(Box::new(2u64));
        unsafe { t.retire(raw) };
        t.reclaim();
        drop(t);
        unsafe { slot.into_owned() };
    }
    // ebr: pin, defer, the three collect windows, teardown.
    {
        let c: &'static ebr::Collector = Box::leak(Box::new(ebr::Collector::new()));
        let mut h = c.register();
        let g = h.pin();
        unsafe { g.defer_destroy(smr_common::Shared::from_owned(3u64)) };
        g.flush();
        drop(g);
        drop(h);
    }
    // hp-plus: enough churn to cross both periods (unlink, invalidation,
    // reclaim windows).
    {
        let m: ds::hpp::HHSList<u64, u64> = ConcurrentMap::new();
        let mut h = m.handle();
        for r in 0..20 {
            for k in 0..16 {
                m.insert(&mut h, k, r);
            }
            for k in 0..16 {
                m.remove(&mut h, &k);
            }
        }
    }
    // pebr: pin, collect, ejection, teardown.
    {
        let c: &'static pebr::Collector = Box::leak(Box::new(pebr::Collector::new()));
        let mut straggler = c.register();
        let mut reclaimer = c.register();
        let sg = straggler.pin();
        {
            let rg = reclaimer.pin();
            for _ in 0..(pebr::EJECT_THRESHOLD + 2 * pebr::COLLECT_THRESHOLD) {
                unsafe { rg.defer_destroy_inner(smr_common::Shared::from_owned(4u64)) };
            }
            drop(rg);
        }
        drop(sg);
        drop(straggler);
        drop(reclaimer);
    }
    // hyaline: enter, retire-link, both handover windows, the leave walk
    // (the flush hands the batch to our own slot), teardown donation.
    {
        let d: &'static hyaline::Domain = Box::leak(Box::new(hyaline::Domain::new()));
        let mut h = d.register();
        {
            let g = h.pin();
            unsafe { g.defer_destroy(smr_common::Shared::from_owned(5u64)) };
            g.flush();
            drop(g);
        }
        drop(h);
    }
    // ds: a guarded traversal crosses the validate window.
    {
        let m: ds::guarded::HMList<u64, u64, ebr::Ebr> = ds::guarded::HMList::new();
        let mut h = ConcurrentMap::handle(&m);
        m.insert(&mut h, 1, 1);
        assert!(m.get(&mut h, &1).is_some());
        m.remove(&mut h, &1);
    }
    // smr-common: escalate a tiny-config backoff into its park phase.
    {
        let mut b = smr_common::backoff::Backoff::with_config(
            smr_common::backoff::BackoffConfig {
                spin_limit: 0,
                max_exp: 0,
                disabled: false,
            },
            1,
        );
        for _ in 0..8 {
            b.snooze();
        }
    }
    // kv-service: a sleepy store behind a 2-slot ring crosses the ring-full
    // window, any drained op crosses the batch point, and an injected crash
    // walks the supervisor through quarantine + respawn.
    {
        use kv_service::{Command, KvConfig, KvService, ShardStore};

        struct SleepyStore;
        impl ShardStore for SleepyStore {
            type Handle = ();
            fn new_shard(_buckets: usize, _policy: smr_common::policy::PolicyKind) -> Self {
                SleepyStore
            }
            fn handle(&self) -> Self::Handle {}
            fn get(&self, _h: &mut Self::Handle, _key: u64) -> Option<u64> {
                std::thread::sleep(Duration::from_millis(2));
                None
            }
            fn insert(&self, _h: &mut Self::Handle, _key: u64, _value: u64) -> bool {
                true
            }
            fn remove(&self, _h: &mut Self::Handle, _key: u64) -> Option<u64> {
                None
            }
            fn garbage(_h: &Self::Handle) -> u64 {
                0
            }
            fn garbage_bound(&self) -> Option<u64> {
                None
            }
            fn quiesce(&self, _h: &mut Self::Handle) {}
            fn drain_orphans(&self) {}
            const SCHEME: &'static str = "sleepy";
        }

        let cfg = KvConfig {
            shards: 1,
            batch: 1,
            ring_depth: 2,
            buckets: 8,
            ..KvConfig::new()
        }
        .with_op_timeout(Duration::from_secs(30));
        let svc = KvService::<SleepyStore>::start(cfg);
        let mut client = svc.client();
        let mut key = 0u64;
        wait_for("a producer to find the ring full", || {
            client.submit(Command::Get { key }).unwrap();
            key += 1;
            fault::hits("kv::ring::full") > 0
        });
        client.drain(|_, r| assert!(r.is_ok()));
        assert!(svc.inject_crash(0), "crash command not accepted");
        wait_for("the supervisor to respawn the shard", || svc.generation(0).0 == 1);
        assert_eq!(client.get(0), Ok(None), "respawned shard must serve");
        svc.shutdown();
    }

    let all_points = hp::FAULT_POINTS
        .iter()
        .chain(ebr::FAULT_POINTS)
        .chain(hp_plus::FAULT_POINTS)
        .chain(pebr::FAULT_POINTS)
        .chain(hyaline::FAULT_POINTS)
        .chain(ds::FAULT_POINTS)
        .chain(smr_common::FAULT_POINTS)
        .chain(kv_service::FAULT_POINTS);
    let mut missed = Vec::new();
    for point in all_points {
        if fault::hits(point) == 0 {
            missed.push(*point);
        }
    }
    assert!(missed.is_empty(), "unreachable fault points: {missed:?}");
    drop(plan);
}
