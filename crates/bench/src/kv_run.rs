//! Shared runner for the sharded KV service benchmark.
//!
//! Drives [`kv_service::KvService`] with the PR-2 workload engine: client
//! threads sample keys from a Zipfian distribution, pick operations from an
//! [`OpMix`], and keep a pipeline of commands in flight per window so the
//! shard workers actually batch. Latency is measured client-side
//! (submit → reply, through the ring and doorbell) into log₂ histograms;
//! throughput is measured worker-side from per-shard op counters sampled at
//! the phase edges, so the reported Mops/s covers exactly the measure
//! window. Both `kv_bench` (CSV sweeps) and `bench_snapshot` (headline
//! metrics for the trajectory gate) call into this module.

use std::sync::atomic::{AtomicU8, Ordering::SeqCst};
use std::sync::Arc;
use std::time::Duration;

use kv_service::{Command, KvConfig, KvError, KvService, ShardStore};
use rand::rngs::SmallRng;
use rand::{RngCore, SeedableRng};
use smr_common::time::mono_ns;

use crate::metrics::LatencyHistogram;
use crate::workload::{Op, OpMix, ZipfSampler};

const WARMUP: u8 = 0;
const MEASURE: u8 = 1;
const STOP: u8 = 2;

/// One KV benchmark scenario.
#[derive(Debug, Clone)]
pub struct KvRun {
    /// Shard (and worker-thread) count.
    pub shards: usize,
    /// Client threads generating load.
    pub clients: usize,
    /// Commands each client keeps in flight per submit/drain window.
    pub pipeline: usize,
    /// Worker batch limit per wakeup (`KV_BATCH` equivalent).
    pub batch: usize,
    /// Per-shard command ring depth.
    pub ring_depth: usize,
    /// Key range; prefilled to 50% before the run.
    pub keys: u64,
    /// Zipfian skew (0.0 = uniform).
    pub theta: f64,
    /// Operation mix percentages; must sum to 100.
    pub read_pct: u32,
    /// Insert percentage.
    pub insert_pct: u32,
    /// Remove percentage.
    pub remove_pct: u32,
    /// Unmeasured warmup window.
    pub warmup: Duration,
    /// Measured window.
    pub duration: Duration,
    /// Reclamation-trigger policy installed on every shard's domain.
    pub policy: smr_common::policy::PolicyKind,
}

impl KvRun {
    /// The paper-style read-mostly skewed scenario (90/5/5, θ = 0.99)
    /// over `shards` shards — the headline configuration.
    pub fn read_mostly(shards: usize) -> Self {
        Self {
            shards,
            clients: 4,
            pipeline: 16,
            batch: 32,
            ring_depth: 1024,
            keys: 65_536,
            theta: 0.99,
            read_pct: 90,
            insert_pct: 5,
            remove_pct: 5,
            warmup: Duration::from_millis(300),
            duration: Duration::from_millis(1_500),
            policy: smr_common::policy::PolicyKind::Capped,
        }
    }

    /// Builder-style per-shard policy override.
    pub fn with_policy(mut self, policy: smr_common::policy::PolicyKind) -> Self {
        self.policy = policy;
        self
    }

    /// Shrinks the scenario for smoke tests and snapshot quick runs.
    pub fn quick(mut self) -> Self {
        self.clients = self.clients.min(2);
        self.keys = self.keys.min(8_192);
        self.warmup = Duration::from_millis(50);
        self.duration = Duration::from_millis(300);
        self
    }
}

/// Aggregated result of one [`run_kv`] call.
#[derive(Debug, Clone, Copy)]
pub struct KvResult {
    /// Total throughput across shards over the measure window (Mops/s).
    pub total_mops: f64,
    /// Slowest shard's throughput (Mops/s) — imbalance floor.
    pub min_shard_mops: f64,
    /// Fastest shard's throughput (Mops/s) — imbalance ceiling.
    pub max_shard_mops: f64,
    /// Median submit→reply latency (ns, log₂-bucketed).
    pub p50_ns: u64,
    /// 99th percentile latency (ns).
    pub p99_ns: u64,
    /// 99.9th percentile latency (ns).
    pub p999_ns: u64,
    /// Highest per-shard peak of unreclaimed nodes over the whole run.
    pub peak_shard_garbage: u64,
    /// Client-side completed (and latency-sampled) ops in the window.
    pub measured_ops: u64,
    /// Ops that blew their per-op deadline (`KvError::DeadlineExceeded`)
    /// instead of completing — a wedged shard turns into timeout rows in
    /// the CSV, not a hung benchmark.
    pub timeouts: u64,
}

/// Runs one scenario against a fresh service and tears it down.
pub fn run_kv<S: ShardStore>(rc: &KvRun) -> KvResult {
    let svc = KvService::<S>::start(KvConfig {
        shards: rc.shards,
        batch: rc.batch,
        ring_depth: rc.ring_depth,
        // ~4 keys per bucket at 50% occupancy, floor of 64.
        buckets: ((rc.keys / 8).max(64) as usize).next_power_of_two(),
        policy: rc.policy,
        ..KvConfig::new()
    });

    // Prefill to 50% occupancy (even keys) so reads split hit/miss the way
    // the fig8 scenarios do. Pipelined: replies don't occupy ring slots, so
    // submitting everything before one drain cannot deadlock.
    {
        let mut c = svc.client();
        for k in (0..rc.keys).step_by(2) {
            c.submit(Command::Put { key: k, value: k }).expect("prefill");
        }
        c.drain(|_, r| {
            r.expect("prefill reply");
        });
    }

    let zipf = Arc::new(ZipfSampler::new(rc.keys, rc.theta));
    let phase = Arc::new(AtomicU8::new(WARMUP));

    let mut hist = LatencyHistogram::new();
    let mut timeouts = 0u64;
    let mut shard_mops: Vec<f64> = Vec::new();
    std::thread::scope(|s| {
        let mut joins = Vec::new();
        for tid in 0..rc.clients {
            let mut client = svc.client();
            let zipf = Arc::clone(&zipf);
            let phase = Arc::clone(&phase);
            joins.push(s.spawn(move || {
                let mix = OpMix::new(rc.read_pct, rc.insert_pct, rc.remove_pct);
                let mut rng = SmallRng::seed_from_u64(0x5EED ^ tid as u64);
                let mut hist = LatencyHistogram::new();
                let mut timeouts = 0u64;
                let mut t0 = vec![0u64; rc.pipeline];
                let mut lat = vec![0u64; rc.pipeline];
                loop {
                    let ph = phase.load(SeqCst);
                    if ph == STOP {
                        break;
                    }
                    let mut n = 0;
                    while n < rc.pipeline {
                        let key = zipf.sample(&mut rng);
                        let cmd = match mix.pick(rng.next_u64()) {
                            Op::Get => Command::Get { key },
                            Op::Insert => Command::Put { key, value: key.wrapping_add(1) },
                            Op::Remove => Command::Del { key },
                        };
                        t0[n] = mono_ns();
                        match client.submit(cmd) {
                            Ok(()) => n += 1,
                            Err(KvError::DeadlineExceeded) => {
                                timeouts += 1;
                                break;
                            }
                            Err(_) => break,
                        }
                    }
                    client.drain(|i, r| {
                        if matches!(r, Err(KvError::DeadlineExceeded)) {
                            timeouts += 1;
                        }
                        lat[i] = mono_ns().saturating_sub(t0[i]);
                    });
                    if ph == MEASURE {
                        for &l in &lat[..n] {
                            hist.record(l);
                        }
                    }
                    if n == 0 {
                        break; // shard down: nothing more to do
                    }
                }
                (hist, timeouts)
            }));
        }

        std::thread::sleep(rc.warmup);
        let start = svc.stats();
        let t_start = mono_ns();
        phase.store(MEASURE, SeqCst);
        std::thread::sleep(rc.duration);
        phase.store(STOP, SeqCst);
        let end = svc.stats();
        let elapsed_s = (mono_ns() - t_start) as f64 / 1e9;

        // saturating: a respawn between the phase edges resets that shard's
        // counters, so the end sample can sit below the start sample.
        shard_mops = start
            .iter()
            .zip(&end)
            .map(|(a, b)| b.ops.saturating_sub(a.ops) as f64 / elapsed_s / 1e6)
            .collect();
        for j in joins {
            let (h, t) = j.join().expect("kv client thread");
            hist.merge(&h);
            timeouts += t;
        }
    });

    let final_stats = svc.shutdown();
    let peak_shard_garbage = final_stats.iter().map(|s| s.peak_garbage).max().unwrap_or(0);

    KvResult {
        total_mops: shard_mops.iter().sum(),
        min_shard_mops: shard_mops.iter().copied().fold(f64::INFINITY, f64::min),
        max_shard_mops: shard_mops.iter().copied().fold(0.0, f64::max),
        p50_ns: hist.percentile_ns(0.50),
        p99_ns: hist.percentile_ns(0.99),
        p999_ns: hist.percentile_ns(0.999),
        peak_shard_garbage,
        measured_ops: hist.count(),
        timeouts,
    }
}

/// Result of one [`run_kv_recovery`] campaign.
#[derive(Debug, Clone, Copy)]
pub struct KvRecoveryResult {
    /// Crash/respawn cycles driven (and observed) by the run.
    pub respawns: u64,
    /// Mean time from the crash injection to the first successful op on
    /// the respawned incarnation (ns).
    pub mean_respawn_ns: u64,
    /// Client op throughput over the whole campaign, crash windows
    /// included (Mops/s) — what a caller actually gets from a service that
    /// keeps dying and recovering.
    pub recovery_mops: f64,
}

/// Drives `cycles` crash → quarantine → respawn rounds against a
/// supervised single-shard service, measuring recovery latency
/// (inject → first success on the bumped generation) and the throughput
/// of a synchronous churn loop threaded through the crashes.
pub fn run_kv_recovery<S: ShardStore>(cycles: u32, churn_per_cycle: u64) -> KvRecoveryResult {
    let svc = KvService::<S>::start(
        KvConfig {
            shards: 1,
            batch: 16,
            ring_depth: 256,
            buckets: 256,
            ..KvConfig::new()
        }
        .with_op_timeout(Duration::from_secs(5))
        .with_retries(8),
    );
    let mut client = svc.client();
    let mut ops = 0u64;
    let mut respawn_ns_total = 0u64;
    let t_campaign = mono_ns();
    for cycle in 0..cycles as u64 {
        // Churn so the domain holds real garbage when the crash lands.
        for k in 0..churn_per_cycle {
            let key = cycle * 100_000 + k;
            let _ = client.insert(key, key);
            let _ = client.remove(key);
            ops += 2;
        }
        let gen_before = svc.generation(0).0;
        let t0 = mono_ns();
        assert!(svc.inject_crash(0), "crash command not accepted");
        // The probe is queued behind the crash command, so its first
        // success is necessarily served by the respawned incarnation.
        while client.get(cycle).is_err() {
            ops += 1;
        }
        ops += 1;
        respawn_ns_total += mono_ns().saturating_sub(t0);
        debug_assert!(svc.generation(0).0 > gen_before);
    }
    let elapsed_s = (mono_ns() - t_campaign) as f64 / 1e9;
    let health = svc.health();
    let respawns: u64 = health.shards.iter().map(|h| h.respawns).sum();
    svc.shutdown();
    KvRecoveryResult {
        respawns,
        mean_respawn_ns: respawn_ns_total / u64::from(cycles.max(1)),
        recovery_mops: ops as f64 / elapsed_s / 1e6,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kv_service::HppStore;

    #[test]
    fn quick_run_produces_sane_numbers() {
        let mut rc = KvRun::read_mostly(2).quick();
        rc.warmup = Duration::from_millis(20);
        rc.duration = Duration::from_millis(100);
        rc.keys = 1_024;
        let r = run_kv::<HppStore>(&rc);
        assert!(r.total_mops > 0.0, "no throughput measured: {r:?}");
        assert!(r.measured_ops > 0, "no latencies sampled");
        assert!(r.p50_ns > 0 && r.p50_ns <= r.p99_ns && r.p99_ns <= r.p999_ns);
        assert!(r.min_shard_mops <= r.max_shard_mops);
        assert_eq!(r.timeouts, 0, "healthy quick run must not time out");
    }

    #[test]
    fn recovery_run_measures_respawn_latency() {
        let r = run_kv_recovery::<HppStore>(2, 64);
        assert_eq!(r.respawns, 2, "every injected crash must respawn: {r:?}");
        assert!(r.mean_respawn_ns > 0, "respawn latency not measured: {r:?}");
        assert!(r.recovery_mops > 0.0, "no throughput through the crashes: {r:?}");
    }
}
