//! The workload engine: skewed key sampling, branch-lean operation mixing,
//! and thread pinning — everything the measured hot loop draws from.
//!
//! Design constraints (see DESIGN.md §3 "Workload engine"):
//!
//! * A key draw is **one RNG call and at most one table lookup** — uniform
//!   keys use a widening multiply (no division), skewed keys an alias table
//!   built once per run.
//! * Operation selection is **one RNG call and one 256-entry table lookup**,
//!   with no division, modulo, or data-dependent branching on percentages.
//! * Nothing in this module allocates after construction.

use rand::RngCore;

use crate::config::Workload;

// ---------------------------------------------------------------------------
// Zipfian key sampling
// ---------------------------------------------------------------------------

/// One alias-table slot: a 64-bit acceptance threshold plus the two keys the
/// slot can yield. Storing the *keys* (not the ranks) keeps sampling at a
/// single table lookup.
#[derive(Clone, Copy)]
struct AliasEntry {
    threshold: u64,
    primary: u64,
    alias: u64,
}

/// Rejection-free sampler over `0..key_range`, Zipfian with exponent
/// `theta` (rank `r` drawn with probability ∝ `1/(r+1)^theta`).
///
/// `theta = 0` degenerates to the uniform distribution and takes a
/// table-free fast path that is *bit-for-bit identical* to
/// `rng.gen_range(0..key_range)` with the vendored `rand` (same widening
/// multiply on the same single `next_u64` draw).
///
/// For `theta > 0` the constructor builds a Vose alias table over the ranks
/// and sampling costs one `next_u64`: the high bits of the 128-bit widening
/// product pick the slot, the low bits serve as the acceptance coin. Hot
/// ranks are spread over the key space by a fixed multiplicative bijection
/// (so skew does not degenerate into "hot head of the list" unless the
/// structure sorts by key anyway).
pub struct ZipfSampler {
    key_range: u64,
    /// `None` for the uniform (`theta = 0`) fast path.
    table: Option<Box<[AliasEntry]>>,
    /// Multiplier of the rank→key spreading bijection (coprime to
    /// `key_range`).
    spread: u64,
}

fn gcd(mut a: u64, mut b: u64) -> u64 {
    while b != 0 {
        (a, b) = (b, a % b);
    }
    a
}

impl ZipfSampler {
    /// Builds a sampler for `0..key_range` with skew `theta ≥ 0`.
    ///
    /// Build cost is O(key_range) time and 24 bytes per key of table when
    /// `theta > 0`; `theta = 0` builds nothing.
    pub fn new(key_range: u64, theta: f64) -> Self {
        assert!(key_range > 0, "empty key range");
        assert!(theta >= 0.0 && theta.is_finite(), "bad zipf theta {theta}");

        // Rank→key spreading: golden-ratio multiplier, nudged to coprimality
        // so the map is a bijection on 0..key_range.
        let mut spread = ((key_range as f64 * 0.618_033_988_749_894_9) as u64) | 1;
        while gcd(spread, key_range) != 1 {
            spread += 2;
        }

        if theta == 0.0 {
            return Self {
                key_range,
                table: None,
                spread,
            };
        }

        let n = key_range as usize;
        // Normalized Zipf weights, scaled so the mean slot weight is 1.
        let weights: Vec<f64> = (0..n).map(|r| 1.0 / ((r + 1) as f64).powf(theta)).collect();
        let sum: f64 = weights.iter().sum();
        let mut scaled: Vec<f64> = weights.iter().map(|w| w * n as f64 / sum).collect();

        // Vose's alias method.
        let mut small: Vec<u32> = Vec::with_capacity(n);
        let mut large: Vec<u32> = Vec::with_capacity(n);
        for (i, &s) in scaled.iter().enumerate() {
            if s < 1.0 {
                small.push(i as u32);
            } else {
                large.push(i as u32);
            }
        }
        let mut prob = vec![1.0f64; n];
        let mut alias: Vec<u32> = (0..n as u32).collect();
        while let (Some(s), Some(l)) = (small.pop(), large.pop()) {
            prob[s as usize] = scaled[s as usize];
            alias[s as usize] = l;
            scaled[l as usize] -= 1.0 - scaled[s as usize];
            if scaled[l as usize] < 1.0 {
                small.push(l);
            } else {
                large.push(l);
            }
        }
        // Leftovers (float round-off) keep prob = 1, alias = self.

        let key_of = |rank: u32| ((rank as u128 * spread as u128) % key_range as u128) as u64;
        let table: Box<[AliasEntry]> = (0..n)
            .map(|i| AliasEntry {
                // Saturating cast: prob = 1.0 maps to u64::MAX (off by one
                // ulp from 2^64, which is unrepresentable — negligible).
                threshold: (prob[i] * 18_446_744_073_709_551_616.0) as u64,
                primary: key_of(i as u32),
                alias: key_of(alias[i]),
            })
            .collect();

        Self {
            key_range,
            table: Some(table),
            spread,
        }
    }

    /// Draws one key: exactly one `next_u64` and (when skewed) one table
    /// lookup. No division, no modulo, no rejection loop.
    #[inline]
    pub fn sample<R: RngCore>(&self, rng: &mut R) -> u64 {
        let r = rng.next_u64();
        // Widening multiply: high 64 bits map r uniformly onto 0..n, the low
        // 64 bits are a uniform fraction reusable as the alias coin.
        let m = r as u128 * self.key_range as u128;
        let hi = (m >> 64) as u64;
        match &self.table {
            None => hi,
            Some(table) => {
                let e = &table[hi as usize];
                if (m as u64) < e.threshold {
                    e.primary
                } else {
                    e.alias
                }
            }
        }
    }

    /// The key the spreading bijection assigns to Zipf rank `rank`
    /// (rank 0 is the hottest). Exposed so tests and analysis tools can
    /// recover the rank→frequency curve.
    pub fn key_for_rank(&self, rank: u64) -> u64 {
        debug_assert!(rank < self.key_range);
        ((rank as u128 * self.spread as u128) % self.key_range as u128) as u64
    }
}

// ---------------------------------------------------------------------------
// Operation mixing
// ---------------------------------------------------------------------------

/// One operation of the mixed workload.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Op {
    /// `get` (read).
    Get,
    /// `insert`.
    Insert,
    /// `remove`.
    Remove,
}

/// A precomputed 256-entry operation-mix table, indexed by one random byte.
///
/// Replaces the seed harness's `gen_range(0..100)` + `dice % 2` pattern,
/// which cost a second RNG draw's worth of multiply work per op and — for
/// odd read percentages — correlated the insert/remove coin with the
/// threshold parity. Rounding to 1/256 granularity keeps every configured
/// percentage within 0.2% of its target (the paper's mixes are exact).
pub struct OpMix {
    table: [Op; 256],
}

impl OpMix {
    /// Builds a mix table from percentages summing to 100. The non-read
    /// share is split between insert and remove proportionally, with insert
    /// taking the floor.
    pub fn new(read_pct: u32, insert_pct: u32, remove_pct: u32) -> Self {
        assert_eq!(
            read_pct + insert_pct + remove_pct,
            100,
            "op mix must sum to 100%"
        );
        let reads = (read_pct as usize * 256 + 50) / 100;
        let rest = 256 - reads;
        let inserts = if rest == 0 {
            0
        } else {
            rest * insert_pct as usize / (insert_pct + remove_pct) as usize
        };
        let mut table = [Op::Remove; 256];
        table[..reads].fill(Op::Get);
        table[reads..reads + inserts].fill(Op::Insert);
        Self { table }
    }

    /// The mix table for a paper workload.
    pub fn for_workload(w: Workload) -> Self {
        let (r, i, d) = w.mix_pcts();
        Self::new(r, i, d)
    }

    /// Picks an operation from the low byte of `r` — one table lookup, no
    /// division or modulo.
    #[inline]
    pub fn pick(&self, r: u64) -> Op {
        self.table[(r & 0xFF) as usize]
    }
}

// ---------------------------------------------------------------------------
// Thread pinning
// ---------------------------------------------------------------------------

/// Is pinning disabled (`SMR_NO_PIN=1`)? Read once.
fn pin_disabled() -> bool {
    use std::sync::OnceLock;
    static NO_PIN: OnceLock<bool> = OnceLock::new();
    *NO_PIN.get_or_init(|| std::env::var("SMR_NO_PIN").map(|v| v == "1").unwrap_or(false))
}

/// Pins the calling thread to CPU `tid % available_parallelism`, so a sweep
/// of worker indices lands on distinct cores (wrapping under
/// oversubscription). Returns whether a pin was applied — `false` when
/// disabled via `SMR_NO_PIN=1` or unsupported on this platform.
pub fn pin_thread(tid: usize) -> bool {
    if pin_disabled() {
        return false;
    }
    #[cfg(target_os = "linux")]
    {
        let cores = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        let mut set: libc::cpu_set_t = unsafe { std::mem::zeroed() };
        libc::CPU_ZERO(&mut set);
        libc::CPU_SET(tid % cores, &mut set);
        unsafe { libc::sched_setaffinity(0, std::mem::size_of::<libc::cpu_set_t>(), &set) == 0 }
    }
    #[cfg(not(target_os = "linux"))]
    {
        let _ = tid;
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn uniform_path_is_bit_for_bit_gen_range() {
        // theta = 0 must reproduce the seed harness's key stream exactly:
        // same RNG state in, same keys out, for a full 1M-draw replay.
        for key_range in [16u64, 10_000, 100_000] {
            let sampler = ZipfSampler::new(key_range, 0.0);
            let mut a = SmallRng::seed_from_u64(0x5EED);
            let mut b = SmallRng::seed_from_u64(0x5EED);
            for _ in 0..1_000_000 {
                assert_eq!(sampler.sample(&mut a), b.gen_range(0..key_range));
            }
        }
    }

    #[test]
    fn zipf_stays_in_range_and_spread_is_bijective() {
        let n = 1000;
        let sampler = ZipfSampler::new(n, 0.99);
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..100_000 {
            assert!(sampler.sample(&mut rng) < n);
        }
        let mut seen = vec![false; n as usize];
        for r in 0..n {
            let k = sampler.key_for_rank(r) as usize;
            assert!(!seen[k], "spread map not a bijection");
            seen[k] = true;
        }
    }

    #[test]
    fn zipf_rank_frequency_monotone_and_head_heavy() {
        // theta = 0.99 over 1000 keys: frequencies must fall with rank, and
        // the 10 hottest ranks must carry a large share of the mass
        // (analytically ~38%; uniform would give 1%).
        let n = 1000u64;
        let samples = 400_000u64;
        let sampler = ZipfSampler::new(n, 0.99);
        let mut rng = SmallRng::seed_from_u64(0xC0FFEE);
        let mut freq = vec![0u64; n as usize];
        for _ in 0..samples {
            freq[sampler.sample(&mut rng) as usize] += 1;
        }
        let by_rank: Vec<u64> = (0..n)
            .map(|r| freq[sampler.key_for_rank(r) as usize])
            .collect();
        assert!(
            by_rank[0] > by_rank[9] && by_rank[9] > by_rank[99] && by_rank[99] > by_rank[999],
            "rank frequencies not decreasing: r0={} r9={} r99={} r999={}",
            by_rank[0],
            by_rank[9],
            by_rank[99],
            by_rank[999]
        );
        let head: u64 = by_rank[..10].iter().sum();
        let head_share = head as f64 / samples as f64;
        assert!(
            head_share > 0.30,
            "top-10 ranks carry only {head_share:.3} of the mass"
        );
    }

    #[test]
    fn mix_matches_configured_percentages_within_one_percent() {
        // Satellite: the seed's `dice % 2` split correlated insert/remove
        // with threshold parity. The table must hit every configured
        // percentage — and the insert/remove *balance* — within 1% over 1M
        // samples.
        for w in [Workload::WriteOnly, Workload::ReadWrite, Workload::ReadMost] {
            let (r_pct, i_pct, d_pct) = w.mix_pcts();
            let mix = OpMix::for_workload(w);
            let mut rng = SmallRng::seed_from_u64(42);
            let (mut r, mut i, mut d) = (0u64, 0u64, 0u64);
            let total = 1_000_000u64;
            for _ in 0..total {
                match mix.pick(rng.next_u64()) {
                    Op::Get => r += 1,
                    Op::Insert => i += 1,
                    Op::Remove => d += 1,
                }
            }
            let pct = |c: u64| c as f64 * 100.0 / total as f64;
            assert!((pct(r) - r_pct as f64).abs() < 1.0, "{w}: reads {}", pct(r));
            assert!(
                (pct(i) - i_pct as f64).abs() < 1.0,
                "{w}: inserts {}",
                pct(i)
            );
            assert!(
                (pct(d) - d_pct as f64).abs() < 1.0,
                "{w}: removes {}",
                pct(d)
            );
            assert!(
                (pct(i) - pct(d)).abs() < 1.0,
                "{w}: insert/remove imbalance ({} vs {})",
                pct(i),
                pct(d)
            );
        }
    }

    #[test]
    fn mix_table_is_exact_for_paper_workloads() {
        // All three paper mixes divide 256 exactly after rounding, so the
        // table itself (not just samples of it) must match.
        for (w, reads, inserts) in [
            (Workload::WriteOnly, 0usize, 128usize),
            (Workload::ReadWrite, 128, 64),
            (Workload::ReadMost, 230, 13),
        ] {
            let mix = OpMix::for_workload(w);
            let r = mix.table.iter().filter(|o| **o == Op::Get).count();
            let i = mix.table.iter().filter(|o| **o == Op::Insert).count();
            assert_eq!((r, i), (reads, inserts), "{w}");
        }
    }

    #[test]
    fn pin_thread_does_not_fail_catastrophically() {
        // Either pins (linux, enabled) or reports false; never panics.
        let _ = pin_thread(0);
        let _ = pin_thread(usize::MAX - 1); // wraps via modulo
    }
}
