//! The benchmark harness reproducing the paper's evaluation (§5).
//!
//! Every table and figure has a dedicated binary (see `src/bin/`): `fig8`,
//! `fig9`, `fig10`, `fig11`, `appendix` (Figs. 12–23), `table1_bounds`,
//! `table2`, plus `smr_bench` which runs a single scenario (the figure
//! binaries spawn it as a subprocess so each scenario gets a clean global
//! garbage counter and address space) and `ablation` for the design-choice
//! experiments called out in DESIGN.md.
//!
//! Scenarios follow the paper's methodology: structures prefilled to 50% of
//! the key range, fixed-duration runs (with an unmeasured warmup window),
//! throughput in Mops/s, per-operation latency percentiles from thread-local
//! log₂ histograms, and garbage metrics sampled at 10 ms. Keys are drawn
//! uniformly by default; `Scenario::zipf_theta > 0` switches the [`workload`]
//! engine to a precomputed Zipfian sampler for skewed traffic.

#![warn(missing_docs)]

pub mod config;
pub mod kv_run;
pub mod metrics;
pub mod orchestrate;
pub mod runner;
pub mod schemes;
pub mod snapshot;
pub mod workload;

pub use config::{thread_sweep, Ds, Scenario, Scheme, Workload};
pub use metrics::{LatencyHistogram, Stats};
pub use runner::{applicable, run, run_map};
pub use workload::{pin_thread, Op, OpMix, ZipfSampler};
