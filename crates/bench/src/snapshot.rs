//! Per-PR performance snapshots (`BENCH_pr<N>.json`) and the trajectory
//! gate that compares a fresh measurement against the committed baseline.
//!
//! The snapshot is a flat map of metric name → value, serialized as
//! hand-rolled JSON (the workspace deliberately carries no serde). Metric
//! names carry their comparison direction in the first dotted segment:
//!
//! * `mops.*` — throughput, higher is better;
//! * `ns.*` — per-op latency/cost, lower is better;
//! * `garbage.*` — peak unreclaimed nodes, lower is better, but
//!   **informational only**: peak garbage on a sub-second quick run is a
//!   race between the sampler and whichever scan cycle happened to land
//!   inside the window (back-to-back runs differ by 10–70×), so it is
//!   tracked in the snapshot and printed in the comparison without ever
//!   failing the gate.
//!
//! [`compare`] classifies each metric shared by two snapshots and the CI
//! step (`bench_snapshot --gate`) fails when any gating metric regresses
//! by more than the tolerance (default 10%, `SMR_BENCH_TOLERANCE`
//! overrides). Metrics present on only one side are reported but never
//! fail the gate, so adding or retiring metrics does not wedge CI.

use std::fmt::Write as _;
use std::path::{Path, PathBuf};

/// Which way "better" points for a metric.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Direction {
    /// Throughput-like: bigger numbers win.
    HigherIsBetter,
    /// Cost-like: smaller numbers win.
    LowerIsBetter,
}

/// Infers the direction from the metric name's leading segment.
pub fn direction(metric: &str) -> Direction {
    if metric.starts_with("mops.") {
        Direction::HigherIsBetter
    } else {
        // ns.*, garbage.*, and anything unrecognized: treat as a cost so a
        // typo'd name cannot silently pass by "improving".
        Direction::LowerIsBetter
    }
}

/// Whether a regression in this metric fails the gate. `garbage.*` is
/// tracked for trajectory but too sampler-timing-sensitive to gate on.
/// The recovery metrics (`ns.kv.respawn`, `mops.kv.recovery`) are
/// informational too: respawn latency is dominated by thread spawn +
/// supervisor wakeup, both pure scheduler noise on a loaded 1-core host.
pub fn gates(metric: &str) -> bool {
    !metric.starts_with("garbage.") && metric != "ns.kv.respawn" && metric != "mops.kv.recovery"
}

/// One measured snapshot: an ordered list of (metric, value) pairs plus a
/// metadata block describing the host that produced it.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Snapshot {
    /// Metric name → value, in insertion order.
    pub metrics: Vec<(String, f64)>,
    /// Metadata (host shape, active env overrides) — string → string, in
    /// insertion order. Never gated on; used to decide whether two
    /// snapshots are comparable at all.
    pub meta: Vec<(String, String)>,
}

/// Env-var prefixes whose values shape benchmark results and therefore
/// belong in the snapshot metadata.
const META_ENV_PREFIXES: &[&str] = &["SMR_", "KV_", "HP_", "HPP_", "EBR_"];

impl Snapshot {
    /// Creates an empty snapshot.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records a metadata entry (replacing an earlier value of the same
    /// name). Values are sanitized to keep the hand-rolled JSON parseable.
    pub fn record_meta(&mut self, name: &str, value: &str) {
        let clean: String = value
            .chars()
            .map(|c| if matches!(c, '"' | '{' | '}' | ',' | '\n' | '\r' | ':') { '_' } else { c })
            .collect();
        if let Some(slot) = self.meta.iter_mut().find(|(n, _)| n == name) {
            slot.1 = clean;
        } else {
            self.meta.push((name.to_string(), clean));
        }
    }

    /// Looks up a metadata entry.
    pub fn get_meta(&self, name: &str) -> Option<&str> {
        self.meta.iter().find(|(n, _)| n == name).map(|(_, v)| v.as_str())
    }

    /// Records the current host shape and every set benchmark-relevant env
    /// override (`SMR_*`, `KV_*`, `HP_*`, `HPP_*`, `EBR_*`), so a later
    /// comparison can tell whether the numbers were produced under the
    /// same conditions.
    pub fn record_host_meta(&mut self) {
        self.record_meta("host.cores", &current_cores().to_string());
        let mut overrides: Vec<(String, String)> = std::env::vars()
            .filter(|(k, _)| META_ENV_PREFIXES.iter().any(|p| k.starts_with(p)))
            .collect();
        overrides.sort();
        for (k, v) in overrides {
            self.record_meta(&format!("env.{k}"), &v);
        }
    }

    /// Core count recorded in this snapshot's metadata, if any.
    pub fn recorded_cores(&self) -> Option<u64> {
        self.get_meta("host.cores")?.parse().ok()
    }

    /// Records a metric (replacing an earlier value of the same name).
    pub fn record(&mut self, name: &str, value: f64) {
        if let Some(slot) = self.metrics.iter_mut().find(|(n, _)| n == name) {
            slot.1 = value;
        } else {
            self.metrics.push((name.to_string(), value));
        }
    }

    /// Looks up a metric by name.
    pub fn get(&self, name: &str) -> Option<f64> {
        self.metrics.iter().find(|(n, _)| n == name).map(|&(_, v)| v)
    }

    /// Serializes to the `BENCH_pr*.json` format.
    pub fn to_json(&self) -> String {
        let mut s = String::from("{\n  \"schema\": 1,\n");
        if !self.meta.is_empty() {
            s.push_str("  \"meta\": {\n");
            for (i, (name, value)) in self.meta.iter().enumerate() {
                let comma = if i + 1 < self.meta.len() { "," } else { "" };
                let _ = writeln!(s, "    \"{name}\": \"{value}\"{comma}");
            }
            s.push_str("  },\n");
        }
        s.push_str("  \"metrics\": {\n");
        for (i, (name, value)) in self.metrics.iter().enumerate() {
            let comma = if i + 1 < self.metrics.len() { "," } else { "" };
            // {:.6} keeps the file diff-stable across runs of equal value.
            let _ = writeln!(s, "    \"{name}\": {value:.6}{comma}");
        }
        s.push_str("  }\n}\n");
        s
    }

    /// Parses the `BENCH_pr*.json` format. Only the flat shape emitted by
    /// [`Snapshot::to_json`] is supported: an optional `"meta"` object of
    /// string → string pairs and one `"metrics"` object of string → number
    /// pairs; nested objects or arrays are rejected. Snapshots written
    /// before the meta block existed parse with an empty `meta`.
    pub fn from_json(text: &str) -> Result<Self, String> {
        let mut snap = Snapshot::new();
        // "\"meta\"" (closing quote included) cannot match "\"metrics\"".
        if let Some(meta_at) = text.find("\"meta\"") {
            let rest = &text[meta_at..];
            let open = rest.find('{').ok_or_else(|| "missing meta object".to_string())?;
            let body = &rest[open + 1..];
            let close = body
                .find('}')
                .ok_or_else(|| "unterminated meta object".to_string())?;
            for entry in body[..close].split(',') {
                let entry = entry.trim();
                if entry.is_empty() {
                    continue;
                }
                let (key, value) = entry
                    .split_once(':')
                    .ok_or_else(|| format!("malformed meta entry: {entry}"))?;
                let key = key.trim().trim_matches('"');
                if key.is_empty() {
                    return Err(format!("empty meta name in: {entry}"));
                }
                snap.record_meta(key, value.trim().trim_matches('"'));
            }
        }
        let metrics_at = text
            .find("\"metrics\"")
            .ok_or_else(|| "missing \"metrics\" key".to_string())?;
        let rest = &text[metrics_at..];
        let open = rest
            .find('{')
            .ok_or_else(|| "missing metrics object".to_string())?;
        let body = &rest[open + 1..];
        let close = body
            .find('}')
            .ok_or_else(|| "unterminated metrics object".to_string())?;
        for entry in body[..close].split(',') {
            let entry = entry.trim();
            if entry.is_empty() {
                continue;
            }
            let (key, value) = entry
                .split_once(':')
                .ok_or_else(|| format!("malformed entry: {entry}"))?;
            let key = key.trim().trim_matches('"');
            if key.is_empty() {
                return Err(format!("empty metric name in: {entry}"));
            }
            let value: f64 = value
                .trim()
                .parse()
                .map_err(|e| format!("bad value for {key}: {e}"))?;
            snap.record(key, value);
        }
        Ok(snap)
    }
}

/// Verdict for one metric shared by baseline and current.
#[derive(Debug, Clone, PartialEq)]
pub struct Delta {
    /// Metric name.
    pub metric: String,
    /// Baseline value.
    pub baseline: f64,
    /// Current value.
    pub current: f64,
    /// Signed relative change toward "worse": positive = regression
    /// fraction, negative = improvement, regardless of direction.
    pub regression: f64,
    /// Whether `regression` exceeds the tolerance.
    pub failed: bool,
}

/// Result of comparing a current snapshot against a baseline.
#[derive(Debug, Default)]
pub struct Comparison {
    /// Per-metric verdicts for metrics present on both sides.
    pub deltas: Vec<Delta>,
    /// Metrics only in the baseline (retired) or only current (new).
    pub unmatched: Vec<String>,
}

impl Comparison {
    /// Whether any shared metric regressed beyond tolerance.
    pub fn failed(&self) -> bool {
        self.deltas.iter().any(|d| d.failed)
    }

    /// Human-readable verdict table.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for d in &self.deltas {
            let mark = if d.failed {
                "FAIL"
            } else if !gates(&d.metric) {
                "info"
            } else if d.regression < 0.0 {
                "ok +"
            } else {
                "ok  "
            };
            let _ = writeln!(
                out,
                "{mark} {:<40} {:>12.4} -> {:>12.4} ({:+.1}%)",
                d.metric,
                d.baseline,
                d.current,
                -d.regression * 100.0
            );
        }
        for m in &self.unmatched {
            let _ = writeln!(out, "---- {m:<40} (unmatched; not gated)");
        }
        out
    }
}

/// Compares `current` against `baseline` with a relative tolerance
/// (`0.10` = fail on >10% regression). Direction comes from each metric's
/// name; near-zero baselines are compared on absolute noise floor instead
/// of exploding the relative delta.
pub fn compare(baseline: &Snapshot, current: &Snapshot, tolerance: f64) -> Comparison {
    let mut cmp = Comparison::default();
    for (name, base) in &baseline.metrics {
        let Some(cur) = current.get(name) else {
            cmp.unmatched.push(format!("{name} (baseline only)"));
            continue;
        };
        // "worse" is less throughput or more cost.
        let worse = match direction(name) {
            Direction::HigherIsBetter => *base - cur,
            Direction::LowerIsBetter => cur - *base,
        };
        let floor = base.abs().max(1e-9);
        let regression = worse / floor;
        cmp.deltas.push(Delta {
            metric: name.clone(),
            baseline: *base,
            current: cur,
            regression,
            failed: gates(name) && regression > tolerance,
        });
    }
    for (name, _) in &current.metrics {
        if baseline.get(name).is_none() {
            cmp.unmatched.push(format!("{name} (current only)"));
        }
    }
    cmp
}

/// Finds the committed baseline: the `BENCH_pr<N>.json` with the largest
/// `N` in `dir`. Returns `None` when no snapshot has been committed yet.
pub fn find_baseline(dir: &Path) -> Option<(u32, PathBuf)> {
    let mut best: Option<(u32, PathBuf)> = None;
    for entry in std::fs::read_dir(dir).ok()?.flatten() {
        let name = entry.file_name();
        let name = name.to_string_lossy();
        let Some(n) = name
            .strip_prefix("BENCH_pr")
            .and_then(|s| s.strip_suffix(".json"))
            .and_then(|s| s.parse::<u32>().ok())
        else {
            continue;
        };
        if best.as_ref().map(|&(b, _)| n > b).unwrap_or(true) {
            best = Some((n, entry.path()));
        }
    }
    best
}

/// Cores available to this process right now — the "current" side of a
/// host-shape comparability check.
pub fn current_cores() -> u64 {
    std::thread::available_parallelism().map(|n| n.get() as u64).unwrap_or(1)
}

/// Why two snapshots are not directly comparable, if they are not.
/// Scaling-sensitive metrics (anything touching thread counts or shard
/// counts) move with core count, so a baseline from a different host
/// shape should be reported, not gated on.
pub fn host_shape_mismatch(baseline: &Snapshot, current: &Snapshot) -> Option<String> {
    let base = baseline.recorded_cores()?;
    // Prefer the current snapshot's recorded shape; fall back to the live
    // host for snapshots measured in this process.
    let cur = current.recorded_cores().unwrap_or_else(current_cores);
    (base != cur).then(|| format!("baseline measured on {base} cores, current on {cur}"))
}

/// The gate tolerance: `SMR_BENCH_TOLERANCE` (a fraction, e.g. `0.15`) or
/// the default 10%.
pub fn tolerance_from_env() -> f64 {
    std::env::var("SMR_BENCH_TOLERANCE")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(0.10)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn snap(pairs: &[(&str, f64)]) -> Snapshot {
        let mut s = Snapshot::new();
        for &(k, v) in pairs {
            s.record(k, v);
        }
        s
    }

    #[test]
    fn json_roundtrip_preserves_metrics() {
        let s = snap(&[
            ("mops.fig8.hmlist.ebr.t2", 1.2345),
            ("ns.protect.hp", 17.0),
            ("garbage.fig8.hmlist.hp.t2", 42.0),
        ]);
        let parsed = Snapshot::from_json(&s.to_json()).expect("roundtrip");
        assert_eq!(parsed.metrics.len(), 3);
        for (k, v) in &s.metrics {
            assert!((parsed.get(k).unwrap() - v).abs() < 1e-6, "{k}");
        }
    }

    #[test]
    fn malformed_json_is_rejected() {
        assert!(Snapshot::from_json("{}").is_err());
        assert!(Snapshot::from_json("{\"metrics\": {\"a\": nope}}").is_err());
        assert!(Snapshot::from_json("not json at all").is_err());
    }

    #[test]
    fn record_replaces_in_place() {
        let mut s = snap(&[("ns.a", 1.0), ("ns.b", 2.0)]);
        s.record("ns.a", 9.0);
        assert_eq!(s.get("ns.a"), Some(9.0));
        assert_eq!(s.metrics.len(), 2);
        assert_eq!(s.metrics[0].0, "ns.a", "order is stable under update");
    }

    #[test]
    fn direction_follows_name_prefix() {
        assert_eq!(direction("mops.anything"), Direction::HigherIsBetter);
        assert_eq!(direction("ns.protect.hp"), Direction::LowerIsBetter);
        assert_eq!(direction("garbage.peak"), Direction::LowerIsBetter);
        // Unknown prefixes gate as costs, not free passes.
        assert_eq!(direction("bogus.metric"), Direction::LowerIsBetter);
    }

    #[test]
    fn recovery_metrics_are_informational_not_gated() {
        assert!(!gates("ns.kv.respawn"));
        assert!(!gates("mops.kv.recovery"));
        // ...but the rest of the kv family still gates.
        assert!(gates("mops.kv.hpp.s1"));
        assert!(gates("ns.kv.p99.hpp.s1"));
    }

    #[test]
    fn compare_is_direction_aware() {
        let base = snap(&[("mops.x", 10.0), ("ns.y", 100.0)]);
        // Throughput down 20%, latency up 20%: both regressions.
        let worse = snap(&[("mops.x", 8.0), ("ns.y", 120.0)]);
        let cmp = compare(&base, &worse, 0.10);
        assert!(cmp.failed());
        assert!(cmp.deltas.iter().all(|d| d.failed));
        // Throughput up, latency down: both improvements.
        let better = snap(&[("mops.x", 12.0), ("ns.y", 80.0)]);
        let cmp = compare(&base, &better, 0.10);
        assert!(!cmp.failed());
        assert!(cmp.deltas.iter().all(|d| d.regression < 0.0));
    }

    #[test]
    fn tolerance_bounds_the_gate() {
        let base = snap(&[("mops.x", 10.0)]);
        let slightly_worse = snap(&[("mops.x", 9.5)]);
        assert!(!compare(&base, &slightly_worse, 0.10).failed(), "5% < 10%");
        assert!(compare(&base, &slightly_worse, 0.01).failed(), "5% > 1%");
    }

    #[test]
    fn garbage_metrics_are_informational() {
        let base = snap(&[("garbage.fig8.x", 9.0), ("mops.x", 10.0)]);
        // 68x garbage blowup (real back-to-back observation) must not gate.
        let cur = snap(&[("garbage.fig8.x", 615.0), ("mops.x", 10.0)]);
        let cmp = compare(&base, &cur, 0.10);
        assert!(!cmp.failed());
        assert!(cmp.render().contains("info"));
        // But garbage deltas are still computed and visible.
        let d = cmp.deltas.iter().find(|d| d.metric.starts_with("garbage")).unwrap();
        assert!(d.regression > 10.0);
    }

    #[test]
    fn unmatched_metrics_never_fail() {
        let base = snap(&[("mops.x", 10.0), ("ns.retired", 5.0)]);
        let cur = snap(&[("mops.x", 10.0), ("ns.brand_new", 99.0)]);
        let cmp = compare(&base, &cur, 0.10);
        assert!(!cmp.failed());
        assert_eq!(cmp.unmatched.len(), 2);
        assert!(cmp.render().contains("not gated"));
    }

    #[test]
    fn baseline_discovery_picks_max_pr() {
        let dir = std::env::temp_dir().join(format!("snaptest-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        for n in [3, 11, 7] {
            std::fs::write(
                dir.join(format!("BENCH_pr{n}.json")),
                snap(&[("mops.x", n as f64)]).to_json(),
            )
            .unwrap();
        }
        std::fs::write(dir.join("BENCH_prX.json"), "junk").unwrap();
        let (n, path) = find_baseline(&dir).expect("snapshots exist");
        assert_eq!(n, 11);
        let loaded = Snapshot::from_json(&std::fs::read_to_string(path).unwrap()).unwrap();
        assert_eq!(loaded.get("mops.x"), Some(11.0));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn meta_roundtrips_and_sanitizes() {
        let mut s = snap(&[("mops.x", 1.0)]);
        s.record_meta("host.cores", "4");
        s.record_meta("env.KV_SHARDS", "2");
        s.record_meta("env.WEIRD", "a\"b,c{d}e\nf");
        let text = s.to_json();
        assert!(text.find("\"meta\"").unwrap() < text.find("\"metrics\"").unwrap());
        let parsed = Snapshot::from_json(&text).expect("meta roundtrip");
        assert_eq!(parsed.recorded_cores(), Some(4));
        assert_eq!(parsed.get_meta("env.KV_SHARDS"), Some("2"));
        assert_eq!(parsed.get_meta("env.WEIRD"), Some("a_b_c_d_e_f"));
        assert_eq!(parsed.get("mops.x"), Some(1.0));
    }

    #[test]
    fn meta_less_snapshots_still_parse() {
        // Files committed before the meta block existed (PR ≤ 6).
        let parsed = Snapshot::from_json("{\n  \"schema\": 1,\n  \"metrics\": {\n    \"ns.a\": 2.5\n  }\n}\n")
            .expect("old format");
        assert!(parsed.meta.is_empty());
        assert_eq!(parsed.recorded_cores(), None);
        assert_eq!(parsed.get("ns.a"), Some(2.5));
    }

    #[test]
    fn host_shape_mismatch_reports_differing_cores() {
        let mut base = snap(&[("mops.x", 1.0)]);
        let cur = snap(&[("mops.x", 1.0)]);
        // Baseline without meta: nothing to compare against — no mismatch.
        assert_eq!(host_shape_mismatch(&base, &cur), None);
        base.record_meta("host.cores", &(current_cores() + 1).to_string());
        let msg = host_shape_mismatch(&base, &cur).expect("shapes differ");
        assert!(msg.contains("cores"));
        // Matching shapes: comparable.
        base.record_meta("host.cores", &current_cores().to_string());
        assert_eq!(host_shape_mismatch(&base, &cur), None);
    }

    #[test]
    fn record_host_meta_captures_cores_and_env() {
        std::env::set_var("KV_SNAPTEST_SHARDS", "3");
        let mut s = Snapshot::new();
        s.record_host_meta();
        std::env::remove_var("KV_SNAPTEST_SHARDS");
        assert_eq!(s.recorded_cores(), Some(current_cores()));
        assert_eq!(s.get_meta("env.KV_SNAPTEST_SHARDS"), Some("3"));
    }

    #[test]
    fn empty_dir_has_no_baseline() {
        let dir = std::env::temp_dir().join(format!("snapempty-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        assert!(find_baseline(&dir).is_none());
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
