//! Spawning per-scenario subprocesses and collecting CSV rows.

use std::path::PathBuf;
use std::process::Command;
use std::time::Duration;

use crate::config::Scenario;
use crate::metrics::Stats;

/// Common CLI options for the figure binaries.
pub struct Opts {
    /// CI-scale run: fewer threads, shorter durations, smaller ranges.
    pub quick: bool,
    /// Paper-scale run: 10 s × full sweeps.
    pub paper: bool,
    /// Run scenarios in-process instead of spawning `smr_bench`
    /// (faster, but garbage counters bleed across scenarios).
    pub in_process: bool,
}

impl Opts {
    /// Parses the standard flags from `std::env::args`.
    pub fn parse() -> Self {
        let args: Vec<String> = std::env::args().collect();
        Self {
            quick: args.iter().any(|a| a == "--quick"),
            paper: args.iter().any(|a| a == "--paper"),
            in_process: args.iter().any(|a| a == "--in-process"),
        }
    }

    /// Measurement duration per scenario.
    pub fn duration(&self) -> Duration {
        if self.paper {
            Duration::from_secs(10)
        } else if self.quick {
            Duration::from_millis(300)
        } else {
            Duration::from_secs(3)
        }
    }
}

fn smr_bench_path() -> PathBuf {
    let mut p = std::env::current_exe().expect("current_exe");
    p.pop();
    p.push("smr_bench");
    p
}

/// Runs one scenario, either in a subprocess (default) or in-process.
pub fn run_scenario(sc: &Scenario, opts: &Opts) -> Option<Stats> {
    if !crate::runner::applicable(sc.ds, sc.scheme) {
        return None;
    }
    if opts.in_process {
        return crate::runner::run(sc);
    }
    let out = Command::new(smr_bench_path())
        .args([
            "--ds",
            &sc.ds.to_string(),
            "--scheme",
            &sc.scheme.to_string(),
            "--threads",
            &sc.threads.to_string(),
            "--key-range",
            &sc.key_range.to_string(),
            "--workload",
            &sc.workload.to_string(),
            "--duration-ms",
            &sc.duration.as_millis().to_string(),
        ])
        .args(if sc.long_running {
            vec!["--long-running"]
        } else {
            vec![]
        })
        .output()
        .expect("failed to spawn smr_bench; run via cargo so sibling binaries are built");
    if !out.status.success() {
        eprintln!(
            "smr_bench failed for {}: {}",
            sc.csv_prefix(),
            String::from_utf8_lossy(&out.stderr)
        );
        return None;
    }
    let line = String::from_utf8_lossy(&out.stdout);
    parse_csv_line(line.trim())
}

fn parse_csv_line(line: &str) -> Option<Stats> {
    // ds,scheme,threads,key_range,workload,mops,peak,avg,rss
    let fields: Vec<&str> = line.split(',').collect();
    if fields.len() != 9 {
        eprintln!("malformed smr_bench output: {line}");
        return None;
    }
    Some(Stats {
        throughput_mops: fields[5].parse().ok()?,
        peak_garbage: fields[6].parse().ok()?,
        avg_garbage: fields[7].parse().ok()?,
        peak_rss_mb: fields[8].parse().ok()?,
    })
}

/// Prints a row and appends it to `results/<name>.csv`.
pub fn emit(name: &str, sc: &Scenario, stats: &Stats) {
    let row = format!("{},{}", sc.csv_prefix(), stats.csv_suffix());
    println!("{row}");
    let _ = std::fs::create_dir_all("results");
    use std::io::Write;
    let path = format!("results/{name}.csv");
    let fresh = !std::path::Path::new(&path).exists();
    if let Ok(mut f) = std::fs::OpenOptions::new().create(true).append(true).open(&path) {
        if fresh {
            let _ = writeln!(f, "{}", Scenario::CSV_HEADER);
        }
        let _ = writeln!(f, "{row}");
    }
}
