//! Spawning per-scenario subprocesses and collecting CSV rows.

use std::io::Read;
use std::path::PathBuf;
use std::process::{Command, Stdio};
use std::time::{Duration, Instant};

use crate::config::Scenario;
use crate::metrics::Stats;

/// Common CLI options for the figure binaries.
pub struct Opts {
    /// CI-scale run: fewer threads, shorter durations, smaller ranges.
    pub quick: bool,
    /// Paper-scale run: 10 s × full sweeps.
    pub paper: bool,
    /// Run scenarios in-process instead of spawning `smr_bench`
    /// (faster, but garbage counters bleed across scenarios).
    pub in_process: bool,
    /// Zipfian skew of the key stream (`--zipf <theta>`, default 0 =
    /// uniform, the paper's methodology).
    pub zipf: f64,
}

impl Opts {
    /// Parses the standard flags from `std::env::args`.
    pub fn parse() -> Self {
        let args: Vec<String> = std::env::args().collect();
        let zipf = args
            .iter()
            .position(|a| a == "--zipf")
            .and_then(|i| args.get(i + 1))
            .map(|v| v.parse().expect("bad --zipf"))
            .unwrap_or(0.0);
        Self {
            quick: args.iter().any(|a| a == "--quick"),
            paper: args.iter().any(|a| a == "--paper"),
            in_process: args.iter().any(|a| a == "--in-process"),
            zipf,
        }
    }

    /// Measurement duration per scenario.
    pub fn duration(&self) -> Duration {
        if self.paper {
            Duration::from_secs(10)
        } else if self.quick {
            Duration::from_millis(300)
        } else {
            Duration::from_secs(3)
        }
    }

    /// Warmup window per scenario (excluded from measurement). Zero in
    /// quick mode so CI sweeps stay fast.
    pub fn warmup(&self) -> Duration {
        if self.paper {
            Duration::from_secs(2)
        } else if self.quick {
            Duration::ZERO
        } else {
            Duration::from_millis(500)
        }
    }
}

fn smr_bench_path() -> PathBuf {
    let mut p = std::env::current_exe().expect("current_exe");
    p.pop();
    p.push("smr_bench");
    p
}

/// What happened to one scenario run.
#[derive(Debug)]
pub enum Outcome {
    /// Completed and produced parseable stats.
    Done(Stats),
    /// The subprocess exceeded its deadline twice (initial run + retry)
    /// and was killed; `emit_timeout` records it so a wedged scheme
    /// (e.g. a livelocked reclaimer) leaves a trace instead of hanging
    /// the whole sweep.
    Timeout,
    /// The (ds, scheme) pair is inapplicable — not an error.
    Skipped,
    /// The subprocess exited non-zero or printed garbage.
    Failed,
}

/// Wall-clock budget for one scenario subprocess: the measured window plus
/// a 10x factor for slow hosts (the run itself inflates under sanitizers
/// and oversubscription) plus a flat allowance for prefill and teardown.
pub fn scenario_deadline(sc: &Scenario) -> Duration {
    (sc.warmup + sc.duration) * 10 + Duration::from_secs(20)
}

/// Result of driving one subprocess to completion or its deadline.
enum CmdResult {
    Exited { success: bool, stdout: String, stderr: String },
    TimedOut,
}

/// Spawns `cmd` and polls it against `deadline`; kills it (and reaps the
/// zombie) if it overruns. Output is drained from readers *after* exit —
/// safe here because smr_bench writes a single CSV line, far below pipe
/// capacity, so it can never block on a full pipe while we poll.
fn run_with_deadline(cmd: &mut Command, deadline: Duration) -> std::io::Result<CmdResult> {
    let mut child = cmd.stdout(Stdio::piped()).stderr(Stdio::piped()).spawn()?;
    let start = Instant::now();
    let status = loop {
        match child.try_wait()? {
            Some(status) => break status,
            None if start.elapsed() > deadline => {
                let _ = child.kill();
                let _ = child.wait();
                return Ok(CmdResult::TimedOut);
            }
            None => std::thread::sleep(Duration::from_millis(10)),
        }
    };
    let mut stdout = String::new();
    let mut stderr = String::new();
    if let Some(mut s) = child.stdout.take() {
        let _ = s.read_to_string(&mut stdout);
    }
    if let Some(mut s) = child.stderr.take() {
        let _ = s.read_to_string(&mut stderr);
    }
    Ok(CmdResult::Exited {
        success: status.success(),
        stdout,
        stderr,
    })
}

/// Runs one scenario, either in a subprocess (default) or in-process.
///
/// Subprocess runs get a per-scenario deadline ([`scenario_deadline`]) and
/// one retry after a short backoff; a second overrun yields
/// [`Outcome::Timeout`].
pub fn run_scenario(sc: &Scenario, opts: &Opts) -> Outcome {
    run_scenario_env(sc, opts, &[])
}

/// Like [`run_scenario`], with extra environment variables for the
/// subprocess. This is how A/B sweeps toggle process-wide knobs per run
/// (e.g. `SMR_NO_BACKOFF=1` for the bare-CAS baseline): the knob is read
/// once at subprocess startup, so each scenario gets a clean setting.
///
/// In `--in-process` mode the variables are set in this process instead —
/// best effort only, since knobs cached in a `OnceLock` (like the backoff
/// config) latch whatever the first scenario saw.
pub fn run_scenario_env(sc: &Scenario, opts: &Opts, env: &[(&str, &str)]) -> Outcome {
    if !crate::runner::applicable(sc.ds, sc.scheme) {
        return Outcome::Skipped;
    }
    if opts.in_process {
        for (k, v) in env {
            std::env::set_var(k, v);
        }
        return match crate::runner::run(sc) {
            Some(stats) => Outcome::Done(stats),
            None => Outcome::Failed,
        };
    }
    let deadline = scenario_deadline(sc);
    for attempt in 0..2 {
        if attempt > 0 {
            eprintln!(
                "smr_bench timed out for {} after {deadline:?}; retrying once",
                sc.csv_prefix()
            );
            std::thread::sleep(Duration::from_millis(500));
        }
        let mut cmd = Command::new(smr_bench_path());
        cmd.args([
            "--ds",
            &sc.ds.to_string(),
            "--scheme",
            &sc.scheme.to_string(),
            "--threads",
            &sc.threads.to_string(),
            "--key-range",
            &sc.key_range.to_string(),
            "--workload",
            &sc.workload.to_string(),
            "--zipf",
            &sc.zipf_theta.to_string(),
            "--warmup-ms",
            &sc.warmup.as_millis().to_string(),
            "--duration-ms",
            &sc.duration.as_millis().to_string(),
        ])
        .args(if sc.long_running {
            vec!["--long-running"]
        } else {
            vec![]
        });
        cmd.envs(env.iter().map(|&(k, v)| (k, v)));
        let result = run_with_deadline(&mut cmd, deadline)
            .expect("failed to spawn smr_bench; run via cargo so sibling binaries are built");
        match result {
            CmdResult::TimedOut => continue,
            CmdResult::Exited {
                success: false,
                stderr,
                ..
            } => {
                eprintln!("smr_bench failed for {}: {}", sc.csv_prefix(), stderr);
                return Outcome::Failed;
            }
            CmdResult::Exited { stdout, .. } => {
                return match parse_csv_line(stdout.trim()) {
                    Some(stats) => Outcome::Done(stats),
                    None => Outcome::Failed,
                };
            }
        }
    }
    eprintln!(
        "smr_bench timed out for {} twice; recording a timeout row",
        sc.csv_prefix()
    );
    Outcome::Timeout
}

fn parse_csv_line(line: &str) -> Option<Stats> {
    // Layout per Scenario::CSV_HEADER: 7 scenario fields, then
    // mops,peak,avg,rss,p50,p90,p99,p999.
    let fields: Vec<&str> = line.split(',').collect();
    if fields.len() != Scenario::CSV_HEADER.split(',').count() {
        eprintln!("malformed smr_bench output: {line}");
        return None;
    }
    Some(Stats {
        throughput_mops: fields[7].parse().ok()?,
        peak_garbage: fields[8].parse().ok()?,
        avg_garbage: fields[9].parse().ok()?,
        peak_rss_mb: fields[10].parse().ok()?,
        p50_ns: fields[11].parse().ok()?,
        p90_ns: fields[12].parse().ok()?,
        p99_ns: fields[13].parse().ok()?,
        p999_ns: fields[14].parse().ok()?,
    })
}

/// Prints a row and appends it to `results/<name>.csv`.
pub fn emit(name: &str, sc: &Scenario, stats: &Stats) {
    emit_row(name, format!("{},{}", sc.csv_prefix(), stats.csv_suffix()));
}

/// The full CSV row for a timed-out scenario: the complete scenario prefix
/// (ds, scheme, **threads**, key range, …) followed by `timeout` in every
/// stat column, so the row matches [`Scenario::CSV_HEADER`] column-for-
/// column and numeric consumers (verdict, plot) skip it on parse failure
/// without losing which configuration wedged.
pub fn timeout_row(sc: &Scenario) -> String {
    let stat_cols = Scenario::CSV_HEADER.split(',').count() - sc.csv_prefix().split(',').count();
    let suffix = vec!["timeout"; stat_cols].join(",");
    format!("{},{suffix}", sc.csv_prefix())
}

/// Records a timed-out scenario (see [`timeout_row`]).
pub fn emit_timeout(name: &str, sc: &Scenario) {
    emit_row(name, timeout_row(sc));
}

fn emit_row(name: &str, row: String) {
    println!("{row}");
    let _ = std::fs::create_dir_all("results");
    use std::io::Write;
    let path = format!("results/{name}.csv");
    let fresh = !std::path::Path::new(&path).exists();
    if let Ok(mut f) = std::fs::OpenOptions::new().create(true).append(true).open(&path) {
        if fresh {
            let _ = writeln!(f, "{}", Scenario::CSV_HEADER);
        }
        let _ = writeln!(f, "{row}");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{Ds, Scheme, Workload};

    #[test]
    fn csv_line_roundtrips_through_parse() {
        let sc = Scenario {
            ds: Ds::HashMap,
            scheme: Scheme::Hpp,
            threads: 4,
            key_range: 1000,
            workload: Workload::ReadMost,
            zipf_theta: 0.99,
            warmup: Duration::from_millis(100),
            duration: Duration::from_secs(1),
            long_running: false,
        };
        let stats = Stats {
            throughput_mops: 2.5,
            peak_garbage: 100,
            avg_garbage: 40,
            peak_rss_mb: 12.0,
            p50_ns: 256,
            p90_ns: 512,
            p99_ns: 2048,
            p999_ns: 16384,
        };
        let line = format!("{},{}", sc.csv_prefix(), stats.csv_suffix());
        let parsed = parse_csv_line(&line).expect("roundtrip parse");
        assert_eq!(parsed.throughput_mops, stats.throughput_mops);
        assert_eq!(parsed.peak_garbage, stats.peak_garbage);
        assert_eq!(parsed.p999_ns, stats.p999_ns);
    }

    #[test]
    fn short_lines_are_rejected() {
        assert!(parse_csv_line("a,b,c").is_none());
    }

    /// A timeout row must keep the full 15-column schema — in particular
    /// the scenario's thread count, which identifies *which* point of a
    /// sweep wedged. (Regression: consumers aligning columns by header
    /// index mis-parsed short timeout rows.)
    #[test]
    fn timeout_row_keeps_full_schema_and_threads() {
        let sc = Scenario {
            ds: Ds::SkipList,
            scheme: Scheme::Hp,
            threads: 48,
            key_range: 100_000,
            workload: Workload::WriteOnly,
            zipf_theta: 0.6,
            warmup: Duration::from_millis(250),
            duration: Duration::from_secs(3),
            long_running: false,
        };
        let row = timeout_row(&sc);
        let header_cols = Scenario::CSV_HEADER.split(',').count();
        let fields: Vec<&str> = row.split(',').collect();
        assert_eq!(fields.len(), header_cols, "row must match the header");
        assert_eq!(fields[0], "skiplist");
        assert_eq!(fields[1], "hp");
        assert_eq!(fields[2], "48", "thread count must survive a timeout");
        assert!(fields[7..].iter().all(|f| *f == "timeout"));
        // And the stats parser must reject it rather than misread it.
        assert!(parse_csv_line(&row).is_none());
    }

    #[test]
    fn deadline_kills_overrunning_process() {
        let mut cmd = Command::new("sleep");
        cmd.arg("30");
        let start = Instant::now();
        match run_with_deadline(&mut cmd, Duration::from_millis(100)).unwrap() {
            CmdResult::TimedOut => {}
            CmdResult::Exited { .. } => panic!("sleep 30 cannot finish in 100ms"),
        }
        assert!(
            start.elapsed() < Duration::from_secs(10),
            "the child must be killed at the deadline, not waited out"
        );
    }

    #[test]
    fn fast_process_output_is_collected() {
        let mut cmd = Command::new("sh");
        cmd.args(["-c", "echo out-line; echo err-line >&2"]);
        match run_with_deadline(&mut cmd, Duration::from_secs(30)).unwrap() {
            CmdResult::Exited {
                success,
                stdout,
                stderr,
            } => {
                assert!(success);
                assert_eq!(stdout.trim(), "out-line");
                assert_eq!(stderr.trim(), "err-line");
            }
            CmdResult::TimedOut => panic!("echo must not time out"),
        }
    }

    #[test]
    fn failing_process_reports_not_success() {
        let mut cmd = Command::new("sh");
        cmd.args(["-c", "exit 3"]);
        match run_with_deadline(&mut cmd, Duration::from_secs(30)).unwrap() {
            CmdResult::Exited { success, .. } => assert!(!success),
            CmdResult::TimedOut => panic!("exit 3 must not time out"),
        }
    }
}
