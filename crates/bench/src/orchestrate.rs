//! Spawning per-scenario subprocesses and collecting CSV rows.

use std::path::PathBuf;
use std::process::Command;
use std::time::Duration;

use crate::config::Scenario;
use crate::metrics::Stats;

/// Common CLI options for the figure binaries.
pub struct Opts {
    /// CI-scale run: fewer threads, shorter durations, smaller ranges.
    pub quick: bool,
    /// Paper-scale run: 10 s × full sweeps.
    pub paper: bool,
    /// Run scenarios in-process instead of spawning `smr_bench`
    /// (faster, but garbage counters bleed across scenarios).
    pub in_process: bool,
    /// Zipfian skew of the key stream (`--zipf <theta>`, default 0 =
    /// uniform, the paper's methodology).
    pub zipf: f64,
}

impl Opts {
    /// Parses the standard flags from `std::env::args`.
    pub fn parse() -> Self {
        let args: Vec<String> = std::env::args().collect();
        let zipf = args
            .iter()
            .position(|a| a == "--zipf")
            .and_then(|i| args.get(i + 1))
            .map(|v| v.parse().expect("bad --zipf"))
            .unwrap_or(0.0);
        Self {
            quick: args.iter().any(|a| a == "--quick"),
            paper: args.iter().any(|a| a == "--paper"),
            in_process: args.iter().any(|a| a == "--in-process"),
            zipf,
        }
    }

    /// Measurement duration per scenario.
    pub fn duration(&self) -> Duration {
        if self.paper {
            Duration::from_secs(10)
        } else if self.quick {
            Duration::from_millis(300)
        } else {
            Duration::from_secs(3)
        }
    }

    /// Warmup window per scenario (excluded from measurement). Zero in
    /// quick mode so CI sweeps stay fast.
    pub fn warmup(&self) -> Duration {
        if self.paper {
            Duration::from_secs(2)
        } else if self.quick {
            Duration::ZERO
        } else {
            Duration::from_millis(500)
        }
    }
}

fn smr_bench_path() -> PathBuf {
    let mut p = std::env::current_exe().expect("current_exe");
    p.pop();
    p.push("smr_bench");
    p
}

/// Runs one scenario, either in a subprocess (default) or in-process.
pub fn run_scenario(sc: &Scenario, opts: &Opts) -> Option<Stats> {
    if !crate::runner::applicable(sc.ds, sc.scheme) {
        return None;
    }
    if opts.in_process {
        return crate::runner::run(sc);
    }
    let out = Command::new(smr_bench_path())
        .args([
            "--ds",
            &sc.ds.to_string(),
            "--scheme",
            &sc.scheme.to_string(),
            "--threads",
            &sc.threads.to_string(),
            "--key-range",
            &sc.key_range.to_string(),
            "--workload",
            &sc.workload.to_string(),
            "--zipf",
            &sc.zipf_theta.to_string(),
            "--warmup-ms",
            &sc.warmup.as_millis().to_string(),
            "--duration-ms",
            &sc.duration.as_millis().to_string(),
        ])
        .args(if sc.long_running {
            vec!["--long-running"]
        } else {
            vec![]
        })
        .output()
        .expect("failed to spawn smr_bench; run via cargo so sibling binaries are built");
    if !out.status.success() {
        eprintln!(
            "smr_bench failed for {}: {}",
            sc.csv_prefix(),
            String::from_utf8_lossy(&out.stderr)
        );
        return None;
    }
    let line = String::from_utf8_lossy(&out.stdout);
    parse_csv_line(line.trim())
}

fn parse_csv_line(line: &str) -> Option<Stats> {
    // Layout per Scenario::CSV_HEADER: 7 scenario fields, then
    // mops,peak,avg,rss,p50,p90,p99,p999.
    let fields: Vec<&str> = line.split(',').collect();
    if fields.len() != Scenario::CSV_HEADER.split(',').count() {
        eprintln!("malformed smr_bench output: {line}");
        return None;
    }
    Some(Stats {
        throughput_mops: fields[7].parse().ok()?,
        peak_garbage: fields[8].parse().ok()?,
        avg_garbage: fields[9].parse().ok()?,
        peak_rss_mb: fields[10].parse().ok()?,
        p50_ns: fields[11].parse().ok()?,
        p90_ns: fields[12].parse().ok()?,
        p99_ns: fields[13].parse().ok()?,
        p999_ns: fields[14].parse().ok()?,
    })
}

/// Prints a row and appends it to `results/<name>.csv`.
pub fn emit(name: &str, sc: &Scenario, stats: &Stats) {
    let row = format!("{},{}", sc.csv_prefix(), stats.csv_suffix());
    println!("{row}");
    let _ = std::fs::create_dir_all("results");
    use std::io::Write;
    let path = format!("results/{name}.csv");
    let fresh = !std::path::Path::new(&path).exists();
    if let Ok(mut f) = std::fs::OpenOptions::new().create(true).append(true).open(&path) {
        if fresh {
            let _ = writeln!(f, "{}", Scenario::CSV_HEADER);
        }
        let _ = writeln!(f, "{row}");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{Ds, Scheme, Workload};

    #[test]
    fn csv_line_roundtrips_through_parse() {
        let sc = Scenario {
            ds: Ds::HashMap,
            scheme: Scheme::Hpp,
            threads: 4,
            key_range: 1000,
            workload: Workload::ReadMost,
            zipf_theta: 0.99,
            warmup: Duration::from_millis(100),
            duration: Duration::from_secs(1),
            long_running: false,
        };
        let stats = Stats {
            throughput_mops: 2.5,
            peak_garbage: 100,
            avg_garbage: 40,
            peak_rss_mb: 12.0,
            p50_ns: 256,
            p90_ns: 512,
            p99_ns: 2048,
            p999_ns: 16384,
        };
        let line = format!("{},{}", sc.csv_prefix(), stats.csv_suffix());
        let parsed = parse_csv_line(&line).expect("roundtrip parse");
        assert_eq!(parsed.throughput_mops, stats.throughput_mops);
        assert_eq!(parsed.peak_garbage, stats.peak_garbage);
        assert_eq!(parsed.p999_ns, stats.p999_ns);
    }

    #[test]
    fn short_lines_are_rejected() {
        assert!(parse_csv_line("a,b,c").is_none());
    }
}
