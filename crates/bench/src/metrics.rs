//! Measurement-side plumbing: per-run statistics, allocation-free latency
//! histograms, and the garbage/RSS sampler.

use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

/// Result of one scenario run.
#[derive(Debug, Clone)]
pub struct Stats {
    /// Completed operations per second, in millions.
    pub throughput_mops: f64,
    /// Peak retired-but-unreclaimed blocks (relative to scenario start).
    pub peak_garbage: u64,
    /// Time-averaged unreclaimed blocks.
    pub avg_garbage: u64,
    /// Peak resident set size in MiB.
    pub peak_rss_mb: f64,
    /// Median per-operation latency (log₂-bucket lower bound, ns).
    pub p50_ns: u64,
    /// 90th-percentile per-operation latency (ns).
    pub p90_ns: u64,
    /// 99th-percentile per-operation latency (ns).
    pub p99_ns: u64,
    /// 99.9th-percentile per-operation latency (ns).
    pub p999_ns: u64,
}

impl Stats {
    /// The measured part of a CSV row (order matches
    /// [`crate::config::Scenario::CSV_HEADER`]).
    pub fn csv_suffix(&self) -> String {
        format!(
            "{:.6},{},{},{:.1},{},{},{},{}",
            self.throughput_mops,
            self.peak_garbage,
            self.avg_garbage,
            self.peak_rss_mb,
            self.p50_ns,
            self.p90_ns,
            self.p99_ns,
            self.p999_ns
        )
    }
}

/// A fixed-size log₂-bucketed latency histogram.
///
/// Bucket `i` counts samples with `floor(log2(max(ns, 1))) == i`, i.e.
/// latencies in `[2^i, 2^(i+1))` ns (bucket 0 additionally holds 0 ns).
/// Recording is a `leading_zeros` plus one increment into a thread-local
/// 512-byte array — no allocation, no division, and no shared-cacheline
/// traffic while measurement runs; per-thread histograms are merged under a
/// lock only after the stop flag is set.
#[derive(Debug, Clone)]
pub struct LatencyHistogram {
    buckets: [u64; 64],
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl LatencyHistogram {
    /// An empty histogram.
    pub const fn new() -> Self {
        Self { buckets: [0; 64] }
    }

    /// Records one sample of `ns` nanoseconds.
    #[inline]
    pub fn record(&mut self, ns: u64) {
        let bucket = 63 - (ns | 1).leading_zeros();
        self.buckets[bucket as usize] += 1;
    }

    /// Adds every bucket of `other` into `self`.
    pub fn merge(&mut self, other: &LatencyHistogram) {
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += b;
        }
    }

    /// Total number of recorded samples.
    pub fn count(&self) -> u64 {
        self.buckets.iter().sum()
    }

    /// The `p`-quantile (`0 < p <= 1`), reported as the lower bound `2^i` of
    /// the bucket containing the `ceil(p·count)`-th smallest sample; 0 if
    /// the histogram is empty.
    pub fn percentile_ns(&self, p: f64) -> u64 {
        let total = self.count();
        if total == 0 {
            return 0;
        }
        let target = ((p * total as f64).ceil() as u64).clamp(1, total);
        let mut cum = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            cum += c;
            if cum >= target {
                return 1u64 << i;
            }
        }
        unreachable!("cumulative count must reach total")
    }
}

fn rss_bytes() -> u64 {
    // /proc/self/statm: pages; field 1 = resident.
    std::fs::read_to_string("/proc/self/statm")
        .ok()
        .and_then(|s| {
            s.split_whitespace()
                .nth(1)
                .and_then(|f| f.parse::<u64>().ok())
        })
        .map(|pages| pages * 4096)
        .unwrap_or(0)
}

/// Samples the global garbage counter and RSS until stopped.
///
/// Shutdown is prompt: `finish()` signals a condvar the sampler waits on
/// between samples, so it returns within one wakeup rather than a full
/// `interval` (the seed version slept the whole interval after stop).
pub struct Sampler {
    shared: Arc<(Mutex<bool>, Condvar)>,
    handle: JoinHandle<(u64, u64, u64)>,
}

impl Sampler {
    /// Starts sampling every `interval`.
    pub fn start(interval: Duration) -> Self {
        let shared = Arc::new((Mutex::new(false), Condvar::new()));
        let baseline = smr_common::counters::garbage_now();
        let shared2 = Arc::clone(&shared);
        let handle = std::thread::spawn(move || {
            let mut peak_garbage = 0u64;
            let mut sum_garbage = 0u128;
            let mut samples = 0u64;
            let mut peak_rss = 0u64;
            let mut take_sample = |peak_garbage: &mut u64, peak_rss: &mut u64| {
                let g = smr_common::counters::garbage_now().saturating_sub(baseline);
                *peak_garbage = (*peak_garbage).max(g);
                sum_garbage += g as u128;
                samples += 1;
                *peak_rss = (*peak_rss).max(rss_bytes());
            };
            let (stop_flag, wakeup) = &*shared2;
            let mut stopped = stop_flag.lock().expect("sampler lock poisoned");
            loop {
                take_sample(&mut peak_garbage, &mut peak_rss);
                if *stopped {
                    break;
                }
                let (guard, _) = wakeup
                    .wait_timeout(stopped, interval)
                    .expect("sampler lock poisoned");
                stopped = guard;
                if *stopped {
                    // One final sample so the window's tail is covered.
                    take_sample(&mut peak_garbage, &mut peak_rss);
                    break;
                }
            }
            drop(stopped);
            let avg = if samples > 0 {
                (sum_garbage / samples as u128) as u64
            } else {
                0
            };
            (peak_garbage, avg, peak_rss)
        });
        Self { shared, handle }
    }

    /// Stops sampling; returns (peak garbage, avg garbage, peak RSS bytes).
    pub fn finish(self) -> (u64, u64, u64) {
        let (stop_flag, wakeup) = &*self.shared;
        *stop_flag.lock().expect("sampler lock poisoned") = true;
        wakeup.notify_all();
        self.handle.join().expect("sampler panicked")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Instant;

    #[test]
    fn csv_suffix_has_eight_fields() {
        let s = Stats {
            throughput_mops: 1.25,
            peak_garbage: 10,
            avg_garbage: 5,
            peak_rss_mb: 3.5,
            p50_ns: 128,
            p90_ns: 256,
            p99_ns: 1024,
            p999_ns: 4096,
        };
        assert_eq!(s.csv_suffix().split(',').count(), 8);
    }

    #[test]
    fn sampler_tracks_garbage_peak() {
        let sampler = Sampler::start(Duration::from_millis(1));
        smr_common::counters::incr_garbage(500);
        std::thread::sleep(Duration::from_millis(20));
        smr_common::counters::decr_garbage(500);
        let (peak, _avg, rss) = sampler.finish();
        assert!(peak >= 500, "peak {peak} missed the spike");
        assert!(rss > 0, "rss sampling failed");
    }

    #[test]
    fn sampler_shutdown_is_prompt() {
        // Satellite fix: with a huge interval, finish() must not sleep the
        // interval out — the condvar wakes the sampler immediately.
        let sampler = Sampler::start(Duration::from_secs(60));
        std::thread::sleep(Duration::from_millis(5));
        let started = Instant::now();
        let _ = sampler.finish();
        assert!(
            started.elapsed() < Duration::from_secs(2),
            "finish took {:?}",
            started.elapsed()
        );
    }

    #[test]
    fn histogram_buckets_by_log2() {
        let mut h = LatencyHistogram::new();
        h.record(0); // bucket 0
        h.record(1); // bucket 0
        h.record(2); // bucket 1
        h.record(3); // bucket 1
        h.record(1023); // bucket 9
        h.record(1024); // bucket 10
        h.record(u64::MAX); // bucket 63
        assert_eq!(h.count(), 7);
        assert_eq!(h.buckets[0], 2);
        assert_eq!(h.buckets[1], 2);
        assert_eq!(h.buckets[9], 1);
        assert_eq!(h.buckets[10], 1);
        assert_eq!(h.buckets[63], 1);
    }

    #[test]
    fn histogram_merge_and_exact_percentiles() {
        // Satellite: known synthetic samples → exact bucket percentiles.
        // 90 samples at 5 ns (bucket 2 → reported 4) and 10 at 1000 ns
        // (bucket 9 → reported 512), merged from two thread-local halves.
        let mut a = LatencyHistogram::new();
        let mut b = LatencyHistogram::new();
        for _ in 0..45 {
            a.record(5);
            b.record(5);
        }
        for _ in 0..5 {
            a.record(1000);
            b.record(1000);
        }
        let mut merged = LatencyHistogram::new();
        merged.merge(&a);
        merged.merge(&b);
        assert_eq!(merged.count(), 100);
        assert_eq!(merged.percentile_ns(0.50), 4);
        assert_eq!(merged.percentile_ns(0.90), 4); // rank 90 is still a 5 ns sample
        assert_eq!(merged.percentile_ns(0.99), 512);
        assert_eq!(merged.percentile_ns(0.999), 512);
        assert_eq!(merged.percentile_ns(1.0), 512);
    }

    #[test]
    fn empty_histogram_percentile_is_zero() {
        assert_eq!(LatencyHistogram::new().percentile_ns(0.99), 0);
    }
}
