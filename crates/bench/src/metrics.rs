//! Garbage and memory sampling during a measurement window.

use std::sync::atomic::{AtomicBool, Ordering::Relaxed};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// Result of one scenario run.
#[derive(Debug, Clone)]
pub struct Stats {
    /// Completed operations per second, in millions.
    pub throughput_mops: f64,
    /// Peak retired-but-unreclaimed blocks (relative to scenario start).
    pub peak_garbage: u64,
    /// Time-averaged unreclaimed blocks.
    pub avg_garbage: u64,
    /// Peak resident set size in MiB.
    pub peak_rss_mb: f64,
}

impl Stats {
    /// The measured part of a CSV row.
    pub fn csv_suffix(&self) -> String {
        format!(
            "{:.6},{},{},{:.1}",
            self.throughput_mops, self.peak_garbage, self.avg_garbage, self.peak_rss_mb
        )
    }
}

fn rss_bytes() -> u64 {
    // /proc/self/statm: pages; field 1 = resident.
    std::fs::read_to_string("/proc/self/statm")
        .ok()
        .and_then(|s| {
            s.split_whitespace()
                .nth(1)
                .and_then(|f| f.parse::<u64>().ok())
        })
        .map(|pages| pages * 4096)
        .unwrap_or(0)
}

/// Samples the global garbage counter and RSS until stopped.
pub struct Sampler {
    stop: Arc<AtomicBool>,
    handle: JoinHandle<(u64, u64, u64)>,
    baseline: u64,
}

impl Sampler {
    /// Starts sampling every `interval`.
    pub fn start(interval: Duration) -> Self {
        let stop = Arc::new(AtomicBool::new(false));
        let baseline = smr_common::counters::garbage_now();
        let stop2 = stop.clone();
        let handle = std::thread::spawn(move || {
            let mut peak_garbage = 0u64;
            let mut sum_garbage = 0u128;
            let mut samples = 0u64;
            let mut peak_rss = 0u64;
            while !stop2.load(Relaxed) {
                let g = smr_common::counters::garbage_now().saturating_sub(baseline);
                peak_garbage = peak_garbage.max(g);
                sum_garbage += g as u128;
                samples += 1;
                peak_rss = peak_rss.max(rss_bytes());
                std::thread::sleep(interval);
            }
            let avg = if samples > 0 {
                (sum_garbage / samples as u128) as u64
            } else {
                0
            };
            (peak_garbage, avg, peak_rss)
        });
        Self {
            stop,
            handle,
            baseline,
        }
    }

    /// Stops sampling; returns (peak garbage, avg garbage, peak RSS bytes).
    pub fn finish(self) -> (u64, u64, u64) {
        self.stop.store(true, Relaxed);
        let _ = self.baseline;
        self.handle.join().expect("sampler panicked")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn csv_suffix_has_four_fields() {
        let s = Stats {
            throughput_mops: 1.25,
            peak_garbage: 10,
            avg_garbage: 5,
            peak_rss_mb: 3.5,
        };
        assert_eq!(s.csv_suffix().split(',').count(), 4);
    }

    #[test]
    fn sampler_tracks_garbage_peak() {
        let sampler = Sampler::start(Duration::from_millis(1));
        smr_common::counters::incr_garbage(500);
        std::thread::sleep(Duration::from_millis(20));
        smr_common::counters::decr_garbage(500);
        let (peak, _avg, rss) = sampler.finish();
        assert!(peak >= 500, "peak {peak} missed the spike");
        assert!(rss > 0, "rss sampling failed");
    }
}
