//! The scenario runner: prefill, warmup, timed mixed workload, metric
//! collection.
//!
//! The measured hot loop is deliberately lean (see DESIGN.md §3 "Workload
//! engine"): key draws come from a precomputed [`ZipfSampler`] (one RNG
//! call, at most one table lookup, no division), operation selection from a
//! precomputed [`OpMix`] table (one RNG call, one 256-entry lookup, no
//! modulo), and latency recording writes into a thread-local stack array
//! (no allocation, no shared-cacheline traffic). Worker threads are pinned
//! round-robin unless `SMR_NO_PIN=1`.

use std::sync::atomic::{AtomicU64, AtomicU8, Ordering::Relaxed};
use std::sync::Mutex;
use std::time::{Duration, Instant};

use rand::rngs::SmallRng;
use rand::{Rng, RngCore, SeedableRng};
use smr_common::time::mono_ns;
use smr_common::ConcurrentMap;

use crate::config::{Ds, Scenario, Scheme};
use crate::metrics::{LatencyHistogram, Sampler, Stats};
use crate::workload::{pin_thread, Op, OpMix, ZipfSampler};

/// Phase machine paced by the main thread: warmup → measure → stop.
const PHASE_WARMUP: u8 = 0;
const PHASE_MEASURE: u8 = 1;
const PHASE_STOP: u8 = 2;

/// Runs one scenario against a concrete map type.
pub fn run_map<M>(sc: &Scenario) -> Stats
where
    M: ConcurrentMap<u64, u64> + Send + Sync,
{
    if sc.long_running {
        run_long_running::<M>(sc)
    } else {
        run_mixed::<M>(sc)
    }
}

fn prefill<M>(map: &M, key_range: u64)
where
    M: ConcurrentMap<u64, u64> + Send + Sync,
{
    // Fill to 50% with evenly spread keys, in parallel, in *random order* —
    // sorted insertion would degenerate the unbalanced external BSTs.
    let fillers = std::thread::available_parallelism()
        .map(|n| n.get().min(8))
        .unwrap_or(4) as u64;
    std::thread::scope(|s| {
        for f in 0..fillers {
            let map = &map;
            s.spawn(move || {
                let mut h = map.handle();
                let mut keys: Vec<u64> = (0..key_range)
                    .step_by(2)
                    .skip(f as usize)
                    .step_by(fillers as usize)
                    .collect();
                let mut rng = SmallRng::seed_from_u64(0xF111 ^ f);
                // Fisher–Yates shuffle.
                for i in (1..keys.len()).rev() {
                    keys.swap(i, rng.gen_range(0..=i));
                }
                for k in keys {
                    map.insert(&mut h, k, k);
                }
            });
        }
    });
}

/// Paces warmup → measure → stop from the scope's main thread; returns
/// (elapsed measured seconds, (peak garbage, avg garbage, peak RSS)).
///
/// The garbage/RSS sampler only runs during the measurement window, so
/// warmup churn does not pollute the peak columns.
fn pace_phases(phase: &AtomicU8, warmup: Duration, duration: Duration) -> (f64, (u64, u64, u64)) {
    std::thread::sleep(warmup);
    phase.store(PHASE_MEASURE, Relaxed);
    let sampler = Sampler::start(Duration::from_millis(10));
    let started = Instant::now();
    std::thread::sleep(duration);
    phase.store(PHASE_STOP, Relaxed);
    let elapsed = started.elapsed().as_secs_f64();
    (elapsed, sampler.finish())
}

fn run_mixed<M>(sc: &Scenario) -> Stats
where
    M: ConcurrentMap<u64, u64> + Send + Sync,
{
    let map = M::new();
    prefill(&map, sc.key_range);

    let keys = ZipfSampler::new(sc.key_range, sc.zipf_theta);
    let mix = OpMix::for_workload(sc.workload);
    let phase = AtomicU8::new(PHASE_WARMUP);
    let total_ops = AtomicU64::new(0);
    let latencies = Mutex::new(LatencyHistogram::new());
    let mut elapsed = 0.0f64;
    let mut garbage = (0u64, 0u64, 0u64);

    std::thread::scope(|s| {
        for tid in 0..sc.threads {
            let map = &map;
            let keys = &keys;
            let mix = &mix;
            let phase = &phase;
            let total_ops = &total_ops;
            let latencies = &latencies;
            s.spawn(move || {
                pin_thread(tid);
                let mut h = map.handle();
                let mut rng = SmallRng::seed_from_u64(0x5EED ^ tid as u64);
                // Warmup: same op stream, nothing recorded.
                while phase.load(Relaxed) == PHASE_WARMUP {
                    for _ in 0..64 {
                        let key = keys.sample(&mut rng);
                        match mix.pick(rng.next_u64()) {
                            Op::Get => {
                                std::hint::black_box(map.get(&mut h, &key));
                            }
                            Op::Insert => {
                                std::hint::black_box(map.insert(&mut h, key, key));
                            }
                            Op::Remove => {
                                std::hint::black_box(map.remove(&mut h, &key));
                            }
                        }
                    }
                }
                // Measured hot loop: no division/modulo for key or op
                // selection, no allocation, latency into a stack-local
                // histogram.
                let mut ops = 0u64;
                let mut hist = LatencyHistogram::new();
                while phase.load(Relaxed) != PHASE_STOP {
                    for _ in 0..64 {
                        let key = keys.sample(&mut rng);
                        let op = mix.pick(rng.next_u64());
                        let t0 = mono_ns();
                        match op {
                            Op::Get => {
                                std::hint::black_box(map.get(&mut h, &key));
                            }
                            Op::Insert => {
                                std::hint::black_box(map.insert(&mut h, key, key));
                            }
                            Op::Remove => {
                                std::hint::black_box(map.remove(&mut h, &key));
                            }
                        }
                        hist.record(mono_ns().saturating_sub(t0));
                        ops += 1;
                    }
                }
                total_ops.fetch_add(ops, Relaxed);
                latencies.lock().expect("histogram lock").merge(&hist);
            });
        }
        (elapsed, garbage) = pace_phases(&phase, sc.warmup, sc.duration);
    });

    let (peak_garbage, avg_garbage, peak_rss) = garbage;
    let hist = latencies.into_inner().expect("histogram lock");
    Stats {
        throughput_mops: total_ops.load(Relaxed) as f64 / elapsed / 1e6,
        peak_garbage,
        avg_garbage,
        peak_rss_mb: peak_rss as f64 / (1024.0 * 1024.0),
        p50_ns: hist.percentile_ns(0.50),
        p90_ns: hist.percentile_ns(0.90),
        p99_ns: hist.percentile_ns(0.99),
        p999_ns: hist.percentile_ns(0.999),
    }
}

/// Fig. 10: long-running read operations under heavy reclamation.
/// `sc.threads` readers issue `get`s over the whole (large) key range while
/// the same number of writers churn insert/remove over a small hot region
/// near the head. Throughput and latency percentiles count completed reads
/// only.
fn run_long_running<M>(sc: &Scenario) -> Stats
where
    M: ConcurrentMap<u64, u64> + Send + Sync,
{
    let map = M::new();
    // Lists only (Fig. 10): descending keys insert at the head, making the
    // huge prefill O(n) instead of O(n^2).
    {
        let mut h = map.handle();
        let mut k = sc.key_range & !1;
        while k >= 2 {
            k -= 2;
            map.insert(&mut h, k, k);
        }
    }

    let keys = ZipfSampler::new(sc.key_range, sc.zipf_theta);
    let phase = AtomicU8::new(PHASE_WARMUP);
    let read_ops = AtomicU64::new(0);
    let latencies = Mutex::new(LatencyHistogram::new());
    let mut elapsed = 0.0f64;
    let mut garbage = (0u64, 0u64, 0u64);

    std::thread::scope(|s| {
        for tid in 0..sc.threads {
            let map = &map;
            let keys = &keys;
            let phase = &phase;
            let read_ops = &read_ops;
            let latencies = &latencies;
            s.spawn(move || {
                pin_thread(tid);
                let mut h = map.handle();
                let mut rng = SmallRng::seed_from_u64(0xBEEF ^ tid as u64);
                while phase.load(Relaxed) == PHASE_WARMUP {
                    let key = keys.sample(&mut rng);
                    std::hint::black_box(map.get(&mut h, &key));
                }
                let mut ops = 0u64;
                let mut hist = LatencyHistogram::new();
                while phase.load(Relaxed) != PHASE_STOP {
                    let key = keys.sample(&mut rng);
                    let t0 = mono_ns();
                    std::hint::black_box(map.get(&mut h, &key));
                    hist.record(mono_ns().saturating_sub(t0));
                    ops += 1;
                }
                read_ops.fetch_add(ops, Relaxed);
                latencies.lock().expect("histogram lock").merge(&hist);
            });
        }
        for tid in 0..sc.threads {
            let map = &map;
            let phase = &phase;
            let writer_slot = sc.threads + tid;
            s.spawn(move || {
                pin_thread(writer_slot);
                let mut h = map.handle();
                let mut rng = SmallRng::seed_from_u64(0xF00D ^ tid as u64);
                while phase.load(Relaxed) != PHASE_STOP {
                    // Head churn: push/pop small keys to force reclamation.
                    let key = rng.gen_range(0..64);
                    map.insert(&mut h, key, key);
                    map.remove(&mut h, &key);
                }
            });
        }
        (elapsed, garbage) = pace_phases(&phase, sc.warmup, sc.duration);
    });

    let (peak_garbage, avg_garbage, peak_rss) = garbage;
    let hist = latencies.into_inner().expect("histogram lock");
    Stats {
        throughput_mops: read_ops.load(Relaxed) as f64 / elapsed / 1e6,
        peak_garbage,
        avg_garbage,
        peak_rss_mb: peak_rss as f64 / (1024.0 * 1024.0),
        p50_ns: hist.percentile_ns(0.50),
        p90_ns: hist.percentile_ns(0.90),
        p99_ns: hist.percentile_ns(0.99),
        p999_ns: hist.percentile_ns(0.999),
    }
}

/// Is this (structure, scheme) pair implemented? The gaps are the paper's
/// inapplicability results (Table 2) plus the RC trees the paper omits.
pub fn applicable(ds: Ds, scheme: Scheme) -> bool {
    match (ds, scheme) {
        // HP cannot protect optimistic traversal (§2.3).
        (Ds::HHSList, Scheme::Hp) | (Ds::NMTree, Scheme::Hp) => false,
        // CDRC implemented for the list-shaped structures (the paper also
        // omits the RC trees).
        (Ds::SkipList | Ds::NMTree | Ds::EFRBTree | Ds::BonsaiTree, Scheme::Rc) => false,
        // Bags: the stacks are HP-family only; MSQueue additionally has a
        // guarded flavor; the optimistic queue is guarded-only (its lazy
        // prev repair needs whole-structure protection).
        (Ds::Stack | Ds::ElimStack, s) => matches!(s, Scheme::Hp | Scheme::Hpp),
        (Ds::Queue, s) => matches!(
            s,
            Scheme::Hp | Scheme::Nr | Scheme::Ebr | Scheme::Pebr | Scheme::Hyaline
        ),
        (Ds::OptQueue, s) => matches!(s, Scheme::Nr | Scheme::Ebr | Scheme::Pebr | Scheme::Hyaline),
        _ => true,
    }
}

/// Dispatches a scenario to the concrete (structure × scheme) type.
/// Returns `None` for inapplicable pairs.
pub fn run(sc: &Scenario) -> Option<Stats> {
    use ds::bag::BagMap;
    use ds::guarded;
    use ds::hp as dshp;
    use ds::hpp;

    if !applicable(sc.ds, sc.scheme) {
        return None;
    }

    macro_rules! guarded4 {
        ($list:ident) => {
            match sc.scheme {
                Scheme::Nr => Some(run_map::<guarded::$list<u64, u64, nr::Nr>>(sc)),
                Scheme::Ebr => Some(run_map::<guarded::$list<u64, u64, ebr::Ebr>>(sc)),
                Scheme::Pebr => Some(run_map::<guarded::$list<u64, u64, pebr::Pebr>>(sc)),
                Scheme::Hyaline => {
                    Some(run_map::<guarded::$list<u64, u64, hyaline::Hyaline>>(sc))
                }
                _ => None,
            }
        };
    }

    match sc.ds {
        Ds::HMList => guarded4!(HMList).or_else(|| match sc.scheme {
            Scheme::Hp => Some(run_map::<dshp::HMList<u64, u64>>(sc)),
            Scheme::Hpp => Some(run_map::<hpp::HMList<u64, u64>>(sc)),
            Scheme::Rc => Some(run_map::<ds::cdrc::HMList<u64, u64>>(sc)),
            _ => None,
        }),
        Ds::HHSList => guarded4!(HHSList).or_else(|| match sc.scheme {
            Scheme::Hpp => Some(run_map::<hpp::HHSList<u64, u64>>(sc)),
            Scheme::Rc => Some(run_map::<ds::cdrc::HHSList<u64, u64>>(sc)),
            _ => None,
        }),
        Ds::HashMap => match sc.scheme {
            // Paper §5: HMList buckets for HP, HHSList buckets otherwise.
            Scheme::Nr => Some(run_map::<
                ds::hash_map::HashMap<u64, u64, guarded::HHSList<u64, u64, nr::Nr>>,
            >(sc)),
            Scheme::Ebr => Some(run_map::<
                ds::hash_map::HashMap<u64, u64, guarded::HHSList<u64, u64, ebr::Ebr>>,
            >(sc)),
            Scheme::Pebr => Some(run_map::<
                ds::hash_map::HashMap<u64, u64, guarded::HHSList<u64, u64, pebr::Pebr>>,
            >(sc)),
            Scheme::Hp => Some(run_map::<dshp::HashMap<u64, u64>>(sc)),
            Scheme::Hpp => Some(run_map::<hpp::HashMap<u64, u64>>(sc)),
            Scheme::Rc => Some(run_map::<
                ds::hash_map::HashMap<u64, u64, ds::cdrc::HHSList<u64, u64>>,
            >(sc)),
            Scheme::Hyaline => Some(run_map::<
                ds::hash_map::HashMap<u64, u64, guarded::HHSList<u64, u64, hyaline::Hyaline>>,
            >(sc)),
        },
        Ds::SkipList => guarded4!(SkipList).or_else(|| match sc.scheme {
            Scheme::Hp => Some(run_map::<dshp::SkipList<u64, u64>>(sc)),
            Scheme::Hpp => Some(run_map::<hpp::SkipList<u64, u64>>(sc)),
            _ => None,
        }),
        Ds::NMTree => guarded4!(NMTree).or_else(|| match sc.scheme {
            Scheme::Hpp => Some(run_map::<hpp::NMTree<u64, u64>>(sc)),
            _ => None,
        }),
        Ds::EFRBTree => guarded4!(EFRBTree).or_else(|| match sc.scheme {
            Scheme::Hp => Some(run_map::<dshp::EFRBTree<u64, u64>>(sc)),
            Scheme::Hpp => Some(run_map::<hpp::EFRBTree<u64, u64>>(sc)),
            _ => None,
        }),
        Ds::BonsaiTree => guarded4!(BonsaiTree).or_else(|| match sc.scheme {
            Scheme::Hp => Some(run_map::<dshp::BonsaiTree<u64, u64>>(sc)),
            Scheme::Hpp => Some(run_map::<hpp::BonsaiTree<u64, u64>>(sc)),
            _ => None,
        }),
        Ds::Stack => match sc.scheme {
            Scheme::Hp => Some(run_map::<BagMap<dshp::TreiberStack<u64>>>(sc)),
            Scheme::Hpp => Some(run_map::<BagMap<hpp::TreiberStack<u64>>>(sc)),
            _ => None,
        },
        Ds::ElimStack => match sc.scheme {
            Scheme::Hp => Some(run_map::<BagMap<dshp::ElimStack<u64>>>(sc)),
            Scheme::Hpp => Some(run_map::<BagMap<hpp::ElimStack<u64>>>(sc)),
            _ => None,
        },
        Ds::Queue => match sc.scheme {
            Scheme::Hp => Some(run_map::<BagMap<dshp::MSQueue<u64>>>(sc)),
            Scheme::Nr => Some(run_map::<BagMap<guarded::MSQueue<u64, nr::Nr>>>(sc)),
            Scheme::Ebr => Some(run_map::<BagMap<guarded::MSQueue<u64, ebr::Ebr>>>(sc)),
            Scheme::Pebr => Some(run_map::<BagMap<guarded::MSQueue<u64, pebr::Pebr>>>(sc)),
            Scheme::Hyaline => {
                Some(run_map::<BagMap<guarded::MSQueue<u64, hyaline::Hyaline>>>(sc))
            }
            _ => None,
        },
        Ds::OptQueue => match sc.scheme {
            Scheme::Nr => Some(run_map::<BagMap<guarded::OptQueue<u64, nr::Nr>>>(sc)),
            Scheme::Ebr => Some(run_map::<BagMap<guarded::OptQueue<u64, ebr::Ebr>>>(sc)),
            Scheme::Pebr => Some(run_map::<BagMap<guarded::OptQueue<u64, pebr::Pebr>>>(sc)),
            Scheme::Hyaline => {
                Some(run_map::<BagMap<guarded::OptQueue<u64, hyaline::Hyaline>>>(sc))
            }
            _ => None,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    /// Table-driven encoding of the paper's Table 2 inapplicability gaps:
    /// HP cannot field the optimistic-traversal structures, and CDRC is
    /// implemented only for the list-shaped ones (matching the paper's own
    /// RC omissions). Everything else must stay applicable.
    #[test]
    fn applicable_matches_paper_table2() {
        let gaps = [
            (Ds::HHSList, Scheme::Hp),
            (Ds::NMTree, Scheme::Hp),
            (Ds::SkipList, Scheme::Rc),
            (Ds::NMTree, Scheme::Rc),
            (Ds::EFRBTree, Scheme::Rc),
            (Ds::BonsaiTree, Scheme::Rc),
        ];
        for ds in Ds::ALL {
            for scheme in Scheme::ALL {
                let expected = !gaps.contains(&(ds, scheme));
                assert_eq!(
                    applicable(ds, scheme),
                    expected,
                    "({ds}, {scheme}) should be {}",
                    if expected { "applicable" } else { "a gap" }
                );
            }
        }
        // The headline asymmetry: HP++ covers every structure.
        assert!(Ds::ALL.iter().all(|&ds| applicable(ds, Scheme::Hpp)));
    }

    /// The bag structures have their own applicability rules: stacks are
    /// HP-family only, MSQueue adds the guarded schemes, and the optimistic
    /// queue is guarded-only.
    #[test]
    fn bag_applicability_rules() {
        for scheme in Scheme::ALL {
            let stackish = matches!(scheme, Scheme::Hp | Scheme::Hpp);
            assert_eq!(applicable(Ds::Stack, scheme), stackish);
            assert_eq!(applicable(Ds::ElimStack, scheme), stackish);
            assert_eq!(
                applicable(Ds::Queue, scheme),
                matches!(
                    scheme,
                    Scheme::Hp | Scheme::Nr | Scheme::Ebr | Scheme::Pebr | Scheme::Hyaline
                )
            );
            assert_eq!(
                applicable(Ds::OptQueue, scheme),
                matches!(
                    scheme,
                    Scheme::Nr | Scheme::Ebr | Scheme::Pebr | Scheme::Hyaline
                )
            );
        }
    }

    /// Bag smoke runs: drive an elimination stack and the optimistic queue
    /// through the standard workload engine under a write-heavy mix.
    #[test]
    fn bag_smoke_runs() {
        for (ds, scheme) in [(Ds::ElimStack, Scheme::Hp), (Ds::OptQueue, Scheme::Ebr)] {
            let sc = Scenario {
                ds,
                scheme,
                threads: 2,
                key_range: 64,
                workload: crate::config::Workload::WriteOnly,
                zipf_theta: 0.0,
                warmup: Duration::from_millis(10),
                duration: Duration::from_millis(40),
                long_running: false,
            };
            let stats = run(&sc).expect("bag pair must be applicable");
            assert!(stats.throughput_mops > 0.0, "{ds}/{scheme} must make progress");
        }
    }

    /// End-to-end smoke run exercising warmup, skewed keys, and the latency
    /// pipeline on the cheapest scheme.
    #[test]
    fn mixed_run_reports_latency_percentiles() {
        let sc = Scenario {
            ds: Ds::HMList,
            scheme: Scheme::Ebr,
            threads: 2,
            key_range: 64,
            workload: crate::config::Workload::ReadWrite,
            zipf_theta: 0.99,
            warmup: Duration::from_millis(20),
            duration: Duration::from_millis(60),
            long_running: false,
        };
        let stats = run(&sc).expect("ebr applies to hmlist");
        assert!(stats.throughput_mops > 0.0);
        assert!(stats.p50_ns > 0, "median latency must be recorded");
        assert!(stats.p50_ns <= stats.p90_ns);
        assert!(stats.p90_ns <= stats.p99_ns);
        assert!(stats.p99_ns <= stats.p999_ns);
    }
}
