//! The scenario runner: prefill, timed mixed workload, metric collection.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering::Relaxed};
use std::time::{Duration, Instant};

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use smr_common::ConcurrentMap;

use crate::config::{Ds, Scenario, Scheme};
use crate::metrics::{Sampler, Stats};

/// Runs one scenario against a concrete map type.
pub fn run_map<M>(sc: &Scenario) -> Stats
where
    M: ConcurrentMap<u64, u64> + Send + Sync,
{
    if sc.long_running {
        run_long_running::<M>(sc)
    } else {
        run_mixed::<M>(sc)
    }
}

fn prefill<M>(map: &M, key_range: u64)
where
    M: ConcurrentMap<u64, u64> + Send + Sync,
{
    // Fill to 50% with evenly spread keys, in parallel, in *random order* —
    // sorted insertion would degenerate the unbalanced external BSTs.
    let fillers = std::thread::available_parallelism()
        .map(|n| n.get().min(8))
        .unwrap_or(4) as u64;
    std::thread::scope(|s| {
        for f in 0..fillers {
            let map = &map;
            s.spawn(move || {
                let mut h = map.handle();
                let mut keys: Vec<u64> = (0..key_range)
                    .step_by(2)
                    .skip(f as usize)
                    .step_by(fillers as usize)
                    .collect();
                let mut rng = SmallRng::seed_from_u64(0xF111 ^ f);
                // Fisher–Yates shuffle.
                for i in (1..keys.len()).rev() {
                    keys.swap(i, rng.gen_range(0..=i));
                }
                for k in keys {
                    map.insert(&mut h, k, k);
                }
            });
        }
    });
}

fn run_mixed<M>(sc: &Scenario) -> Stats
where
    M: ConcurrentMap<u64, u64> + Send + Sync,
{
    let map = M::new();
    prefill(&map, sc.key_range);

    let stop = AtomicBool::new(false);
    let total_ops = AtomicU64::new(0);
    let sampler = Sampler::start(Duration::from_millis(10));
    let started = Instant::now();

    std::thread::scope(|s| {
        for tid in 0..sc.threads {
            let map = &map;
            let stop = &stop;
            let total_ops = &total_ops;
            let sc = sc.clone();
            s.spawn(move || {
                let mut h = map.handle();
                let mut rng = SmallRng::seed_from_u64(0x5EED ^ tid as u64);
                let mut ops = 0u64;
                while !stop.load(Relaxed) {
                    for _ in 0..64 {
                        let key = rng.gen_range(0..sc.key_range);
                        let dice = rng.gen_range(0..100);
                        if dice < sc.workload.read_pct() {
                            std::hint::black_box(map.get(&mut h, &key));
                        } else if dice % 2 == 0 {
                            std::hint::black_box(map.insert(&mut h, key, key));
                        } else {
                            std::hint::black_box(map.remove(&mut h, &key));
                        }
                        ops += 1;
                    }
                }
                total_ops.fetch_add(ops, Relaxed);
            });
        }
        // Timer thread.
        let stop = &stop;
        let duration = sc.duration;
        s.spawn(move || {
            std::thread::sleep(duration);
            stop.store(true, Relaxed);
        });
    });

    let elapsed = started.elapsed().as_secs_f64();
    let (peak_garbage, avg_garbage, peak_rss) = sampler.finish();
    Stats {
        throughput_mops: total_ops.load(Relaxed) as f64 / elapsed / 1e6,
        peak_garbage,
        avg_garbage,
        peak_rss_mb: peak_rss as f64 / (1024.0 * 1024.0),
    }
}

/// Fig. 10: long-running read operations under heavy reclamation.
/// `sc.threads` readers issue `get`s over the whole (large) key range while
/// the same number of writers churn insert/remove over a small hot region
/// near the head. Throughput counts completed reads only.
fn run_long_running<M>(sc: &Scenario) -> Stats
where
    M: ConcurrentMap<u64, u64> + Send + Sync,
{
    let map = M::new();
    // Lists only (Fig. 10): descending keys insert at the head, making the
    // huge prefill O(n) instead of O(n^2).
    {
        let mut h = map.handle();
        let mut k = sc.key_range & !1;
        while k >= 2 {
            k -= 2;
            map.insert(&mut h, k, k);
        }
    }

    let stop = AtomicBool::new(false);
    let read_ops = AtomicU64::new(0);
    let sampler = Sampler::start(Duration::from_millis(10));
    let started = Instant::now();

    std::thread::scope(|s| {
        for tid in 0..sc.threads {
            let map = &map;
            let stop = &stop;
            let read_ops = &read_ops;
            let key_range = sc.key_range;
            s.spawn(move || {
                let mut h = map.handle();
                let mut rng = SmallRng::seed_from_u64(0xBEEF ^ tid as u64);
                let mut ops = 0u64;
                while !stop.load(Relaxed) {
                    let key = rng.gen_range(0..key_range);
                    std::hint::black_box(map.get(&mut h, &key));
                    ops += 1;
                }
                read_ops.fetch_add(ops, Relaxed);
            });
        }
        for tid in 0..sc.threads {
            let map = &map;
            let stop = &stop;
            s.spawn(move || {
                let mut h = map.handle();
                let mut rng = SmallRng::seed_from_u64(0xF00D ^ tid as u64);
                while !stop.load(Relaxed) {
                    // Head churn: push/pop small keys to force reclamation.
                    let key = rng.gen_range(0..64);
                    map.insert(&mut h, key, key);
                    map.remove(&mut h, &key);
                }
            });
        }
        let stop = &stop;
        let duration = sc.duration;
        s.spawn(move || {
            std::thread::sleep(duration);
            stop.store(true, Relaxed);
        });
    });

    let elapsed = started.elapsed().as_secs_f64();
    let (peak_garbage, avg_garbage, peak_rss) = sampler.finish();
    Stats {
        throughput_mops: read_ops.load(Relaxed) as f64 / elapsed / 1e6,
        peak_garbage,
        avg_garbage,
        peak_rss_mb: peak_rss as f64 / (1024.0 * 1024.0),
    }
}

/// Is this (structure, scheme) pair implemented? The gaps are the paper's
/// inapplicability results (Table 2) plus the RC trees the paper omits.
pub fn applicable(ds: Ds, scheme: Scheme) -> bool {
    match (ds, scheme) {
        // HP cannot protect optimistic traversal (§2.3).
        (Ds::HHSList, Scheme::Hp) | (Ds::NMTree, Scheme::Hp) => false,
        // CDRC implemented for the list-shaped structures (the paper also
        // omits the RC trees).
        (Ds::SkipList | Ds::NMTree | Ds::EFRBTree | Ds::BonsaiTree, Scheme::Rc) => false,
        _ => true,
    }
}

/// Dispatches a scenario to the concrete (structure × scheme) type.
/// Returns `None` for inapplicable pairs.
pub fn run(sc: &Scenario) -> Option<Stats> {
    use ds::guarded;
    use ds::hp as dshp;
    use ds::hpp;

    if !applicable(sc.ds, sc.scheme) {
        return None;
    }

    macro_rules! guarded3 {
        ($list:ident) => {
            match sc.scheme {
                Scheme::Nr => Some(run_map::<guarded::$list<u64, u64, nr::Nr>>(sc)),
                Scheme::Ebr => Some(run_map::<guarded::$list<u64, u64, ebr::Ebr>>(sc)),
                Scheme::Pebr => Some(run_map::<guarded::$list<u64, u64, pebr::Pebr>>(sc)),
                _ => None,
            }
        };
    }

    match sc.ds {
        Ds::HMList => guarded3!(HMList).or_else(|| match sc.scheme {
            Scheme::Hp => Some(run_map::<dshp::HMList<u64, u64>>(sc)),
            Scheme::Hpp => Some(run_map::<hpp::HMList<u64, u64>>(sc)),
            Scheme::Rc => Some(run_map::<ds::cdrc::HMList<u64, u64>>(sc)),
            _ => None,
        }),
        Ds::HHSList => guarded3!(HHSList).or_else(|| match sc.scheme {
            Scheme::Hpp => Some(run_map::<hpp::HHSList<u64, u64>>(sc)),
            Scheme::Rc => Some(run_map::<ds::cdrc::HHSList<u64, u64>>(sc)),
            _ => None,
        }),
        Ds::HashMap => match sc.scheme {
            // Paper §5: HMList buckets for HP, HHSList buckets otherwise.
            Scheme::Nr => Some(run_map::<
                ds::hash_map::HashMap<u64, u64, guarded::HHSList<u64, u64, nr::Nr>>,
            >(sc)),
            Scheme::Ebr => Some(run_map::<
                ds::hash_map::HashMap<u64, u64, guarded::HHSList<u64, u64, ebr::Ebr>>,
            >(sc)),
            Scheme::Pebr => Some(run_map::<
                ds::hash_map::HashMap<u64, u64, guarded::HHSList<u64, u64, pebr::Pebr>>,
            >(sc)),
            Scheme::Hp => Some(run_map::<dshp::HashMap<u64, u64>>(sc)),
            Scheme::Hpp => Some(run_map::<hpp::HashMap<u64, u64>>(sc)),
            Scheme::Rc => Some(run_map::<
                ds::hash_map::HashMap<u64, u64, ds::cdrc::HHSList<u64, u64>>,
            >(sc)),
        },
        Ds::SkipList => guarded3!(SkipList).or_else(|| match sc.scheme {
            Scheme::Hp => Some(run_map::<dshp::SkipList<u64, u64>>(sc)),
            Scheme::Hpp => Some(run_map::<hpp::SkipList<u64, u64>>(sc)),
            _ => None,
        }),
        Ds::NMTree => guarded3!(NMTree).or_else(|| match sc.scheme {
            Scheme::Hpp => Some(run_map::<hpp::NMTree<u64, u64>>(sc)),
            _ => None,
        }),
        Ds::EFRBTree => guarded3!(EFRBTree).or_else(|| match sc.scheme {
            Scheme::Hp => Some(run_map::<dshp::EFRBTree<u64, u64>>(sc)),
            Scheme::Hpp => Some(run_map::<hpp::EFRBTree<u64, u64>>(sc)),
            _ => None,
        }),
        Ds::BonsaiTree => guarded3!(BonsaiTree).or_else(|| match sc.scheme {
            Scheme::Hp => Some(run_map::<dshp::BonsaiTree<u64, u64>>(sc)),
            Scheme::Hpp => Some(run_map::<hpp::BonsaiTree<u64, u64>>(sc)),
            _ => None,
        }),
    }
}
