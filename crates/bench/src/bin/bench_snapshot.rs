//! Perf-trajectory snapshots: measure a quick, fixed suite and emit or
//! gate against the committed `BENCH_pr<N>.json` baseline.
//!
//! ```text
//! bench_snapshot --emit [--pr N] [--out PATH]   measure, write snapshot
//! bench_snapshot --compare BASE.json CUR.json   compare two files
//! bench_snapshot --gate [--dir PATH]            measure, compare vs max
//!                                               committed BENCH_pr*.json,
//!                                               exit 1 on regression
//! ```
//!
//! The suite is the headline subset of the full harness: protection/
//! reclamation micro costs (`ns.*`), fig8-style map throughput and peak
//! garbage (`mops.*` / `garbage.*`), the contended-bag throughput the
//! contention machinery targets, and the sharded KV service headline
//! (`mops.kv.*` / `ns.kv.p99.*`). Tolerance is 10% unless
//! `SMR_BENCH_TOLERANCE` overrides; see `bench::snapshot` for the format.
//!
//! Snapshots carry a meta block (host core count + active `SMR_*`/`KV_*`
//! env overrides). When baseline and current were measured on different
//! host shapes, `--compare` and `--gate` print the table but only warn:
//! scaling-sensitive metrics move with core count, so a cross-shape
//! verdict would gate on the machine, not the change.

use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

use bench::kv_run::{run_kv, run_kv_recovery, KvResult, KvRun};
use bench::snapshot::{compare, find_baseline, host_shape_mismatch, tolerance_from_env, Snapshot};
use bench::{run, Ds, Scenario, Scheme, Workload};
use kv_service::HppStore;
use smr_common::{Atomic, Shared};

/// Times `f` over `iters` iterations, repeated `REPS` times, returning the
/// best (minimum) ns/iter. Scheduler noise and cold-allocator effects are
/// strictly additive, so min-of-N is the stable statistic for the gate —
/// a single-rep measurement of the reclaim loop was observed to swing 60%
/// between back-to-back runs.
fn per_op_ns<F: FnMut()>(iters: u64, mut f: F) -> f64 {
    const REPS: u32 = 5;
    let mut best = f64::INFINITY;
    for _ in 0..REPS {
        let start = Instant::now();
        for _ in 0..iters {
            f();
        }
        best = best.min(start.elapsed().as_nanos() as f64 / iters as f64);
    }
    best
}

fn micro_protect(snap: &mut Snapshot) {
    const ITERS: u64 = 400_000;
    {
        let domain: &'static hp::Domain = Box::leak(Box::new(hp::Domain::new()));
        let mut thread = domain.register();
        let slot = thread.hazard_pointer();
        let atomic = Atomic::new(42u64);
        snap.record(
            "ns.protect.hp",
            per_op_ns(ITERS, || {
                let p = atomic.load(std::sync::atomic::Ordering::Acquire);
                std::hint::black_box(slot.try_protect(p, &atomic).is_ok());
            }),
        );
        unsafe {
            atomic.into_owned();
        }
    }
    {
        let domain: &'static hp_plus::Domain = Box::leak(Box::new(hp_plus::Domain::new()));
        let mut thread = domain.register();
        let slot = thread.hazard_pointer();
        let atomic = Atomic::new(42u64);
        snap.record(
            "ns.protect.hpp",
            per_op_ns(ITERS, || {
                let mut p = atomic.load(std::sync::atomic::Ordering::Acquire).with_tag(0);
                std::hint::black_box(hp_plus::try_protect(&slot, &mut p, &atomic, || false));
            }),
        );
        unsafe {
            atomic.into_owned();
        }
    }
    {
        let collector: &'static ebr::Collector = Box::leak(Box::new(ebr::Collector::new()));
        let mut handle = collector.register();
        snap.record(
            "ns.pin.ebr",
            per_op_ns(ITERS, || {
                let g = handle.pin();
                std::hint::black_box(&g);
            }),
        );
    }
    {
        let domain: &'static hyaline::Domain = Box::leak(Box::new(hyaline::Domain::new()));
        let mut handle = domain.register();
        snap.record(
            "ns.pin.hyaline",
            per_op_ns(ITERS, || {
                let g = handle.pin();
                std::hint::black_box(&g);
            }),
        );
    }
}

fn micro_reclaim(snap: &mut Snapshot) {
    const ITERS: u64 = 150_000;
    {
        let domain: &'static hp::Domain = Box::leak(Box::new(hp::Domain::new()));
        let mut thread = domain.register();
        let _slot = thread.hazard_pointer();
        snap.record(
            "ns.reclaim.hp",
            per_op_ns(ITERS, || {
                let p = Box::into_raw(Box::new(0u64));
                unsafe { thread.retire(p) };
            }),
        );
    }
    {
        let collector: &'static ebr::Collector = Box::leak(Box::new(ebr::Collector::new()));
        let mut handle = collector.register();
        snap.record(
            "ns.reclaim.ebr",
            per_op_ns(ITERS, || {
                let guard = handle.pin();
                let node = Shared::from_owned(0u64);
                unsafe { guard.defer_destroy(node) };
            }),
        );
    }
    {
        let domain: &'static hyaline::Domain = Box::leak(Box::new(hyaline::Domain::new()));
        let mut handle = domain.register();
        snap.record(
            "ns.reclaim.hyaline",
            per_op_ns(ITERS, || {
                let guard = handle.pin();
                let node = Shared::from_owned(0u64);
                unsafe { guard.defer_destroy(node) };
            }),
        );
    }
}

fn quick_scenario(ds: Ds, scheme: Scheme, threads: usize, workload: Workload) -> Scenario {
    Scenario {
        ds,
        scheme,
        threads,
        key_range: if ds.is_bag() { 256 } else { 1_000 },
        workload,
        zipf_theta: 0.0,
        warmup: Duration::from_millis(50),
        duration: Duration::from_millis(300),
        long_running: false,
    }
}

/// Runs a scenario twice and keeps the run with the higher throughput —
/// same rationale as `per_op_ns`'s min-of-N, mirrored for a
/// higher-is-better metric (a ~22% swing between back-to-back single runs
/// was observed on a loaded host).
fn best_of_2(sc: &Scenario) -> Option<bench::Stats> {
    match (run(sc), run(sc)) {
        (Some(a), Some(b)) => Some(if a.throughput_mops >= b.throughput_mops { a } else { b }),
        (one, two) => one.or(two),
    }
}

fn fig8_headline(snap: &mut Snapshot) {
    for scheme in bench::schemes::FIG8_HEADLINE {
        let sc = quick_scenario(Ds::HMList, scheme, 2, Workload::ReadWrite);
        if let Some(stats) = best_of_2(&sc) {
            let tag = scheme.to_string().replace("++", "p");
            snap.record(&format!("mops.fig8.hmlist.{tag}.t2"), stats.throughput_mops);
            snap.record(
                &format!("garbage.fig8.hmlist.{tag}.t2"),
                stats.peak_garbage as f64,
            );
        }
    }
}

fn contended_bags(snap: &mut Snapshot) {
    for (ds, scheme) in [
        (Ds::Stack, Scheme::Hp),
        (Ds::ElimStack, Scheme::Hp),
        (Ds::Queue, Scheme::Ebr),
        (Ds::OptQueue, Scheme::Ebr),
    ] {
        let sc = quick_scenario(ds, scheme, 4, Workload::WriteOnly);
        if let Some(stats) = best_of_2(&sc) {
            snap.record(
                &format!("mops.contend.{ds}.{scheme}.t4"),
                stats.throughput_mops,
            );
        }
    }
}

/// Best-of-5 on total throughput — same rationale as [`per_op_ns`]'s
/// min-of-5: scheduler preemption of a client or worker thread is strictly
/// subtractive, so the max over reps is the stable statistic.
fn kv_best_of_5(rc: &KvRun) -> KvResult {
    let mut best = run_kv::<HppStore>(rc);
    for _ in 0..4 {
        let r = run_kv::<HppStore>(rc);
        if r.total_mops > best.total_mops {
            best = r;
        }
    }
    best
}

fn kv_headline(snap: &mut Snapshot) {
    // Single-shard baseline plus the widest shard count this host can run
    // in parallel (≤ 4). Oversubscribed shard counts are deliberately NOT
    // gated on: on a 1-core host a 4-shard run measures the scheduler, not
    // the service (back-to-back swings of 45% were observed). The shard
    // count is visible in the metric name and the host shape is in the
    // snapshot meta, so a cross-shape gate downgrades to a warning instead
    // of comparing different configurations.
    let shards = kv_service::available_cores().clamp(1, 4);
    let mut rcs = vec![1usize];
    if shards > 1 {
        rcs.push(shards);
    }
    let mut widest = None;
    for &n in &rcs {
        let mut rc = KvRun::read_mostly(n).quick();
        // One client: the gate statistic should time the service protocol
        // (ring, doorbell, batched worker), not multi-client scheduler
        // jitter — kv_bench's CSV covers the contended configurations.
        rc.clients = 1;
        rc.warmup = Duration::from_millis(50);
        rc.duration = Duration::from_millis(300);
        let r = kv_best_of_5(&rc);
        snap.record(&format!("mops.kv.hpp.s{n}"), r.total_mops);
        widest = Some((n, r));
    }
    if let Some((n, r)) = widest {
        snap.record(&format!("ns.kv.p99.hpp.s{n}"), r.p99_ns as f64);
        snap.record(&format!("garbage.kv.peakshard.hpp.s{n}"), r.peak_shard_garbage as f64);
    }
}

fn recovery_headline(snap: &mut Snapshot) {
    // Crash → quarantine → respawn cycles on a supervised single shard.
    // Both metrics are informational (snapshot::gates exempts them):
    // respawn latency is mostly thread spawn + supervisor wakeup, pure
    // scheduler noise on a loaded host — tracked for trajectory, not gated.
    let r = run_kv_recovery::<HppStore>(4, 512);
    snap.record("ns.kv.respawn", r.mean_respawn_ns as f64);
    snap.record("mops.kv.recovery", r.recovery_mops);
}

fn policy_headline(snap: &mut Snapshot) {
    // Policy × single-shard KV: in-process per-policy runs are sound here
    // because `KvRun::policy` reaches each shard's domain as an explicit
    // constructor parameter — no dependence on the process-wide
    // `SMR_POLICY` latch (scheme-level policy sweeps need subprocesses;
    // see fig12). `garbage.*` metrics are informational (never gated), so
    // recording adaptive's batching headroom here can't flake the gate.
    for policy in smr_common::policy::PolicyKind::ALL {
        let mut rc = KvRun::read_mostly(1).quick().with_policy(policy);
        rc.clients = 1;
        rc.warmup = Duration::from_millis(50);
        rc.duration = Duration::from_millis(300);
        let r = kv_best_of_5(&rc);
        snap.record(&format!("mops.policy.{policy}.kv.hpp.s1"), r.total_mops);
        snap.record(
            &format!("garbage.policy.{policy}.kv.hpp.s1"),
            r.peak_shard_garbage as f64,
        );
    }
}

fn measure() -> Snapshot {
    let mut snap = Snapshot::new();
    eprintln!("bench_snapshot: micro protect…");
    micro_protect(&mut snap);
    eprintln!("bench_snapshot: micro reclaim…");
    micro_reclaim(&mut snap);
    eprintln!("bench_snapshot: fig8 headline…");
    fig8_headline(&mut snap);
    eprintln!("bench_snapshot: contended bags…");
    contended_bags(&mut snap);
    eprintln!("bench_snapshot: kv service headline…");
    kv_headline(&mut snap);
    eprintln!("bench_snapshot: kv recovery headline…");
    recovery_headline(&mut snap);
    eprintln!("bench_snapshot: policy headline…");
    policy_headline(&mut snap);
    snap.record_host_meta();
    snap
}

fn load(path: &Path) -> Snapshot {
    let text = std::fs::read_to_string(path)
        .unwrap_or_else(|e| panic!("cannot read {}: {e}", path.display()));
    Snapshot::from_json(&text).unwrap_or_else(|e| panic!("cannot parse {}: {e}", path.display()))
}

fn arg_value(args: &[String], flag: &str) -> Option<String> {
    args.iter().position(|a| a == flag).and_then(|i| args.get(i + 1).cloned())
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let dir = arg_value(&args, "--dir").map(PathBuf::from).unwrap_or_else(|| PathBuf::from("."));

    if args.iter().any(|a| a == "--compare") {
        let i = args.iter().position(|a| a == "--compare").unwrap();
        let base = load(Path::new(&args[i + 1]));
        let cur = load(Path::new(&args[i + 2]));
        let cmp = compare(&base, &cur, tolerance_from_env());
        print!("{}", cmp.render());
        if let Some(why) = host_shape_mismatch(&base, &cur) {
            eprintln!("warning: host shape mismatch ({why}); comparison is informational, not a verdict");
            std::process::exit(0);
        }
        std::process::exit(if cmp.failed() { 1 } else { 0 });
    }

    if args.iter().any(|a| a == "--emit") {
        let snap = measure();
        let pr: u32 = arg_value(&args, "--pr")
            .map(|v| v.parse().expect("bad --pr"))
            .unwrap_or_else(|| find_baseline(&dir).map(|(n, _)| n + 1).unwrap_or(1));
        let out = arg_value(&args, "--out")
            .map(PathBuf::from)
            .unwrap_or_else(|| dir.join(format!("BENCH_pr{pr}.json")));
        std::fs::write(&out, snap.to_json())
            .unwrap_or_else(|e| panic!("cannot write {}: {e}", out.display()));
        println!("wrote {}", out.display());
        return;
    }

    if args.iter().any(|a| a == "--gate") {
        let Some((n, path)) = find_baseline(&dir) else {
            // First PR with the gate: nothing to compare against. Succeed
            // loudly so the baseline gets committed rather than CI wedged.
            println!("no BENCH_pr*.json baseline found; emit one with --emit");
            return;
        };
        let base = load(&path);
        let cur = measure();
        let cmp = compare(&base, &cur, tolerance_from_env());
        println!("gating against BENCH_pr{n}.json (tolerance {:.0}%):", tolerance_from_env() * 100.0);
        print!("{}", cmp.render());
        if let Some(why) = host_shape_mismatch(&base, &cur) {
            // A baseline from a different machine shape says nothing about
            // this change: scaling metrics move with core count. Report and
            // pass; same-shape hosts (and local re-runs) still gate hard.
            println!("perf trajectory gate SKIPPED: host shape mismatch ({why})");
            return;
        }
        if cmp.failed() {
            eprintln!("perf trajectory gate FAILED vs BENCH_pr{n}.json");
            std::process::exit(1);
        }
        println!("perf trajectory gate passed");
        return;
    }

    eprintln!("usage: bench_snapshot --emit [--pr N] [--out PATH] | --compare A B | --gate [--dir PATH]");
    std::process::exit(2);
}
