//! Figure 9: maximum throughput per category (list / tree), HP vs HP++,
//! small and big key ranges — the contention crossover.
//!
//! HP is only applicable to HMList and EFRBTree; HP++ additionally unlocks
//! HHSList and NMTree. Each category reports the best structure per scheme,
//! exactly as the paper's "max throughput achievable in each category".

use bench::orchestrate::{run_scenario, Opts, Outcome};
use bench::{thread_sweep, Ds, Scenario, Scheme, Workload};

fn best(
    structures: &[Ds],
    scheme: Scheme,
    threads: usize,
    small: bool,
    opts: &Opts,
) -> Option<(Ds, f64)> {
    let mut best: Option<(Ds, f64)> = None;
    for &ds in structures {
        let key_range = if small {
            ds.small_range()
        } else if opts.quick {
            ds.big_range() / 10
        } else {
            ds.big_range()
        };
        let sc = Scenario {
            ds,
            scheme,
            threads,
            key_range,
            workload: Workload::ReadWrite,
            zipf_theta: opts.zipf,
            warmup: opts.warmup(),
            duration: opts.duration(),
            long_running: false,
        };
        if let Outcome::Done(stats) = run_scenario(&sc, opts) {
            if best.map(|(_, b)| stats.throughput_mops > b).unwrap_or(true) {
                best = Some((ds, stats.throughput_mops));
            }
        }
    }
    best
}

fn main() {
    let opts = Opts::parse();
    println!("# Figure 9: best-in-category throughput, HP vs HP++");
    println!("category,key_range,threads,scheme,best_ds,throughput_mops");
    let lists = [Ds::HMList, Ds::HHSList];
    let trees = [Ds::EFRBTree, Ds::NMTree];
    for (cat, structures) in [("list", &lists[..]), ("tree", &trees[..])] {
        for small in [true, false] {
            for threads in thread_sweep(opts.quick) {
                for scheme in [Scheme::Hp, Scheme::Hpp] {
                    if let Some((ds, mops)) = best(structures, scheme, threads, small, &opts) {
                        let range = if small { "small" } else { "big" };
                        println!("{cat},{range},{threads},{scheme},{ds},{mops:.4}");
                    }
                }
            }
        }
    }
    println!();
    println!("# Expectation (paper): under heavy contention (small range) or for");
    println!("# trees, HP++'s access to the optimistic structures (HHSList, NMTree)");
    println!("# beats the best HP-compatible structure by a large margin.");
}
