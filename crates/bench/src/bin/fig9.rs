//! Figure 9: maximum throughput per category (list / tree), HP vs HP++,
//! small and big key ranges — the contention crossover. Plus the
//! contention-machinery section: bags (stacks/queues) under oversubscribed
//! write storms, bare CAS loops vs adaptive backoff vs elimination /
//! optimistic variants.

use bench::orchestrate::{emit_timeout, run_scenario, run_scenario_env, Opts, Outcome};
use bench::{thread_sweep, Ds, Scenario, Scheme, Workload};

fn best(
    structures: &[Ds],
    scheme: Scheme,
    threads: usize,
    small: bool,
    opts: &Opts,
) -> Option<(Ds, f64)> {
    let mut best: Option<(Ds, f64)> = None;
    for &ds in structures {
        let key_range = if small {
            ds.small_range()
        } else if opts.quick {
            ds.big_range() / 10
        } else {
            ds.big_range()
        };
        let sc = Scenario {
            ds,
            scheme,
            threads,
            key_range,
            workload: Workload::ReadWrite,
            zipf_theta: opts.zipf,
            warmup: opts.warmup(),
            duration: opts.duration(),
            long_running: false,
        };
        match run_scenario(&sc, opts) {
            Outcome::Done(stats) => {
                if best.map(|(_, b)| stats.throughput_mops > b).unwrap_or(true) {
                    best = Some((ds, stats.throughput_mops));
                }
            }
            // A wedged point must leave a trace with its full scenario
            // (including the thread count), not silently vanish from the
            // category maximum.
            Outcome::Timeout => emit_timeout("fig9", &sc),
            Outcome::Skipped | Outcome::Failed => {}
        }
    }
    best
}

/// Oversubscription sweep for the bags: thread counts *beyond* the host's
/// parallelism, where descheduled CAS owners make spin-only retries
/// pathological and yield/park backoff plus elimination pay off.
fn contention_threads(quick: bool) -> Vec<usize> {
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4);
    if quick {
        // Always oversubscribed on small CI hosts: 2x and 4x one core.
        vec![cores, cores * 2, cores * 4]
    } else {
        vec![cores, cores * 2, cores * 3, cores * 4]
    }
}

/// One bag scenario under a write-only storm.
fn bag_scenario(ds: Ds, scheme: Scheme, threads: usize, opts: &Opts) -> Scenario {
    Scenario {
        ds,
        scheme,
        threads,
        key_range: 256,
        workload: Workload::WriteOnly,
        zipf_theta: 0.0,
        warmup: opts.warmup(),
        duration: opts.duration(),
        long_running: false,
    }
}

/// A/B row: the same scenario with backoff disabled (`bare`) and enabled
/// (`backoff`). Bare runs go through `run_scenario_env` so the subprocess
/// reads `SMR_NO_BACKOFF=1` at startup.
fn contention_section(opts: &Opts) {
    println!();
    println!("# Contention machinery: bags under oversubscribed write storms");
    println!("ds,scheme,threads,mode,throughput_mops");
    let pairs = [
        (Ds::Stack, Scheme::Hp),
        (Ds::ElimStack, Scheme::Hp),
        (Ds::Stack, Scheme::Hpp),
        (Ds::ElimStack, Scheme::Hpp),
        (Ds::Queue, Scheme::Ebr),
        (Ds::OptQueue, Scheme::Ebr),
        (Ds::Queue, Scheme::Pebr),
        (Ds::OptQueue, Scheme::Pebr),
    ];
    for threads in contention_threads(opts.quick) {
        for (ds, scheme) in pairs {
            for (mode, env) in [
                ("bare", &[("SMR_NO_BACKOFF", "1")][..]),
                ("backoff", &[][..]),
            ] {
                let sc = bag_scenario(ds, scheme, threads, opts);
                match run_scenario_env(&sc, opts, env) {
                    Outcome::Done(stats) => {
                        println!("{ds},{scheme},{threads},{mode},{:.4}", stats.throughput_mops);
                    }
                    Outcome::Timeout => emit_timeout("fig9", &sc),
                    Outcome::Skipped | Outcome::Failed => {}
                }
            }
        }
    }
    println!();
    println!("# Expectation: at threads > cores, backoff beats bare (descheduled");
    println!("# CAS winners stall spinners), and elimination/optimistic variants");
    println!("# beat their plain counterparts by decongesting the hot ends.");
}

/// Adversarial mix: long-running scans (read-most over a big range) racing
/// a write storm on the same structure class — checks that the contention
/// machinery does not starve readers.
fn scan_storm_section(opts: &Opts) {
    println!();
    println!("# Long-running scans + write storm (lists, read-most vs write-only)");
    println!("ds,scheme,threads,workload,throughput_mops,peak_garbage");
    let sweep = contention_threads(opts.quick);
    let threads = sweep[1.min(sweep.len() - 1)];
    for scheme in bench::schemes::SCAN_STORM {
        for workload in [Workload::ReadMost, Workload::WriteOnly] {
            let sc = Scenario {
                ds: Ds::HHSList,
                scheme,
                threads,
                key_range: if opts.quick { 1_000 } else { 10_000 },
                workload,
                zipf_theta: opts.zipf,
                warmup: opts.warmup(),
                duration: opts.duration(),
                long_running: false,
            };
            match run_scenario(&sc, opts) {
                Outcome::Done(stats) => println!(
                    "{},{scheme},{threads},{workload},{:.4},{}",
                    sc.ds, stats.throughput_mops, stats.peak_garbage
                ),
                Outcome::Timeout => emit_timeout("fig9", &sc),
                Outcome::Skipped | Outcome::Failed => {}
            }
        }
    }
}

fn main() {
    let opts = Opts::parse();
    println!("# Figure 9: best-in-category throughput, HP vs HP++");
    println!("category,key_range,threads,scheme,best_ds,throughput_mops");
    let lists = [Ds::HMList, Ds::HHSList];
    let trees = [Ds::EFRBTree, Ds::NMTree];
    for (cat, structures) in [("list", &lists[..]), ("tree", &trees[..])] {
        for small in [true, false] {
            for threads in thread_sweep(opts.quick) {
                for scheme in [Scheme::Hp, Scheme::Hpp] {
                    if let Some((ds, mops)) = best(structures, scheme, threads, small, &opts) {
                        let range = if small { "small" } else { "big" };
                        println!("{cat},{range},{threads},{scheme},{ds},{mops:.4}");
                    }
                }
            }
        }
    }
    println!();
    println!("# Expectation (paper): under heavy contention (small range) or for");
    println!("# trees, HP++'s access to the optimistic structures (HHSList, NMTree)");
    println!("# beats the best HP-compatible structure by a large margin.");

    contention_section(&opts);
    scan_storm_section(&opts);
}
