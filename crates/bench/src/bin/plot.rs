//! Renders ASCII charts from a `results/*.csv` file produced by the figure
//! binaries, grouped the way the paper's figures are.
//!
//! ```text
//! plot results/fig8.csv --metric throughput_mops --x threads
//! plot results/fig10.csv --metric throughput_mops --x key_range --log
//! ```

use std::collections::BTreeMap;

fn arg_value(args: &[String], name: &str) -> Option<String> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let path = args
        .get(1)
        .filter(|a| !a.starts_with("--"))
        .expect("usage: plot <results.csv> [--metric <col>] [--x threads|key_range] [--log]");
    let metric = arg_value(&args, "--metric").unwrap_or_else(|| "throughput_mops".into());
    let x_col = arg_value(&args, "--x").unwrap_or_else(|| "threads".into());
    let log = args.iter().any(|a| a == "--log");

    let text = std::fs::read_to_string(path).expect("read csv");
    let mut lines = text.lines().filter(|l| !l.is_empty() && !l.starts_with('#'));
    let header: Vec<&str> = lines.next().expect("csv header").split(',').collect();
    let col = |name: &str| {
        header
            .iter()
            .position(|h| *h == name)
            .unwrap_or_else(|| panic!("column {name} not in {header:?}"))
    };
    let (c_ds, c_scheme, c_x, c_y) = (col("ds"), col("scheme"), col(&x_col), col(&metric));

    // ds -> scheme -> (x -> y)
    let mut data: BTreeMap<String, BTreeMap<String, BTreeMap<u64, f64>>> = BTreeMap::new();
    for line in lines {
        let f: Vec<&str> = line.split(',').collect();
        if f.len() != header.len() {
            continue;
        }
        let (Ok(x), Ok(y)) = (f[c_x].parse::<u64>(), f[c_y].parse::<f64>()) else {
            continue;
        };
        data.entry(f[c_ds].into())
            .or_default()
            .entry(f[c_scheme].into())
            .or_default()
            .insert(x, y);
    }

    const WIDTH: usize = 50;
    for (ds, schemes) in &data {
        println!("\n== {ds}: {metric} vs {x_col} ==");
        let max = schemes
            .values()
            .flat_map(|m| m.values())
            .cloned()
            .fold(f64::MIN, f64::max);
        if max <= 0.0 {
            println!("  (no positive data)");
            continue;
        }
        for (scheme, points) in schemes {
            println!("  {scheme}:");
            for (x, y) in points {
                let frac = if log {
                    if *y <= 0.0 {
                        0.0
                    } else {
                        ((y / max).log10() / 3.0 + 1.0).clamp(0.0, 1.0)
                    }
                } else {
                    (y / max).clamp(0.0, 1.0)
                };
                let bar = "#".repeat((frac * WIDTH as f64).round() as usize);
                println!("    {x:>9} | {bar:<WIDTH$} {y:.6}");
            }
        }
    }
}
