//! Figure 11: peak number of retired-but-unreclaimed blocks of read-write
//! workloads, varying thread count.

use bench::orchestrate::{emit, emit_timeout, run_scenario, Opts, Outcome};
use bench::{thread_sweep, Ds, Scenario, Scheme, Workload};

fn main() {
    let opts = Opts::parse();
    println!("# Figure 11: peak unreclaimed blocks, read-write, big key range");
    println!("{}", Scenario::CSV_HEADER);
    for ds in Ds::ALL {
        for threads in thread_sweep(opts.quick) {
            for scheme in Scheme::ALL {
                if scheme == Scheme::Rc {
                    continue; // metric not well-defined for RC (paper fn. 13)
                }
                let sc = Scenario {
                    ds,
                    scheme,
                    threads,
                    key_range: if opts.quick {
                        ds.big_range() / 10
                    } else {
                        ds.big_range()
                    },
                    workload: Workload::ReadWrite,
                    zipf_theta: opts.zipf,
                    warmup: opts.warmup(),
                    duration: opts.duration(),
                    long_running: false,
                };
                match run_scenario(&sc, &opts) {
                    Outcome::Done(stats) => emit("fig11", &sc, &stats),
                    Outcome::Timeout => emit_timeout("fig11", &sc),
                    Outcome::Skipped | Outcome::Failed => {}
                }
            }
        }
    }
    println!();
    println!("# Expectation (paper): NR grows without bound; EBR spikes under");
    println!("# oversubscription; HP stays lowest; HP++ tracks HP's trend with a");
    println!("# constant overhead from frontier protection / deferred retirement.");
}
