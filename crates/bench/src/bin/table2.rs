//! Table 2: the applicability matrix, regenerated from what actually
//! compiles in `crates/ds` (the dispatch table of `bench::applicable`).

use bench::{applicable, Ds, Scheme};

fn main() {
    println!("# Table 2: applicability of reclamation schemes (this repository)");
    print!("{:<12}", "structure");
    for scheme in Scheme::ALL {
        print!("{:>8}", scheme.to_string());
    }
    println!();
    for ds in Ds::ALL {
        print!("{:<12}", ds.to_string());
        for scheme in Scheme::ALL {
            let mark = if applicable(ds, scheme) { "yes" } else { "-" };
            print!("{mark:>8}");
        }
        println!();
    }
    println!();
    println!("# '-' entries are the paper's inapplicability results: HP cannot");
    println!("# protect optimistic traversal (HHSList, NMTree; §2.3), and RC is");
    println!("# implemented for the list-shaped structures (the paper likewise");
    println!("# omits the RC trees, whose descriptors form cycles; fn. 12).");
}
