//! Table 1 (measured column): unreclaimed-object bounds under a stalled
//! thread — the robustness experiment.
//!
//! One thread enters a critical section (or parks on validated hazard
//! pointers) and stalls; the remaining threads churn insert/remove. Robust
//! schemes (HP, HP++, PEBR-after-ejection) keep garbage bounded; EBR and NR
//! grow without bound.
//!
//! A [`GarbageWatchdog`] samples each run every 25 ms — progress token =
//! [`counters::total_freed`] (moves iff reclamation moves, for every
//! scheme) — and the final verdict column classifies the run as `healthy`,
//! `degraded-bounded`, or `growing-unbounded`.
//!
//! With `--quick` the churn window shrinks to 300 ms and the binary turns
//! into a CI gate: it exits non-zero if the HP or HP++ peak exceeds the
//! bound *derived from the schemes' published formulas* (Michael's
//! `k·H + threshold` per participant; HP++ adds its deferred-invalidation
//! batches). The EBR/PEBR rows stay informational — their failure modes are
//! asserted by `tests/robustness.rs`.

use std::sync::atomic::{AtomicBool, Ordering::Relaxed};
use std::time::Duration;

use smr_common::counters;
use smr_common::watchdog::{GarbageWatchdog, WatchdogStatus};
use smr_common::{ConcurrentMap, GuardedScheme};

/// Threads churning against the one staller.
const CHURNERS: usize = 3;

fn churn<M: ConcurrentMap<u64, u64> + Send + Sync>(map: &M, stop: &AtomicBool) {
    let mut h = map.handle();
    let mut k = 0u64;
    while !stop.load(Relaxed) {
        map.insert(&mut h, k % 64, k);
        map.remove(&mut h, &(k % 64));
        k += 1;
    }
}

struct Measured {
    garbage: usize,
    peak: usize,
    bound: usize,
    verdict: &'static str,
}

fn measure<M, F>(name: &str, window: Duration, bound: usize, stall: F) -> Measured
where
    M: ConcurrentMap<u64, u64> + Send + Sync,
    F: FnOnce(&M, &AtomicBool) + Send,
{
    let map = M::new();
    let stop = AtomicBool::new(false);
    let base = counters::garbage_now();
    // The stall window is a fraction of the run so a wedged scheme is
    // flagged within the window, not only at the final sample.
    let mut dog = GarbageWatchdog::new(bound, window / 4);
    let mut last = WatchdogStatus::Healthy;
    std::thread::scope(|s| {
        s.spawn(|| stall(&map, &stop));
        for _ in 0..CHURNERS {
            s.spawn(|| churn(&map, &stop));
        }
        let deadline = std::time::Instant::now() + window;
        while std::time::Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(25));
            let garbage = counters::garbage_now().saturating_sub(base) as usize;
            last = dog.observe(counters::total_freed(), garbage);
        }
        stop.store(true, Relaxed);
    });
    let garbage = counters::garbage_now().saturating_sub(base) as usize;
    let verdict = match last {
        WatchdogStatus::Healthy => "healthy",
        WatchdogStatus::DegradedBounded { .. } => "degraded-bounded",
        WatchdogStatus::GrowingUnbounded { .. } => "growing-unbounded",
    };
    let m = Measured {
        garbage,
        peak: dog.peak(),
        bound,
        verdict,
    };
    println!("{name},{},{},{},{}", m.garbage, m.peak, m.bound, m.verdict);
    m
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let window = if quick {
        Duration::from_millis(300)
    } else {
        Duration::from_millis(1500)
    };
    let participants = CHURNERS + 1;

    println!(
        "# Table 1: unreclaimed blocks after {:?} of churn with one stalled thread",
        window
    );
    println!("scheme,unreclaimed_blocks,peak_unreclaimed,bound,watchdog");

    // Bounds derived from the published formulas, never hard-coded:
    // each participant's bag stays below max(threshold, k·H); 2x margin.
    let hp_slots = hp::default_domain().slot_capacity();
    let hp_bound = 2 * participants * (hp::reclaim_k() * hp_slots + hp::RECLAIM_THRESHOLD);
    let hpp_slots = hp_plus::default_domain().hp_domain().slot_capacity();
    let hpp_bound = 2
        * participants
        * (hp::reclaim_k() * hpp_slots + hp::RECLAIM_THRESHOLD + 2 * hp_plus::RECLAIM_PERIOD);
    // EBR has no bound; give the watchdog its collection trigger so a
    // stalled pin is classified as growth, not noise.
    let ebr_bound = 4 * ebr::default_collector().collect_threshold();
    let pebr_bound = 2 * participants * (pebr::EJECT_THRESHOLD + 2 * pebr::COLLECT_THRESHOLD);
    // Hyaline with a *cooperative* staller (crosses a critical-section
    // boundary each poll): bounded by batches-in-flight x handover
    // threshold, derived in `hyaline::garbage_bound`. Its non-cooperative
    // row grows like EBR's (CS-granularity protection — DESIGN.md §1.11)
    // and keeps the EBR-style watchdog trigger.
    let hyaline_coop_bound = hyaline::garbage_bound(participants);
    let hyaline_stall_bound = 4 * hyaline::legacy_trigger().threshold(participants);

    // EBR: the stalled thread holds a pin forever — unbounded growth.
    measure::<ds::guarded::HMList<u64, u64, ebr::Ebr>, _>(
        "ebr-stalled-pin",
        window,
        ebr_bound,
        |map, stop| {
            let mut h = map.handle();
            let _g = ebr::Ebr::pin(&mut h);
            while !stop.load(Relaxed) {
                std::thread::sleep(Duration::from_millis(10));
            }
        },
    );

    // PEBR, non-cooperative staller: our behavioral model only neutralizes
    // threads at their validate() points, so this matches EBR (documented
    // deviation from real PEBR — see DESIGN.md).
    measure::<ds::guarded::HMList<u64, u64, pebr::Pebr>, _>(
        "pebr-stalled-pin-noncooperative",
        window,
        pebr_bound,
        |map, stop| {
            let mut h = map.handle();
            let _g = pebr::Pebr::pin(&mut h);
            while !stop.load(Relaxed) {
                std::thread::sleep(Duration::from_millis(10));
            }
        },
    );

    // PEBR, cooperative staller: checks validate() like a slow reader
    // would; ejection lands and garbage stays bounded.
    measure::<ds::guarded::HMList<u64, u64, pebr::Pebr>, _>(
        "pebr-stalled-pin-cooperative",
        window,
        pebr_bound,
        |map, stop| {
            use smr_common::SchemeGuard;
            let mut h = map.handle();
            let mut g = pebr::Pebr::pin(&mut h);
            while !stop.load(Relaxed) {
                if !g.validate() {
                    g.refresh();
                }
                std::thread::sleep(Duration::from_millis(1));
            }
        },
    );

    // Hyaline, non-cooperative staller: a validated critical section that
    // never leaves keeps a reference on every batch handed over while it is
    // active, so garbage grows like EBR's stalled pin (informational row;
    // the *mid-enter* staller is ejected and bounded — proven
    // deterministically by tests/fault_matrix.rs).
    measure::<ds::guarded::HMList<u64, u64, hyaline::Hyaline>, _>(
        "hyaline-stalled-pin-noncooperative",
        window,
        hyaline_stall_bound,
        |map, stop| {
            let mut h = map.handle();
            let _g = hyaline::Hyaline::pin(&mut h);
            while !stop.load(Relaxed) {
                std::thread::sleep(Duration::from_millis(10));
            }
        },
    );

    // Hyaline, cooperative staller: re-crosses its critical-section
    // boundary on every poll (hyaline's unit of cooperation is the CS
    // boundary, as validate() is PEBR's), so each handed-over batch waits
    // at most one poll plus the scheduler's whims; garbage stays near the
    // derived in-flight bound.
    let hyaline_run = measure::<ds::guarded::HMList<u64, u64, hyaline::Hyaline>, _>(
        "hyaline-stalled-pin-cooperative",
        window,
        hyaline_coop_bound,
        |map, stop| {
            use smr_common::SchemeGuard;
            let mut h = map.handle();
            let mut g = hyaline::Hyaline::pin(&mut h);
            while !stop.load(Relaxed) {
                g.refresh();
                std::thread::yield_now();
            }
        },
    );

    // HP: the stalled thread parks on a validated hazard pointer —
    // only the announced nodes stay unreclaimed.
    let hp_run = measure::<ds::hp::HMList<u64, u64>, _>(
        "hp-stalled-hazard",
        window,
        hp_bound,
        |map, stop| {
            let mut h = ConcurrentMap::handle(map);
            let _ = map.get(&mut h, &0);
            // Handle keeps its hazard slots; just stall without resetting them.
            while !stop.load(Relaxed) {
                std::thread::sleep(Duration::from_millis(10));
            }
            drop(h);
        },
    );

    // HP++: same, plus frontier protections — still bounded.
    let hpp_run = measure::<ds::hpp::HHSList<u64, u64>, _>(
        "hp++-stalled-hazard",
        window,
        hpp_bound,
        |map, stop| {
            let mut h = ConcurrentMap::handle(map);
            let _ = map.get(&mut h, &0);
            while !stop.load(Relaxed) {
                std::thread::sleep(Duration::from_millis(10));
            }
            drop(h);
        },
    );

    println!();
    println!("# Expectation (paper Table 1): EBR unbounded (grows with run time);");
    println!("# HP/HP++ O(hazards + thresholds); PEBR bounded after ejection;");
    println!("# hyaline bounded for any staller that keeps crossing CS boundaries");
    println!("# (non-cooperative validated stalls grow EBR-like — DESIGN.md §1.11).");

    if quick {
        let mut failed = false;
        for (name, m) in [("hp", &hp_run), ("hp++", &hpp_run)] {
            if m.peak > m.bound {
                eprintln!(
                    "BOUND VIOLATION: {name} peak unreclaimed {} exceeds derived bound {}",
                    m.peak, m.bound
                );
                failed = true;
            }
        }
        // Hyaline's formula bounds the *settled* state: hazard bounds hold
        // at every instant, but a handed-over batch legitimately floats
        // until the slots active at its handover leave, so the in-flight
        // peak scales with retire-rate x scheduler quantum — a host
        // property no scheme constant derives. The robustness claim is
        // that a cooperative staller never wedges reclamation: garbage
        // must settle back under the derived bound and the watchdog must
        // not classify the run as unbounded growth (EBR's verdict above).
        if hyaline_run.garbage > hyaline_run.bound {
            eprintln!(
                "BOUND VIOLATION: hyaline-cooperative settled at {} unreclaimed, derived bound {}",
                hyaline_run.garbage, hyaline_run.bound
            );
            failed = true;
        }
        if hyaline_run.verdict == "growing-unbounded" {
            eprintln!("BOUND VIOLATION: hyaline-cooperative classified as growing-unbounded");
            failed = true;
        }
        if failed {
            std::process::exit(1);
        }
        println!("# --quick gate: HP/HP++ peaks and the hyaline cooperative settled");
        println!("# count within their derived bounds.");
    }
}
