//! Table 1 (measured column): unreclaimed-object bounds under a stalled
//! thread — the robustness experiment.
//!
//! One thread enters a critical section (or parks on validated hazard
//! pointers) and stalls; the remaining threads churn insert/remove. Robust
//! schemes (HP, HP++, PEBR-after-ejection) keep garbage bounded; EBR and NR
//! grow without bound.

use std::sync::atomic::{AtomicBool, Ordering::Relaxed};
use std::time::Duration;

use smr_common::{ConcurrentMap, GuardedScheme};

fn churn<M: ConcurrentMap<u64, u64> + Send + Sync>(map: &M, stop: &AtomicBool) {
    let mut h = map.handle();
    let mut k = 0u64;
    while !stop.load(Relaxed) {
        map.insert(&mut h, k % 64, k);
        map.remove(&mut h, &(k % 64));
        k += 1;
    }
}

fn measure<M, F>(name: &str, stall: F)
where
    M: ConcurrentMap<u64, u64> + Send + Sync,
    F: FnOnce(&M, &AtomicBool) + Send,
{
    let map = M::new();
    let stop = AtomicBool::new(false);
    let base = smr_common::counters::garbage_now();
    std::thread::scope(|s| {
        s.spawn(|| stall(&map, &stop));
        for _ in 0..3 {
            s.spawn(|| churn(&map, &stop));
        }
        std::thread::sleep(Duration::from_millis(1500));
        stop.store(true, Relaxed);
    });
    let garbage = smr_common::counters::garbage_now().saturating_sub(base);
    println!("{name},{garbage}");
}

fn main() {
    println!("# Table 1: unreclaimed blocks after 1.5 s of churn with one stalled thread");
    println!("scheme,unreclaimed_blocks");

    // EBR: the stalled thread holds a pin forever — unbounded growth.
    measure::<ds::guarded::HMList<u64, u64, ebr::Ebr>, _>("ebr-stalled-pin", |map, stop| {
        let mut h = map.handle();
        let _g = ebr::Ebr::pin(&mut h);
        while !stop.load(Relaxed) {
            std::thread::sleep(Duration::from_millis(10));
        }
    });

    // PEBR, non-cooperative staller: our behavioral model only neutralizes
    // threads at their validate() points, so this matches EBR (documented
    // deviation from real PEBR — see DESIGN.md).
    measure::<ds::guarded::HMList<u64, u64, pebr::Pebr>, _>(
        "pebr-stalled-pin-noncooperative",
        |map, stop| {
            let mut h = map.handle();
            let _g = pebr::Pebr::pin(&mut h);
            while !stop.load(Relaxed) {
                std::thread::sleep(Duration::from_millis(10));
            }
        },
    );

    // PEBR, cooperative staller: checks validate() like a slow reader
    // would; ejection lands and garbage stays bounded.
    measure::<ds::guarded::HMList<u64, u64, pebr::Pebr>, _>(
        "pebr-stalled-pin-cooperative",
        |map, stop| {
            use smr_common::SchemeGuard;
            let mut h = map.handle();
            let mut g = pebr::Pebr::pin(&mut h);
            while !stop.load(Relaxed) {
                if !g.validate() {
                    g.refresh();
                }
                std::thread::sleep(Duration::from_millis(1));
            }
        },
    );

    // HP: the stalled thread parks on a validated hazard pointer —
    // only the announced nodes stay unreclaimed.
    measure::<ds::hp::HMList<u64, u64>, _>("hp-stalled-hazard", |map, stop| {
        let mut h = ConcurrentMap::handle(map);
        let _ = map.get(&mut h, &0);
        // Handle keeps its hazard slots; just stall without resetting them.
        while !stop.load(Relaxed) {
            std::thread::sleep(Duration::from_millis(10));
        }
        drop(h);
    });

    // HP++: same, plus frontier protections — still bounded.
    measure::<ds::hpp::HHSList<u64, u64>, _>("hp++-stalled-hazard", |map, stop| {
        let mut h = ConcurrentMap::handle(map);
        let _ = map.get(&mut h, &0);
        while !stop.load(Relaxed) {
            std::thread::sleep(Duration::from_millis(10));
        }
        drop(h);
    });

    println!();
    println!("# Expectation (paper Table 1): EBR unbounded (grows with run time);");
    println!("# HP/HP++ O(hazards + thresholds); PEBR bounded after ejection.");
}
