//! End-to-end benchmark for the sharded KV service.
//!
//! ```text
//! kv_bench [--quick]
//! ```
//!
//! Runs two sweeps over the read-mostly Zipfian scenario (90/5/5,
//! θ = 0.99) and prints one CSV to stdout:
//!
//! * `scaling` — HP++ store at 1, 2, and 4 shards: the throughput-scaling
//!   headline (per-shard reclamation domains mean shards add capacity
//!   without sharing a collector bottleneck);
//! * `schemes` — HP++ vs per-shard EBR vs NR at 4 shards: what the
//!   reclamation scheme costs end-to-end, through rings, batching, and the
//!   map itself.
//!
//! Columns (see EXPERIMENTS.md):
//! `section,scheme,shards,clients,pipeline,batch,ring,keys,theta,read_pct,
//! warmup_ms,duration_ms,total_mops,min_shard_mops,max_shard_mops,p50_ns,
//! p99_ns,p999_ns,peak_shard_garbage`
//!
//! The scaling verdict (4-shard ÷ 1-shard throughput) goes to stderr with
//! the host's core count: on a 1-core host every shard multiplexes the
//! same CPU, so the ratio measures batching overhead, not scaling — the
//! ≥ 4-core claim in EXPERIMENTS.md must come from a ≥ 4-core host.
//! `--quick` shrinks windows and key range for CI smoke runs.

use bench::kv_run::{run_kv, KvResult, KvRun};
use kv_service::{available_cores, EbrStore, HppStore, NrStore, ShardStore};

const HEADER: &str = "section,scheme,shards,clients,pipeline,batch,ring,keys,theta,read_pct,\
warmup_ms,duration_ms,total_mops,min_shard_mops,max_shard_mops,p50_ns,p99_ns,p999_ns,\
peak_shard_garbage";

fn scenario(shards: usize, quick: bool) -> KvRun {
    let rc = KvRun::read_mostly(shards);
    if quick {
        rc.quick()
    } else {
        rc
    }
}

fn row<S: ShardStore>(section: &str, rc: &KvRun) -> KvResult {
    eprintln!("kv_bench: {section} {} x{} shards…", S::SCHEME, rc.shards);
    let r = run_kv::<S>(rc);
    println!(
        "{section},{},{},{},{},{},{},{},{},{},{},{},{:.4},{:.4},{:.4},{},{},{},{}",
        S::SCHEME,
        rc.shards,
        rc.clients,
        rc.pipeline,
        rc.batch,
        rc.ring_depth,
        rc.keys,
        rc.theta,
        rc.read_pct,
        rc.warmup.as_millis(),
        rc.duration.as_millis(),
        r.total_mops,
        r.min_shard_mops,
        r.max_shard_mops,
        r.p50_ns,
        r.p99_ns,
        r.p999_ns,
        r.peak_shard_garbage,
    );
    r
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    println!("{HEADER}");

    let mut one_shard = None;
    let mut four_shard = None;
    for shards in [1usize, 2, 4] {
        let r = row::<HppStore>("scaling", &scenario(shards, quick));
        match shards {
            1 => one_shard = Some(r),
            4 => four_shard = Some(r),
            _ => {}
        }
    }

    for_scheme_sweep(quick);

    let cores = available_cores();
    if let (Some(s1), Some(s4)) = (one_shard, four_shard) {
        let ratio = s4.total_mops / s1.total_mops.max(1e-9);
        eprintln!(
            "kv_bench: 1→4 shard scaling {ratio:.2}x on a {cores}-core host{}",
            if cores >= 4 {
                ""
            } else {
                " (shards time-share the same cores here; measure scaling on >=4 cores)"
            }
        );
    }
}

fn for_scheme_sweep(quick: bool) {
    let rc = scenario(4, quick);
    row::<HppStore>("schemes", &rc);
    row::<EbrStore>("schemes", &rc);
    row::<NrStore>("schemes", &rc);
}
