//! End-to-end benchmark for the sharded KV service.
//!
//! ```text
//! kv_bench [--quick]
//! ```
//!
//! Runs two sweeps over the read-mostly Zipfian scenario (90/5/5,
//! θ = 0.99) and prints one CSV to stdout:
//!
//! * `scaling` — HP++ store at 1, ⌈max/2⌉, and `max` shards: the
//!   throughput-scaling headline (per-shard reclamation domains mean
//!   shards add capacity without sharing a collector bottleneck). `max`
//!   is 4, or `KV_SHARDS` when set;
//! * `schemes` — HP++ vs per-shard EBR vs per-shard hyaline vs NR at `max`
//!   shards: what the reclamation scheme costs end-to-end, through rings,
//!   batching, and the map itself.
//!
//! Every run installs the `KV_POLICY`-selected trigger policy (default
//! `capped`, the legacy trigger) on each shard's domain; the chosen policy
//! is the last CSV column.
//!
//! Columns (see EXPERIMENTS.md):
//! `section,scheme,shards,clients,pipeline,batch,ring,keys,theta,read_pct,
//! warmup_ms,duration_ms,total_mops,min_shard_mops,max_shard_mops,p50_ns,
//! p99_ns,p999_ns,peak_shard_garbage,policy`
//!
//! The scaling verdict (max-shard ÷ 1-shard throughput) goes to stderr with
//! the host's core count: on a 1-core host every shard multiplexes the
//! same CPU, so the ratio measures batching overhead, not scaling — the
//! ≥ 4-core claim in EXPERIMENTS.md must come from a ≥ 4-core host.
//! `--quick` shrinks windows and key range for CI smoke runs.

use bench::kv_run::{run_kv, KvResult, KvRun};
use kv_service::{available_cores, EbrStore, HppStore, HyalineStore, NrStore, ShardStore};
use smr_common::policy::PolicyKind;

const HEADER: &str = "section,scheme,shards,clients,pipeline,batch,ring,keys,theta,read_pct,\
warmup_ms,duration_ms,total_mops,min_shard_mops,max_shard_mops,p50_ns,p99_ns,p999_ns,\
peak_shard_garbage,policy";

fn scenario(shards: usize, policy: PolicyKind, quick: bool) -> KvRun {
    let rc = KvRun::read_mostly(shards).with_policy(policy);
    if quick {
        rc.quick()
    } else {
        rc
    }
}

fn row<S: ShardStore>(section: &str, rc: &KvRun) -> KvResult {
    eprintln!("kv_bench: {section} {} x{} shards…", S::SCHEME, rc.shards);
    let r = run_kv::<S>(rc);
    let prefix = format!(
        "{section},{},{},{},{},{},{},{},{},{},{},{}",
        S::SCHEME,
        rc.shards,
        rc.clients,
        rc.pipeline,
        rc.batch,
        rc.ring_depth,
        rc.keys,
        rc.theta,
        rc.read_pct,
        rc.warmup.as_millis(),
        rc.duration.as_millis(),
    );
    if r.timeouts > 0 {
        // Ops blew their per-op deadline: the fig9 convention — keep the
        // full column schema but put `timeout` in every stat column, so
        // numeric consumers skip the row without losing which
        // configuration wedged (and the bench never hangs on it).
        eprintln!(
            "kv_bench: {section} {} x{}: {} ops exceeded the op deadline",
            S::SCHEME,
            rc.shards,
            r.timeouts
        );
        let stats = ["timeout"; 7].join(",");
        println!("{prefix},{stats},{}", rc.policy);
    } else {
        println!(
            "{prefix},{:.4},{:.4},{:.4},{},{},{},{},{}",
            r.total_mops,
            r.min_shard_mops,
            r.max_shard_mops,
            r.p50_ns,
            r.p99_ns,
            r.p999_ns,
            r.peak_shard_garbage,
            rc.policy,
        );
    }
    r
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    println!("{HEADER}");

    // The sweep's top shard count tracks the config: `KV_SHARDS` overrides
    // the default 4 (the sweep used to hard-code [1, 2, 4] and ignore the
    // override). `KV_POLICY` picks the per-shard trigger policy.
    let max_shards = smr_common::env::parse_usize("KV_SHARDS")
        .filter(|&n| n > 0)
        .unwrap_or(4);
    let policy = PolicyKind::from_env_var("KV_POLICY").unwrap_or_default();
    let mut sweep = vec![1usize, max_shards.div_ceil(2), max_shards];
    sweep.sort_unstable();
    sweep.dedup();

    let mut one_shard = None;
    let mut top_shard = None;
    for &shards in &sweep {
        let r = row::<HppStore>("scaling", &scenario(shards, policy, quick));
        if shards == 1 {
            one_shard = Some(r);
        }
        if shards == max_shards {
            top_shard = Some(r);
        }
    }

    for_scheme_sweep(max_shards, policy, quick);

    let cores = available_cores();
    if let (Some(s1), Some(stop)) = (one_shard, top_shard) {
        let ratio = stop.total_mops / s1.total_mops.max(1e-9);
        eprintln!(
            "kv_bench: 1→{max_shards} shard scaling {ratio:.2}x on a {cores}-core host{}",
            if cores >= max_shards {
                ""
            } else {
                " (shards time-share the same cores here; measure scaling on >=4 cores)"
            }
        );
    }
}

fn for_scheme_sweep(shards: usize, policy: PolicyKind, quick: bool) {
    let rc = scenario(shards, policy, quick);
    row::<HppStore>("schemes", &rc);
    row::<EbrStore>("schemes", &rc);
    row::<HyalineStore>("schemes", &rc);
    row::<NrStore>("schemes", &rc);
}
