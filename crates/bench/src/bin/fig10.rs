//! Figure 10: throughput of long-running read operations over lists with
//! growing key ranges (2^18 … 2^26 in the paper), while writer threads
//! churn the head. PEBR's coarse-grained ejection makes its curve plunge;
//! HP++'s fine-grained protection failures do not.
//!
//! HMList is used for HP, HHSList for the other schemes (as in the paper).

use bench::orchestrate::{emit, emit_timeout, run_scenario, Opts, Outcome};
use bench::{Ds, Scenario, Scheme, Workload};

fn main() {
    let opts = Opts::parse();
    println!("# Figure 10: long-running read throughput vs key range");
    println!("{}", Scenario::CSV_HEADER);

    let exponents: Vec<u32> = if opts.paper {
        (18..=26).collect()
    } else if opts.quick {
        (14..=18).step_by(2).collect()
    } else {
        (16..=22).step_by(2).collect()
    };
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4);
    let readers = if opts.paper { 32 } else { (cores / 2).max(2) };

    for exp in exponents {
        for scheme in Scheme::ALL {
            let ds = if scheme == Scheme::Hp {
                Ds::HMList
            } else {
                Ds::HHSList
            };
            let sc = Scenario {
                ds,
                scheme,
                threads: readers,
                key_range: 1u64 << exp,
                workload: Workload::ReadMost, // ignored in long-running mode
                zipf_theta: opts.zipf,
                warmup: opts.warmup(),
                duration: opts.duration(),
                long_running: true,
            };
            match run_scenario(&sc, &opts) {
                Outcome::Done(stats) => emit("fig10", &sc, &stats),
                Outcome::Timeout => emit_timeout("fig10", &sc),
                Outcome::Skipped | Outcome::Failed => {}
            }
        }
    }
    println!();
    println!("# Expectation (paper): PEBR's relative throughput plunges at large");
    println!("# key ranges (reads get ejected and restart); HP++ tracks EBR/NR.");
}
