//! Figure 12: the reclamation-policy ablation.
//!
//! Sweeps the [`smr_common::policy`] engine — `eager`, `capped` (the legacy
//! default), `timed`, `adaptive` — across schemes and three workload
//! shapes:
//!
//! * **read-heavy** — 90/5/5 on the hash map: retires are rare, so policy
//!   overhead and missed batching show up directly in throughput;
//! * **write-storm** — 50/50 insert/delete on a small hot range: maximum
//!   retire pressure, where the peak-garbage column shows what each policy
//!   lets accumulate;
//! * **scan-storm** — read-mostly on the optimistic list with a
//!   long-running scanner pinned through the structure: the stalled-reader
//!   shape the `Adaptive` feedback loop is built for.
//!
//! Scheme-level runs go through `smr_bench` subprocesses with `SMR_POLICY`
//! set per run (the policy config latches process-wide at first retire, so
//! each policy needs a fresh process). The KV section runs in-process:
//! `KvRun::policy` reaches each shard's domain as an explicit constructor
//! parameter, bypassing the env latch.
//!
//! Output: two CSV sections (scheme-level, then KV). `--quick` trims the
//! scheme set and shrinks windows for the CI smoke run.

use bench::kv_run::{run_kv, KvRun};
use bench::orchestrate::{emit_timeout, run_scenario_env, Opts, Outcome};
use bench::{Ds, Scenario, Scheme, Workload};
use kv_service::HppStore;
use smr_common::policy::PolicyKind;

struct Cell {
    name: &'static str,
    ds: Ds,
    workload: Workload,
    key_range: u64,
    long_running: bool,
}

const CELLS: [Cell; 3] = [
    Cell {
        name: "read-heavy",
        ds: Ds::HashMap,
        workload: Workload::ReadMost,
        key_range: 10_000,
        long_running: false,
    },
    Cell {
        name: "write-storm",
        ds: Ds::HashMap,
        workload: Workload::WriteOnly,
        key_range: 1_000,
        long_running: false,
    },
    Cell {
        name: "scan-storm",
        ds: Ds::HHSList,
        workload: Workload::ReadMost,
        key_range: 2_000,
        long_running: true,
    },
];

fn main() {
    let opts = Opts::parse();
    let threads = if opts.quick { 2 } else { 4 };
    // The scheme sets come from the shared registry (bench::schemes), so a
    // scheme that grows a PolicySlot joins the ablation by being listed
    // there once.
    let schemes: &[Scheme] = if opts.quick {
        &bench::schemes::POLICY_QUICK
    } else {
        &bench::schemes::POLICY
    };

    println!("# Figure 12: reclamation-policy ablation (policy x scheme x workload)");
    println!("workload,ds,scheme,policy,threads,throughput_mops,peak_garbage,avg_garbage");
    for cell in &CELLS {
        for &scheme in schemes {
            for policy in PolicyKind::ALL {
                let sc = Scenario {
                    ds: cell.ds,
                    scheme,
                    threads,
                    key_range: if opts.quick {
                        cell.key_range / 10
                    } else {
                        cell.key_range
                    },
                    workload: cell.workload,
                    zipf_theta: opts.zipf,
                    warmup: opts.warmup(),
                    duration: opts.duration(),
                    long_running: cell.long_running,
                };
                match run_scenario_env(&sc, &opts, &[("SMR_POLICY", policy.name())]) {
                    Outcome::Done(stats) => println!(
                        "{},{},{scheme},{policy},{threads},{:.4},{},{}",
                        cell.name, cell.ds, stats.throughput_mops, stats.peak_garbage,
                        stats.avg_garbage
                    ),
                    Outcome::Timeout => emit_timeout("fig12", &sc),
                    Outcome::Skipped | Outcome::Failed => {}
                }
            }
        }
    }

    println!();
    println!("# KV service: per-shard policy through KvRun::policy (HP++ store)");
    println!("scheme,shards,policy,total_mops,p99_ns,peak_shard_garbage");
    for policy in PolicyKind::ALL {
        let mut rc = KvRun::read_mostly(1).with_policy(policy);
        if opts.quick {
            rc = rc.quick();
        }
        let r = run_kv::<HppStore>(&rc);
        println!(
            "hpp,1,{policy},{:.4},{},{}",
            r.total_mops, r.p99_ns, r.peak_shard_garbage
        );
    }

    println!();
    println!("# Expectation: capped == the legacy trigger bit-for-bit; eager pays a");
    println!("# scan per retire (throughput floor, zero garbage); adaptive relaxes");
    println!("# toward larger batches on healthy read-heavy runs and must never");
    println!("# exceed the k*slots+floor bound under the write storm.");
}
