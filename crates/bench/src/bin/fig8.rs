//! Figure 8: throughput of read-write workloads, big key range, varying
//! thread count, for every data structure × scheme.

use bench::orchestrate::{emit, emit_timeout, run_scenario, Opts, Outcome};
use bench::{thread_sweep, Ds, Scenario, Scheme, Workload};

fn main() {
    let opts = Opts::parse();
    println!("# Figure 8: read-write throughput, big key range");
    println!("{}", Scenario::CSV_HEADER);
    for ds in Ds::ALL {
        for threads in thread_sweep(opts.quick) {
            for scheme in Scheme::ALL {
                let sc = Scenario {
                    ds,
                    scheme,
                    threads,
                    key_range: if opts.quick {
                        ds.big_range() / 10
                    } else {
                        ds.big_range()
                    },
                    workload: Workload::ReadWrite,
                    zipf_theta: opts.zipf,
                    warmup: opts.warmup(),
                    duration: opts.duration(),
                    long_running: false,
                };
                match run_scenario(&sc, &opts) {
                    Outcome::Done(stats) => emit("fig8", &sc, &stats),
                    Outcome::Timeout => emit_timeout("fig8", &sc),
                    Outcome::Skipped | Outcome::Failed => {}
                }
            }
        }
    }
}
