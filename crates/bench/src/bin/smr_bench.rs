//! Runs a single benchmark scenario and prints one CSV row.
//!
//! ```text
//! smr_bench --ds hhslist --scheme hp++ --threads 16 --key-range 10000 \
//!           --workload rw --duration-ms 3000 [--zipf <theta>] \
//!           [--warmup-ms <ms>] [--long-running]
//! ```
//!
//! `--zipf 0` (the default) draws keys uniformly; larger thetas skew the
//! key stream Zipfian. `--warmup-ms` runs the workload unmeasured before
//! the timed window. `SMR_NO_PIN=1` disables worker-thread CPU pinning.

use std::time::Duration;

use bench::{Ds, Scenario, Scheme, Workload};

fn arg_value(args: &[String], name: &str) -> Option<String> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let usage = "usage: smr_bench --ds <ds> --scheme <scheme> --threads <n> \
                 --key-range <n> --workload <wo|rw|rm> --duration-ms <ms> \
                 [--zipf <theta>] [--warmup-ms <ms>] [--long-running]";

    let sc = Scenario {
        ds: arg_value(&args, "--ds")
            .expect(usage)
            .parse::<Ds>()
            .expect("bad --ds"),
        scheme: arg_value(&args, "--scheme")
            .expect(usage)
            .parse::<Scheme>()
            .expect("bad --scheme"),
        threads: arg_value(&args, "--threads")
            .expect(usage)
            .parse()
            .expect("bad --threads"),
        key_range: arg_value(&args, "--key-range")
            .expect(usage)
            .parse()
            .expect("bad --key-range"),
        workload: arg_value(&args, "--workload")
            .expect(usage)
            .parse::<Workload>()
            .expect("bad --workload"),
        zipf_theta: arg_value(&args, "--zipf")
            .map(|v| v.parse().expect("bad --zipf"))
            .unwrap_or(0.0),
        warmup: Duration::from_millis(
            arg_value(&args, "--warmup-ms")
                .map(|v| v.parse().expect("bad --warmup-ms"))
                .unwrap_or(0),
        ),
        duration: Duration::from_millis(
            arg_value(&args, "--duration-ms")
                .expect(usage)
                .parse()
                .expect("bad --duration-ms"),
        ),
        long_running: args.iter().any(|a| a == "--long-running"),
    };

    match bench::run(&sc) {
        Some(stats) => println!("{},{}", sc.csv_prefix(), stats.csv_suffix()),
        None => {
            eprintln!("scheme {} not applicable to {}", sc.scheme, sc.ds);
            std::process::exit(2);
        }
    }
}
