//! Appendix C (Figures 12–23): the full workload × metric matrix.
//!
//! * Figs. 12–14: throughput per workload mix.
//! * Figs. 15–17: peak unreclaimed blocks per workload mix.
//! * Figs. 18–20: peak memory usage per workload mix.
//! * Figs. 21–23: average unreclaimed blocks per workload mix.
//!
//! One run per (ds, scheme, threads, workload) produces all four metrics,
//! so this binary sweeps once and emits a combined CSV; use `--metric` to
//! restrict the printed summary.

use bench::orchestrate::{emit, emit_timeout, run_scenario, Opts, Outcome};
use bench::{thread_sweep, Ds, Scenario, Scheme, Workload};

fn main() {
    let opts = Opts::parse();
    let args: Vec<String> = std::env::args().collect();
    let metric = args
        .iter()
        .position(|a| a == "--metric")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "all".to_string());

    println!("# Appendix C (Figs. 12-23), metric filter: {metric}");
    println!("{}", Scenario::CSV_HEADER);
    for workload in [Workload::WriteOnly, Workload::ReadWrite, Workload::ReadMost] {
        for ds in Ds::ALL {
            for threads in thread_sweep(opts.quick) {
                for scheme in Scheme::ALL {
                    let sc = Scenario {
                        ds,
                        scheme,
                        threads,
                        key_range: if opts.quick {
                            ds.big_range() / 10
                        } else {
                            ds.big_range()
                        },
                        workload,
                        zipf_theta: opts.zipf,
                        warmup: opts.warmup(),
                        duration: opts.duration(),
                        long_running: false,
                    };
                    match run_scenario(&sc, &opts) {
                        Outcome::Done(stats) => emit("appendix", &sc, &stats),
                        Outcome::Timeout => emit_timeout("appendix", &sc),
                        Outcome::Skipped | Outcome::Failed => {}
                    }
                }
            }
        }
    }
}
