//! Ablations for the design choices called out in DESIGN.md:
//!
//! 1. **Asymmetric fences** (§3.4): `SMR_NO_MEMBARRIER=1` forces the
//!    symmetric SC-fence fallback; this binary runs HP++ both ways by
//!    re-spawning `smr_bench` with the env var set.
//! 2. **Epoched heavy fence** (Algorithm 5 vs per-invalidation fences):
//!    approximated by sweeping the invalidation batch size via
//!    `HPP_INVALIDATE_PERIOD` — period 1 ≈ a fence-equivalent flush per
//!    unlink.

use std::process::Command;
use std::time::Duration;

use bench::{Ds, Scenario, Scheme, Workload};

fn spawn_with_env(sc: &Scenario, envs: &[(&str, &str)]) -> Option<String> {
    let mut p = std::env::current_exe().ok()?;
    p.pop();
    p.push("smr_bench");
    let mut cmd = Command::new(p);
    cmd.args([
        "--ds",
        &sc.ds.to_string(),
        "--scheme",
        &sc.scheme.to_string(),
        "--threads",
        &sc.threads.to_string(),
        "--key-range",
        &sc.key_range.to_string(),
        "--workload",
        &sc.workload.to_string(),
        "--zipf",
        &sc.zipf_theta.to_string(),
        "--warmup-ms",
        &sc.warmup.as_millis().to_string(),
        "--duration-ms",
        &sc.duration.as_millis().to_string(),
    ]);
    for (k, v) in envs {
        cmd.env(k, v);
    }
    let out = cmd.output().ok()?;
    if !out.status.success() {
        return None;
    }
    Some(String::from_utf8_lossy(&out.stdout).trim().to_string())
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let duration = if quick {
        Duration::from_millis(300)
    } else {
        Duration::from_secs(3)
    };
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4);

    let sc = Scenario {
        ds: Ds::HHSList,
        scheme: Scheme::Hpp,
        threads: cores.min(8),
        key_range: if quick { 1000 } else { 10_000 },
        workload: Workload::ReadWrite,
        zipf_theta: 0.0,
        warmup: Duration::ZERO,
        duration,
        long_running: false,
    };

    println!("# Ablation 1: asymmetric vs symmetric fences (HP++, HHSList)");
    println!("variant,{}", Scenario::CSV_HEADER);
    if let Some(row) = spawn_with_env(&sc, &[]) {
        println!("asymmetric,{row}");
    }
    if let Some(row) = spawn_with_env(&sc, &[("SMR_NO_MEMBARRIER", "1")]) {
        println!("symmetric,{row}");
    }

    println!();
    println!("# Ablation 2: HP scheme under the same toggle (protect-side fence cost)");
    let sc_hp = Scenario {
        ds: Ds::HMList,
        scheme: Scheme::Hp,
        ..sc.clone()
    };
    if let Some(row) = spawn_with_env(&sc_hp, &[]) {
        println!("asymmetric,{row}");
    }
    if let Some(row) = spawn_with_env(&sc_hp, &[("SMR_NO_MEMBARRIER", "1")]) {
        println!("symmetric,{row}");
    }
    println!();
    println!("# Expectation: the symmetric variant pays an SC fence per protection,");
    println!("# so hazard-based schemes slow down, most visibly on read-heavy paths.");

    println!();
    println!("# Ablation 3: invalidation batching (Algorithm 5's deferral). Period 1");
    println!("# approximates a flush (fence-equivalent) per unlink; 32 is the paper's");
    println!("# default.");
    println!("invalidate_period,{}", Scenario::CSV_HEADER);
    for period in ["1", "8", "32", "128"] {
        if let Some(row) = spawn_with_env(&sc, &[("HPP_INVALIDATE_PERIOD", period)]) {
            println!("{period},{row}");
        }
    }
}
