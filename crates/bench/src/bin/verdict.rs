//! Evaluates the paper's *shape* claims against collected `results/*.csv`
//! files and prints a pass/fail verdict per claim — the automated version
//! of EXPERIMENTS.md.
//!
//! Run the figure binaries first (any scale), then:
//!
//! ```text
//! cargo run --release -p bench --bin verdict
//! ```


/// (ds, scheme, threads, key_range) → metric columns.
type Rows = Vec<Row>;

#[derive(Debug, Clone)]
struct Row {
    ds: String,
    scheme: String,
    #[allow(dead_code)]
    threads: u64,
    key_range: u64,
    throughput: f64,
    peak_garbage: u64,
}

fn load(path: &str) -> Option<Rows> {
    let text = std::fs::read_to_string(path).ok()?;
    let mut lines = text.lines();
    // Column positions come from the header, so old CSVs (before the
    // zipf/warmup/latency columns) and new ones both load.
    let header: Vec<&str> = lines.next()?.split(',').collect();
    let col = |name: &str| header.iter().position(|h| *h == name);
    let (c_ds, c_scheme, c_threads, c_range, c_tp, c_peak) = (
        col("ds")?,
        col("scheme")?,
        col("threads")?,
        col("key_range")?,
        col("throughput_mops")?,
        col("peak_garbage")?,
    );
    let mut rows = Vec::new();
    for line in lines {
        let f: Vec<&str> = line.split(',').collect();
        if f.len() < header.len() || f[c_ds] == "ds" {
            continue;
        }
        // A row whose metric fields don't parse — a repeated header or the
        // orchestrator's `timeout` marker — is skipped, not fatal: the rest
        // of the file still carries evidence for the shape claims.
        let parsed = (|| {
            Some(Row {
                ds: f[c_ds].into(),
                scheme: f[c_scheme].into(),
                threads: f[c_threads].parse().ok()?,
                key_range: f[c_range].parse().ok()?,
                throughput: f[c_tp].parse().ok()?,
                peak_garbage: f[c_peak].parse().ok()?,
            })
        })();
        match parsed {
            Some(row) => rows.push(row),
            None => eprintln!("skipping unparseable row in {path}: {line}"),
        }
    }
    Some(rows)
}

/// Geometric-mean throughput of a scheme across a row set.
fn mean_tp(rows: &Rows, ds: &str, scheme: &str) -> Option<f64> {
    let v: Vec<f64> = rows
        .iter()
        .filter(|r| r.ds == ds && r.scheme == scheme && r.throughput > 0.0)
        .map(|r| r.throughput)
        .collect();
    if v.is_empty() {
        return None;
    }
    Some((v.iter().map(|x| x.ln()).sum::<f64>() / v.len() as f64).exp())
}

fn check(name: &str, outcome: Option<bool>, detail: String) {
    match outcome {
        Some(true) => println!("PASS  {name}: {detail}"),
        Some(false) => println!("FAIL  {name}: {detail}"),
        None => println!("SKIP  {name}: {detail}"),
    }
}

fn main() {
    println!("# Shape-claim verdicts (run fig8/fig10/fig11 first)\n");

    // --- Fig 8 claims -----------------------------------------------------
    if let Some(rows) = load("results/fig8.csv") {
        // Claim: HP++ unlocks HHSList and NMTree (rows exist at all).
        let unlocked = rows.iter().any(|r| r.ds == "hhslist" && r.scheme == "hp++")
            && rows.iter().any(|r| r.ds == "nmtree" && r.scheme == "hp++")
            && !rows.iter().any(|r| r.ds == "hhslist" && r.scheme == "hp")
            && !rows.iter().any(|r| r.ds == "nmtree" && r.scheme == "hp");
        check(
            "fig8/applicability",
            Some(unlocked),
            "HP++ fields HHSList & NMTree; HP cannot".into(),
        );

        // Claim: HP++ throughput within [0.4, 1.2]× of EBR per structure
        // (paper band is 0.55–0.93; we allow slack for host noise).
        for ds in ["hhslist", "hashmap", "nmtree", "efrbtree"] {
            match (mean_tp(&rows, ds, "hp++"), mean_tp(&rows, ds, "ebr")) {
                (Some(hpp), Some(ebr)) => {
                    let ratio = hpp / ebr;
                    check(
                        &format!("fig8/{ds}-hp++-vs-ebr"),
                        Some((0.4..=1.2).contains(&ratio)),
                        format!("HP++/EBR = {ratio:.2} (paper: 0.55-0.93)"),
                    );
                }
                _ => check(
                    &format!("fig8/{ds}-hp++-vs-ebr"),
                    None,
                    "missing rows".into(),
                ),
            }
        }
    } else {
        check("fig8/*", None, "results/fig8.csv not found".into());
    }

    // --- Fig 10 claims ----------------------------------------------------
    if let Some(rows) = load("results/fig10.csv") {
        // Claim: at the largest measured key range, PEBR's read throughput
        // plunges vs EBR while HP++ stays close.
        let max_range = rows.iter().map(|r| r.key_range).max().unwrap_or(0);
        let at = |scheme: &str| {
            rows.iter()
                .find(|r| r.key_range == max_range && r.scheme == scheme)
                .map(|r| r.throughput)
        };
        match (at("pebr"), at("ebr"), at("hp++")) {
            (Some(pebr), Some(ebr), Some(hpp)) if ebr > 0.0 => {
                let pebr_rel = pebr / ebr;
                let hpp_rel = hpp / ebr;
                // The plunge needs reads long enough to be ejected; below
                // ~2^21 keys (host-dependent) the curves coincide.
                let plunged = pebr_rel < 0.5;
                let hpp_ok = hpp_rel > 0.5;
                let outcome = if max_range >= (1 << 21) {
                    Some(plunged && hpp_ok)
                } else if plunged && hpp_ok {
                    Some(true)
                } else {
                    None // too small to trigger ejection; rerun with --paper
                };
                check(
                    "fig10/pebr-plunge",
                    outcome,
                    format!(
                        "at 2^{:.0}: PEBR/EBR = {pebr_rel:.3}, HP++/EBR = {hpp_rel:.2} \
                         (expect PEBR << 1, HP++ ~ 1; needs key range >= 2^21)",
                        (max_range as f64).log2()
                    ),
                );
            }
            _ => check("fig10/pebr-plunge", None, "missing rows".into()),
        }

        // Claim: HP++ keeps unreclaimed blocks orders of magnitude below
        // EBR under long-running reads.
        let garbage = |scheme: &str| {
            rows.iter()
                .filter(|r| r.scheme == scheme)
                .map(|r| r.peak_garbage)
                .max()
        };
        match (garbage("hp++"), garbage("ebr"), garbage("nr")) {
            (Some(hpp), Some(ebr), Some(nr)) => check(
                "fig10/robust-memory",
                Some(hpp * 10 <= ebr && ebr * 10 <= nr),
                format!("peak garbage hp++={hpp} << ebr={ebr} << nr={nr}"),
            ),
            _ => check("fig10/robust-memory", None, "missing rows".into()),
        }
    } else {
        check("fig10/*", None, "results/fig10.csv not found".into());
    }

    // --- Fig 11 claims ----------------------------------------------------
    if let Some(rows) = load("results/fig11.csv") {
        // Claim: NR unbounded (>> all reclaiming schemes); HP++ within a
        // constant factor of HP where both exist.
        let max_g = |scheme: &str| {
            rows.iter()
                .filter(|r| r.scheme == scheme)
                .map(|r| r.peak_garbage)
                .max()
        };
        match (max_g("nr"), max_g("hp++"), max_g("hp"), max_g("ebr")) {
            (Some(nr), Some(hpp), Some(hp), Some(ebr)) => {
                check(
                    "fig11/nr-unbounded",
                    Some(nr > 10 * hpp.max(hp).max(ebr)),
                    format!("nr={nr} >> reclaiming schemes (hp={hp}, hp++={hpp}, ebr={ebr})"),
                );
                check(
                    "fig11/hp++-tracks-hp",
                    Some(hpp <= 100 * hp.max(1)),
                    format!("hp++ peak {hpp} within a structure-dependent constant of hp {hp}"),
                );
            }
            _ => check("fig11/*", None, "missing rows".into()),
        }
    } else {
        check("fig11/*", None, "results/fig11.csv not found".into());
    }

    println!("\n(SKIP = not enough data at this scale; rerun the figure binary without --quick or with --paper.)");
}
