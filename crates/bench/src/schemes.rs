//! The workspace's shared scheme registry.
//!
//! The broad sweeps (fig8, fig10, fig11, table2, appendix) iterate
//! [`Scheme::ALL`] and filter through [`crate::applicable`], so they pick
//! up a new scheme automatically. The *curated* subsets used to be
//! hard-coded at each call site — fig9's scan storm, fig12's policy
//! ablation, bench_snapshot's fig8 headline, the robustness churn tests —
//! which is exactly how a newly added scheme would silently miss three of
//! the four. Every curated list now lives here, next to the one mapping
//! from a [`Scheme`] tag to its concrete [`GuardedScheme`] type, and the
//! tests below cross-check the lists against `applicable`.

use smr_common::GuardedScheme;

use crate::config::Scheme;

/// Schemes carrying a `PolicySlot`, i.e. the `SMR_POLICY` /
/// `SMR_POLICY_*` env latch applies to them: the fig12 policy-ablation
/// rows.
pub const POLICY: [Scheme; 5] = [
    Scheme::Hp,
    Scheme::Hpp,
    Scheme::Ebr,
    Scheme::Pebr,
    Scheme::Hyaline,
];

/// Quick (CI) subset of [`POLICY`]: the paper's headline scheme plus the
/// two reclamation-driver extremes (global epoch vs. snapshot-free
/// handover).
pub const POLICY_QUICK: [Scheme; 3] = [Scheme::Hpp, Scheme::Ebr, Scheme::Hyaline];

/// fig9 scan-storm rows: every scheme that can field the optimistic
/// HHSList (plain HP cannot — paper §2.3).
pub const SCAN_STORM: [Scheme; 4] = [Scheme::Ebr, Scheme::Pebr, Scheme::Hpp, Scheme::Hyaline];

/// The perf-trajectory gate's fig8 headline subset (`bench_snapshot`).
pub const FIG8_HEADLINE: [Scheme; 4] = [Scheme::Ebr, Scheme::Hp, Scheme::Hpp, Scheme::Hyaline];

/// Schemes implementing [`GuardedScheme`] (whole-structure critical
/// sections over `ds::guarded`): drives [`for_each_guarded`].
pub const GUARDED: [Scheme; 4] = [Scheme::Nr, Scheme::Ebr, Scheme::Pebr, Scheme::Hyaline];

/// A callback dispatched with the concrete scheme *type* for each entry of
/// [`GUARDED`] — the registry's tag → type mapping, written once.
pub trait GuardedVisitor {
    /// Called once per guarded scheme with its [`GuardedScheme`] type.
    fn visit<S: GuardedScheme>(&mut self, scheme: Scheme);
}

/// Visits every scheme in [`GUARDED`] with its concrete type, so
/// registry-driven tests (e.g. `tests/robustness.rs`) cover a new guarded
/// scheme the moment it lands here.
pub fn for_each_guarded(v: &mut impl GuardedVisitor) {
    for scheme in GUARDED {
        match scheme {
            Scheme::Nr => v.visit::<nr::Nr>(scheme),
            Scheme::Ebr => v.visit::<ebr::Ebr>(scheme),
            Scheme::Pebr => v.visit::<pebr::Pebr>(scheme),
            Scheme::Hyaline => v.visit::<hyaline::Hyaline>(scheme),
            other => unreachable!("{other} listed in GUARDED without a type mapping"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Ds;
    use crate::runner::applicable;

    #[test]
    fn curated_lists_are_applicable_subsets() {
        // Every curated entry must actually run on the structure its
        // consumer drives: scan-storm rows on HHSList, policy and headline
        // rows on the structures fig12/bench_snapshot use.
        for scheme in SCAN_STORM {
            assert!(applicable(Ds::HHSList, scheme), "{scheme} in SCAN_STORM");
        }
        for scheme in POLICY {
            assert!(applicable(Ds::HashMap, scheme), "{scheme} in POLICY");
        }
        for scheme in POLICY_QUICK {
            assert!(POLICY.contains(&scheme), "{scheme} quick but not full");
        }
        for scheme in FIG8_HEADLINE {
            assert!(applicable(Ds::HMList, scheme), "{scheme} in FIG8_HEADLINE");
        }
    }

    #[test]
    fn guarded_visitor_covers_the_whole_list() {
        struct Count(Vec<Scheme>);
        impl GuardedVisitor for Count {
            fn visit<S: smr_common::GuardedScheme>(&mut self, scheme: Scheme) {
                self.0.push(scheme);
            }
        }
        let mut c = Count(Vec::new());
        for_each_guarded(&mut c);
        assert_eq!(c.0, GUARDED);
    }
}
