//! Benchmark scenario configuration (paper §5 "Methodology").

use std::fmt;
use std::str::FromStr;
use std::time::Duration;

/// Which data structure to benchmark.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Ds {
    /// Harris–Michael list.
    HMList,
    /// Harris list + wait-free get.
    HHSList,
    /// Chaining hash map.
    HashMap,
    /// Herlihy–Shavit skiplist.
    SkipList,
    /// Natarajan–Mittal tree.
    NMTree,
    /// Ellen et al. tree.
    EFRBTree,
    /// Non-blocking Bonsai tree (COW path-copy).
    BonsaiTree,
    /// Treiber stack (bag adapter).
    Stack,
    /// Treiber stack + elimination array (bag adapter).
    ElimStack,
    /// Michael–Scott queue (bag adapter).
    Queue,
    /// Ladan-Mozes–Shavit optimistic queue (bag adapter).
    OptQueue,
}

impl Ds {
    /// All *map* structures, in the paper's presentation order. The bag
    /// structures (stacks/queues) are deliberately excluded: they are driven
    /// by the contention-machinery benches, not the paper's figure sweeps.
    pub const ALL: [Ds; 7] = [
        Ds::HMList,
        Ds::HHSList,
        Ds::HashMap,
        Ds::SkipList,
        Ds::NMTree,
        Ds::EFRBTree,
        Ds::BonsaiTree,
    ];

    /// The bag structures benchmarked by the contention-machinery section.
    pub const BAGS: [Ds; 4] = [Ds::Stack, Ds::ElimStack, Ds::Queue, Ds::OptQueue];

    /// Is this a bag (stack/queue) rather than a map?
    pub fn is_bag(self) -> bool {
        matches!(self, Ds::Stack | Ds::ElimStack | Ds::Queue | Ds::OptQueue)
    }

    /// Is this a list-shaped structure (paper: small range 16 / big 10K)?
    pub fn is_list(self) -> bool {
        matches!(self, Ds::HMList | Ds::HHSList)
    }

    /// The paper's big key range for this structure.
    pub fn big_range(self) -> u64 {
        if self.is_list() {
            10_000
        } else {
            100_000
        }
    }

    /// The paper's small (contended) key range for this structure.
    pub fn small_range(self) -> u64 {
        if self.is_list() {
            16
        } else {
            128
        }
    }
}

impl fmt::Display for Ds {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Ds::HMList => "hmlist",
            Ds::HHSList => "hhslist",
            Ds::HashMap => "hashmap",
            Ds::SkipList => "skiplist",
            Ds::NMTree => "nmtree",
            Ds::EFRBTree => "efrbtree",
            Ds::BonsaiTree => "bonsai",
            Ds::Stack => "stack",
            Ds::ElimStack => "elimstack",
            Ds::Queue => "queue",
            Ds::OptQueue => "optqueue",
        };
        f.write_str(s)
    }
}

impl FromStr for Ds {
    type Err = String;
    fn from_str(s: &str) -> Result<Self, String> {
        match s {
            "hmlist" => Ok(Ds::HMList),
            "hhslist" => Ok(Ds::HHSList),
            "hashmap" => Ok(Ds::HashMap),
            "skiplist" => Ok(Ds::SkipList),
            "nmtree" => Ok(Ds::NMTree),
            "efrbtree" => Ok(Ds::EFRBTree),
            "bonsai" => Ok(Ds::BonsaiTree),
            "stack" => Ok(Ds::Stack),
            "elimstack" => Ok(Ds::ElimStack),
            "queue" => Ok(Ds::Queue),
            "optqueue" => Ok(Ds::OptQueue),
            _ => Err(format!("unknown data structure: {s}")),
        }
    }
}

/// Which reclamation scheme to benchmark.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Scheme {
    /// No reclamation (leaking baseline).
    Nr,
    /// Epoch-based reclamation.
    Ebr,
    /// Pointer- and epoch-based reclamation.
    Pebr,
    /// Original hazard pointers.
    Hp,
    /// HP++ (this paper).
    Hpp,
    /// CDRC reference counting.
    Rc,
    /// Hyaline snapshot-free reclamation (reference-counted batch handover).
    Hyaline,
}

impl Scheme {
    /// All schemes, in the paper's legend order; post-paper additions
    /// (hyaline) append at the end so existing figure legends keep their
    /// positions.
    pub const ALL: [Scheme; 7] = [
        Scheme::Nr,
        Scheme::Ebr,
        Scheme::Pebr,
        Scheme::Hp,
        Scheme::Hpp,
        Scheme::Rc,
        Scheme::Hyaline,
    ];
}

impl fmt::Display for Scheme {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Scheme::Nr => "nr",
            Scheme::Ebr => "ebr",
            Scheme::Pebr => "pebr",
            Scheme::Hp => "hp",
            Scheme::Hpp => "hp++",
            Scheme::Rc => "rc",
            Scheme::Hyaline => "hyaline",
        };
        f.write_str(s)
    }
}

impl FromStr for Scheme {
    type Err = String;
    fn from_str(s: &str) -> Result<Self, String> {
        match s {
            "nr" => Ok(Scheme::Nr),
            "ebr" => Ok(Scheme::Ebr),
            "pebr" => Ok(Scheme::Pebr),
            "hp" => Ok(Scheme::Hp),
            "hp++" | "hpp" => Ok(Scheme::Hpp),
            "rc" => Ok(Scheme::Rc),
            "hyaline" => Ok(Scheme::Hyaline),
            _ => Err(format!("unknown scheme: {s}")),
        }
    }
}

/// Operation mix (paper §5: write-only, read-write, read-most).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Workload {
    /// 50% inserts, 50% deletes.
    WriteOnly,
    /// 50% reads, 25% inserts, 25% deletes.
    ReadWrite,
    /// 90% reads, 5% inserts, 5% deletes.
    ReadMost,
}

impl Workload {
    /// Percentage of get operations.
    pub fn read_pct(self) -> u32 {
        self.mix_pcts().0
    }

    /// The full (read, insert, remove) percentage split.
    pub fn mix_pcts(self) -> (u32, u32, u32) {
        match self {
            Workload::WriteOnly => (0, 50, 50),
            Workload::ReadWrite => (50, 25, 25),
            Workload::ReadMost => (90, 5, 5),
        }
    }
}

impl fmt::Display for Workload {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Workload::WriteOnly => "write-only",
            Workload::ReadWrite => "read-write",
            Workload::ReadMost => "read-most",
        };
        f.write_str(s)
    }
}

impl FromStr for Workload {
    type Err = String;
    fn from_str(s: &str) -> Result<Self, String> {
        match s {
            "write-only" | "wo" => Ok(Workload::WriteOnly),
            "read-write" | "rw" => Ok(Workload::ReadWrite),
            "read-most" | "rm" => Ok(Workload::ReadMost),
            _ => Err(format!("unknown workload: {s}")),
        }
    }
}

/// One benchmark scenario.
#[derive(Debug, Clone)]
pub struct Scenario {
    /// Data structure under test.
    pub ds: Ds,
    /// Reclamation scheme.
    pub scheme: Scheme,
    /// Worker thread count.
    pub threads: usize,
    /// Keys are drawn from `0..key_range`, Zipfian with exponent
    /// [`Scenario::zipf_theta`] (`0` = uniform, the paper's methodology).
    pub key_range: u64,
    /// Operation mix.
    pub workload: Workload,
    /// Zipfian skew of the key stream; `0.0` reproduces the seed harness's
    /// uniform draws bit-for-bit.
    pub zipf_theta: f64,
    /// Warmup window run before measurement starts (ops are executed but
    /// not counted, timed, or garbage-sampled).
    pub warmup: Duration,
    /// Measurement duration.
    pub duration: Duration,
    /// Long-running-reader mode (Fig. 10): `threads` readers plus
    /// `threads` head-churning writers; throughput counts reads only.
    pub long_running: bool,
}

impl Scenario {
    /// CSV header matching [`Scenario::csv_prefix`] plus the measured
    /// columns of `Stats`.
    pub const CSV_HEADER: &'static str = "ds,scheme,threads,key_range,workload,zipf_theta,\
         warmup_ms,throughput_mops,peak_garbage,avg_garbage,peak_rss_mb,\
         p50_ns,p90_ns,p99_ns,p999_ns";

    /// The scenario part of a CSV row.
    pub fn csv_prefix(&self) -> String {
        format!(
            "{},{},{},{},{},{},{}",
            self.ds,
            self.scheme,
            self.threads,
            self.key_range,
            self.workload,
            self.zipf_theta,
            self.warmup.as_millis()
        )
    }
}

/// Thread counts to sweep, scaled to this machine. The paper used
/// 1,8,16,…,80 on a 64-HW-thread box; we cap at 2× available parallelism
/// (the grey oversubscription region of Fig. 8).
pub fn thread_sweep(quick: bool) -> Vec<usize> {
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4);
    if quick {
        let mut v = vec![1];
        if cores >= 2 {
            v.push(2);
        }
        if cores >= 4 {
            v.push(4);
        }
        v
    } else {
        let mut v = vec![1];
        let step = (cores / 4).max(2);
        let mut t = step;
        while t <= cores * 2 {
            v.push(t);
            t += step;
        }
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ds_roundtrip() {
        for ds in Ds::ALL.into_iter().chain(Ds::BAGS) {
            assert_eq!(ds.to_string().parse::<Ds>().unwrap(), ds);
        }
        assert!("noexist".parse::<Ds>().is_err());
    }

    #[test]
    fn bags_are_disjoint_from_maps() {
        for bag in Ds::BAGS {
            assert!(bag.is_bag());
            assert!(!Ds::ALL.contains(&bag), "bags stay out of figure sweeps");
        }
        for ds in Ds::ALL {
            assert!(!ds.is_bag());
        }
    }

    #[test]
    fn scheme_roundtrip() {
        for scheme in Scheme::ALL {
            assert_eq!(scheme.to_string().parse::<Scheme>().unwrap(), scheme);
        }
        assert_eq!("hpp".parse::<Scheme>().unwrap(), Scheme::Hpp);
        assert!("gc".parse::<Scheme>().is_err());
    }

    #[test]
    fn workload_roundtrip_and_mix() {
        for (w, pct) in [
            (Workload::WriteOnly, 0),
            (Workload::ReadWrite, 50),
            (Workload::ReadMost, 90),
        ] {
            assert_eq!(w.to_string().parse::<Workload>().unwrap(), w);
            assert_eq!(w.read_pct(), pct);
            let (r, i, d) = w.mix_pcts();
            assert_eq!(r, pct);
            assert_eq!(r + i + d, 100);
            assert_eq!(i, d, "paper mixes split writes evenly");
        }
        assert_eq!("rw".parse::<Workload>().unwrap(), Workload::ReadWrite);
    }

    #[test]
    fn ranges_match_paper() {
        assert_eq!(Ds::HMList.big_range(), 10_000);
        assert_eq!(Ds::HMList.small_range(), 16);
        assert_eq!(Ds::NMTree.big_range(), 100_000);
        assert_eq!(Ds::NMTree.small_range(), 128);
    }

    #[test]
    fn thread_sweep_is_sane() {
        let quick = thread_sweep(true);
        assert!(!quick.is_empty() && quick[0] == 1);
        let full = thread_sweep(false);
        assert!(full.windows(2).all(|w| w[0] < w[1]), "must be increasing");
    }

    #[test]
    fn csv_prefix_shape() {
        let sc = Scenario {
            ds: Ds::HHSList,
            scheme: Scheme::Hpp,
            threads: 8,
            key_range: 10_000,
            workload: Workload::ReadWrite,
            zipf_theta: 0.99,
            warmup: Duration::from_millis(500),
            duration: Duration::from_secs(1),
            long_running: false,
        };
        assert_eq!(sc.csv_prefix(), "hhslist,hp++,8,10000,read-write,0.99,500");
        assert_eq!(
            Scenario::CSV_HEADER.split(',').count(),
            sc.csv_prefix().split(',').count() + 8
        );
    }
}
