//! Criterion anchor for Figure 10: latency of one long-running `get` over a
//! large list while a writer churns the head, per scheme.
//!
//! Full sweep: `cargo run --release -p bench --bin fig10`.

use std::sync::atomic::{AtomicBool, Ordering::Relaxed};

use criterion::{criterion_group, criterion_main, Criterion};
use rand::{rngs::SmallRng, Rng, SeedableRng};
use smr_common::ConcurrentMap;

const RANGE: u64 = 1 << 13;

fn long_get<M>(c: &mut Criterion, name: &str)
where
    M: ConcurrentMap<u64, u64> + Send + Sync,
{
    let map = M::new();
    {
        let mut h = map.handle();
        for k in (0..RANGE).step_by(2) {
            map.insert(&mut h, k, k);
        }
    }
    let stop = AtomicBool::new(false);
    std::thread::scope(|s| {
        // Head churn to force reclamation pressure during the reads.
        s.spawn(|| {
            let mut h = map.handle();
            let mut k = 0u64;
            while !stop.load(Relaxed) {
                map.insert(&mut h, k % 32, k);
                map.remove(&mut h, &(k % 32));
                k += 1;
            }
        });
        let mut h = map.handle();
        let mut rng = SmallRng::seed_from_u64(7);
        c.bench_function(name, |b| {
            b.iter(|| {
                let key = rng.gen_range(RANGE / 2..RANGE); // deep in the list
                std::hint::black_box(map.get(&mut h, &key))
            })
        });
        stop.store(true, Relaxed);
    });
}

fn bench(c: &mut Criterion) {
    long_get::<ds::guarded::HHSList<u64, u64, nr::Nr>>(c, "fig10/get/nr");
    long_get::<ds::guarded::HHSList<u64, u64, ebr::Ebr>>(c, "fig10/get/ebr");
    long_get::<ds::guarded::HHSList<u64, u64, pebr::Pebr>>(c, "fig10/get/pebr");
    long_get::<ds::hp::HMList<u64, u64>>(c, "fig10/get/hp");
    long_get::<ds::hpp::HHSList<u64, u64>>(c, "fig10/get/hp++");
    long_get::<ds::cdrc::HHSList<u64, u64>>(c, "fig10/get/rc");
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).measurement_time(std::time::Duration::from_secs(1));
    targets = bench
}
criterion_main!(benches);
