//! Criterion anchor for Figure 11: cost of churn under each scheme, with
//! the peak unreclaimed-block count printed alongside (criterion measures
//! time; the garbage reading is the figure's actual metric).
//!
//! Full sweep: `cargo run --release -p bench --bin fig11`.

use criterion::{criterion_group, criterion_main, Criterion};
use smr_common::ConcurrentMap;

const CHURN: u64 = 512;

fn churn_and_report<M>(c: &mut Criterion, name: &str)
where
    M: ConcurrentMap<u64, u64> + Send + Sync,
{
    let map = M::new();
    let mut h = map.handle();
    let base = smr_common::counters::garbage_now();
    let mut peak = 0u64;
    c.bench_function(name, |b| {
        b.iter(|| {
            for k in 0..CHURN {
                map.insert(&mut h, k % 64, k);
                map.remove(&mut h, &(k % 64));
            }
            peak = peak.max(smr_common::counters::garbage_now().saturating_sub(base));
        })
    });
    println!("{name}: peak unreclaimed blocks = {peak}");
}

fn bench(c: &mut Criterion) {
    churn_and_report::<ds::guarded::HMList<u64, u64, ebr::Ebr>>(c, "fig11/churn/ebr");
    churn_and_report::<ds::guarded::HMList<u64, u64, pebr::Pebr>>(c, "fig11/churn/pebr");
    churn_and_report::<ds::hp::HMList<u64, u64>>(c, "fig11/churn/hp");
    churn_and_report::<ds::hpp::HHSList<u64, u64>>(c, "fig11/churn/hp++");
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).measurement_time(std::time::Duration::from_millis(800));
    targets = bench
}
criterion_main!(benches);
