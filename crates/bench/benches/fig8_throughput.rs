//! Criterion anchor for Figure 8: per-operation cost of the read-write mix
//! on prefilled structures, per (structure, scheme), single-threaded.
//!
//! The multi-threaded sweep that regenerates the full figure is
//! `cargo run --release -p bench --bin fig8`; this bench pins down the
//! single-thread end of each curve with criterion-grade statistics.

use criterion::{criterion_group, criterion_main, Criterion};
use rand::{rngs::SmallRng, Rng, SeedableRng};
use smr_common::ConcurrentMap;

const RANGE: u64 = 1000;
const OPS: u64 = 256;

fn mixed_ops<M: ConcurrentMap<u64, u64>>(c: &mut Criterion, name: &str) {
    let map = M::new();
    let mut h = map.handle();
    for k in (0..RANGE).step_by(2) {
        map.insert(&mut h, k, k);
    }
    let mut rng = SmallRng::seed_from_u64(42);
    c.bench_function(name, |b| {
        b.iter(|| {
            for _ in 0..OPS {
                let key = rng.gen_range(0..RANGE);
                match rng.gen_range(0..4) {
                    0 => {
                        std::hint::black_box(map.insert(&mut h, key, key));
                    }
                    1 => {
                        std::hint::black_box(map.remove(&mut h, &key));
                    }
                    _ => {
                        std::hint::black_box(map.get(&mut h, &key));
                    }
                }
            }
        })
    });
}

fn bench(c: &mut Criterion) {
    mixed_ops::<ds::guarded::HMList<u64, u64, nr::Nr>>(c, "fig8/hmlist/nr");
    mixed_ops::<ds::guarded::HMList<u64, u64, ebr::Ebr>>(c, "fig8/hmlist/ebr");
    mixed_ops::<ds::guarded::HMList<u64, u64, pebr::Pebr>>(c, "fig8/hmlist/pebr");
    mixed_ops::<ds::hp::HMList<u64, u64>>(c, "fig8/hmlist/hp");
    mixed_ops::<ds::hpp::HMList<u64, u64>>(c, "fig8/hmlist/hp++");
    mixed_ops::<ds::cdrc::HMList<u64, u64>>(c, "fig8/hmlist/rc");

    mixed_ops::<ds::guarded::HHSList<u64, u64, ebr::Ebr>>(c, "fig8/hhslist/ebr");
    mixed_ops::<ds::hpp::HHSList<u64, u64>>(c, "fig8/hhslist/hp++");
    mixed_ops::<ds::cdrc::HHSList<u64, u64>>(c, "fig8/hhslist/rc");

    mixed_ops::<ds::hash_map::HashMap<u64, u64, ds::guarded::HHSList<u64, u64, ebr::Ebr>>>(
        c,
        "fig8/hashmap/ebr",
    );
    mixed_ops::<ds::hp::HashMap<u64, u64>>(c, "fig8/hashmap/hp");
    mixed_ops::<ds::hpp::HashMap<u64, u64>>(c, "fig8/hashmap/hp++");

    mixed_ops::<ds::guarded::SkipList<u64, u64, ebr::Ebr>>(c, "fig8/skiplist/ebr");
    mixed_ops::<ds::hp::SkipList<u64, u64>>(c, "fig8/skiplist/hp");
    mixed_ops::<ds::hpp::SkipList<u64, u64>>(c, "fig8/skiplist/hp++");

    mixed_ops::<ds::guarded::NMTree<u64, u64, ebr::Ebr>>(c, "fig8/nmtree/ebr");
    mixed_ops::<ds::hpp::NMTree<u64, u64>>(c, "fig8/nmtree/hp++");

    mixed_ops::<ds::guarded::EFRBTree<u64, u64, ebr::Ebr>>(c, "fig8/efrbtree/ebr");
    mixed_ops::<ds::hp::EFRBTree<u64, u64>>(c, "fig8/efrbtree/hp");
    mixed_ops::<ds::hpp::EFRBTree<u64, u64>>(c, "fig8/efrbtree/hp++");
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20).measurement_time(std::time::Duration::from_millis(800)).warm_up_time(std::time::Duration::from_millis(200));
    targets = bench
}
criterion_main!(benches);
