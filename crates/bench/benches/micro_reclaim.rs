//! Micro-benchmark of the retire→scan→free pipeline itself — the path the
//! adaptive reclaim threshold and the persistent scan scratch optimize.
//!
//! * `reclaim/hp/{1,4,16}` — plain HP retire throughput: each thread
//!   allocates and retires nodes back-to-back, so reclamation runs at the
//!   adaptive trigger (`max(RECLAIM_THRESHOLD, k·H)`) and every scan's cost
//!   is amortized over the retires between triggers.
//! * `reclaim/hp++/{1,4,16}` — HP++ unlink→invalidate→reclaim throughput:
//!   each thread unlinks single nodes through `try_unlink`, exercising the
//!   inline batch storage, the deferred invalidation flush, and the epoched
//!   reclamation.
//! * `reclaim/ebr/{1,4,16}` — EBR retire throughput: each thread pins,
//!   retires one node, and unpins, so the number folds in the pin/unpin
//!   fence cost, the generation-bag push, and the periodic epoch
//!   advance + bag expiry at the collect threshold.
//! * `reclaim/nr/{1,4,16}` — the no-reclamation floor: the same loop with
//!   leak-everything retirement, isolating allocator + harness cost.
//! * `pin/ebr/{1,4,16}` — pure pin/unpin cycles with no retirement: the
//!   EBR hot path the asymmetric-fence optimization targets. Run with and
//!   without `SMR_NO_MEMBARRIER=1` to price the light fence against the
//!   symmetric `SeqCst` fallback.
//!
//! Reported per-iteration time is per retire (resp. per unlink, per pin),
//! with the periodic scans folded in. Knobs: `HP_RECLAIM_K`,
//! `HPP_INVALIDATE_PERIOD`, `HPP_RECLAIM_PERIOD`, `EBR_COLLECT_THRESHOLD`,
//! `SMR_NO_MEMBARRIER`.

use std::sync::atomic::Ordering::{AcqRel, Acquire, Release};
use std::sync::Barrier;
use std::time::Instant;

use criterion::{criterion_group, criterion_main, Criterion};
use smr_common::{Atomic, Shared};

const THREADS: [usize; 3] = [1, 4, 16];

/// Runs `work` on `n` threads and returns the wall time of the parallel
/// region (started and stopped by barrier handshakes with the measuring
/// thread). Workers are pinned round-robin (`SMR_NO_PIN=1` opts out) so
/// cross-core migration does not add variance to the per-retire numbers.
fn timed<W: Fn(u64) + Sync>(n: usize, per_thread: u64, work: W) -> std::time::Duration {
    let barrier = Barrier::new(n + 1);
    std::thread::scope(|s| {
        for tid in 0..n {
            let barrier = &barrier;
            let work = &work;
            s.spawn(move || {
                bench::pin_thread(tid);
                barrier.wait();
                work(per_thread);
                barrier.wait();
            });
        }
        barrier.wait();
        let start = Instant::now();
        barrier.wait(); // all workers done
        start.elapsed()
    })
}

fn bench_hp(c: &mut Criterion) {
    let domain: &'static hp::Domain = Box::leak(Box::new(hp::Domain::new()));
    let mut g = c.benchmark_group("reclaim/hp");
    for &n in &THREADS {
        g.bench_function(&n.to_string(), |b| {
            b.iter_custom(|iters| {
                let per = iters.div_ceil(n as u64);
                timed(n, per, |per| {
                    let mut t = domain.register();
                    // A live (empty) slot per thread so scans have a
                    // realistic hazard array to snapshot.
                    let hp_slot = t.hazard_pointer();
                    for i in 0..per {
                        let p = Box::into_raw(Box::new(i));
                        unsafe { t.retire(p) };
                    }
                    t.recycle(hp_slot);
                })
            })
        });
    }
    g.finish();
}

struct N(Atomic<N>);

unsafe impl hp_plus::Invalidate for N {
    unsafe fn invalidate(ptr: *mut Self) {
        let n = unsafe { &*ptr };
        let cur = n.0.load(std::sync::atomic::Ordering::Relaxed);
        n.0.store(cur.with_tag(cur.tag() | 2), Release);
    }
}

fn bench_hpp(c: &mut Criterion) {
    let domain: &'static hp_plus::Domain = Box::leak(Box::new(hp_plus::Domain::new()));
    let mut g = c.benchmark_group("reclaim/hp++");
    for &n in &THREADS {
        g.bench_function(&n.to_string(), |b| {
            b.iter_custom(|iters| {
                let per = iters.div_ceil(n as u64);
                timed(n, per, |per| {
                    let mut t = domain.register();
                    let head: Atomic<N> = Atomic::null();
                    for _ in 0..per {
                        let node = Shared::from_owned(N(Atomic::null()));
                        head.store(node, Release);
                        let ok = unsafe {
                            t.try_unlink(&[], || {
                                head.compare_exchange(node, Shared::null(), AcqRel, Acquire)
                                    .ok()
                                    .map(|_| hp_plus::Unlinked::single(node))
                            })
                        };
                        assert!(ok);
                    }
                })
            })
        });
    }
    g.finish();
}

fn bench_ebr(c: &mut Criterion) {
    let collector: &'static ebr::Collector = Box::leak(Box::new(ebr::Collector::new()));
    let mut g = c.benchmark_group("reclaim/ebr");
    for &n in &THREADS {
        g.bench_function(&n.to_string(), |b| {
            b.iter_custom(|iters| {
                let per = iters.div_ceil(n as u64);
                timed(n, per, |per| {
                    let mut h = collector.register();
                    for i in 0..per {
                        let guard = h.pin();
                        let node = Shared::from_owned(i);
                        unsafe { guard.defer_destroy(node) };
                    }
                })
            })
        });
    }
    g.finish();
}

fn bench_nr(c: &mut Criterion) {
    use smr_common::{GuardedScheme, SchemeGuard};
    let mut g = c.benchmark_group("reclaim/nr");
    for &n in &THREADS {
        g.bench_function(&n.to_string(), |b| {
            b.iter_custom(|iters| {
                let per = iters.div_ceil(n as u64);
                timed(n, per, |per| {
                    for i in 0..per {
                        let guard = nr::Nr::pin(&mut nr::Nr::handle());
                        let node = Shared::from_owned(i);
                        unsafe { guard.defer_destroy(node) };
                    }
                })
            })
        });
    }
    g.finish();
}

fn bench_ebr_pin(c: &mut Criterion) {
    let collector: &'static ebr::Collector = Box::leak(Box::new(ebr::Collector::new()));
    let mut g = c.benchmark_group("pin/ebr");
    for &n in &THREADS {
        g.bench_function(&n.to_string(), |b| {
            b.iter_custom(|iters| {
                let per = iters.div_ceil(n as u64);
                timed(n, per, |per| {
                    let mut h = collector.register();
                    for _ in 0..per {
                        let guard = h.pin();
                        criterion::black_box(&guard);
                    }
                })
            })
        });
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20).measurement_time(std::time::Duration::from_secs(1));
    targets = bench_hp, bench_hpp, bench_ebr, bench_nr, bench_ebr_pin
}
criterion_main!(benches);
