//! Micro-benchmarks of the protection primitives themselves: the cost the
//! paper's §3.4 optimizations target.
//!
//! * `protect/hp` — original HP announce + validate (light fence).
//! * `protect/hp++` — HP++ `try_protect` (announce + invalidity check).
//! * `pin/ebr` — EBR critical-section entry/exit.
//! * `unlink/hp++` — `try_unlink` + deferred invalidation amortized cost.

use criterion::{criterion_group, criterion_main, Criterion};
use smr_common::{Atomic, Shared};

fn bench(c: &mut Criterion) {
    // HP protect+validate.
    {
        let domain: &'static hp::Domain = Box::leak(Box::new(hp::Domain::new()));
        let mut thread = domain.register();
        let hp_slot = thread.hazard_pointer();
        let atomic = Atomic::new(42u64);
        c.bench_function("protect/hp", |b| {
            b.iter(|| {
                let p = atomic.load(std::sync::atomic::Ordering::Acquire);
                std::hint::black_box(hp_slot.try_protect(p, &atomic).is_ok())
            })
        });
        unsafe {
            atomic.into_owned();
        }
    }

    // HP++ try_protect.
    {
        let domain: &'static hp_plus::Domain = Box::leak(Box::new(hp_plus::Domain::new()));
        let mut thread = domain.register();
        let hp_slot = thread.hazard_pointer();
        let atomic = Atomic::new(42u64);
        c.bench_function("protect/hp++", |b| {
            b.iter(|| {
                let mut p = atomic.load(std::sync::atomic::Ordering::Acquire).with_tag(0);
                std::hint::black_box(hp_plus::try_protect(&hp_slot, &mut p, &atomic, || false))
            })
        });
        unsafe {
            atomic.into_owned();
        }
    }

    // EBR pin/unpin.
    {
        let collector: &'static ebr::Collector = Box::leak(Box::new(ebr::Collector::new()));
        let mut handle = collector.register();
        c.bench_function("pin/ebr", |b| {
            b.iter(|| {
                let g = handle.pin();
                std::hint::black_box(&g);
            })
        });
    }

    // HP++ unlink + invalidation, amortized over a tiny chain workload.
    {
        struct N(Atomic<N>);
        unsafe impl hp_plus::Invalidate for N {
            unsafe fn invalidate(ptr: *mut Self) {
                let n = unsafe { &*ptr };
                let c = n.0.load(std::sync::atomic::Ordering::Relaxed);
                n.0.store(c.with_tag(2), std::sync::atomic::Ordering::Release);
            }
        }
        let domain: &'static hp_plus::Domain = Box::leak(Box::new(hp_plus::Domain::new()));
        let mut thread = domain.register();
        let head: Atomic<N> = Atomic::null();
        c.bench_function("unlink/hp++", |b| {
            b.iter(|| {
                let node = Shared::from_owned(N(Atomic::null()));
                head.store(node, std::sync::atomic::Ordering::Release);
                let ok = unsafe {
                    thread.try_unlink(&[], || {
                        head.compare_exchange(
                            node,
                            Shared::null(),
                            std::sync::atomic::Ordering::AcqRel,
                            std::sync::atomic::Ordering::Acquire,
                        )
                        .ok()
                        .map(|_| hp_plus::Unlinked::single(node))
                    })
                };
                std::hint::black_box(ok)
            })
        });
    }
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(30).measurement_time(std::time::Duration::from_secs(1));
    targets = bench
}
criterion_main!(benches);
