//! Criterion anchor for Figure 9: HP vs HP++ under heavy contention
//! (small key range), multi-threaded batches via `iter_custom`.
//!
//! Full sweep: `cargo run --release -p bench --bin fig9`.

use std::time::{Duration, Instant};

use criterion::{criterion_group, criterion_main, Criterion};
use rand::{rngs::SmallRng, Rng, SeedableRng};
use smr_common::ConcurrentMap;

const OPS_PER_THREAD: u64 = 2000;

fn contended_batch<M>(threads: usize, key_range: u64) -> Duration
where
    M: ConcurrentMap<u64, u64> + Send + Sync,
{
    let map = M::new();
    {
        let mut h = map.handle();
        for k in (0..key_range).step_by(2) {
            map.insert(&mut h, k, k);
        }
    }
    let start = Instant::now();
    std::thread::scope(|s| {
        for tid in 0..threads {
            let map = &map;
            s.spawn(move || {
                let mut h = map.handle();
                let mut rng = SmallRng::seed_from_u64(tid as u64);
                for _ in 0..OPS_PER_THREAD {
                    let key = rng.gen_range(0..key_range);
                    match rng.gen_range(0..4) {
                        0 => {
                            std::hint::black_box(map.insert(&mut h, key, key));
                        }
                        1 => {
                            std::hint::black_box(map.remove(&mut h, &key));
                        }
                        _ => {
                            std::hint::black_box(map.get(&mut h, &key));
                        }
                    }
                }
            });
        }
    });
    start.elapsed()
}

fn bench(c: &mut Criterion) {
    let threads = std::thread::available_parallelism()
        .map(|n| n.get().min(8))
        .unwrap_or(4);
    let mut group = c.benchmark_group("fig9");
    group.sample_size(10);

    // List category, small range (paper: 16): HP's best is HMList, HP++'s
    // best is HHSList — the contention crossover.
    group.bench_function("list-small/hp(hmlist)", |b| {
        b.iter_custom(|iters| {
            (0..iters)
                .map(|_| contended_batch::<ds::hp::HMList<u64, u64>>(threads, 16))
                .sum()
        })
    });
    group.bench_function("list-small/hp++(hhslist)", |b| {
        b.iter_custom(|iters| {
            (0..iters)
                .map(|_| contended_batch::<ds::hpp::HHSList<u64, u64>>(threads, 16))
                .sum()
        })
    });

    // Tree category, small range (paper: 128).
    group.bench_function("tree-small/hp(efrbtree)", |b| {
        b.iter_custom(|iters| {
            (0..iters)
                .map(|_| contended_batch::<ds::hp::EFRBTree<u64, u64>>(threads, 128))
                .sum()
        })
    });
    group.bench_function("tree-small/hp++(nmtree)", |b| {
        b.iter_custom(|iters| {
            (0..iters)
                .map(|_| contended_batch::<ds::hpp::NMTree<u64, u64>>(threads, 128))
                .sum()
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
