//! Asymmetric light/heavy fences (HP++ paper §3.4).
//!
//! The protection fast path (`TryProtect`) replaces its sequentially
//! consistent fence with a *light* fence — a compiler fence that emits no
//! instruction — while the reclamation slow path issues a *heavy*
//! process-wide fence that forces every other thread through a full barrier.
//! On Linux the heavy fence is the `membarrier(2)` syscall with
//! `MEMBARRIER_CMD_PRIVATE_EXPEDITED` (the equivalent of Windows'
//! `FlushProcessWriteBuffers`). Where `membarrier` is unavailable, both sides
//! fall back to plain `SeqCst` fences, which is always correct (the pair of
//! SC fences the paper starts from) just slower on the protection path.
//!
//! # The announce/observe protocol
//!
//! Every scheme in the workspace that uses this pair follows the same
//! Dekker-shaped protocol between a hot **announcer** and a rare
//! **observer**:
//!
//! * The announcer *publishes* a word (a hazard slot, a pinned-epoch state),
//!   issues [`light`], then *validates* by re-reading the shared source (the
//!   link the pointer came from, the global epoch). The
//!   [`announce_then_validate`] helper packages this side.
//! * The observer first issues [`heavy`], then reads every announcer's
//!   published word (a hazard scan, an epoch-advance check over all
//!   participants).
//!
//! The heavy fence forces a full barrier on every running thread, so it
//! cannot be the case that the observer misses an announcement *and* the
//! announcer's validating re-read misses the observer's prior update: one
//! side always sees the other, exactly as if both had issued `SeqCst`
//! fences. HP's `try_protect` (announce a hazard, validate the source link)
//! and EBR's `pin` (announce a pinned epoch, validate the global epoch)
//! are the two announcers; HP's hazard scan and EBR's `try_advance` are the
//! matching observers.
//!
//! Under Miri the strategy is forced to the symmetric fallback: Miri cannot
//! emulate the `membarrier` syscall, and the `SeqCst` pair keeps the
//! protocol checkable.

use std::sync::atomic::{compiler_fence, fence, Ordering};
use std::sync::OnceLock;

#[cfg(target_os = "linux")]
mod membarrier_impl {
    // Values from linux/membarrier.h.
    pub const MEMBARRIER_CMD_QUERY: libc::c_int = 0;
    pub const MEMBARRIER_CMD_PRIVATE_EXPEDITED: libc::c_int = 1 << 3;
    pub const MEMBARRIER_CMD_REGISTER_PRIVATE_EXPEDITED: libc::c_int = 1 << 4;

    fn sys_membarrier(cmd: libc::c_int) -> libc::c_long {
        unsafe { libc::syscall(libc::SYS_membarrier, cmd, 0 as libc::c_int) }
    }

    /// Registers for private-expedited membarrier; returns whether usable.
    pub fn try_register() -> bool {
        let supported = sys_membarrier(MEMBARRIER_CMD_QUERY);
        if supported < 0 {
            return false;
        }
        if supported & (MEMBARRIER_CMD_PRIVATE_EXPEDITED as libc::c_long) == 0 {
            return false;
        }
        sys_membarrier(MEMBARRIER_CMD_REGISTER_PRIVATE_EXPEDITED) >= 0
    }

    /// Issues the process-wide barrier. Must only be called after a
    /// successful [`try_register`].
    pub fn barrier() {
        let ret = sys_membarrier(MEMBARRIER_CMD_PRIVATE_EXPEDITED);
        debug_assert!(ret >= 0, "membarrier failed after registration");
    }
}

/// Which fence strategy is active for this process.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Strategy {
    /// Asymmetric: light = compiler fence, heavy = `membarrier(2)`.
    Asymmetric,
    /// Symmetric fallback: both sides are `SeqCst` fences.
    SeqCst,
}

fn strategy_cell() -> &'static OnceLock<Strategy> {
    static CELL: OnceLock<Strategy> = OnceLock::new();
    &CELL
}

/// The fence strategy in use (detected once, on first use).
///
/// Set `SMR_NO_MEMBARRIER=1` to force the symmetric fallback (useful for
/// benchmarking the cost of the optimization, and on kernels without
/// `membarrier`).
pub fn strategy() -> Strategy {
    *strategy_cell().get_or_init(|| {
        // Miri has no membarrier shim; the symmetric fallback keeps the
        // fence protocol exercisable under the interpreter.
        if cfg!(miri) || std::env::var_os("SMR_NO_MEMBARRIER").is_some() {
            return Strategy::SeqCst;
        }
        #[cfg(target_os = "linux")]
        {
            if membarrier_impl::try_register() {
                return Strategy::Asymmetric;
            }
        }
        Strategy::SeqCst
    })
}

/// The light fence issued on the protection fast path (per `TryProtect`).
///
/// With the asymmetric strategy this compiles to nothing (it only prevents
/// compiler reordering); the matching heavy fence on the reclamation side
/// supplies the ordering.
#[inline]
pub fn light() {
    match strategy() {
        Strategy::Asymmetric => compiler_fence(Ordering::SeqCst),
        Strategy::SeqCst => fence(Ordering::SeqCst),
    }
}

/// The announcer side of the announce/observe protocol (module docs):
/// `publish` a word, issue the [`light`] fence, then run the validating
/// re-read `validate` and return its result.
///
/// `publish` must be a store the matching observer reads after its
/// [`heavy`] fence; `validate` must re-read the shared source the observer
/// updates, so a failed validation can be retried by the caller.
#[inline]
pub fn announce_then_validate<R>(publish: impl FnOnce(), validate: impl FnOnce() -> R) -> R {
    publish();
    light();
    validate()
}

/// The heavy process-wide fence issued on the reclamation slow path.
#[inline]
pub fn heavy() {
    match strategy() {
        Strategy::Asymmetric => {
            #[cfg(target_os = "linux")]
            membarrier_impl::barrier();
            #[cfg(not(target_os = "linux"))]
            fence(Ordering::SeqCst);
        }
        Strategy::SeqCst => fence(Ordering::SeqCst),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strategy_is_stable() {
        let a = strategy();
        let b = strategy();
        assert_eq!(a, b);
    }

    #[test]
    fn fences_do_not_crash() {
        for _ in 0..100 {
            light();
        }
        for _ in 0..10 {
            heavy();
        }
    }

    #[test]
    fn heavy_fence_orders_across_threads() {
        // Smoke Dekker-style test: with a heavy fence on one side and light
        // fences on the other, at least one side must see the other's write.
        use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering::*};
        use std::sync::Arc;

        let x = Arc::new(AtomicBool::new(false));
        let y = Arc::new(AtomicBool::new(false));
        let both_missed = Arc::new(AtomicUsize::new(0));

        let rounds = if cfg!(miri) { 8 } else { 200 };
        for _ in 0..rounds {
            x.store(false, Relaxed);
            y.store(false, Relaxed);
            let (x1, y1, x2, y2) = (x.clone(), y.clone(), x.clone(), y.clone());
            let t1 = std::thread::spawn(move || {
                x1.store(true, Relaxed);
                super::light();
                y1.load(Relaxed)
            });
            let t2 = std::thread::spawn(move || {
                y2.store(true, Relaxed);
                super::heavy();
                x2.load(Relaxed)
            });
            let saw_y = t1.join().unwrap();
            let saw_x = t2.join().unwrap();
            if !saw_x && !saw_y {
                both_missed.fetch_add(1, Relaxed);
            }
        }
        // Note: this property is only guaranteed when the fences actually run
        // concurrently; with spawn/join each thread usually finishes alone,
        // so we just assert the test ran. The real ordering guarantees are
        // exercised by the scheme stress tests.
        assert!(both_missed.load(Relaxed) <= rounds);
    }
}
