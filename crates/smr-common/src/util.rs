//! Small utilities shared by the scheme crates.

use std::ops::{Deref, DerefMut};

/// Pads and aligns a value to 128 bytes to avoid false sharing.
///
/// 128 rather than 64 because recent Intel parts prefetch cache-line pairs.
#[repr(align(128))]
#[derive(Debug, Default)]
pub struct CachePadded<T> {
    value: T,
}

impl<T> CachePadded<T> {
    /// Wraps `value`.
    pub const fn new(value: T) -> Self {
        Self { value }
    }
}

impl<T> Deref for CachePadded<T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.value
    }
}

impl<T> DerefMut for CachePadded<T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.value
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn padding_alignment() {
        assert_eq!(std::mem::align_of::<CachePadded<u8>>(), 128);
        assert!(std::mem::size_of::<CachePadded<u8>>() >= 128);
        let c = CachePadded::new(42u32);
        assert_eq!(*c, 42);
    }
}
