//! A lock-free intrusive registry of per-thread records.
//!
//! Reclamation schemes keep one record per registered thread (an epoch
//! state, a hazard block, …) that reclaimers must enumerate. The classic
//! implementation — a `Mutex<Vec<Arc<Record>>>` — serializes registration
//! against every scan and makes the scan itself blocking. [`Registry`]
//! replaces it with a singly-linked intrusive list:
//!
//! * **Insert** allocates a cache-padded [`Node`] and pushes it at the head
//!   with a CAS loop — lock-free, no traversal.
//! * **Delete** ([`Registry::delete`]) only *marks* the node by setting the
//!   low tag bit of its `next` pointer (Harris-style logical deletion) — one
//!   `fetch_or`, no traversal.
//! * **Traverse** visits every live record and opportunistically unlinks
//!   marked nodes it passes. The mark-before-unlink protocol makes the
//!   unlink CAS fail whenever the predecessor has itself been deleted, so a
//!   node is handed to the `unlinked` callback **exactly once**. On any CAS
//!   failure the traversal restarts from the head (the list is short: one
//!   node per registered thread).
//!
//! # Reclamation contract
//!
//! The registry does not free unlinked nodes itself: a concurrent traverser
//! may still be parked on one. The `unlinked` callback receives ownership of
//! the raw node and must defer the free until no traverser started before
//! the unlink can still be running — e.g. by retiring the node through the
//! reclamation scheme the registry serves (EBR retires registry nodes
//! through its own epoch bags), or by leaking it. [`Registry`]'s `Drop`
//! frees whatever is still linked, so a registry whose unlinked nodes are
//! retired elsewhere never double-frees.

use std::sync::atomic::{AtomicUsize, Ordering};

use crate::atomic::{Atomic, Shared};

/// Tag bit on a node's `next` pointer marking the node logically deleted.
const DELETED: usize = 1;

/// A registry record: the caller's data plus the intrusive link.
///
/// Padded to a cache-line pair so per-thread hot state (epoch words, hazard
/// slots) in one record never false-shares with a neighbor's.
#[repr(align(128))]
pub struct Node<T> {
    data: T,
    /// Successor pointer; the low bit marks *this* node deleted.
    next: Atomic<Node<T>>,
}

impl<T> Node<T> {
    /// The caller's record data.
    #[inline]
    pub fn data(&self) -> &T {
        &self.data
    }
}

/// A lock-free grow/shrink registry list. See the module docs.
pub struct Registry<T> {
    head: Atomic<Node<T>>,
    /// Number of inserted-and-not-deleted records (approximate under
    /// concurrency; exact when quiescent). O(1) for adaptive thresholds.
    live: AtomicUsize,
}

impl<T> Default for Registry<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> Registry<T> {
    /// An empty registry.
    pub const fn new() -> Self {
        Self {
            head: Atomic::null(),
            live: AtomicUsize::new(0),
        }
    }

    /// Number of live (inserted, not yet deleted) records.
    ///
    /// A single relaxed load; concurrent inserts/deletes make it
    /// approximate, which is fine for its consumers (adaptive collect
    /// thresholds, diagnostics).
    #[inline]
    pub fn live(&self) -> usize {
        self.live.load(Ordering::Relaxed)
    }

    /// Inserts a new record at the head, returning its node.
    ///
    /// Lock-free: a CAS loop on the head pointer only. The returned pointer
    /// stays valid at least until [`Registry::delete`] is called on it.
    pub fn insert(&self, data: T) -> *const Node<T> {
        let node = Shared::from_owned(Node {
            data,
            next: Atomic::null(),
        });
        // Valid: `from_owned` never returns null.
        let node_ref = unsafe { node.deref() };
        let mut head = self.head.load(Ordering::Relaxed);
        loop {
            node_ref.next.store(head, Ordering::Relaxed);
            // Release publishes `data` and the `next` link to traversers.
            match self
                .head
                .compare_exchange(head, node, Ordering::Release, Ordering::Relaxed)
            {
                Ok(_) => {
                    self.live.fetch_add(1, Ordering::Relaxed);
                    return node.as_raw();
                }
                Err(h) => head = h,
            }
        }
    }

    /// Marks `node` logically deleted; a later traversal unlinks it.
    ///
    /// # Safety
    /// `node` must have come from this registry's [`insert`](Self::insert)
    /// and must not have been deleted before. The caller must not touch the
    /// node's data afterwards.
    pub unsafe fn delete(&self, node: *const Node<T>) {
        let node = unsafe { &*node };
        let prev = node.next.fetch_or_tag(DELETED, Ordering::AcqRel);
        debug_assert_eq!(prev.tag() & DELETED, 0, "registry node deleted twice");
        self.live.fetch_sub(1, Ordering::Relaxed);
    }

    /// Visits every live record; unlinks deleted nodes along the way.
    ///
    /// `visit` is called once per live record (a record deleted concurrently
    /// may or may not be visited); returning `false` aborts the traversal
    /// and makes `traverse` return `false`. Each node this call unlinks is
    /// passed to `unlinked` exactly once, transferring ownership — see the
    /// module docs for when it may be freed.
    ///
    /// Lock-free: restarts from the head when an unlink CAS loses a race,
    /// which requires another thread to have made progress.
    pub fn traverse(
        &self,
        mut visit: impl FnMut(&T) -> bool,
        mut unlinked: impl FnMut(*mut Node<T>),
    ) -> bool {
        'restart: loop {
            let mut prev: &Atomic<Node<T>> = &self.head;
            let mut curr = prev.load(Ordering::Acquire);
            loop {
                // `curr` is always untagged: head and unlink stores only
                // publish untagged pointers, and the marked branch below
                // strips the tag before following.
                let Some(node) = (unsafe { curr.as_ref() }) else {
                    return true;
                };
                let next = node.next.load(Ordering::Acquire);
                if next.tag() & DELETED != 0 {
                    let succ = next.with_tag(0);
                    // Expecting the *untagged* `curr` means this CAS fails
                    // if `prev` was itself marked (its value is now tagged),
                    // so an already-unlinked predecessor can never be used
                    // to unlink `curr` a second time.
                    match prev.compare_exchange(curr, succ, Ordering::AcqRel, Ordering::Relaxed) {
                        Ok(_) => {
                            unlinked(curr.as_raw());
                            curr = succ;
                        }
                        Err(_) => continue 'restart,
                    }
                } else {
                    if !visit(&node.data) {
                        return false;
                    }
                    prev = &node.next;
                    curr = next;
                }
            }
        }
    }
}

impl<T> Registry<T> {
    /// Visits every live record without unlinking marked nodes.
    ///
    /// Unlike [`Registry::traverse`] this walk performs no CAS and never
    /// restarts, so each record is visited **at most once** — the property
    /// hyaline's handover push pass needs to bound the batch nodes it
    /// consumes (a restarting traversal could push twice to one slot).
    /// Records marked deleted are skipped but left linked.
    pub fn traverse_live(&self, mut visit: impl FnMut(&T) -> bool) -> bool {
        let mut curr = self.head.load(Ordering::Acquire);
        while let Some(node) = unsafe { curr.as_ref() } {
            let next = node.next.load(Ordering::Acquire);
            if next.tag() & DELETED == 0 && !visit(&node.data) {
                return false;
            }
            curr = next.with_tag(0);
        }
        true
    }
}

impl<T> Drop for Registry<T> {
    fn drop(&mut self) {
        // Exclusive access: free everything still linked (live or marked).
        // Nodes already unlinked by `traverse` are owned by the `unlinked`
        // callback's recipient, not by the list.
        let mut curr = self.head.load_mut();
        while !curr.is_null() {
            let node = unsafe { Box::from_raw(curr.as_raw()) };
            curr = node.next.load(Ordering::Relaxed);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering::*};
    use std::sync::Mutex;

    fn collect_live(reg: &Registry<u64>) -> Vec<u64> {
        let mut seen = Vec::new();
        assert!(reg.traverse(
            |v| {
                seen.push(*v);
                true
            },
            |_| panic!("nothing to unlink"),
        ));
        seen.sort_unstable();
        seen
    }

    #[test]
    fn insert_and_traverse() {
        let reg = Registry::new();
        for i in 0..10u64 {
            reg.insert(i);
        }
        assert_eq!(reg.live(), 10);
        assert_eq!(collect_live(&reg), (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn traverse_aborts_on_false() {
        let reg = Registry::new();
        for i in 0..4u64 {
            reg.insert(i);
        }
        let mut visited = 0;
        assert!(!reg.traverse(
            |_| {
                visited += 1;
                visited < 2
            },
            |_| {},
        ));
        assert_eq!(visited, 2);
    }

    #[test]
    fn delete_unlinks_exactly_once() {
        let reg = Registry::new();
        let nodes: Vec<_> = (0..6u64).map(|i| reg.insert(i)).collect();
        // Delete the even records.
        for &n in nodes.iter().step_by(2) {
            unsafe { reg.delete(n) };
        }
        assert_eq!(reg.live(), 3);
        let mut unlinked = Vec::new();
        assert!(reg.traverse(
            |v| {
                assert_eq!(v % 2, 1, "deleted record visited");
                true
            },
            |n| unlinked.push(n),
        ));
        assert_eq!(unlinked.len(), 3);
        // A second traversal finds nothing left to unlink.
        assert_eq!(collect_live(&reg), vec![1, 3, 5]);
        // Single-threaded test: no concurrent traverser, free immediately.
        for n in unlinked {
            drop(unsafe { Box::from_raw(n) });
        }
    }

    #[test]
    fn churn_under_concurrent_traversal() {
        // Writers register/unregister in a loop while traversers scan and
        // unlink. Every deleted node must be unlinked exactly once across
        // all traversers, and nothing may be freed until all traversals are
        // done (the test models the grace period by collecting unlinked
        // nodes and freeing them after join).
        let reg: &'static Registry<u64> = Box::leak(Box::new(Registry::new()));
        let unlinked: &'static Mutex<Vec<usize>> = Box::leak(Box::new(Mutex::new(Vec::new())));
        let deletes: &'static AtomicUsize = Box::leak(Box::new(AtomicUsize::new(0)));

        let writers = 4;
        let cycles: usize = if cfg!(miri) { 12 } else { 400 };
        std::thread::scope(|s| {
            for t in 0..writers {
                s.spawn(move || {
                    for i in 0..cycles {
                        let node = reg.insert((t * cycles + i) as u64);
                        unsafe { reg.delete(node) };
                        deletes.fetch_add(1, Relaxed);
                    }
                });
            }
            for _ in 0..2 {
                s.spawn(move || loop {
                    let mut batch = Vec::new();
                    reg.traverse(|_| true, |n| batch.push(n as usize));
                    unlinked.lock().unwrap().extend(batch);
                    if deletes.load(Relaxed) == writers * cycles {
                        break;
                    }
                    std::thread::yield_now();
                });
            }
        });
        // Final sweep picks up any stragglers marked after the last scan.
        let mut batch = Vec::new();
        reg.traverse(|_| true, |n| batch.push(n as usize));
        let mut all = unlinked.lock().unwrap();
        all.extend(batch);
        all.sort_unstable();
        let before_dedup = all.len();
        all.dedup();
        assert_eq!(before_dedup, all.len(), "a node was unlinked twice");
        assert_eq!(all.len(), writers * cycles, "a deleted node was lost");
        assert_eq!(reg.live(), 0);
        for &n in all.iter() {
            drop(unsafe { Box::from_raw(n as *mut Node<u64>) });
        }
    }

    #[test]
    fn drop_frees_marked_and_live() {
        // Covered by Miri's leak checking in spirit; here we just make sure
        // Drop walks through tagged links without crashing.
        let reg = Registry::new();
        let a = reg.insert(1u64);
        reg.insert(2u64);
        unsafe { reg.delete(a) };
        drop(reg);
    }
}
