//! Pluggable reclamation-trigger policies.
//!
//! Every scheme in the workspace amortizes its retire→scan→free cost the
//! same way: retirement is O(1) and a *trigger predicate* decides when to
//! pay for a scan. Before this module each scheme hard-coded its own
//! predicate (hp: `retired ≥ max(128, k·H)`; ebr: `bags ≥ max(floor,
//! 8·participants)`; hp-plus: `unlinks % 128 == 0`; pebr: `garbage ≥ 128`).
//! The predicate — not the scan mechanics — dominates the
//! throughput/memory-bound trade-off, so it is now a strategy object:
//!
//! | policy | trigger | memory bound |
//! |---|---|---|
//! | [`Eager`] | every retirement | tightest (≈ 0 idle garbage) |
//! | [`Capped`] | the legacy formula, bit-for-bit | `k·H + floor` |
//! | [`TimedCapped`] | [`Capped`] **or** age > timeout | `k·H + floor` |
//! | [`Adaptive`] | [`Capped`] with a watchdog-driven threshold | `k·H + floor` |
//!
//! [`Adaptive`] closes the loop that the PR-4
//! [`GarbageWatchdog`](crate::watchdog::GarbageWatchdog) opened: while the
//! watchdog reports `Healthy`, each completed scan doubles the effective
//! threshold (fewer, better-amortized scans on read-heavy steady state);
//! the moment it reports `DegradedBounded`/`GrowingUnbounded`, the
//! threshold snaps to its floor (scan at every opportunity under a write
//! storm). The effective threshold is clamped to the derived Table-1 cap
//! `k·slots + floor` *by construction*, so relaxing never voids the
//! scheme's published bound.
//!
//! A scheme consults its policy through a [`PolicySlot`] embedded in its
//! domain/collector: installable once per domain ([`PolicySlot::install`]),
//! defaulting to [`PolicyConfig::from_env`]-built [`Capped`] with the
//! scheme's legacy parameters — so with no policy env vars set, trigger
//! decisions are bit-identical to the pre-policy code.

use std::sync::atomic::{AtomicI8, AtomicU8, Ordering};
use std::sync::{Arc, OnceLock};

use crate::counters;
use crate::watchdog::WatchdogStatus;

/// What a policy tells the scheme to do right now.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Decision {
    /// Pay for a scan (hp scan, ebr collect, hpp reclaim, …) now.
    Reclaim,
    /// Defer; keep accumulating garbage.
    Skip,
}

/// A payload-free mirror of [`WatchdogStatus`], cheap enough to store in an
/// atomic and feed back into trigger decisions.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum Verdict {
    /// No watchdog has reported yet (treated as healthy for relaxation:
    /// bench harnesses without a watchdog still amortize).
    #[default]
    Unknown,
    /// Garbage within bound, collector making progress.
    Healthy,
    /// Stalled but within the derived bound.
    DegradedBounded,
    /// Stalled and past the bound — the Table-1 failure mode.
    GrowingUnbounded,
}

impl Verdict {
    /// Encodes the verdict for storage in an atomic (used by [`PolicySlot`]
    /// and by the kv-service per-shard health word).
    pub fn encode(self) -> u8 {
        match self {
            Verdict::Unknown => 0,
            Verdict::Healthy => 1,
            Verdict::DegradedBounded => 2,
            Verdict::GrowingUnbounded => 3,
        }
    }

    /// Inverse of [`encode`](Self::encode); unknown raw values decode to
    /// [`Verdict::Unknown`].
    pub fn decode(raw: u8) -> Self {
        match raw {
            1 => Verdict::Healthy,
            2 => Verdict::DegradedBounded,
            3 => Verdict::GrowingUnbounded,
            _ => Verdict::Unknown,
        }
    }

    /// Whether this verdict signals memory pressure (tighten) rather than
    /// health (relax).
    pub fn is_pressure(self) -> bool {
        matches!(self, Verdict::DegradedBounded | Verdict::GrowingUnbounded)
    }
}

impl From<&WatchdogStatus> for Verdict {
    fn from(status: &WatchdogStatus) -> Self {
        match status {
            WatchdogStatus::Healthy => Verdict::Healthy,
            WatchdogStatus::DegradedBounded { .. } => Verdict::DegradedBounded,
            WatchdogStatus::GrowingUnbounded { .. } => Verdict::GrowingUnbounded,
        }
    }
}

/// The facts a scheme hands its policy at each trigger opportunity.
///
/// Schemes fill in the fields they track and zero the rest: hp/ebr/pebr
/// report `retired`+`slots`, hp-plus reports `ops` (its unlink counter),
/// and `since_scan_ns` is only sampled when the installed policy says it
/// [`wants_time`](ReclaimPolicy::wants_time) — keeping clock reads off the
/// retire fast path for the policies that never look at them.
#[derive(Clone, Copy, Debug, Default)]
pub struct RetireStats {
    /// Blocks retired to the calling thread and not yet reclaimed.
    pub retired: usize,
    /// Scheme-wide protection capacity: hazard slots for HP-family schemes,
    /// live participants for epoch schemes.
    pub slots: usize,
    /// Monotonic per-thread operation count for cadence-based triggers
    /// (HP++ unlink count); 0 when the scheme has no such counter.
    pub ops: u64,
    /// Nanoseconds since this thread's last completed scan (0 when the
    /// policy does not want time).
    pub since_scan_ns: u64,
    /// Latest watchdog verdict reported to the domain.
    pub verdict: Verdict,
}

/// A reclamation-trigger strategy.
///
/// Implementations must be cheap — `should_reclaim` runs on every
/// retirement — and thread-safe: one policy instance is shared by every
/// thread registered with a domain.
pub trait ReclaimPolicy: Send + Sync {
    /// Decides whether the calling thread should scan now.
    fn should_reclaim(&self, stats: &RetireStats) -> Decision;

    /// Feedback hook: the domain's watchdog produced a verdict.
    fn on_verdict(&self, _verdict: Verdict) {}

    /// Whether the policy reads [`RetireStats::since_scan_ns`] — schemes
    /// skip the clock read when this is false.
    fn wants_time(&self) -> bool {
        false
    }

    /// Stable lower-case name for CSV columns and logs.
    fn name(&self) -> &'static str;
}

/// Queries `policy` and records the decision in the global counters
/// ([`counters::policy_scans_forced`] / [`counters::policy_scans_skipped`]),
/// so benches and the fault matrix can assert policy behavior instead of
/// inferring it from garbage peaks.
#[inline]
pub fn decide(policy: &dyn ReclaimPolicy, stats: &RetireStats) -> Decision {
    let d = policy.should_reclaim(stats);
    match d {
        Decision::Reclaim => counters::incr_policy_scan_forced(),
        Decision::Skip => counters::incr_policy_scan_skipped(),
    }
    d
}

/// Reclaim at every opportunity: the zero-garbage, maximum-overhead corner
/// of the ablation (fig12's lower bound on batching benefit).
#[derive(Clone, Copy, Debug, Default)]
pub struct Eager;

impl ReclaimPolicy for Eager {
    fn should_reclaim(&self, _stats: &RetireStats) -> Decision {
        Decision::Reclaim
    }

    fn name(&self) -> &'static str {
        "eager"
    }
}

/// The legacy trigger formulas, bit-for-bit, as one parameterization.
///
/// Fires when **either** enabled branch says so:
///
/// * count branch (enabled when `floor > 0 || k > 0`):
///   `retired ≥ max(floor, k·slots)` — hp (`floor=128, k=HP_RECLAIM_K`),
///   ebr (`floor=EBR_COLLECT_THRESHOLD, k=8` over participants), pebr
///   (`floor=128, k=0`);
/// * cadence branch (enabled when `period > 0`):
///   `ops > 0 && ops % period == 0` — hp-plus's unlink-count reclaim
///   cadence (`period=HPP_RECLAIM_PERIOD`).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Capped {
    /// Minimum retired count before the count branch can fire.
    pub floor: usize,
    /// Hazard-slot multiplier of the count branch.
    pub k: usize,
    /// Operation cadence of the cadence branch (0 disables it).
    pub period: u64,
}

impl Capped {
    /// Count-branch trigger threshold at `slots` protection slots.
    pub fn threshold(&self, slots: usize) -> usize {
        self.floor.max(self.k.saturating_mul(slots))
    }

    /// The derived worst-case cap `k·slots + floor` (the Table-1 bound the
    /// adaptive policy must respect when relaxing).
    pub fn bound(&self, slots: usize) -> usize {
        self.k.saturating_mul(slots).saturating_add(self.floor)
    }

    fn count_armed(&self) -> bool {
        self.floor > 0 || self.k > 0
    }

    fn fires(&self, stats: &RetireStats, threshold: usize, period: u64) -> bool {
        let by_count = self.count_armed() && stats.retired >= threshold;
        let by_cadence = period > 0 && stats.ops > 0 && stats.ops.is_multiple_of(period);
        by_count || by_cadence
    }
}

impl ReclaimPolicy for Capped {
    fn should_reclaim(&self, stats: &RetireStats) -> Decision {
        if self.fires(stats, self.threshold(stats.slots), self.period) {
            Decision::Reclaim
        } else {
            Decision::Skip
        }
    }

    fn name(&self) -> &'static str {
        "capped"
    }
}

/// [`Capped`] plus a sync timeout: a scan also fires when anything has been
/// sitting retired longer than `timeout_ns` (atom_box's `TimeCapped`
/// strategy). Buys latency-bounded reclamation for bursty workloads that
/// never reach the count threshold between idle stretches.
#[derive(Clone, Copy, Debug)]
pub struct TimedCapped {
    /// The count/cadence trigger that still applies.
    pub capped: Capped,
    /// Maximum age of unscanned garbage before a scan is forced.
    pub timeout_ns: u64,
}

impl ReclaimPolicy for TimedCapped {
    fn should_reclaim(&self, stats: &RetireStats) -> Decision {
        let timed_out = stats.retired > 0 && stats.since_scan_ns >= self.timeout_ns;
        if timed_out || self.capped.fires(stats, self.capped.threshold(stats.slots), self.capped.period) {
            Decision::Reclaim
        } else {
            Decision::Skip
        }
    }

    fn wants_time(&self) -> bool {
        true
    }

    fn name(&self) -> &'static str {
        "timed"
    }
}

/// How far [`Adaptive`] may tighten below the base threshold (2³ = 8×).
const ADAPTIVE_LEVEL_MIN: i8 = -3;
/// How far [`Adaptive`] may relax above it — the clamp to the derived cap
/// makes higher levels indistinguishable anyway.
const ADAPTIVE_LEVEL_MAX: i8 = 2;
/// Tightening never pushes a count threshold below this (a scan per retire
/// costs more than it frees) …
const ADAPTIVE_MIN_THRESHOLD: usize = 16;
/// … nor a cadence period below this.
const ADAPTIVE_MIN_PERIOD: u64 = 8;

/// [`Capped`] whose effective threshold breathes with the watchdog verdict.
///
/// A signed level shifts the base threshold geometrically:
/// `eff = clamp(base · 2^level, floor-side minimum, k·slots + floor)`.
/// [`Adaptive::on_verdict`] snaps the level to [`ADAPTIVE_LEVEL_MIN`] on
/// any pressure verdict (tighten within one watchdog sample); each scan
/// that fires while the verdict is `Healthy`/`Unknown` raises the level by
/// one ([`counters::adaptive_relaxes`]). The upper clamp is the same
/// `k·H + floor` expression the robustness tests derive from Table 1, so
/// relaxation can never grow past the scheme's published bound.
#[derive(Debug)]
pub struct Adaptive {
    /// Base (legacy) trigger this policy breathes around.
    pub base: Capped,
    level: AtomicI8,
}

impl Adaptive {
    /// Starts at the base threshold (level 0).
    pub fn new(base: Capped) -> Self {
        Self {
            base,
            level: AtomicI8::new(0),
        }
    }

    /// Current adaptation level (tests only; negative = tightened).
    pub fn level(&self) -> i8 {
        self.level.load(Ordering::Relaxed)
    }

    /// Effective count threshold at `slots`, after applying the level and
    /// clamping into `[min(base, 16).max(1), k·slots + floor]`.
    pub fn effective_threshold(&self, slots: usize) -> usize {
        let base = self.base.threshold(slots);
        let lvl = self.level.load(Ordering::Relaxed);
        let shifted = if lvl >= 0 {
            base.saturating_shl(lvl as u32)
        } else {
            base >> (-lvl) as u32
        };
        let lo = base.clamp(1, ADAPTIVE_MIN_THRESHOLD);
        let hi = self.base.bound(slots).max(lo);
        shifted.clamp(lo, hi)
    }

    /// Effective cadence period after the level: tightening shortens the
    /// period (more frequent scans), relaxing never stretches it past the
    /// base — cadence *is* the base amortization, there is nothing to relax.
    pub fn effective_period(&self) -> u64 {
        if self.base.period == 0 {
            return 0;
        }
        let lvl = self.level.load(Ordering::Relaxed);
        if lvl >= 0 {
            self.base.period
        } else {
            (self.base.period >> (-lvl) as u32)
                .max(ADAPTIVE_MIN_PERIOD)
                .min(self.base.period)
        }
    }
}

/// `usize::checked_shl` that saturates instead of wrapping (tiny helper:
/// levels are ≤ 2, but a pathological base could still overflow).
trait SaturatingShl {
    fn saturating_shl(self, by: u32) -> Self;
}

impl SaturatingShl for usize {
    fn saturating_shl(self, by: u32) -> usize {
        self.checked_shl(by).unwrap_or(usize::MAX)
    }
}

impl ReclaimPolicy for Adaptive {
    fn should_reclaim(&self, stats: &RetireStats) -> Decision {
        let eff = self.effective_threshold(stats.slots);
        let period = self.effective_period();
        if self.base.fires(stats, eff, period) {
            // This scan completed under a healthy verdict: amortize harder
            // next time. CAS (not fetch_add) so concurrent triggers on the
            // same domain step the level at most once per scan wave.
            if !stats.verdict.is_pressure() {
                let lvl = self.level.load(Ordering::Relaxed);
                if lvl < ADAPTIVE_LEVEL_MAX
                    && self
                        .level
                        .compare_exchange(lvl, lvl + 1, Ordering::Relaxed, Ordering::Relaxed)
                        .is_ok()
                {
                    counters::incr_adaptive_relax();
                }
            }
            Decision::Reclaim
        } else {
            Decision::Skip
        }
    }

    fn on_verdict(&self, verdict: Verdict) {
        if verdict.is_pressure() {
            let prev = self.level.swap(ADAPTIVE_LEVEL_MIN, Ordering::Relaxed);
            if prev != ADAPTIVE_LEVEL_MIN {
                counters::incr_adaptive_tighten();
            }
        }
    }

    fn name(&self) -> &'static str {
        "adaptive"
    }
}

/// Which [`ReclaimPolicy`] implementation to build — the value of
/// `SMR_POLICY`/`KV_POLICY`, a `KvConfig` field, and a bench CSV column.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum PolicyKind {
    /// [`Eager`].
    Eager,
    /// [`Capped`] — the default; legacy parameters make it bit-identical
    /// to the pre-policy triggers.
    #[default]
    Capped,
    /// [`TimedCapped`].
    TimedCapped,
    /// [`Adaptive`].
    Adaptive,
}

impl PolicyKind {
    /// Every kind, in fig12 column order.
    pub const ALL: [PolicyKind; 4] = [
        PolicyKind::Eager,
        PolicyKind::Capped,
        PolicyKind::TimedCapped,
        PolicyKind::Adaptive,
    ];

    /// The lower-case name used in env vars, CSV columns, and snapshot
    /// metric keys.
    pub fn name(self) -> &'static str {
        match self {
            PolicyKind::Eager => "eager",
            PolicyKind::Capped => "capped",
            PolicyKind::TimedCapped => "timed",
            PolicyKind::Adaptive => "adaptive",
        }
    }

    /// Parses a policy name (the inverse of [`PolicyKind::name`], plus the
    /// `timed-capped`/`timedcapped` spellings).
    pub fn parse(raw: &str) -> Option<Self> {
        match raw.trim().to_ascii_lowercase().as_str() {
            "eager" => Some(PolicyKind::Eager),
            "capped" => Some(PolicyKind::Capped),
            "timed" | "timed-capped" | "timedcapped" => Some(PolicyKind::TimedCapped),
            "adaptive" => Some(PolicyKind::Adaptive),
            _ => None,
        }
    }

    /// Reads a policy kind from env var `name`; a set-but-unrecognized
    /// value is counted/logged via [`crate::env::note_malformed`] and
    /// returns `None` (caller's default applies).
    pub fn from_env_var(name: &str) -> Option<Self> {
        let raw = std::env::var(name).ok()?;
        match Self::parse(&raw) {
            Some(kind) => Some(kind),
            None => {
                crate::env::note_malformed(name, &raw);
                None
            }
        }
    }
}

impl std::fmt::Display for PolicyKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

impl std::str::FromStr for PolicyKind {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        Self::parse(s).ok_or_else(|| format!("unknown policy kind {s:?}"))
    }
}

/// Default `SMR_POLICY_TIMEOUT_MS` for [`TimedCapped`].
const DEFAULT_TIMEOUT_MS: u64 = 10;

/// Process-wide policy selection, read once from the environment:
///
/// * `SMR_POLICY` — `eager` | `capped` | `timed` | `adaptive` (default
///   `capped`);
/// * `SMR_POLICY_THRESHOLD` — overrides the scheme's legacy floor (or its
///   cadence period, for cadence-only schemes like hp-plus);
/// * `SMR_POLICY_K` — overrides the scheme's legacy slot multiplier;
/// * `SMR_POLICY_TIMEOUT_MS` — [`TimedCapped`] sync timeout (default 10).
///
/// The per-scheme legacy env vars (`HP_RECLAIM_K`,
/// `EBR_COLLECT_THRESHOLD`, `HPP_RECLAIM_PERIOD`) keep working: they feed
/// the `legacy` [`Capped`] each scheme passes to [`PolicyConfig::build`],
/// which these overrides then refine.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PolicyConfig {
    /// Which implementation to build.
    pub kind: PolicyKind,
    /// `SMR_POLICY_THRESHOLD` override (floor, or period for cadence-only
    /// schemes).
    pub threshold: Option<usize>,
    /// `SMR_POLICY_K` override.
    pub k: Option<usize>,
    /// `SMR_POLICY_TIMEOUT_MS` (always present; defaulted).
    pub timeout_ms: u64,
}

impl Default for PolicyConfig {
    fn default() -> Self {
        Self {
            kind: PolicyKind::default(),
            threshold: None,
            k: None,
            timeout_ms: DEFAULT_TIMEOUT_MS,
        }
    }
}

impl PolicyConfig {
    /// The process-wide config, parsed from the environment once (so a
    /// malformed value warns once, not once per domain).
    pub fn from_env() -> Self {
        static CONFIG: OnceLock<PolicyConfig> = OnceLock::new();
        *CONFIG.get_or_init(|| Self {
            kind: PolicyKind::from_env_var("SMR_POLICY").unwrap_or_default(),
            threshold: crate::env::parse_usize("SMR_POLICY_THRESHOLD"),
            k: crate::env::parse_usize("SMR_POLICY_K"),
            timeout_ms: crate::env::parse_u64("SMR_POLICY_TIMEOUT_MS")
                .unwrap_or(DEFAULT_TIMEOUT_MS),
        })
    }

    /// A config selecting `kind` with no parameter overrides — how
    /// kv-service builds per-shard policies from `KV_POLICY` without going
    /// through the process-wide `SMR_POLICY` latch.
    pub fn for_kind(kind: PolicyKind) -> Self {
        Self {
            kind,
            ..Self::default()
        }
    }

    /// Builds the policy, refining the scheme's `legacy` trigger with this
    /// config's overrides. `legacy` carries the scheme's pre-policy
    /// formula (including its old env-var knobs), so an empty environment
    /// builds a [`Capped`] that decides bit-identically to the old code.
    pub fn build(&self, legacy: Capped) -> Arc<dyn ReclaimPolicy> {
        let mut base = legacy;
        if base.period > 0 && !base.count_armed() {
            // Cadence-only scheme: the threshold override retunes the
            // cadence.
            if let Some(t) = self.threshold {
                base.period = (t as u64).max(1);
            }
        } else {
            if let Some(t) = self.threshold {
                base.floor = t;
            }
            if let Some(k) = self.k {
                base.k = k;
            }
        }
        match self.kind {
            PolicyKind::Eager => Arc::new(Eager),
            PolicyKind::Capped => Arc::new(base),
            PolicyKind::TimedCapped => Arc::new(TimedCapped {
                capped: base,
                timeout_ns: self.timeout_ms.saturating_mul(1_000_000),
            }),
            PolicyKind::Adaptive => Arc::new(Adaptive::new(base)),
        }
    }
}

/// A domain's installed policy + latest watchdog verdict.
///
/// `const`-constructible so the static domains (`hp::default_domain`,
/// `ebr::default_collector`) embed one. The slot is install-once
/// (`OnceLock`): the first of `install` / first-trigger-lazy-default wins,
/// matching the "configure before first use" contract of every other knob
/// in the workspace.
pub struct PolicySlot {
    cell: OnceLock<Arc<dyn ReclaimPolicy>>,
    verdict: AtomicU8,
}

impl PolicySlot {
    /// An empty slot (policy defaults on first use).
    pub const fn new() -> Self {
        Self {
            cell: OnceLock::new(),
            verdict: AtomicU8::new(0),
        }
    }

    /// Installs `policy`; returns false (and changes nothing) if a policy
    /// is already installed or defaulted.
    pub fn install(&self, policy: Arc<dyn ReclaimPolicy>) -> bool {
        self.cell.set(policy).is_ok()
    }

    /// The installed policy, defaulting via `default` on first use.
    pub fn get_or_init(
        &self,
        default: impl FnOnce() -> Arc<dyn ReclaimPolicy>,
    ) -> &dyn ReclaimPolicy {
        self.cell.get_or_init(default).as_ref()
    }

    /// The latest verdict reported to this slot.
    pub fn verdict(&self) -> Verdict {
        Verdict::decode(self.verdict.load(Ordering::Relaxed))
    }

    /// Stores a watchdog verdict and forwards it to the policy's feedback
    /// hook (if one is installed yet).
    pub fn report_verdict(&self, verdict: Verdict) {
        self.verdict.store(verdict.encode(), Ordering::Relaxed);
        if let Some(policy) = self.cell.get() {
            policy.on_verdict(verdict);
        }
    }
}

impl Default for PolicySlot {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stats(retired: usize, slots: usize) -> RetireStats {
        RetireStats {
            retired,
            slots,
            ..Default::default()
        }
    }

    /// The same xorshift the fault plans use — deterministic, no deps.
    struct XorShift(u64);
    impl XorShift {
        fn next(&mut self) -> u64 {
            let mut x = self.0;
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            self.0 = x;
            x
        }
    }

    #[test]
    fn eager_always_fires() {
        assert_eq!(Eager.should_reclaim(&stats(0, 0)), Decision::Reclaim);
        assert_eq!(Eager.should_reclaim(&stats(1, 999)), Decision::Reclaim);
    }

    #[test]
    fn capped_reproduces_legacy_hp_trigger_exactly() {
        // hp's pre-policy predicate: retired.len() >= max(128, k * slot_capacity).
        let mut rng = XorShift(0x9e3779b97f4a7c15);
        for k in [1usize, 2, 5] {
            let policy = Capped {
                floor: 128,
                k,
                period: 0,
            };
            for _ in 0..4096 {
                let retired = (rng.next() % 4096) as usize;
                let slots = (rng.next() % 512) as usize;
                let legacy = retired >= 128usize.max(k * slots);
                let got = policy.should_reclaim(&stats(retired, slots)) == Decision::Reclaim;
                assert_eq!(got, legacy, "hp mismatch at retired={retired} slots={slots} k={k}");
            }
        }
    }

    #[test]
    fn capped_reproduces_legacy_ebr_trigger_exactly() {
        // ebr's pre-policy predicate: bags.len() >= max(floor, 8 * participants).
        let mut rng = XorShift(0x2545f4914f6cdd1d);
        for floor in [1usize, 128, 400] {
            let policy = Capped {
                floor,
                k: 8,
                period: 0,
            };
            for _ in 0..4096 {
                let bags = (rng.next() % 4096) as usize;
                let live = (rng.next() % 64) as usize;
                let legacy = bags >= floor.max(8 * live);
                let got = policy.should_reclaim(&stats(bags, live)) == Decision::Reclaim;
                assert_eq!(got, legacy, "ebr mismatch at bags={bags} live={live} floor={floor}");
            }
        }
    }

    #[test]
    fn capped_reproduces_legacy_hpp_cadence_exactly() {
        // hp-plus's pre-policy predicate: unlink_count.is_multiple_of(period)
        // evaluated after the increment (so ops >= 1 always).
        let mut rng = XorShift(0xdeadbeefcafef00d);
        for period in [32u64, 128, 1] {
            let policy = Capped {
                floor: 0,
                k: 0,
                period,
            };
            for _ in 0..4096 {
                let ops = 1 + rng.next() % 1024;
                let legacy = ops.is_multiple_of(period);
                let s = RetireStats {
                    ops,
                    retired: (rng.next() % 64) as usize, // must be ignored: count branch unarmed
                    ..Default::default()
                };
                let got = policy.should_reclaim(&s) == Decision::Reclaim;
                assert_eq!(got, legacy, "hpp mismatch at ops={ops} period={period}");
            }
        }
    }

    #[test]
    fn capped_reproduces_legacy_pebr_trigger_exactly() {
        // pebr's pre-policy predicate: garbage.len() >= 128, no multiplier.
        let policy = Capped {
            floor: 128,
            k: 0,
            period: 0,
        };
        for retired in 0..512 {
            let legacy = retired >= 128;
            let got = policy.should_reclaim(&stats(retired, 7)) == Decision::Reclaim;
            assert_eq!(got, legacy, "pebr mismatch at retired={retired}");
        }
    }

    #[test]
    fn timed_capped_fires_on_age_or_count() {
        let policy = TimedCapped {
            capped: Capped {
                floor: 100,
                k: 0,
                period: 0,
            },
            timeout_ns: 1_000_000,
        };
        assert!(policy.wants_time());
        // Below threshold, young: skip.
        let mut s = stats(10, 0);
        assert_eq!(policy.should_reclaim(&s), Decision::Skip);
        // Below threshold but stale: reclaim.
        s.since_scan_ns = 2_000_000;
        assert_eq!(policy.should_reclaim(&s), Decision::Reclaim);
        // Stale but nothing retired: nothing to sync, skip.
        let mut empty = stats(0, 0);
        empty.since_scan_ns = u64::MAX;
        assert_eq!(policy.should_reclaim(&empty), Decision::Skip);
        // Over threshold regardless of age: reclaim.
        assert_eq!(policy.should_reclaim(&stats(200, 0)), Decision::Reclaim);
    }

    #[test]
    fn adaptive_tightens_on_pressure_and_relaxes_when_healthy() {
        let _serial = crate::counters::test_lock();
        let base = Capped {
            floor: 128,
            k: 2,
            period: 0,
        };
        let policy = Adaptive::new(base);
        let slots = 32;
        assert_eq!(policy.effective_threshold(slots), 128, "level 0 = legacy");

        let tight0 = counters::adaptive_tightens();
        policy.on_verdict(Verdict::GrowingUnbounded);
        assert_eq!(policy.level(), ADAPTIVE_LEVEL_MIN);
        assert_eq!(counters::adaptive_tightens() - tight0, 1);
        // Tightening again is idempotent — no double count.
        policy.on_verdict(Verdict::DegradedBounded);
        assert_eq!(counters::adaptive_tightens() - tight0, 1);
        let tightened = policy.effective_threshold(slots);
        assert_eq!(tightened, ADAPTIVE_MIN_THRESHOLD, "128 >> 3 = 16");

        // Healthy scans step the level back up, one per firing trigger.
        let relax0 = counters::adaptive_relaxes();
        let mut s = stats(tightened, slots);
        s.verdict = Verdict::Healthy;
        assert_eq!(policy.should_reclaim(&s), Decision::Reclaim);
        assert_eq!(policy.level(), ADAPTIVE_LEVEL_MIN + 1);
        assert_eq!(counters::adaptive_relaxes() - relax0, 1);

        // Under pressure a firing trigger does NOT relax.
        policy.on_verdict(Verdict::GrowingUnbounded);
        let mut storm = stats(4096, slots);
        storm.verdict = Verdict::GrowingUnbounded;
        assert_eq!(policy.should_reclaim(&storm), Decision::Reclaim);
        assert_eq!(policy.level(), ADAPTIVE_LEVEL_MIN);
    }

    #[test]
    fn adaptive_threshold_never_exceeds_derived_bound() {
        // Serialized: relaxation bumps the global adaptive counters that
        // the exact-delta tests read.
        let _serial = crate::counters::test_lock();
        let base = Capped {
            floor: 128,
            k: 2,
            period: 0,
        };
        let policy = Adaptive::new(base);
        for slots in [0usize, 1, 8, 33, 512] {
            // Walk the level across its whole range via verdicts + scans.
            policy.on_verdict(Verdict::GrowingUnbounded);
            for _ in 0..16 {
                let eff = policy.effective_threshold(slots);
                assert!(
                    eff <= base.bound(slots).max(ADAPTIVE_MIN_THRESHOLD),
                    "eff {eff} over bound {} at slots={slots}",
                    base.bound(slots)
                );
                assert!(eff >= 1);
                let mut s = stats(eff, slots);
                s.verdict = Verdict::Healthy;
                policy.should_reclaim(&s); // fires, relaxes one step
            }
            assert_eq!(
                policy.effective_threshold(slots),
                base.bound(slots).max(ADAPTIVE_MIN_THRESHOLD.min(base.threshold(slots))),
                "fully relaxed = clamped at the derived bound (slots={slots})"
            );
        }
    }

    #[test]
    fn adaptive_period_only_tightens() {
        let _serial = crate::counters::test_lock();
        let policy = Adaptive::new(Capped {
            floor: 0,
            k: 0,
            period: 128,
        });
        assert_eq!(policy.effective_period(), 128);
        policy.on_verdict(Verdict::DegradedBounded);
        assert_eq!(policy.effective_period(), ADAPTIVE_MIN_PERIOD.max(128 >> 3));
        // Relax all the way back: never past the base period.
        for _ in 0..8 {
            let s = RetireStats {
                ops: policy.effective_period(),
                verdict: Verdict::Healthy,
                ..Default::default()
            };
            policy.should_reclaim(&s);
        }
        assert_eq!(policy.effective_period(), 128);
    }

    #[test]
    fn kind_names_roundtrip() {
        for kind in PolicyKind::ALL {
            assert_eq!(PolicyKind::parse(kind.name()), Some(kind));
            assert_eq!(kind.name().parse::<PolicyKind>(), Ok(kind));
        }
        assert_eq!(PolicyKind::parse("timed-capped"), Some(PolicyKind::TimedCapped));
        assert_eq!(PolicyKind::parse("ADAPTIVE"), Some(PolicyKind::Adaptive));
        assert_eq!(PolicyKind::parse("nope"), None);
    }

    #[test]
    fn config_build_maps_overrides_onto_legacy() {
        let legacy = Capped {
            floor: 128,
            k: 2,
            period: 0,
        };
        // No overrides → the legacy trigger itself.
        let p = PolicyConfig::default().build(legacy);
        assert_eq!(p.name(), "capped");
        assert_eq!(p.should_reclaim(&stats(127, 0)), Decision::Skip);
        assert_eq!(p.should_reclaim(&stats(128, 0)), Decision::Reclaim);

        // Threshold/k overrides refine the count branch.
        let cfg = PolicyConfig {
            threshold: Some(10),
            k: Some(0),
            ..Default::default()
        };
        let p = cfg.build(legacy);
        assert_eq!(p.should_reclaim(&stats(10, 999)), Decision::Reclaim);
        assert_eq!(p.should_reclaim(&stats(9, 999)), Decision::Skip);

        // Cadence-only legacy: threshold override retunes the period.
        let hpp = Capped {
            floor: 0,
            k: 0,
            period: 128,
        };
        let cfg = PolicyConfig {
            threshold: Some(4),
            ..Default::default()
        };
        let p = cfg.build(hpp);
        let fire = RetireStats {
            ops: 8,
            ..Default::default()
        };
        assert_eq!(p.should_reclaim(&fire), Decision::Reclaim);

        // Kind selection.
        assert_eq!(PolicyConfig::for_kind(PolicyKind::Eager).build(legacy).name(), "eager");
        assert_eq!(PolicyConfig::for_kind(PolicyKind::TimedCapped).build(legacy).name(), "timed");
        assert_eq!(PolicyConfig::for_kind(PolicyKind::Adaptive).build(legacy).name(), "adaptive");
    }

    #[test]
    fn slot_installs_once_and_forwards_verdicts() {
        let _serial = crate::counters::test_lock();
        let slot = PolicySlot::new();
        assert_eq!(slot.verdict(), Verdict::Unknown);
        let adaptive = Arc::new(Adaptive::new(Capped {
            floor: 128,
            k: 2,
            period: 0,
        }));
        assert!(slot.install(adaptive.clone()));
        assert!(!slot.install(Arc::new(Eager)), "second install rejected");
        assert_eq!(slot.get_or_init(|| Arc::new(Eager)).name(), "adaptive");
        slot.report_verdict(Verdict::GrowingUnbounded);
        assert_eq!(slot.verdict(), Verdict::GrowingUnbounded);
        assert_eq!(adaptive.level(), ADAPTIVE_LEVEL_MIN, "verdict reached the policy");
    }

    #[test]
    fn decide_counts_both_outcomes_exactly() {
        let _serial = crate::counters::test_lock();
        let forced0 = counters::policy_scans_forced();
        let skipped0 = counters::policy_scans_skipped();
        let policy = Capped {
            floor: 4,
            k: 0,
            period: 0,
        };
        assert_eq!(decide(&policy, &stats(4, 0)), Decision::Reclaim);
        assert_eq!(decide(&policy, &stats(0, 0)), Decision::Skip);
        assert_eq!(decide(&policy, &stats(1, 0)), Decision::Skip);
        assert_eq!(counters::policy_scans_forced() - forced0, 1);
        assert_eq!(counters::policy_scans_skipped() - skipped0, 2);
    }
}
