//! Tiny monotonic-clock helper shared by the benchmark harness.
//!
//! The workload engine timestamps every operation, so the helper keeps the
//! per-call footprint minimal: a single process-wide [`Instant`] epoch
//! (initialized on first use) and a `u64` nanosecond offset from it. A
//! `u64` of nanoseconds spans ~584 years, so wrapping is not a concern.

use std::sync::OnceLock;
use std::time::Instant;

static EPOCH: OnceLock<Instant> = OnceLock::new();

/// Nanoseconds since the first call to this function (process-wide,
/// monotonic). The first call returns a value close to zero.
#[inline]
pub fn mono_ns() -> u64 {
    EPOCH.get_or_init(Instant::now).elapsed().as_nanos() as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn monotonic_and_advancing() {
        let a = mono_ns();
        let b = mono_ns();
        assert!(b >= a);
        std::thread::sleep(std::time::Duration::from_millis(2));
        let c = mono_ns();
        assert!(c >= b + 1_000_000, "2 ms sleep advanced {} ns", c - b);
    }
}
