//! Environment-variable parsing shared by every crate with tuning knobs.
//!
//! Before this module, hp, hp-plus, ebr, and kv-service each repeated the
//! same `std::env::var(..).ok().and_then(|v| v.parse().ok())` chain — and a
//! malformed value (`HP_RECLAIM_K=two`) silently fell back to the default
//! with no trace. These helpers centralize the chain and make the failure
//! observable: every unparseable value bumps
//! [`counters::env_malformed`](crate::counters::env_malformed) and logs one
//! warning line to stderr. Callers read knobs through process-lifetime
//! `OnceLock`s, so each site parses (and warns) at most once per process.
//!
//! Semantics, shared by all helpers:
//!
//! * unset variable → `None` (caller's default applies, silently);
//! * set but unparseable → `None` **plus** a counted, logged warning;
//! * set and valid → `Some(value)`.
//!
//! Zero/emptiness filtering stays at the call site (`HP_RECLAIM_K=0` is
//! *rejected* by hp, while `EBR_COLLECT_THRESHOLD=0` is meaningful), so the
//! helpers only decide "parseable or not".

use crate::counters;

/// Looks up `name` and parses it as `usize`.
///
/// Returns `None` when unset; a set-but-malformed value also returns `None`
/// after counting and logging the rejection.
pub fn parse_usize(name: &str) -> Option<usize> {
    parse_raw(name, std::env::var(name).ok())
}

/// Looks up `name` and parses it as `u32` (same contract as
/// [`parse_usize`]).
pub fn parse_u32(name: &str) -> Option<u32> {
    parse_raw(name, std::env::var(name).ok())
}

/// Looks up `name` and parses it as `u64` (same contract as
/// [`parse_usize`]).
pub fn parse_u64(name: &str) -> Option<u64> {
    parse_raw(name, std::env::var(name).ok())
}

/// Looks up `name` as a boolean flag: `1`/`true`/`yes`/`on` are true,
/// `0`/`false`/`no`/`off` are false (ASCII case-insensitive). Unset or
/// malformed → `None` (malformed values are counted and logged).
pub fn parse_bool(name: &str) -> Option<bool> {
    parse_bool_raw(name, std::env::var(name).ok().as_deref())
}

/// Records one malformed value for `name`: bumps the
/// [`env_malformed`](crate::counters::env_malformed) counter and writes a
/// single warning line to stderr. Public so enum-valued knobs parsed
/// outside this module (`SMR_POLICY`, `KV_POLICY`) report rejections the
/// same way.
pub fn note_malformed(name: &str, raw: &str) {
    counters::incr_env_malformed();
    eprintln!("smr-common: ignoring malformed {name}={raw:?} (using default)");
}

/// Pure core of the numeric helpers, split out so tests can exercise the
/// malformed path without mutating the process environment.
fn parse_raw<T: std::str::FromStr>(name: &str, raw: Option<String>) -> Option<T> {
    let raw = raw?;
    match raw.trim().parse() {
        Ok(v) => Some(v),
        Err(_) => {
            note_malformed(name, &raw);
            None
        }
    }
}

/// Pure core of [`parse_bool`].
fn parse_bool_raw(name: &str, raw: Option<&str>) -> Option<bool> {
    let raw = raw?;
    match raw.trim().to_ascii_lowercase().as_str() {
        "1" | "true" | "yes" | "on" => Some(true),
        "0" | "false" | "no" | "off" => Some(false),
        _ => {
            note_malformed(name, raw);
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::counters;

    #[test]
    fn unset_is_silent_none() {
        let _serial = counters::test_lock();
        let before = counters::env_malformed();
        assert_eq!(parse_raw::<usize>("SMR_ENV_TEST_UNSET", None), None);
        assert_eq!(parse_bool_raw("SMR_ENV_TEST_UNSET", None), None);
        assert_eq!(counters::env_malformed(), before, "unset must not warn");
    }

    #[test]
    fn valid_values_parse() {
        let _serial = counters::test_lock();
        let before = counters::env_malformed();
        assert_eq!(
            parse_raw::<usize>("SMR_ENV_TEST_OK", Some("128".into())),
            Some(128)
        );
        assert_eq!(
            parse_raw::<u64>("SMR_ENV_TEST_OK", Some(" 42 ".into())),
            Some(42),
            "surrounding whitespace is tolerated"
        );
        for (raw, want) in [
            ("1", true),
            ("true", true),
            ("YES", true),
            ("on", true),
            ("0", false),
            ("False", false),
            ("no", false),
            ("off", false),
        ] {
            assert_eq!(parse_bool_raw("SMR_ENV_TEST_OK", Some(raw)), Some(want));
        }
        assert_eq!(counters::env_malformed(), before);
    }

    #[test]
    fn malformed_values_fall_back_and_count() {
        let _serial = counters::test_lock();
        let before = counters::env_malformed();
        assert_eq!(
            parse_raw::<usize>("SMR_ENV_TEST_BAD", Some("two".into())),
            None
        );
        assert_eq!(
            parse_raw::<usize>("SMR_ENV_TEST_BAD", Some("-3".into())),
            None,
            "negative is malformed for unsigned knobs"
        );
        assert_eq!(
            parse_raw::<u32>("SMR_ENV_TEST_BAD", Some("1e6".into())),
            None
        );
        assert_eq!(parse_bool_raw("SMR_ENV_TEST_BAD", Some("maybe")), None);
        assert_eq!(
            counters::env_malformed() - before,
            4,
            "every malformed value is counted exactly once"
        );
    }
}
