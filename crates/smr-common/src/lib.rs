//! Shared infrastructure for safe memory reclamation (SMR) schemes.
//!
//! This crate hosts the pieces that every reclamation scheme and every
//! concurrent data structure in the workspace builds on:
//!
//! * [`tagged`] — bit-twiddling helpers for pointer tagging (logical deletion
//!   marks, HP++ invalidation marks).
//! * [`atomic`] — [`Atomic<T>`](atomic::Atomic) / [`Shared<T>`](atomic::Shared),
//!   tagged atomic pointers used by all schemes and data structures.
//! * [`fence`] — the asymmetric light/heavy fence pair from HP++ §3.4,
//!   implemented with Linux `membarrier(2)` when available and falling back to
//!   plain `SeqCst` fences elsewhere.
//! * [`counters`] — global garbage + contention accounting used by the
//!   benchmark harness to reproduce the paper's "unreclaimed blocks"
//!   figures and to report CAS retry/backoff rates.
//! * [`backoff`] — the tunable spin/yield/park exponential
//!   [`Backoff`](backoff::Backoff) threaded through every CAS retry loop
//!   in `crates/ds` (knobs: `SMR_BACKOFF_SPIN_LIMIT`, `SMR_BACKOFF_MAX_EXP`,
//!   `SMR_NO_BACKOFF`).
//! * [`map`] — the [`ConcurrentMap`] trait every
//!   benchmarked structure implements, plus the [`GuardedScheme`]
//!   abstraction shared by the guard-based schemes (NR, EBR, PEBR).
//! * [`registry`] — a lock-free intrusive list of per-thread records
//!   (Harris-style mark-then-unlink deletion) backing EBR's participant
//!   registry.
//! * [`time`] — a minimal monotonic-nanosecond clock used by the benchmark
//!   harness's per-operation latency recording.
//! * [`fault`] — named fault-injection points (compile-time no-ops unless
//!   the `fault-injection` feature is on) driving the adversarial
//!   robustness matrix in `tests/fault_matrix.rs`.
//! * [`watchdog`] — [`GarbageWatchdog`](watchdog::GarbageWatchdog), which
//!   classifies a run as healthy / degraded-bounded / growing-unbounded
//!   from sampled progress + garbage counters (the Table 1 failure modes).
//! * [`policy`] — pluggable reclamation-trigger strategies
//!   ([`ReclaimPolicy`](policy::ReclaimPolicy): eager / capped /
//!   timed-capped / watchdog-adaptive) consulted by every scheme's
//!   retire path through a per-domain [`PolicySlot`](policy::PolicySlot);
//!   knobs `SMR_POLICY`, `SMR_POLICY_THRESHOLD`, `SMR_POLICY_K`,
//!   `SMR_POLICY_TIMEOUT_MS`.
//! * [`env`] — shared env-var parsing with malformed-value accounting
//!   (one warning + one [`counters::env_malformed`] bump per bad value).

#![warn(missing_docs)]

pub mod atomic;
pub mod backoff;
pub mod counters;
pub mod env;
pub mod fault;
pub mod fence;
pub mod map;
pub mod policy;
pub mod registry;
pub mod retired;
pub mod tagged;
pub mod time;
pub mod util;
pub mod watchdog;

pub use atomic::{Atomic, Shared};
pub use backoff::Backoff;
pub use map::{ConcurrentMap, GuardedScheme, SchemeGuard};
pub use retired::Retired;
pub use util::CachePadded;

/// Named fault-injection points compiled into this crate (each a
/// [`fault_point!`] site; no-ops without the `fault-injection` feature).
pub const FAULT_POINTS: &[&str] = backoff::FAULT_POINTS;
