//! Global garbage and contention accounting.
//!
//! Every reclamation scheme in the workspace reports its retired-but-not-yet-
//! reclaimed blocks here so the benchmark harness can regenerate the paper's
//! memory figures (Fig. 11, Figs. 15–23) uniformly across schemes:
//!
//! * a block counts as garbage from the moment the data structure hands it to
//!   the scheme (retire for HP/EBR/PEBR/NR, **unlink** for HP++ — HP++ defers
//!   retirement, and the paper counts that deferred garbage too), and
//! * stops counting when the scheme frees it (never, for NR).
//!
//! On top of garbage, the stripes carry **contention accounting** for the
//! fig9 sweeps: data structures report every failed `compare_exchange` on a
//! retry path ([`incr_cas_failure`]), and [`crate::backoff`] reports each
//! spin / yield / park step it takes. The bench harness divides CAS
//! failures by completed operations to get a retry rate per scenario.
//!
//! Counters are striped across cache lines to keep the accounting from
//! becoming the bottleneck it is trying to measure.

use std::sync::atomic::{AtomicU64, Ordering};

const STRIPES: usize = 64;

#[repr(align(128))]
struct Stripe {
    retired: AtomicU64,
    freed: AtomicU64,
    cas_failed: AtomicU64,
    backoff_spin: AtomicU64,
    backoff_yield: AtomicU64,
    backoff_park: AtomicU64,
    policy_forced: AtomicU64,
    policy_skipped: AtomicU64,
    adaptive_tighten: AtomicU64,
    adaptive_relax: AtomicU64,
    env_malformed: AtomicU64,
    shard_respawn: AtomicU64,
    quarantine_domains: AtomicU64,
    quarantine_blocks: AtomicU64,
}

#[allow(clippy::declare_interior_mutable_const)]
const STRIPE_INIT: Stripe = Stripe {
    retired: AtomicU64::new(0),
    freed: AtomicU64::new(0),
    cas_failed: AtomicU64::new(0),
    backoff_spin: AtomicU64::new(0),
    backoff_yield: AtomicU64::new(0),
    backoff_park: AtomicU64::new(0),
    policy_forced: AtomicU64::new(0),
    policy_skipped: AtomicU64::new(0),
    adaptive_tighten: AtomicU64::new(0),
    adaptive_relax: AtomicU64::new(0),
    env_malformed: AtomicU64::new(0),
    shard_respawn: AtomicU64::new(0),
    quarantine_domains: AtomicU64::new(0),
    quarantine_blocks: AtomicU64::new(0),
};

static STRIPES_ARR: [Stripe; STRIPES] = [STRIPE_INIT; STRIPES];

#[inline]
fn stripe() -> &'static Stripe {
    use std::cell::Cell;
    use std::sync::atomic::AtomicUsize;
    static NEXT: AtomicUsize = AtomicUsize::new(0);
    thread_local! {
        static IDX: Cell<usize> = const { Cell::new(usize::MAX) };
    }
    let idx = IDX.with(|i| {
        if i.get() == usize::MAX {
            i.set(NEXT.fetch_add(1, Ordering::Relaxed) % STRIPES);
        }
        i.get()
    });
    &STRIPES_ARR[idx]
}

/// Records that `n` blocks were handed to the reclamation scheme.
#[inline]
pub fn incr_garbage(n: u64) {
    stripe().retired.fetch_add(n, Ordering::Relaxed);
}

/// Records that `n` blocks were actually freed.
#[inline]
pub fn decr_garbage(n: u64) {
    stripe().freed.fetch_add(n, Ordering::Relaxed);
}

/// Total blocks ever handed to reclamation schemes.
pub fn total_retired() -> u64 {
    STRIPES_ARR
        .iter()
        .map(|s| s.retired.load(Ordering::Relaxed))
        .sum()
}

/// Total blocks freed so far.
pub fn total_freed() -> u64 {
    STRIPES_ARR
        .iter()
        .map(|s| s.freed.load(Ordering::Relaxed))
        .sum()
}

/// Current number of retired-but-unreclaimed blocks.
///
/// The reading is a racy sum (freed may be observed ahead of retired) so it
/// saturates at zero.
pub fn garbage_now() -> u64 {
    total_retired().saturating_sub(total_freed())
}

/// Records `n` failed `compare_exchange` attempts on a data-structure retry
/// path (the coherence-storm events the backoff machinery dampens).
#[inline]
pub fn incr_cas_failure(n: u64) {
    stripe().cas_failed.fetch_add(n, Ordering::Relaxed);
}

/// Total failed CAS attempts reported by the data structures.
pub fn total_cas_failures() -> u64 {
    STRIPES_ARR
        .iter()
        .map(|s| s.cas_failed.load(Ordering::Relaxed))
        .sum()
}

/// Records one backoff step in the spin phase.
#[inline]
pub fn incr_backoff_spin() {
    stripe().backoff_spin.fetch_add(1, Ordering::Relaxed);
}

/// Records one backoff step in the yield phase.
#[inline]
pub fn incr_backoff_yield() {
    stripe().backoff_yield.fetch_add(1, Ordering::Relaxed);
}

/// Records one backoff step in the park phase.
#[inline]
pub fn incr_backoff_park() {
    stripe().backoff_park.fetch_add(1, Ordering::Relaxed);
}

/// Total backoff steps taken, split `(spin, yield, park)`.
pub fn total_backoff() -> (u64, u64, u64) {
    STRIPES_ARR.iter().fold((0, 0, 0), |(s, y, p), st| {
        (
            s + st.backoff_spin.load(Ordering::Relaxed),
            y + st.backoff_yield.load(Ordering::Relaxed),
            p + st.backoff_park.load(Ordering::Relaxed),
        )
    })
}

/// Records one reclamation-policy decision that triggered a scan
/// ([`crate::policy::Decision::Reclaim`]).
#[inline]
pub fn incr_policy_scan_forced() {
    stripe().policy_forced.fetch_add(1, Ordering::Relaxed);
}

/// Records one reclamation-policy decision that deferred a scan
/// ([`crate::policy::Decision::Skip`]).
#[inline]
pub fn incr_policy_scan_skipped() {
    stripe().policy_skipped.fetch_add(1, Ordering::Relaxed);
}

/// Records one `Adaptive` policy tightening step (watchdog reported
/// pressure; the effective trigger drops to its floor).
#[inline]
pub fn incr_adaptive_tighten() {
    stripe().adaptive_tighten.fetch_add(1, Ordering::Relaxed);
}

/// Records one `Adaptive` policy relaxation step (a scan completed while
/// the watchdog was healthy; the effective trigger doubles).
#[inline]
pub fn incr_adaptive_relax() {
    stripe().adaptive_relax.fetch_add(1, Ordering::Relaxed);
}

/// Records one malformed environment-variable value observed by
/// [`crate::env`] (the value was ignored and the default used instead).
#[inline]
pub fn incr_env_malformed() {
    stripe().env_malformed.fetch_add(1, Ordering::Relaxed);
}

/// Total policy decisions that forced a scan.
pub fn policy_scans_forced() -> u64 {
    STRIPES_ARR
        .iter()
        .map(|s| s.policy_forced.load(Ordering::Relaxed))
        .sum()
}

/// Total policy decisions that skipped (deferred) a scan.
pub fn policy_scans_skipped() -> u64 {
    STRIPES_ARR
        .iter()
        .map(|s| s.policy_skipped.load(Ordering::Relaxed))
        .sum()
}

/// Total `Adaptive` tightening steps.
pub fn adaptive_tightens() -> u64 {
    STRIPES_ARR
        .iter()
        .map(|s| s.adaptive_tighten.load(Ordering::Relaxed))
        .sum()
}

/// Total `Adaptive` relaxation steps.
pub fn adaptive_relaxes() -> u64 {
    STRIPES_ARR
        .iter()
        .map(|s| s.adaptive_relax.load(Ordering::Relaxed))
        .sum()
}

/// Records one supervised shard-worker respawn (kv-service supervisor).
#[inline]
pub fn incr_shard_respawn() {
    stripe().shard_respawn.fetch_add(1, Ordering::Relaxed);
}

/// Records one reclamation domain quarantined after a worker death, with
/// the `blocks` of settled garbage leaked along with it.
#[inline]
pub fn incr_quarantine(blocks: u64) {
    let s = stripe();
    s.quarantine_domains.fetch_add(1, Ordering::Relaxed);
    s.quarantine_blocks.fetch_add(blocks, Ordering::Relaxed);
}

/// Total supervised shard-worker respawns.
pub fn shard_respawns() -> u64 {
    STRIPES_ARR
        .iter()
        .map(|s| s.shard_respawn.load(Ordering::Relaxed))
        .sum()
}

/// Total quarantined reclamation domains, process-wide.
pub fn quarantined_domains() -> u64 {
    STRIPES_ARR
        .iter()
        .map(|s| s.quarantine_domains.load(Ordering::Relaxed))
        .sum()
}

/// Total settled-garbage blocks leaked inside quarantined domains.
pub fn quarantined_blocks() -> u64 {
    STRIPES_ARR
        .iter()
        .map(|s| s.quarantine_blocks.load(Ordering::Relaxed))
        .sum()
}

/// Total malformed env-var values seen (and ignored) by [`crate::env`].
pub fn env_malformed() -> u64 {
    STRIPES_ARR
        .iter()
        .map(|s| s.env_malformed.load(Ordering::Relaxed))
        .sum()
}

/// Serializes tests (crate-wide) that assert exact counter deltas: the
/// counters are process-global, so concurrently running tests that retire
/// or free blocks would otherwise perturb each other's readings.
#[cfg(test)]
pub(crate) fn test_lock() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
    LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn garbage_accounting_balances() {
        let _serial = test_lock();
        let retired_before = total_retired();
        let freed_before = total_freed();
        incr_garbage(10);
        assert_eq!(total_retired() - retired_before, 10);
        assert_eq!(total_freed() - freed_before, 0);
        decr_garbage(10);
        assert_eq!(total_retired() - retired_before, 10);
        assert_eq!(total_freed() - freed_before, 10);
        // And the derived outstanding-garbage reading is back to where this
        // test found it.
        assert_eq!(
            total_retired() - total_freed(),
            retired_before - freed_before
        );
    }

    #[test]
    fn cas_failure_and_backoff_deltas_are_exact() {
        let _serial = test_lock();
        let cas_before = total_cas_failures();
        let (s0, y0, p0) = total_backoff();
        incr_cas_failure(3);
        incr_cas_failure(1);
        incr_backoff_spin();
        incr_backoff_spin();
        incr_backoff_yield();
        incr_backoff_park();
        assert_eq!(total_cas_failures() - cas_before, 4);
        let (s1, y1, p1) = total_backoff();
        assert_eq!((s1 - s0, y1 - y0, p1 - p0), (2, 1, 1));
    }

    #[test]
    fn policy_counter_deltas_are_exact() {
        let _serial = test_lock();
        let forced0 = policy_scans_forced();
        let skipped0 = policy_scans_skipped();
        let tight0 = adaptive_tightens();
        let relax0 = adaptive_relaxes();
        let env0 = env_malformed();
        incr_policy_scan_forced();
        incr_policy_scan_skipped();
        incr_policy_scan_skipped();
        incr_adaptive_tighten();
        incr_adaptive_relax();
        incr_adaptive_relax();
        incr_adaptive_relax();
        incr_env_malformed();
        assert_eq!(policy_scans_forced() - forced0, 1);
        assert_eq!(policy_scans_skipped() - skipped0, 2);
        assert_eq!(adaptive_tightens() - tight0, 1);
        assert_eq!(adaptive_relaxes() - relax0, 3);
        assert_eq!(env_malformed() - env0, 1);
    }

    #[test]
    fn supervision_counter_deltas_are_exact() {
        let _serial = test_lock();
        let respawn0 = shard_respawns();
        let domains0 = quarantined_domains();
        let blocks0 = quarantined_blocks();
        incr_shard_respawn();
        incr_shard_respawn();
        incr_quarantine(0);
        incr_quarantine(17);
        assert_eq!(shard_respawns() - respawn0, 2);
        assert_eq!(quarantined_domains() - domains0, 2);
        assert_eq!(quarantined_blocks() - blocks0, 17);
    }

    #[test]
    fn contention_counters_sum_across_threads() {
        let _serial = test_lock();
        let cas_before = total_cas_failures();
        std::thread::scope(|s| {
            for _ in 0..8 {
                s.spawn(|| {
                    for _ in 0..500 {
                        incr_cas_failure(1);
                    }
                });
            }
        });
        assert_eq!(total_cas_failures() - cas_before, 4000);
    }

    #[test]
    fn multithreaded_accounting() {
        let _serial = test_lock();
        let retired_before = total_retired();
        let freed_before = total_freed();
        std::thread::scope(|s| {
            for _ in 0..8 {
                s.spawn(|| {
                    for _ in 0..1000 {
                        incr_garbage(1);
                        decr_garbage(1);
                    }
                });
            }
        });
        assert_eq!(total_retired() - retired_before, 8000);
        assert_eq!(total_freed() - freed_before, 8000);
    }
}
