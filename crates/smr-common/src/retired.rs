//! Type-erased retired allocations.

use crate::counters;

/// A heap allocation handed to a reclamation scheme, with its deleter.
///
/// The pointer is type-erased so scheme internals can batch heterogeneous
/// nodes; the deleter restores the type and runs `Box::from_raw`.
pub struct Retired {
    ptr: *mut u8,
    free_fn: unsafe fn(*mut u8),
}

// Retired values only travel between threads inside scheme machinery that
// guarantees exclusive ownership of the pointee.
unsafe impl Send for Retired {}

unsafe fn free_boxed<T>(ptr: *mut u8) {
    drop(unsafe { Box::from_raw(ptr.cast::<T>()) });
}

impl Retired {
    /// Wraps `ptr` for later reclamation via `Box::from_raw::<T>`.
    ///
    /// # Safety
    /// `ptr` must come from `Box::into_raw` of a `Box<T>` and must not be
    /// freed by anyone else.
    pub unsafe fn new<T>(ptr: *mut T) -> Self {
        debug_assert!(!ptr.is_null());
        Self {
            ptr: ptr.cast(),
            free_fn: free_boxed::<T>,
        }
    }

    /// Wraps `ptr` with a custom deleter.
    ///
    /// # Safety
    /// `free_fn` must fully reclaim `ptr`, and `ptr` must not be freed by
    /// anyone else.
    pub unsafe fn with_free(ptr: *mut u8, free_fn: unsafe fn(*mut u8)) -> Self {
        Self { ptr, free_fn }
    }

    /// The type-erased pointer (used by hazard scans).
    #[inline]
    pub fn ptr(&self) -> *mut u8 {
        self.ptr
    }

    /// Frees the allocation and decrements the global garbage counter.
    ///
    /// # Safety
    /// No thread may dereference the pointee at or after this call.
    pub unsafe fn free(self) {
        (self.free_fn)(self.ptr);
        counters::decr_garbage(1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    static DROPS: AtomicUsize = AtomicUsize::new(0);
    struct Canary;
    impl Drop for Canary {
        fn drop(&mut self) {
            DROPS.fetch_add(1, Ordering::Relaxed);
        }
    }

    #[test]
    fn free_runs_destructor() {
        let _serial = crate::counters::test_lock();
        let p = Box::into_raw(Box::new(Canary));
        let before = DROPS.load(Ordering::Relaxed);
        unsafe {
            crate::counters::incr_garbage(1);
            Retired::new(p).free();
        }
        assert_eq!(DROPS.load(Ordering::Relaxed), before + 1);
    }

    #[test]
    fn custom_deleter_runs() {
        let _serial = crate::counters::test_lock();
        static CUSTOM: AtomicUsize = AtomicUsize::new(0);
        unsafe fn del(p: *mut u8) {
            CUSTOM.fetch_add(1, Ordering::Relaxed);
            drop(unsafe { Box::from_raw(p.cast::<u64>()) });
        }
        let p = Box::into_raw(Box::new(5u64));
        unsafe {
            crate::counters::incr_garbage(1);
            Retired::with_free(p.cast(), del).free();
        }
        assert_eq!(CUSTOM.load(Ordering::Relaxed), 1);
    }
}
