//! Tagged atomic pointers.
//!
//! [`Atomic<T>`] is a word-sized atomic holding a possibly-tagged pointer to a
//! heap node; [`Shared<T>`] is the plain (copyable) snapshot of such a word.
//! Unlike `crossbeam_epoch::Atomic`, loads are not lifetime-branded to a
//! guard: protection is scheme-specific in this workspace (epochs, hazard
//! pointers, HP++ protections, reference counts), so dereferencing a
//! [`Shared`] is an `unsafe` operation whose precondition is "the current
//! scheme protects this pointer".

use std::fmt;
use std::marker::PhantomData;
use std::sync::atomic::{AtomicUsize, Ordering};

use crate::tagged;

/// An atomic word holding a tagged pointer to `T`.
pub struct Atomic<T> {
    data: AtomicUsize,
    _marker: PhantomData<*mut T>,
}

unsafe impl<T: Send + Sync> Send for Atomic<T> {}
unsafe impl<T: Send + Sync> Sync for Atomic<T> {}

impl<T> Default for Atomic<T> {
    fn default() -> Self {
        Self::null()
    }
}

impl<T> fmt::Debug for Atomic<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = self.load(Ordering::Relaxed);
        write!(f, "Atomic({:p}, tag={})", s.as_raw(), s.tag())
    }
}

impl<T> Atomic<T> {
    /// A null pointer with tag 0.
    pub const fn null() -> Self {
        Self {
            data: AtomicUsize::new(0),
            _marker: PhantomData,
        }
    }

    /// Allocates `value` on the heap and stores the (untagged) pointer.
    pub fn new(value: T) -> Self {
        Self::from(Shared::from_owned(value))
    }

    /// Creates an `Atomic` holding `shared`.
    pub fn from(shared: Shared<T>) -> Self {
        Self {
            data: AtomicUsize::new(shared.data),
            _marker: PhantomData,
        }
    }

    /// Atomically loads the tagged pointer.
    #[inline]
    pub fn load(&self, ord: Ordering) -> Shared<T> {
        Shared::from_usize(self.data.load(ord))
    }

    /// Atomically stores `val`.
    #[inline]
    pub fn store(&self, val: Shared<T>, ord: Ordering) {
        self.data.store(val.data, ord);
    }

    /// Atomically exchanges the value, returning the previous one.
    #[inline]
    pub fn swap(&self, val: Shared<T>, ord: Ordering) -> Shared<T> {
        Shared::from_usize(self.data.swap(val.data, ord))
    }

    /// Compare-and-exchange. On failure returns the actual current value.
    #[inline]
    pub fn compare_exchange(
        &self,
        current: Shared<T>,
        new: Shared<T>,
        success: Ordering,
        failure: Ordering,
    ) -> Result<Shared<T>, Shared<T>> {
        self.data
            .compare_exchange(current.data, new.data, success, failure)
            .map(Shared::from_usize)
            .map_err(Shared::from_usize)
    }

    /// Weak compare-and-exchange (may fail spuriously).
    #[inline]
    pub fn compare_exchange_weak(
        &self,
        current: Shared<T>,
        new: Shared<T>,
        success: Ordering,
        failure: Ordering,
    ) -> Result<Shared<T>, Shared<T>> {
        self.data
            .compare_exchange_weak(current.data, new.data, success, failure)
            .map(Shared::from_usize)
            .map_err(Shared::from_usize)
    }

    /// Atomically ORs `tag` into the low bits, returning the previous value.
    ///
    /// Used for logical deletion and HP++ invalidation marks.
    #[inline]
    pub fn fetch_or_tag(&self, tag: usize, ord: Ordering) -> Shared<T> {
        debug_assert!(tag <= tagged::low_bits::<T>());
        Shared::from_usize(self.data.fetch_or(tag, ord))
    }

    /// Non-atomic read; requires exclusive access.
    #[inline]
    pub fn load_mut(&mut self) -> Shared<T> {
        Shared::from_usize(*self.data.get_mut())
    }

    /// Non-atomic write; requires exclusive access.
    #[inline]
    pub fn store_mut(&mut self, val: Shared<T>) {
        *self.data.get_mut() = val.data;
    }

    /// Consumes the atomic, returning the owned heap allocation if non-null.
    ///
    /// # Safety
    /// The caller must be the unique owner of the pointee.
    pub unsafe fn into_owned(self) -> Option<Box<T>> {
        let s = Shared::<T>::from_usize(self.data.into_inner());
        if s.is_null() {
            None
        } else {
            Some(Box::from_raw(s.as_raw()))
        }
    }
}

/// A copyable snapshot of a tagged pointer word.
pub struct Shared<T> {
    data: usize,
    _marker: PhantomData<*mut T>,
}

impl<T> Clone for Shared<T> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<T> Copy for Shared<T> {}

impl<T> PartialEq for Shared<T> {
    fn eq(&self, other: &Self) -> bool {
        self.data == other.data
    }
}
impl<T> Eq for Shared<T> {}

impl<T> fmt::Debug for Shared<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Shared({:p}, tag={})", self.as_raw(), self.tag())
    }
}

impl<T> Shared<T> {
    /// The null pointer with tag 0.
    #[inline]
    pub const fn null() -> Self {
        Self {
            data: 0,
            _marker: PhantomData,
        }
    }

    /// Reconstructs from a raw word (pointer | tag).
    #[inline]
    pub fn from_usize(data: usize) -> Self {
        Self {
            data,
            _marker: PhantomData,
        }
    }

    /// Wraps a raw pointer (keeping any tag bits it carries).
    #[inline]
    pub fn from_raw(ptr: *mut T) -> Self {
        Self::from_usize(ptr as usize)
    }

    /// Moves `value` to the heap and returns the untagged pointer to it.
    #[inline]
    pub fn from_owned(value: T) -> Self {
        Self::from_raw(Box::into_raw(Box::new(value)))
    }

    /// The raw word (pointer | tag).
    #[inline]
    pub fn into_usize(self) -> usize {
        self.data
    }

    /// The untagged raw pointer.
    #[inline]
    pub fn as_raw(&self) -> *mut T {
        tagged::untagged::<T>(self.data)
    }

    /// The tag bits.
    #[inline]
    pub fn tag(&self) -> usize {
        tagged::tag_of::<T>(self.data)
    }

    /// Same pointer with the tag replaced by `tag`.
    #[inline]
    pub fn with_tag(&self, tag: usize) -> Self {
        Self::from_usize(tagged::compose::<T>(self.as_raw(), tag))
    }

    /// Is the (untagged) pointer null?
    #[inline]
    pub fn is_null(&self) -> bool {
        self.as_raw().is_null()
    }

    /// Compares only the untagged pointer parts.
    #[inline]
    pub fn ptr_eq(&self, other: Shared<T>) -> bool {
        self.as_raw() == other.as_raw()
    }

    /// Dereferences the untagged pointer.
    ///
    /// # Safety
    /// The pointer must be non-null and protected by the active reclamation
    /// scheme (or otherwise known to be live).
    #[inline]
    pub unsafe fn deref<'a>(&self) -> &'a T {
        &*self.as_raw()
    }

    /// Dereferences if non-null.
    ///
    /// # Safety
    /// Same as [`Shared::deref`].
    #[inline]
    pub unsafe fn as_ref<'a>(&self) -> Option<&'a T> {
        self.as_raw().as_ref()
    }

    /// Reclaims the pointee.
    ///
    /// # Safety
    /// The caller must be the unique owner of the pointee and it must not be
    /// accessed again.
    #[inline]
    pub unsafe fn drop_owned(self) {
        drop(Box::from_raw(self.as_raw()));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::Ordering::*;

    #[test]
    fn atomic_basic_ops() {
        let a = Atomic::new(42u64);
        let s = a.load(Relaxed);
        assert!(!s.is_null());
        assert_eq!(s.tag(), 0);
        assert_eq!(unsafe { *s.deref() }, 42);

        let t = s.with_tag(1);
        a.store(t, Relaxed);
        assert_eq!(a.load(Relaxed).tag(), 1);
        assert!(a.load(Relaxed).ptr_eq(s));

        unsafe {
            a.into_owned();
        }
    }

    #[test]
    fn cas_success_and_failure() {
        let a = Atomic::new(1u32);
        let cur = a.load(Relaxed);
        let next = Shared::from_owned(2u32);
        assert!(a.compare_exchange(cur, next, AcqRel, Acquire).is_ok());
        // stale CAS fails and reports current value
        let err = a
            .compare_exchange(cur, Shared::null(), AcqRel, Acquire)
            .unwrap_err();
        assert!(err.ptr_eq(next));
        unsafe {
            cur.drop_owned();
            a.into_owned();
        }
    }

    #[test]
    fn fetch_or_tag_marks() {
        let a = Atomic::new(7i64);
        let before = a.fetch_or_tag(crate::tagged::TAG_DELETED, AcqRel);
        assert_eq!(before.tag(), 0);
        assert_eq!(a.load(Relaxed).tag(), crate::tagged::TAG_DELETED);
        let before2 = a.fetch_or_tag(crate::tagged::TAG_INVALIDATED, AcqRel);
        assert_eq!(before2.tag(), crate::tagged::TAG_DELETED);
        assert_eq!(
            a.load(Relaxed).tag(),
            crate::tagged::TAG_DELETED | crate::tagged::TAG_INVALIDATED
        );
        unsafe {
            a.into_owned();
        }
    }

    #[test]
    fn null_atomic() {
        let a: Atomic<u64> = Atomic::null();
        assert!(a.load(Relaxed).is_null());
        assert!(unsafe { a.load(Relaxed).as_ref() }.is_none());
    }

    #[test]
    fn shared_roundtrip_usize() {
        let s = Shared::from_owned(5u128).with_tag(1);
        let w = s.into_usize();
        let s2 = Shared::<u128>::from_usize(w);
        assert_eq!(s, s2);
        unsafe { s.with_tag(0).drop_owned() };
    }
}
