//! Tunable exponential backoff for CAS retry loops.
//!
//! Every lock-free structure in `crates/ds` retries a failed
//! `compare_exchange` by re-entering the coherence storm immediately; under
//! write-heavy contention (the paper's fig9 sweep) that turns each cache
//! line into a ping-pong hot spot and — on oversubscribed hosts — burns
//! whole scheduler quanta spinning against a preempted winner. [`Backoff`]
//! is the shared damper: each failed attempt escalates through three
//! phases,
//!
//! 1. **spin** — `2^step` `spin_loop` hints, staying on-core (cheap when
//!    the winner is running on another core and will finish in nanoseconds),
//! 2. **yield** — `thread::yield_now`, giving a preempted winner its quantum
//!    back (the decisive phase when threads > cores),
//! 3. **park** — an exponentially growing, jittered sleep, bounded by
//!    [`BackoffConfig::max_exp`], for storms that outlast a quantum.
//!
//! Jitter decorrelates threads that failed on the same CAS so they do not
//! re-collide in lockstep. The jitter PRNG is seeded from a process-global
//! sequence (never from time or ASLR), so runs are deterministic under
//! Miri and under the fault-injection feature's replay schedules: the same
//! thread-creation order reproduces the same backoff decisions.
//!
//! Knobs (read once per process):
//!
//! * `SMR_BACKOFF_SPIN_LIMIT` — number of doubling spin steps before the
//!   yield phase (default 6, i.e. up to 64 spin hints per step).
//! * `SMR_BACKOFF_MAX_EXP` — cap on the park-phase exponent; the longest
//!   single park is `2^max_exp` µs (default 10 → ~1 ms).
//! * `SMR_NO_BACKOFF=1` — global opt-out: every step becomes a no-op, so
//!   the fig9 orchestrator can bench "bare" CAS loops against damped ones
//!   in the same binary.
//!
//! Every step is reported to [`crate::counters`] so the bench harness can
//! print retry/backoff rates next to throughput, and the park path carries
//! a [`fault_point!`](crate::fault_point) (`backoff::park`) so the fault
//! matrix can stall a backer-off thread and prove garbage stays bounded.

use std::sync::OnceLock;

use crate::counters;

/// Yield-phase length: steps `spin_limit .. spin_limit + YIELD_STEPS` call
/// `yield_now` before the park phase begins.
const YIELD_STEPS: u32 = 4;

/// Park-phase base unit: the first park is `PARK_BASE_NS << 0` = 1 µs.
const PARK_BASE_NS: u64 = 1_000;

/// Named fault-injection points compiled into this crate.
pub const FAULT_POINTS: &[&str] = &["backoff::park"];

/// Resolved backoff tuning (env knobs or test overrides).
#[derive(Debug, Clone, Copy)]
pub struct BackoffConfig {
    /// Doubling spin steps before escalating to the yield phase.
    pub spin_limit: u32,
    /// Cap on the park-phase exponent (`2^max_exp` µs per park at most).
    pub max_exp: u32,
    /// `SMR_NO_BACKOFF`: every step short-circuits to a no-op.
    pub disabled: bool,
}

impl Default for BackoffConfig {
    fn default() -> Self {
        Self {
            spin_limit: 6,
            max_exp: 10,
            disabled: false,
        }
    }
}

fn process_config() -> &'static BackoffConfig {
    static CONFIG: OnceLock<BackoffConfig> = OnceLock::new();
    CONFIG.get_or_init(|| BackoffConfig {
        spin_limit: crate::env::parse_u32("SMR_BACKOFF_SPIN_LIMIT")
            .unwrap_or(6)
            .min(16),
        max_exp: crate::env::parse_u32("SMR_BACKOFF_MAX_EXP")
            .unwrap_or(10)
            .min(20),
        disabled: crate::env::parse_bool("SMR_NO_BACKOFF").unwrap_or(false),
    })
}

/// Deterministic per-thread seed sequence: each thread draws a distinct
/// 32-bit lane from a global counter at first use, then increments a local
/// counter per [`Backoff`] constructed. No time, no ASLR — a fixed
/// thread-creation order replays the same jitter everywhere (Miri, fault
/// replays, CI).
fn next_seed() -> u64 {
    use std::cell::Cell;
    use std::sync::atomic::{AtomicU64, Ordering};
    static THREAD_LANE: AtomicU64 = AtomicU64::new(1);
    thread_local! {
        static LOCAL: Cell<u64> = const { Cell::new(0) };
    }
    LOCAL.with(|l| {
        let mut v = l.get();
        if v == 0 {
            v = THREAD_LANE.fetch_add(1, Ordering::Relaxed) << 32;
        }
        l.set(v + 1);
        v + 1
    })
}

#[inline]
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E3779B97F4A7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

/// Exponential spin → yield → park backoff with seeded jitter.
///
/// Construct one per operation (cheap: one thread-local counter bump),
/// call [`snooze`](Backoff::snooze) — or [`cas_failed`](Backoff::cas_failed)
/// to also record the retry — after each failed attempt, and
/// [`reset`](Backoff::reset) after any success so the next conflict starts
/// cheap again.
#[derive(Debug)]
pub struct Backoff {
    step: u32,
    rng: u64,
    config: BackoffConfig,
}

impl Default for Backoff {
    fn default() -> Self {
        Self::new()
    }
}

impl Backoff {
    /// A fresh backoff using the process-wide [`BackoffConfig`] (env knobs).
    #[inline]
    pub fn new() -> Self {
        Self::with_config(*process_config(), next_seed())
    }

    /// A backoff with an explicit config and jitter seed (tests, and the
    /// fault matrix's deterministic schedules).
    pub fn with_config(config: BackoffConfig, seed: u64) -> Self {
        Self {
            step: 0,
            rng: splitmix64(seed | 1),
            config,
        }
    }

    /// Next jitter word (xorshift64*); also usable by callers that need a
    /// cheap decorrelated draw, e.g. elimination-slot selection.
    #[inline]
    pub fn jitter_u64(&mut self) -> u64 {
        let mut x = self.rng;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.rng = x;
        x.wrapping_mul(0x2545F4914F6CDD1D)
    }

    /// Forget accumulated pressure: the next [`snooze`](Backoff::snooze)
    /// starts back in the cheapest spin step.
    #[inline]
    pub fn reset(&mut self) {
        self.step = 0;
    }

    /// Whether the escalation has reached the park phase — the signal
    /// structure variants use to divert (e.g. a stack push moving to the
    /// elimination array instead of sleeping).
    #[inline]
    pub fn is_parking(&self) -> bool {
        !self.config.disabled && self.step >= self.config.spin_limit + YIELD_STEPS
    }

    /// Records one failed `compare_exchange` in the global counters, then
    /// backs off one step. The single call CAS retry loops thread through.
    #[inline]
    pub fn cas_failed(&mut self) {
        counters::incr_cas_failure(1);
        self.snooze();
    }

    /// Backs off one step through spin → yield → park.
    #[inline]
    pub fn snooze(&mut self) {
        if self.config.disabled {
            return;
        }
        let step = self.step;
        self.step = step.saturating_add(1);
        if step < self.config.spin_limit {
            counters::incr_backoff_spin();
            for _ in 0..(1u32 << step.min(16)) {
                std::hint::spin_loop();
            }
        } else if step < self.config.spin_limit + YIELD_STEPS {
            counters::incr_backoff_yield();
            std::thread::yield_now();
        } else {
            let exp = (step - self.config.spin_limit - YIELD_STEPS).min(self.config.max_exp);
            let base = PARK_BASE_NS << exp;
            // Jitter in [base/2, base): decorrelates threads that failed on
            // the same CAS without ever exceeding the configured cap.
            let jittered = base / 2 + self.jitter_u64() % (base / 2).max(1);
            park(jittered);
        }
    }

    /// Spin-only variant for paths that must never leave the core (e.g.
    /// waiting out a partner inside an elimination slot): caps at the spin
    /// limit instead of escalating.
    #[inline]
    pub fn spin(&mut self) {
        if self.config.disabled {
            return;
        }
        let step = self.step.min(self.config.spin_limit);
        self.step = self.step.saturating_add(1);
        counters::incr_backoff_spin();
        for _ in 0..(1u32 << step.min(16)) {
            std::hint::spin_loop();
        }
    }
}

/// The park primitive behind the backoff's third phase: a bounded sleep,
/// annotated with the `backoff::park` fault point so the adversarial matrix
/// can turn any parked thread into a stalled one.
///
/// Under Miri a sleep would only slow the interpreter, so the park
/// degenerates to a yield (the jitter arithmetic above stays exercised).
pub fn park(duration_ns: u64) {
    counters::incr_backoff_park();
    crate::fault_point!("backoff::park");
    #[cfg(miri)]
    {
        let _ = duration_ns;
        std::thread::yield_now();
    }
    #[cfg(not(miri))]
    std::thread::sleep(std::time::Duration::from_nanos(duration_ns));
}

#[cfg(test)]
mod tests {
    use super::*;

    fn test_config() -> BackoffConfig {
        BackoffConfig {
            spin_limit: 2,
            max_exp: 3,
            disabled: false,
        }
    }

    #[test]
    fn same_seed_same_jitter_sequence() {
        let mut a = Backoff::with_config(test_config(), 42);
        let mut b = Backoff::with_config(test_config(), 42);
        for _ in 0..64 {
            assert_eq!(a.jitter_u64(), b.jitter_u64());
        }
        let mut c = Backoff::with_config(test_config(), 43);
        let diverged = (0..64).any(|_| a.jitter_u64() != c.jitter_u64());
        assert!(diverged, "different seeds must decorrelate");
    }

    #[test]
    fn phases_escalate_in_order_with_exact_counter_deltas() {
        let _serial = crate::counters::test_lock();
        let (s0, y0, p0) = counters::total_backoff();
        let mut b = Backoff::with_config(test_config(), 7);
        // spin_limit=2 spins, YIELD_STEPS yields, then parks forever after.
        for _ in 0..2 {
            assert!(!b.is_parking());
            b.snooze();
        }
        for _ in 0..YIELD_STEPS {
            assert!(!b.is_parking());
            b.snooze();
        }
        assert!(b.is_parking());
        for _ in 0..3 {
            b.snooze();
        }
        let (s1, y1, p1) = counters::total_backoff();
        assert_eq!(
            (s1 - s0, y1 - y0, p1 - p0),
            (2, YIELD_STEPS as u64, 3),
            "each phase must account its own steps"
        );
    }

    #[test]
    fn park_exponent_is_monotone_and_capped() {
        // The park duration derives from min(step - spins - yields,
        // max_exp); replicate the arithmetic and check the cap holds.
        let cfg = test_config();
        let mut prev_cap = 0u64;
        for step in (cfg.spin_limit + YIELD_STEPS)..(cfg.spin_limit + YIELD_STEPS + 10) {
            let exp = (step - cfg.spin_limit - YIELD_STEPS).min(cfg.max_exp);
            let cap = PARK_BASE_NS << exp;
            assert!(cap >= prev_cap, "park bound must be monotone");
            assert!(
                cap <= PARK_BASE_NS << cfg.max_exp,
                "park bound must respect max_exp"
            );
            prev_cap = cap;
        }
        assert_eq!(prev_cap, PARK_BASE_NS << cfg.max_exp, "cap must be reached");
    }

    #[test]
    fn jittered_park_duration_stays_in_bounds() {
        let mut b = Backoff::with_config(test_config(), 99);
        for exp in 0..4u32 {
            let base = PARK_BASE_NS << exp;
            for _ in 0..256 {
                let jittered = base / 2 + b.jitter_u64() % (base / 2).max(1);
                assert!(jittered >= base / 2 && jittered < base);
            }
        }
    }

    #[test]
    fn disabled_short_circuits_everything() {
        let _serial = crate::counters::test_lock();
        let cfg = BackoffConfig {
            disabled: true,
            ..test_config()
        };
        let (s0, y0, p0) = counters::total_backoff();
        let mut b = Backoff::with_config(cfg, 1);
        let started = std::time::Instant::now();
        for _ in 0..10_000 {
            b.snooze();
            b.spin();
        }
        assert!(!b.is_parking(), "disabled backoff never reports parking");
        assert_eq!(
            counters::total_backoff(),
            (s0, y0, p0),
            "disabled backoff must not account steps"
        );
        assert!(
            started.elapsed() < std::time::Duration::from_secs(2),
            "10k disabled snoozes must be near-instant (no parks)"
        );
    }

    #[test]
    fn reset_returns_to_spin_phase() {
        let mut b = Backoff::with_config(test_config(), 5);
        for _ in 0..(2 + YIELD_STEPS) {
            b.snooze();
        }
        assert!(b.is_parking());
        b.reset();
        assert!(!b.is_parking());
    }

    #[test]
    fn default_config_reads_like_the_docs() {
        let d = BackoffConfig::default();
        assert_eq!(d.spin_limit, 6);
        assert_eq!(d.max_exp, 10);
        assert!(!d.disabled);
    }
}
