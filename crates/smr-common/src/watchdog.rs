//! Graceful-degradation detection for stalled reclamation.
//!
//! The paper's Table 1 claim is about *failure modes*: when a thread stalls
//! or dies, HP/HP++/PEBR keep unreclaimed garbage bounded while EBR's grows
//! without limit. [`GarbageWatchdog`] turns that claim into an observable:
//! a harness samples a scheme-appropriate *progress token* (the global
//! epoch for EBR/PEBR, [`counters::total_freed`](crate::counters::total_freed)
//! for the hazard-based schemes) together with the current garbage count,
//! and the watchdog classifies the run as healthy, degraded-but-bounded, or
//! growing without bound.

use std::time::{Duration, Instant};

/// Health classification produced by [`GarbageWatchdog::observe`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum WatchdogStatus {
    /// Reclamation is making progress (the progress token advanced
    /// recently) and garbage is within the configured bound.
    Healthy,
    /// Progress has stalled but garbage stayed within the bound — the
    /// graceful degradation hazard-based schemes promise under Table 1.
    DegradedBounded {
        /// Highest garbage count seen so far.
        peak: usize,
    },
    /// Progress has stalled for at least the configured window *and*
    /// garbage kept growing past the bound — EBR's failure mode.
    GrowingUnbounded {
        /// Garbage count at the offending observation.
        garbage: usize,
        /// How long the progress token has been stuck.
        stalled_for: Duration,
    },
}

/// Classifies sampled (progress token, garbage count) pairs; see the
/// module docs for what to feed it per scheme.
pub struct GarbageWatchdog {
    bound: usize,
    stall_window: Duration,
    last_progress: Option<(u64, Instant)>,
    peak: usize,
}

impl GarbageWatchdog {
    /// `bound` is the garbage ceiling the scheme is expected to respect
    /// (e.g. HP's `k·H + threshold` formula); `stall_window` is how long
    /// the progress token may sit still before the watchdog calls the run
    /// stalled.
    pub fn new(bound: usize, stall_window: Duration) -> Self {
        Self {
            bound,
            stall_window,
            last_progress: None,
            peak: 0,
        }
    }

    /// Feeds one sample. `progress_token` is any monotonically increasing
    /// counter that moves iff reclamation moves; `garbage` is the current
    /// unreclaimed count.
    pub fn observe(&mut self, progress_token: u64, garbage: usize) -> WatchdogStatus {
        self.observe_at(progress_token, garbage, Instant::now())
    }

    fn observe_at(&mut self, token: u64, garbage: usize, now: Instant) -> WatchdogStatus {
        self.peak = self.peak.max(garbage);
        let stalled_for = match &mut self.last_progress {
            Some((last, since)) if *last == token => now.saturating_duration_since(*since),
            slot => {
                *slot = Some((token, now));
                Duration::ZERO
            }
        };
        if stalled_for < self.stall_window {
            if garbage <= self.bound {
                WatchdogStatus::Healthy
            } else {
                // Over bound but the scheme is still reclaiming: give it the
                // benefit of the stall window before declaring unbounded.
                WatchdogStatus::DegradedBounded { peak: self.peak }
            }
        } else if garbage <= self.bound {
            WatchdogStatus::DegradedBounded { peak: self.peak }
        } else {
            WatchdogStatus::GrowingUnbounded {
                garbage,
                stalled_for,
            }
        }
    }

    /// Highest garbage count observed so far.
    pub fn peak(&self) -> usize {
        self.peak
    }

    /// The configured garbage ceiling.
    pub fn bound(&self) -> usize {
        self.bound
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const WINDOW: Duration = Duration::from_millis(100);

    #[test]
    fn advancing_token_within_bound_is_healthy() {
        let mut w = GarbageWatchdog::new(100, WINDOW);
        let t0 = Instant::now();
        for i in 0..10 {
            let s = w.observe_at(i, 50, t0 + Duration::from_millis(50 * i as u32 as u64));
            assert_eq!(s, WatchdogStatus::Healthy);
        }
        assert_eq!(w.peak(), 50);
    }

    #[test]
    fn stalled_token_within_bound_is_degraded_bounded() {
        let mut w = GarbageWatchdog::new(100, WINDOW);
        let t0 = Instant::now();
        assert_eq!(w.observe_at(7, 90, t0), WatchdogStatus::Healthy);
        let s = w.observe_at(7, 99, t0 + Duration::from_millis(250));
        assert_eq!(s, WatchdogStatus::DegradedBounded { peak: 99 });
    }

    #[test]
    fn stalled_token_over_bound_is_growing() {
        let mut w = GarbageWatchdog::new(100, WINDOW);
        let t0 = Instant::now();
        w.observe_at(7, 50, t0);
        let s = w.observe_at(7, 5000, t0 + Duration::from_millis(300));
        match s {
            WatchdogStatus::GrowingUnbounded {
                garbage,
                stalled_for,
            } => {
                assert_eq!(garbage, 5000);
                assert!(stalled_for >= WINDOW);
            }
            other => panic!("expected GrowingUnbounded, got {other:?}"),
        }
    }

    #[test]
    fn progress_resets_the_stall_clock() {
        let mut w = GarbageWatchdog::new(100, WINDOW);
        let t0 = Instant::now();
        w.observe_at(1, 5000, t0);
        // Token advanced: even over-bound garbage is not "unbounded growth".
        let s = w.observe_at(2, 5000, t0 + Duration::from_millis(300));
        assert_eq!(s, WatchdogStatus::DegradedBounded { peak: 5000 });
        // And a long stretch after the advance counts from the advance.
        let s = w.observe_at(2, 6000, t0 + Duration::from_millis(301));
        assert_eq!(s, WatchdogStatus::DegradedBounded { peak: 6000 });
        let s = w.observe_at(2, 6001, t0 + Duration::from_millis(600));
        assert!(matches!(s, WatchdogStatus::GrowingUnbounded { .. }));
    }
}
