//! Named fault-injection points for adversarial robustness testing.
//!
//! Robust-reclamation work (PEBR, DEBRA+, Hyaline) treats stalled and
//! crashed threads as first-class adversaries. This module gives every
//! scheme in the workspace a way to *become* that adversary
//! deterministically: hot paths are annotated with named injection points
//! ([`fault_point!`]), and a test installs a [`FaultPlan`] that makes a
//! specific hit of a specific point stall, delay, yield-storm, or panic.
//!
//! # Zero cost when disabled
//!
//! Without the `fault-injection` cargo feature, [`fault_point!`] expands to
//! an empty block — the annotated hot paths (`hp::try_protect`, `ebr::pin`,
//! `hpp::try_unlink`, …) compile to exactly the code they had before the
//! points existed. Everything below this paragraph describes the engine
//! that exists only *with* the feature.
//!
//! # Driving the engine
//!
//! Programmatic (tests):
//!
//! ```ignore
//! let plan = fault::plan()
//!     .at("hp::reclaim::before_fence", 1, FaultAction::Stall)
//!     .install();                  // serializes with other plans
//! // ... spawn the victim, wait for fault::stalled_count(..) == 1 ...
//! fault::release("hp::reclaim::before_fence");
//! drop(plan);                      // disarms, releases all stalls
//! ```
//!
//! Environment (whole-process, e.g. a bench binary):
//!
//! * `SMR_FAULT_SCHEDULE="<point>=<action>[@<n>|@every:<n>];..."` with
//!   actions `delay:<ms>`, `yield:<n>`, `stall`, `panic` (default `@1`).
//! * `SMR_FAULT_SEED=<u64>` — seeded yield-storm fuzzing: every point hit
//!   consults a per-thread xorshift PRNG and with probability `1/period`
//!   (default 1/16, `SMR_FAULT_PERIOD` overrides) performs a short yield
//!   storm. Decisions are a pure function of the seed and the thread's
//!   registration order, so a seed reproduces the same per-thread
//!   injection sequence.
//! * `SMR_FAULT_STALL_MS=<ms>` — upper bound on any single stall (default
//!   30 000 ms) so a forgotten release can never hang CI.
//!
//! Every taken injection is recorded; [`take_log`] returns the log for
//! determinism assertions (same seed ⇒ same log).

/// Marks a named fault-injection point.
///
/// Expands to nothing unless the `fault-injection` feature is enabled, in
/// which case it forwards to [`fault::hit`](crate::fault::hit). Point names
/// are namespaced `crate::operation::window`, e.g.
/// `"hp::protect::after_announce"`; DESIGN.md §1.7 lists every point and
/// the invariant it attacks.
#[cfg(not(feature = "fault-injection"))]
#[macro_export]
macro_rules! fault_point {
    ($name:expr) => {{}};
}

/// Marks a named fault-injection point.
///
/// The `fault-injection` feature is enabled, so this forwards to
/// [`fault::hit`](crate::fault::hit), which consults the installed
/// [`FaultPlan`](crate::fault::FaultPlan) (or the `SMR_FAULT_*`
/// environment schedule) and may stall, delay, yield, or panic here.
#[cfg(feature = "fault-injection")]
#[macro_export]
macro_rules! fault_point {
    ($name:expr) => {
        $crate::fault::hit($name)
    };
}

#[cfg(feature = "fault-injection")]
pub use engine::{
    hit, hits, plan, release, release_all, stalled_count, take_log, FaultAction, FaultPlan,
    InstalledPlan, LogEntry,
};

#[cfg(feature = "fault-injection")]
mod engine {
    use std::collections::{HashMap, HashSet};
    use std::sync::atomic::{AtomicU64, AtomicU8, AtomicUsize, Ordering};
    use std::sync::{Condvar, Mutex, MutexGuard, OnceLock};
    use std::time::{Duration, Instant};

    /// What an armed injection point does when its trigger matches.
    #[derive(Clone, Debug, PartialEq, Eq)]
    pub enum FaultAction {
        /// Sleep for the given duration (a preempted thread).
        Delay(Duration),
        /// Call `yield_now` this many times (an unlucky scheduling burst).
        YieldStorm(u32),
        /// Park until [`release`]/[`release_all`] (a stalled thread). A
        /// stall never outlives `SMR_FAULT_STALL_MS` (default 30 s).
        Stall,
        /// Panic with an `"injected fault"` payload (a dying thread; the
        /// test catches it at the thread or `catch_unwind` boundary).
        Panic,
    }

    #[derive(Clone)]
    struct Trigger {
        /// Fire on hit `nth` exactly, or on every multiple when `every`.
        nth: u64,
        every: bool,
        action: FaultAction,
    }

    impl Trigger {
        fn matches(&self, hits: u64) -> bool {
            if self.every {
                hits.is_multiple_of(self.nth)
            } else {
                hits == self.nth
            }
        }
    }

    /// One taken injection, for determinism assertions.
    #[derive(Clone, Debug, PartialEq, Eq)]
    pub struct LogEntry {
        /// The point that fired.
        pub point: String,
        /// Which hit of that point fired (1-based).
        pub hit: u64,
        /// The action that was performed.
        pub action: FaultAction,
    }

    #[derive(Default)]
    struct PointRec {
        hits: u64,
        triggers: Vec<Trigger>,
    }

    #[derive(Default)]
    struct Config {
        points: HashMap<String, PointRec>,
        /// Seeded yield-storm fuzzing: `(seed, period)`.
        seeded: Option<(u64, u64)>,
        /// Bumped on every plan install so per-thread PRNGs reseed.
        plan_epoch: u64,
        log: Vec<LogEntry>,
    }

    struct StallState {
        generation: u64,
        released: HashSet<String>,
        parked: HashMap<String, usize>,
    }

    /// 0 = uninitialized, 1 = disarmed, 2 = armed.
    static STATE: AtomicU8 = AtomicU8::new(0);
    /// Whether an environment schedule armed the process at startup.
    static ENV_ARMED: OnceLock<bool> = OnceLock::new();
    /// Threads get a stable index in registration order for seeded PRNGs.
    static THREAD_SEQ: AtomicUsize = AtomicUsize::new(0);
    static PLAN_EPOCH: AtomicU64 = AtomicU64::new(0);

    fn config() -> &'static Mutex<Config> {
        static CONFIG: OnceLock<Mutex<Config>> = OnceLock::new();
        CONFIG.get_or_init(|| Mutex::new(Config::default()))
    }

    fn stall_state() -> &'static (Mutex<StallState>, Condvar) {
        static STALL: OnceLock<(Mutex<StallState>, Condvar)> = OnceLock::new();
        STALL.get_or_init(|| {
            (
                Mutex::new(StallState {
                    generation: 0,
                    released: HashSet::new(),
                    parked: HashMap::new(),
                }),
                Condvar::new(),
            )
        })
    }

    /// Plans are process-global state; installing one takes this lock so
    /// concurrently running tests cannot contaminate each other.
    fn plan_lock() -> MutexGuard<'static, ()> {
        static LOCK: Mutex<()> = Mutex::new(());
        // A panicking fault test poisons the lock by design; the config is
        // reset on every install, so poison carries no bad state.
        LOCK.lock().unwrap_or_else(|e| e.into_inner())
    }

    fn lock_config() -> MutexGuard<'static, Config> {
        config().lock().unwrap_or_else(|e| e.into_inner())
    }

    fn stall_max() -> Duration {
        static MAX: OnceLock<Duration> = OnceLock::new();
        *MAX.get_or_init(|| {
            std::env::var("SMR_FAULT_STALL_MS")
                .ok()
                .and_then(|v| v.parse().ok())
                .map(Duration::from_millis)
                .unwrap_or(Duration::from_secs(30))
        })
    }

    fn splitmix64(mut x: u64) -> u64 {
        x = x.wrapping_add(0x9e3779b97f4a7c15);
        x = (x ^ (x >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        x = (x ^ (x >> 27)).wrapping_mul(0x94d049bb133111eb);
        x ^ (x >> 31)
    }

    /// Per-thread PRNG for seeded mode, reseeded whenever a new plan is
    /// installed so runs with the same seed replay the same decisions.
    fn seeded_decision(seed: u64, period: u64) -> Option<FaultAction> {
        use std::cell::Cell;
        thread_local! {
            // (plan epoch this state belongs to, xorshift state)
            static RNG: Cell<(u64, u64)> = const { Cell::new((u64::MAX, 0)) };
            static THREAD_IDX: Cell<usize> = const { Cell::new(usize::MAX) };
        }
        let idx = THREAD_IDX.with(|i| {
            if i.get() == usize::MAX {
                i.set(THREAD_SEQ.fetch_add(1, Ordering::Relaxed));
            }
            i.get()
        });
        let epoch = PLAN_EPOCH.load(Ordering::Relaxed);
        let r = RNG.with(|c| {
            let (e, mut s) = c.get();
            if e != epoch {
                s = splitmix64(seed ^ (idx as u64).wrapping_mul(0x9e3779b97f4a7c15));
                if s == 0 {
                    s = 1;
                }
            }
            // xorshift64
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            c.set((epoch, s));
            s
        });
        if r.is_multiple_of(period) {
            Some(FaultAction::YieldStorm(1 + ((r >> 32) % 8) as u32))
        } else {
            None
        }
    }

    /// Parses an `SMR_FAULT_SCHEDULE` string.
    ///
    /// Grammar: `point=action[@n|@every:n]` entries separated by `;`.
    /// Actions: `delay:<ms>`, `yield:<n>`, `stall`, `panic`.
    fn parse_schedule(s: &str) -> Vec<(String, Trigger)> {
        let mut out = Vec::new();
        for entry in s.split(';').map(str::trim).filter(|e| !e.is_empty()) {
            let Some((point, rest)) = entry.split_once('=') else {
                eprintln!("SMR_FAULT_SCHEDULE: ignoring malformed entry {entry:?}");
                continue;
            };
            let (action_str, when) = match rest.split_once('@') {
                Some((a, w)) => (a, Some(w)),
                None => (rest, None),
            };
            let action = match action_str.split_once(':') {
                Some(("delay", ms)) => ms
                    .parse()
                    .ok()
                    .map(|ms| FaultAction::Delay(Duration::from_millis(ms))),
                Some(("yield", n)) => n.parse().ok().map(FaultAction::YieldStorm),
                None if action_str == "stall" => Some(FaultAction::Stall),
                None if action_str == "panic" => Some(FaultAction::Panic),
                _ => None,
            };
            let Some(action) = action else {
                eprintln!("SMR_FAULT_SCHEDULE: ignoring bad action in {entry:?}");
                continue;
            };
            let (nth, every) = match when {
                None => (1, false),
                Some(w) => match w.strip_prefix("every:") {
                    Some(n) => match n.parse() {
                        Ok(n) => (n, true),
                        Err(_) => continue,
                    },
                    None => match w.parse() {
                        Ok(n) => (n, false),
                        Err(_) => continue,
                    },
                },
            };
            if nth == 0 {
                continue;
            }
            out.push((point.trim().to_string(), Trigger { nth, every, action }));
        }
        out
    }

    fn init_from_env() {
        let mut armed = false;
        {
            let mut cfg = lock_config();
            if let Ok(s) = std::env::var("SMR_FAULT_SCHEDULE") {
                for (point, trig) in parse_schedule(&s) {
                    cfg.points.entry(point).or_default().triggers.push(trig);
                    armed = true;
                }
            }
            if let Ok(seed) = std::env::var("SMR_FAULT_SEED") {
                if let Ok(seed) = seed.parse() {
                    let period = std::env::var("SMR_FAULT_PERIOD")
                        .ok()
                        .and_then(|v| v.parse().ok())
                        .filter(|&p| p > 0)
                        .unwrap_or(16);
                    cfg.seeded = Some((seed, period));
                    armed = true;
                }
            }
        }
        let _ = ENV_ARMED.set(armed);
        STATE.store(if armed { 2 } else { 1 }, Ordering::Release);
    }

    /// Records a hit of `name` and performs whatever the active schedule
    /// asks for. Called by [`fault_point!`](crate::fault_point); not meant
    /// to be invoked directly.
    #[inline]
    pub fn hit(name: &'static str) {
        match STATE.load(Ordering::Acquire) {
            1 => (),
            0 => {
                init_from_env();
                hit(name);
            }
            _ => on_hit(name),
        }
    }

    fn on_hit(name: &'static str) {
        let action = {
            let mut cfg = lock_config();
            let seeded = cfg.seeded;
            let rec = cfg.points.entry(name.to_string()).or_default();
            rec.hits += 1;
            let hits = rec.hits;
            let mut action = rec
                .triggers
                .iter()
                .find(|t| t.matches(hits))
                .map(|t| t.action.clone());
            if action.is_none() {
                if let Some((seed, period)) = seeded {
                    action = seeded_decision(seed, period);
                }
            }
            if let Some(a) = &action {
                cfg.log.push(LogEntry {
                    point: name.to_string(),
                    hit: hits,
                    action: a.clone(),
                });
            }
            action
        };
        match action {
            None => (),
            Some(FaultAction::Delay(d)) => std::thread::sleep(d),
            Some(FaultAction::YieldStorm(n)) => {
                for _ in 0..n {
                    std::thread::yield_now();
                }
            }
            Some(FaultAction::Panic) => {
                panic!("injected fault: {name}");
            }
            Some(FaultAction::Stall) => do_stall(name),
        }
    }

    fn do_stall(name: &str) {
        let (m, cv) = stall_state();
        let mut st = m.lock().unwrap_or_else(|e| e.into_inner());
        let my_gen = st.generation;
        *st.parked.entry(name.to_string()).or_insert(0) += 1;
        let deadline = Instant::now() + stall_max();
        while st.generation == my_gen && !st.released.contains(name) {
            let left = deadline.saturating_duration_since(Instant::now());
            if left.is_zero() {
                eprintln!("fault: stall at {name} hit SMR_FAULT_STALL_MS, resuming");
                break;
            }
            let (g, _) = cv
                .wait_timeout(st, left.min(Duration::from_millis(100)))
                .unwrap_or_else(|e| e.into_inner());
            st = g;
        }
        if let Some(n) = st.parked.get_mut(name) {
            *n -= 1;
        }
    }

    /// Number of times `name` has been crossed under the current plan.
    pub fn hits(name: &str) -> u64 {
        lock_config().points.get(name).map_or(0, |r| r.hits)
    }

    /// Number of threads currently parked in a [`FaultAction::Stall`] at
    /// `name` — the handshake tests use to know the victim is wedged.
    pub fn stalled_count(name: &str) -> usize {
        let (m, _) = stall_state();
        m.lock()
            .unwrap_or_else(|e| e.into_inner())
            .parked
            .get(name)
            .copied()
            .unwrap_or(0)
    }

    /// Opens the gate at `name`: wakes threads stalled there now, and makes
    /// future stalls at that point fall straight through.
    pub fn release(name: &str) {
        let (m, cv) = stall_state();
        m.lock()
            .unwrap_or_else(|e| e.into_inner())
            .released
            .insert(name.to_string());
        cv.notify_all();
    }

    /// Wakes every stalled thread (all points).
    pub fn release_all() {
        let (m, cv) = stall_state();
        {
            let mut st = m.lock().unwrap_or_else(|e| e.into_inner());
            st.generation += 1;
            st.released.clear();
        }
        cv.notify_all();
    }

    /// Drains and returns the injection log (each taken action, in order).
    pub fn take_log() -> Vec<LogEntry> {
        std::mem::take(&mut lock_config().log)
    }

    /// Starts building a [`FaultPlan`].
    pub fn plan() -> FaultPlan {
        FaultPlan {
            triggers: Vec::new(),
            seeded: None,
        }
    }

    /// A schedule of injections, built with [`plan`] and activated with
    /// [`FaultPlan::install`].
    #[derive(Default)]
    pub struct FaultPlan {
        triggers: Vec<(String, Trigger)>,
        seeded: Option<(u64, u64)>,
    }

    impl FaultPlan {
        /// Fire `action` on exactly the `nth` hit (1-based) of `point`.
        pub fn at(mut self, point: &str, nth: u64, action: FaultAction) -> Self {
            assert!(nth > 0, "hits are 1-based");
            self.triggers.push((
                point.to_string(),
                Trigger {
                    nth,
                    every: false,
                    action,
                },
            ));
            self
        }

        /// Fire `action` on every `n`-th hit of `point`.
        pub fn every(mut self, point: &str, n: u64, action: FaultAction) -> Self {
            assert!(n > 0, "period must be positive");
            self.triggers.push((
                point.to_string(),
                Trigger {
                    nth: n,
                    every: true,
                    action,
                },
            ));
            self
        }

        /// Adds seeded yield-storm fuzzing on every point not matched by an
        /// explicit trigger (probability `1/period` per hit, per-thread
        /// deterministic — see the module docs).
        pub fn seeded(mut self, seed: u64, period: u64) -> Self {
            assert!(period > 0);
            self.seeded = Some((seed, period));
            self
        }

        /// Arms the plan. The returned guard serializes with every other
        /// plan in the process; dropping it disarms the engine, clears the
        /// schedule, and releases any still-stalled thread.
        pub fn install(self) -> InstalledPlan {
            let serial = plan_lock();
            {
                let mut cfg = lock_config();
                cfg.points.clear();
                cfg.log.clear();
                cfg.seeded = self.seeded;
                cfg.plan_epoch += 1;
                PLAN_EPOCH.store(cfg.plan_epoch, Ordering::Relaxed);
                for (point, trig) in self.triggers {
                    cfg.points.entry(point).or_default().triggers.push(trig);
                }
            }
            {
                let (m, _) = stall_state();
                let mut st = m.lock().unwrap_or_else(|e| e.into_inner());
                st.released.clear();
            }
            STATE.store(2, Ordering::Release);
            InstalledPlan { _serial: serial }
        }
    }

    /// Guard returned by [`FaultPlan::install`]; see there.
    pub struct InstalledPlan {
        _serial: MutexGuard<'static, ()>,
    }

    impl Drop for InstalledPlan {
        fn drop(&mut self) {
            // Disarm first so no new stall can begin, then free the parked.
            let env_armed = ENV_ARMED.get().copied().unwrap_or(false);
            STATE.store(if env_armed { 2 } else { 1 }, Ordering::Release);
            {
                let mut cfg = lock_config();
                cfg.points.clear();
                cfg.seeded = None;
                cfg.log.clear();
            }
            release_all();
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn schedule_grammar_parses() {
            let v = parse_schedule(
                "hp::reclaim::before_fence=panic@3; ebr::pin::before_validate=yield:4@every:10; \
                 a::b=stall; c::d=delay:25@2; junk; e=flyswat:9",
            );
            assert_eq!(v.len(), 4);
            assert_eq!(v[0].0, "hp::reclaim::before_fence");
            assert!(matches!(v[0].1.action, FaultAction::Panic));
            assert!(!v[0].1.every);
            assert_eq!(v[0].1.nth, 3);
            assert!(v[1].1.every);
            assert_eq!(v[1].1.nth, 10);
            assert!(matches!(v[1].1.action, FaultAction::YieldStorm(4)));
            assert!(matches!(v[2].1.action, FaultAction::Stall));
            assert_eq!(v[2].1.nth, 1);
            assert!(matches!(
                v[3].1.action,
                FaultAction::Delay(d) if d == Duration::from_millis(25)
            ));
        }

        #[test]
        fn hits_count_and_triggers_fire() {
            let _plan = plan()
                .at("test::point::a", 3, FaultAction::YieldStorm(1))
                .every("test::point::b", 2, FaultAction::YieldStorm(1))
                .install();
            for _ in 0..6 {
                hit("test::point::a");
                hit("test::point::b");
            }
            assert_eq!(hits("test::point::a"), 6);
            assert_eq!(hits("test::point::b"), 6);
            let log = take_log();
            let a_fires = log.iter().filter(|e| e.point == "test::point::a").count();
            let b_fires = log.iter().filter(|e| e.point == "test::point::b").count();
            assert_eq!(a_fires, 1, "nth=3 fires exactly once in 6 hits");
            assert_eq!(b_fires, 3, "every:2 fires 3 times in 6 hits");
        }

        #[test]
        fn uninstalled_points_are_silent() {
            // No plan (and no env in the test environment): hits fall
            // through without recording. Install and drop a plan first so
            // STATE is definitely resolved past the env probe.
            drop(plan().install());
            hit("test::point::silent");
            let _plan = plan().install();
            assert_eq!(hits("test::point::silent"), 0);
        }

        #[test]
        fn stall_parks_until_released() {
            let _plan = plan()
                .at("test::point::stall", 1, FaultAction::Stall)
                .install();
            let t = std::thread::spawn(|| {
                hit("test::point::stall");
            });
            while stalled_count("test::point::stall") == 0 {
                std::thread::yield_now();
            }
            assert_eq!(stalled_count("test::point::stall"), 1);
            release("test::point::stall");
            t.join().unwrap();
            assert_eq!(stalled_count("test::point::stall"), 0);
            // The gate stays open for later hits.
            hit("test::point::stall");
        }

        #[test]
        fn injected_panic_unwinds_with_payload() {
            let _plan = plan()
                .at("test::point::boom", 2, FaultAction::Panic)
                .install();
            hit("test::point::boom");
            let err = std::panic::catch_unwind(|| hit("test::point::boom")).unwrap_err();
            let msg = err
                .downcast_ref::<String>()
                .cloned()
                .unwrap_or_default();
            assert!(msg.contains("injected fault"), "payload: {msg}");
        }

        #[test]
        fn seeded_decisions_replay_for_same_seed() {
            let run = |seed: u64| -> Vec<LogEntry> {
                let _plan = plan().seeded(seed, 4).install();
                for _ in 0..200 {
                    hit("test::point::seeded");
                }
                take_log()
            };
            let a = run(42);
            let b = run(42);
            assert!(!a.is_empty(), "period 4 over 200 hits must fire");
            assert_eq!(a, b, "same seed must replay the same injections");
        }

        #[test]
        fn plan_drop_disarms_and_clears() {
            {
                let _plan = plan()
                    .at("test::point::tmp", 1, FaultAction::YieldStorm(1))
                    .install();
                hit("test::point::tmp");
                assert_eq!(hits("test::point::tmp"), 1);
            }
            let _plan = plan().install();
            assert_eq!(hits("test::point::tmp"), 0, "hits cleared with the plan");
        }
    }
}
