//! Pointer-tagging helpers.
//!
//! Concurrent linked structures store metadata in the low bits of aligned
//! pointers: bit 0 is the *logical deletion* mark (Harris-style lists, skip
//! lists, …) and bit 1 is the HP++ *invalidation* mark (§3.2 of the paper).
//! All nodes in this workspace are heap allocations with alignment ≥ 4, so two
//! low bits are always available.

/// Bit 0: the node (or the edge stored in this word) is logically deleted.
pub const TAG_DELETED: usize = 0b01;

/// Bit 1: the node has been invalidated by an HP++ unlinker (§3.2).
pub const TAG_INVALIDATED: usize = 0b10;

/// Mask of low bits available for tagging given the alignment of `T`.
#[inline]
pub const fn low_bits<T>() -> usize {
    (1 << std::mem::align_of::<T>().trailing_zeros()) - 1
}

/// Composes a raw pointer and a tag into a single word.
///
/// Any existing tag on `ptr` is replaced.
#[inline]
pub fn compose<T>(ptr: *mut T, tag: usize) -> usize {
    debug_assert!(tag <= low_bits::<T>(), "tag does not fit in alignment bits");
    (ptr as usize & !low_bits::<T>()) | (tag & low_bits::<T>())
}

/// Splits a word into its untagged pointer and tag.
#[inline]
pub fn decompose<T>(data: usize) -> (*mut T, usize) {
    ((data & !low_bits::<T>()) as *mut T, data & low_bits::<T>())
}

/// The untagged pointer part of a word.
#[inline]
pub fn untagged<T>(data: usize) -> *mut T {
    decompose::<T>(data).0
}

/// The tag part of a word.
#[inline]
pub fn tag_of<T>(data: usize) -> usize {
    data & low_bits::<T>()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[repr(align(8))]
    struct Node8(#[allow(dead_code)] u64);

    #[test]
    fn low_bits_reflect_alignment() {
        assert_eq!(low_bits::<u64>(), 0b111);
        assert_eq!(low_bits::<u32>(), 0b011);
        assert_eq!(low_bits::<u16>(), 0b001);
        assert_eq!(low_bits::<Node8>(), 0b111);
    }

    #[test]
    fn compose_decompose_roundtrip() {
        let b = Box::into_raw(Box::new(Node8(7)));
        for tag in 0..8 {
            let w = compose(b, tag);
            let (p, t) = decompose::<Node8>(w);
            assert_eq!(p, b);
            assert_eq!(t, tag);
        }
        unsafe { drop(Box::from_raw(b)) };
    }

    #[test]
    fn compose_replaces_existing_tag() {
        let b = Box::into_raw(Box::new(Node8(7)));
        let w = compose(b, TAG_DELETED);
        let rw = untagged::<Node8>(w);
        let w2 = compose(rw, TAG_INVALIDATED);
        assert_eq!(tag_of::<Node8>(w2), TAG_INVALIDATED);
        unsafe { drop(Box::from_raw(b)) };
    }

    #[test]
    fn null_composes() {
        let w = compose::<Node8>(std::ptr::null_mut(), TAG_DELETED);
        let (p, t) = decompose::<Node8>(w);
        assert!(p.is_null());
        assert_eq!(t, TAG_DELETED);
    }
}
