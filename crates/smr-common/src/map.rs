//! The common map interface and the guard-based scheme abstraction.

use crate::atomic::Shared;

/// A guard-based protection for critical sections.
///
/// NR (no-op), EBR (epoch pin) and PEBR (epoch pin + ejection) all protect
/// *whole critical sections* rather than individual pointers; concurrent data
/// structures written against this trait work with all three.
pub trait SchemeGuard {
    /// Hands a detached node to the scheme for eventual reclamation.
    ///
    /// # Safety
    /// `ptr` must be a live heap allocation that has been made unreachable
    /// from the data structure entry points, retired at most once, and never
    /// dereferenced by threads that start after this call.
    unsafe fn defer_destroy<T>(&self, ptr: Shared<T>);

    /// Whether this critical section is still valid.
    ///
    /// Always `true` for NR and EBR. For PEBR, returns `false` once the
    /// reclaimer has ejected this thread, after which the operation must stop
    /// dereferencing protected pointers and [`refresh`](Self::refresh).
    #[inline]
    fn validate(&self) -> bool {
        true
    }

    /// Ends the current critical section and starts a fresh one.
    ///
    /// After a failed [`validate`](Self::validate), call this before
    /// restarting the operation.
    fn refresh(&mut self);
}

/// A reclamation scheme whose protection unit is the critical section.
pub trait GuardedScheme: Send + Sync + 'static {
    /// Per-thread registration handle.
    type Handle: Send;
    /// The critical-section guard, borrowing the handle.
    type Guard<'a>: SchemeGuard
    where
        Self: 'a;

    /// Registers the current thread with the scheme.
    fn handle() -> Self::Handle;

    /// Enters a critical section.
    fn pin(handle: &mut Self::Handle) -> Self::Guard<'_>;
}

/// A concurrent key-value map, the interface every benchmarked structure
/// implements (paper §5).
///
/// Operations take a per-thread `Handle` carrying scheme registration and any
/// hazard-pointer slots, so the hot path performs no thread-local lookups.
pub trait ConcurrentMap<K, V> {
    /// Per-thread operation state (scheme handle, hazard pointers, …).
    type Handle;

    /// Creates an empty map.
    fn new() -> Self;

    /// Creates a per-thread handle for operating on this map.
    fn handle(&self) -> Self::Handle;

    /// Returns a clone of the value bound to `key`, if present.
    fn get(&self, handle: &mut Self::Handle, key: &K) -> Option<V>;

    /// Inserts `key → value`; returns `false` if `key` was already present.
    fn insert(&self, handle: &mut Self::Handle, key: K, value: V) -> bool;

    /// Removes `key`, returning its value if it was present.
    fn remove(&self, handle: &mut Self::Handle, key: &K) -> Option<V>;
}
