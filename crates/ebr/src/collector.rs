//! The global epoch state and per-thread registration.
//!
//! # Hot-path engineering (code-inspection notes)
//!
//! * **Pin/unpin executes no `SeqCst` fence and no atomic RMW.** `pin` is a
//!   relaxed store of the packed `(epoch << 1) | 1` state, a
//!   [`fence::light`] (a compiler fence when `membarrier(2)` is available),
//!   and a relaxed validating re-load of the global epoch; `unpin` is one
//!   release store. The matching [`fence::heavy`] sits in [`try_advance`],
//!   on the rare collection path — see the announce/observe protocol in
//!   `smr_common::fence`.
//! * **`try_advance` acquires no locks.** The participant registry is a
//!   lock-free intrusive list ([`smr_common::registry::Registry`]):
//!   registration CASes a node onto the head, unregistration marks the node
//!   dead with one `fetch_or`, and the advance check traverses the list
//!   lock-free, unlinking dead nodes as it passes. Unlinked registry nodes
//!   are retired *through EBR itself* — stamped with the current epoch and
//!   freed two epochs later, exactly like data-structure nodes, which is
//!   safe because every traverser is pinned.
//! * **Garbage lives in sealed generation bags** (`bags.rs`): a collection
//!   compares three stamps and frees whole expired bags without
//!   re-examining ineligible items.

use std::sync::atomic::{fence, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, OnceLock};

use parking_lot::Mutex;
use smr_common::policy::{PolicySlot, ReclaimPolicy, Verdict};
use smr_common::registry::{Node, Registry};
use smr_common::{counters, fence as smr_fence, CachePadded, Retired};

use crate::bags::GenBags;
use crate::guard::Guard;

/// Default retire count that triggers a collection attempt
/// (`EBR_COLLECT_THRESHOLD` overrides).
const DEFAULT_COLLECT_THRESHOLD: usize = 128;

/// Per-participant retires per collection attempt scale with the number of
/// registered threads: each attempt traverses the whole registry, so the
/// trigger grows as `k · participants` to keep the traversal cost per
/// retire O(k⁻¹) — the epoch analogue of HP's `R = k·H` rule.
const COLLECT_K: usize = 8;

/// The collection trigger's fixed floor: `max(floor, k · participants)`.
fn collect_threshold_floor() -> usize {
    static FLOOR: OnceLock<usize> = OnceLock::new();
    *FLOOR.get_or_init(|| {
        smr_common::env::parse_usize("EBR_COLLECT_THRESHOLD")
            .filter(|&n| n > 0)
            .unwrap_or(DEFAULT_COLLECT_THRESHOLD)
    })
}

/// EBR's pre-policy trigger formula as [`policy`](smr_common::policy)
/// parameters: `bags.len() ≥ max(EBR_COLLECT_THRESHOLD, 8 · participants)`
/// (`slots` in [`RetireStats`](smr_common::policy::RetireStats) is the live
/// participant count for this scheme).
pub fn legacy_trigger() -> smr_common::policy::Capped {
    smr_common::policy::Capped {
        floor: collect_threshold_floor(),
        k: COLLECT_K,
        period: 0,
    }
}

/// The env-selected default policy (`SMR_POLICY*` refining
/// [`legacy_trigger`]); with no policy env vars this is `Capped` with the
/// legacy parameters — bit-identical trigger decisions.
pub(crate) fn default_policy() -> Arc<dyn ReclaimPolicy> {
    smr_common::policy::PolicyConfig::from_env().build(legacy_trigger())
}

/// Per-participant epoch state. `state` packs `(epoch << 1) | pinned`.
///
/// Cache padding comes from the registry node (`#[repr(align(128))]`), so
/// two participants' states never share a line.
pub(crate) struct Participant {
    pub(crate) state: AtomicU64,
}

impl Participant {
    fn new() -> Self {
        Self {
            state: AtomicU64::new(0),
        }
    }

    #[inline]
    pub(crate) fn pinned_epoch(state: u64) -> Option<u64> {
        if state & 1 == 1 {
            Some(state >> 1)
        } else {
            None
        }
    }
}

/// The global side of an EBR instance.
pub struct Collector {
    pub(crate) epoch: CachePadded<AtomicU64>,
    /// Lock-free participant registry; one node per registered thread.
    pub(crate) registry: Registry<Participant>,
    /// Garbage abandoned by exited threads, adopted by later collections.
    orphans: Mutex<Vec<(u64, Retired)>>,
    /// Entry count of `orphans`, maintained under the lock. Lets collections
    /// skip the mutex entirely in the common no-orphans case.
    orphan_count: AtomicUsize,
    /// Collection-trigger policy; unset, the env-selected default over
    /// [`legacy_trigger`] is built lazily at the first deferred destroy.
    policy: PolicySlot,
}

impl Default for Collector {
    fn default() -> Self {
        Self::new()
    }
}

impl Collector {
    /// Creates an independent collector (tests use private instances; real
    /// users normally share [`crate::default_collector`]).
    pub const fn new() -> Self {
        Self {
            epoch: CachePadded::new(AtomicU64::new(0)),
            registry: Registry::new(),
            orphans: Mutex::new(Vec::new()),
            orphan_count: AtomicUsize::new(0),
            policy: PolicySlot::new(),
        }
    }

    /// Installs the collection-trigger policy (must run before the
    /// collector's first deferred destroy; the slot latches). Returns
    /// `false` if a policy was already installed.
    pub fn set_policy(&self, policy: Arc<dyn ReclaimPolicy>) -> bool {
        self.policy.install(policy)
    }

    /// Feeds a watchdog verdict to the trigger policy (`Adaptive` reacts;
    /// the others ignore it).
    pub fn report_verdict(&self, verdict: Verdict) {
        self.policy.report_verdict(verdict);
    }

    pub(crate) fn policy_slot(&self) -> &PolicySlot {
        &self.policy
    }

    /// Registers the current thread, returning its local handle.
    ///
    /// Requires a `'static` collector (the process-wide default, or a
    /// leaked test instance): participant records are linked into the
    /// collector's registry and reclaimed through the collector's own
    /// epochs, so a handle must be unable to outlive it.
    pub fn register(&'static self) -> LocalHandle {
        LocalHandle {
            global: self,
            record: self.registry.insert(Participant::new()),
            bags: GenBags::new(),
            guard_live: false,
            last_collect_ns: 0,
        }
    }

    /// Current global epoch (for diagnostics and tests).
    pub fn epoch(&self) -> u64 {
        self.epoch.load(Ordering::Relaxed)
    }

    /// Number of currently registered participants (approximate).
    pub fn participants(&self) -> usize {
        self.registry.live()
    }

    /// Retire count at which a thread attempts a collection:
    /// `max(EBR_COLLECT_THRESHOLD, 8 · participants)`.
    ///
    /// Public so tests can derive garbage bounds from the same formula the
    /// scheme enforces instead of hard-coding magic constants.
    #[inline]
    pub fn collect_threshold(&self) -> usize {
        collect_threshold_floor().max(COLLECT_K * self.registry.live())
    }

    /// Tries to advance the global epoch; returns the epoch afterwards.
    ///
    /// Advance succeeds only if every live pinned participant has observed
    /// the current epoch. Lock-free: one heavy fence, one registry
    /// traversal, one CAS. Dead participants encountered on the way are
    /// unlinked and retired into `bags` (the caller's — the caller is
    /// pinned, so the registry node outlives every concurrent traverser).
    pub(crate) fn try_advance(&self, bags: &mut GenBags) -> u64 {
        let e = self.epoch.load(Ordering::Relaxed);
        // Observer side of the announce/observe protocol: after this fence,
        // every participant state store made before the announcer's light
        // fence is visible below.
        smr_fence::heavy();
        smr_common::fault_point!("ebr::advance::before_traverse");
        let all_observed = self.registry.traverse(
            |p| match Participant::pinned_epoch(p.state.load(Ordering::Relaxed)) {
                Some(pinned) => pinned == e,
                None => true,
            },
            |node| {
                counters::incr_garbage(1);
                // Safety: the node came from `Box::into_raw` in
                // `Registry::insert`, and `traverse` hands each unlinked
                // node out exactly once.
                bags.push(e, unsafe { Retired::new(node) });
            },
        );
        if !all_observed {
            return e; // a straggler blocks the advance
        }
        // Order the participant reads above before publishing the new epoch.
        fence(Ordering::Acquire);
        // A collector stalled here has verified every participant but not
        // yet published — no other thread advances for it, epochs wedge.
        smr_common::fault_point!("ebr::advance::before_publish");
        let _ = self
            .epoch
            .compare_exchange(e, e + 1, Ordering::Release, Ordering::Relaxed);
        self.epoch.load(Ordering::Relaxed)
    }

    /// Donates a dying thread's garbage to the orphan list.
    fn donate_orphans(&self, donated: &mut Vec<(u64, Retired)>) {
        if donated.is_empty() {
            return;
        }
        let mut orphans = self.orphans.lock();
        orphans.append(donated);
        self.orphan_count.store(orphans.len(), Ordering::Release);
    }

    /// Number of orphaned retired blocks awaiting adoption (diagnostics;
    /// the kv-service quarantine path records this as the settled garbage
    /// leaked with a dead shard's collector).
    pub fn orphan_count(&self) -> usize {
        self.orphan_count.load(Ordering::Acquire)
    }

    /// Takes the orphan list if any and uncontended.
    ///
    /// Fast path: a single load when there are no orphans — no lock. Lock
    /// contention is tolerated by giving up; another collector is already
    /// adopting.
    fn take_orphans(&self) -> Option<Vec<(u64, Retired)>> {
        if self.orphan_count.load(Ordering::Acquire) == 0 {
            return None;
        }
        let mut orphans = self.orphans.try_lock()?;
        self.orphan_count.store(0, Ordering::Release);
        Some(std::mem::take(&mut *orphans))
    }
}

impl Drop for Collector {
    fn drop(&mut self) {
        // Exclusive access, and `register` requires `'static`, so no handle
        // can be live: free whatever garbage was donated. (The registry
        // frees its own nodes.)
        for (_, retired) in self.orphans.get_mut().drain(..) {
            unsafe { retired.free() };
        }
    }
}

/// A thread's registration with a [`Collector`].
///
/// Not `Sync`: one handle per thread. Dropping the handle unregisters the
/// thread and donates any unreclaimed garbage to the collector's orphan list.
pub struct LocalHandle {
    pub(crate) global: &'static Collector,
    /// This thread's registry node; owned by the registry, valid for the
    /// handle's lifetime (only `Drop` marks it dead).
    record: *const Node<Participant>,
    /// Epoch-stamped local garbage in sealed generation bags.
    pub(crate) bags: GenBags,
    pub(crate) guard_live: bool,
    /// When this thread last ran a collection (mono ns; only maintained
    /// when the installed policy wants time, else stays 0).
    pub(crate) last_collect_ns: u64,
}

// The handle is only a registration token plus thread-local garbage; the
// registry node it points to is Sync.
unsafe impl Send for LocalHandle {}

impl LocalHandle {
    #[inline]
    fn participant(&self) -> &Participant {
        // Valid: the node is unlinked only after `Drop` marks it dead, and
        // freed at least two epochs later.
        unsafe { (*self.record).data() }
    }

    /// Pins the thread, entering a critical section.
    pub fn pin(&mut self) -> Guard<'_> {
        assert!(!self.guard_live, "EBR guards must not be nested");
        self.pin_slow();
        self.guard_live = true;
        Guard::new(self)
    }

    /// The pin hot path: announce the observed epoch, light fence, validate
    /// that the epoch did not move. No `SeqCst` fence, no RMW.
    #[inline]
    pub(crate) fn pin_slow(&self) {
        let mut e = self.global.epoch.load(Ordering::Relaxed);
        loop {
            let state = &self.participant().state;
            let e2 = smr_fence::announce_then_validate(
                || {
                    state.store((e << 1) | 1, Ordering::Relaxed);
                    // The announce-to-validate window: a thread stalled here
                    // has announced an epoch every advancer must honor — the
                    // interleaving that wedges the global epoch (Table 1).
                    smr_common::fault_point!("ebr::pin::before_validate");
                },
                || self.global.epoch.load(Ordering::Relaxed),
            );
            if e == e2 {
                break;
            }
            e = e2;
        }
    }

    #[inline]
    pub(crate) fn unpin_slow(&self) {
        self.participant().state.store(0, Ordering::Release);
    }

    /// Number of blocks this thread has retired but not yet freed.
    pub fn local_garbage(&self) -> usize {
        self.bags.len()
    }

    /// Asks the collector's trigger policy whether a deferred destroy
    /// should attempt a collection now.
    pub(crate) fn should_collect(&self) -> bool {
        use smr_common::policy::{self, Decision, RetireStats};
        let slot = self.global.policy_slot();
        let policy = slot.get_or_init(default_policy);
        let since_scan_ns = if policy.wants_time() {
            smr_common::time::mono_ns().saturating_sub(self.last_collect_ns)
        } else {
            0
        };
        let stats = RetireStats {
            retired: self.bags.len(),
            slots: self.global.registry.live(),
            ops: 0,
            since_scan_ns,
            verdict: slot.verdict(),
        };
        policy::decide(policy, &stats) == Decision::Reclaim
    }

    /// Attempts an epoch advance and frees everything eligible.
    ///
    /// Must be called pinned (all callers hold a [`Guard`]): the registry
    /// traversal inside [`Collector::try_advance`] relies on it.
    pub(crate) fn collect(&mut self) {
        // Adopt orphans first so exited threads' garbage is not stranded.
        if let Some(orphans) = self.global.take_orphans() {
            let epoch = self.global.epoch.load(Ordering::Relaxed);
            for (stamp, retired) in orphans {
                if stamp + 2 <= epoch {
                    // Already expired; free without touching the bags.
                    unsafe { retired.free() };
                } else {
                    self.bags.push(stamp, retired);
                }
            }
        }
        smr_common::fault_point!("ebr::collect::after_adopt");
        let global_epoch = self.global.try_advance(&mut self.bags);
        self.bags.collect_expired(global_epoch);
        let slot = self.global.policy_slot();
        if slot.get_or_init(default_policy).wants_time() {
            self.last_collect_ns = smr_common::time::mono_ns();
        }
    }
}

impl Drop for LocalHandle {
    fn drop(&mut self) {
        // Unregistration and donation must run even if teardown itself
        // panics (a dying worker must neither wedge the epoch nor strand
        // garbage), so both live in a guard that runs during unwinding too.
        struct Teardown<'a>(&'a mut LocalHandle);
        impl Drop for Teardown<'_> {
            fn drop(&mut self) {
                let h = &mut *self.0;
                // Mark the registry node dead first so a concurrent advance
                // is not blocked on a participant that no longer runs.
                unsafe { h.global.registry.delete(h.record) };
                if h.bags.len() > 0 {
                    let mut donated = Vec::new();
                    h.bags.drain_into(&mut donated);
                    h.global.donate_orphans(&mut donated);
                }
            }
        }
        let _g = Teardown(self);
        smr_common::fault_point!("ebr::teardown::before_donate");
    }
}
