//! The global epoch state and per-thread registration.

use std::sync::atomic::{fence, AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;
use smr_common::{CachePadded, Retired};

use crate::guard::Guard;

/// Retire this many blocks before attempting a collection.
pub(crate) const COLLECT_THRESHOLD: usize = 128;

/// Per-participant epoch state. `state` packs `(epoch << 1) | pinned`.
pub(crate) struct Participant {
    pub(crate) state: CachePadded<AtomicU64>,
    pub(crate) dead: AtomicBool,
}

impl Participant {
    fn new() -> Self {
        Self {
            state: CachePadded::new(AtomicU64::new(0)),
            dead: AtomicBool::new(false),
        }
    }

    #[inline]
    pub(crate) fn pinned_epoch(state: u64) -> Option<u64> {
        if state & 1 == 1 {
            Some(state >> 1)
        } else {
            None
        }
    }
}

/// The global side of an EBR instance.
pub struct Collector {
    pub(crate) epoch: CachePadded<AtomicU64>,
    pub(crate) participants: Mutex<Vec<Arc<Participant>>>,
    /// Garbage abandoned by exited threads, adopted by later collections.
    pub(crate) orphans: Mutex<Vec<(u64, Retired)>>,
}

impl Default for Collector {
    fn default() -> Self {
        Self::new()
    }
}

impl Collector {
    /// Creates an independent collector (tests use private instances; real
    /// users normally share [`crate::default_collector`]).
    pub fn new() -> Self {
        Self {
            epoch: CachePadded::new(AtomicU64::new(0)),
            participants: Mutex::new(Vec::new()),
            orphans: Mutex::new(Vec::new()),
        }
    }

    /// Registers the current thread, returning its local handle.
    pub fn register(&self) -> LocalHandle {
        let record = Arc::new(Participant::new());
        self.participants.lock().push(record.clone());
        LocalHandle {
            global: unsafe { &*(self as *const Collector) },
            record,
            garbage: Vec::new(),
            guard_live: false,
        }
    }

    /// Current global epoch (for diagnostics and tests).
    pub fn epoch(&self) -> u64 {
        self.epoch.load(Ordering::Relaxed)
    }

    /// Tries to advance the global epoch; returns the epoch afterwards.
    ///
    /// Advance succeeds only if every live pinned participant has observed
    /// the current epoch.
    pub(crate) fn try_advance(&self) -> u64 {
        let e = self.epoch.load(Ordering::Relaxed);
        fence(Ordering::SeqCst);
        {
            let mut parts = self.participants.lock();
            parts.retain(|p| !p.dead.load(Ordering::Acquire));
            for p in parts.iter() {
                let s = p.state.load(Ordering::Relaxed);
                if let Some(pe) = Participant::pinned_epoch(s) {
                    if pe != e {
                        return e; // a straggler blocks the advance
                    }
                }
            }
        }
        fence(Ordering::SeqCst);
        let _ = self
            .epoch
            .compare_exchange(e, e + 1, Ordering::Release, Ordering::Relaxed);
        self.epoch.load(Ordering::Relaxed)
    }
}

// The collector outlives all handles in practice (the default collector is
// 'static; test collectors are dropped after their handles). Registration
// hands out a 'static reference internally; `LocalHandle` is documented to
// not outlive its collector.
unsafe impl Send for Collector {}
unsafe impl Sync for Collector {}

/// A thread's registration with a [`Collector`].
///
/// Not `Sync`: one handle per thread. Dropping the handle unregisters the
/// thread and donates any unreclaimed garbage to the collector's orphan list.
pub struct LocalHandle {
    pub(crate) global: &'static Collector,
    pub(crate) record: Arc<Participant>,
    /// Epoch-stamped local garbage.
    pub(crate) garbage: Vec<(u64, Retired)>,
    pub(crate) guard_live: bool,
}

unsafe impl Send for LocalHandle {}

impl LocalHandle {
    /// Pins the thread, entering a critical section.
    pub fn pin(&mut self) -> Guard<'_> {
        assert!(!self.guard_live, "EBR guards must not be nested");
        self.pin_slow();
        self.guard_live = true;
        Guard::new(self)
    }

    #[inline]
    pub(crate) fn pin_slow(&self) {
        let mut e = self.global.epoch.load(Ordering::Relaxed);
        loop {
            self.record.state.store((e << 1) | 1, Ordering::Relaxed);
            fence(Ordering::SeqCst);
            let e2 = self.global.epoch.load(Ordering::Relaxed);
            if e == e2 {
                break;
            }
            e = e2;
        }
    }

    #[inline]
    pub(crate) fn unpin_slow(&self) {
        self.record.state.store(0, Ordering::Release);
    }

    /// Number of blocks this thread has retired but not yet freed.
    pub fn local_garbage(&self) -> usize {
        self.garbage.len()
    }

    /// Attempts an epoch advance and frees everything eligible.
    pub(crate) fn collect(&mut self) {
        // Adopt orphans first so exited threads' garbage is not stranded.
        if let Some(mut orphans) = self.global.orphans.try_lock() {
            self.garbage.append(&mut orphans);
        }
        let global_epoch = self.global.try_advance();
        self.flush_eligible(global_epoch);
    }

    fn flush_eligible(&mut self, global_epoch: u64) {
        let mut i = 0;
        while i < self.garbage.len() {
            if self.garbage[i].0 + 2 <= global_epoch {
                let (_, retired) = self.garbage.swap_remove(i);
                unsafe { retired.free() };
            } else {
                i += 1;
            }
        }
    }
}

impl Drop for LocalHandle {
    fn drop(&mut self) {
        self.record.dead.store(true, Ordering::Release);
        if !self.garbage.is_empty() {
            let mut orphans = self.global.orphans.lock();
            orphans.append(&mut self.garbage);
        }
    }
}
