//! Epoch-based reclamation (EBR), built from scratch.
//!
//! This is the workspace's implementation of the classic Fraser/Harris
//! epoch-based scheme (the paper used `crossbeam-epoch`; we implement the
//! same algorithm in-tree so the entire substrate is auditable):
//!
//! * A global epoch counter advances when every *pinned* participant has
//!   observed the current epoch.
//! * Threads **pin** before touching shared nodes and **unpin** when done;
//!   a pinned thread protects every block that was not retired before its
//!   pin.
//! * Retired blocks are stamped with the epoch at retirement and freed once
//!   the global epoch is two ahead — by then no pinned thread can still hold
//!   a reference.
//!
//! EBR is fast and universally applicable but **not robust**: one stalled
//! pinned thread stops the epoch and garbage grows without bound (paper
//! §2.4). The benchmark harness measures exactly this.
//!
//! The implementation is engineered to be competitive with
//! `crossbeam-epoch` (the EBR the paper benchmarked against): pin/unpin
//! uses the asymmetric light/heavy fence pair instead of a per-pin `SeqCst`
//! fence, the participant registry is a lock-free intrusive list instead of
//! a mutex-guarded vector, and garbage lives in sealed per-epoch generation
//! bags that free whole expired generations in O(bag). See
//! `collector.rs`'s module docs for the code-inspection notes and
//! `EBR_COLLECT_THRESHOLD` in EXPERIMENTS.md for the collection knob.
//!
//! # Example
//!
//! ```
//! use smr_common::{Atomic, Shared};
//! use std::sync::atomic::Ordering::{AcqRel, Acquire};
//!
//! let mut handle = ebr::default_collector().register();
//!
//! let slot = Atomic::new(41u64);
//! {
//!     let guard = handle.pin(); // critical section
//!     let old = slot.load(Acquire);
//!     assert_eq!(unsafe { *old.deref() }, 41);
//!
//!     // Swap in a new value and retire the old block.
//!     let fresh = Shared::from_owned(42u64);
//!     let prev = slot.swap(fresh, AcqRel);
//!     unsafe { guard.defer_destroy(prev) };
//!     // `old`/`prev` stay dereferenceable until the guard drops and two
//!     // epochs pass.
//!     assert_eq!(unsafe { *prev.deref() }, 41);
//! }
//! # unsafe { slot.into_owned(); }
//! ```

#![warn(missing_docs)]

mod bags;
mod collector;
mod guard;

pub use collector::{legacy_trigger, Collector, LocalHandle};
pub use guard::Guard;

use smr_common::{GuardedScheme, SchemeGuard, Shared};

/// Returns the process-wide default collector.
pub fn default_collector() -> &'static Collector {
    static DEFAULT: Collector = Collector::new();
    &DEFAULT
}

/// Named fault-injection points compiled into this crate (each a
/// `smr_common::fault_point!` site; no-ops without the `fault-injection`
/// feature). DESIGN.md §1.7 documents the invariant each one attacks.
pub const FAULT_POINTS: &[&str] = &[
    "ebr::pin::before_validate",
    "ebr::defer::after_push",
    "ebr::advance::before_traverse",
    "ebr::advance::before_publish",
    "ebr::collect::after_adopt",
    "ebr::teardown::before_donate",
];

/// Marker type wiring EBR into the [`GuardedScheme`] interface.
pub struct Ebr;

impl GuardedScheme for Ebr {
    type Handle = LocalHandle;
    type Guard<'a> = Guard<'a>;

    fn handle() -> LocalHandle {
        default_collector().register()
    }

    fn pin(handle: &mut LocalHandle) -> Guard<'_> {
        handle.pin()
    }
}

impl SchemeGuard for Guard<'_> {
    unsafe fn defer_destroy<T>(&self, ptr: Shared<T>) {
        Guard::defer_destroy(self, ptr)
    }

    fn refresh(&mut self) {
        Guard::repin(self)
    }
}
