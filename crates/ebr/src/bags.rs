//! Sealed per-epoch generation bags.
//!
//! A thread's unreclaimed garbage used to live in one flat
//! `Vec<(epoch, Retired)>` that every collection rescanned in full, testing
//! each item's stamp even when nothing was eligible. The generation bags
//! exploit that EBR only ever needs to distinguish **three** stamps: with
//! the global epoch at `g`, garbage stamped `g` and `g-1` must wait, and
//! everything stamped `≤ g-2` is free in one go. So garbage is kept in a
//! ring of three bags keyed by `stamp % 3` — one *current* bag plus two
//! *sealed* generations. Sealing is implicit: when the epoch advances, new
//! pushes simply land in the next ring slot. A collection compares three
//! stamps and drains whole expired bags in O(freed); ineligible items are
//! never re-examined.

use smr_common::Retired;

/// The number of distinguishable generations (current + two sealed).
const GENERATIONS: usize = 3;

/// A thread's epoch-stamped garbage, segregated by generation.
pub(crate) struct GenBags {
    /// `bags[s]` holds garbage stamped `stamps[s]`; `s == stamps[s] % 3`.
    bags: [Vec<Retired>; GENERATIONS],
    stamps: [u64; GENERATIONS],
    /// Total items across all bags, so threshold checks are O(1).
    len: usize,
}

impl GenBags {
    pub(crate) const fn new() -> Self {
        Self {
            bags: [Vec::new(), Vec::new(), Vec::new()],
            stamps: [0; GENERATIONS],
            len: 0,
        }
    }

    /// Number of retired-but-unfreed blocks held.
    #[inline]
    pub(crate) fn len(&self) -> usize {
        self.len
    }

    /// Adds `retired`, stamped with `epoch` (a current read of the global
    /// epoch, or an adopted orphan's original — possibly older — stamp).
    ///
    /// If the target ring slot still holds an older generation, that
    /// generation is stamped `epoch - 3` or less, hence already expired
    /// (the pusher read `epoch` from the global counter, so
    /// `stamp + 2 < epoch ≤ global`), and is freed on the spot. A stamp
    /// *older* than the slot's current generation is folded into the newer
    /// bag: that only delays its free, which is always safe.
    pub(crate) fn push(&mut self, epoch: u64, retired: Retired) {
        let slot = (epoch % GENERATIONS as u64) as usize;
        if self.bags[slot].is_empty() {
            self.stamps[slot] = epoch;
        } else if self.stamps[slot] < epoch {
            self.free_bag(slot);
            self.stamps[slot] = epoch;
        }
        self.bags[slot].push(retired);
        self.len += 1;
    }

    /// Frees every bag whose generation has expired under `global_epoch`
    /// (stamp + 2 ≤ global). Whole-bag: no per-item stamp checks.
    pub(crate) fn collect_expired(&mut self, global_epoch: u64) {
        for slot in 0..GENERATIONS {
            if !self.bags[slot].is_empty() && self.stamps[slot] + 2 <= global_epoch {
                self.free_bag(slot);
            }
        }
    }

    /// Moves everything into `out` as `(stamp, retired)` pairs (orphan
    /// donation on thread exit).
    pub(crate) fn drain_into(&mut self, out: &mut Vec<(u64, Retired)>) {
        for slot in 0..GENERATIONS {
            let stamp = self.stamps[slot];
            out.extend(self.bags[slot].drain(..).map(|r| (stamp, r)));
        }
        self.len = 0;
    }

    fn free_bag(&mut self, slot: usize) {
        self.len -= self.bags[slot].len();
        for retired in self.bags[slot].drain(..) {
            // Safety: the bag's generation has expired — no pinned thread
            // can still hold a reference (upheld by the callers' epoch
            // arguments, documented at each call site).
            unsafe { retired.free() };
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering::Relaxed};

    static DROPS: AtomicUsize = AtomicUsize::new(0);
    struct Canary;
    impl Drop for Canary {
        fn drop(&mut self) {
            DROPS.fetch_add(1, Relaxed);
        }
    }

    fn retired_canary() -> Retired {
        smr_common::counters::incr_garbage(1);
        unsafe { Retired::new(Box::into_raw(Box::new(Canary))) }
    }

    #[test]
    fn nothing_frees_before_epoch_plus_two() {
        let drops0 = DROPS.load(Relaxed);
        let mut bags = GenBags::new();
        bags.push(5, retired_canary());
        assert_eq!(bags.len(), 1);
        // Not expired at global 5 or 6.
        bags.collect_expired(5);
        bags.collect_expired(6);
        assert_eq!(DROPS.load(Relaxed), drops0);
        assert_eq!(bags.len(), 1);
        // Expired at exactly stamp + 2.
        bags.collect_expired(7);
        assert_eq!(DROPS.load(Relaxed), drops0 + 1);
        assert_eq!(bags.len(), 0);
    }

    #[test]
    fn push_evicts_only_expired_generations() {
        let drops0 = DROPS.load(Relaxed);
        let mut bags = GenBags::new();
        // Three consecutive generations occupy the whole ring.
        bags.push(3, retired_canary());
        bags.push(4, retired_canary());
        bags.push(5, retired_canary());
        assert_eq!(DROPS.load(Relaxed), drops0);
        // Epoch 6 reuses generation 3's slot: that bag (stamped 6-3) is
        // expired by the time any thread reads 6, so it frees in-line.
        bags.push(6, retired_canary());
        assert_eq!(DROPS.load(Relaxed), drops0 + 1);
        assert_eq!(bags.len(), 3);
        // An old orphan stamp folds into the newer resident generation
        // rather than resurrecting an older one.
        bags.push(3, retired_canary());
        assert_eq!(DROPS.load(Relaxed), drops0 + 1);
        assert_eq!(bags.len(), 4);
        bags.collect_expired(8);
        assert_eq!(DROPS.load(Relaxed), drops0 + 5);
        assert_eq!(bags.len(), 0);
    }

    #[test]
    fn drain_preserves_stamps() {
        let mut bags = GenBags::new();
        bags.push(7, retired_canary());
        bags.push(8, retired_canary());
        let mut out = Vec::new();
        bags.drain_into(&mut out);
        assert_eq!(bags.len(), 0);
        let mut stamps: Vec<u64> = out.iter().map(|(s, _)| *s).collect();
        stamps.sort_unstable();
        assert_eq!(stamps, vec![7, 8]);
        for (_, r) in out {
            unsafe { r.free() };
        }
    }
}
