//! The EBR critical-section guard.

use std::marker::PhantomData;
use std::sync::atomic::Ordering;

use smr_common::{counters, Retired, Shared};

use crate::collector::LocalHandle;

/// An active EBR critical section.
///
/// While a `Guard` is live, no block retired after the guard's pin can be
/// freed, so every pointer loaded from the data structure inside the
/// critical section remains dereferenceable.
pub struct Guard<'a> {
    handle: *mut LocalHandle,
    _marker: PhantomData<&'a mut LocalHandle>,
}

impl<'a> Guard<'a> {
    pub(crate) fn new(handle: &'a mut LocalHandle) -> Self {
        Self {
            handle,
            _marker: PhantomData,
        }
    }

    /// Reborrows the handle the guard exclusively holds.
    ///
    /// # Safety
    /// The returned reference must not outlive the statement that creates
    /// it, and at most one may be live at a time. The guard exclusively
    /// borrows the (non-Sync) handle for its whole lifetime, so no other
    /// reference can exist concurrently.
    #[inline]
    #[allow(clippy::mut_from_ref)]
    unsafe fn handle(&self) -> &mut LocalHandle {
        unsafe { &mut *self.handle }
    }

    /// Retires `ptr` for reclamation once two epochs have passed.
    ///
    /// # Safety
    /// `ptr` must be a `Box`-allocated node that has been unlinked from the
    /// data structure and is retired exactly once.
    pub unsafe fn defer_destroy<T>(&self, ptr: Shared<T>) {
        let handle = unsafe { self.handle() };
        let epoch = handle.global.epoch.load(Ordering::Relaxed);
        counters::incr_garbage(1);
        handle.bags.push(epoch, unsafe { Retired::new(ptr.as_raw()) });
        smr_common::fault_point!("ebr::defer::after_push");
        if handle.should_collect() {
            handle.collect();
        }
    }

    /// Retires with a custom deleter (descriptor nodes etc.).
    ///
    /// # Safety
    /// Same contract as [`Guard::defer_destroy`].
    pub unsafe fn defer_destroy_with(&self, ptr: *mut u8, free_fn: unsafe fn(*mut u8)) {
        let handle = unsafe { self.handle() };
        let epoch = handle.global.epoch.load(Ordering::Relaxed);
        counters::incr_garbage(1);
        handle
            .bags
            .push(epoch, unsafe { Retired::with_free(ptr, free_fn) });
        if handle.should_collect() {
            handle.collect();
        }
    }

    /// Briefly exits and re-enters the critical section.
    ///
    /// Any pointer loaded before `repin` must be re-read afterwards; the
    /// epoch may have advanced and old nodes may be freed.
    pub fn repin(&mut self) {
        let handle = unsafe { self.handle() };
        handle.unpin_slow();
        handle.pin_slow();
    }

    /// Eagerly attempts a collection (tests & shutdown paths).
    pub fn flush(&self) {
        unsafe { self.handle() }.collect();
    }
}

impl Drop for Guard<'_> {
    fn drop(&mut self) {
        let handle = unsafe { self.handle() };
        handle.unpin_slow();
        handle.guard_live = false;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Collector;
    use smr_common::Atomic;
    use std::sync::atomic::{AtomicUsize, Ordering::*};
    use std::sync::Arc;

    #[test]
    fn pin_unpin_cycles() {
        let c = Box::leak(Box::new(Collector::new()));
        let mut h = c.register();
        for _ in 0..10 {
            let g = h.pin();
            drop(g);
        }
    }

    #[test]
    fn epoch_advances_when_unpinned() {
        let c = Box::leak(Box::new(Collector::new()));
        let mut h = c.register();
        let e0 = c.epoch();
        {
            let g = h.pin();
            g.flush();
            g.flush();
            drop(g);
        }
        let g = h.pin();
        g.flush();
        g.flush();
        drop(g);
        assert!(c.epoch() > e0);
    }

    #[test]
    fn pinned_thread_blocks_advance() {
        let c = Box::leak(Box::new(Collector::new()));
        let mut blocker = c.register();
        let mut worker = c.register();
        let _bg = blocker.pin(); // stays pinned
        let e_at_pin = c.epoch();
        for _ in 0..10 {
            let g = worker.pin();
            g.flush();
            drop(g);
        }
        // The blocker pinned at e_at_pin; epoch may advance at most once past
        // it before the blocker becomes a straggler.
        assert!(c.epoch() <= e_at_pin + 1);
    }

    #[test]
    fn deferred_destruction_runs() {
        static DROPS: AtomicUsize = AtomicUsize::new(0);
        struct Canary;
        impl Drop for Canary {
            fn drop(&mut self) {
                DROPS.fetch_add(1, Relaxed);
            }
        }

        let c = Box::leak(Box::new(Collector::new()));
        let mut h = c.register();
        {
            let g = h.pin();
            let node = Shared::from_owned(Canary);
            unsafe { g.defer_destroy(node) };
            drop(g);
        }
        // Two unpinned flushes advance the epoch twice, freeing the node.
        for _ in 0..4 {
            let g = h.pin();
            g.flush();
            drop(g);
        }
        assert_eq!(DROPS.load(Relaxed), 1);
    }

    #[test]
    fn nothing_frees_before_two_epochs() {
        // End-to-end bag expiry: a block retired at epoch `e` must survive
        // the advance to `e+1` and die only when the epoch reaches `e+2`.
        static DROPS: AtomicUsize = AtomicUsize::new(0);
        struct Canary;
        impl Drop for Canary {
            fn drop(&mut self) {
                DROPS.fetch_add(1, Relaxed);
            }
        }

        let c = Box::leak(Box::new(Collector::new()));
        let mut h = c.register();
        let e = c.epoch();
        {
            let g = h.pin();
            unsafe { g.defer_destroy(Shared::from_owned(Canary)) };
        }
        {
            // Pinned at `e`: the flush advances to `e+1`, at which the
            // retired block is still one epoch short of expiry.
            let g = h.pin();
            g.flush();
            drop(g);
            assert_eq!(c.epoch(), e + 1);
            assert_eq!(DROPS.load(Relaxed), 0, "freed before epoch + 2");
        }
        {
            // Pinned at `e+1`: the flush advances to `e+2` and the block
            // becomes eligible in the same collection.
            let g = h.pin();
            g.flush();
            drop(g);
            assert_eq!(c.epoch(), e + 2);
            assert_eq!(DROPS.load(Relaxed), 1);
        }
    }

    #[test]
    fn advance_resumes_after_straggler_unpins() {
        let c = Box::leak(Box::new(Collector::new()));
        let mut blocker = c.register();
        let mut worker = c.register();
        let straggler = blocker.pin();
        let e_at_pin = c.epoch();
        for _ in 0..6 {
            let g = worker.pin();
            g.flush();
            drop(g);
        }
        // The straggler caps the advance at one epoch past its pin.
        assert!(c.epoch() <= e_at_pin + 1);
        drop(straggler);
        for _ in 0..3 {
            let g = worker.pin();
            g.flush();
            drop(g);
        }
        assert!(c.epoch() > e_at_pin + 1, "advance stuck after unpin");
    }

    #[test]
    fn register_unregister_churn_balances() {
        // Thread churn: handles come and go while retiring garbage, so
        // every drop donates to the orphan list and leaves a dead registry
        // node behind. Afterwards a survivor must be able to adopt and free
        // every single orphan — nothing stranded, nothing double-freed.
        static DROPS: AtomicUsize = AtomicUsize::new(0);
        struct Canary;
        impl Drop for Canary {
            fn drop(&mut self) {
                DROPS.fetch_add(1, Relaxed);
            }
        }

        let c: &'static Collector = Box::leak(Box::new(Collector::new()));
        let threads = 8;
        let lives: usize = if cfg!(miri) { 4 } else { 64 };
        let retires_per_life = 16;
        std::thread::scope(|s| {
            for _ in 0..threads {
                s.spawn(move || {
                    for _ in 0..lives {
                        let mut h = c.register();
                        let g = h.pin();
                        for _ in 0..retires_per_life {
                            unsafe { g.defer_destroy(Shared::from_owned(Canary)) };
                        }
                        drop(g);
                        // Handle drop: donate garbage, mark registry node.
                    }
                });
            }
        });
        assert_eq!(c.participants(), 0);
        let expected = threads * lives * retires_per_life;
        let mut survivor = c.register();
        for _ in 0..8 {
            let g = survivor.pin();
            g.flush();
            drop(g);
            if DROPS.load(Relaxed) == expected {
                break;
            }
        }
        assert_eq!(DROPS.load(Relaxed), expected, "orphaned garbage stranded");
    }

    #[test]
    fn no_premature_free_under_concurrency() {
        // Readers hold pins while a writer swaps and retires nodes; the
        // value read under a pin must always be intact (drop poisons it).
        struct Node {
            value: u64,
        }
        impl Drop for Node {
            fn drop(&mut self) {
                self.value = u64::MAX;
            }
        }

        let c: &'static Collector = Box::leak(Box::new(Collector::new()));
        let slot = Arc::new(Atomic::new(Node { value: 7 }));
        let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));

        let mut threads = Vec::new();
        for _ in 0..4 {
            let slot = slot.clone();
            let stop = stop.clone();
            threads.push(std::thread::spawn(move || {
                let mut h = c.register();
                while !stop.load(Relaxed) {
                    let g = h.pin();
                    let s = slot.load(Acquire);
                    let v = unsafe { s.deref() }.value;
                    assert_eq!(v, 7, "use-after-free detected");
                    drop(g);
                }
            }));
        }
        {
            let slot = slot.clone();
            let stop = stop.clone();
            let writes: u64 = if cfg!(miri) { 300 } else { 20_000 };
            threads.push(std::thread::spawn(move || {
                let mut h = c.register();
                for _ in 0..writes {
                    let g = h.pin();
                    let fresh = Shared::from_owned(Node { value: 7 });
                    let old = slot.swap(fresh, AcqRel);
                    unsafe { g.defer_destroy(old) };
                    drop(g);
                }
                stop.store(true, Relaxed);
            }));
        }
        for t in threads {
            t.join().unwrap();
        }
        unsafe {
            let last = slot.load(Relaxed);
            last.drop_owned();
            smr_common::counters::decr_garbage(0);
        }
    }
}
