//! A reclamation domain: the global hazard-slot list plus orphaned garbage.

use parking_lot::Mutex;
use smr_common::Retired;

use crate::hazard::{HazardList, HazardPointer};
use crate::thread::Thread;

/// The global side of an HP instance.
///
/// Data structures sharing a domain share hazard slots and scans; the
/// process-wide [`default_domain`] is what applications normally use.
pub struct Domain {
    pub(crate) hazards: HazardList,
    /// Retired nodes abandoned by exited threads; adopted by reclaimers.
    pub(crate) orphans: Mutex<Vec<Retired>>,
}

impl Default for Domain {
    fn default() -> Self {
        Self::new()
    }
}

impl Domain {
    /// Creates an independent domain (tests; benchmarks isolating schemes).
    pub const fn new() -> Self {
        Self {
            hazards: HazardList::new(),
            orphans: Mutex::new(Vec::new()),
        }
    }

    /// Registers the current thread.
    pub fn register(&'static self) -> Thread {
        Thread::new(self)
    }

    /// Acquires a hazard slot directly from the domain.
    ///
    /// Prefer [`Thread::hazard_pointer`], which caches released slots.
    pub fn hazard_pointer(&'static self) -> HazardPointer {
        HazardPointer::from_slot(self.hazards.acquire())
    }

    /// Snapshot of every currently announced pointer (unsorted).
    pub fn protected_words(&self) -> Vec<usize> {
        let mut v = Vec::new();
        self.hazards.collect_protected(&mut v);
        v
    }

    /// Number of hazard slots allocated so far.
    pub fn slot_capacity(&self) -> usize {
        self.hazards.capacity()
    }
}

/// The process-wide default domain.
pub fn default_domain() -> &'static Domain {
    static DEFAULT: Domain = Domain::new();
    &DEFAULT
}
