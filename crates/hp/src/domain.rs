//! A reclamation domain: the global hazard-slot list plus orphaned garbage.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;
use smr_common::policy::{PolicySlot, ReclaimPolicy, Verdict};
use smr_common::Retired;

use crate::hazard::{HazardList, HazardPointer};
use crate::thread::Thread;

/// The global side of an HP instance.
///
/// Data structures sharing a domain share hazard slots and scans; the
/// process-wide [`default_domain`] is what applications normally use.
pub struct Domain {
    pub(crate) hazards: HazardList,
    /// Retired nodes abandoned by exited threads; adopted by reclaimers.
    orphans: Mutex<Vec<Retired>>,
    /// Number of entries in `orphans`, maintained under the lock. Lets the
    /// reclaim hot path skip the mutex entirely in the common no-orphans
    /// case: exited threads are rare, reclaims are not.
    orphan_count: AtomicUsize,
    /// This domain's reclamation-trigger policy + latest watchdog verdict;
    /// defaults to the legacy `max(RECLAIM_THRESHOLD, k·H)` trigger
    /// ([`crate::legacy_trigger`]) on first retire.
    policy: PolicySlot,
}

impl Default for Domain {
    fn default() -> Self {
        Self::new()
    }
}

impl Domain {
    /// Creates an independent domain (tests; benchmarks isolating schemes).
    pub const fn new() -> Self {
        Self {
            hazards: HazardList::new(),
            orphans: Mutex::new(Vec::new()),
            orphan_count: AtomicUsize::new(0),
            policy: PolicySlot::new(),
        }
    }

    /// Installs this domain's reclamation policy. Must run before the
    /// domain's first retire (the slot latches: later installs return
    /// `false` and change nothing). Unset, the domain lazily builds
    /// [`smr_common::policy::PolicyConfig::from_env`] over the legacy
    /// trigger — bit-identical decisions when no policy env vars are set.
    pub fn set_policy(&self, policy: Arc<dyn ReclaimPolicy>) -> bool {
        self.policy.install(policy)
    }

    /// Feeds a watchdog verdict to this domain's policy (the `Adaptive`
    /// policy tightens/relaxes its trigger on these).
    pub fn report_verdict(&self, verdict: Verdict) {
        self.policy.report_verdict(verdict);
    }

    pub(crate) fn policy_slot(&self) -> &PolicySlot {
        &self.policy
    }

    /// Registers the current thread.
    pub fn register(&'static self) -> Thread {
        Thread::new(self)
    }

    /// Acquires a hazard slot directly from the domain.
    ///
    /// Prefer [`Thread::hazard_pointer`], which caches released slots.
    pub fn hazard_pointer(&'static self) -> HazardPointer {
        HazardPointer::from_slot(self.hazards.acquire())
    }

    /// Snapshot of every currently announced pointer (unsorted).
    pub fn protected_words(&self) -> Vec<usize> {
        let mut v = Vec::new();
        self.hazards.collect_protected(&mut v);
        v
    }

    /// Number of hazard slots allocated so far (O(1)).
    pub fn slot_capacity(&self) -> usize {
        self.hazards.capacity()
    }

    /// Number of orphaned retired nodes awaiting adoption (diagnostics).
    pub fn orphan_count(&self) -> usize {
        self.orphan_count.load(Ordering::Relaxed)
    }

    /// Donates a dying thread's leftover garbage to the orphan list.
    pub(crate) fn donate_orphans(&self, leftovers: &mut Vec<Retired>) {
        if leftovers.is_empty() {
            return;
        }
        let mut orphans = self.orphans.lock();
        orphans.append(leftovers);
        self.orphan_count.store(orphans.len(), Ordering::Release);
    }

    /// Moves any orphaned garbage into `into`.
    ///
    /// Fast path: a single relaxed load when the orphan list is empty — no
    /// lock, no allocation. Contention on the lock is tolerated by giving
    /// up (`try_lock`); another reclaimer is already adopting.
    pub(crate) fn adopt_orphans(&self, into: &mut Vec<Retired>) {
        if self.orphan_count.load(Ordering::Acquire) == 0 {
            return;
        }
        if let Some(mut orphans) = self.orphans.try_lock() {
            into.append(&mut orphans);
            self.orphan_count.store(0, Ordering::Release);
        }
    }
}

/// The process-wide default domain.
pub fn default_domain() -> &'static Domain {
    static DEFAULT: Domain = Domain::new();
    &DEFAULT
}
