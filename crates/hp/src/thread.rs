//! Per-thread HP state: slot cache, retired bag, reclamation.

use smr_common::{counters, fence, Retired};

use crate::domain::Domain;
use crate::hazard::{HazardPointer, HazardSlot};
use crate::RECLAIM_THRESHOLD;

/// A thread's registration with a [`Domain`].
///
/// Owns the thread's retired bag and a cache of released hazard slots.
pub struct Thread {
    domain: &'static Domain,
    spare: Vec<*const HazardSlot>,
    retired: Vec<Retired>,
}

unsafe impl Send for Thread {}

impl Thread {
    pub(crate) fn new(domain: &'static Domain) -> Self {
        Self {
            domain,
            spare: Vec::new(),
            retired: Vec::new(),
        }
    }

    /// The domain this thread belongs to.
    pub fn domain(&self) -> &'static Domain {
        self.domain
    }

    /// Acquires a hazard pointer (cached slot if available).
    pub fn hazard_pointer(&mut self) -> HazardPointer {
        match self.spare.pop() {
            Some(slot) => HazardPointer::from_slot(slot),
            None => HazardPointer::from_slot(self.domain.hazards.acquire()),
        }
    }

    /// Returns a hazard pointer's slot to this thread's cache.
    ///
    /// Cheaper than dropping the handle (no global release/reacquire).
    pub fn recycle(&mut self, hp: HazardPointer) {
        hp.reset();
        self.spare.push(hp.into_slot());
    }

    /// Retires `ptr`: the node becomes garbage and is freed by a later
    /// [`reclaim`](Thread::reclaim) once no hazard slot announces it.
    ///
    /// # Safety
    /// `ptr` must be a `Box`-allocated node unlinked from the structure,
    /// retired exactly once, and only accessed afterwards by threads that
    /// announced it before it became unreachable.
    pub unsafe fn retire<T>(&mut self, ptr: *mut T) {
        counters::incr_garbage(1);
        self.retired.push(Retired::new(ptr));
        if self.retired.len() >= RECLAIM_THRESHOLD {
            self.reclaim();
        }
    }

    /// Retires with a custom deleter.
    ///
    /// # Safety
    /// Same contract as [`Thread::retire`].
    pub unsafe fn retire_with(&mut self, ptr: *mut u8, free_fn: unsafe fn(*mut u8)) {
        counters::incr_garbage(1);
        self.retired.push(Retired::with_free(ptr, free_fn));
        if self.retired.len() >= RECLAIM_THRESHOLD {
            self.reclaim();
        }
    }

    /// Number of nodes retired by this thread and not yet freed.
    pub fn retired_count(&self) -> usize {
        self.retired.len()
    }

    /// Adds an already-counted [`Retired`] record without triggering
    /// reclamation (used by HP++'s deferred-retirement path, which counts
    /// garbage at unlink time).
    pub fn push_retired(&mut self, r: Retired) {
        self.retired.push(r);
    }

    /// Scans hazard slots and frees every retired node not announced.
    pub fn reclaim(&mut self) {
        self.reclaim_with_prefence(fence::heavy);
    }

    /// Reclamation with a caller-supplied heavy fence (HP++'s Algorithm 5
    /// replaces the fence with its epoched variant).
    pub fn reclaim_with_prefence(&mut self, prefence: impl FnOnce()) {
        // Adopt orphans so exited threads' garbage is not stranded.
        if let Some(mut orphans) = self.domain.orphans.try_lock() {
            self.retired.append(&mut orphans);
        }
        if self.retired.is_empty() {
            prefence();
            return;
        }
        let rs = std::mem::take(&mut self.retired);
        // Orders prior unlinks/retires against the hazard scan below: any
        // thread that announced one of `rs` before its unlink is visible to
        // the scan; any thread that announces later will fail validation.
        prefence();
        let mut protected = Vec::with_capacity(64);
        self.domain.hazards.collect_protected(&mut protected);
        protected.sort_unstable();
        for r in rs {
            if protected.binary_search(&(r.ptr() as usize)).is_ok() {
                self.retired.push(r);
            } else {
                unsafe { r.free() };
            }
        }
    }
}

impl Drop for Thread {
    fn drop(&mut self) {
        // One last attempt, then donate leftovers.
        self.reclaim();
        if !self.retired.is_empty() {
            self.domain.orphans.lock().append(&mut self.retired);
        }
        for slot in self.spare.drain(..) {
            drop(HazardPointer::from_slot(slot));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use smr_common::{Atomic, Shared};
    use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering::*};
    use std::sync::Arc;

    fn new_domain() -> &'static Domain {
        Box::leak(Box::new(Domain::new()))
    }

    #[test]
    fn retire_and_reclaim_unprotected() {
        static DROPS: AtomicUsize = AtomicUsize::new(0);
        struct Canary;
        impl Drop for Canary {
            fn drop(&mut self) {
                DROPS.fetch_add(1, Relaxed);
            }
        }

        let d = new_domain();
        let mut t = d.register();
        let p = Box::into_raw(Box::new(Canary));
        unsafe { t.retire(p) };
        t.reclaim();
        assert_eq!(DROPS.load(Relaxed), 1);
        assert_eq!(t.retired_count(), 0);
    }

    #[test]
    fn protected_node_survives_reclaim() {
        let d = new_domain();
        let mut t = d.register();
        let hp = t.hazard_pointer();

        let p = Box::into_raw(Box::new(42u64));
        hp.protect_raw(p);
        unsafe { t.retire(p) };
        t.reclaim();
        assert_eq!(t.retired_count(), 1, "protected node must not be freed");
        // Value still readable.
        assert_eq!(unsafe { *p }, 42);

        hp.reset();
        t.reclaim();
        assert_eq!(t.retired_count(), 0);
    }

    #[test]
    fn reclaim_threshold_triggers() {
        let d = new_domain();
        let mut t = d.register();
        for _ in 0..(RECLAIM_THRESHOLD * 2) {
            let p = Box::into_raw(Box::new(0u64));
            unsafe { t.retire(p) };
        }
        assert!(t.retired_count() < RECLAIM_THRESHOLD * 2);
    }

    #[test]
    fn recycle_keeps_capacity_flat() {
        let d = new_domain();
        let mut t = d.register();
        let cap0 = {
            let hp = t.hazard_pointer();
            let c = d.slot_capacity();
            t.recycle(hp);
            c
        };
        for _ in 0..100 {
            let hp = t.hazard_pointer();
            t.recycle(hp);
        }
        assert_eq!(d.slot_capacity(), cap0);
    }

    #[test]
    fn orphans_are_adopted() {
        static DROPS: AtomicUsize = AtomicUsize::new(0);
        struct Canary;
        impl Drop for Canary {
            fn drop(&mut self) {
                DROPS.fetch_add(1, Relaxed);
            }
        }

        let d = new_domain();
        {
            let mut dying = d.register();
            let hp = dying.hazard_pointer();
            let p = Box::into_raw(Box::new(Canary));
            hp.protect_raw(p); // keep it from being freed by dying's drop
            unsafe { dying.retire(p) };
            // `hp` drops after `dying`'s Drop runs its final reclaim? Drop
            // order: hp declared after dying, drops first. Reset manually to
            // control the scenario: keep protection during dying's drop.
            std::mem::forget(hp); // slot stays active + announcing
        }
        assert_eq!(DROPS.load(Relaxed), 0, "protected orphan must survive");
        // A new thread adopts and, once the protection is cleared, frees it.
        let words = d.protected_words();
        assert_eq!(words.len(), 1);
        // Clear the leaked slot by acquiring every slot until we find it.
        // (In real use the protecting thread resets; here we simulate it.)
        let mut t2 = d.register();
        // Simulate the protector clearing its announcement:
        // find the slot via a fresh scan and reset through a new handle.
        // Simplest: overwrite by acquiring slots is not possible (active),
        // so emulate by reclaiming with protection (no free), then clearing.
        t2.reclaim();
        assert_eq!(DROPS.load(Relaxed), 0);
        let _ = words;
    }

    #[test]
    fn concurrent_protect_vs_retire_no_uaf() {
        // Readers protect a shared slot's node, validate, and read a canary
        // value; a writer keeps swapping and retiring. Any use-after-free
        // corrupts the canary (drop poisons it).
        struct Node {
            value: u64,
        }
        impl Drop for Node {
            fn drop(&mut self) {
                self.value = u64::MAX;
            }
        }

        let d = new_domain();
        let slot = Arc::new(Atomic::new(Node { value: 7 }));
        let stop = Arc::new(AtomicBool::new(false));

        let mut threads = Vec::new();
        for _ in 0..4 {
            let slot = slot.clone();
            let stop = stop.clone();
            threads.push(std::thread::spawn(move || {
                let mut t = d.register();
                let hp = t.hazard_pointer();
                while !stop.load(Relaxed) {
                    let s = hp.protect(&slot);
                    if s.is_null() {
                        continue;
                    }
                    let v = unsafe { s.deref() }.value;
                    assert_eq!(v, 7, "use-after-free detected");
                    hp.reset();
                }
            }));
        }
        {
            let slot = slot.clone();
            let stop = stop.clone();
            threads.push(std::thread::spawn(move || {
                let mut t = d.register();
                for _ in 0..30_000 {
                    let fresh = Shared::from_owned(Node { value: 7 });
                    let old = slot.swap(fresh, AcqRel);
                    unsafe { t.retire(old.as_raw()) };
                }
                stop.store(true, Relaxed);
            }));
        }
        for th in threads {
            th.join().unwrap();
        }
        unsafe { slot.load(Relaxed).drop_owned() };
    }
}
