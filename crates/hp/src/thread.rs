//! Per-thread HP state: slot cache, retired bag, reclamation.

use smr_common::policy::{self, Decision, RetireStats};
use smr_common::{counters, fence, Retired};

use crate::domain::Domain;
use crate::hazard::{HazardPointer, HazardSlot};
use crate::{reclaim_k, RECLAIM_THRESHOLD};

/// A thread's registration with a [`Domain`].
///
/// Owns the thread's retired bag, a cache of released hazard slots, and the
/// persistent scan scratch that makes steady-state reclamation
/// allocation-free: the protected-pointer snapshot and the survivor swap
/// buffer are reused across scans, so after warm-up `reclaim` touches the
/// allocator only to *free* garbage, never to bookkeep it.
pub struct Thread {
    domain: &'static Domain,
    spare: Vec<*const HazardSlot>,
    retired: Vec<Retired>,
    /// Scan scratch: sorted snapshot of announced pointers. Cleared, never
    /// shrunk — capacity converges to the domain's hazard-slot count.
    scan_protected: Vec<usize>,
    /// Scan scratch: the bag under scan. `retired` is swapped in here at
    /// scan start and survivors are pushed back, so both vectors keep their
    /// capacities across cycles.
    scan_bag: Vec<Retired>,
    /// When this thread last completed a scan, for time-based policies
    /// (only maintained while the installed policy
    /// [`wants_time`](smr_common::policy::ReclaimPolicy::wants_time) —
    /// other policies never pay the clock read).
    last_scan_ns: u64,
}

unsafe impl Send for Thread {}

impl Thread {
    pub(crate) fn new(domain: &'static Domain) -> Self {
        Self {
            domain,
            spare: Vec::new(),
            retired: Vec::new(),
            scan_protected: Vec::new(),
            scan_bag: Vec::new(),
            last_scan_ns: 0,
        }
    }

    /// The domain this thread belongs to.
    pub fn domain(&self) -> &'static Domain {
        self.domain
    }

    /// Acquires a hazard pointer (cached slot if available).
    pub fn hazard_pointer(&mut self) -> HazardPointer {
        match self.spare.pop() {
            Some(slot) => HazardPointer::from_slot(slot),
            None => HazardPointer::from_slot(self.domain.hazards.acquire()),
        }
    }

    /// Returns a hazard pointer's slot to this thread's cache.
    ///
    /// Cheaper than dropping the handle (no global release/reacquire).
    pub fn recycle(&mut self, hp: HazardPointer) {
        hp.reset();
        self.spare.push(hp.into_slot());
    }

    /// The current adaptive scan trigger: `max(RECLAIM_THRESHOLD, k · H)`
    /// where `H` is the domain's hazard-slot count (Michael's `R = k · H`
    /// rule). Scanning `H` slots frees at least `(k-1)·H` nodes, so the
    /// per-free scan cost stays O(1) no matter how many threads register;
    /// the fixed floor keeps single-thread scans amortized too.
    #[inline]
    pub fn reclaim_threshold(&self) -> usize {
        RECLAIM_THRESHOLD.max(reclaim_k() * self.domain.slot_capacity())
    }

    /// Retires `ptr`: the node becomes garbage and is freed by a later
    /// [`reclaim`](Thread::reclaim) once no hazard slot announces it.
    ///
    /// # Safety
    /// `ptr` must be a `Box`-allocated node unlinked from the structure,
    /// retired exactly once, and only accessed afterwards by threads that
    /// announced it before it became unreachable.
    pub unsafe fn retire<T>(&mut self, ptr: *mut T) {
        counters::incr_garbage(1);
        self.retired.push(Retired::new(ptr));
        smr_common::fault_point!("hp::retire::after_push");
        self.maybe_reclaim();
    }

    /// Retires with a custom deleter.
    ///
    /// # Safety
    /// Same contract as [`Thread::retire`].
    pub unsafe fn retire_with(&mut self, ptr: *mut u8, free_fn: unsafe fn(*mut u8)) {
        counters::incr_garbage(1);
        self.retired.push(Retired::with_free(ptr, free_fn));
        self.maybe_reclaim();
    }

    /// Consults the domain's policy (installed, or the env-built default
    /// over [`crate::legacy_trigger`]) and scans if it says to.
    fn maybe_reclaim(&mut self) {
        let slot = self.domain.policy_slot();
        let policy = slot.get_or_init(crate::default_policy);
        let since_scan_ns = if policy.wants_time() {
            smr_common::time::mono_ns().saturating_sub(self.last_scan_ns)
        } else {
            0
        };
        let stats = RetireStats {
            retired: self.retired.len(),
            slots: self.domain.slot_capacity(),
            ops: 0,
            since_scan_ns,
            verdict: slot.verdict(),
        };
        if policy::decide(policy, &stats) == Decision::Reclaim {
            self.reclaim();
        }
    }

    /// Number of nodes retired by this thread and not yet freed.
    pub fn retired_count(&self) -> usize {
        self.retired.len()
    }

    /// Capacities of the persistent scan scratch `(protected snapshot,
    /// survivor bag)` — diagnostics for the allocation-free steady-state
    /// guarantee: once warm, neither capacity changes across scans.
    pub fn scan_scratch_capacity(&self) -> (usize, usize) {
        (self.scan_protected.capacity(), self.scan_bag.capacity())
    }

    /// Adds an already-counted [`Retired`] record without triggering
    /// reclamation (used by HP++'s deferred-retirement path, which counts
    /// garbage at unlink time).
    pub fn push_retired(&mut self, r: Retired) {
        self.retired.push(r);
    }

    /// Scans hazard slots and frees every retired node not announced.
    pub fn reclaim(&mut self) {
        self.reclaim_with_prefence(fence::heavy);
    }

    /// Reclamation with a caller-supplied heavy fence (HP++'s Algorithm 5
    /// replaces the fence with its epoched variant).
    ///
    /// Allocation-free in steady state: the hazard snapshot and the bag
    /// under scan live in per-thread scratch buffers whose capacities are
    /// reused across calls (growth only while warming up or when the
    /// domain's hazard array grows).
    pub fn reclaim_with_prefence(&mut self, prefence: impl FnOnce()) {
        // Adopt orphans so exited threads' garbage is not stranded (a
        // single atomic load when there are none).
        self.domain.adopt_orphans(&mut self.retired);
        if self.retired.is_empty() {
            prefence();
            return;
        }
        // An aborted scan (injected panic mid-reclaim) leaves its bag in
        // `scan_bag`; fold it back so those nodes are rescanned, not lost.
        if !self.scan_bag.is_empty() {
            self.retired.append(&mut self.scan_bag);
        }
        std::mem::swap(&mut self.retired, &mut self.scan_bag);
        smr_common::fault_point!("hp::reclaim::before_fence");
        // Orders prior unlinks/retires against the hazard scan below: any
        // thread that announced one of `scan_bag` before its unlink is
        // visible to the scan; any thread that announces later will fail
        // validation.
        prefence();
        self.scan_protected.clear();
        self.domain.hazards.collect_protected(&mut self.scan_protected);
        self.scan_protected.sort_unstable();
        smr_common::fault_point!("hp::reclaim::after_snapshot");
        for r in self.scan_bag.drain(..) {
            if self
                .scan_protected
                .binary_search(&(r.ptr() as usize))
                .is_ok()
            {
                self.retired.push(r);
            } else {
                unsafe { r.free() };
            }
        }
        let slot = self.domain.policy_slot();
        if slot.get_or_init(crate::default_policy).wants_time() {
            self.last_scan_ns = smr_common::time::mono_ns();
        }
    }
}

impl Drop for Thread {
    fn drop(&mut self) {
        // The donation must happen even if the final reclaim panics (a
        // worker dying inside a scan must not strand its garbage), so it
        // lives in a guard that runs during unwinding too.
        struct Teardown<'a>(&'a mut Thread);
        impl Drop for Teardown<'_> {
            fn drop(&mut self) {
                let t = &mut *self.0;
                // An aborted scan leaves its bag in `scan_bag`.
                t.retired.append(&mut t.scan_bag);
                t.domain.donate_orphans(&mut t.retired);
                for slot in t.spare.drain(..) {
                    drop(HazardPointer::from_slot(slot));
                }
            }
        }
        let g = Teardown(self);
        smr_common::fault_point!("hp::teardown::before_reclaim");
        // One last attempt, then the guard donates leftovers.
        g.0.reclaim();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use smr_common::{Atomic, Shared};
    use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering::*};
    use std::sync::Arc;

    fn new_domain() -> &'static Domain {
        Box::leak(Box::new(Domain::new()))
    }

    #[test]
    fn retire_and_reclaim_unprotected() {
        static DROPS: AtomicUsize = AtomicUsize::new(0);
        struct Canary;
        impl Drop for Canary {
            fn drop(&mut self) {
                DROPS.fetch_add(1, Relaxed);
            }
        }

        let d = new_domain();
        let mut t = d.register();
        let p = Box::into_raw(Box::new(Canary));
        unsafe { t.retire(p) };
        t.reclaim();
        assert_eq!(DROPS.load(Relaxed), 1);
        assert_eq!(t.retired_count(), 0);
    }

    #[test]
    fn protected_node_survives_reclaim() {
        let d = new_domain();
        let mut t = d.register();
        let hp = t.hazard_pointer();

        let p = Box::into_raw(Box::new(42u64));
        hp.protect_raw(p);
        unsafe { t.retire(p) };
        t.reclaim();
        assert_eq!(t.retired_count(), 1, "protected node must not be freed");
        // Value still readable.
        assert_eq!(unsafe { *p }, 42);

        hp.reset();
        t.reclaim();
        assert_eq!(t.retired_count(), 0);
    }

    #[test]
    fn reclaim_threshold_triggers() {
        let d = new_domain();
        let mut t = d.register();
        let bound = t.reclaim_threshold() * 2;
        for _ in 0..bound {
            let p = Box::into_raw(Box::new(0u64));
            unsafe { t.retire(p) };
        }
        assert!(t.retired_count() < bound);
    }

    #[test]
    fn threshold_adapts_to_slot_capacity() {
        let d = new_domain();
        let t = d.register();
        assert_eq!(t.reclaim_threshold(), RECLAIM_THRESHOLD, "floor applies");
        // Grow the hazard array until k·H dominates the fixed floor.
        let hps: Vec<_> = (0..RECLAIM_THRESHOLD)
            .map(|_| d.hazard_pointer())
            .collect();
        let k = crate::reclaim_k();
        assert!(d.slot_capacity() >= RECLAIM_THRESHOLD);
        assert_eq!(t.reclaim_threshold(), k * d.slot_capacity());
        drop(hps);
    }

    #[test]
    fn recycle_keeps_capacity_flat() {
        let d = new_domain();
        let mut t = d.register();
        let cap0 = {
            let hp = t.hazard_pointer();
            let c = d.slot_capacity();
            t.recycle(hp);
            c
        };
        for _ in 0..100 {
            let hp = t.hazard_pointer();
            t.recycle(hp);
        }
        assert_eq!(d.slot_capacity(), cap0);
    }

    #[test]
    fn reclaim_scratch_is_allocation_free_in_steady_state() {
        // Mirrors `recycle_keeps_capacity_flat` for the scan path: after one
        // warm-up cycle, 100 retire→reclaim cycles must not reallocate the
        // scan scratch (its capacities — our proxy for "no allocation in
        // `reclaim_with_prefence`" — stay exactly flat).
        let d = new_domain();
        let mut t = d.register();
        let hp = t.hazard_pointer();
        hp.protect_raw(0x100 as *mut u64); // a survivor keeps both paths hot

        let churn = |t: &mut Thread| {
            for _ in 0..64 {
                let p = Box::into_raw(Box::new(7u64));
                unsafe { t.retire(p) };
            }
            t.reclaim();
        };
        churn(&mut t); // warm-up
        let warm = t.scan_scratch_capacity();
        assert!(warm.0 > 0 && warm.1 > 0, "scratch warmed: {warm:?}");
        for cycle in 0..100 {
            churn(&mut t);
            assert_eq!(
                t.scan_scratch_capacity(),
                warm,
                "scratch reallocated on cycle {cycle}"
            );
        }
        hp.reset();
        t.reclaim();
    }

    #[test]
    fn adaptive_threshold_bounds_retired_count() {
        // Stress: concurrent retiring threads (with live hazard slots
        // inflating H) must each stay within k·H + RECLAIM_THRESHOLD
        // unreclaimed nodes — the bound the adaptive trigger guarantees.
        let d = new_domain();
        let k = crate::reclaim_k();
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    let mut t = d.register();
                    let hps: Vec<_> = (0..8).map(|_| t.hazard_pointer()).collect();
                    for i in 0..20_000u64 {
                        let p = Box::into_raw(Box::new(i));
                        unsafe { t.retire(p) };
                        let bound = k * d.slot_capacity() + RECLAIM_THRESHOLD;
                        assert!(
                            t.retired_count() <= bound,
                            "retired {} exceeds bound {bound}",
                            t.retired_count()
                        );
                    }
                    for hp in hps {
                        t.recycle(hp);
                    }
                });
            }
        });
    }

    #[test]
    fn orphans_are_adopted() {
        static DROPS: AtomicUsize = AtomicUsize::new(0);
        struct Canary;
        impl Drop for Canary {
            fn drop(&mut self) {
                DROPS.fetch_add(1, Relaxed);
            }
        }

        let d = new_domain();
        {
            let mut dying = d.register();
            let hp = dying.hazard_pointer();
            let p = Box::into_raw(Box::new(Canary));
            hp.protect_raw(p); // keep it from being freed by dying's drop
            unsafe { dying.retire(p) };
            // `hp` drops after `dying`'s Drop runs its final reclaim? Drop
            // order: hp declared after dying, drops first. Reset manually to
            // control the scenario: keep protection during dying's drop.
            std::mem::forget(hp); // slot stays active + announcing
        }
        assert_eq!(DROPS.load(Relaxed), 0, "protected orphan must survive");
        // A new thread adopts and, once the protection is cleared, frees it.
        let words = d.protected_words();
        assert_eq!(words.len(), 1);
        // Clear the leaked slot by acquiring every slot until we find it.
        // (In real use the protecting thread resets; here we simulate it.)
        let mut t2 = d.register();
        // Simulate the protector clearing its announcement:
        // find the slot via a fresh scan and reset through a new handle.
        // Simplest: overwrite by acquiring slots is not possible (active),
        // so emulate by reclaiming with protection (no free), then clearing.
        t2.reclaim();
        assert_eq!(DROPS.load(Relaxed), 0);
        let _ = words;
    }

    #[test]
    fn dead_threads_orphans_are_freed_by_survivor() {
        // A thread dies with unprotected garbage it never got to scan; a
        // surviving thread's next reclaim must adopt and free all of it.
        static DROPS: AtomicUsize = AtomicUsize::new(0);
        struct Canary;
        impl Drop for Canary {
            fn drop(&mut self) {
                DROPS.fetch_add(1, Relaxed);
            }
        }

        let d = new_domain();
        let mut survivor = d.register();
        // Handshake: the dying thread publishes its pointers, the survivor
        // protects them all, and only then does the dying thread retire and
        // exit — so its final reclaim can free nothing and must donate.
        let (ptr_tx, ptr_rx) = std::sync::mpsc::channel::<Vec<usize>>();
        let (go_tx, go_rx) = std::sync::mpsc::channel::<()>();
        let handle = std::thread::spawn(move || {
            let mut dying = d.register();
            let ptrs: Vec<usize> = (0..10)
                .map(|_| Box::into_raw(Box::new(Canary)) as usize)
                .collect();
            ptr_tx.send(ptrs.clone()).unwrap();
            go_rx.recv().unwrap(); // survivor's protections are now up
            for &p in &ptrs {
                unsafe { dying.retire(p as *mut Canary) };
            }
            // `dying` drops here: its final reclaim sees every node
            // protected, so all 10 become orphans.
        });
        let ptrs = ptr_rx.recv().unwrap();
        let mut hps = Vec::new();
        for &p in &ptrs {
            let hp = survivor.hazard_pointer();
            hp.protect_raw(p as *mut Canary);
            hps.push(hp);
        }
        go_tx.send(()).unwrap();
        handle.join().unwrap();

        assert_eq!(DROPS.load(Relaxed), 0, "protected orphans must survive");
        assert_eq!(d.orphan_count(), 10, "all garbage donated");
        // Adoption moves the orphans to the survivor without freeing them.
        survivor.reclaim();
        assert_eq!(DROPS.load(Relaxed), 0);
        assert_eq!(survivor.retired_count(), 10, "survivor owns the orphans");
        assert_eq!(d.orphan_count(), 0, "orphan list drained");
        for hp in hps {
            survivor.recycle(hp);
        }
        survivor.reclaim();
        assert_eq!(DROPS.load(Relaxed), 10, "survivor freed every orphan");
    }

    #[test]
    fn concurrent_protect_vs_retire_no_uaf() {
        // Readers protect a shared slot's node, validate, and read a canary
        // value; a writer keeps swapping and retiring. Any use-after-free
        // corrupts the canary (drop poisons it).
        struct Node {
            value: u64,
        }
        impl Drop for Node {
            fn drop(&mut self) {
                self.value = u64::MAX;
            }
        }

        let d = new_domain();
        let slot = Arc::new(Atomic::new(Node { value: 7 }));
        let stop = Arc::new(AtomicBool::new(false));

        let mut threads = Vec::new();
        for _ in 0..4 {
            let slot = slot.clone();
            let stop = stop.clone();
            threads.push(std::thread::spawn(move || {
                let mut t = d.register();
                let hp = t.hazard_pointer();
                while !stop.load(Relaxed) {
                    let s = hp.protect(&slot);
                    if s.is_null() {
                        continue;
                    }
                    let v = unsafe { s.deref() }.value;
                    assert_eq!(v, 7, "use-after-free detected");
                    hp.reset();
                }
            }));
        }
        {
            let slot = slot.clone();
            let stop = stop.clone();
            threads.push(std::thread::spawn(move || {
                let mut t = d.register();
                for _ in 0..30_000 {
                    let fresh = Shared::from_owned(Node { value: 7 });
                    let old = slot.swap(fresh, AcqRel);
                    unsafe { t.retire(old.as_raw()) };
                }
                stop.store(true, Relaxed);
            }));
        }
        for th in threads {
            th.join().unwrap();
        }
        unsafe { slot.load(Relaxed).drop_owned() };
    }
}
