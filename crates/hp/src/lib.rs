//! HP — the original hazard pointers (Michael 2002/2004) with the
//! asymmetric-fence optimization of the HP++ paper (§3.4).
//!
//! A thread that wants to access a node first **announces** the pointer in a
//! hazard slot, then **validates** that the node is still reachable (an
//! over-approximation of "not retired"). A thread that retires a node defers
//! it to a local bag; reclamation scans all hazard slots and frees only the
//! unannounced retired nodes.
//!
//! The announce/validate fast path issues only a *light* fence (a compiler
//! fence when `membarrier(2)` is available); reclamation issues the matching
//! process-wide *heavy* fence before scanning.
//!
//! The [`hp-plus`](../hp_plus/index.html) crate extends — not modifies —
//! this crate, exactly as HP++ extends HP in the paper (§4.2).
//!
//! # Example: the Treiber-stack protection pattern (paper Fig. 2)
//!
//! ```
//! use smr_common::{Atomic, Shared};
//! use std::sync::atomic::Ordering::AcqRel;
//!
//! let mut thread = hp::default_domain().register();
//! let hp_slot = thread.hazard_pointer();
//!
//! let head = Atomic::new("top");
//!
//! // Announce + validate in a loop: `protect` retries until the load from
//! // `head` is covered by the announcement.
//! let h = hp_slot.protect(&head);
//! assert_eq!(unsafe { *h.deref() }, "top");
//!
//! // Another thread swaps out the node and retires it...
//! let old = head.swap(Shared::from_owned("new-top"), AcqRel);
//! unsafe { thread.retire(old.as_raw()) };
//!
//! // ...but the announcement keeps it alive through a reclamation pass.
//! thread.reclaim();
//! assert_eq!(unsafe { *h.deref() }, "top");
//!
//! hp_slot.reset();
//! thread.reclaim(); // now it is freed
//! # unsafe { head.into_owned(); }
//! ```

#![warn(missing_docs)]

mod domain;
mod hazard;
mod thread;

pub use domain::{default_domain, Domain};
pub use hazard::HazardPointer;
pub use thread::Thread;

/// Minimum number of retires between reclamation attempts (paper §5: 128).
///
/// The effective trigger is adaptive: a thread scans once its retired bag
/// reaches `max(RECLAIM_THRESHOLD, k · H)` where `H` is the number of live
/// hazard slots in the domain and `k` is [`reclaim_k`]. The floor keeps
/// scans amortized at low thread counts; the `k · H` term is Michael's
/// `R = H(1 + ε)` rule, which keeps the *per-free* scan cost O(k/(k-1))
/// instead of degrading as hazard arrays grow with thread count.
pub const RECLAIM_THRESHOLD: usize = 128;

/// Default `k` of the adaptive reclaim trigger (`R = k · H`): every scan of
/// `H` hazard slots frees at least `(k-1) · H` nodes, so scan cost per
/// freed node is bounded by `k/(k-1)` comparisons. 2 balances memory bound
/// (at most `2H + RECLAIM_THRESHOLD` unreclaimed per thread) against scan
/// amortization.
pub const RECLAIM_K: usize = 2;

/// Named fault-injection points compiled into this crate (each a
/// `smr_common::fault_point!` site; no-ops without the `fault-injection`
/// feature). DESIGN.md §1.7 documents the invariant each one attacks.
pub const FAULT_POINTS: &[&str] = &[
    "hp::protect::after_announce",
    "hp::retire::after_push",
    "hp::reclaim::before_fence",
    "hp::reclaim::after_snapshot",
    "hp::teardown::before_reclaim",
];

/// The effective adaptive-threshold multiplier, overridable for ablations
/// via the `HP_RECLAIM_K` environment variable (read once, at first use).
pub fn reclaim_k() -> usize {
    use std::sync::OnceLock;
    static K: OnceLock<usize> = OnceLock::new();
    *K.get_or_init(|| {
        smr_common::env::parse_usize("HP_RECLAIM_K")
            .filter(|&k| k > 0)
            .unwrap_or(RECLAIM_K)
    })
}

/// HP's pre-policy trigger formula as [`policy`](smr_common::policy)
/// parameters: `retired ≥ max(RECLAIM_THRESHOLD, reclaim_k() · H)`. This is
/// what a [`Domain`](crate::Domain) runs when no policy is installed, and
/// the base every other policy kind refines (kv-service builds per-shard
/// `Adaptive`/`TimedCapped` policies over it).
pub fn legacy_trigger() -> smr_common::policy::Capped {
    smr_common::policy::Capped {
        floor: RECLAIM_THRESHOLD,
        k: reclaim_k(),
        period: 0,
    }
}

/// The env-selected default policy (`SMR_POLICY*` refining
/// [`legacy_trigger`]); with no policy env vars this is `Capped` with the
/// legacy parameters — bit-identical trigger decisions.
pub(crate) fn default_policy() -> std::sync::Arc<dyn smr_common::policy::ReclaimPolicy> {
    smr_common::policy::PolicyConfig::from_env().build(legacy_trigger())
}
