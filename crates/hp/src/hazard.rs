//! Hazard slots, slot arrays, and the owning [`HazardPointer`] handle.

use std::sync::atomic::{AtomicBool, AtomicPtr, AtomicUsize, Ordering};

use smr_common::{fence, Atomic, Shared};

/// A single-writer multi-reader hazard slot.
///
/// Padded to a cache-line pair: slots are written on every protection, and
/// sharing lines between threads would serialize the fast path.
#[repr(align(128))]
pub(crate) struct HazardSlot {
    /// The announced pointer (0 = nothing protected).
    pub(crate) data: AtomicUsize,
    /// Slot ownership flag.
    pub(crate) active: AtomicBool,
}

impl HazardSlot {
    const fn new() -> Self {
        Self {
            data: AtomicUsize::new(0),
            active: AtomicBool::new(false),
        }
    }
}

pub(crate) const SLOTS_PER_NODE: usize = 8;

/// A block of hazard slots; blocks form a global append-only list.
pub(crate) struct HazardArray {
    pub(crate) slots: [HazardSlot; SLOTS_PER_NODE],
    pub(crate) next: AtomicPtr<HazardArray>,
}

impl HazardArray {
    fn new() -> Self {
        Self {
            slots: std::array::from_fn(|_| HazardSlot::new()),
            next: AtomicPtr::new(std::ptr::null_mut()),
        }
    }
}

/// The global, grow-only list of hazard slots for one domain.
pub(crate) struct HazardList {
    head: AtomicPtr<HazardArray>,
    /// Total slots allocated so far, maintained on block push so that
    /// [`capacity`](HazardList::capacity) is O(1). Reclamation consults the
    /// capacity on every retire to size its adaptive scan threshold
    /// (Michael's `R = k·H` rule), so this must not walk the list.
    len: AtomicUsize,
}

impl HazardList {
    pub(crate) const fn new() -> Self {
        Self {
            head: AtomicPtr::new(std::ptr::null_mut()),
            len: AtomicUsize::new(0),
        }
    }

    /// Acquires an inactive slot, growing the list if necessary.
    pub(crate) fn acquire(&self) -> *const HazardSlot {
        let mut cur = self.head.load(Ordering::Acquire);
        while !cur.is_null() {
            let arr = unsafe { &*cur };
            for slot in &arr.slots {
                if !slot.active.load(Ordering::Relaxed)
                    && slot
                        .active
                        .compare_exchange(false, true, Ordering::AcqRel, Ordering::Relaxed)
                        .is_ok()
                {
                    return slot;
                }
            }
            cur = arr.next.load(Ordering::Acquire);
        }
        // All slots taken: push a fresh block at the head.
        let block = Box::into_raw(Box::new(HazardArray::new()));
        let arr = unsafe { &*block };
        arr.slots[0].active.store(true, Ordering::Relaxed);
        let mut head = self.head.load(Ordering::Acquire);
        loop {
            arr.next.store(head, Ordering::Relaxed);
            match self
                .head
                .compare_exchange(head, block, Ordering::AcqRel, Ordering::Acquire)
            {
                Ok(_) => {
                    self.len.fetch_add(SLOTS_PER_NODE, Ordering::Relaxed);
                    return &arr.slots[0];
                }
                Err(h) => head = h,
            }
        }
    }

    /// Collects every announced pointer into `out` (unsorted).
    pub(crate) fn collect_protected(&self, out: &mut Vec<usize>) {
        let mut cur = self.head.load(Ordering::Acquire);
        while !cur.is_null() {
            let arr = unsafe { &*cur };
            for slot in &arr.slots {
                let p = slot.data.load(Ordering::Acquire);
                if p != 0 {
                    out.push(p);
                }
            }
            cur = arr.next.load(Ordering::Acquire);
        }
    }

    /// Total number of slots currently allocated. O(1): reads the counter
    /// maintained by [`acquire`](HazardList::acquire), it does not walk the
    /// block list (the adaptive reclaim threshold reads this per retire).
    pub(crate) fn capacity(&self) -> usize {
        self.len.load(Ordering::Relaxed)
    }
}

impl Drop for HazardList {
    fn drop(&mut self) {
        let mut cur = *self.head.get_mut();
        while !cur.is_null() {
            let boxed = unsafe { Box::from_raw(cur) };
            cur = boxed.next.load(Ordering::Relaxed);
        }
    }
}

/// An owned hazard slot.
///
/// Protection is announce-then-validate:
/// [`protect_raw`](HazardPointer::protect_raw) announces,
/// [`try_protect`](HazardPointer::try_protect) announces and validates
/// against the link the pointer was read from (the original HP validation,
/// which over-approximates unreachability — paper §2.2).
pub struct HazardPointer {
    slot: *const HazardSlot,
}

unsafe impl Send for HazardPointer {}

impl HazardPointer {
    pub(crate) fn from_slot(slot: *const HazardSlot) -> Self {
        Self { slot }
    }

    /// Consumes the handle, returning the raw slot without deactivating it.
    pub(crate) fn into_slot(self) -> *const HazardSlot {
        let slot = self.slot;
        std::mem::forget(self);
        slot
    }

    #[inline]
    fn slot(&self) -> &HazardSlot {
        unsafe { &*self.slot }
    }

    /// Announces protection of `ptr` without validating.
    #[inline]
    pub fn protect_raw<T>(&self, ptr: *mut T) {
        self.slot().data.store(ptr as usize, Ordering::Release);
    }

    /// Clears the announcement.
    #[inline]
    pub fn reset(&self) {
        self.slot().data.store(0, Ordering::Release);
    }

    /// The currently announced word (tests/diagnostics).
    #[inline]
    pub fn protected_word(&self) -> usize {
        self.slot().data.load(Ordering::Acquire)
    }

    /// Announces `ptr` and validates that `src` still holds exactly `ptr`
    /// (tag included). On failure returns the current value of `src`.
    ///
    /// This is the original HP protection: if the source link changed — the
    /// node was unlinked from it, or the source was marked — the node may
    /// already be retired, so protection fails.
    #[inline]
    pub fn try_protect<T>(&self, ptr: Shared<T>, src: &Atomic<T>) -> Result<(), Shared<T>> {
        let cur = fence::announce_then_validate(
            || {
                self.protect_raw(ptr.as_raw());
                // The announce-to-validate window: a thread stalled here has
                // published a hazard that retirers must already honor.
                smr_common::fault_point!("hp::protect::after_announce");
            },
            || src.load(Ordering::Acquire),
        );
        if cur == ptr {
            Ok(())
        } else {
            self.reset();
            Err(cur)
        }
    }

    /// Repeatedly announces and validates until the load from `src` is
    /// protected; returns the protected value (Treiber-stack style
    /// protection against a root pointer).
    #[inline]
    pub fn protect<T>(&self, src: &Atomic<T>) -> Shared<T> {
        let mut ptr = src.load(Ordering::Acquire);
        loop {
            if ptr.is_null() {
                self.reset();
                return ptr;
            }
            match self.try_protect(ptr, src) {
                Ok(()) => return ptr,
                Err(new) => ptr = new,
            }
        }
    }

    /// Swaps which slot each handle owns (hand-over-hand traversal).
    #[inline]
    pub fn swap(a: &mut Self, b: &mut Self) {
        std::mem::swap(&mut a.slot, &mut b.slot);
    }
}

impl Drop for HazardPointer {
    fn drop(&mut self) {
        let slot = self.slot();
        slot.data.store(0, Ordering::Release);
        slot.active.store(false, Ordering::Release);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn acquire_grows_and_reuses() {
        let list = HazardList::new();
        let a = list.acquire();
        let b = list.acquire();
        assert_ne!(a, b);
        let cap1 = list.capacity();
        // Release a slot by dropping its handle, then reacquire: capacity
        // must not grow.
        drop(HazardPointer::from_slot(a));
        let c = list.acquire();
        assert_eq!(list.capacity(), cap1);
        drop(HazardPointer::from_slot(b));
        drop(HazardPointer::from_slot(c));
    }

    #[test]
    fn acquire_many_grows_capacity() {
        let list = HazardList::new();
        let hps: Vec<_> = (0..40)
            .map(|_| HazardPointer::from_slot(list.acquire()))
            .collect();
        assert!(list.capacity() >= 40);
        let mut out = Vec::new();
        hps[0].protect_raw(0x1000 as *mut u8);
        list.collect_protected(&mut out);
        assert_eq!(out, vec![0x1000]);
    }

    #[test]
    fn protect_validate_against_atomic() {
        let list = HazardList::new();
        let hp = HazardPointer::from_slot(list.acquire());
        let a = Atomic::new(1u64);
        let p = a.load(Ordering::Relaxed);
        assert!(hp.try_protect(p, &a).is_ok());
        assert_eq!(hp.protected_word(), p.as_raw() as usize);

        // After the link changes, validation fails and reports the new value.
        let q = Shared::from_owned(2u64);
        a.store(q, Ordering::Release);
        let err = hp.try_protect(p, &a).unwrap_err();
        assert!(err.ptr_eq(q));
        assert_eq!(hp.protected_word(), 0);

        unsafe {
            p.drop_owned();
            a.into_owned();
        }
    }

    #[test]
    fn tagged_source_fails_validation() {
        // Marking the source link (logical deletion of the source) must fail
        // protection even though the pointer part still matches.
        let list = HazardList::new();
        let hp = HazardPointer::from_slot(list.acquire());
        let a = Atomic::new(3u64);
        let p = a.load(Ordering::Relaxed);
        a.fetch_or_tag(smr_common::tagged::TAG_DELETED, Ordering::AcqRel);
        assert!(hp.try_protect(p, &a).is_err());
        unsafe {
            a.into_owned();
        }
    }
}
