//! An HP++ domain: an HP domain plus the global fence epoch of Algorithm 5.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use smr_common::fence;
use smr_common::policy::{PolicySlot, ReclaimPolicy, Verdict};

use crate::thread::Thread;

/// The global side of an HP++ instance.
pub struct Domain {
    pub(crate) hp: hp::Domain,
    /// Algorithm 5's `fence_epoch`: numbers the periods delimited by heavy
    /// fences so threads can piggyback hazard revocation on each other's
    /// fences.
    pub(crate) fence_epoch: AtomicU64,
    /// Trigger policy for the unlink→reclaim cadence (the inner HP domain
    /// carries its own slot for the plain-retire path).
    unlink_policy: PolicySlot,
}

impl Default for Domain {
    fn default() -> Self {
        Self::new()
    }
}

impl Domain {
    /// Creates an independent domain.
    pub const fn new() -> Self {
        Self {
            hp: hp::Domain::new(),
            fence_epoch: AtomicU64::new(0),
            unlink_policy: PolicySlot::new(),
        }
    }

    /// Installs the unlink-cadence reclamation policy (must run before the
    /// domain's first unlink; the slot latches). Unset, the domain lazily
    /// builds the env-selected default over
    /// [`legacy_unlink_trigger`](crate::legacy_unlink_trigger).
    pub fn set_unlink_policy(&self, policy: Arc<dyn ReclaimPolicy>) -> bool {
        self.unlink_policy.install(policy)
    }

    /// Installs the plain-retire policy on the inner HP domain (hybrid-use
    /// retirements, §4.2).
    pub fn set_retire_policy(&self, policy: Arc<dyn ReclaimPolicy>) -> bool {
        self.hp.set_policy(policy)
    }

    /// Feeds a watchdog verdict to both trigger policies (unlink cadence
    /// and the inner HP retire path).
    pub fn report_verdict(&self, verdict: Verdict) {
        self.unlink_policy.report_verdict(verdict);
        self.hp.report_verdict(verdict);
    }

    pub(crate) fn unlink_policy_slot(&self) -> &PolicySlot {
        &self.unlink_policy
    }

    /// Registers the current thread.
    pub fn register(&'static self) -> Thread {
        Thread::new(self)
    }

    /// The underlying HP domain (hybrid use, diagnostics).
    pub fn hp_domain(&'static self) -> &'static hp::Domain {
        &self.hp
    }

    /// Algorithm 5's `FenceEpoch`: issue a heavy fence and advance the
    /// global fence epoch past it.
    pub(crate) fn fence_epoch_step(&self) {
        let e = self.fence_epoch.load(Ordering::Acquire);
        fence::heavy();
        let _ = self
            .fence_epoch
            .compare_exchange(e, e + 1, Ordering::AcqRel, Ordering::Relaxed);
    }

    /// Algorithm 5's `ReadEpoch`: a light fence bracketed by two equal reads
    /// of the fence epoch, guaranteeing the returned epoch's period covers
    /// the fence.
    pub(crate) fn read_epoch(&self) -> u64 {
        let mut e = self.fence_epoch.load(Ordering::Acquire);
        loop {
            fence::light();
            let e2 = self.fence_epoch.load(Ordering::Acquire);
            if e == e2 {
                return e;
            }
            e = e2;
        }
    }

    /// Current fence epoch (tests/diagnostics).
    pub fn fence_epoch_now(&self) -> u64 {
        self.fence_epoch.load(Ordering::Relaxed)
    }
}

/// The process-wide default HP++ domain.
pub fn default_domain() -> &'static Domain {
    static DEFAULT: Domain = Domain::new();
    &DEFAULT
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fence_epoch_advances() {
        let d: &'static Domain = Box::leak(Box::new(Domain::new()));
        let e0 = d.fence_epoch_now();
        d.fence_epoch_step();
        assert_eq!(d.fence_epoch_now(), e0 + 1);
        d.fence_epoch_step();
        assert_eq!(d.fence_epoch_now(), e0 + 2);
    }

    #[test]
    fn read_epoch_is_coherent() {
        let d: &'static Domain = Box::leak(Box::new(Domain::new()));
        let e = d.read_epoch();
        assert_eq!(e, d.fence_epoch_now());
        d.fence_epoch_step();
        assert_eq!(d.read_epoch(), e + 1);
    }

    #[test]
    fn concurrent_fence_epoch_steps_make_progress() {
        let d: &'static Domain = Box::leak(Box::new(Domain::new()));
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for _ in 0..100 {
                        d.fence_epoch_step();
                    }
                });
            }
        });
        // CAS losers don't retry, so the epoch advances between 100 and 400.
        let e = d.fence_epoch_now();
        assert!((100..=400).contains(&e), "epoch = {e}");
    }
}
