//! HP++ — hazard pointers for optimistic traversal.
//!
//! This crate is the paper's core contribution (SPAA 2023, "Applying Hazard
//! Pointers to More Concurrent Data Structures"): a backward-compatible
//! *extension* of hazard pointers that supports data structures whose
//! traversal optimistically follows links out of logically deleted nodes
//! (Harris's list, Natarajan–Mittal trees, wait-free searches, …) — exactly
//! the structures the original HP cannot protect (§2.3).
//!
//! # The idea (§3.1)
//!
//! Original HP validates a protection by *over-approximating*
//! unreachability: "the source link changed or is marked ⇒ the target may be
//! retired ⇒ fail". HP++ inverts this. Unlinkers physically delete first and
//! **invalidate** the unlinked nodes afterwards, so invalidation
//! *under-approximates* unreachability, and validation only fails when the
//! source node is invalidated. The two use-after-free scenarios this opens
//! (Fig. 6) are **patched up** by the unlinker:
//!
//! 1. it invalidates *all* unlinked nodes before any of them is freed, and
//! 2. it protects the unlink **frontier** (the nodes reachable by one link
//!    from the unlinked chain) until the unlinked nodes are invalidated.
//!
//! # API
//!
//! * [`try_protect`] — Algorithm 3's `TryProtect`: announce, light fence,
//!   check the *source* is not invalidated, re-read the source link ignoring
//!   tags.
//! * [`Thread::try_unlink`] — Algorithm 3's `TryUnlink`: protect the
//!   frontier, run the unlink CAS, defer invalidation of the unlinked chain.
//! * [`Thread::do_invalidation`] / [`Thread::reclaim`] — Algorithm 5:
//!   batched invalidation with the **epoched heavy fence** optimization
//!   (§3.4) that piggybacks hazard-pointer revocation on other threads'
//!   fences.
//!
//! The crate extends — not modifies — the [`hp`] crate: protections made
//! with plain [`hp::HazardPointer::try_protect`] and retirements made with
//! [`Thread::retire`] interoperate, enabling the hybrid usage of §4.2.
//!
//! # Example: a two-node chain unlink, Harris style
//!
//! ```
//! use hp_plus::{try_protect, Invalidate, Unlinked};
//! use smr_common::{Atomic, Shared};
//! use std::sync::atomic::Ordering::{AcqRel, Acquire, Relaxed, Release};
//!
//! struct Node {
//!     next: Atomic<Node>,
//!     value: u64,
//! }
//!
//! unsafe impl Invalidate for Node {
//!     unsafe fn invalidate(ptr: *mut Self) {
//!         // Bit 1 of the link marks the node invalidated; its links are
//!         // frozen once unlinked (Assumption 1), so a store suffices.
//!         let node = unsafe { &*ptr };
//!         let cur = node.next.load(Relaxed);
//!         node.next.store(cur.with_tag(cur.tag() | 2), Release);
//!     }
//! }
//!
//! let mut thread = hp_plus::default_domain().register();
//!
//! // Build head -> a -> b -> null.
//! let b = Shared::from_owned(Node { next: Atomic::null(), value: 2 });
//! let a = Shared::from_owned(Node { next: Atomic::from(b), value: 1 });
//! let head = Atomic::from(a);
//!
//! // A traversal protects `a` from the head link (a root is never invalid).
//! let hp = thread.hazard_pointer();
//! let mut cur = head.load(Acquire).with_tag(0);
//! assert!(try_protect(&hp, &mut cur, &head, || false));
//! assert_eq!(unsafe { cur.deref() }.value, 1);
//!
//! // An unlinker detaches the whole chain [a, b]; the frontier is empty
//! // (the chain's successor is null).
//! let ok = unsafe {
//!     thread.try_unlink(&[], || {
//!         head.compare_exchange(a, Shared::null(), AcqRel, Acquire)
//!             .ok()
//!             .map(|_| Unlinked::new(vec![a, b]))
//!     })
//! };
//! assert!(ok);
//!
//! // Flush invalidation + reclamation: `a` survives (protected), `b` goes.
//! thread.reclaim();
//! assert_eq!(unsafe { cur.deref() }.value, 1);
//! hp.reset();
//! thread.reclaim(); // now `a` is reclaimed too
//! ```

#![warn(missing_docs)]

mod domain;
mod thread;

#[cfg(test)]
mod tests;

pub use domain::{default_domain, Domain};
pub use hp::HazardPointer;
pub use thread::{Thread, Unlinked};

use smr_common::{fence, Atomic, Shared};
use std::sync::atomic::Ordering;

/// How many `try_unlink`s between deferred invalidation flushes (paper §5).
pub const INVALIDATE_PERIOD: usize = 32;
/// How many `try_unlink`s between reclamation attempts (paper §5).
pub const RECLAIM_PERIOD: usize = 128;

/// Named fault-injection points compiled into this crate (each a
/// `smr_common::fault_point!` site; no-ops without the `fault-injection`
/// feature). DESIGN.md §1.7 documents the invariant each one attacks.
pub const FAULT_POINTS: &[&str] = &[
    "hpp::try_unlink::after_frontier",
    "hpp::try_unlink::after_detach",
    "hpp::try_unlink::mid_invalidation",
    "hpp::reclaim::before_revoke",
];

/// The effective periods, overridable for the batching ablation via the
/// `HPP_INVALIDATE_PERIOD` / `HPP_RECLAIM_PERIOD` environment variables
/// (read once, at first use).
pub(crate) fn periods() -> (usize, usize) {
    use std::sync::OnceLock;
    static PERIODS: OnceLock<(usize, usize)> = OnceLock::new();
    *PERIODS.get_or_init(|| {
        let read = |name: &str, default: usize| {
            smr_common::env::parse_usize(name)
                .filter(|&n| n > 0)
                .unwrap_or(default)
        };
        (
            read("HPP_INVALIDATE_PERIOD", INVALIDATE_PERIOD),
            read("HPP_RECLAIM_PERIOD", RECLAIM_PERIOD),
        )
    })
}

/// HP++'s pre-policy reclaim cadence as [`policy`](smr_common::policy)
/// parameters: reclaim every `HPP_RECLAIM_PERIOD` unlinks (a cadence-only
/// trigger — the count branch is unarmed). The invalidation cadence
/// (`HPP_INVALIDATE_PERIOD`) is *not* policy-driven: it is a correctness
/// batching knob, checked only when the policy skips reclamation.
pub fn legacy_unlink_trigger() -> smr_common::policy::Capped {
    smr_common::policy::Capped {
        floor: 0,
        k: 0,
        period: periods().1 as u64,
    }
}

/// The env-selected default unlink policy (`SMR_POLICY*` refining
/// [`legacy_unlink_trigger`]).
pub(crate) fn default_unlink_policy() -> std::sync::Arc<dyn smr_common::policy::ReclaimPolicy> {
    smr_common::policy::PolicyConfig::from_env().build(legacy_unlink_trigger())
}

/// A node type that can be invalidated by an HP++ unlinker.
///
/// Invalidation typically sets the second-lowest bit of the node's link
/// field with a plain store — safe because, per Assumption 1 of the paper,
/// an unlinked node's links no longer change.
///
/// # Safety
/// `invalidate` must make `is_invalid` return `true` for this node, and must
/// only touch the node itself.
pub unsafe trait Invalidate {
    /// Marks the node as invalidated (e.g. tags its next pointer).
    ///
    /// # Safety
    /// `ptr` must point to a live node that has been physically unlinked.
    unsafe fn invalidate(ptr: *mut Self);
}

/// Algorithm 3's `TryProtect`.
///
/// Announces `*ptr` on `hp` and validates it against `src_link`, the field
/// of the *source* node from which `*ptr` was loaded:
///
/// * returns `false` if the source is invalidated — the traversal must not
///   take further steps from it and should restart;
/// * returns `true` once the protection is validated. If `src_link` changed
///   in the meantime, `*ptr` is updated to the new (untagged) value — note
///   that **tags on `src_link` are ignored**, which is what permits
///   traversal through logically deleted nodes.
///
/// `is_invalid` is the invalidity check for the source node; pass
/// `|| false` when the source is the structure's root (never retired).
#[inline]
pub fn try_protect<T>(
    hp: &HazardPointer,
    ptr: &mut Shared<T>,
    src_link: &Atomic<T>,
    is_invalid: impl Fn() -> bool,
) -> bool {
    loop {
        hp.protect_raw(ptr.as_raw());
        fence::light();
        if is_invalid() {
            hp.reset();
            return false;
        }
        let new = src_link.load(Ordering::Acquire).with_tag(0);
        if new == *ptr {
            return true;
        }
        *ptr = new;
    }
}
