//! Per-thread HP++ state: unlink batches, epoched hazard pointers,
//! deferred invalidation, reclamation (Algorithms 3 and 5).

use hp::HazardPointer;
use smr_common::policy::{self, Decision, RetireStats};
use smr_common::{counters, Retired, Shared};

use crate::domain::Domain;
use crate::{periods, Invalidate};

/// How many pooled spill vectors a thread keeps per pool. Beyond this,
/// returned vectors are dropped: `try_unlink` bursts briefly needing many
/// in-flight batches must not turn into a permanent per-thread hoard.
const SPARE_POOL_CAP: usize = 8;

/// Spill vectors whose capacity ballooned past this are dropped instead of
/// pooled, so one pathological chain can't pin a large allocation forever.
const SPARE_VEC_MAX_CAPACITY: usize = 1024;

fn pool_take<T>(pool: &mut Vec<Vec<T>>) -> Vec<T> {
    pool.pop().unwrap_or_default()
}

fn pool_give<T>(pool: &mut Vec<Vec<T>>, mut v: Vec<T>) {
    v.clear();
    if v.capacity() > 0 && v.capacity() <= SPARE_VEC_MAX_CAPACITY && pool.len() < SPARE_POOL_CAP {
        pool.push(v);
    }
}

/// Batch storage with two inline slots, spilling to a pooled `Vec` only for
/// longer chains. The common unlink frontier and detached chain are 1–2
/// nodes (every remove in the list structures; chain-node + pendant-leaf in
/// NMTree), so the steady-state `try_unlink` path never touches the
/// allocator.
struct InlineBuf<T> {
    inline: [Option<T>; 2],
    spill: Vec<T>,
}

impl<T> InlineBuf<T> {
    fn new() -> Self {
        Self {
            inline: [None, None],
            spill: Vec::new(),
        }
    }

    fn push(&mut self, value: T, pool: &mut Vec<Vec<T>>) {
        for slot in &mut self.inline {
            if slot.is_none() {
                *slot = Some(value);
                return;
            }
        }
        if self.spill.capacity() == 0 {
            self.spill = pool_take(pool);
        }
        self.spill.push(value);
    }

    fn len(&self) -> usize {
        self.inline.iter().filter(|s| s.is_some()).count() + self.spill.len()
    }

    fn for_each_ref(&self, mut f: impl FnMut(&T)) {
        for slot in self.inline.iter().flatten() {
            f(slot);
        }
        for v in &self.spill {
            f(v);
        }
    }

    /// Empties the buffer through `f`, returning any spill vector to `pool`.
    fn drain_into(&mut self, pool: &mut Vec<Vec<T>>, mut f: impl FnMut(T)) {
        for slot in &mut self.inline {
            if let Some(v) = slot.take() {
                f(v);
            }
        }
        if self.spill.capacity() > 0 {
            for v in self.spill.drain(..) {
                f(v);
            }
            pool_give(pool, std::mem::take(&mut self.spill));
        }
    }
}

/// A batch of nodes unlinked together by one `try_unlink`, awaiting
/// invalidation, together with the frontier protections taken for them.
struct UnlinkBatch {
    nodes: InlineBuf<Retired>,
    invalidate: unsafe fn(*mut u8),
    frontier_hps: InlineBuf<HazardPointer>,
}

/// The nodes detached by a successful unlink operation.
///
/// Returned by the `do_unlink` closure of [`Thread::try_unlink`]. The
/// [`Single`](Unlinked::Single) and [`Pair`](Unlinked::Pair) cases — every
/// remove in HMList-style structures, and chain-node + pendant-leaf in
/// NMTree — are allocation-free; only longer chains need a `Vec`.
pub enum Unlinked<T> {
    /// One detached node.
    Single(Shared<T>),
    /// Two nodes detached by the same CAS.
    Pair(Shared<T>, Shared<T>),
    /// A detached chain.
    Chain(Vec<Shared<T>>),
}

impl<T> Unlinked<T> {
    /// Wraps the chain of nodes the unlink CAS detached.
    pub fn new(nodes: Vec<Shared<T>>) -> Self {
        Self::Chain(nodes)
    }

    /// A single detached node.
    pub fn single(node: Shared<T>) -> Self {
        Self::Single(node)
    }

    /// Two nodes detached together (allocation-free).
    pub fn pair(first: Shared<T>, second: Shared<T>) -> Self {
        Self::Pair(first, second)
    }

    fn len(&self) -> usize {
        match self {
            Self::Single(_) => 1,
            Self::Pair(..) => 2,
            Self::Chain(v) => v.len(),
        }
    }

    fn for_each(&self, mut f: impl FnMut(Shared<T>)) {
        match self {
            Self::Single(s) => f(*s),
            Self::Pair(a, b) => {
                f(*a);
                f(*b);
            }
            Self::Chain(v) => v.iter().copied().for_each(f),
        }
    }
}

unsafe fn invalidate_erased<T: Invalidate>(ptr: *mut u8) {
    unsafe { T::invalidate(ptr.cast::<T>()) }
}

/// A thread's registration with an HP++ [`Domain`].
pub struct Thread {
    inner: hp::Thread,
    domain: &'static Domain,
    /// Algorithm 3's thread-local `unlinkeds`. Drained in place, so its
    /// capacity is reused across invalidation flushes.
    unlinkeds: Vec<UnlinkBatch>,
    /// Algorithm 5's `epoched_hps`: frontier protections awaiting a safe
    /// (fence-separated) revocation. Compacted in place via swap-remove.
    epoched_hps: Vec<(u64, HazardPointer)>,
    /// Staging scratch for `do_invalidation`: protections collected from
    /// flushed batches before they are stamped with the post-invalidation
    /// epoch. Persistent so flushes allocate nothing in steady state.
    pending_hps: Vec<HazardPointer>,
    unlink_count: usize,
    /// Bounded spill pools: `try_unlink` runs on every physical deletion,
    /// so long-chain batches recycle their spill vectors instead of
    /// reallocating (capped — see [`SPARE_POOL_CAP`]).
    spare_retired_vecs: Vec<Vec<Retired>>,
    spare_hp_vecs: Vec<Vec<HazardPointer>>,
    /// When this thread last completed a reclaim, for time-based unlink
    /// policies (only maintained while the installed policy wants time).
    last_scan_ns: u64,
}

impl Thread {
    pub(crate) fn new(domain: &'static Domain) -> Self {
        Self {
            inner: domain.hp_domain().register(),
            domain,
            unlinkeds: Vec::new(),
            epoched_hps: Vec::new(),
            pending_hps: Vec::new(),
            unlink_count: 0,
            spare_retired_vecs: Vec::new(),
            spare_hp_vecs: Vec::new(),
            last_scan_ns: 0,
        }
    }

    /// The domain this thread belongs to.
    pub fn domain(&self) -> &'static Domain {
        self.domain
    }

    /// Acquires a hazard pointer (cached slot if available).
    pub fn hazard_pointer(&mut self) -> HazardPointer {
        self.inner.hazard_pointer()
    }

    /// Returns a hazard pointer's slot to this thread's cache.
    pub fn recycle(&mut self, hp: HazardPointer) {
        self.inner.recycle(hp);
    }

    /// Plain HP retirement (hybrid use, §4.2): for nodes protected with the
    /// original over-approximating validation, no invalidation is needed.
    ///
    /// # Safety
    /// Same contract as [`hp::Thread::retire`].
    pub unsafe fn retire<T>(&mut self, ptr: *mut T) {
        self.inner.retire(ptr);
    }

    /// Sizes of the spill-vector pools `(retired, hazard)` — diagnostics
    /// for the pool-bounding guarantee.
    pub fn spare_pool_sizes(&self) -> (usize, usize) {
        (self.spare_retired_vecs.len(), self.spare_hp_vecs.len())
    }

    /// Algorithm 3's `TryUnlink`.
    ///
    /// 1. Protects every pointer in `frontier` (no validation needed — the
    ///    caller guarantees the frontier was decided before the unlink and
    ///    cannot change, Assumption 1).
    /// 2. Runs `do_unlink` (typically one CAS detaching a chain).
    /// 3. On success, schedules the detached nodes for deferred invalidation
    ///    and eventual reclamation; on failure, revokes the frontier
    ///    protections immediately.
    ///
    /// Returns whether the unlink succeeded.
    ///
    /// # Safety
    /// * `frontier` must contain every node reachable by one link from the
    ///   nodes `do_unlink` detaches that is not itself detached.
    /// * The detached nodes must be `Box`-allocated, detached exactly once,
    ///   with immutable links from before the unlink (Assumption 1).
    pub unsafe fn try_unlink<T: Invalidate>(
        &mut self,
        frontier: &[Shared<T>],
        do_unlink: impl FnOnce() -> Option<Unlinked<T>>,
    ) -> bool {
        let mut hps = InlineBuf::new();
        for f in frontier {
            let hp = self.hazard_pointer();
            hp.protect_raw(f.as_raw());
            hps.push(hp, &mut self.spare_hp_vecs);
        }
        // Frontier protections are up but the unlink CAS has not run: a
        // thread preempted here holds hazards for still-reachable nodes.
        smr_common::fault_point!("hpp::try_unlink::after_frontier");

        match do_unlink() {
            Some(unlinked) => {
                counters::incr_garbage(unlinked.len() as u64);
                let mut nodes = InlineBuf::new();
                unlinked.for_each(|s| {
                    nodes.push(unsafe { Retired::new(s.as_raw()) }, &mut self.spare_retired_vecs)
                });
                self.unlinkeds.push(UnlinkBatch {
                    nodes,
                    invalidate: invalidate_erased::<T>,
                    frontier_hps: hps,
                });
                // Nodes are detached but not yet invalidated — the window
                // HP++'s deferred invalidation (Algorithm 3) leaves open.
                smr_common::fault_point!("hpp::try_unlink::after_detach");
                self.unlink_count += 1;
                // The reclaim cadence is policy-driven (legacy default:
                // every `reclaim_period` unlinks); the invalidation cadence
                // stays fixed and is only consulted when the policy defers.
                let slot = self.domain.unlink_policy_slot();
                let unlink_policy = slot.get_or_init(crate::default_unlink_policy);
                let since_scan_ns = if unlink_policy.wants_time() {
                    smr_common::time::mono_ns().saturating_sub(self.last_scan_ns)
                } else {
                    0
                };
                let stats = RetireStats {
                    retired: self.unlinkeds.len() + self.inner.retired_count(),
                    slots: self.domain.hp.slot_capacity(),
                    ops: self.unlink_count as u64,
                    since_scan_ns,
                    verdict: slot.verdict(),
                };
                if policy::decide(unlink_policy, &stats) == Decision::Reclaim {
                    self.reclaim();
                } else if self.unlink_count.is_multiple_of(periods().0) {
                    self.do_invalidation();
                }
                true
            }
            None => {
                let Self {
                    inner,
                    spare_hp_vecs,
                    ..
                } = self;
                hps.drain_into(spare_hp_vecs, |hp| inner.recycle(hp));
                false
            }
        }
    }

    /// Algorithm 5's `DoInvalidation`: flushes pending unlink batches by
    /// invalidating their nodes, then parks the batches' frontier
    /// protections in `epoched_hps`, stamped with the current fence epoch.
    /// Protections two epochs old are revoked for free — a heavy fence has
    /// provably passed between (Lemma A.2).
    ///
    /// Allocation-free in steady state: batches drain in place and their
    /// storage returns to the bounded spill pools.
    pub fn do_invalidation(&mut self) {
        let Self {
            inner,
            unlinkeds,
            pending_hps,
            spare_retired_vecs,
            spare_hp_vecs,
            ..
        } = self;
        // `pending_hps` may hold leftovers from a flush aborted by an
        // injected panic; the tail `extend` re-parks them conservatively
        // with the new epoch, so no emptiness assertion here.
        for mut batch in unlinkeds.drain(..) {
            batch.nodes.for_each_ref(|node| {
                unsafe { (batch.invalidate)(node.ptr()) };
            });
            // A batch's nodes are invalidated but its frontier protections
            // are still announced and its nodes not yet in the retired bag.
            smr_common::fault_point!("hpp::try_unlink::mid_invalidation");
            batch
                .frontier_hps
                .drain_into(spare_hp_vecs, |hp| pending_hps.push(hp));
            batch
                .nodes
                .drain_into(spare_retired_vecs, |node| inner.push_retired(node));
        }

        // The epoch is read *after* the invalidations above, so a parked
        // protection is only revoked once a heavy fence has separated it
        // from every invalidation it guards.
        let epoch = self.domain.read_epoch();
        let mut i = 0;
        while i < self.epoched_hps.len() {
            if self.epoched_hps[i].0 + 2 <= epoch {
                let (_, hp) = self.epoched_hps.swap_remove(i);
                self.inner.recycle(hp);
            } else {
                i += 1;
            }
        }
        let pending = &mut self.pending_hps;
        self.epoched_hps
            .extend(pending.drain(..).map(|hp| (epoch, hp)));
    }

    /// Algorithm 5's `Reclaim`: flush invalidations, take the retired set,
    /// issue the epoched heavy fence, revoke all parked frontier
    /// protections, then scan hazards and free the unprotected nodes.
    pub fn reclaim(&mut self) {
        self.do_invalidation();
        let Self {
            inner,
            domain,
            epoched_hps,
            ..
        } = self;
        let parked: &[(u64, HazardPointer)] = epoched_hps;
        inner.reclaim_with_prefence(|| {
            smr_common::fault_point!("hpp::reclaim::before_revoke");
            domain.fence_epoch_step();
            for (_, hp) in parked {
                hp.reset();
            }
        });
        for (_, hp) in self.epoched_hps.drain(..) {
            self.inner.recycle(hp);
        }
        let slot = self.domain.unlink_policy_slot();
        if slot.get_or_init(crate::default_unlink_policy).wants_time() {
            self.last_scan_ns = smr_common::time::mono_ns();
        }
    }

    /// Number of nodes unlinked/retired by this thread and not yet freed.
    pub fn garbage_count(&self) -> usize {
        self.unlinkeds.iter().map(|b| b.nodes.len()).sum::<usize>() + self.inner.retired_count()
    }
}

impl Drop for Thread {
    fn drop(&mut self) {
        // If the final reclaim panics (a worker dying mid-flush), the guard
        // below still invalidates every pending batch and retires its nodes
        // before the inner `hp::Thread` teardown donates them — donating an
        // un-invalidated node would let a reader follow links into freed
        // memory (the HP++ safety argument requires invalidate-then-retire).
        struct Salvage<'a>(&'a mut Thread);
        impl Drop for Salvage<'_> {
            fn drop(&mut self) {
                let Thread {
                    inner,
                    unlinkeds,
                    epoched_hps,
                    pending_hps,
                    spare_retired_vecs,
                    spare_hp_vecs,
                    ..
                } = &mut *self.0;
                for mut batch in unlinkeds.drain(..) {
                    batch.nodes.for_each_ref(|node| {
                        unsafe { (batch.invalidate)(node.ptr()) };
                    });
                    // Dropping the frontier protections releases their slots
                    // back to the domain.
                    batch.frontier_hps.drain_into(spare_hp_vecs, drop);
                    batch
                        .nodes
                        .drain_into(spare_retired_vecs, |node| inner.push_retired(node));
                }
                // A heavy fence separates the invalidations above from the
                // donation scan in the inner teardown, standing in for the
                // epoched fence the aborted reclaim never issued.
                smr_common::fence::heavy();
                for (_, hp) in epoched_hps.drain(..) {
                    drop(hp);
                }
                for hp in pending_hps.drain(..) {
                    drop(hp);
                }
            }
        }
        let g = Salvage(self);
        g.0.reclaim();
        // Anything still protected by other threads is donated to the
        // domain's orphan list by the inner thread's Drop.
    }
}
