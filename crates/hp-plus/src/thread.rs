//! Per-thread HP++ state: unlink batches, epoched hazard pointers,
//! deferred invalidation, reclamation (Algorithms 3 and 5).

use hp::HazardPointer;
use smr_common::{counters, Retired, Shared};

use crate::domain::Domain;
use crate::{periods, Invalidate};

/// A batch of nodes unlinked together by one `try_unlink`, awaiting
/// invalidation, together with the frontier protections taken for them.
struct UnlinkBatch {
    nodes: Vec<Retired>,
    invalidate: unsafe fn(*mut u8),
    frontier_hps: Vec<HazardPointer>,
}

/// The nodes detached by a successful unlink operation.
///
/// Returned by the `do_unlink` closure of [`Thread::try_unlink`]. The
/// single-node case (every remove in HMList-style structures) is
/// allocation-free.
pub enum Unlinked<T> {
    /// One detached node.
    Single(Shared<T>),
    /// A detached chain.
    Chain(Vec<Shared<T>>),
}

impl<T> Unlinked<T> {
    /// Wraps the chain of nodes the unlink CAS detached.
    pub fn new(nodes: Vec<Shared<T>>) -> Self {
        Self::Chain(nodes)
    }

    /// A single detached node.
    pub fn single(node: Shared<T>) -> Self {
        Self::Single(node)
    }

    fn len(&self) -> usize {
        match self {
            Self::Single(_) => 1,
            Self::Chain(v) => v.len(),
        }
    }

    fn for_each(&self, mut f: impl FnMut(Shared<T>)) {
        match self {
            Self::Single(s) => f(*s),
            Self::Chain(v) => v.iter().copied().for_each(f),
        }
    }
}

unsafe fn invalidate_erased<T: Invalidate>(ptr: *mut u8) {
    unsafe { T::invalidate(ptr.cast::<T>()) }
}

/// A thread's registration with an HP++ [`Domain`].
pub struct Thread {
    inner: hp::Thread,
    domain: &'static Domain,
    /// Algorithm 3's thread-local `unlinkeds`.
    unlinkeds: Vec<UnlinkBatch>,
    /// Algorithm 5's `epoched_hps`: frontier protections awaiting a safe
    /// (fence-separated) revocation.
    epoched_hps: Vec<(u64, HazardPointer)>,
    unlink_count: usize,
    /// Buffer pools: `try_unlink` runs on every physical deletion, so its
    /// per-batch vectors are recycled instead of reallocated.
    spare_retired_vecs: Vec<Vec<Retired>>,
    spare_hp_vecs: Vec<Vec<HazardPointer>>,
}

impl Thread {
    pub(crate) fn new(domain: &'static Domain) -> Self {
        Self {
            inner: domain.hp_domain().register(),
            domain,
            unlinkeds: Vec::new(),
            epoched_hps: Vec::new(),
            unlink_count: 0,
            spare_retired_vecs: Vec::new(),
            spare_hp_vecs: Vec::new(),
        }
    }

    /// The domain this thread belongs to.
    pub fn domain(&self) -> &'static Domain {
        self.domain
    }

    /// Acquires a hazard pointer (cached slot if available).
    pub fn hazard_pointer(&mut self) -> HazardPointer {
        self.inner.hazard_pointer()
    }

    /// Returns a hazard pointer's slot to this thread's cache.
    pub fn recycle(&mut self, hp: HazardPointer) {
        self.inner.recycle(hp);
    }

    /// Plain HP retirement (hybrid use, §4.2): for nodes protected with the
    /// original over-approximating validation, no invalidation is needed.
    ///
    /// # Safety
    /// Same contract as [`hp::Thread::retire`].
    pub unsafe fn retire<T>(&mut self, ptr: *mut T) {
        self.inner.retire(ptr);
    }

    /// Algorithm 3's `TryUnlink`.
    ///
    /// 1. Protects every pointer in `frontier` (no validation needed — the
    ///    caller guarantees the frontier was decided before the unlink and
    ///    cannot change, Assumption 1).
    /// 2. Runs `do_unlink` (typically one CAS detaching a chain).
    /// 3. On success, schedules the detached nodes for deferred invalidation
    ///    and eventual reclamation; on failure, revokes the frontier
    ///    protections immediately.
    ///
    /// Returns whether the unlink succeeded.
    ///
    /// # Safety
    /// * `frontier` must contain every node reachable by one link from the
    ///   nodes `do_unlink` detaches that is not itself detached.
    /// * The detached nodes must be `Box`-allocated, detached exactly once,
    ///   with immutable links from before the unlink (Assumption 1).
    pub unsafe fn try_unlink<T: Invalidate>(
        &mut self,
        frontier: &[Shared<T>],
        do_unlink: impl FnOnce() -> Option<Unlinked<T>>,
    ) -> bool {
        let mut hps = self.spare_hp_vecs.pop().unwrap_or_default();
        for f in frontier {
            let hp = self.hazard_pointer();
            hp.protect_raw(f.as_raw());
            hps.push(hp);
        }

        match do_unlink() {
            Some(unlinked) => {
                counters::incr_garbage(unlinked.len() as u64);
                let mut nodes = self.spare_retired_vecs.pop().unwrap_or_default();
                unlinked.for_each(|s| nodes.push(unsafe { Retired::new(s.as_raw()) }));
                self.unlinkeds.push(UnlinkBatch {
                    nodes,
                    invalidate: invalidate_erased::<T>,
                    frontier_hps: hps,
                });
                self.unlink_count += 1;
                let (invalidate_period, reclaim_period) = periods();
                if self.unlink_count % reclaim_period == 0 {
                    self.reclaim();
                } else if self.unlink_count % invalidate_period == 0 {
                    self.do_invalidation();
                }
                true
            }
            None => {
                for hp in hps.drain(..) {
                    self.recycle(hp);
                }
                self.spare_hp_vecs.push(hps);
                false
            }
        }
    }

    /// Algorithm 5's `DoInvalidation`: flushes pending unlink batches by
    /// invalidating their nodes, then parks the batches' frontier
    /// protections in `epoched_hps`, stamped with the current fence epoch.
    /// Protections two epochs old are revoked for free — a heavy fence has
    /// provably passed between (Lemma A.2).
    pub fn do_invalidation(&mut self) {
        let batches = std::mem::take(&mut self.unlinkeds);
        let mut fresh_hps = Vec::new();
        for mut batch in batches {
            for node in &batch.nodes {
                unsafe { (batch.invalidate)(node.ptr()) };
            }
            fresh_hps.append(&mut batch.frontier_hps);
            self.spare_hp_vecs.push(batch.frontier_hps);
            for node in batch.nodes.drain(..) {
                self.inner.push_retired(node);
            }
            self.spare_retired_vecs.push(batch.nodes);
        }

        let epoch = self.domain.read_epoch();
        let mut kept = Vec::with_capacity(self.epoched_hps.len() + fresh_hps.len());
        for (e, hp) in std::mem::take(&mut self.epoched_hps) {
            if e + 2 <= epoch {
                self.inner.recycle(hp);
            } else {
                kept.push((e, hp));
            }
        }
        kept.extend(fresh_hps.into_iter().map(|hp| (epoch, hp)));
        self.epoched_hps = kept;
    }

    /// Algorithm 5's `Reclaim`: flush invalidations, take the retired set,
    /// issue the epoched heavy fence, revoke all parked frontier
    /// protections, then scan hazards and free the unprotected nodes.
    pub fn reclaim(&mut self) {
        self.do_invalidation();
        let epoched = std::mem::take(&mut self.epoched_hps);
        let domain = self.domain;
        self.inner.reclaim_with_prefence(|| {
            domain.fence_epoch_step();
            for (_, hp) in &epoched {
                hp.reset();
            }
        });
        for (_, hp) in epoched {
            self.inner.recycle(hp);
        }
    }

    /// Number of nodes unlinked/retired by this thread and not yet freed.
    pub fn garbage_count(&self) -> usize {
        self.unlinkeds.iter().map(|b| b.nodes.len()).sum::<usize>() + self.inner.retired_count()
    }
}

impl Drop for Thread {
    fn drop(&mut self) {
        self.reclaim();
        // Anything still protected by other threads is donated to the
        // domain's orphan list by the inner thread's Drop.
    }
}
