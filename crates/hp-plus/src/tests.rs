//! Unit tests for HP++ on a miniature Harris-style chain.

use std::sync::atomic::{AtomicUsize, Ordering::*};

use smr_common::tagged::{TAG_DELETED, TAG_INVALIDATED};
use smr_common::{Atomic, Shared};

use crate::{try_protect, Domain, HazardPointer, Invalidate, Unlinked};

static DROPS: AtomicUsize = AtomicUsize::new(0);

struct Node {
    next: Atomic<Node>,
    value: u64,
}

impl Node {
    fn new(value: u64) -> Self {
        Self {
            next: Atomic::null(),
            value,
        }
    }

    fn is_invalid(&self) -> bool {
        self.next.load(Acquire).tag() & TAG_INVALIDATED != 0
    }
}

impl Drop for Node {
    fn drop(&mut self) {
        self.value = u64::MAX; // poison
        DROPS.fetch_add(1, Relaxed);
    }
}

unsafe impl Invalidate for Node {
    unsafe fn invalidate(ptr: *mut Self) {
        let node = unsafe { &*ptr };
        let cur = node.next.load(Relaxed);
        node.next.store(cur.with_tag(cur.tag() | TAG_INVALIDATED), Release);
    }
}

fn new_domain() -> &'static Domain {
    Box::leak(Box::new(Domain::new()))
}

/// Builds `head -> a -> b -> c` and returns (head, a, b, c).
fn chain3() -> (Atomic<Node>, Shared<Node>, Shared<Node>, Shared<Node>) {
    let c = Shared::from_owned(Node::new(3));
    let b = Shared::from_owned(Node::new(2));
    let a = Shared::from_owned(Node::new(1));
    unsafe {
        a.deref().next.store(b, Release);
        b.deref().next.store(c, Release);
    }
    (Atomic::from(a), a, b, c)
}

#[test]
fn protect_succeeds_through_logically_deleted_source() {
    // The defining difference from HP: a *logically deleted* (tagged) but
    // not invalidated source does not fail protection.
    let d = new_domain();
    let mut t = d.register();
    let (head, a, b, _c) = chain3();

    // Logically delete `a` (tag its next pointer).
    unsafe { a.deref() }.next.fetch_or_tag(TAG_DELETED, AcqRel);

    let hp = t.hazard_pointer();
    let mut ptr = unsafe { a.deref() }.next.load(Acquire).with_tag(0);
    assert!(ptr.ptr_eq(b));
    let ok = try_protect(&hp, &mut ptr, unsafe { &a.deref().next }, || unsafe {
        a.deref().is_invalid()
    });
    assert!(ok, "logical deletion alone must not fail HP++ protection");
    assert!(ptr.ptr_eq(b));

    // Cleanup.
    drop(hp);
    unsafe {
        let _ = head;
        a.drop_owned();
        b.drop_owned();
        _c.drop_owned();
    }
}

#[test]
fn protect_fails_on_invalidated_source() {
    let d = new_domain();
    let mut t = d.register();
    let (_head, a, b, c) = chain3();

    unsafe { Node::invalidate(a.as_raw()) };

    let hp = t.hazard_pointer();
    let mut ptr = b;
    let ok = try_protect(&hp, &mut ptr, unsafe { &a.deref().next }, || unsafe {
        a.deref().is_invalid()
    });
    assert!(!ok, "invalidated source must fail protection");
    assert_eq!(hp.protected_word(), 0, "failed protection must be revoked");

    drop(hp);
    unsafe {
        a.drop_owned();
        b.drop_owned();
        c.drop_owned();
    }
}

#[test]
fn protect_follows_changed_link() {
    // If the source link moved to a new target, try_protect retargets and
    // succeeds with the new value.
    let d = new_domain();
    let mut t = d.register();
    let (_head, a, b, c) = chain3();

    let hp = t.hazard_pointer();
    let mut ptr = b;
    // Concurrently, a's next is swung from b to c (chain unlink of b).
    unsafe { a.deref() }.next.store(c, Release);
    let ok = try_protect(&hp, &mut ptr, unsafe { &a.deref().next }, || unsafe {
        a.deref().is_invalid()
    });
    assert!(ok);
    assert!(ptr.ptr_eq(c), "protection must retarget to the new link value");

    drop(hp);
    unsafe {
        a.drop_owned();
        b.drop_owned();
        c.drop_owned();
    }
}

#[test]
fn unlink_invalidates_and_frees_chain() {
    let before = DROPS.load(Relaxed);
    let d = new_domain();
    let mut t = d.register();
    // head -> a -> b -> c; unlink the chain [a, b] with frontier [c].
    let (head, a, b, c) = chain3();

    let ok = unsafe {
        t.try_unlink(&[c], || {
            match head.compare_exchange(a, c, AcqRel, Acquire) {
                Ok(_) => Some(Unlinked::new(vec![a, b])),
                Err(_) => None,
            }
        })
    };
    assert!(ok);
    assert_eq!(t.garbage_count(), 2);

    // Flush: invalidation then reclamation.
    t.do_invalidation();
    assert!(unsafe { a.deref() }.is_invalid());
    assert!(unsafe { b.deref() }.is_invalid());
    t.reclaim();
    assert_eq!(DROPS.load(Relaxed), before + 2, "a and b must be freed");
    assert_eq!(t.garbage_count(), 0);

    unsafe { c.drop_owned() };
}

#[test]
fn failed_unlink_releases_frontier_protection() {
    let d = new_domain();
    let mut t = d.register();
    let (head, a, b, c) = chain3();

    let ok = unsafe {
        t.try_unlink(&[c], || {
            // Simulate losing the CAS race.
            None::<Unlinked<Node>>
        })
    };
    assert!(!ok);
    assert_eq!(t.garbage_count(), 0);
    assert!(
        d.hp_domain().protected_words().is_empty(),
        "frontier protection must be revoked on failure"
    );

    let _ = head;
    unsafe {
        a.drop_owned();
        b.drop_owned();
        c.drop_owned();
    }
}

#[test]
fn frontier_protection_blocks_reclamation_of_frontier() {
    // Scenario 2 of Fig. 6: after T2 unlinks [a, b] with frontier [c],
    // another thread retires c. c must survive until T2's invalidation
    // completes (its frontier protection is revoked only after a fence).
    let before = DROPS.load(Relaxed);
    let d = new_domain();
    let mut t2 = d.register(); // unlinker
    let mut t3 = d.register(); // deleter of the frontier node

    let (head, a, b, c) = chain3();
    let ok = unsafe {
        t2.try_unlink(&[c], || match head.compare_exchange(a, c, AcqRel, Acquire) {
            Ok(_) => Some(Unlinked::new(vec![a, b])),
            Err(_) => None,
        })
    };
    assert!(ok);

    // T3 now unlinks and retires c (frontier of t2's unlink).
    let ok2 = unsafe {
        t3.try_unlink(&[], || {
            match head.compare_exchange(c, Shared::null(), AcqRel, Acquire) {
                Ok(_) => Some(Unlinked::single(c)),
                Err(_) => None,
            }
        })
    };
    assert!(ok2);

    // T3 flushes everything it can: c is still protected by t2's frontier
    // hazard pointer, so it must survive.
    t3.do_invalidation();
    t3.reclaim();
    assert_eq!(unsafe { c.deref() }.value, 3, "frontier node freed too early");

    // Once t2 flushes (invalidating a,b and revoking the frontier hp after
    // a fence), everything can go.
    t2.reclaim();
    t3.reclaim();
    assert_eq!(DROPS.load(Relaxed), before + 3);
}

#[test]
fn epoched_hps_are_revoked_lazily() {
    let d = new_domain();
    let mut t = d.register();
    let (head, a, b, c) = chain3();

    let ok = unsafe {
        t.try_unlink(&[c], || match head.compare_exchange(a, c, AcqRel, Acquire) {
            Ok(_) => Some(Unlinked::new(vec![a, b])),
            Err(_) => None,
        })
    };
    assert!(ok);

    t.do_invalidation();
    // Frontier protection still parked (epoch hasn't advanced by 2).
    assert!(
        !d.hp_domain().protected_words().is_empty(),
        "frontier protection parks in epoched_hps"
    );

    // Two fence-epoch steps later, another do_invalidation revokes it.
    d.fence_epoch_step();
    d.fence_epoch_step();
    t.do_invalidation();
    assert!(
        d.hp_domain().protected_words().is_empty(),
        "stale epoched hps must be revoked after two epochs"
    );

    t.reclaim();
    unsafe { c.drop_owned() };
}

#[test]
fn long_chain_unlinks_keep_spill_pools_bounded() {
    // Chains longer than the two inline slots spill to pooled vectors; the
    // pools must recycle them (so long unlinks stop allocating) while never
    // growing beyond their cap.
    let d = new_domain();
    let mut t = d.register();
    for _ in 0..40 {
        // head -> n0 -> … -> n5; unlink [n0, n1, n2] (spills the node
        // buffer) passing frontier [n3, n4, n5] (spills the hp buffer).
        let nodes: Vec<Shared<Node>> = (0..6)
            .map(|i| Shared::from_owned(Node::new(10 + i as u64)))
            .collect();
        for w in nodes.windows(2) {
            unsafe { w[0].deref() }.next.store(w[1], Release);
        }
        let head = Atomic::from(nodes[0]);
        let frontier = [nodes[3], nodes[4], nodes[5]];
        let ok = unsafe {
            t.try_unlink(&frontier, || {
                match head.compare_exchange(nodes[0], nodes[3], AcqRel, Acquire) {
                    Ok(_) => Some(Unlinked::new(nodes[..3].to_vec())),
                    Err(_) => None,
                }
            })
        };
        assert!(ok);
        t.reclaim();
        let (r, h) = t.spare_pool_sizes();
        assert!(r <= 8 && h <= 8, "spill pools ballooned: ({r}, {h})");
        for n in &nodes[3..] {
            unsafe { n.drop_owned() };
        }
    }
    let (r, h) = t.spare_pool_sizes();
    assert!(r >= 1 && h >= 1, "spill vectors should be recycled: ({r}, {h})");
}

#[test]
fn pair_unlink_is_inline() {
    // The Pair variant (chain-node + pendant, NMTree-style) uses only the
    // inline slots: no spill vector is ever taken or pooled.
    let before = DROPS.load(Relaxed);
    let d = new_domain();
    let mut t = d.register();
    let (head, a, b, c) = chain3();

    let ok = unsafe {
        t.try_unlink(&[c], || match head.compare_exchange(a, c, AcqRel, Acquire) {
            Ok(_) => Some(Unlinked::pair(a, b)),
            Err(_) => None,
        })
    };
    assert!(ok);
    assert_eq!(t.garbage_count(), 2);
    t.reclaim();
    assert_eq!(DROPS.load(Relaxed), before + 2);
    assert_eq!(t.spare_pool_sizes(), (0, 0), "pair path must not spill");

    unsafe { c.drop_owned() };
}

#[test]
fn concurrent_traverse_vs_unlink_stress_no_uaf() {
    // Readers hand-over-hand traverse a 3-node chain with try_protect while
    // an unlinker repeatedly detaches the middle chain and reinserts fresh
    // nodes. Node drop poisons values, so any use-after-free trips asserts.
    use std::sync::atomic::AtomicBool;
    use std::sync::Arc;

    let d = new_domain();
    let head: Arc<Atomic<Node>> = Arc::new(Atomic::null());
    // head -> x(1) -> y(2) -> z(3) -> null; unlinker detaches [x, y] with
    // frontier [z] and pushes two fresh nodes back in front.
    {
        let (h, _a, _b, _c) = chain3();
        let first = h.load(Relaxed);
        head.store(first, Release);
        let _ = h; // Atomic has no Drop; the nodes are reclaimed via unlinks
    }

    let stop = Arc::new(AtomicBool::new(false));
    let mut threads = Vec::new();

    for _ in 0..3 {
        let head = head.clone();
        let stop = stop.clone();
        threads.push(std::thread::spawn(move || {
            let mut t = d.register();
            let mut hp_prev = t.hazard_pointer();
            let mut hp_cur = t.hazard_pointer();
            while !stop.load(Relaxed) {
                // Protect the first node from head (never invalid source).
                let mut cur = head.load(Acquire).with_tag(0);
                if !try_protect(&hp_cur, &mut cur, &head, || false) {
                    continue;
                }
                let mut prev;
                let mut steps = 0;
                while !cur.is_null() && steps < 16 {
                    let node = unsafe { cur.deref() };
                    let v = node.value;
                    assert!((1..=3).contains(&v), "use-after-free: read {v}");
                    let mut next = node.next.load(Acquire).with_tag(0);
                    prev = cur;
                    HazardPointer::swap(&mut hp_prev, &mut hp_cur);
                    let p = prev;
                    if !try_protect(&hp_cur, &mut next, &node.next, || unsafe {
                        p.deref().is_invalid()
                    }) {
                        break; // source invalidated: restart
                    }
                    cur = next;
                    steps += 1;
                }
                hp_cur.reset();
                hp_prev.reset();
            }
            t.recycle(hp_prev);
            t.recycle(hp_cur);
        }));
    }

    {
        let head = head.clone();
        let stop = stop.clone();
        threads.push(std::thread::spawn(move || {
            let mut t = d.register();
            for _ in 0..20_000 {
                let x = head.load(Acquire).with_tag(0);
                let y = unsafe { x.deref() }.next.load(Acquire).with_tag(0);
                let z = unsafe { y.deref() }.next.load(Acquire).with_tag(0);
                // Mark x and y logically deleted (they stop changing now).
                unsafe { x.deref() }.next.fetch_or_tag(TAG_DELETED, AcqRel);
                unsafe { y.deref() }.next.fetch_or_tag(TAG_DELETED, AcqRel);
                let ok = unsafe {
                    t.try_unlink(&[z], || {
                        match head.compare_exchange(x, z, AcqRel, Acquire) {
                            Ok(_) => Some(Unlinked::new(vec![x, y])),
                            Err(_) => None,
                        }
                    })
                };
                assert!(ok, "single unlinker must win its own CAS");
                // Reinsert two fresh nodes in front of z.
                let ny = Shared::from_owned(Node::new(2));
                unsafe { ny.deref() }.next.store(z, Release);
                let nx = Shared::from_owned(Node::new(1));
                unsafe { nx.deref() }.next.store(ny, Release);
                head.store(nx, Release);
            }
            stop.store(true, Relaxed);
        }));
    }

    for th in threads {
        th.join().unwrap();
    }
}
