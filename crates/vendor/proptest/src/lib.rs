//! Offline stand-in for the `proptest` crate.
//!
//! Implements the API subset this workspace's property tests use —
//! `Strategy` + `prop_map`, integer-range and tuple strategies, `any`,
//! `prop_oneof!`, `proptest::collection::vec`, `ProptestConfig`, and the
//! `proptest!` / `prop_assert*` macros — as plain randomized testing. No
//! shrinking and no failure persistence: a failing case panics with the
//! seed-derived case number, which is reproducible because the per-test
//! generator is seeded from the test body's name.

use std::ops::{Range, RangeInclusive};

/// Configuration accepted by `#![proptest_config(...)]`.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of random cases to run per test.
    pub cases: u32,
    /// Maximum shrink iterations (accepted for API compatibility; this
    /// stand-in does not shrink).
    pub max_shrink_iters: u32,
    /// Maximum rejected cases (accepted for API compatibility; this
    /// stand-in never rejects).
    pub max_global_rejects: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self {
            cases: 256,
            max_shrink_iters: 1024,
            max_global_rejects: 1024,
        }
    }
}

impl ProptestConfig {
    /// Shorthand constructor mirroring `ProptestConfig::with_cases`.
    pub fn with_cases(cases: u32) -> Self {
        Self {
            cases,
            ..Self::default()
        }
    }
}

/// The randomness source threaded through strategies (SplitMix64).
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates a generator from a seed.
    pub fn new(seed: u64) -> Self {
        Self {
            state: seed ^ 0x9E3779B97F4A7C15,
        }
    }

    /// The next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        ((self.next_u64() as u128 * n as u128) >> 64) as u64
    }
}

/// A generator of test inputs, mirroring `proptest::strategy::Strategy`.
///
/// Object-safe so `prop_oneof!` can erase heterogeneous arms.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// The strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start.wrapping_add(rng.below(span) as $t)
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as u64).wrapping_sub(start as u64).wrapping_add(1);
                if span == 0 {
                    return rng.next_u64() as $t;
                }
                start.wrapping_add(rng.below(span) as $t)
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_tuple_strategy {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}
impl_tuple_strategy! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
}

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// Generates an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// The strategy returned by [`any`].
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Mirrors `proptest::prelude::any`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

/// A boxed, type-erased strategy (what `prop_oneof!` arms become).
pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (**self).generate(rng)
    }
}

/// Uniform choice between erased strategies; built by `prop_oneof!`.
pub struct Union<T> {
    arms: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// Builds a union from its arms. Panics if `arms` is empty.
    pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Self { arms }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let i = rng.below(self.arms.len() as u64) as usize;
        self.arms[i].generate(rng)
    }
}

/// Collection strategies, mirroring `proptest::collection`.
pub mod collection {
    use super::{Strategy, TestRng};

    /// The strategy returned by [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        len: std::ops::Range<usize>,
    }

    /// Generates `Vec`s whose length is drawn from `len`.
    pub fn vec<S: Strategy>(element: S, len: std::ops::Range<usize>) -> VecStrategy<S> {
        assert!(len.start < len.end, "empty length range");
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let n = self.len.clone().generate(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Everything the tests import, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_oneof, proptest, Arbitrary, BoxedStrategy,
        ProptestConfig, Strategy,
    };
}

#[doc(hidden)]
pub fn seed_for(test_name: &str) -> u64 {
    // FNV-1a over the test name: stable across runs, distinct per test.
    let mut h: u64 = 0xCBF29CE484222325;
    for b in test_name.bytes() {
        h = (h ^ b as u64).wrapping_mul(0x100000001B3);
    }
    h
}

/// Mirrors `prop_oneof!`: uniform choice between strategies of one value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::Union::new(vec![
            $(Box::new($arm) as $crate::BoxedStrategy<_>,)+
        ])
    };
}

/// Mirrors `prop_assert!`.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Mirrors `prop_assert_eq!`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Mirrors the `proptest!` test-block macro: each contained function becomes
/// a `#[test]` that runs `cases` random instantiations of its inputs.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $config;
                let mut rng = $crate::TestRng::new($crate::seed_for(concat!(
                    module_path!(), "::", stringify!($name)
                )));
                for case in 0..config.cases {
                    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                        $(let $arg = $crate::Strategy::generate(&$strategy, &mut rng);)+
                        $body
                    }));
                    if let Err(e) = result {
                        eprintln!(
                            "proptest case {}/{} of {} failed",
                            case + 1,
                            config.cases,
                            stringify!($name)
                        );
                        std::panic::resume_unwind(e);
                    }
                }
            }
        )*
    };
    (
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block
        )*
    ) => {
        $crate::proptest! {
            #![proptest_config($crate::ProptestConfig::default())]
            $(
                $(#[$meta])*
                fn $name($($arg in $strategy),+) $body
            )*
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[derive(Debug, PartialEq)]
    enum Tri {
        A(u64),
        B(u64),
    }

    #[test]
    fn ranges_and_maps_generate_in_bounds() {
        let mut rng = crate::TestRng::new(1);
        let s = (0u64..10).prop_map(Tri::A);
        for _ in 0..100 {
            match s.generate(&mut rng) {
                Tri::A(x) => assert!(x < 10),
                other => panic!("unexpected {other:?}"),
            }
        }
    }

    #[test]
    fn oneof_hits_every_arm() {
        let mut rng = crate::TestRng::new(2);
        let s = prop_oneof![
            (0u64..4).prop_map(Tri::A),
            (0u64..4).prop_map(Tri::B),
        ];
        let (mut a, mut b) = (0, 0);
        for _ in 0..200 {
            match s.generate(&mut rng) {
                Tri::A(_) => a += 1,
                Tri::B(_) => b += 1,
            }
        }
        assert!(a > 0 && b > 0);
    }

    #[test]
    fn collection_vec_respects_length() {
        let mut rng = crate::TestRng::new(3);
        let s = crate::collection::vec(0u64..5, 1..9);
        for _ in 0..100 {
            let v = s.generate(&mut rng);
            assert!((1..9).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 5));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 32, ..ProptestConfig::default() })]

        /// The macro plumbing itself: multiple args, doc attrs, tuples.
        #[test]
        fn macro_roundtrip(x in 0u64..100, (y, z) in (0u32..10, any::<bool>())) {
            prop_assert!(x < 100);
            prop_assert_eq!(y < 10, true);
            let _ = z;
        }
    }
}
