//! Offline stand-in for the `criterion` crate.
//!
//! Implements the API subset this workspace's benches use — `Criterion`,
//! `benchmark_group`, `Bencher::iter` / `iter_custom`, and the
//! `criterion_group!` / `criterion_main!` macros — over a simple
//! calibrate-then-sample timing loop. No statistics machinery, HTML
//! reports, or CLI filtering: each benchmark prints its median and min
//! per-iteration time. Swapping the real crate back in requires no source
//! changes in the benches.

use std::time::{Duration, Instant};

/// Re-export for benches that use `criterion::black_box`.
pub use std::hint::black_box;

/// Top-level benchmark driver, mirroring `criterion::Criterion`.
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Self {
            sample_size: 20,
            measurement_time: Duration::from_millis(500),
            warm_up_time: Duration::from_millis(100),
        }
    }
}

impl Criterion {
    /// Sets how many timed samples each benchmark collects.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Sets the total time budget per benchmark.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    /// Sets how long to exercise the benchmark before timing starts.
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up_time = d;
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            sample_size: self.sample_size,
            measurement_time: self.measurement_time,
            warm_up_time: self.warm_up_time,
            samples_ns: Vec::new(),
        };
        f(&mut b);
        b.report(name);
        self
    }

    /// Opens a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            parent: self,
            name: name.to_string(),
            sample_size: None,
            measurement_time: None,
        }
    }
}

/// A group of related benchmarks with locally overridden settings.
pub struct BenchmarkGroup<'a> {
    parent: &'a mut Criterion,
    name: String,
    sample_size: Option<usize>,
    measurement_time: Option<Duration>,
}

impl BenchmarkGroup<'_> {
    /// Overrides the sample count for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n.max(1));
        self
    }

    /// Overrides the time budget for this group.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = Some(d);
        self
    }

    /// Runs one benchmark inside the group.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            sample_size: self.sample_size.unwrap_or(self.parent.sample_size),
            measurement_time: self
                .measurement_time
                .unwrap_or(self.parent.measurement_time),
            warm_up_time: self.parent.warm_up_time,
            samples_ns: Vec::new(),
        };
        f(&mut b);
        b.report(&format!("{}/{}", self.name, name));
        self
    }

    /// Finishes the group (report-flush point in real criterion; no-op here).
    pub fn finish(self) {}
}

/// The per-benchmark measurement context handed to bench closures.
pub struct Bencher {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
    samples_ns: Vec<f64>,
}

impl Bencher {
    /// Times `f`, amortizing over batches sized so each sample fits the
    /// per-sample slice of the time budget.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm up: exercise caches/branch predictors before timing.
        let warm_until = Instant::now() + self.warm_up_time;
        while Instant::now() < warm_until {
            black_box(f());
        }
        // Calibrate: grow the batch until it runs long enough to time.
        let mut batch: u64 = 1;
        let per_sample = self.measurement_time.as_secs_f64() / self.sample_size as f64;
        loop {
            let t0 = Instant::now();
            for _ in 0..batch {
                black_box(f());
            }
            let dt = t0.elapsed().as_secs_f64();
            if dt >= per_sample.min(0.001) || batch >= 1 << 24 {
                break;
            }
            batch = if dt <= 0.0 {
                batch * 16
            } else {
                (batch as f64 * (per_sample.min(0.001) / dt).clamp(1.5, 16.0)) as u64
            }
            .max(batch + 1);
        }
        for _ in 0..self.sample_size {
            let t0 = Instant::now();
            for _ in 0..batch {
                black_box(f());
            }
            self.samples_ns
                .push(t0.elapsed().as_nanos() as f64 / batch as f64);
        }
    }

    /// Times a closure that runs `iters` iterations itself and returns the
    /// elapsed wall time (used for multi-threaded batches).
    pub fn iter_custom<F: FnMut(u64) -> Duration>(&mut self, mut f: F) {
        let mut iters: u64 = 1;
        let per_sample = self.measurement_time.as_secs_f64() / self.sample_size as f64;
        loop {
            let dt = f(iters).as_secs_f64();
            if dt >= per_sample.min(0.001) || iters >= 1 << 24 {
                break;
            }
            iters = if dt <= 0.0 {
                iters * 16
            } else {
                (iters as f64 * (per_sample.min(0.001) / dt).clamp(1.5, 16.0)) as u64
            }
            .max(iters + 1);
        }
        for _ in 0..self.sample_size {
            self.samples_ns
                .push(f(iters).as_nanos() as f64 / iters as f64);
        }
    }

    fn report(&mut self, name: &str) {
        if self.samples_ns.is_empty() {
            println!("{name:<40} (no samples)");
            return;
        }
        self.samples_ns
            .sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
        let median = self.samples_ns[self.samples_ns.len() / 2];
        let min = self.samples_ns[0];
        println!("{name:<40} time: [median {median:>12.1} ns/iter, min {min:>12.1} ns/iter]");
    }
}

/// Mirrors `criterion_group!`: bundles target functions into one runner.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Mirrors `criterion_main!`: emits `main` calling each group runner.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn iter_collects_samples() {
        let mut c = Criterion::default()
            .sample_size(3)
            .measurement_time(Duration::from_millis(10));
        let mut ran = 0u64;
        c.bench_function("noop", |b| b.iter(|| ran += 1));
        assert!(ran > 0);
    }

    #[test]
    fn iter_custom_collects_samples() {
        let mut c = Criterion::default()
            .sample_size(2)
            .measurement_time(Duration::from_millis(5));
        c.bench_function("custom", |b| {
            b.iter_custom(|iters| {
                let t0 = Instant::now();
                for i in 0..iters {
                    black_box(i);
                }
                t0.elapsed()
            })
        });
    }

    #[test]
    fn group_overrides_apply() {
        let mut c = Criterion::default().measurement_time(Duration::from_millis(5));
        let mut group = c.benchmark_group("g");
        group.sample_size(2);
        group.bench_function("one", |b| b.iter(|| black_box(1 + 1)));
        group.finish();
    }
}
