//! Offline stand-in for the `libc` crate.
//!
//! Declares only what this workspace needs: the C integer types and the
//! variadic `syscall(2)` entry point (resolved against the system C library
//! that `std` already links), plus the `SYS_membarrier` number for the
//! architectures we build on. Everything matches the real `libc` crate's
//! definitions, so swapping the real crate back in is a no-op.

#![allow(non_camel_case_types, non_upper_case_globals)]

/// C `int`.
pub type c_int = i32;
/// C `long` (LP64 on every Linux target we build).
pub type c_long = i64;

/// `membarrier(2)` syscall number.
#[cfg(all(target_os = "linux", target_arch = "x86_64"))]
pub const SYS_membarrier: c_long = 324;
/// `membarrier(2)` syscall number.
#[cfg(all(target_os = "linux", target_arch = "aarch64"))]
pub const SYS_membarrier: c_long = 283;
/// `membarrier(2)` syscall number.
#[cfg(all(target_os = "linux", target_arch = "riscv64"))]
pub const SYS_membarrier: c_long = 283;

#[cfg(target_os = "linux")]
extern "C" {
    /// The C library's variadic `syscall(2)` wrapper.
    pub fn syscall(num: c_long, ...) -> c_long;
}

#[cfg(all(test, target_os = "linux"))]
mod tests {
    use super::*;

    #[test]
    fn membarrier_query_does_not_crash() {
        // CMD_QUERY (0) either reports a support mask (>= 0) or ENOSYS (-1);
        // both are fine — we only check the call plumbing works.
        let r = unsafe { syscall(SYS_membarrier, 0 as c_int, 0 as c_int) };
        assert!(r >= -1);
    }
}
