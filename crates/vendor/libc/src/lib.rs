//! Offline stand-in for the `libc` crate.
//!
//! Declares only what this workspace needs: the C integer types, the
//! variadic `syscall(2)` entry point (resolved against the system C library
//! that `std` already links), the `SYS_membarrier` number for the
//! architectures we build on, and the `sched_setaffinity(2)` surface
//! (`cpu_set_t` + `CPU_*` helpers) used by the benchmark harness for thread
//! pinning. Everything matches the real `libc` crate's definitions, so
//! swapping the real crate back in is a no-op.

#![allow(non_camel_case_types, non_upper_case_globals, non_snake_case)]

/// C `int`.
pub type c_int = i32;
/// C `long` (LP64 on every Linux target we build).
pub type c_long = i64;
/// POSIX process identifier.
pub type pid_t = i32;
/// C `size_t`.
pub type size_t = usize;

/// `membarrier(2)` syscall number.
#[cfg(all(target_os = "linux", target_arch = "x86_64"))]
pub const SYS_membarrier: c_long = 324;
/// `membarrier(2)` syscall number.
#[cfg(all(target_os = "linux", target_arch = "aarch64"))]
pub const SYS_membarrier: c_long = 283;
/// `membarrier(2)` syscall number.
#[cfg(all(target_os = "linux", target_arch = "riscv64"))]
pub const SYS_membarrier: c_long = 283;

/// The CPU-affinity bit set of `sched_setaffinity(2)` — 1024 bits, matching
/// glibc's `cpu_set_t` layout exactly.
#[cfg(target_os = "linux")]
#[repr(C)]
#[derive(Clone, Copy, Debug)]
pub struct cpu_set_t {
    bits: [u64; 16],
}

/// Clears every CPU in `cpuset` (glibc's `CPU_ZERO` macro).
#[cfg(target_os = "linux")]
#[inline]
pub fn CPU_ZERO(cpuset: &mut cpu_set_t) {
    cpuset.bits = [0; 16];
}

/// Adds `cpu` to `cpuset` (glibc's `CPU_SET` macro). Out-of-range CPUs are
/// ignored, like the real macro's silent truncation.
#[cfg(target_os = "linux")]
#[inline]
pub fn CPU_SET(cpu: usize, cpuset: &mut cpu_set_t) {
    if cpu < 1024 {
        cpuset.bits[cpu / 64] |= 1 << (cpu % 64);
    }
}

/// Tests whether `cpu` is in `cpuset` (glibc's `CPU_ISSET` macro).
#[cfg(target_os = "linux")]
#[inline]
pub fn CPU_ISSET(cpu: usize, cpuset: &cpu_set_t) -> bool {
    cpu < 1024 && cpuset.bits[cpu / 64] & (1 << (cpu % 64)) != 0
}

#[cfg(target_os = "linux")]
extern "C" {
    /// The C library's variadic `syscall(2)` wrapper.
    pub fn syscall(num: c_long, ...) -> c_long;

    /// Pins thread `pid` (0 = calling thread) to the CPUs in `cpuset`.
    pub fn sched_setaffinity(pid: pid_t, cpusetsize: size_t, cpuset: *const cpu_set_t) -> c_int;

    /// Reads the affinity mask of thread `pid` (0 = calling thread).
    pub fn sched_getaffinity(pid: pid_t, cpusetsize: size_t, cpuset: *mut cpu_set_t) -> c_int;
}

#[cfg(all(test, target_os = "linux"))]
mod tests {
    use super::*;

    #[test]
    fn membarrier_query_does_not_crash() {
        // CMD_QUERY (0) either reports a support mask (>= 0) or ENOSYS (-1);
        // both are fine — we only check the call plumbing works.
        let r = unsafe { syscall(SYS_membarrier, 0 as c_int, 0 as c_int) };
        assert!(r >= -1);
    }

    #[test]
    fn cpu_set_bit_algebra() {
        let mut set: cpu_set_t = unsafe { std::mem::zeroed() };
        CPU_ZERO(&mut set);
        assert!(!CPU_ISSET(0, &set));
        CPU_SET(0, &mut set);
        CPU_SET(63, &mut set);
        CPU_SET(64, &mut set);
        CPU_SET(5000, &mut set); // out of range: ignored
        assert!(CPU_ISSET(0, &set) && CPU_ISSET(63, &set) && CPU_ISSET(64, &set));
        assert!(!CPU_ISSET(1, &set) && !CPU_ISSET(5000, &set));
        assert_eq!(std::mem::size_of::<cpu_set_t>(), 128, "glibc layout");
    }

    #[test]
    fn setaffinity_roundtrip_on_current_mask() {
        // Re-applying the current mask must succeed (pure plumbing check —
        // does not change the schedulable set).
        let mut set: cpu_set_t = unsafe { std::mem::zeroed() };
        let got = unsafe { sched_getaffinity(0, std::mem::size_of::<cpu_set_t>(), &mut set) };
        assert_eq!(got, 0, "sched_getaffinity failed");
        let put = unsafe { sched_setaffinity(0, std::mem::size_of::<cpu_set_t>(), &set) };
        assert_eq!(put, 0, "sched_setaffinity failed");
    }
}
