//! Offline stand-in for the `rand` crate (0.8 API subset).
//!
//! Provides `rngs::SmallRng` (xoshiro256++ seeded via SplitMix64, the same
//! family the real `small_rng` feature uses) and the `Rng` / `SeedableRng`
//! trait surface this workspace calls: `gen`, `gen_range` over integer
//! ranges, `seed_from_u64`, and `from_entropy`. Distributions are uniform
//! via Lemire-style rejection-free mapping (widening multiply), which is
//! statistically fine for test traces and benchmark key streams.

/// A source of random 64-bit words.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Seedable construction, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Deterministically derives a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;

    /// A generator seeded from ambient entropy (time + ASLR).
    fn from_entropy() -> Self {
        let t = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_nanos() as u64)
            .unwrap_or(0x9E3779B97F4A7C15);
        let stack_probe = &t as *const _ as u64;
        Self::seed_from_u64(t ^ stack_probe.rotate_left(32))
    }
}

/// Types producible by [`Rng::gen`].
pub trait Standard: Sized {
    /// Samples a uniformly random value.
    fn sample(rng: &mut dyn RngCore) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            #[inline]
            fn sample(rng: &mut dyn RngCore) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    #[inline]
    fn sample(rng: &mut dyn RngCore) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Integer types drawable by [`Rng::gen_range`] (mirrors
/// `rand::distributions::uniform::SampleUniform` closely enough for
/// inference: one blanket `SampleRange` impl per range shape keeps
/// integer-literal unification working).
pub trait SampleUniform: Copy + PartialOrd {
    /// Uniform draw from the half-open range `[start, end)`.
    fn sample_half_open(rng: &mut dyn RngCore, start: Self, end: Self) -> Self;
    /// Uniform draw from the closed range `[start, end]`.
    fn sample_inclusive(rng: &mut dyn RngCore, start: Self, end: Self) -> Self;
}

#[inline]
fn uniform_below(rng: &mut dyn RngCore, n: u64) -> u64 {
    // Widening-multiply map of a 64-bit draw onto [0, n); bias is
    // negligible (< 2^-32 for the ranges used here).
    debug_assert!(n > 0);
    ((rng.next_u64() as u128 * n as u128) >> 64) as u64
}

macro_rules! impl_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            #[inline]
            fn sample_half_open(rng: &mut dyn RngCore, start: Self, end: Self) -> Self {
                assert!(start < end, "cannot sample empty range");
                let span = (end as u64).wrapping_sub(start as u64);
                start.wrapping_add(uniform_below(rng, span) as $t)
            }
            #[inline]
            fn sample_inclusive(rng: &mut dyn RngCore, start: Self, end: Self) -> Self {
                assert!(start <= end, "cannot sample empty range");
                let span = (end as u64).wrapping_sub(start as u64).wrapping_add(1);
                if span == 0 {
                    // Full 64-bit domain.
                    return rng.next_u64() as $t;
                }
                start.wrapping_add(uniform_below(rng, span) as $t)
            }
        }
    )*};
}
impl_sample_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Ranges samplable by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws a uniform value from the range. Panics if the range is empty.
    fn sample_from(self, rng: &mut dyn RngCore) -> T;
}

impl<T: SampleUniform> SampleRange<T> for std::ops::Range<T> {
    #[inline]
    fn sample_from(self, rng: &mut dyn RngCore) -> T {
        T::sample_half_open(rng, self.start, self.end)
    }
}

impl<T: SampleUniform> SampleRange<T> for std::ops::RangeInclusive<T> {
    #[inline]
    fn sample_from(self, rng: &mut dyn RngCore) -> T {
        T::sample_inclusive(rng, *self.start(), *self.end())
    }
}

/// The user-facing sampling interface, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// A uniformly random value of `T`.
    #[inline]
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// A uniform draw from `range`.
    #[inline]
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// `true` with probability `p`.
    #[inline]
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64) < p
    }
}

impl<R: RngCore> Rng for R {}

/// Concrete generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256++ — the small, fast, non-cryptographic generator behind
    /// the real crate's `SmallRng` on 64-bit targets.
    #[derive(Clone, Debug)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    #[inline]
    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            Self { s }
        }
    }

    impl RngCore for SmallRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0]
                .wrapping_add(s[3])
                .rotate_left(23)
                .wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::*;

    #[test]
    fn deterministic_from_seed() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..32 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(42);
        for _ in 0..10_000 {
            let x: u64 = rng.gen_range(10..20);
            assert!((10..20).contains(&x));
            let y = rng.gen_range(0..=5usize);
            assert!(y <= 5);
            let z: i32 = rng.gen_range(0..3);
            assert!((0..3).contains(&z));
        }
    }

    #[test]
    fn gen_range_covers_small_domains() {
        let mut rng = SmallRng::seed_from_u64(1);
        let mut seen = [false; 4];
        for _ in 0..1000 {
            seen[rng.gen_range(0..4usize)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn gen_produces_varied_bits() {
        let mut rng = SmallRng::seed_from_u64(3);
        let a: u32 = rng.gen();
        let b: u32 = rng.gen();
        let c: u64 = rng.gen();
        assert!(a != b || c != a as u64);
    }
}
