//! Offline stand-in for the `parking_lot` crate.
//!
//! The workspace is built in environments without registry access, so the
//! few `parking_lot` APIs it uses are provided here over `std::sync`
//! primitives. Semantics differ from the real crate only in that poisoning
//! is ignored (matching `parking_lot`'s poison-free behavior).

use std::sync::TryLockError;

/// A mutex that ignores poisoning, mirroring `parking_lot::Mutex`.
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

/// Guard type returned by [`Mutex::lock`] / [`Mutex::try_lock`].
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Creates a new mutex (usable in `const` contexts).
    pub const fn new(value: T) -> Self {
        Self(std::sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the mutex, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Attempts to acquire the mutex without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    /// Returns a mutable reference to the underlying data (no locking).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Self::new(T::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lock_and_try_lock() {
        let m = Mutex::new(1);
        {
            let mut g = m.lock();
            *g += 1;
            assert!(m.try_lock().is_none());
        }
        assert_eq!(*m.try_lock().unwrap(), 2);
    }

    const CONST_OK: Mutex<Vec<u8>> = Mutex::new(Vec::new());

    #[test]
    fn const_new_works() {
        assert!(CONST_OK.lock().is_empty());
    }
}
