//! PEBR — pointer- and epoch-based reclamation (behavioral model).
//!
//! PEBR (Kang & Jung, PLDI 2020) marries EBR's critical sections with HP's
//! robustness: when a pinned thread blocks the epoch for too long, the
//! reclaimer **ejects** (neutralizes) it. The ejected thread's critical
//! section is no longer protective; it must detect ejection at its next
//! validation point, abandon the traversal, and restart.
//!
//! This crate is a *behavioral model* of PEBR (see DESIGN.md §4
//! Substitutions): ejection sets a per-thread flag that the thread observes
//! at `validate()` points (every traversal step in the `ds` crate), rather
//! than being delivered through the original's fence/tag machinery. The
//! model is memory-safe without signals — the reclaimer never frees under a
//! live pin — and reproduces the phenomenon the paper measures: coarse-
//! grained neutralization forces long-running operations to restart
//! (Fig. 10), while garbage stays bounded as long as threads validate.

#![warn(missing_docs)]

use std::sync::atomic::{fence, AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;
use smr_common::policy::{PolicySlot, ReclaimPolicy, Verdict};
use smr_common::{counters, CachePadded, GuardedScheme, Retired, SchemeGuard, Shared};

/// Retire this many blocks before attempting a collection. Public so tests
/// derive garbage bounds from the same constant the scheme enforces.
pub const COLLECT_THRESHOLD: usize = 128;
/// Local garbage level at which stragglers get ejected. Public for the same
/// derived-bound reason as [`COLLECT_THRESHOLD`].
pub const EJECT_THRESHOLD: usize = 1024;

/// PEBR's pre-policy trigger formula as [`policy`](smr_common::policy)
/// parameters: a plain fixed threshold, `garbage.len() ≥ COLLECT_THRESHOLD`
/// (no slot-proportional term — robustness comes from ejection, not from
/// scaling the trigger).
pub fn legacy_trigger() -> smr_common::policy::Capped {
    smr_common::policy::Capped {
        floor: COLLECT_THRESHOLD,
        k: 0,
        period: 0,
    }
}

/// The env-selected default policy (`SMR_POLICY*` refining
/// [`legacy_trigger`]); with no policy env vars this is `Capped` with the
/// legacy parameters — bit-identical trigger decisions.
fn default_policy() -> Arc<dyn ReclaimPolicy> {
    smr_common::policy::PolicyConfig::from_env().build(legacy_trigger())
}

/// Named fault-injection points compiled into this crate (each a
/// `smr_common::fault_point!` site; no-ops without the `fault-injection`
/// feature). DESIGN.md §1.7 documents the invariant each one attacks.
pub const FAULT_POINTS: &[&str] = &[
    "pebr::pin::before_validate",
    "pebr::eject::after_mark",
    "pebr::collect::before_advance",
    "pebr::teardown::before_donate",
];

struct Participant {
    /// `(epoch << 1) | pinned`.
    state: CachePadded<AtomicU64>,
    ejected: AtomicBool,
    dead: AtomicBool,
}

/// The global side of a PEBR instance.
pub struct Collector {
    epoch: CachePadded<AtomicU64>,
    participants: Mutex<Vec<Arc<Participant>>>,
    orphans: Mutex<Vec<(u64, Retired)>>,
    /// Collection-trigger policy; unset, the env-selected default over
    /// [`legacy_trigger`] is built lazily at the first deferred destroy.
    policy: PolicySlot,
}

impl Default for Collector {
    fn default() -> Self {
        Self::new()
    }
}

impl Collector {
    /// Creates an independent collector.
    pub fn new() -> Self {
        Self {
            epoch: CachePadded::new(AtomicU64::new(0)),
            participants: Mutex::new(Vec::new()),
            orphans: Mutex::new(Vec::new()),
            policy: PolicySlot::new(),
        }
    }

    /// Installs the collection-trigger policy (must run before the
    /// collector's first deferred destroy; the slot latches). Returns
    /// `false` if a policy was already installed.
    pub fn set_policy(&self, policy: Arc<dyn ReclaimPolicy>) -> bool {
        self.policy.install(policy)
    }

    /// Feeds a watchdog verdict to the trigger policy (`Adaptive` reacts;
    /// the others ignore it).
    pub fn report_verdict(&self, verdict: Verdict) {
        self.policy.report_verdict(verdict);
    }

    /// Registers the current thread.
    ///
    /// Requires a `'static` collector (the process-wide default, or a
    /// leaked test instance) so the handle's back-reference can never
    /// dangle.
    pub fn register(&'static self) -> LocalHandle {
        let record = Arc::new(Participant {
            state: CachePadded::new(AtomicU64::new(0)),
            ejected: AtomicBool::new(false),
            dead: AtomicBool::new(false),
        });
        self.participants.lock().push(record.clone());
        LocalHandle {
            global: self,
            record,
            garbage: Vec::new(),
            guard_live: false,
            last_collect_ns: 0,
        }
    }

    /// Current global epoch.
    pub fn epoch(&self) -> u64 {
        self.epoch.load(Ordering::Relaxed)
    }

    /// Tries to advance the epoch; with `eject`, neutralizes stragglers so a
    /// future advance can succeed.
    fn try_advance(&self, eject: bool) -> u64 {
        let e = self.epoch.load(Ordering::Relaxed);
        fence(Ordering::SeqCst);
        let mut blocked = false;
        {
            let mut parts = self.participants.lock();
            parts.retain(|p| !p.dead.load(Ordering::Acquire));
            for p in parts.iter() {
                let s = p.state.load(Ordering::Relaxed);
                if s & 1 == 1 && (s >> 1) != e {
                    blocked = true;
                    if eject {
                        p.ejected.store(true, Ordering::Release);
                        // The straggler is marked but may not have observed
                        // it yet; its next validate() must see the ejection.
                        smr_common::fault_point!("pebr::eject::after_mark");
                    } else {
                        break;
                    }
                }
            }
        }
        if blocked {
            return e;
        }
        fence(Ordering::SeqCst);
        let _ = self
            .epoch
            .compare_exchange(e, e + 1, Ordering::Release, Ordering::Relaxed);
        self.epoch.load(Ordering::Relaxed)
    }
}

unsafe impl Send for Collector {}
unsafe impl Sync for Collector {}

/// Returns the process-wide default PEBR collector.
pub fn default_collector() -> &'static Collector {
    use std::sync::OnceLock;
    static DEFAULT: OnceLock<Collector> = OnceLock::new();
    DEFAULT.get_or_init(Collector::new)
}

/// A thread's registration with a PEBR [`Collector`].
pub struct LocalHandle {
    global: &'static Collector,
    record: Arc<Participant>,
    garbage: Vec<(u64, Retired)>,
    guard_live: bool,
    /// When this thread last ran a collection (mono ns; only maintained
    /// when the installed policy wants time, else stays 0).
    last_collect_ns: u64,
}

unsafe impl Send for LocalHandle {}

impl LocalHandle {
    /// Pins the thread, entering a critical section. Clears any pending
    /// ejection: a fresh critical section starts protective again.
    pub fn pin(&mut self) -> Guard<'_> {
        assert!(!self.guard_live, "PEBR guards must not be nested");
        self.record.ejected.store(false, Ordering::Relaxed);
        self.pin_slow();
        self.guard_live = true;
        Guard {
            handle: self,
            _marker: std::marker::PhantomData,
        }
    }

    fn pin_slow(&self) {
        let mut e = self.global.epoch.load(Ordering::Relaxed);
        loop {
            self.record.state.store((e << 1) | 1, Ordering::Relaxed);
            // A thread stalled here has announced a pin the reclaimer can
            // only get past by ejecting it — PEBR's robustness mechanism.
            smr_common::fault_point!("pebr::pin::before_validate");
            fence(Ordering::SeqCst);
            let e2 = self.global.epoch.load(Ordering::Relaxed);
            if e == e2 {
                break;
            }
            e = e2;
        }
    }

    fn unpin_slow(&self) {
        self.record.state.store(0, Ordering::Release);
    }

    /// Asks the collector's trigger policy whether a deferred destroy
    /// should attempt a collection now.
    fn should_collect(&self) -> bool {
        use smr_common::policy::{self, Decision, RetireStats};
        let slot = &self.global.policy;
        let policy = slot.get_or_init(default_policy);
        let since_scan_ns = if policy.wants_time() {
            smr_common::time::mono_ns().saturating_sub(self.last_collect_ns)
        } else {
            0
        };
        let stats = RetireStats {
            retired: self.garbage.len(),
            slots: 0,
            ops: 0,
            since_scan_ns,
            verdict: slot.verdict(),
        };
        policy::decide(policy, &stats) == Decision::Reclaim
    }

    fn collect(&mut self) {
        if let Some(mut orphans) = self.global.orphans.try_lock() {
            self.garbage.append(&mut orphans);
        }
        let eject = self.garbage.len() >= EJECT_THRESHOLD;
        smr_common::fault_point!("pebr::collect::before_advance");
        let global_epoch = self.global.try_advance(eject);
        let mut i = 0;
        while i < self.garbage.len() {
            if self.garbage[i].0 + 2 <= global_epoch {
                let (_, retired) = self.garbage.swap_remove(i);
                unsafe { retired.free() };
            } else {
                i += 1;
            }
        }
        if self.global.policy.get_or_init(default_policy).wants_time() {
            self.last_collect_ns = smr_common::time::mono_ns();
        }
    }
}

impl Drop for LocalHandle {
    fn drop(&mut self) {
        // Unregistration and donation must run even if teardown panics, so
        // both live in a guard that runs during unwinding too.
        struct Teardown<'a>(&'a mut LocalHandle);
        impl Drop for Teardown<'_> {
            fn drop(&mut self) {
                let h = &mut *self.0;
                h.record.dead.store(true, Ordering::Release);
                if !h.garbage.is_empty() {
                    h.global.orphans.lock().append(&mut h.garbage);
                }
            }
        }
        let _g = Teardown(self);
        smr_common::fault_point!("pebr::teardown::before_donate");
    }
}

/// An active PEBR critical section.
pub struct Guard<'a> {
    handle: *mut LocalHandle,
    _marker: std::marker::PhantomData<&'a mut LocalHandle>,
}

impl Guard<'_> {
    /// Reborrows the handle the guard exclusively holds.
    ///
    /// # Safety
    /// The returned reference must not outlive the statement that creates
    /// it, and at most one may be live at a time. The guard exclusively
    /// borrows the (non-Sync) handle for its whole lifetime, so no other
    /// reference can exist concurrently.
    #[inline]
    #[allow(clippy::mut_from_ref)]
    unsafe fn handle(&self) -> &mut LocalHandle {
        unsafe { &mut *self.handle }
    }

    /// Whether this critical section is still protective.
    #[inline]
    pub fn is_valid(&self) -> bool {
        !unsafe { self.handle() }.record.ejected.load(Ordering::Acquire)
    }

    /// Retires `ptr`.
    ///
    /// # Safety
    /// Same contract as [`ebr`-style deferred destruction]: unlinked,
    /// retired once, no new accesses.
    pub unsafe fn defer_destroy_inner<T>(&self, ptr: Shared<T>) {
        let handle = unsafe { self.handle() };
        let epoch = handle.global.epoch.load(Ordering::Relaxed);
        counters::incr_garbage(1);
        handle.garbage.push((epoch, Retired::new(ptr.as_raw())));
        if handle.should_collect() {
            handle.collect();
        }
    }

    /// Retires with a custom deleter.
    ///
    /// # Safety
    /// Same contract as [`Guard::defer_destroy_inner`].
    pub unsafe fn defer_destroy_with(&self, ptr: *mut u8, free_fn: unsafe fn(*mut u8)) {
        let handle = unsafe { self.handle() };
        let epoch = handle.global.epoch.load(Ordering::Relaxed);
        counters::incr_garbage(1);
        handle
            .garbage
            .push((epoch, Retired::with_free(ptr, free_fn)));
        if handle.should_collect() {
            handle.collect();
        }
    }
}

impl Drop for Guard<'_> {
    fn drop(&mut self) {
        let handle = unsafe { self.handle() };
        handle.unpin_slow();
        handle.guard_live = false;
    }
}

/// Marker type wiring PEBR into the [`GuardedScheme`] interface.
pub struct Pebr;

impl GuardedScheme for Pebr {
    type Handle = LocalHandle;
    type Guard<'a> = Guard<'a>;

    fn handle() -> LocalHandle {
        default_collector().register()
    }

    fn pin(handle: &mut LocalHandle) -> Guard<'_> {
        handle.pin()
    }
}

impl SchemeGuard for Guard<'_> {
    unsafe fn defer_destroy<T>(&self, ptr: Shared<T>) {
        self.defer_destroy_inner(ptr)
    }

    #[inline]
    fn validate(&self) -> bool {
        self.is_valid()
    }

    fn refresh(&mut self) {
        let handle = unsafe { self.handle() };
        handle.unpin_slow();
        handle.record.ejected.store(false, Ordering::Relaxed);
        handle.pin_slow();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pin_validate_refresh() {
        let c: &'static Collector = Box::leak(Box::new(Collector::new()));
        let mut h = c.register();
        let mut g = h.pin();
        assert!(g.validate());
        g.refresh();
        assert!(g.validate());
    }

    #[test]
    fn straggler_gets_ejected_under_pressure() {
        let c: &'static Collector = Box::leak(Box::new(Collector::new()));
        let mut straggler = c.register();
        let mut reclaimer = c.register();

        let sg = straggler.pin(); // long-running critical section
        assert!(sg.validate());

        // Reclaimer piles up garbage past the ejection threshold.
        {
            let rg = reclaimer.pin();
            for _ in 0..(EJECT_THRESHOLD + COLLECT_THRESHOLD * 2) {
                unsafe { rg.defer_destroy_inner(Shared::from_owned(0u64)) };
            }
            drop(rg);
        }

        assert!(
            !sg.validate(),
            "straggler should be ejected once garbage exceeds the threshold"
        );
    }

    #[test]
    fn refresh_clears_ejection_and_unblocks_epoch() {
        let c: &'static Collector = Box::leak(Box::new(Collector::new()));
        let mut straggler = c.register();
        let mut reclaimer = c.register();

        let mut sg = straggler.pin();
        {
            let rg = reclaimer.pin();
            for _ in 0..(EJECT_THRESHOLD + COLLECT_THRESHOLD * 2) {
                unsafe { rg.defer_destroy_inner(Shared::from_owned(0u64)) };
            }
            drop(rg);
        }
        assert!(!sg.validate());
        sg.refresh();
        assert!(sg.validate());

        let e0 = c.epoch();
        // With the straggler refreshed to the current epoch, collections can
        // advance the epoch again.
        {
            let rg = reclaimer.pin();
            for _ in 0..COLLECT_THRESHOLD {
                unsafe { rg.defer_destroy_inner(Shared::from_owned(0u64)) };
            }
            drop(rg);
        }
        drop(sg);
        let rg = reclaimer.pin();
        for _ in 0..COLLECT_THRESHOLD {
            unsafe { rg.defer_destroy_inner(Shared::from_owned(0u64)) };
        }
        drop(rg);
        assert!(c.epoch() >= e0);
    }

    #[test]
    fn garbage_is_reclaimed_when_quiet() {
        let before = counters::garbage_now();
        let c: &'static Collector = Box::leak(Box::new(Collector::new()));
        let mut h = c.register();
        for _ in 0..10 {
            let g = h.pin();
            for _ in 0..COLLECT_THRESHOLD {
                unsafe { g.defer_destroy_inner(Shared::from_owned(0u64)) };
            }
            drop(g);
        }
        // Most of the garbage should have been freed along the way.
        let remaining = h.garbage.len();
        assert!(
            remaining < 4 * COLLECT_THRESHOLD,
            "remaining garbage {remaining} should be bounded"
        );
        let _ = before;
    }
}
