//! CDRC — concurrent deferred reference counting (EBR flavor).
//!
//! A from-scratch implementation of the scheme the paper benchmarks as
//! **RC** (Anderson, Blelloch, Wei — PLDI 2022): every node carries a
//! strong reference count, but the counter traffic that made classic
//! lock-free reference counting slow is avoided by
//!
//! * reading links as **snapshots** — uncounted pointers protected by an
//!   EBR critical section instead of a counter increment, and
//! * **deferring decrements** through EBR: a decrement retired inside a
//!   critical section only executes after a grace period, so a snapshot
//!   holder can still safely upgrade to a counted reference.
//!
//! When a deferred decrement drops a count to zero the node is destroyed
//! and its outgoing links are decremented recursively (iteratively, to
//! survive long chains).
//!
//! Reference counting supports optimistic traversal and needs no failure
//! handling, but pays counter updates on every link mutation (paper §2.4) —
//! the cost the benchmark's Bonsai discussion attributes to RC.
//!
//! # Example
//!
//! ```
//! use cdrc::{alloc, defer_decr, incr, Counted, Edges};
//! use smr_common::Shared;
//!
//! struct Item(u64);
//! impl Edges for Item {
//!     fn edges(&self, _out: &mut Vec<Shared<Counted<Self>>>) {}
//! }
//!
//! let mut handle = cdrc::default_collector().register();
//!
//! let p = alloc(Item(7)); // strong count 1
//! unsafe { incr(p) };     // a second owner (e.g. a link now points at it)
//!
//! {
//!     let guard = handle.pin();
//!     unsafe { defer_decr(&guard, p) }; // one owner gives up its count
//! }
//! // Still alive: one count remains, and the decrement is deferred anyway.
//! assert_eq!(unsafe { p.deref() }.0, 7);
//!
//! {
//!     let guard = handle.pin();
//!     unsafe { defer_decr(&guard, p) }; // last count: destroyed after a
//!                                       // grace period
//! }
//! ```

#![warn(missing_docs)]

use std::sync::atomic::{AtomicU64, Ordering};

use smr_common::Shared;

/// A reference-counted heap node.
pub struct Counted<T> {
    strong: AtomicU64,
    data: T,
}

impl<T> Counted<T> {
    /// The payload.
    pub fn data(&self) -> &T {
        &self.data
    }

    /// Current strong count (diagnostics/tests).
    pub fn strong(&self) -> u64 {
        self.strong.load(Ordering::Acquire)
    }
}

impl<T> std::ops::Deref for Counted<T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.data
    }
}

/// Implemented by node payloads: enumerates outgoing counted links so
/// destruction can decrement them.
pub trait Edges: Sized {
    /// Push the raw (untagged) targets of every counted link of `self`.
    ///
    /// Called with exclusive access during destruction.
    fn edges(&self, out: &mut Vec<Shared<Counted<Self>>>);
}

/// Allocates a node with strong count 1 (the caller's reference).
pub fn alloc<T: Edges>(data: T) -> Shared<Counted<T>> {
    Shared::from_owned(Counted {
        strong: AtomicU64::new(1),
        data,
    })
}

/// Adds a strong reference.
///
/// # Safety
/// `ptr` must point to a live `Counted<T>` whose count cannot concurrently
/// reach its deferred destruction — guaranteed when `ptr` was loaded from a
/// live link inside the current EBR critical section, or when the caller
/// already owns a reference.
pub unsafe fn incr<T>(ptr: Shared<Counted<T>>) {
    let prev = unsafe { ptr.deref() }.strong.fetch_add(1, Ordering::AcqRel);
    debug_assert!(prev >= 1, "resurrection from zero");
}

unsafe fn decr_now<T: Edges>(ptr: *mut u8) {
    // Iterative cascade: destroying a node decrements its children.
    let mut stack: Vec<*mut Counted<T>> = vec![ptr.cast()];
    let mut edges = Vec::new();
    while let Some(p) = stack.pop() {
        let obj = unsafe { &*p };
        if obj.strong.fetch_sub(1, Ordering::AcqRel) == 1 {
            edges.clear();
            obj.data.edges(&mut edges);
            for e in &edges {
                if !e.is_null() {
                    stack.push(e.as_raw());
                }
            }
            drop(unsafe { Box::from_raw(p) });
        }
    }
}

/// Schedules a decrement of `ptr`'s strong count after a grace period.
///
/// # Safety
/// The caller must give up one strong reference it (or the link it just
/// overwrote) owned.
pub unsafe fn defer_decr<T: Edges>(guard: &ebr::Guard<'_>, ptr: Shared<Counted<T>>) {
    debug_assert!(!ptr.is_null());
    unsafe { guard.defer_destroy_with(ptr.as_raw().cast(), decr_now::<T>) };
}

/// Immediately decrements (and possibly destroys) — for single-owner
/// teardown paths like `Drop` implementations.
///
/// # Safety
/// No other thread may hold references or snapshots of the affected nodes.
pub unsafe fn decr_immediate<T: Edges>(ptr: Shared<Counted<T>>) {
    unsafe { decr_now::<T>(ptr.as_raw().cast()) }
}

/// Re-export of the underlying EBR scheme used for snapshots and deferral.
pub use ebr::{default_collector, Ebr, Guard, LocalHandle};

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering::Relaxed};

    static DROPS: AtomicUsize = AtomicUsize::new(0);

    struct Leafy;
    impl Drop for Leafy {
        fn drop(&mut self) {
            DROPS.fetch_add(1, Relaxed);
        }
    }
    impl Edges for Leafy {
        fn edges(&self, _out: &mut Vec<Shared<Counted<Self>>>) {}
    }

    fn flush(h: &mut LocalHandle) {
        for _ in 0..4 {
            let g = h.pin();
            g.flush();
            drop(g);
        }
    }

    #[test]
    fn count_reaches_zero_destroys() {
        let c: &'static ebr::Collector = Box::leak(Box::new(ebr::Collector::new()));
        let mut h = c.register();
        let before = DROPS.load(Relaxed);
        let p = alloc(Leafy);
        {
            let g = h.pin();
            unsafe { defer_decr(&g, p) };
        }
        flush(&mut h);
        assert_eq!(DROPS.load(Relaxed), before + 1);
    }

    #[test]
    fn extra_reference_keeps_alive() {
        let c: &'static ebr::Collector = Box::leak(Box::new(ebr::Collector::new()));
        let mut h = c.register();
        let before = DROPS.load(Relaxed);
        let p = alloc(Leafy);
        unsafe { incr(p) }; // second reference
        {
            let g = h.pin();
            unsafe { defer_decr(&g, p) };
        }
        flush(&mut h);
        assert_eq!(DROPS.load(Relaxed), before, "one reference remains");
        {
            let g = h.pin();
            unsafe { defer_decr(&g, p) };
        }
        flush(&mut h);
        assert_eq!(DROPS.load(Relaxed), before + 1);
    }

    #[test]
    fn cascading_destruction_is_iterative() {
        struct Chain {
            next: Shared<Counted<Chain>>,
        }
        unsafe impl Send for Chain {}
        unsafe impl Sync for Chain {}
        impl Edges for Chain {
            fn edges(&self, out: &mut Vec<Shared<Counted<Self>>>) {
                out.push(self.next);
            }
        }

        let c: &'static ebr::Collector = Box::leak(Box::new(ebr::Collector::new()));
        let mut h = c.register();
        // Build a 100k chain; destruction must not overflow the stack.
        let mut head = Shared::null();
        for _ in 0..100_000 {
            head = alloc(Chain { next: head });
        }
        {
            let g = h.pin();
            unsafe { defer_decr(&g, head) };
        }
        flush(&mut h);
        // If we got here without a stack overflow, the cascade worked.
    }
}
