//! The hyaline domain: slots, batches, and the reference-counted handover.
//!
//! # Protocol (code-inspection notes)
//!
//! * **One slot per registered thread**, held in the same lock-free
//!   [`Registry`] EBR uses for participants. A slot is a pair of words: the
//!   packed `word` (`[batch-node head | ACTIVE/PENDING/EJECTED]`, pointers
//!   are 8-aligned so the low bits are free) and the announced `era`. The
//!   head pointer and the in-critical-section flag share one atomic word so
//!   a retirer's push and the owner's leave linearize on a single CAS/swap —
//!   no node can be pushed onto a slot that has already detached its list.
//! * **Enter** announces `(era, PENDING)`, issues the light fence, validates
//!   the global era, then upgrades `PENDING → ACTIVE` with a CAS. The CAS is
//!   the ejection point: a handover that finds a *stale, unvalidated* slot
//!   (PENDING with `era <` the batch's era) CASes in `EJECTED`, which makes
//!   the owner's upgrade fail and re-validate against the bumped era. The
//!   owner loses nothing (its critical section had not started) and the
//!   batch never needs to reach that slot — this is what keeps a thread
//!   stalled *mid-enter* from pinning garbage, unlike EBR's wedged epoch.
//! * **Retire** pushes the node onto a thread-local batch (O(1), no fence).
//!   When the policy fires, **handover** bumps the global era (a release RMW
//!   — every retired node in the batch is ordered before the new era), issues
//!   the heavy fence, and walks the registry twice: pass 1 counts the slots
//!   the batch must reach (ACTIVE with a pre-bump era) and ejects stale
//!   PENDING slots; pass 2 pushes one batch node per such slot. The batch's
//!   reference count starts at 0, leavers decrement (possibly below zero),
//!   and the retirer finally adds the number of successful inserts: whichever
//!   operation lands the count on zero *after* the adjustment frees the whole
//!   batch. No epoch snapshot, no allocation on the reclamation path.
//! * **Leave** swaps the slot word to 0 (detaching the list and ending the
//!   critical section atomically) and decrements each traversed node's batch.
//!
//! # Why skipping is sound
//!
//! A batch handed over at era `E` may skip a slot only when its resident
//! provably cannot reach the batch's nodes:
//!
//! * **Inactive** (`word == 0`): by the announce/observe fence protocol, an
//!   enter that was invisible to the post-heavy-fence traversal validates
//!   against an era `≥ E`; reading `≥ E` from the release-RMW chain of era
//!   bumps happens-after every unlink in the batch, so the critical section
//!   cannot reach the retired nodes through the structure.
//! * **Era `≥ E`**: same happens-before edge, whether validated or not.
//! * **Stale PENDING**: ejected — the owner's upgrade CAS fails, and the
//!   failed CAS (acquire, reading the ejector's release store) forces the
//!   re-validation to observe an era `≥ E`.
//!
//! A slot that is ACTIVE with a pre-bump era gets a reference: its resident
//! may legitimately hold pointers to nodes retired after it entered (the
//! [`defer_destroy`](smr_common::SchemeGuard::defer_destroy) contract only
//! excludes threads that *start* after the call). A thread stalled inside a
//! validated critical section therefore pins garbage exactly like a stalled
//! EBR pin — that deviation from full Hyaline-S robustness (which protects
//! per-access, not per-section) is measured honestly by the fault matrix.
//!
//! # Departed threads
//!
//! A dying handle donates its unhanded batch to the domain's orphan list
//! (adopted into the next handover, so orphans flow through the same
//! reference-counted grace period) and marks its registry node dead. Dead
//! registry nodes unlinked by a traversal cannot ride a batch — a traverser
//! that never took a reference may still be parked on one — so they are
//! stamped with a fresh post-unlink era bump and freed once every announced
//! era in a later traversal has reached the stamp (`reap_dead_slots`).

use std::ptr;
use std::sync::atomic::{AtomicIsize, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, OnceLock};

use parking_lot::Mutex;
use smr_common::policy::{PolicySlot, ReclaimPolicy, Verdict};
use smr_common::registry::{Node, Registry};
use smr_common::{counters, fence as smr_fence, CachePadded, Retired};

use crate::guard::Guard;

/// Slot-word flag: the owner is inside a validated critical section; the
/// rest of the word is the head of the slot's retirement list.
const ACTIVE: usize = 1;
/// Slot-word flag: the owner announced an era but has not validated yet.
const PENDING: usize = 2;
/// Slot-word flag: a handover invalidated a stale PENDING announcement; the
/// owner's upgrade CAS must fail and re-validate.
const EJECTED: usize = 4;
/// Mask extracting the batch-node head pointer from a slot word.
const PTR_MASK: usize = !(ACTIVE | PENDING | EJECTED);

/// Default batch size that triggers a handover attempt
/// (`HYALINE_BATCH_THRESHOLD` overrides).
const DEFAULT_BATCH_FLOOR: usize = 128;

/// Per-slot batch-size multiplier: a handover must reach every active slot
/// (one node per slot), so the trigger grows as `k · slots` to keep the
/// traversal cost per retire O(k⁻¹) — and to guarantee the batch always has
/// enough nodes to serve every slot it must reach.
const BATCH_K: usize = 8;

/// The handover trigger's fixed floor: `max(floor, k · slots)`.
fn batch_threshold_floor() -> usize {
    static FLOOR: OnceLock<usize> = OnceLock::new();
    *FLOOR.get_or_init(|| {
        smr_common::env::parse_usize("HYALINE_BATCH_THRESHOLD")
            .filter(|&n| n > 0)
            .unwrap_or(DEFAULT_BATCH_FLOOR)
    })
}

/// Hyaline's trigger formula as [`policy`](smr_common::policy) parameters:
/// `batch ≥ max(HYALINE_BATCH_THRESHOLD, 8 · slots)` (`slots` in
/// [`RetireStats`](smr_common::policy::RetireStats) is the live registered
/// handle count for this scheme).
pub fn legacy_trigger() -> smr_common::policy::Capped {
    smr_common::policy::Capped {
        floor: batch_threshold_floor(),
        k: BATCH_K,
        period: 0,
    }
}

/// The env-selected default policy (`SMR_POLICY*` refining
/// [`legacy_trigger`]).
pub(crate) fn default_policy() -> Arc<dyn ReclaimPolicy> {
    smr_common::policy::PolicyConfig::from_env().build(legacy_trigger())
}

/// Derived worst-case garbage bound at `threads` registered handles when no
/// thread stalls *inside* a validated critical section (Table-1 row).
///
/// Each of the `threads` handles (plus one adopter of orphans) accumulates
/// at most one unhanded batch of `threshold` nodes, and each live critical
/// section holds references that pin at most one in-flight batch per
/// overlapping handover — bounded by the same count with a 2× slack:
/// `2 · (threads + 1) · max(floor, k · (threads + 1))`, the hyaline analogue
/// of HP's `k·H + floor`.
pub fn garbage_bound(threads: usize) -> usize {
    2 * (threads + 1) * legacy_trigger().threshold(threads + 1)
}

/// One retired allocation riding a batch.
///
/// The same allocation serves three roles: it carries the payload, it is a
/// link on exactly one slot's retirement list (`next`), and the batch's
/// first node additionally holds the shared reference count (`refs`).
struct BatchNode {
    payload: Retired,
    /// Adjusted reference count; meaningful on the batch's first node only.
    refs: AtomicIsize,
    /// The batch's first node (self for the first node itself).
    refs_node: *mut BatchNode,
    /// Next node in the same batch (assembly order; walked when freeing).
    batch_next: *mut BatchNode,
    /// Next node on the same slot's retirement list; written by the pusher
    /// before the publishing CAS, read by the leaver after the detaching
    /// swap — ordered by that CAS/swap pair.
    next: *mut BatchNode,
}

/// Frees a whole batch: every payload, then every node allocation.
///
/// # Safety
/// `refs_node` must be a batch head whose adjusted reference count reached
/// zero (or be otherwise exclusively owned), and the batch freed only once.
unsafe fn free_batch(refs_node: *mut BatchNode) {
    let mut n = refs_node;
    while !n.is_null() {
        let node = unsafe { Box::from_raw(n) };
        n = node.batch_next;
        unsafe { node.payload.free() };
    }
}

/// Per-thread slot state. Cache padding comes from the registry node.
pub(crate) struct Slot {
    /// Packed `[head | flags]`; see the module docs.
    word: AtomicUsize,
    /// The era announced at enter; read by handovers to decide skips.
    era: AtomicU64,
}

impl Slot {
    fn new() -> Self {
        Self {
            word: AtomicUsize::new(0),
            era: AtomicU64::new(0),
        }
    }
}

/// The global side of a hyaline instance.
///
/// The process-wide default lives behind [`crate::default_domain`]; private
/// domains (per-shard stores, tests) are created with [`Domain::new`] and
/// leaked, mirroring `ebr::Collector`.
pub struct Domain {
    /// The global era; bumped by every handover (release RMW, so reading a
    /// later value happens-after every unlink in earlier batches).
    pub(crate) era: CachePadded<AtomicU64>,
    /// Lock-free slot registry; one node per registered thread.
    pub(crate) registry: Registry<Slot>,
    /// Unhanded batches donated by exited threads; adopted into the next
    /// handover so they flow through the normal grace period.
    orphans: Mutex<Vec<Retired>>,
    /// Entry count of `orphans` for the lock-free empty check.
    orphan_count: AtomicUsize,
    /// Dead registry nodes awaiting the era-based reap (stamp, node).
    dead_slots: Mutex<Vec<(u64, Retired)>>,
    /// Entry count of `dead_slots` for the lock-free empty check.
    dead_count: AtomicUsize,
    /// Handover-trigger policy; unset, the env-selected default over
    /// [`legacy_trigger`] is built lazily at the first deferred destroy.
    policy: PolicySlot,
}

impl Default for Domain {
    fn default() -> Self {
        Self::new()
    }
}

impl Domain {
    /// Creates an independent domain (tests and per-shard stores use private
    /// instances; most users share [`crate::default_domain`]).
    pub const fn new() -> Self {
        Self {
            era: CachePadded::new(AtomicU64::new(0)),
            registry: Registry::new(),
            orphans: Mutex::new(Vec::new()),
            orphan_count: AtomicUsize::new(0),
            dead_slots: Mutex::new(Vec::new()),
            dead_count: AtomicUsize::new(0),
            policy: PolicySlot::new(),
        }
    }

    /// Installs the handover-trigger policy (must run before the domain's
    /// first deferred destroy; the slot latches). Returns `false` if a
    /// policy was already installed.
    pub fn set_policy(&self, policy: Arc<dyn ReclaimPolicy>) -> bool {
        self.policy.install(policy)
    }

    /// Feeds a watchdog verdict to the trigger policy (`Adaptive` reacts;
    /// the others ignore it).
    pub fn report_verdict(&self, verdict: Verdict) {
        self.policy.report_verdict(verdict);
    }

    pub(crate) fn policy_slot(&self) -> &PolicySlot {
        &self.policy
    }

    /// Registers the current thread, returning its local handle.
    ///
    /// Requires a `'static` domain (the process-wide default, or a leaked
    /// instance): slot records are linked into the domain's registry and
    /// reclaimed through the domain's own era machinery, so a handle must be
    /// unable to outlive it.
    pub fn register(&'static self) -> LocalHandle {
        LocalHandle {
            global: self,
            record: self.registry.insert(Slot::new()),
            batch_head: ptr::null_mut(),
            batch_len: 0,
            guard_live: false,
        }
    }

    /// Current global era (for diagnostics and tests).
    pub fn era(&self) -> u64 {
        self.era.load(Ordering::Relaxed)
    }

    /// Number of currently registered handles (approximate).
    pub fn participants(&self) -> usize {
        self.registry.live()
    }

    /// Batch size at which a retire attempts a handover:
    /// `max(HYALINE_BATCH_THRESHOLD, 8 · participants)`.
    ///
    /// Public so tests derive garbage bounds from the same formula the
    /// scheme enforces instead of hard-coding magic constants.
    #[inline]
    pub fn handover_threshold(&self) -> usize {
        legacy_trigger().threshold(self.registry.live())
    }

    /// Number of donated payloads awaiting adoption (diagnostics and the
    /// fault-matrix teardown balance checks).
    pub fn orphan_count(&self) -> usize {
        self.orphan_count.load(Ordering::Acquire)
    }

    /// Donates a dying thread's unhanded payloads to the orphan list.
    fn donate_orphans(&self, donated: &mut Vec<Retired>) {
        if donated.is_empty() {
            return;
        }
        let mut orphans = self.orphans.lock();
        orphans.append(donated);
        self.orphan_count.store(orphans.len(), Ordering::Release);
    }

    /// Takes the orphan list if any and uncontended (single load fast path).
    fn take_orphans(&self) -> Option<Vec<Retired>> {
        if self.orphan_count.load(Ordering::Acquire) == 0 {
            return None;
        }
        let mut orphans = self.orphans.try_lock()?;
        self.orphan_count.store(0, Ordering::Release);
        Some(std::mem::take(&mut *orphans))
    }

    /// Stamps freshly unlinked registry nodes with a post-unlink era bump
    /// and queues them for [`Self::reap_dead_slots`].
    ///
    /// The bump is *after* the unlinks in this thread's program order, so
    /// any slot that later announces an era `≥` the stamp happens-after the
    /// unlink and cannot walk onto the node.
    fn bury_slots(&self, unlinked: Vec<*mut Node<Slot>>) {
        if unlinked.is_empty() {
            return;
        }
        let stamp = self.era.fetch_add(1, Ordering::AcqRel) + 1;
        let mut dead = self.dead_slots.lock();
        for node in unlinked {
            counters::incr_garbage(1);
            // Safety: the node came from `Box::into_raw` in
            // `Registry::insert`, and `traverse` hands each unlinked node
            // out exactly once.
            dead.push((stamp, unsafe { Retired::new(node) }));
        }
        self.dead_count.store(dead.len(), Ordering::Release);
    }

    /// Frees dead registry nodes whose stamp every announced era has passed.
    ///
    /// `min_era` must be the minimum announced era over all non-inactive
    /// slots observed by a post-heavy-fence registry traversal: every
    /// traversal runs inside a critical section, so a node stamped `≤`
    /// every announced era can no longer be reached by any walker.
    fn reap_dead_slots(&self, min_era: u64) {
        if self.dead_count.load(Ordering::Acquire) == 0 {
            return;
        }
        let Some(mut dead) = self.dead_slots.try_lock() else {
            return; // another thread is reaping
        };
        let mut i = 0;
        while i < dead.len() {
            if dead[i].0 <= min_era {
                let (_, retired) = dead.swap_remove(i);
                unsafe { retired.free() };
            } else {
                i += 1;
            }
        }
        self.dead_count.store(dead.len(), Ordering::Release);
    }
}

impl Drop for Domain {
    fn drop(&mut self) {
        // Exclusive access, and `register` requires `'static`, so no handle
        // can be live: free donated payloads and unreaped slot records.
        for retired in self.orphans.get_mut().drain(..) {
            unsafe { retired.free() };
        }
        for (_, retired) in self.dead_slots.get_mut().drain(..) {
            unsafe { retired.free() };
        }
    }
}

/// A thread's registration with a [`Domain`].
///
/// Not `Sync`: one handle per thread. Dropping the handle unregisters the
/// thread and donates any unhanded batch to the domain's orphan list.
pub struct LocalHandle {
    pub(crate) global: &'static Domain,
    /// This thread's registry node; owned by the registry, valid for the
    /// handle's lifetime (only `Drop` marks it dead).
    record: *const Node<Slot>,
    /// The thread-local batch under assembly (linked via `batch_next`).
    batch_head: *mut BatchNode,
    batch_len: usize,
    pub(crate) guard_live: bool,
}

// The handle is only a registration token plus thread-local garbage; the
// registry node it points to is Sync.
unsafe impl Send for LocalHandle {}

impl LocalHandle {
    #[inline]
    fn slot(&self) -> &Slot {
        // Valid: the node is unlinked only after `Drop` marks it dead, and
        // freed only once every announced era passes its stamp.
        unsafe { (*self.record).data() }
    }

    /// Enters a critical section.
    pub fn pin(&mut self) -> Guard<'_> {
        assert!(!self.guard_live, "hyaline guards must not be nested");
        self.enter_slow();
        self.guard_live = true;
        Guard::new(self)
    }

    /// The enter path: announce `(era, PENDING)`, light fence, validate the
    /// era, then CAS-upgrade to ACTIVE. The upgrade fails if a handover
    /// ejected the stale announcement, forcing a re-validation that observes
    /// the bumped era.
    #[inline]
    pub(crate) fn enter_slow(&self) {
        let slot = self.slot();
        let mut e = self.global.era.load(Ordering::Acquire);
        loop {
            let e2 = smr_fence::announce_then_validate(
                || {
                    slot.era.store(e, Ordering::Relaxed);
                    slot.word.store(PENDING, Ordering::Relaxed);
                    // The announce-to-validate window: a thread stalled here
                    // holds no critical section yet, so handovers eject the
                    // slot instead of handing it references — the stall EBR
                    // cannot bound (Table 1) and hyaline does.
                    smr_common::fault_point!("hyaline::enter::before_validate");
                },
                || self.global.era.load(Ordering::Acquire),
            );
            if e != e2 {
                e = e2;
                continue;
            }
            // Validated: upgrade unless a handover ejected us meanwhile. The
            // acquire failure load reads the ejector's release store, so the
            // retried validation observes its era bump.
            match slot.word.compare_exchange(
                PENDING,
                ACTIVE,
                Ordering::AcqRel,
                Ordering::Acquire,
            ) {
                Ok(_) => return,
                Err(_) => e = self.global.era.load(Ordering::Acquire),
            }
        }
    }

    /// The leave path: detach the retirement list and end the critical
    /// section with one swap, then drop a reference on each traversed
    /// node's batch, freeing batches that hit zero post-adjustment.
    #[inline]
    pub(crate) fn leave_slow(&self) {
        let w = self.slot().word.swap(0, Ordering::AcqRel);
        debug_assert!(w & ACTIVE != 0, "leave without a critical section");
        let mut n = (w & PTR_MASK) as *mut BatchNode;
        if n.is_null() {
            return;
        }
        // A thread stalled here has detached its list but not yet released
        // its references: every batch on the list stays pinned — the
        // handover-decrement window Miri catches use-after-free in.
        smr_common::fault_point!("hyaline::leave::before_decrement");
        while !n.is_null() {
            // Read the link and the batch pointer *before* decrementing:
            // the decrement may free the batch, node included.
            let next = unsafe { (*n).next };
            let refs_node = unsafe { (*n).refs_node };
            let old = unsafe { (*refs_node).refs.fetch_sub(1, Ordering::AcqRel) };
            if old == 1 {
                // Post-adjustment zero transition: last reference out.
                unsafe { free_batch(refs_node) };
            }
            n = next;
        }
    }

    /// Number of blocks this thread has retired but not yet handed over.
    pub fn local_garbage(&self) -> usize {
        self.batch_len
    }

    /// Links a retired payload onto the local batch and consults the policy.
    pub(crate) fn push_retired(&mut self, retired: Retired) {
        let node = Box::into_raw(Box::new(BatchNode {
            payload: retired,
            refs: AtomicIsize::new(0),
            refs_node: ptr::null_mut(),
            batch_next: self.batch_head,
            next: ptr::null_mut(),
        }));
        self.batch_head = node;
        self.batch_len += 1;
        smr_common::fault_point!("hyaline::retire::after_link");
        if self.should_collect() {
            self.collect();
        }
    }

    /// Asks the domain's trigger policy whether this retire should attempt
    /// a handover now.
    pub(crate) fn should_collect(&self) -> bool {
        use smr_common::policy::{self, Decision, RetireStats};
        let slot = self.global.policy_slot();
        let policy = slot.get_or_init(default_policy);
        let stats = RetireStats {
            retired: self.batch_len,
            slots: self.global.registry.live(),
            ops: 0,
            since_scan_ns: 0,
            verdict: slot.verdict(),
        };
        policy::decide(policy, &stats) == Decision::Reclaim
    }

    /// Adopts orphans, attempts a handover, and reaps dead slot records.
    ///
    /// Must be called inside a critical section (all callers hold a
    /// [`Guard`]): the registry traversals rely on the caller's own slot
    /// being ACTIVE, and the batch is pushed to it like any other.
    pub(crate) fn collect(&mut self) {
        self.adopt_orphans();
        let min_era = if !self.batch_head.is_null() {
            Some(self.handover())
        } else if self.global.dead_count.load(Ordering::Acquire) > 0 {
            Some(self.scan_min_era())
        } else {
            None
        };
        if let Some(min_era) = min_era {
            self.global.reap_dead_slots(min_era);
        }
    }

    /// Folds donated payloads into the local batch so exited threads'
    /// garbage flows through the normal handover grace period.
    fn adopt_orphans(&mut self) {
        if let Some(orphans) = self.global.take_orphans() {
            for retired in orphans {
                let node = Box::into_raw(Box::new(BatchNode {
                    payload: retired,
                    refs: AtomicIsize::new(0),
                    refs_node: ptr::null_mut(),
                    batch_next: self.batch_head,
                    next: ptr::null_mut(),
                }));
                self.batch_head = node;
                self.batch_len += 1;
            }
        }
    }

    /// Hands the local batch over to every slot that may still reach its
    /// nodes. Returns the minimum announced era observed (for the reap).
    fn handover(&mut self) -> u64 {
        let refs_node = self.batch_head;
        // Stitch the batch: every node points at the shared refs node, whose
        // count starts at zero (leavers may drive it negative before the
        // final adjustment).
        unsafe {
            (*refs_node).refs.store(0, Ordering::Relaxed);
            let mut n = refs_node;
            while !n.is_null() {
                (*n).refs_node = refs_node;
                n = (*n).batch_next;
            }
        }
        // Release RMW: every unlink feeding this batch is ordered before the
        // new era value — reading `era` (or later) from the bump chain
        // happens-after all of them.
        let era = self.global.era.fetch_add(1, Ordering::AcqRel) + 1;
        // Observer side of the announce/observe protocol: every slot state
        // stored before an enter's light fence is visible below, and any
        // enter invisible below validates against the bumped era.
        smr_fence::heavy();
        smr_common::fault_point!("hyaline::handover::before_traverse");

        // Pass 1: count the slots the batch must reach (ACTIVE, pre-bump
        // era), eject stale PENDING slots so they never become reachable,
        // collect the minimum announced era, and unlink dead records.
        let mut eligible = 0usize;
        let mut min_era = u64::MAX;
        let mut unlinked: Vec<*mut Node<Slot>> = Vec::new();
        self.global.registry.traverse(
            |slot| {
                let mut w = slot.word.load(Ordering::Acquire);
                loop {
                    if w == 0 {
                        break;
                    }
                    let announced = slot.era.load(Ordering::Relaxed);
                    min_era = min_era.min(announced);
                    if announced >= era || w & EJECTED != 0 {
                        break;
                    }
                    if w & ACTIVE != 0 {
                        eligible += 1;
                        break;
                    }
                    // Stale and unvalidated: eject instead of reserving a
                    // node. The release store pairs with the owner's acquire
                    // upgrade failure, forcing a fresh validation.
                    match slot.word.compare_exchange(
                        w,
                        w | EJECTED,
                        Ordering::Release,
                        Ordering::Acquire,
                    ) {
                        Ok(_) => break,
                        Err(w2) => w = w2, // owner raced: re-decide
                    }
                }
                true
            },
            |node| unlinked.push(node),
        );

        // The handover needs one carrier node per reachable slot. A small
        // batch (eager policy, explicit flush) or a registration burst can
        // leave fewer nodes than slots; pad with empty carriers so the
        // handover always completes — flush must be able to drain. (The
        // default trigger `max(floor, 8·slots)` makes this a cold path.)
        while eligible > self.batch_len {
            counters::incr_garbage(1);
            let filler = Box::into_raw(Box::new(BatchNode {
                // Safety: a fresh allocation, freed exactly once with the
                // batch.
                payload: unsafe { Retired::new(Box::into_raw(Box::new(0u8))) },
                refs: AtomicIsize::new(0),
                refs_node,
                batch_next: unsafe { (*refs_node).batch_next },
                next: ptr::null_mut(),
            }));
            unsafe { (*refs_node).batch_next = filler };
            self.batch_len += 1;
        }

        // Pass 2: push one node per reachable slot. `traverse_live` never
        // restarts, so each slot is visited at most once and pass 1's count
        // bounds the nodes consumed. A slot can newly become ACTIVE with a
        // pre-bump era only by winning the upgrade race against pass 1's
        // ejection — in which case pass 1 already counted it.
        let mut cursor = refs_node;
        let mut inserts = 0isize;
        self.global.registry.traverse_live(|slot| {
            let mut w = slot.word.load(Ordering::Acquire);
            loop {
                if w & ACTIVE == 0 || slot.era.load(Ordering::Relaxed) >= era {
                    break;
                }
                if cursor.is_null() {
                    // Unreachable: pass 1 reserved a node per reachable slot.
                    debug_assert!(false, "hyaline batch exhausted mid-handover");
                    break;
                }
                // Link before the publishing CAS; the leaver's detaching
                // swap (acquire) orders the read after this write.
                unsafe { (*cursor).next = (w & PTR_MASK) as *mut BatchNode };
                match slot.word.compare_exchange(
                    w,
                    cursor as usize | ACTIVE,
                    Ordering::AcqRel,
                    Ordering::Acquire,
                ) {
                    Ok(_) => {
                        inserts += 1;
                        cursor = unsafe { (*cursor).batch_next };
                        break;
                    }
                    Err(w2) => w = w2, // pushed-over or detached: re-decide
                }
            }
            true
        });

        // A retirer stalled here has published list entries whose batch
        // cannot be freed until the adjustment below lands — leavers only
        // drive the count negative.
        smr_common::fault_point!("hyaline::handover::before_adjust");
        let old = unsafe { (*refs_node).refs.fetch_add(inserts, Ordering::AcqRel) };
        if old + inserts == 0 {
            // Every reference already came back (or none was taken): the
            // adjustment itself is the zero transition.
            unsafe { free_batch(refs_node) };
        }
        self.batch_head = ptr::null_mut();
        self.batch_len = 0;
        self.global.bury_slots(unlinked);
        min_era
    }

    /// Heavy fence + registry walk computing the minimum announced era, for
    /// reaping dead slot records when there is no batch to hand over.
    fn scan_min_era(&mut self) -> u64 {
        smr_fence::heavy();
        let mut min_era = u64::MAX;
        let mut unlinked: Vec<*mut Node<Slot>> = Vec::new();
        self.global.registry.traverse(
            |slot| {
                if slot.word.load(Ordering::Acquire) != 0 {
                    min_era = min_era.min(slot.era.load(Ordering::Relaxed));
                }
                true
            },
            |node| unlinked.push(node),
        );
        self.global.bury_slots(unlinked);
        min_era
    }
}

impl Drop for LocalHandle {
    fn drop(&mut self) {
        // Unregistration and donation must run even if teardown itself
        // panics (a dying worker must neither strand garbage nor leave a
        // live-looking slot), so both live in a guard that runs during
        // unwinding too.
        struct Teardown<'a>(&'a mut LocalHandle);
        impl Drop for Teardown<'_> {
            fn drop(&mut self) {
                let h = &mut *self.0;
                // Mark the registry node dead first so handovers stop
                // considering a slot that no longer runs.
                unsafe { h.global.registry.delete(h.record) };
                if !h.batch_head.is_null() {
                    let mut donated = Vec::with_capacity(h.batch_len);
                    let mut n = h.batch_head;
                    while !n.is_null() {
                        let node = unsafe { Box::from_raw(n) };
                        n = node.batch_next;
                        donated.push(node.payload);
                    }
                    h.batch_head = ptr::null_mut();
                    h.batch_len = 0;
                    h.global.donate_orphans(&mut donated);
                }
            }
        }
        let _g = Teardown(self);
        smr_common::fault_point!("hyaline::teardown::before_donate");
    }
}
