//! Hyaline: snapshot-free memory reclamation with reference-counted batch
//! handover (Nikolaev & Ravindran, *Snapshot-Free, Transparent, and Robust
//! Memory Reclamation*; PAPERS.md).
//!
//! Epoch schemes decide *when* garbage is safe by advancing a global clock
//! and re-scanning every participant; hazard schemes decide by snapshotting
//! every announced pointer. Hyaline removes both: retired nodes accumulate
//! in a thread-local **batch**, and a handover links one batch node onto the
//! retirement list of every slot whose critical section could still reach
//! the batch. Each listed node is one reference; the **last leaver** of each
//! referenced slot frees the batch. Reclamation is driven entirely by
//! threads *leaving* critical sections — no global scan, no snapshot
//! allocation, no epoch to wedge.
//!
//! Two deliberate deviations from the paper, both documented in DESIGN.md
//! §1.11 and measured by the fault matrix:
//!
//! * Slots are exclusive (one per registered thread, refs ∈ {0,1}) rather
//!   than shared, which lets the slot word double as the list head so push
//!   and leave linearize on one CAS.
//! * Protection is per critical section (the workspace's [`GuardedScheme`]
//!   contract), not per access. A thread stalled *inside* a validated
//!   section pins garbage like a stalled EBR pin; a thread stalled
//!   *entering* (announced, unvalidated) is ejected by the next handover
//!   and pins nothing — the bound [`garbage_bound`] derives and
//!   `table1_bounds` gates.
//!
//! # Example
//!
//! ```
//! use smr_common::{Atomic, Shared};
//! use std::sync::atomic::Ordering::{AcqRel, Acquire};
//!
//! let mut handle = hyaline::default_domain().register();
//!
//! let slot = Atomic::new(41u64);
//! {
//!     let guard = handle.pin(); // critical section
//!     let old = slot.load(Acquire);
//!     assert_eq!(unsafe { *old.deref() }, 41);
//!
//!     // Swap in a new value and retire the old block.
//!     let fresh = Shared::from_owned(42u64);
//!     let prev = slot.swap(fresh, AcqRel);
//!     unsafe { guard.defer_destroy(prev) };
//!     // `old`/`prev` stay dereferenceable until every slot the batch was
//!     // handed to — ours included — leaves its critical section.
//!     assert_eq!(unsafe { *prev.deref() }, 41);
//! }
//! # unsafe { slot.into_owned(); }
//! ```

#![warn(missing_docs)]

mod domain;
mod guard;

pub use domain::{garbage_bound, legacy_trigger, Domain, LocalHandle};
pub use guard::Guard;

use smr_common::{GuardedScheme, SchemeGuard, Shared};

/// Returns the process-wide default domain.
pub fn default_domain() -> &'static Domain {
    static DEFAULT: Domain = Domain::new();
    &DEFAULT
}

/// Named fault-injection points compiled into this crate (each a
/// `smr_common::fault_point!` site; no-ops without the `fault-injection`
/// feature). DESIGN.md §1.11 documents the invariant each one attacks.
pub const FAULT_POINTS: &[&str] = &[
    "hyaline::enter::before_validate",
    "hyaline::retire::after_link",
    "hyaline::handover::before_traverse",
    "hyaline::handover::before_adjust",
    "hyaline::leave::before_decrement",
    "hyaline::teardown::before_donate",
];

/// Marker type wiring hyaline into the [`GuardedScheme`] interface.
pub struct Hyaline;

impl GuardedScheme for Hyaline {
    type Handle = LocalHandle;
    type Guard<'a> = Guard<'a>;

    fn handle() -> LocalHandle {
        default_domain().register()
    }

    fn pin(handle: &mut LocalHandle) -> Guard<'_> {
        handle.pin()
    }
}

impl SchemeGuard for Guard<'_> {
    unsafe fn defer_destroy<T>(&self, ptr: Shared<T>) {
        Guard::defer_destroy(self, ptr)
    }

    fn refresh(&mut self) {
        Guard::repin(self)
    }
}
