//! The hyaline critical-section guard.

use std::marker::PhantomData;

use smr_common::{counters, Retired, Shared};

use crate::domain::LocalHandle;

/// An active hyaline critical section.
///
/// While a `Guard` is live, every batch handed over since the guard's enter
/// holds a reference on this thread's slot, so no block retired after the
/// enter can be freed and every pointer loaded from the data structure
/// inside the critical section remains dereferenceable.
pub struct Guard<'a> {
    handle: *mut LocalHandle,
    _marker: PhantomData<&'a mut LocalHandle>,
}

impl<'a> Guard<'a> {
    pub(crate) fn new(handle: &'a mut LocalHandle) -> Self {
        Self {
            handle,
            _marker: PhantomData,
        }
    }

    /// Reborrows the handle the guard exclusively holds.
    ///
    /// # Safety
    /// The returned reference must not outlive the statement that creates
    /// it, and at most one may be live at a time. The guard exclusively
    /// borrows the (non-Sync) handle for its whole lifetime, so no other
    /// reference can exist concurrently.
    #[inline]
    #[allow(clippy::mut_from_ref)]
    unsafe fn handle(&self) -> &mut LocalHandle {
        unsafe { &mut *self.handle }
    }

    /// Retires `ptr` onto the local batch for reference-counted handover.
    ///
    /// # Safety
    /// `ptr` must be a `Box`-allocated node that has been unlinked from the
    /// data structure and is retired exactly once.
    pub unsafe fn defer_destroy<T>(&self, ptr: Shared<T>) {
        let handle = unsafe { self.handle() };
        counters::incr_garbage(1);
        handle.push_retired(unsafe { Retired::new(ptr.as_raw()) });
    }

    /// Retires with a custom deleter (descriptor nodes etc.).
    ///
    /// # Safety
    /// Same contract as [`Guard::defer_destroy`].
    pub unsafe fn defer_destroy_with(&self, ptr: *mut u8, free_fn: unsafe fn(*mut u8)) {
        let handle = unsafe { self.handle() };
        counters::incr_garbage(1);
        handle.push_retired(unsafe { Retired::with_free(ptr, free_fn) });
    }

    /// Briefly exits and re-enters the critical section.
    ///
    /// Any pointer loaded before `repin` must be re-read afterwards; the
    /// detach released this thread's batch references and old nodes may be
    /// freed.
    pub fn repin(&mut self) {
        let handle = unsafe { self.handle() };
        handle.leave_slow();
        handle.enter_slow();
    }

    /// Eagerly attempts a handover (tests & shutdown paths).
    pub fn flush(&self) {
        unsafe { self.handle() }.collect();
    }
}

impl Drop for Guard<'_> {
    fn drop(&mut self) {
        let handle = unsafe { self.handle() };
        handle.leave_slow();
        handle.guard_live = false;
    }
}

#[cfg(test)]
mod tests {
    use crate::Domain;
    use smr_common::{Atomic, Shared};
    use std::sync::atomic::{AtomicUsize, Ordering::*};
    use std::sync::Arc;

    #[test]
    fn enter_leave_cycles() {
        let d = Box::leak(Box::new(Domain::new()));
        let mut h = d.register();
        for _ in 0..10 {
            let g = h.pin();
            drop(g);
        }
    }

    #[test]
    fn era_advances_on_handover() {
        let d = Box::leak(Box::new(Domain::new()));
        let mut h = d.register();
        let e0 = d.era();
        {
            let g = h.pin();
            unsafe { g.defer_destroy(Shared::from_owned(1u64)) };
            g.flush();
            drop(g);
        }
        assert!(d.era() > e0, "handover must bump the era");
    }

    #[test]
    fn deferred_destruction_runs() {
        static DROPS: AtomicUsize = AtomicUsize::new(0);
        struct Canary;
        impl Drop for Canary {
            fn drop(&mut self) {
                DROPS.fetch_add(1, Relaxed);
            }
        }

        let d = Box::leak(Box::new(Domain::new()));
        let mut h = d.register();
        {
            let g = h.pin();
            let node = Shared::from_owned(Canary);
            unsafe { g.defer_destroy(node) };
            // Handover pushes the batch onto our own slot; the node stays
            // alive until the guard leaves.
            g.flush();
            assert_eq!(DROPS.load(Relaxed), 0, "freed inside the retiring CS");
            drop(g);
        }
        assert_eq!(DROPS.load(Relaxed), 1, "leave must release the batch");
    }

    #[test]
    fn batch_survives_concurrent_holder() {
        // A second slot entered before the handover must hold the batch
        // alive until it leaves, even after the retirer is gone.
        static DROPS: AtomicUsize = AtomicUsize::new(0);
        struct Canary;
        impl Drop for Canary {
            fn drop(&mut self) {
                DROPS.fetch_add(1, Relaxed);
            }
        }

        let d = Box::leak(Box::new(Domain::new()));
        let mut holder = d.register();
        let mut retirer = d.register();
        let held = holder.pin();
        {
            let g = retirer.pin();
            unsafe { g.defer_destroy(Shared::from_owned(Canary)) };
            g.flush();
            drop(g);
        }
        assert_eq!(DROPS.load(Relaxed), 0, "holder's reference ignored");
        drop(held);
        assert_eq!(DROPS.load(Relaxed), 1, "holder's leave must free");
    }

    #[test]
    fn slot_entered_after_handover_takes_no_reference() {
        // A critical section that starts after the batch's era bump cannot
        // reach its nodes, so it must not delay the free.
        static DROPS: AtomicUsize = AtomicUsize::new(0);
        struct Canary;
        impl Drop for Canary {
            fn drop(&mut self) {
                DROPS.fetch_add(1, Relaxed);
            }
        }

        let d = Box::leak(Box::new(Domain::new()));
        let mut late = d.register();
        let mut retirer = d.register();
        {
            let g = retirer.pin();
            unsafe { g.defer_destroy(Shared::from_owned(Canary)) };
            g.flush();
            // Entered after the handover: skipped by era comparison.
            let late_guard = late.pin();
            drop(g); // retirer's own reference was the last one
            assert_eq!(DROPS.load(Relaxed), 1, "late slot delayed the free");
            drop(late_guard);
        }
    }

    #[test]
    fn register_unregister_churn_balances() {
        // Thread churn: handles come and go while retiring garbage, so
        // every drop donates to the orphan list and leaves a dead registry
        // node behind. Afterwards a survivor must be able to adopt and free
        // every single orphan — nothing stranded, nothing double-freed.
        static DROPS: AtomicUsize = AtomicUsize::new(0);
        struct Canary;
        impl Drop for Canary {
            fn drop(&mut self) {
                DROPS.fetch_add(1, Relaxed);
            }
        }

        let d: &'static Domain = Box::leak(Box::new(Domain::new()));
        let threads = 8;
        let lives: usize = if cfg!(miri) { 4 } else { 64 };
        let retires_per_life = 16;
        std::thread::scope(|s| {
            for _ in 0..threads {
                s.spawn(move || {
                    for _ in 0..lives {
                        let mut h = d.register();
                        let g = h.pin();
                        for _ in 0..retires_per_life {
                            unsafe { g.defer_destroy(Shared::from_owned(Canary)) };
                        }
                        drop(g);
                        // Handle drop: donate batch, mark registry node.
                    }
                });
            }
        });
        assert_eq!(d.participants(), 0);
        let expected = threads * lives * retires_per_life;
        let mut survivor = d.register();
        for _ in 0..8 {
            let g = survivor.pin();
            g.flush();
            drop(g);
            if DROPS.load(Relaxed) == expected {
                break;
            }
        }
        assert_eq!(DROPS.load(Relaxed), expected, "orphaned garbage stranded");
    }

    #[test]
    fn no_premature_free_under_concurrency() {
        // Readers hold critical sections while a writer swaps and retires
        // nodes; the value read under a guard must always be intact (drop
        // poisons it).
        struct Node {
            value: u64,
        }
        impl Drop for Node {
            fn drop(&mut self) {
                self.value = u64::MAX;
            }
        }

        let d: &'static Domain = Box::leak(Box::new(Domain::new()));
        let slot = Arc::new(Atomic::new(Node { value: 7 }));
        let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));

        let mut threads = Vec::new();
        for _ in 0..4 {
            let slot = slot.clone();
            let stop = stop.clone();
            threads.push(std::thread::spawn(move || {
                let mut h = d.register();
                while !stop.load(Relaxed) {
                    let g = h.pin();
                    let s = slot.load(Acquire);
                    let v = unsafe { s.deref() }.value;
                    assert_eq!(v, 7, "use-after-free detected");
                    drop(g);
                }
            }));
        }
        {
            let slot = slot.clone();
            let stop = stop.clone();
            let writes: u64 = if cfg!(miri) { 300 } else { 20_000 };
            threads.push(std::thread::spawn(move || {
                let mut h = d.register();
                for _ in 0..writes {
                    let g = h.pin();
                    let fresh = Shared::from_owned(Node { value: 7 });
                    let old = slot.swap(fresh, AcqRel);
                    unsafe { g.defer_destroy(old) };
                    drop(g);
                }
                stop.store(true, Relaxed);
            }));
        }
        for t in threads {
            t.join().unwrap();
        }
        unsafe {
            let last = slot.load(Relaxed);
            last.drop_owned();
            smr_common::counters::decr_garbage(0);
        }
    }

    #[test]
    fn repin_releases_references() {
        static DROPS: AtomicUsize = AtomicUsize::new(0);
        struct Canary;
        impl Drop for Canary {
            fn drop(&mut self) {
                DROPS.fetch_add(1, Relaxed);
            }
        }

        let d = Box::leak(Box::new(Domain::new()));
        let mut h = d.register();
        let mut g = h.pin();
        unsafe { g.defer_destroy(Shared::from_owned(Canary)) };
        g.flush();
        assert_eq!(DROPS.load(Relaxed), 0);
        // Leaving inside repin drops the reference the handover pushed.
        g.repin();
        assert_eq!(DROPS.load(Relaxed), 1, "repin must release the batch");
        drop(g);
    }
}
