//! NR — the no-reclamation baseline (paper §5).
//!
//! Detached nodes are counted as garbage and **leaked**. This is the
//! upper-bound baseline for throughput (no reclamation work at all) and the
//! lower bound for memory (garbage grows monotonically).

#![warn(missing_docs)]

use smr_common::{counters, GuardedScheme, SchemeGuard, Shared};

/// Marker type wiring NR into the [`GuardedScheme`] interface.
pub struct Nr;

/// The NR "guard": protection is vacuous because nothing is ever freed.
#[derive(Default)]
pub struct NrGuard;

impl SchemeGuard for NrGuard {
    unsafe fn defer_destroy<T>(&self, ptr: Shared<T>) {
        debug_assert!(!ptr.is_null());
        counters::incr_garbage(1);
        // Intentionally leaked.
    }

    fn refresh(&mut self) {}
}

impl GuardedScheme for Nr {
    type Handle = ();
    type Guard<'a> = NrGuard;

    fn handle() -> Self::Handle {}

    fn pin(_handle: &mut Self::Handle) -> NrGuard {
        NrGuard
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defer_destroy_leaks_and_counts() {
        let before = counters::total_retired();
        let g = Nr::pin(&mut ());
        unsafe { g.defer_destroy(Shared::from_owned(1u64)) };
        assert_eq!(counters::total_retired(), before + 1);
        assert!(g.validate());
    }
}
