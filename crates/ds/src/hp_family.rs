//! Abstraction over the two hazard-pointer threads (`hp::Thread`,
//! `hp_plus::Thread`).
//!
//! HP++ is an *extension* of HP (paper §4.2): an HP++ thread can retire with
//! the original over-approximating strategy. Structures whose traversal is
//! inherently careful (the skiplist's multi-level find) are written once
//! against this trait and instantiated for both schemes — the HP++
//! instantiation is the paper's "hybrid" mode.

use hp::HazardPointer;

/// A per-thread hazard-pointer context: slot acquisition plus plain
/// (over-approximation-validated) retirement.
pub trait HpFamily: Send + 'static {
    /// Registers the current thread with the scheme's default domain.
    fn register() -> Self;

    /// Acquires a hazard pointer.
    fn hazard_pointer(&mut self) -> HazardPointer;

    /// Retires a node protected by validated hazard pointers.
    ///
    /// # Safety
    /// Same contract as [`hp::Thread::retire`].
    unsafe fn retire<T>(&mut self, ptr: *mut T);
}

impl HpFamily for hp::Thread {
    fn register() -> Self {
        hp::default_domain().register()
    }

    fn hazard_pointer(&mut self) -> HazardPointer {
        hp::Thread::hazard_pointer(self)
    }

    unsafe fn retire<T>(&mut self, ptr: *mut T) {
        hp::Thread::retire(self, ptr)
    }
}

impl HpFamily for hp_plus::Thread {
    fn register() -> Self {
        hp_plus::default_domain().register()
    }

    fn hazard_pointer(&mut self) -> HazardPointer {
        hp_plus::Thread::hazard_pointer(self)
    }

    unsafe fn retire<T>(&mut self, ptr: *mut T) {
        hp_plus::Thread::retire(self, ptr)
    }
}
