//! Edge-case batteries shared across flavors: empty maps, boundary keys,
//! non-trivial value types, and exactly-once destruction.

use std::sync::atomic::{AtomicUsize, Ordering::Relaxed};

use smr_common::ConcurrentMap;

fn empty_map_behaviour<M: ConcurrentMap<u64, u64>>() {
    let m = M::new();
    let mut h = m.handle();
    assert_eq!(m.get(&mut h, &0), None);
    assert_eq!(m.remove(&mut h, &0), None);
    assert_eq!(m.get(&mut h, &u64::MAX), None);
    assert_eq!(m.remove(&mut h, &u64::MAX), None);
}

fn boundary_keys<M: ConcurrentMap<u64, u64>>() {
    let m = M::new();
    let mut h = m.handle();
    for k in [0, 1, u64::MAX - 1, u64::MAX] {
        assert!(m.insert(&mut h, k, !k));
        assert!(!m.insert(&mut h, k, 0), "duplicate {k} accepted");
    }
    for k in [0, 1, u64::MAX - 1, u64::MAX] {
        assert_eq!(m.get(&mut h, &k), Some(!k));
    }
    assert_eq!(m.remove(&mut h, &0), Some(!0));
    assert_eq!(m.remove(&mut h, &u64::MAX), Some(0));
    assert_eq!(m.get(&mut h, &0), None);
    assert_eq!(m.get(&mut h, &1), Some(!1));
}

fn string_values<M: ConcurrentMap<u64, String>>() {
    let m = M::new();
    let mut h = m.handle();
    for k in 0..64u64 {
        assert!(m.insert(&mut h, k, format!("value-{k}")));
    }
    for k in 0..64u64 {
        assert_eq!(m.get(&mut h, &k).as_deref(), Some(format!("value-{k}").as_str()));
    }
    for k in (0..64u64).step_by(2) {
        assert_eq!(m.remove(&mut h, &k), Some(format!("value-{k}")));
    }
    for k in 0..64u64 {
        let expect = (k % 2 == 1).then(|| format!("value-{k}"));
        assert_eq!(m.get(&mut h, &k), expect);
    }
}

macro_rules! edge_battery {
    ($name:ident, $map:ident) => {
        mod $name {
            use super::*;

            #[test]
            fn empty() {
                empty_map_behaviour::<$map<u64, u64>>();
            }

            #[test]
            fn boundaries() {
                boundary_keys::<$map<u64, u64>>();
            }

            #[test]
            fn strings() {
                string_values::<$map<u64, String>>();
            }
        }
    };
}

type GuardedHM<K, V> = crate::guarded::HMList<K, V, ebr::Ebr>;
type GuardedSkip<K, V> = crate::guarded::SkipList<K, V, ebr::Ebr>;
type GuardedBonsai<K, V> = crate::guarded::BonsaiTree<K, V, pebr::Pebr>;
type HpHM<K, V> = crate::hp::HMList<K, V>;
type HpEfrb<K, V> = crate::hp::EFRBTree<K, V>;
type HppHHS<K, V> = crate::hpp::HHSList<K, V>;
type HppNM<K, V> = crate::hpp::NMTree<K, V>;
type HppHash<K, V> = crate::hpp::HashMap<K, V>;
type RcHM<K, V> = crate::cdrc::HMList<K, V>;

edge_battery!(guarded_hmlist, GuardedHM);
edge_battery!(guarded_skiplist, GuardedSkip);
edge_battery!(guarded_bonsai, GuardedBonsai);
edge_battery!(hp_hmlist, HpHM);
edge_battery!(hp_efrbtree, HpEfrb);
edge_battery!(hpp_hhslist, HppHHS);
edge_battery!(hpp_nmtree, HppNM);
edge_battery!(hpp_hashmap, HppHash);
edge_battery!(rc_hmlist, RcHM);

/// Dropping a populated map must destroy every remaining value exactly once
/// (no leaks of reachable nodes, no double frees).
#[test]
fn drop_destroys_contents_exactly_once() {
    static DROPS: AtomicUsize = AtomicUsize::new(0);

    #[derive(Clone)]
    struct Counted(#[allow(dead_code)] u64);
    impl Drop for Counted {
        fn drop(&mut self) {
            DROPS.fetch_add(1, Relaxed);
        }
    }

    fn run<M: ConcurrentMap<u64, Counted>>(n: u64) {
        let before = DROPS.load(Relaxed);
        {
            let m = M::new();
            let mut h = m.handle();
            for k in 0..n {
                assert!(m.insert(&mut h, k, Counted(k)));
            }
        }
        let dropped = DROPS.load(Relaxed) - before;
        // Clone-on-get and clone-on-build may add copies, but at least one
        // drop per inserted value must have happened, and drops of the
        // *stored* values happen exactly once at teardown: for insert-only
        // histories the count is exactly n (+ n transient clones for the
        // structures that clone values while path-copying).
        assert!(
            dropped >= n as usize,
            "leaked values: expected >= {n}, got {dropped}"
        );
    }

    run::<crate::guarded::HMList<u64, Counted, ebr::Ebr>>(128);
    run::<crate::hp::HMList<u64, Counted>>(128);
    run::<crate::hpp::HHSList<u64, Counted>>(128);
    run::<crate::guarded::SkipList<u64, Counted, ebr::Ebr>>(128);
    run::<crate::hpp::NMTree<u64, Counted>>(128);
    run::<crate::hp::EFRBTree<u64, Counted>>(128);
}
