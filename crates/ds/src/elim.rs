//! Pairwise elimination array for stack-shaped structures.
//!
//! A concurrent push and pop cancel out: the pop can take the push's value
//! directly and neither needs to touch the stack head (Hendler, Shavit &
//! Yerushalmi 2004). Under write storms this diverts colliding operations
//! away from the single hot cache line that makes Treiber stacks collapse.
//!
//! The exchanger trades raw node pointers through an array of
//! cache-padded slots. Each slot is one machine word:
//!
//! * `EMPTY` (0) — free;
//! * a node pointer — a push is waiting with that node;
//! * `MATCHED` (1) — a pop took the waiting node; the pusher acknowledges
//!   by resetting the slot to `EMPTY`.
//!
//! Ownership transfer is a single CAS (`ptr → MATCHED`, acquire/release
//! paired with the pusher's release install), after which the node belongs
//! exclusively to the popper — it was never reachable from the structure,
//! so it is freed directly with no SMR retirement. The apparent ABA (a
//! popper CASing a pointer it loaded a moment ago) is benign: the CAS only
//! succeeds if the slot *currently* holds a waiting pointer, and taking
//! any waiting pusher's node is a valid exchange with that pusher.
//!
//! `SMR_ELIM_SLOTS` overrides the slot count (default 4, capped at 64).

use std::marker::PhantomData;
use std::sync::atomic::{AtomicUsize, Ordering};

use smr_common::{Backoff, CachePadded};

const EMPTY: usize = 0;
const MATCHED: usize = 1;

/// How many steps a waiting pusher gives a partner before cancelling. The
/// first couple are spin hints; the rest are `yield_now` so that on an
/// oversubscribed (or single-core) host a descheduled popper actually gets
/// scheduled while the offer is visible.
const PUSH_PATIENCE: u32 = 8;
/// Patience steps that spin instead of yielding.
const PUSH_SPIN_STEPS: u32 = 2;

fn slot_count() -> usize {
    smr_common::env::parse_usize("SMR_ELIM_SLOTS")
        .filter(|&n| n >= 1)
        .unwrap_or(4)
        .min(64)
}

/// An array of single-word exchange slots trading `*mut N`.
pub(crate) struct ExchangerArray<N> {
    slots: Box<[CachePadded<AtomicUsize>]>,
    _marker: PhantomData<*mut N>,
}

unsafe impl<N> Send for ExchangerArray<N> {}
unsafe impl<N> Sync for ExchangerArray<N> {}

impl<N> ExchangerArray<N> {
    pub(crate) fn new() -> Self {
        let n = slot_count();
        let slots = (0..n)
            .map(|_| CachePadded::new(AtomicUsize::new(EMPTY)))
            .collect::<Vec<_>>()
            .into_boxed_slice();
        Self {
            slots,
            _marker: PhantomData,
        }
    }

    fn pick(&self, backoff: &mut Backoff) -> &AtomicUsize {
        let i = (backoff.jitter_u64() as usize) % self.slots.len();
        &self.slots[i]
    }

    /// Offers `node` for elimination. Returns `true` if a pop took it (the
    /// caller must not touch `node` again); `false` if no partner arrived
    /// (the caller still owns `node` and should retry on the stack).
    ///
    /// # Safety
    /// `node` must be a live, exclusively-owned heap pointer; on `true` its
    /// ownership transfers to the matching [`try_pop`](Self::try_pop).
    pub(crate) unsafe fn try_push(&self, node: *mut N, backoff: &mut Backoff) -> bool {
        let slot = self.pick(backoff);
        // Install with release so the popper's acquire CAS sees the node's
        // contents.
        if slot
            .compare_exchange(EMPTY, node as usize, Ordering::Release, Ordering::Relaxed)
            .is_err()
        {
            // Busy slot: this collision itself suggests a partner storm;
            // let the caller retry (stack first, elimination again later).
            return false;
        }
        let mut wait = Backoff::with_config(
            smr_common::backoff::BackoffConfig::default(),
            backoff.jitter_u64(),
        );
        for step in 0..PUSH_PATIENCE {
            if slot.load(Ordering::Acquire) == MATCHED {
                slot.store(EMPTY, Ordering::Release);
                return true;
            }
            if step < PUSH_SPIN_STEPS {
                wait.spin();
            } else {
                std::thread::yield_now();
            }
        }
        // Cancel. A failed cancel means a pop matched us concurrently.
        match slot.compare_exchange(node as usize, EMPTY, Ordering::AcqRel, Ordering::Acquire) {
            Ok(_) => false,
            Err(state) => {
                debug_assert_eq!(state, MATCHED);
                slot.store(EMPTY, Ordering::Release);
                true
            }
        }
    }

    /// Tries to take a waiting pusher's node. On `Some`, the returned node
    /// is exclusively owned by the caller (never reached the structure, so
    /// no SMR retirement is needed).
    ///
    /// Scans the whole (small) array from a random start so a waiting offer
    /// anywhere is found — single-slot probing almost never collides when
    /// the pusher's patience window is short.
    pub(crate) fn try_pop(&self, backoff: &mut Backoff) -> Option<*mut N> {
        let n = self.slots.len();
        let start = (backoff.jitter_u64() as usize) % n;
        for i in 0..n {
            let slot: &AtomicUsize = &self.slots[(start + i) % n];
            let state = slot.load(Ordering::Acquire);
            if state == EMPTY || state == MATCHED {
                continue;
            }
            // Acquire pairs with the pusher's release install; on success
            // the node and its contents are ours.
            if slot
                .compare_exchange(state, MATCHED, Ordering::AcqRel, Ordering::Acquire)
                .is_ok()
            {
                return Some(state as *mut N);
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicBool;

    #[test]
    fn pairwise_exchange_hands_over_the_node() {
        let ex: ExchangerArray<u64> = ExchangerArray::new();
        let done = AtomicBool::new(false);
        std::thread::scope(|s| {
            let ex = &ex;
            let done = &done;
            s.spawn(move || {
                let mut bo = Backoff::with_config(Default::default(), 1);
                loop {
                    let node = Box::into_raw(Box::new(42u64));
                    if unsafe { ex.try_push(node, &mut bo) } {
                        return; // popper owns it now
                    }
                    drop(unsafe { Box::from_raw(node) });
                    if done.load(Ordering::Relaxed) {
                        return;
                    }
                    bo.snooze();
                }
            });
            s.spawn(move || {
                let mut bo = Backoff::with_config(Default::default(), 2);
                loop {
                    if let Some(node) = ex.try_pop(&mut bo) {
                        let v = unsafe { Box::from_raw(node) };
                        assert_eq!(*v, 42);
                        done.store(true, Ordering::Relaxed);
                        return;
                    }
                    bo.snooze();
                }
            });
        });
        assert!(done.load(Ordering::Relaxed));
    }

    #[test]
    fn cancelled_push_keeps_ownership() {
        let ex: ExchangerArray<u64> = ExchangerArray::new();
        let mut bo = Backoff::with_config(Default::default(), 3);
        let node = Box::into_raw(Box::new(7u64));
        // No popper anywhere: the offer must come back.
        assert!(!unsafe { ex.try_push(node, &mut bo) });
        let v = unsafe { Box::from_raw(node) };
        assert_eq!(*v, 7);
        // And the slot is clean for the next round.
        assert!(ex.try_pop(&mut bo).is_none());
    }

    #[test]
    fn many_exchanges_never_lose_or_duplicate() {
        const N: u64 = 2_000;
        let ex: ExchangerArray<u64> = ExchangerArray::new();
        let sum = AtomicUsize::new(0);
        std::thread::scope(|s| {
            let ex = &ex;
            s.spawn(move || {
                let mut bo = Backoff::with_config(Default::default(), 10);
                for i in 1..=N {
                    loop {
                        let node = Box::into_raw(Box::new(i));
                        if unsafe { ex.try_push(node, &mut bo) } {
                            break;
                        }
                        drop(unsafe { Box::from_raw(node) });
                        bo.snooze();
                    }
                    bo.reset();
                }
            });
            let sum = &sum;
            s.spawn(move || {
                let mut bo = Backoff::with_config(Default::default(), 11);
                let mut got = 0u64;
                while got < N {
                    if let Some(node) = ex.try_pop(&mut bo) {
                        let v = unsafe { Box::from_raw(node) };
                        sum.fetch_add(*v as usize, Ordering::Relaxed);
                        got += 1;
                        bo.reset();
                    } else {
                        bo.snooze();
                    }
                }
            });
        });
        assert_eq!(sum.load(Ordering::Relaxed) as u64, N * (N + 1) / 2);
    }
}
