//! Shared test batteries for every `ConcurrentMap` implementation.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, Ordering::Relaxed};

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use smr_common::ConcurrentMap;

/// Random single-threaded trace cross-checked against a `BTreeMap`.
pub fn check_sequential<M: ConcurrentMap<u64, u64>>() {
    let m = M::new();
    let mut h = m.handle();
    let mut model: BTreeMap<u64, u64> = BTreeMap::new();
    let mut rng = SmallRng::seed_from_u64(0xC0FFEE);

    for i in 0..4000u64 {
        let key = rng.gen_range(0..64);
        match rng.gen_range(0..3) {
            0 => {
                let expected = !model.contains_key(&key);
                let got = m.insert(&mut h, key, i);
                assert_eq!(got, expected, "insert({key}) mismatch at step {i}");
                if expected {
                    model.insert(key, i);
                }
            }
            1 => {
                let expected = model.remove(&key);
                let got = m.remove(&mut h, &key);
                assert_eq!(got, expected, "remove({key}) mismatch at step {i}");
            }
            _ => {
                let expected = model.get(&key).copied();
                let got = m.get(&mut h, &key);
                assert_eq!(got, expected, "get({key}) mismatch at step {i}");
            }
        }
    }
    // Final sweep.
    for key in 0..64 {
        assert_eq!(m.get(&mut h, &key), model.get(&key).copied());
    }
}

/// Multi-threaded stress with per-key accounting.
///
/// Threads hammer a small key range with random inserts/removes/gets. Every
/// successful insert/remove updates a per-key net counter; when the dust
/// settles, each key's net count must be 0 or 1 and must match the final
/// map contents — any lost update, double free observable as a wrong value,
/// or resurrected node breaks the balance.
pub fn check_concurrent<M>(threads: usize, ops_per_thread: usize)
where
    M: ConcurrentMap<u64, u64> + Send + Sync,
{
    const KEYS: usize = 64;
    let m = M::new();
    let net: Vec<AtomicI64> = (0..KEYS).map(|_| AtomicI64::new(0)).collect();

    std::thread::scope(|s| {
        for tid in 0..threads {
            let m = &m;
            let net = &net;
            s.spawn(move || {
                let mut h = m.handle();
                let mut rng = SmallRng::seed_from_u64(tid as u64);
                for i in 0..ops_per_thread {
                    let key = rng.gen_range(0..KEYS as u64);
                    match rng.gen_range(0..3) {
                        0 => {
                            // Value encodes the key so torn reads are visible.
                            if m.insert(&mut h, key, key * 1000) {
                                net[key as usize].fetch_add(1, Relaxed);
                            }
                        }
                        1 => {
                            if let Some(v) = m.remove(&mut h, &key) {
                                assert_eq!(v, key * 1000, "corrupt value for {key}");
                                net[key as usize].fetch_sub(1, Relaxed);
                            }
                        }
                        _ => {
                            if let Some(v) = m.get(&mut h, &key) {
                                assert_eq!(v, key * 1000, "corrupt value for {key}");
                            }
                        }
                    }
                    let _ = i;
                }
            });
        }
    });

    let mut h = m.handle();
    for key in 0..KEYS as u64 {
        let n = net[key as usize].load(Relaxed);
        assert!(
            n == 0 || n == 1,
            "key {key}: net insert count {n} out of range"
        );
        let present = m.get(&mut h, &key).is_some();
        assert_eq!(
            present,
            n == 1,
            "key {key}: presence {present} disagrees with net count {n}"
        );
    }
}

/// Heavier mixed workload used by a few spot tests: disjoint stripes per
/// thread, so the final contents are exactly predictable.
pub fn check_striped<M>(threads: usize, keys_per_thread: u64)
where
    M: ConcurrentMap<u64, u64> + Send + Sync,
{
    let m = M::new();
    std::thread::scope(|s| {
        for tid in 0..threads as u64 {
            let m = &m;
            s.spawn(move || {
                let mut h = m.handle();
                let base = tid * keys_per_thread;
                // Insert everything, remove odd keys, re-check.
                for k in base..base + keys_per_thread {
                    assert!(m.insert(&mut h, k, k + 7));
                }
                for k in (base..base + keys_per_thread).filter(|k| k % 2 == 1) {
                    assert_eq!(m.remove(&mut h, &k), Some(k + 7));
                }
                for k in base..base + keys_per_thread {
                    let expected = if k % 2 == 0 { Some(k + 7) } else { None };
                    assert_eq!(m.get(&mut h, &k), expected, "stripe check key {k}");
                }
            });
        }
    });
}
