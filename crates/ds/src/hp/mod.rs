//! Data structures protected by the original hazard pointers.
//!
//! These use the *careful* traversal of §2.2: each step announces a hazard
//! pointer and validates it by re-reading the source link — a protection
//! that fails whenever the source node is marked or changed, which is a
//! sound over-approximation of "the target may be retired". Structures that
//! need optimistic traversal (HHSList, NMTree) have **no** implementation
//! here; that inapplicability is the paper's starting point.

// hash_map is the generic chaining map at crate root
mod bonsai;
mod hm_list;
mod queue;
mod stack;
pub(crate) mod efrb_tree;
pub(crate) mod skip_list;

/// Chaining hash map over HP HMList buckets (paper §5).
pub type HashMap<K, V> = crate::hash_map::HashMap<K, V, HMList<K, V>>;
pub use bonsai::{BonsaiTree, Handle as BonsaiHandle};
pub use hm_list::{Handle as HMListHandle, HMList};
pub use queue::{MSQueue, QueueHandle};
pub use stack::{ElimStack, StackHandle, TreiberStack};

/// Skiplist protected by the original HP (careful, restarting traversal).
pub type SkipList<K, V> = skip_list::SkipList<K, V, ::hp::Thread>;
pub use skip_list::Handle as SkipListHandle;

/// Ellen et al. tree protected by the original HP.
pub type EFRBTree<K, V> = efrb_tree::EFRBTree<K, V, ::hp::Thread>;
pub use efrb_tree::Handle as EFRBTreeHandle;
