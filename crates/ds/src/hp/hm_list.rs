//! Harris–Michael list with original hazard pointers (paper Fig. 3).

use std::sync::atomic::Ordering::{AcqRel, Acquire, Relaxed};

use hp::HazardPointer;
use smr_common::tagged::TAG_DELETED;
use smr_common::{Atomic, Backoff, ConcurrentMap, Shared};

pub(crate) struct Node<K, V> {
    pub(crate) next: Atomic<Node<K, V>>,
    pub(crate) key: K,
    pub(crate) value: V,
}

/// Per-thread state: HP registration plus the two hand-over-hand hazard
/// pointers of Fig. 3.
pub struct Handle {
    pub(crate) thread: hp::Thread,
    pub(crate) hp_prev: HazardPointer,
    pub(crate) hp_cur: HazardPointer,
}

impl Handle {
    /// Registers with the default HP domain.
    pub fn new() -> Self {
        let mut thread = hp::default_domain().register();
        let hp_prev = thread.hazard_pointer();
        let hp_cur = thread.hazard_pointer();
        Self {
            thread,
            hp_prev,
            hp_cur,
        }
    }
}

impl Default for Handle {
    fn default() -> Self {
        Self::new()
    }
}

/// Harris–Michael list protected by the original HP.
pub struct HMList<K, V> {
    head: Atomic<Node<K, V>>,
}

unsafe impl<K: Send + Sync, V: Send + Sync> Send for HMList<K, V> {}
unsafe impl<K: Send + Sync, V: Send + Sync> Sync for HMList<K, V> {}

struct FindResult<K, V> {
    found: bool,
    prev: *const Atomic<Node<K, V>>,
    cur: Shared<Node<K, V>>,
}

impl<K, V> HMList<K, V>
where
    K: Ord,
{
    /// Creates an empty list.
    pub fn new() -> Self {
        Self {
            head: Atomic::null(),
        }
    }

    /// Fig. 3's traversal: protect `cur`, validate that `prev_link` still
    /// holds exactly `cur` (which simultaneously checks "prev not marked"
    /// and "cur not unlinked"), restart from head on failure.
    fn find(&self, key: &K, handle: &mut Handle) -> FindResult<K, V> {
        'retry: loop {
            let mut prev: *const Atomic<Node<K, V>> = &self.head;
            let mut cur = unsafe { &*prev }.load(Acquire);
            loop {
                if cur.is_null() {
                    return FindResult {
                        found: false,
                        prev,
                        cur,
                    };
                }
                // Announce + validate (over-approximating unreachability).
                if handle
                    .hp_cur
                    .try_protect(cur.with_tag(0), unsafe { &*prev })
                    .is_err()
                {
                    continue 'retry;
                }
                let cur_node = unsafe { cur.deref() };
                let next = cur_node.next.load(Acquire);
                if next.tag() & TAG_DELETED != 0 {
                    let next_clean = next.with_tag(0);
                    match unsafe { &*prev }.compare_exchange(cur, next_clean, AcqRel, Acquire) {
                        Ok(_) => {
                            unsafe { handle.thread.retire(cur.as_raw()) };
                            cur = next_clean;
                            continue;
                        }
                        Err(_) => continue 'retry,
                    }
                }
                match cur_node.key.cmp(key) {
                    std::cmp::Ordering::Less => {
                        prev = &cur_node.next;
                        HazardPointer::swap(&mut handle.hp_prev, &mut handle.hp_cur);
                        cur = next;
                    }
                    std::cmp::Ordering::Equal => {
                        return FindResult {
                            found: true,
                            prev,
                            cur,
                        }
                    }
                    std::cmp::Ordering::Greater => {
                        return FindResult {
                            found: false,
                            prev,
                            cur,
                        }
                    }
                }
            }
        }
    }

    pub(crate) fn get_impl(&self, handle: &mut Handle, key: &K) -> Option<V>
    where
        V: Clone,
    {
        let r = self.find(key, handle);
        let out = if r.found {
            Some(unsafe { r.cur.deref() }.value.clone())
        } else {
            None
        };
        handle.hp_cur.reset();
        handle.hp_prev.reset();
        out
    }

    pub(crate) fn insert_impl(&self, handle: &mut Handle, key: K, value: V) -> bool {
        let mut node = Box::new(Node {
            next: Atomic::null(),
            key,
            value,
        });
        let mut backoff = Backoff::new();
        let out = loop {
            let r = self.find(&node.key, handle);
            if r.found {
                break false;
            }
            node.next.store_mut(r.cur);
            let new = Shared::from_raw(Box::into_raw(node));
            match unsafe { &*r.prev }.compare_exchange(r.cur, new, AcqRel, Acquire) {
                Ok(_) => break true,
                Err(_) => {
                    node = unsafe { Box::from_raw(new.as_raw()) };
                    backoff.cas_failed();
                }
            }
        };
        handle.hp_cur.reset();
        handle.hp_prev.reset();
        out
    }

    pub(crate) fn remove_impl(&self, handle: &mut Handle, key: &K) -> Option<V>
    where
        V: Clone,
    {
        let mut backoff = Backoff::new();
        let out = loop {
            let r = self.find(key, handle);
            if !r.found {
                break None;
            }
            let cur_node = unsafe { r.cur.deref() };
            let next = cur_node.next.fetch_or_tag(TAG_DELETED, AcqRel);
            if next.tag() & TAG_DELETED != 0 {
                backoff.cas_failed();
                continue;
            }
            let value = cur_node.value.clone();
            if unsafe { &*r.prev }
                .compare_exchange(r.cur, next.with_tag(0), AcqRel, Acquire)
                .is_ok()
            {
                unsafe { handle.thread.retire(r.cur.as_raw()) };
            }
            break Some(value);
        };
        handle.hp_cur.reset();
        handle.hp_prev.reset();
        out
    }
}

impl<K: Ord, V> Default for HMList<K, V> {
    fn default() -> Self {
        Self::new()
    }
}

impl<K, V> Drop for HMList<K, V> {
    fn drop(&mut self) {
        let mut cur = self.head.load_mut();
        while !cur.is_null() {
            let boxed = unsafe { Box::from_raw(cur.with_tag(0).as_raw()) };
            cur = boxed.next.load(Relaxed).with_tag(0);
        }
    }
}

impl<K, V> ConcurrentMap<K, V> for HMList<K, V>
where
    K: Ord + Send + Sync,
    V: Clone + Send + Sync,
{
    type Handle = Handle;

    fn new() -> Self {
        HMList::new()
    }

    fn handle(&self) -> Handle {
        Handle::new()
    }

    fn get(&self, handle: &mut Handle, key: &K) -> Option<V> {
        self.get_impl(handle, key)
    }

    fn insert(&self, handle: &mut Handle, key: K, value: V) -> bool {
        self.insert_impl(handle, key, value)
    }

    fn remove(&self, handle: &mut Handle, key: &K) -> Option<V> {
        self.remove_impl(handle, key)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_utils;

    #[test]
    fn sequential_semantics() {
        test_utils::check_sequential::<HMList<u64, u64>>();
    }

    #[test]
    fn concurrent_stress() {
        test_utils::check_concurrent::<HMList<u64, u64>>(8, 512);
    }

    #[test]
    fn striped() {
        test_utils::check_striped::<HMList<u64, u64>>(4, 64);
    }

    #[test]
    fn heavy_churn_reclaims_memory() {
        // Insert/remove churn far beyond the reclamation threshold; the
        // global garbage level must stay bounded (robustness of HP).
        let m: HMList<u64, u64> = HMList::new();
        let mut h = ConcurrentMap::handle(&m);
        let before = smr_common::counters::garbage_now();
        for round in 0..200u64 {
            for k in 0..10 {
                ConcurrentMap::insert(&m, &mut h, k, round);
            }
            for k in 0..10 {
                ConcurrentMap::remove(&m, &mut h, &k);
            }
        }
        let after = smr_common::counters::garbage_now();
        assert!(
            after.saturating_sub(before) < 2 * hp::RECLAIM_THRESHOLD as u64 + 64,
            "garbage grew unboundedly: {before} -> {after}"
        );
    }
}
