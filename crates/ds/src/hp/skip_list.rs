//! Herlihy–Shavit skiplist with hazard-pointer protection.
//!
//! Careful traversal at every level: each step announces a hazard pointer
//! and validates it against the predecessor's link, restarting on any
//! change (the paper's "restarting get" — HP cannot skip marked nodes).
//! Written over [`HpFamily`] so both HP and HP++ (hybrid mode, §4.2)
//! instantiate it.

use std::marker::PhantomData;
use std::sync::atomic::Ordering::{AcqRel, Acquire, Relaxed};

use hp::HazardPointer;
use rand::{rngs::SmallRng, Rng, SeedableRng};
use smr_common::tagged::TAG_DELETED;
use smr_common::{Atomic, Backoff, ConcurrentMap, Shared};

use crate::hp_family::HpFamily;

pub use crate::guarded::MAX_HEIGHT;

pub(crate) struct Node<K, V> {
    next: [Atomic<Node<K, V>>; MAX_HEIGHT],
    key: K,
    value: V,
    height: usize,
}

fn random_height(rng: &mut SmallRng) -> usize {
    let bits: u32 = rng.gen();
    ((bits.trailing_ones() as usize) + 1).min(MAX_HEIGHT)
}

thread_local! {
    static HEIGHT_RNG: std::cell::RefCell<SmallRng> =
        std::cell::RefCell::new(SmallRng::from_entropy());
}

/// Per-thread state: the scheme thread plus per-level pred/succ hazard
/// pointers and one slot for a node being inserted.
pub struct Handle<T: HpFamily> {
    thread: T,
    hp_preds: Vec<HazardPointer>,
    hp_succs: Vec<HazardPointer>,
    hp_new: HazardPointer,
}

impl<T: HpFamily> Handle<T> {
    fn new() -> Self {
        let mut thread = T::register();
        let hp_preds = (0..MAX_HEIGHT).map(|_| thread.hazard_pointer()).collect();
        let hp_succs = (0..MAX_HEIGHT).map(|_| thread.hazard_pointer()).collect();
        let hp_new = thread.hazard_pointer();
        Self {
            thread,
            hp_preds,
            hp_succs,
            hp_new,
        }
    }
}

/// Lock-free skiplist protected by hazard pointers.
pub struct SkipList<K, V, T> {
    head: [Atomic<Node<K, V>>; MAX_HEIGHT],
    _marker: PhantomData<T>,
}

unsafe impl<K: Send + Sync, V: Send + Sync, T> Send for SkipList<K, V, T> {}
unsafe impl<K: Send + Sync, V: Send + Sync, T> Sync for SkipList<K, V, T> {}

struct FindResult<K, V> {
    found: Option<Shared<Node<K, V>>>,
    preds: [*const Atomic<Node<K, V>>; MAX_HEIGHT],
    succs: [Shared<Node<K, V>>; MAX_HEIGHT],
}

impl<K, V, T> SkipList<K, V, T>
where
    K: Ord,
    T: HpFamily,
{
    /// Creates an empty skiplist.
    pub fn new() -> Self {
        Self {
            head: [(); MAX_HEIGHT].map(|_| Atomic::null()),
            _marker: PhantomData,
        }
    }

    /// Careful multi-level find. Every protection is validated against the
    /// predecessor's link; any mismatch restarts the whole search.
    fn find(&self, key: &K, handle: &mut Handle<T>) -> FindResult<K, V> {
        'retry: loop {
            let mut result = FindResult {
                found: None,
                preds: [std::ptr::null(); MAX_HEIGHT],
                succs: [Shared::null(); MAX_HEIGHT],
            };
            let mut pred_tower: *const [Atomic<Node<K, V>>; MAX_HEIGHT] = &self.head;
            let mut pred_node: Shared<Node<K, V>> = Shared::null();
            let mut level = MAX_HEIGHT;
            while level > 0 {
                level -= 1;
                // The pred is either head or a node protected at the level
                // above; duplicate the protection into this level's slot
                // (announcing an already-protected pointer needs no
                // validation).
                if !pred_node.is_null() {
                    handle.hp_preds[level].protect_raw(pred_node.as_raw());
                }
                let mut cur = unsafe { &(*pred_tower)[level] }.load(Acquire);
                loop {
                    if cur.is_null() {
                        break;
                    }
                    // Validate: pred's link must still hold exactly cur.
                    if handle.hp_succs[level]
                        .try_protect(cur.with_tag(0), unsafe { &(*pred_tower)[level] })
                        .is_err()
                    {
                        continue 'retry;
                    }
                    let node = unsafe { cur.deref() };
                    let next = node.next[level].load(Acquire);
                    if next.tag() & TAG_DELETED != 0 {
                        let next_clean = next.with_tag(0);
                        match unsafe { &(*pred_tower)[level] }.compare_exchange(
                            cur,
                            next_clean,
                            AcqRel,
                            Acquire,
                        ) {
                            Ok(_) => {
                                cur = next_clean;
                                continue;
                            }
                            Err(_) => continue 'retry,
                        }
                    }
                    if node.key < *key {
                        pred_tower = &node.next;
                        pred_node = cur;
                        HazardPointer::swap(
                            &mut handle.hp_preds[level],
                            &mut handle.hp_succs[level],
                        );
                        cur = next.with_tag(0);
                    } else {
                        break;
                    }
                }
                result.preds[level] = unsafe { &(*pred_tower)[level] };
                result.succs[level] = cur;
            }
            let bottom = result.succs[0];
            if !bottom.is_null() && unsafe { bottom.deref() }.key == *key {
                result.found = Some(bottom);
            }
            return result;
        }
    }

    pub(crate) fn get_impl(&self, handle: &mut Handle<T>, key: &K) -> Option<V>
    where
        V: Clone,
    {
        let r = self.find(key, handle);
        r.found.map(|f| unsafe { f.deref() }.value.clone())
    }

    pub(crate) fn insert_impl(&self, handle: &mut Handle<T>, key: K, value: V) -> bool {
        let height = HEIGHT_RNG.with(|r| random_height(&mut r.borrow_mut()));
        let node = Box::into_raw(Box::new(Node {
            next: [(); MAX_HEIGHT].map(|_| Atomic::null()),
            key,
            value,
            height,
        }));
        let node_shared = Shared::from_raw(node);
        let node_ref = unsafe { &*node };
        // Protect our own node before it becomes shared: once level 0 links,
        // a concurrent remove may retire it while we build the tower.
        handle.hp_new.protect_raw(node);

        let mut backoff = Backoff::new();
        loop {
            let r = self.find(&node_ref.key, handle);
            if r.found.is_some() {
                handle.hp_new.reset();
                drop(unsafe { Box::from_raw(node) });
                return false;
            }
            for (level, succ) in r.succs.iter().enumerate().take(height) {
                node_ref.next[level].store(*succ, Relaxed);
            }
            match unsafe { &*r.preds[0] }.compare_exchange(
                r.succs[0],
                node_shared,
                AcqRel,
                Acquire,
            ) {
                Ok(_) => break,
                Err(_) => {
                    backoff.cas_failed();
                    continue;
                }
            }
        }

        'levels: for level in 1..height {
            loop {
                let next = node_ref.next[level].load(Acquire);
                if next.tag() & TAG_DELETED != 0 {
                    break 'levels;
                }
                let r = self.find(&node_ref.key, handle);
                match r.found {
                    Some(f) if f == node_shared => {}
                    _ => break 'levels,
                }
                if r.succs[level] != next
                    && node_ref.next[level]
                        .compare_exchange(next, r.succs[level], AcqRel, Acquire)
                        .is_err()
                {
                    break 'levels;
                }
                if unsafe { &*r.preds[level] }
                    .compare_exchange(r.succs[level], node_shared, AcqRel, Acquire)
                    .is_ok()
                {
                    continue 'levels;
                }
            }
        }
        handle.hp_new.reset();
        true
    }

    pub(crate) fn remove_impl(&self, handle: &mut Handle<T>, key: &K) -> Option<V>
    where
        V: Clone,
    {
        let mut backoff = Backoff::new();
        loop {
            let r = self.find(key, handle);
            let target = r.found?;
            // target is protected by hp_succs[0] (validated by find).
            let node = unsafe { target.deref() };
            for level in (1..node.height).rev() {
                node.next[level].fetch_or_tag(TAG_DELETED, AcqRel);
            }
            let prev = node.next[0].fetch_or_tag(TAG_DELETED, AcqRel);
            if prev.tag() & TAG_DELETED != 0 {
                backoff.cas_failed();
                continue;
            }
            let value = node.value.clone();
            // Clean pass fully detaches; then retire.
            let _ = self.find(key, handle);
            unsafe { handle.thread.retire(target.as_raw()) };
            return Some(value);
        }
    }
}

impl<K: Ord, V, T: HpFamily> Default for SkipList<K, V, T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<K, V, T> Drop for SkipList<K, V, T> {
    fn drop(&mut self) {
        let mut cur = self.head[0].load_mut();
        while !cur.is_null() {
            let boxed = unsafe { Box::from_raw(cur.with_tag(0).as_raw()) };
            cur = boxed.next[0].load(Relaxed).with_tag(0);
        }
    }
}

impl<K, V, T> ConcurrentMap<K, V> for SkipList<K, V, T>
where
    K: Ord + Send + Sync,
    V: Clone + Send + Sync,
    T: HpFamily,
{
    type Handle = Handle<T>;

    fn new() -> Self {
        SkipList::new()
    }

    fn handle(&self) -> Handle<T> {
        Handle::new()
    }

    fn get(&self, handle: &mut Handle<T>, key: &K) -> Option<V> {
        self.get_impl(handle, key)
    }

    fn insert(&self, handle: &mut Handle<T>, key: K, value: V) -> bool {
        self.insert_impl(handle, key, value)
    }

    fn remove(&self, handle: &mut Handle<T>, key: &K) -> Option<V> {
        self.remove_impl(handle, key)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_utils;

    type HpSkipList = SkipList<u64, u64, hp::Thread>;
    type HppSkipList = SkipList<u64, u64, hp_plus::Thread>;

    #[test]
    fn sequential_semantics_hp() {
        test_utils::check_sequential::<HpSkipList>();
    }

    #[test]
    fn sequential_semantics_hpp_hybrid() {
        test_utils::check_sequential::<HppSkipList>();
    }

    #[test]
    fn concurrent_stress_hp() {
        test_utils::check_concurrent::<HpSkipList>(8, 512);
    }

    #[test]
    fn concurrent_stress_hpp_hybrid() {
        test_utils::check_concurrent::<HppSkipList>(8, 512);
    }

    #[test]
    fn striped_hp() {
        test_utils::check_striped::<HpSkipList>(4, 128);
    }
}
