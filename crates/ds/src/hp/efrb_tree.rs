//! Ellen et al. external BST with hazard-pointer protection.
//!
//! EFRB is one of the few helping-based trees the original HP supports
//! (paper Table 2): every traversal step validates against the parent edge
//! (no marks exist — deletion swings child edges atomically), and
//! descriptors are protected announce-then-revalidate against the `update`
//! word they came from. Since HP++ gains nothing here (no optimistic
//! traversal to enable), the HP++ flavor instantiates this same code over
//! `hp_plus::Thread` — the paper's hybrid mode (§4.2).
//!
//! Reclamation protocol notes (beyond the original GC-assuming algorithm):
//!
//! * A flag-CAS winner retires the descriptor its CAS displaced. Descriptor
//!   pointers in CLEAN words are never dereferenced; they serve as ABA
//!   version numbers, which stay sound because searchers announce them
//!   before re-validating the word.
//! * `help_marked` retires the detached parent/leaf only **after** the
//!   grandparent unflag, so a helper that validated `gp.update == (DFLAG,
//!   op)` after announcing `op.p` is guaranteed its announcement precedes
//!   the retirement.

use std::marker::PhantomData;
use std::sync::atomic::Ordering::{AcqRel, Acquire, Relaxed};

use hp::HazardPointer;
use smr_common::{fence, Atomic, Backoff, ConcurrentMap, Shared};

use crate::guarded::nm_tree::NmKey;
use crate::hp_family::HpFamily;

pub(crate) const CLEAN: usize = 0;
pub(crate) const IFLAG: usize = 1;
pub(crate) const DFLAG: usize = 2;
pub(crate) const MARK: usize = 3;

pub(crate) enum Info<K, V> {
    Insert {
        p: Shared<Node<K, V>>,
        new_internal: Shared<Node<K, V>>,
        l: Shared<Node<K, V>>,
    },
    Delete {
        gp: Shared<Node<K, V>>,
        p: Shared<Node<K, V>>,
        l: Shared<Node<K, V>>,
        pupdate: Shared<Info<K, V>>,
    },
}

pub(crate) struct Node<K, V> {
    pub(crate) key: NmKey<K>,
    pub(crate) value: Option<V>,
    pub(crate) update: Atomic<Info<K, V>>,
    pub(crate) left: Atomic<Node<K, V>>,
    pub(crate) right: Atomic<Node<K, V>>,
}

/// Insert-retry stash: a preallocated internal node and its new leaf,
/// reused across CAS retries instead of reallocating.
type Stash<K, V> = Option<(Box<Node<K, V>>, Shared<Node<K, V>>)>;

impl<K, V> Node<K, V> {
    fn leaf(key: NmKey<K>, value: Option<V>) -> Self {
        Self {
            key,
            value,
            update: Atomic::null(),
            left: Atomic::null(),
            right: Atomic::null(),
        }
    }

    fn is_leaf(&self) -> bool {
        self.left.load(Relaxed).is_null()
    }
}

/// Per-thread state: six hazard pointers (gp, p, l, gp's descriptor, p's
/// descriptor, own descriptor).
pub struct Handle<T: HpFamily> {
    thread: T,
    hp_gp: HazardPointer,
    hp_p: HazardPointer,
    hp_l: HazardPointer,
    hp_gpop: HazardPointer,
    hp_pop: HazardPointer,
    hp_aux: HazardPointer,
}

impl<T: HpFamily> Handle<T> {
    fn new() -> Self {
        let mut thread = T::register();
        Self {
            hp_gp: thread.hazard_pointer(),
            hp_p: thread.hazard_pointer(),
            hp_l: thread.hazard_pointer(),
            hp_gpop: thread.hazard_pointer(),
            hp_pop: thread.hazard_pointer(),
            hp_aux: thread.hazard_pointer(),
            thread,
        }
    }
}

struct SearchResult<K, V> {
    gp: Shared<Node<K, V>>,
    p: Shared<Node<K, V>>,
    l: Shared<Node<K, V>>,
    gpupdate: Shared<Info<K, V>>,
    pupdate: Shared<Info<K, V>>,
}

/// Ellen et al. external BST, hazard-pointer flavor (HP and HP++ hybrid).
pub struct EFRBTree<K, V, T> {
    root: Box<Node<K, V>>,
    _marker: PhantomData<T>,
}

unsafe impl<K: Send + Sync, V: Send + Sync, T> Send for EFRBTree<K, V, T> {}
unsafe impl<K: Send + Sync, V: Send + Sync, T> Sync for EFRBTree<K, V, T> {}

impl<K, V, T> EFRBTree<K, V, T>
where
    K: Ord + Clone,
    V: Clone,
    T: HpFamily,
{
    /// Creates an empty tree.
    pub fn new() -> Self {
        let root = Node {
            key: NmKey::Inf2,
            value: None,
            update: Atomic::null(),
            left: Atomic::new(Node::leaf(NmKey::Inf1, None)),
            right: Atomic::new(Node::leaf(NmKey::Inf2, None)),
        };
        Self {
            root: Box::new(root),
            _marker: PhantomData,
        }
    }

    fn root_shared(&self) -> Shared<Node<K, V>> {
        Shared::from_raw(self.root.as_ref() as *const _ as *mut _)
    }

    /// Protected search. `None` = protection failure, restart.
    fn try_search(&self, key: &NmKey<K>, handle: &mut Handle<T>) -> Option<SearchResult<K, V>> {
        let mut gp = Shared::null();
        let mut p = Shared::null();
        let mut gpupdate: Shared<Info<K, V>> = Shared::null();
        let mut pupdate: Shared<Info<K, V>> = Shared::null();
        let mut l = self.root_shared();

        loop {
            let node = unsafe { l.deref() };
            if node.is_leaf() {
                break;
            }
            // Shift the window: gp ← p ← l.
            gp = p;
            p = l;
            gpupdate = pupdate;
            HazardPointer::swap(&mut handle.hp_gp, &mut handle.hp_p);
            HazardPointer::swap(&mut handle.hp_p, &mut handle.hp_l);
            HazardPointer::swap(&mut handle.hp_gpop, &mut handle.hp_pop);

            // Protect p's descriptor: announce, then re-read the word.
            pupdate = node.update.load(Acquire);
            let op_ptr = pupdate.with_tag(0);
            if !op_ptr.is_null() {
                handle.hp_pop.protect_raw(op_ptr.as_raw());
                fence::light();
                if node.update.load(Acquire) != pupdate {
                    return None;
                }
            } else {
                handle.hp_pop.reset();
            }

            // Protect the child against the edge we read it from.
            let edge = if *key < node.key {
                &node.left
            } else {
                &node.right
            };
            let next = edge.load(Acquire).with_tag(0);
            if !next.is_null() && handle.hp_l.try_protect(next, edge).is_err() {
                return None;
            }
            // Deleting p's leaf child retires the leaf *without* touching
            // p's edge (the physical swing happens at the grandparent), so
            // edge validation alone under-approximates here. p is marked
            // before any of its children can be retired; seeing p unmarked
            // after announcing the child makes the protection sound.
            if node.update.load(Acquire).tag() == MARK {
                return None;
            }
            l = next;
            debug_assert!(!l.is_null(), "external tree: internal nodes have two children");
        }
        Some(SearchResult {
            gp,
            p,
            l,
            gpupdate,
            pupdate,
        })
    }

    fn search(&self, key: &NmKey<K>, handle: &mut Handle<T>) -> SearchResult<K, V> {
        loop {
            if let Some(r) = self.try_search(key, handle) {
                return r;
            }
        }
    }

    fn cas_child(
        &self,
        parent: Shared<Node<K, V>>,
        old: Shared<Node<K, V>>,
        new: Shared<Node<K, V>>,
    ) -> bool {
        let pn = unsafe { parent.deref() };
        let edge = if pn.left.load(Acquire).with_tag(0) == old.with_tag(0) {
            &pn.left
        } else if pn.right.load(Acquire).with_tag(0) == old.with_tag(0) {
            &pn.right
        } else {
            return false;
        };
        edge.compare_exchange(old, new, AcqRel, Acquire).is_ok()
    }

    /// Helps the operation in `u` (must be a validated IFLAG/DFLAG word;
    /// MARK-state descriptors are reached via their gp's DFLAG instead).
    /// `owner` is the protected node whose update word `u` came from.
    fn help(&self, u: Shared<Info<K, V>>, owner: Shared<Node<K, V>>, handle: &mut Handle<T>) {
        match u.tag() {
            IFLAG => self.help_insert(u.with_tag(0)),
            DFLAG => {
                self.help_delete(u.with_tag(0), owner, handle);
            }
            _ => {} // CLEAN: nothing; MARK: completed via the gp's DFLAG
        }
    }

    fn help_insert(&self, op: Shared<Info<K, V>>) {
        let Info::Insert { p, new_internal, l } = (unsafe { op.deref() }) else {
            return;
        };
        self.cas_child(*p, *l, *new_internal);
        let pn = unsafe { p.deref() };
        let _ = pn
            .update
            .compare_exchange(op.with_tag(IFLAG), op.with_tag(CLEAN), AcqRel, Acquire);
    }

    /// `gp_node` must be protected and `op` must have been validated as
    /// `gp_node.update == (DFLAG, op)` after announcing it.
    fn help_delete(
        &self,
        op: Shared<Info<K, V>>,
        gp_node: Shared<Node<K, V>>,
        handle: &mut Handle<T>,
    ) -> bool {
        let Info::Delete { gp, p, pupdate, .. } = (unsafe { op.deref() }) else {
            return false;
        };
        debug_assert!(gp.ptr_eq(gp_node));
        // Protect op.p: announce, then confirm gp is still DFLAGged for op —
        // p is retired only after that flag is cleared.
        let gpn = unsafe { gp_node.deref() };
        handle.hp_aux.protect_raw(p.as_raw());
        fence::light();
        if gpn.update.load(Acquire) != op.with_tag(DFLAG) {
            handle.hp_aux.reset();
            return false; // op already completed (or backtracked)
        }
        let pn = unsafe { p.deref() };
        let mark_ok = match pn
            .update
            .compare_exchange(*pupdate, op.with_tag(MARK), AcqRel, Acquire)
        {
            Ok(_) => {
                let old = pupdate.with_tag(0);
                if !old.is_null() {
                    unsafe { handle.thread.retire(old.as_raw()) };
                }
                true
            }
            Err(cur) => cur == op.with_tag(MARK),
        };
        if mark_ok {
            self.help_marked(op, handle);
            handle.hp_aux.reset();
            true
        } else {
            let _ = gpn.update.compare_exchange(
                op.with_tag(DFLAG),
                op.with_tag(CLEAN),
                AcqRel,
                Acquire,
            );
            handle.hp_aux.reset();
            false
        }
    }

    /// Deleter-grade `help_delete`: the deleter still holds `op.p` in
    /// `hp_p` and `op.gp` in `hp_gp` from its own search, so — unlike a
    /// helper — it can always run the decisive mark-CAS classification
    /// (success / already-marked-for-op / permanently failed), even if
    /// helpers already completed or backtracked the operation. Without
    /// this, a helper finishing the op first would make the deleter
    /// misreport its own successful delete.
    fn help_delete_owner(&self, op: Shared<Info<K, V>>, handle: &mut Handle<T>) -> bool {
        let Info::Delete { gp, p, pupdate, .. } = (unsafe { op.deref() }) else {
            return false;
        };
        let pn = unsafe { p.deref() };
        match pn
            .update
            .compare_exchange(*pupdate, op.with_tag(MARK), AcqRel, Acquire)
        {
            Ok(_) => {
                let old = pupdate.with_tag(0);
                if !old.is_null() {
                    unsafe { handle.thread.retire(old.as_raw()) };
                }
                self.help_marked(op, handle);
                true
            }
            Err(cur) if cur == op.with_tag(MARK) => {
                self.help_marked(op, handle);
                true
            }
            Err(_) => {
                // p.update moved past our expected word: no mark for this
                // op can ever succeed. Back the DFLAG out.
                let gpn = unsafe { gp.deref() };
                let _ = gpn.update.compare_exchange(
                    op.with_tag(DFLAG),
                    op.with_tag(CLEAN),
                    AcqRel,
                    Acquire,
                );
                false
            }
        }
    }

    /// Caller holds `op` announced and `op.p` announced (hp_aux).
    fn help_marked(&self, op: Shared<Info<K, V>>, handle: &mut Handle<T>) {
        let Info::Delete { gp, p, l, .. } = (unsafe { op.deref() }) else {
            return;
        };
        let pn = unsafe { p.deref() };
        let left = pn.left.load(Acquire);
        let sibling = if left.with_tag(0) == l.with_tag(0) {
            pn.right.load(Acquire)
        } else {
            left
        };
        let swung = self.cas_child(*gp, *p, sibling.with_tag(0));
        let gpn = unsafe { gp.deref() };
        let _ = gpn
            .update
            .compare_exchange(op.with_tag(DFLAG), op.with_tag(CLEAN), AcqRel, Acquire);
        if swung {
            // Retire strictly after the unflag (see module docs).
            unsafe {
                handle.thread.retire(p.as_raw());
                handle.thread.retire(l.as_raw());
            }
        }
    }

    pub(crate) fn get_impl(&self, handle: &mut Handle<T>, key: &K) -> Option<V> {
        let key = NmKey::Fin(key.clone());
        let sr = self.search(&key, handle);
        let leaf = unsafe { sr.l.deref() };
        if leaf.key == key {
            leaf.value.clone()
        } else {
            None
        }
    }

    pub(crate) fn insert_impl(&self, handle: &mut Handle<T>, key: K, value: V) -> bool {
        let key = NmKey::Fin(key.clone());
        let mut stash: Stash<K, V> = None;
        let mut backoff = Backoff::new();
        loop {
            let sr = self.search(&key, handle);
            let leaf_node = unsafe { sr.l.deref() };
            if leaf_node.key == key {
                if let Some((internal, new_leaf)) = stash.take() {
                    drop(internal);
                    unsafe { new_leaf.drop_owned() };
                }
                return false;
            }
            if sr.pupdate.tag() != CLEAN {
                self.help(sr.pupdate, sr.p, handle);
                continue;
            }
            let (mut internal, new_leaf) = match stash.take() {
                Some(x) => x,
                None => {
                    let new_leaf =
                        Shared::from_owned(Node::leaf(key.clone(), Some(value.clone())));
                    (Box::new(Node::leaf(NmKey::NegInf, None)), new_leaf)
                }
            };
            if key < leaf_node.key {
                internal.key = leaf_node.key.clone();
                internal.left.store_mut(new_leaf);
                internal.right.store_mut(sr.l);
            } else {
                internal.key = key.clone();
                internal.left.store_mut(sr.l);
                internal.right.store_mut(new_leaf);
            }
            let internal_ptr = Shared::from_raw(Box::into_raw(internal));
            let op = Shared::from_owned(Info::Insert {
                p: sr.p,
                new_internal: internal_ptr,
                l: sr.l,
            });
            // Our own descriptor: announce before publishing.
            handle.hp_aux.protect_raw(op.as_raw());
            let pn = unsafe { sr.p.deref() };
            match pn
                .update
                .compare_exchange(sr.pupdate, op.with_tag(IFLAG), AcqRel, Acquire)
            {
                Ok(_) => {
                    let old = sr.pupdate.with_tag(0);
                    if !old.is_null() {
                        unsafe { handle.thread.retire(old.as_raw()) };
                    }
                    self.help_insert(op);
                    handle.hp_aux.reset();
                    return true;
                }
                Err(_) => {
                    handle.hp_aux.reset();
                    unsafe { op.drop_owned() };
                    let internal = unsafe { Box::from_raw(internal_ptr.as_raw()) };
                    stash = Some((internal, new_leaf));
                    backoff.cas_failed();
                }
            }
        }
    }

    pub(crate) fn remove_impl(&self, handle: &mut Handle<T>, key: &K) -> Option<V> {
        let key = NmKey::Fin(key.clone());
        let mut backoff = Backoff::new();
        loop {
            let sr = self.search(&key, handle);
            let leaf_node = unsafe { sr.l.deref() };
            if leaf_node.key != key {
                return None;
            }
            if sr.gpupdate.tag() != CLEAN {
                self.help(sr.gpupdate, sr.gp, handle);
                continue;
            }
            if sr.pupdate.tag() != CLEAN {
                self.help(sr.pupdate, sr.p, handle);
                continue;
            }
            debug_assert!(!sr.gp.is_null(), "finite leaves sit at depth >= 2");
            let value = leaf_node.value.clone();
            let op = Shared::from_owned(Info::Delete {
                gp: sr.gp,
                p: sr.p,
                l: sr.l,
                pupdate: sr.pupdate,
            });
            handle.hp_aux.protect_raw(op.as_raw());
            let gpn = unsafe { sr.gp.deref() };
            match gpn
                .update
                .compare_exchange(sr.gpupdate, op.with_tag(DFLAG), AcqRel, Acquire)
            {
                Ok(_) => {
                    let old = sr.gpupdate.with_tag(0);
                    if !old.is_null() {
                        unsafe { handle.thread.retire(old.as_raw()) };
                    }
                    // We hold op (hp_aux announced before publication), and
                    // unlike helpers we still hold p (hp_p) and gp (hp_gp)
                    // from the search, so run the owner-grade help.
                    handle.hp_gpop.protect_raw(op.as_raw());
                    let done = self.help_delete_owner(op, handle);
                    handle.hp_gpop.reset();
                    if done {
                        return value;
                    }
                }
                Err(_) => {
                    handle.hp_aux.reset();
                    unsafe { op.drop_owned() };
                    backoff.cas_failed();
                }
            }
        }
    }
}

impl<K, V, T> Default for EFRBTree<K, V, T>
where
    K: Ord + Clone,
    V: Clone,
    T: HpFamily,
{
    fn default() -> Self {
        Self::new()
    }
}

impl<K, V, T> Drop for EFRBTree<K, V, T> {
    fn drop(&mut self) {
        fn free_rec<K, V>(edge: Shared<Node<K, V>>) {
            if edge.is_null() {
                return;
            }
            let node = unsafe { Box::from_raw(edge.with_tag(0).as_raw()) };
            let u = node.update.load(Relaxed).with_tag(0);
            if !u.is_null() {
                unsafe { u.drop_owned() };
            }
            free_rec(node.left.load(Relaxed));
            free_rec(node.right.load(Relaxed));
        }
        free_rec(self.root.left.load(Relaxed));
        free_rec(self.root.right.load(Relaxed));
        self.root.left.store_mut(Shared::null());
        self.root.right.store_mut(Shared::null());
        let u = self.root.update.load(Relaxed).with_tag(0);
        if !u.is_null() {
            unsafe { u.drop_owned() };
            self.root.update.store_mut(Shared::null());
        }
    }
}

impl<K, V, T> ConcurrentMap<K, V> for EFRBTree<K, V, T>
where
    K: Ord + Clone + Send + Sync,
    V: Clone + Send + Sync,
    T: HpFamily,
{
    type Handle = Handle<T>;

    fn new() -> Self {
        EFRBTree::new()
    }

    fn handle(&self) -> Handle<T> {
        Handle::new()
    }

    fn get(&self, handle: &mut Handle<T>, key: &K) -> Option<V> {
        self.get_impl(handle, key)
    }

    fn insert(&self, handle: &mut Handle<T>, key: K, value: V) -> bool {
        self.insert_impl(handle, key, value)
    }

    fn remove(&self, handle: &mut Handle<T>, key: &K) -> Option<V> {
        self.remove_impl(handle, key)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_utils;

    type HpTree = EFRBTree<u64, u64, hp::Thread>;
    type HppTree = EFRBTree<u64, u64, hp_plus::Thread>;

    #[test]
    fn sequential_semantics_hp() {
        test_utils::check_sequential::<HpTree>();
    }

    #[test]
    fn sequential_semantics_hpp_hybrid() {
        test_utils::check_sequential::<HppTree>();
    }

    #[test]
    fn concurrent_stress_hp() {
        test_utils::check_concurrent::<HpTree>(8, 512);
    }

    #[test]
    fn concurrent_stress_hpp_hybrid() {
        test_utils::check_concurrent::<HppTree>(8, 512);
    }

    #[test]
    fn striped_hp() {
        test_utils::check_striped::<HpTree>(4, 128);
    }
}
