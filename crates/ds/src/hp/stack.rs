//! Treiber's stack with hazard pointers — the paper's Figure 2 — plus the
//! elimination-array variant ([`ElimStack`]).
//!
//! `pop` protects the head node and validates by re-reading `head` (a
//! proper over-approximation of reachability: if the node were retired it
//! could no longer be the head). Both variants damp CAS retry storms with
//! [`smr_common::Backoff`]; the elimination variant additionally diverts
//! colliding push/pop pairs through [`crate::elim::ExchangerArray`] so
//! they cancel without touching the head at all.

use std::sync::atomic::Ordering::{AcqRel, Acquire, Relaxed};

use hp::HazardPointer;
use smr_common::{Atomic, Backoff, Shared};

use crate::elim::ExchangerArray;

struct Node<T> {
    next: Atomic<Node<T>>,
    value: Option<T>,
}

/// A lock-free stack (Treiber 1986) reclaimed with the original HP.
pub struct TreiberStack<T> {
    head: Atomic<Node<T>>,
}

unsafe impl<T: Send + Sync> Send for TreiberStack<T> {}
unsafe impl<T: Send + Sync> Sync for TreiberStack<T> {}

/// Per-thread state: HP registration plus the one hazard pointer of Fig. 2.
pub struct StackHandle {
    thread: hp::Thread,
    hp: HazardPointer,
}

impl StackHandle {
    /// Registers with the default HP domain.
    pub fn new() -> Self {
        let mut thread = hp::default_domain().register();
        let hp = thread.hazard_pointer();
        Self { thread, hp }
    }
}

impl Default for StackHandle {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> TreiberStack<T> {
    /// Creates an empty stack.
    pub fn new() -> Self {
        Self {
            head: Atomic::null(),
        }
    }

    /// Creates a per-thread handle.
    pub fn handle(&self) -> StackHandle {
        StackHandle::new()
    }

    /// Pushes a value.
    pub fn push(&self, value: T) {
        let node = Shared::from_owned(Node {
            next: Atomic::null(),
            value: Some(value),
        });
        let node_ref = unsafe { node.deref() };
        let mut head = self.head.load(Relaxed);
        let mut backoff = Backoff::new();
        loop {
            node_ref.next.store(head, Relaxed);
            match self.head.compare_exchange(head, node, AcqRel, Acquire) {
                Ok(_) => return,
                Err(h) => {
                    head = h;
                    backoff.cas_failed();
                }
            }
        }
    }

    /// Pops the top value (Fig. 2: protect, validate against head, CAS).
    pub fn pop(&self, handle: &mut StackHandle) -> Option<T>
    where
        T: Send,
    {
        let mut backoff = Backoff::new();
        loop {
            // Lines 2-4: protect h and validate head still holds it.
            let h = handle.hp.protect(&self.head);
            if h.is_null() {
                return None;
            }
            // Line 5: safe dereference.
            let next = unsafe { h.deref() }.next.load(Acquire);
            // Line 6: CAS head from h to its successor.
            if self.head.compare_exchange(h, next, AcqRel, Acquire).is_ok() {
                // The value moves out; the node is retired.
                let value = unsafe { (*h.as_raw()).value.take() };
                handle.hp.reset();
                unsafe { handle.thread.retire(h.as_raw()) };
                return value;
            }
            backoff.cas_failed();
        }
    }

    /// Whether the stack is (momentarily) empty.
    pub fn is_empty(&self) -> bool {
        self.head.load(Acquire).is_null()
    }
}

impl<T> Default for TreiberStack<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> Drop for TreiberStack<T> {
    fn drop(&mut self) {
        let mut cur = self.head.load_mut();
        while !cur.is_null() {
            let node = unsafe { Box::from_raw(cur.as_raw()) };
            cur = node.next.load(Relaxed);
        }
    }
}

/// Treiber stack + elimination array (Hendler, Shavit & Yerushalmi 2004).
///
/// Operations first try the stack head once; on CAS failure they visit the
/// [`ExchangerArray`], where a colliding push/pop pair cancels without ever
/// touching the head. Exchanged nodes never become reachable from the
/// structure, so the popper frees them directly — no hazard pointer and no
/// retirement on the elimination path.
pub struct ElimStack<T> {
    stack: TreiberStack<T>,
    elim: ExchangerArray<Node<T>>,
}

unsafe impl<T: Send + Sync> Send for ElimStack<T> {}
unsafe impl<T: Send + Sync> Sync for ElimStack<T> {}

impl<T> ElimStack<T> {
    /// Creates an empty stack.
    pub fn new() -> Self {
        Self {
            stack: TreiberStack::new(),
            elim: ExchangerArray::new(),
        }
    }

    /// Creates a per-thread handle (same state as the plain stack's).
    pub fn handle(&self) -> StackHandle {
        StackHandle::new()
    }

    /// Pushes a value, eliminating against a concurrent pop when contended.
    pub fn push(&self, value: T) {
        let node = Shared::from_owned(Node {
            next: Atomic::null(),
            value: Some(value),
        });
        let raw = node.as_raw();
        let mut backoff = Backoff::new();
        loop {
            // Fast path: one shot at the stack head.
            let head = self.stack.head.load(Relaxed);
            unsafe { node.deref() }.next.store(head, Relaxed);
            if self
                .stack
                .head
                .compare_exchange(head, node, AcqRel, Acquire)
                .is_ok()
            {
                return;
            }
            backoff.cas_failed();
            // Contended: offer the node to a concurrent pop instead.
            if unsafe { self.elim.try_push(raw, &mut backoff) } {
                return;
            }
        }
    }

    /// Pops the top value, eliminating against a concurrent push when
    /// contended.
    pub fn pop(&self, handle: &mut StackHandle) -> Option<T>
    where
        T: Send,
    {
        let mut backoff = Backoff::new();
        loop {
            let h = handle.hp.protect(&self.stack.head);
            if h.is_null() {
                // Empty stack: a waiting pusher may still serve us.
                if let Some(node) = self.elim.try_pop(&mut backoff) {
                    let mut node = unsafe { Box::from_raw(node) };
                    return node.value.take();
                }
                return None;
            }
            let next = unsafe { h.deref() }.next.load(Acquire);
            if self
                .stack
                .head
                .compare_exchange(h, next, AcqRel, Acquire)
                .is_ok()
            {
                let value = unsafe { (*h.as_raw()).value.take() };
                handle.hp.reset();
                unsafe { handle.thread.retire(h.as_raw()) };
                return value;
            }
            backoff.cas_failed();
            // Contended: try to cancel against a concurrent push. The node
            // never entered the stack, so it is freed directly.
            if let Some(node) = self.elim.try_pop(&mut backoff) {
                handle.hp.reset();
                let mut node = unsafe { Box::from_raw(node) };
                return node.value.take();
            }
        }
    }

    /// Whether the stack is (momentarily) empty.
    pub fn is_empty(&self) -> bool {
        self.stack.is_empty()
    }
}

impl<T> Default for ElimStack<T> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering::Relaxed as R};

    #[test]
    fn push_pop_lifo() {
        let s = TreiberStack::new();
        let mut h = s.handle();
        for i in 0..10 {
            s.push(i);
        }
        for i in (0..10).rev() {
            assert_eq!(s.pop(&mut h), Some(i));
        }
        assert_eq!(s.pop(&mut h), None);
    }

    #[test]
    fn concurrent_push_pop_conserves_sum() {
        let s = TreiberStack::new();
        let popped_sum = AtomicU64::new(0);
        let pushed_sum = AtomicU64::new(0);
        std::thread::scope(|scope| {
            for t in 0..4u64 {
                let s = &s;
                let pushed_sum = &pushed_sum;
                scope.spawn(move || {
                    for i in 0..1000 {
                        let v = t * 10_000 + i;
                        s.push(v);
                        pushed_sum.fetch_add(v, R);
                    }
                });
            }
            for _ in 0..4 {
                let s = &s;
                let popped_sum = &popped_sum;
                scope.spawn(move || {
                    let mut h = s.handle();
                    let mut got = 0;
                    while got < 1000 {
                        if let Some(v) = s.pop(&mut h) {
                            popped_sum.fetch_add(v, R);
                            got += 1;
                        }
                    }
                });
            }
        });
        assert_eq!(popped_sum.load(R), pushed_sum.load(R));
        let mut h = s.handle();
        assert_eq!(s.pop(&mut h), None);
    }

    #[test]
    fn elim_stack_lifo_and_empty() {
        let s = ElimStack::new();
        let mut h = s.handle();
        for i in 0..10 {
            s.push(i);
        }
        for i in (0..10).rev() {
            assert_eq!(s.pop(&mut h), Some(i));
        }
        assert_eq!(s.pop(&mut h), None);
        assert!(s.is_empty());
    }

    /// A push/pop pair cancels through the exchanger without the stack head
    /// ever changing: the pusher offers its node straight to the elimination
    /// array and the popper takes it from there, while `head` stays null
    /// throughout.
    #[test]
    fn elimination_pair_cancels_without_touching_head() {
        let s: ElimStack<u64> = ElimStack::new();
        let got = AtomicU64::new(0);
        std::thread::scope(|scope| {
            let s = &s;
            let got = &got;
            scope.spawn(move || {
                let mut bo = smr_common::Backoff::with_config(Default::default(), 5);
                loop {
                    let node = Box::into_raw(Box::new(Node {
                        next: Atomic::null(),
                        value: Some(99u64),
                    }));
                    if unsafe { s.elim.try_push(node, &mut bo) } {
                        return;
                    }
                    drop(unsafe { Box::from_raw(node) });
                    bo.snooze();
                }
            });
            scope.spawn(move || {
                let mut h = s.handle();
                loop {
                    if let Some(v) = s.pop(&mut h) {
                        got.store(v, R);
                        return;
                    }
                    std::thread::yield_now();
                }
            });
        });
        assert_eq!(got.load(R), 99);
        // The node travelled pusher -> exchanger -> popper; the stack's head
        // was never installed-to or CASed away from null.
        assert!(s.stack.head.load(Relaxed).is_null());
    }

    #[test]
    fn elim_concurrent_push_pop_conserves_sum() {
        let s = ElimStack::new();
        let popped_sum = AtomicU64::new(0);
        let pushed_sum = AtomicU64::new(0);
        std::thread::scope(|scope| {
            for t in 0..4u64 {
                let s = &s;
                let pushed_sum = &pushed_sum;
                scope.spawn(move || {
                    for i in 0..1000 {
                        let v = t * 10_000 + i;
                        s.push(v);
                        pushed_sum.fetch_add(v, R);
                    }
                });
            }
            for _ in 0..4 {
                let s = &s;
                let popped_sum = &popped_sum;
                scope.spawn(move || {
                    let mut h = s.handle();
                    let mut got = 0;
                    while got < 1000 {
                        if let Some(v) = s.pop(&mut h) {
                            popped_sum.fetch_add(v, R);
                            got += 1;
                        }
                    }
                });
            }
        });
        assert_eq!(popped_sum.load(R), pushed_sum.load(R));
        let mut h = s.handle();
        assert_eq!(s.pop(&mut h), None);
    }
}
