//! Treiber's stack with hazard pointers — the paper's Figure 2.
//!
//! `pop` protects the head node and validates by re-reading `head` (a
//! proper over-approximation of reachability: if the node were retired it
//! could no longer be the head).

use std::sync::atomic::Ordering::{AcqRel, Acquire, Relaxed};

use hp::HazardPointer;
use smr_common::{Atomic, Shared};

struct Node<T> {
    next: Atomic<Node<T>>,
    value: Option<T>,
}

/// A lock-free stack (Treiber 1986) reclaimed with the original HP.
pub struct TreiberStack<T> {
    head: Atomic<Node<T>>,
}

unsafe impl<T: Send + Sync> Send for TreiberStack<T> {}
unsafe impl<T: Send + Sync> Sync for TreiberStack<T> {}

/// Per-thread state: HP registration plus the one hazard pointer of Fig. 2.
pub struct StackHandle {
    thread: hp::Thread,
    hp: HazardPointer,
}

impl StackHandle {
    /// Registers with the default HP domain.
    pub fn new() -> Self {
        let mut thread = hp::default_domain().register();
        let hp = thread.hazard_pointer();
        Self { thread, hp }
    }
}

impl Default for StackHandle {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> TreiberStack<T> {
    /// Creates an empty stack.
    pub fn new() -> Self {
        Self {
            head: Atomic::null(),
        }
    }

    /// Creates a per-thread handle.
    pub fn handle(&self) -> StackHandle {
        StackHandle::new()
    }

    /// Pushes a value.
    pub fn push(&self, value: T) {
        let node = Shared::from_owned(Node {
            next: Atomic::null(),
            value: Some(value),
        });
        let node_ref = unsafe { node.deref() };
        let mut head = self.head.load(Relaxed);
        loop {
            node_ref.next.store(head, Relaxed);
            match self.head.compare_exchange(head, node, AcqRel, Acquire) {
                Ok(_) => return,
                Err(h) => head = h,
            }
        }
    }

    /// Pops the top value (Fig. 2: protect, validate against head, CAS).
    pub fn pop(&self, handle: &mut StackHandle) -> Option<T>
    where
        T: Send,
    {
        loop {
            // Lines 2-4: protect h and validate head still holds it.
            let h = handle.hp.protect(&self.head);
            if h.is_null() {
                return None;
            }
            // Line 5: safe dereference.
            let next = unsafe { h.deref() }.next.load(Acquire);
            // Line 6: CAS head from h to its successor.
            if self.head.compare_exchange(h, next, AcqRel, Acquire).is_ok() {
                // The value moves out; the node is retired.
                let value = unsafe { (*h.as_raw()).value.take() };
                handle.hp.reset();
                unsafe { handle.thread.retire(h.as_raw()) };
                return value;
            }
        }
    }

    /// Whether the stack is (momentarily) empty.
    pub fn is_empty(&self) -> bool {
        self.head.load(Acquire).is_null()
    }
}

impl<T> Default for TreiberStack<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> Drop for TreiberStack<T> {
    fn drop(&mut self) {
        let mut cur = self.head.load_mut();
        while !cur.is_null() {
            let node = unsafe { Box::from_raw(cur.as_raw()) };
            cur = node.next.load(Relaxed);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering::Relaxed as R};

    #[test]
    fn push_pop_lifo() {
        let s = TreiberStack::new();
        let mut h = s.handle();
        for i in 0..10 {
            s.push(i);
        }
        for i in (0..10).rev() {
            assert_eq!(s.pop(&mut h), Some(i));
        }
        assert_eq!(s.pop(&mut h), None);
    }

    #[test]
    fn concurrent_push_pop_conserves_sum() {
        let s = TreiberStack::new();
        let popped_sum = AtomicU64::new(0);
        let pushed_sum = AtomicU64::new(0);
        std::thread::scope(|scope| {
            for t in 0..4u64 {
                let s = &s;
                let pushed_sum = &pushed_sum;
                scope.spawn(move || {
                    for i in 0..1000 {
                        let v = t * 10_000 + i;
                        s.push(v);
                        pushed_sum.fetch_add(v, R);
                    }
                });
            }
            for _ in 0..4 {
                let s = &s;
                let popped_sum = &popped_sum;
                scope.spawn(move || {
                    let mut h = s.handle();
                    let mut got = 0;
                    while got < 1000 {
                        if let Some(v) = s.pop(&mut h) {
                            popped_sum.fetch_add(v, R);
                            got += 1;
                        }
                    }
                });
            }
        });
        assert_eq!(popped_sum.load(R), pushed_sum.load(R));
        let mut h = s.handle();
        assert_eq!(s.pop(&mut h), None);
    }
}
