//! Michael–Scott queue with hazard pointers (Michael 2004's running
//! example). Dequeue protects the head (validated against the head
//! pointer) and its successor (validated against the head again — the MS
//! queue invariant makes head-stability imply successor reachability).

use std::sync::atomic::Ordering::{AcqRel, Acquire, Relaxed, Release};

use hp::HazardPointer;
use smr_common::{fence, Atomic, Backoff, Shared};

struct Node<T> {
    next: Atomic<Node<T>>,
    value: Option<T>,
}

/// A lock-free FIFO queue reclaimed with the original HP.
pub struct MSQueue<T> {
    head: Atomic<Node<T>>,
    tail: Atomic<Node<T>>,
}

unsafe impl<T: Send + Sync> Send for MSQueue<T> {}
unsafe impl<T: Send + Sync> Sync for MSQueue<T> {}

/// Per-thread state: two hazard pointers (head, next).
pub struct QueueHandle {
    thread: hp::Thread,
    hp_head: HazardPointer,
    hp_next: HazardPointer,
}

impl QueueHandle {
    /// Registers with the default HP domain.
    pub fn new() -> Self {
        let mut thread = hp::default_domain().register();
        let hp_head = thread.hazard_pointer();
        let hp_next = thread.hazard_pointer();
        Self {
            thread,
            hp_head,
            hp_next,
        }
    }
}

impl Default for QueueHandle {
    fn default() -> Self {
        Self::new()
    }
}

impl<T: Send> MSQueue<T> {
    /// Creates an empty queue (one sentinel node).
    pub fn new() -> Self {
        let sentinel = Shared::from_owned(Node {
            next: Atomic::null(),
            value: None,
        });
        Self {
            head: Atomic::from(sentinel),
            tail: Atomic::from(sentinel),
        }
    }

    /// Creates a per-thread handle.
    pub fn handle(&self) -> QueueHandle {
        QueueHandle::new()
    }

    /// Enqueues at the tail.
    pub fn enqueue(&self, handle: &mut QueueHandle, value: T) {
        let node = Shared::from_owned(Node {
            next: Atomic::null(),
            value: Some(value),
        });
        let mut backoff = Backoff::new();
        loop {
            // Protect the tail so its next field stays dereferenceable.
            let tail = handle.hp_head.protect(&self.tail);
            let tail_node = unsafe { tail.deref() };
            let next = tail_node.next.load(Acquire);
            if !next.is_null() {
                let _ = self.tail.compare_exchange(tail, next, AcqRel, Acquire);
                continue;
            }
            if tail_node
                .next
                .compare_exchange(Shared::null(), node, AcqRel, Acquire)
                .is_ok()
            {
                let _ = self.tail.compare_exchange(tail, node, Release, Relaxed);
                handle.hp_head.reset();
                return;
            }
            backoff.cas_failed();
        }
    }

    /// Dequeues from the head.
    pub fn dequeue(&self, handle: &mut QueueHandle) -> Option<T> {
        let mut backoff = Backoff::new();
        loop {
            let head = handle.hp_head.protect(&self.head);
            let next = unsafe { head.deref() }.next.load(Acquire);
            if next.is_null() {
                handle.hp_head.reset();
                return None;
            }
            // Protect next; validate via the head pointer: while head is
            // unchanged, its successor cannot have been retired.
            handle.hp_next.protect_raw(next.as_raw());
            fence::light();
            if self.head.load(Acquire) != head {
                continue;
            }
            let tail = self.tail.load(Acquire);
            if head == tail {
                let _ = self.tail.compare_exchange(tail, next, AcqRel, Acquire);
            }
            if self.head.compare_exchange(head, next, AcqRel, Acquire).is_ok() {
                let value = unsafe { (*next.as_raw()).value.take() };
                handle.hp_head.reset();
                handle.hp_next.reset();
                unsafe { handle.thread.retire(head.as_raw()) };
                return value;
            }
            backoff.cas_failed();
        }
    }
}

impl<T: Send> Default for MSQueue<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> Drop for MSQueue<T> {
    fn drop(&mut self) {
        let mut cur = self.head.load_mut();
        while !cur.is_null() {
            let node = unsafe { Box::from_raw(cur.as_raw()) };
            cur = node.next.load(Relaxed);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;
    use std::sync::Mutex;

    #[test]
    fn fifo_order() {
        let q = MSQueue::new();
        let mut h = q.handle();
        for i in 0..100 {
            q.enqueue(&mut h, i);
        }
        for i in 0..100 {
            assert_eq!(q.dequeue(&mut h), Some(i));
        }
        assert_eq!(q.dequeue(&mut h), None);
    }

    #[test]
    fn concurrent_no_loss_no_duplication() {
        let q = MSQueue::new();
        let seen = Mutex::new(HashSet::new());
        std::thread::scope(|s| {
            for t in 0..4u64 {
                let q = &q;
                s.spawn(move || {
                    let mut h = q.handle();
                    for i in 0..1000 {
                        q.enqueue(&mut h, t * 10_000 + i);
                    }
                });
            }
            for _ in 0..4 {
                let q = &q;
                let seen = &seen;
                s.spawn(move || {
                    let mut h = q.handle();
                    let mut got = 0;
                    while got < 1000 {
                        if let Some(v) = q.dequeue(&mut h) {
                            assert!(seen.lock().unwrap().insert(v), "duplicate {v}");
                            got += 1;
                        }
                    }
                });
            }
        });
        assert_eq!(seen.lock().unwrap().len(), 4000);
    }

    #[test]
    fn garbage_bounded_under_churn() {
        let q = MSQueue::new();
        let mut h = q.handle();
        let before = smr_common::counters::garbage_now();
        for i in 0..2000u64 {
            q.enqueue(&mut h, i);
            assert_eq!(q.dequeue(&mut h), Some(i));
        }
        let grown = smr_common::counters::garbage_now().saturating_sub(before);
        assert!(grown < 2 * hp::RECLAIM_THRESHOLD as u64 + 64, "grew {grown}");
    }
}
