//! Bonsai tree with original hazard pointers.
//!
//! Every dereference announces the node and re-validates that the **root
//! has not changed** since the operation began: any successful update may
//! have retired arbitrary path nodes, and the root pointer is the only
//! witness. This is the validation the paper describes as making HP "less
//! efficient" on Bonsai — any concurrent update fails every in-flight
//! protection.

use std::sync::atomic::Ordering::{AcqRel, Acquire, Relaxed};

use hp::HazardPointer;
use smr_common::{fence, Atomic, Backoff, ConcurrentMap, Shared};

use crate::bonsai_core::{Builder, Node, Protector, Restart};

/// Per-thread state: HP registration and a growable pool of hazard slots
/// (one per node dereferenced during a version build: O(tree depth)).
pub struct Handle {
    thread: hp::Thread,
    slots: Vec<HazardPointer>,
    used: usize,
}

impl Handle {
    fn new() -> Self {
        Self {
            thread: hp::default_domain().register(),
            slots: Vec::new(),
            used: 0,
        }
    }

    fn reset(&mut self) {
        for s in &self.slots[..self.used] {
            s.reset();
        }
        self.used = 0;
    }

    fn announce<T>(&mut self, node: Shared<T>) {
        if self.used == self.slots.len() {
            self.slots.push(self.thread.hazard_pointer());
        }
        self.slots[self.used].protect_raw(node.as_raw());
        self.used += 1;
    }
}

impl Default for Handle {
    fn default() -> Self {
        Self::new()
    }
}

struct RootCheck<'a, K, V> {
    handle: &'a mut Handle,
    root: &'a Atomic<Node<K, V>>,
    root0: Shared<Node<K, V>>,
}

impl<K, V> Protector<K, V> for RootCheck<'_, K, V> {
    fn protect(
        &mut self,
        node: Shared<Node<K, V>>,
        _src: Shared<Node<K, V>>,
    ) -> Result<(), Restart> {
        self.handle.announce(node);
        fence::light();
        if self.root.load(Acquire).with_tag(0) == self.root0 {
            Ok(())
        } else {
            Err(Restart)
        }
    }
}

/// Non-blocking Bonsai tree protected by the original HP.
pub struct BonsaiTree<K, V> {
    root: Atomic<Node<K, V>>,
}

unsafe impl<K: Send + Sync, V: Send + Sync> Send for BonsaiTree<K, V> {}
unsafe impl<K: Send + Sync, V: Send + Sync> Sync for BonsaiTree<K, V> {}

impl<K, V> BonsaiTree<K, V>
where
    K: Ord + Clone,
    V: Clone,
{
    /// Creates an empty tree.
    pub fn new() -> Self {
        Self {
            root: Atomic::null(),
        }
    }

    /// Protects the current root snapshot. Returns the protected root.
    fn protect_root(&self, handle: &mut Handle) -> Shared<Node<K, V>> {
        loop {
            handle.reset();
            let root0 = self.root.load(Acquire).with_tag(0);
            if root0.is_null() {
                return root0;
            }
            handle.announce(root0);
            fence::light();
            if self.root.load(Acquire).with_tag(0) == root0 {
                return root0;
            }
        }
    }

    pub(crate) fn get_impl(&self, handle: &mut Handle, key: &K) -> Option<V> {
        'retry: loop {
            let root0 = self.protect_root(handle);
            let mut cur = root0;
            while !cur.is_null() {
                let node = unsafe { cur.deref() };
                let next = match key.cmp(&node.key) {
                    std::cmp::Ordering::Less => node.left.load(Relaxed).with_tag(0),
                    std::cmp::Ordering::Greater => node.right.load(Relaxed).with_tag(0),
                    std::cmp::Ordering::Equal => {
                        let out = node.value.clone();
                        handle.reset();
                        return Some(out);
                    }
                };
                if !next.is_null() {
                    handle.announce(next);
                    fence::light();
                    if self.root.load(Acquire).with_tag(0) != root0 {
                        continue 'retry;
                    }
                }
                cur = next;
            }
            handle.reset();
            return None;
        }
    }

    pub(crate) fn insert_impl(&self, handle: &mut Handle, key: K, value: V) -> bool {
        let mut backoff = Backoff::new();
        loop {
            let root0 = self.protect_root(handle);
            let mut b = Builder::new();
            let result = {
                let mut p = RootCheck {
                    handle,
                    root: &self.root,
                    root0,
                };
                b.insert(&mut p, root0, &key, &value)
            };
            match result {
                Err(Restart) => b.abort(),
                Ok(None) => {
                    b.abort();
                    handle.reset();
                    return false;
                }
                Ok(Some(new_root)) => {
                    match self.root.compare_exchange(root0, new_root, AcqRel, Acquire) {
                        Ok(_) => {
                            for r in b.replaced {
                                unsafe { handle.thread.retire(r.as_raw()) };
                            }
                            handle.reset();
                            return true;
                        }
                        Err(_) => {
                            b.abort();
                            backoff.cas_failed();
                        }
                    }
                }
            }
        }
    }

    pub(crate) fn remove_impl(&self, handle: &mut Handle, key: &K) -> Option<V> {
        let mut backoff = Backoff::new();
        loop {
            let root0 = self.protect_root(handle);
            let mut b = Builder::new();
            let result = {
                let mut p = RootCheck {
                    handle,
                    root: &self.root,
                    root0,
                };
                b.remove(&mut p, root0, key)
            };
            match result {
                Err(Restart) => b.abort(),
                Ok(None) => {
                    b.abort();
                    handle.reset();
                    return None;
                }
                Ok(Some((new_root, value))) => {
                    match self.root.compare_exchange(root0, new_root, AcqRel, Acquire) {
                        Ok(_) => {
                            for r in b.replaced {
                                unsafe { handle.thread.retire(r.as_raw()) };
                            }
                            handle.reset();
                            return Some(value);
                        }
                        Err(_) => {
                            b.abort();
                            backoff.cas_failed();
                        }
                    }
                }
            }
        }
    }
}

impl<K: Ord + Clone, V: Clone> Default for BonsaiTree<K, V> {
    fn default() -> Self {
        Self::new()
    }
}

impl<K, V> Drop for BonsaiTree<K, V> {
    fn drop(&mut self) {
        fn free_rec<K, V>(t: Shared<Node<K, V>>) {
            if t.is_null() {
                return;
            }
            let node = unsafe { Box::from_raw(t.as_raw()) };
            free_rec(node.left.load(Relaxed).with_tag(0));
            free_rec(node.right.load(Relaxed).with_tag(0));
        }
        free_rec(self.root.load_mut().with_tag(0));
        self.root.store_mut(Shared::null());
    }
}

impl<K, V> ConcurrentMap<K, V> for BonsaiTree<K, V>
where
    K: Ord + Clone + Send + Sync,
    V: Clone + Send + Sync,
{
    type Handle = Handle;

    fn new() -> Self {
        BonsaiTree::new()
    }

    fn handle(&self) -> Handle {
        Handle::new()
    }

    fn get(&self, handle: &mut Handle, key: &K) -> Option<V> {
        self.get_impl(handle, key)
    }

    fn insert(&self, handle: &mut Handle, key: K, value: V) -> bool {
        self.insert_impl(handle, key, value)
    }

    fn remove(&self, handle: &mut Handle, key: &K) -> Option<V> {
        self.remove_impl(handle, key)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_utils;

    #[test]
    fn sequential_semantics() {
        test_utils::check_sequential::<BonsaiTree<u64, u64>>();
    }

    #[test]
    fn concurrent_stress() {
        test_utils::check_concurrent::<BonsaiTree<u64, u64>>(6, 384);
    }

    #[test]
    fn striped() {
        test_utils::check_striped::<BonsaiTree<u64, u64>>(4, 96);
    }
}
