//! Natarajan–Mittal external BST protected by HP++ — one of the paper's
//! headline applications (Table 2: HP ✗, HP++ ✓).
//!
//! The seek traverses flagged/tagged edges optimistically; every step is
//! protected with `try_protect` (failing only on invalidated sources), and
//! the cleanup's ancestor CAS goes through `try_unlink` with the promoted
//! sibling as frontier.

use std::sync::atomic::Ordering::{AcqRel, Acquire, Relaxed};

use hp_plus::{try_protect, HazardPointer, Invalidate, Unlinked};
use smr_common::{Atomic, Backoff, ConcurrentMap, Shared};

use crate::guarded::nm_tree::{NmKey, Node as GNode};

// Edge bits (node alignment is 8, so three bits are available).
pub(crate) use crate::guarded::nm_tree::{FLAG, TAG};
/// Edge bit: the owning node has been invalidated by its unlinker (HP++).
pub(crate) const INVALID: usize = 0b100;

type Node<K, V> = GNode<K, V>;

unsafe impl<K, V> Invalidate for GNode<K, V> {
    unsafe fn invalidate(ptr: *mut Self) {
        // Helpers may concurrently fetch_or TAG bits on these edges, so use
        // an atomic RMW rather than the paper's plain-store optimization.
        let node = unsafe { &*ptr };
        node.left.fetch_or_tag(INVALID, AcqRel);
        node.right.fetch_or_tag(INVALID, AcqRel);
    }
}

fn node_is_invalid<K, V>(node: Shared<Node<K, V>>) -> bool {
    !node.is_null() && unsafe { node.deref() }.left.load(Acquire).tag() & INVALID != 0
}

/// Per-thread state: HP++ registration plus the four protection roles of
/// the NM seek (prev, cur, ancestor, successor).
pub struct Handle {
    thread: hp_plus::Thread,
    hp_prev: HazardPointer,
    hp_cur: HazardPointer,
    hp_ancestor: HazardPointer,
    hp_successor: HazardPointer,
}

/// Insert-retry stash: a preallocated internal node and its new leaf,
/// reused across CAS retries instead of reallocating.
type Stash<K, V> = Option<(Box<Node<K, V>>, Shared<Node<K, V>>)>;

impl Handle {
    /// Registers with the default HP++ domain.
    pub fn new() -> Self {
        let mut thread = hp_plus::default_domain().register();
        let hp_prev = thread.hazard_pointer();
        let hp_cur = thread.hazard_pointer();
        let hp_ancestor = thread.hazard_pointer();
        let hp_successor = thread.hazard_pointer();
        Self {
            thread,
            hp_prev,
            hp_cur,
            hp_ancestor,
            hp_successor,
        }
    }
}

impl Default for Handle {
    fn default() -> Self {
        Self::new()
    }
}

struct SeekRecord<K, V> {
    ancestor_edge: *const Atomic<Node<K, V>>,
    successor_word: Shared<Node<K, V>>,
    parent: Shared<Node<K, V>>,
    parent_edge: *const Atomic<Node<K, V>>,
    leaf_word: Shared<Node<K, V>>,
}

impl<K, V> SeekRecord<K, V> {
    fn leaf(&self) -> Shared<Node<K, V>> {
        self.leaf_word.with_tag(0)
    }
}

/// Protects the value of `edge` in `hp` and returns the full edge word
/// (tags included). `None` = source invalidated, restart.
fn protect_edge<K, V>(
    hp: &HazardPointer,
    edge: &Atomic<Node<K, V>>,
    src: Shared<Node<K, V>>,
) -> Option<Shared<Node<K, V>>> {
    let mut ptr = edge.load(Acquire).with_tag(0);
    loop {
        if !try_protect(hp, &mut ptr, edge, || node_is_invalid(src)) {
            return None;
        }
        let word = edge.load(Acquire);
        if word.with_tag(0) == ptr {
            return Some(word);
        }
        ptr = word.with_tag(0);
    }
}

/// Natarajan–Mittal external BST protected by HP++.
pub struct NMTree<K, V> {
    r: Box<Node<K, V>>,
}

unsafe impl<K: Send + Sync, V: Send + Sync> Send for NMTree<K, V> {}
unsafe impl<K: Send + Sync, V: Send + Sync> Sync for NMTree<K, V> {}

impl<K, V> NMTree<K, V>
where
    K: Ord + Clone,
    V: Clone,
{
    /// Creates an empty tree (sentinels only).
    pub fn new() -> Self {
        let s = Node {
            key: NmKey::Inf1,
            value: None,
            left: Atomic::new(Node::leaf(NmKey::NegInf, None)),
            right: Atomic::new(Node::leaf(NmKey::Inf1, None)),
        };
        let r = Node {
            key: NmKey::Inf2,
            value: None,
            left: Atomic::new(s),
            right: Atomic::new(Node::leaf(NmKey::Inf2, None)),
        };
        Self { r: Box::new(r) }
    }

    fn r_shared(&self) -> Shared<Node<K, V>> {
        Shared::from_raw(self.r.as_ref() as *const _ as *mut _)
    }

    /// Protected optimistic seek. `None` = protection failure, restart.
    fn try_seek(&self, key: &K, handle: &mut Handle) -> Option<SeekRecord<K, V>> {
        let key = NmKey::Fin(key.clone());
        let r = self.r_shared();

        let mut ancestor_edge: *const Atomic<Node<K, V>> = &self.r.left;
        let mut prev = r; // owner of parent_edge; protected (or sentinel)
        let mut parent_edge = ancestor_edge;
        // Protect S (the first cur). The R sentinel is never invalidated.
        let mut leaf_word = protect_edge(&handle.hp_cur, &self.r.left, r)?;
        let mut successor_word = leaf_word;
        handle.hp_ancestor.protect_raw(r.as_raw());
        handle
            .hp_successor
            .protect_raw(leaf_word.with_tag(0).as_raw());

        loop {
            let cur = leaf_word.with_tag(0);
            let cur_node = unsafe { cur.deref() };
            if cur_node.is_leaf() {
                break;
            }
            if leaf_word.tag() & TAG == 0 {
                ancestor_edge = parent_edge;
                successor_word = leaf_word;
                // Duplicate existing protections into the dedicated slots
                // (already-protected pointers need no validation).
                handle.hp_ancestor.protect_raw(prev.as_raw());
                handle.hp_successor.protect_raw(cur.as_raw());
            }
            let next_edge: *const Atomic<Node<K, V>> = if key < cur_node.key {
                &cur_node.left
            } else {
                &cur_node.right
            };
            // Descend: cur becomes prev.
            prev = cur;
            HazardPointer::swap(&mut handle.hp_prev, &mut handle.hp_cur);
            parent_edge = next_edge;
            leaf_word = protect_edge(&handle.hp_cur, unsafe { &*next_edge }, prev)?;
        }
        Some(SeekRecord {
            ancestor_edge,
            successor_word,
            parent: prev,
            parent_edge,
            leaf_word,
        })
    }

    fn seek(&self, key: &K, handle: &mut Handle) -> SeekRecord<K, V> {
        loop {
            if let Some(sr) = self.try_seek(key, handle) {
                return sr;
            }
        }
    }

    /// One cleanup attempt; the ancestor CAS goes through `try_unlink`
    /// (frontier = the promoted sibling).
    fn cleanup(&self, sr: &SeekRecord<K, V>, handle: &mut Handle) -> bool {
        let parent = unsafe { sr.parent.deref() };
        let left_w = parent.left.load(Acquire);
        let sib_edge = if left_w.tag() & FLAG != 0 {
            &parent.right
        } else {
            let right_w = parent.right.load(Acquire);
            if right_w.tag() & FLAG != 0 {
                &parent.left
            } else {
                return false;
            }
        };
        let sib_word = sib_edge.fetch_or_tag(TAG, AcqRel);
        let promoted = sib_word.with_tag(sib_word.tag() & FLAG);

        let ancestor_edge = sr.ancestor_edge;
        let successor_word = sr.successor_word;
        unsafe {
            handle.thread.try_unlink(&[promoted.with_tag(0)], || {
                unsafe { &*ancestor_edge }
                    .compare_exchange(successor_word, promoted, AcqRel, Acquire)
                    .ok()
                    .map(|_| {
                        // Collect the detached chain (frozen edges): each
                        // chain node plus its pendant flagged leaf, ending
                        // at the promoted sibling. A one-link chain — the
                        // common case — is exactly node + pendant and uses
                        // the allocation-free Pair variant.
                        let split = |m: Shared<Node<K, V>>| {
                            let node = unsafe { m.deref() };
                            let lw = node.left.load(Relaxed);
                            let rw = node.right.load(Relaxed);
                            if lw.tag() & FLAG != 0 {
                                (lw, rw)
                            } else {
                                (rw, lw)
                            }
                        };
                        let first = successor_word.with_tag(0);
                        let (pendant, continue_w) = split(first);
                        if continue_w.ptr_eq(promoted) {
                            return Unlinked::pair(first, pendant.with_tag(0));
                        }
                        let mut nodes = vec![first, pendant.with_tag(0)];
                        let mut m = continue_w.with_tag(0);
                        loop {
                            let (pendant, continue_w) = split(m);
                            nodes.push(m);
                            nodes.push(pendant.with_tag(0));
                            if continue_w.ptr_eq(promoted) {
                                break;
                            }
                            m = continue_w.with_tag(0);
                        }
                        Unlinked::new(nodes)
                    })
            })
        }
    }

    pub(crate) fn get_impl(&self, handle: &mut Handle, key: &K) -> Option<V> {
        let sr = self.seek(key, handle);
        let leaf = unsafe { sr.leaf().deref() };
        if leaf.key == NmKey::Fin(key.clone()) && sr.leaf_word.tag() & FLAG == 0 {
            leaf.value.clone()
        } else {
            None
        }
    }

    pub(crate) fn insert_impl(&self, handle: &mut Handle, key: K, value: V) -> bool {
        let mut stash: Stash<K, V> = None;
        let mut backoff = Backoff::new();
        loop {
            let sr = self.seek(&key, handle);
            let leaf = sr.leaf();
            let leaf_node = unsafe { leaf.deref() };
            if sr.leaf_word.tag() & (FLAG | TAG) != 0 {
                self.cleanup(&sr, handle);
                continue;
            }
            if leaf_node.key == NmKey::Fin(key.clone()) {
                if let Some((internal, new_leaf)) = stash.take() {
                    drop(internal);
                    unsafe { new_leaf.drop_owned() };
                }
                return false;
            }
            let (mut internal, new_leaf) = match stash.take() {
                Some(x) => x,
                None => {
                    let new_leaf =
                        Shared::from_owned(Node::leaf(NmKey::Fin(key.clone()), Some(value.clone())));
                    (
                        Box::new(Node {
                            key: NmKey::NegInf,
                            value: None,
                            left: Atomic::null(),
                            right: Atomic::null(),
                        }),
                        new_leaf,
                    )
                }
            };
            let new_key = NmKey::Fin(key.clone());
            if new_key < leaf_node.key {
                internal.key = leaf_node.key.clone();
                internal.left.store_mut(new_leaf);
                internal.right.store_mut(leaf);
            } else {
                internal.key = new_key;
                internal.left.store_mut(leaf);
                internal.right.store_mut(new_leaf);
            }
            let internal_ptr = Shared::from_raw(Box::into_raw(internal));
            match unsafe { &*sr.parent_edge }.compare_exchange(
                sr.leaf_word,
                internal_ptr,
                AcqRel,
                Acquire,
            ) {
                Ok(_) => return true,
                Err(_) => {
                    let internal = unsafe { Box::from_raw(internal_ptr.as_raw()) };
                    stash = Some((internal, new_leaf));
                    backoff.cas_failed();
                }
            }
        }
    }

    pub(crate) fn remove_impl(&self, handle: &mut Handle, key: &K) -> Option<V> {
        let mut backoff = Backoff::new();
        // Phase 1: injection.
        let (target_leaf, value) = loop {
            let sr = self.seek(key, handle);
            let leaf = sr.leaf();
            let leaf_node = unsafe { leaf.deref() };
            if leaf_node.key != NmKey::Fin(key.clone()) {
                return None;
            }
            if sr.leaf_word.tag() & FLAG != 0 {
                self.cleanup(&sr, handle);
                return None;
            }
            if sr.leaf_word.tag() & TAG != 0 {
                self.cleanup(&sr, handle);
                continue;
            }
            match unsafe { &*sr.parent_edge }.compare_exchange(
                sr.leaf_word,
                sr.leaf_word.with_tag(FLAG),
                AcqRel,
                Acquire,
            ) {
                Ok(_) => break (leaf, leaf_node.value.clone()),
                Err(_) => {
                    backoff.cas_failed();
                    continue;
                }
            }
        };

        // Phase 2: cleanup until physically detached.
        loop {
            let sr = self.seek(key, handle);
            if !sr.leaf().ptr_eq(target_leaf) {
                break;
            }
            self.cleanup(&sr, handle);
        }
        value
    }
}

impl<K: Ord + Clone, V: Clone> Default for NMTree<K, V> {
    fn default() -> Self {
        Self::new()
    }
}

impl<K, V> Drop for NMTree<K, V> {
    fn drop(&mut self) {
        fn free_rec<K, V>(edge: Shared<Node<K, V>>) {
            if edge.is_null() {
                return;
            }
            let node = unsafe { Box::from_raw(edge.with_tag(0).as_raw()) };
            free_rec(node.left.load(Relaxed));
            free_rec(node.right.load(Relaxed));
        }
        free_rec(self.r.left.load(Relaxed));
        free_rec(self.r.right.load(Relaxed));
        self.r.left.store_mut(Shared::null());
        self.r.right.store_mut(Shared::null());
    }
}

impl<K, V> ConcurrentMap<K, V> for NMTree<K, V>
where
    K: Ord + Clone + Send + Sync,
    V: Clone + Send + Sync,
{
    type Handle = Handle;

    fn new() -> Self {
        NMTree::new()
    }

    fn handle(&self) -> Handle {
        Handle::new()
    }

    fn get(&self, handle: &mut Handle, key: &K) -> Option<V> {
        self.get_impl(handle, key)
    }

    fn insert(&self, handle: &mut Handle, key: K, value: V) -> bool {
        self.insert_impl(handle, key, value)
    }

    fn remove(&self, handle: &mut Handle, key: &K) -> Option<V> {
        self.remove_impl(handle, key)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_utils;

    #[test]
    fn sequential_semantics() {
        test_utils::check_sequential::<NMTree<u64, u64>>();
    }

    #[test]
    fn concurrent_stress() {
        test_utils::check_concurrent::<NMTree<u64, u64>>(8, 1024);
    }

    #[test]
    fn striped() {
        test_utils::check_striped::<NMTree<u64, u64>>(4, 256);
    }

    #[test]
    fn heavy_churn_bounded_garbage() {
        let m: NMTree<u64, u64> = NMTree::new();
        let mut h = ConcurrentMap::handle(&m);
        let before = smr_common::counters::garbage_now();
        for round in 0..300u64 {
            for k in 0..10 {
                ConcurrentMap::insert(&m, &mut h, k, round);
            }
            for k in 0..10 {
                ConcurrentMap::remove(&m, &mut h, &k);
            }
        }
        let after = smr_common::counters::garbage_now();
        assert!(
            after.saturating_sub(before) < 4 * hp_plus::RECLAIM_PERIOD as u64 + 256,
            "garbage grew unboundedly: {before} -> {after}"
        );
    }
}
