//! Harris–Michael list with HP++ protection.
//!
//! Careful traversal (deleted nodes are unlinked one at a time, as in the HP
//! flavor) but with HP++'s under-approximating validation: protection only
//! fails when the *previous* node has been invalidated, so the frequent
//! restarts of the HP flavor (any change to the source link) become simple
//! retargets. Physical deletions go through `try_unlink` with the successor
//! as frontier.

use std::sync::atomic::Ordering::{AcqRel, Acquire, Relaxed};

use hp_plus::{try_protect, HazardPointer, Unlinked};
use smr_common::tagged::TAG_DELETED;
use smr_common::{Atomic, Backoff, ConcurrentMap, Shared};

use super::{is_marked, src_is_invalid, Handle, Node};

/// Harris–Michael list protected by HP++.
pub struct HMList<K, V> {
    head: Atomic<Node<K, V>>,
}

unsafe impl<K: Send + Sync, V: Send + Sync> Send for HMList<K, V> {}
unsafe impl<K: Send + Sync, V: Send + Sync> Sync for HMList<K, V> {}

struct FindResult<K, V> {
    found: bool,
    prev: *const Atomic<Node<K, V>>,
    cur: Shared<Node<K, V>>,
}

impl<K, V> HMList<K, V>
where
    K: Ord,
{
    /// Creates an empty list.
    pub fn new() -> Self {
        Self {
            head: Atomic::null(),
        }
    }

    fn find(&self, key: &K, handle: &mut Handle) -> FindResult<K, V> {
        'retry: loop {
            let mut prev: *const Atomic<Node<K, V>> = &self.head;
            let mut prev_node: Shared<Node<K, V>> = Shared::null();
            let mut cur = unsafe { &*prev }.load(Acquire).with_tag(0);
            loop {
                // Announce + validate: fails only if prev was invalidated;
                // a changed link just retargets `cur`.
                let src = prev_node;
                if !try_protect(&handle.hp_cur, &mut cur, unsafe { &*prev }, || {
                    src_is_invalid(src)
                }) {
                    continue 'retry;
                }
                if cur.is_null() {
                    return FindResult {
                        found: false,
                        prev,
                        cur,
                    };
                }
                let cur_node = unsafe { cur.deref() };
                let next = cur_node.next.load(Acquire);
                if is_marked(next.tag()) {
                    // Careful traversal: physically delete cur before
                    // stepping past it. Frontier = the successor.
                    let next_clean = next.with_tag(0);
                    let prev_atomic = prev;
                    let cur_copy = cur;
                    let unlinked = unsafe {
                        handle.thread.try_unlink(&[next_clean], || {
                            unsafe { &*prev_atomic }
                                .compare_exchange(cur_copy, next_clean, AcqRel, Acquire)
                                .ok()
                                .map(|_| Unlinked::single(cur_copy))
                        })
                    };
                    if unlinked {
                        cur = next_clean;
                        continue;
                    } else {
                        continue 'retry;
                    }
                }
                match cur_node.key.cmp(key) {
                    std::cmp::Ordering::Less => {
                        prev = &cur_node.next;
                        prev_node = cur;
                        HazardPointer::swap(&mut handle.hp_prev, &mut handle.hp_cur);
                        cur = next.with_tag(0);
                    }
                    std::cmp::Ordering::Equal => {
                        return FindResult {
                            found: true,
                            prev,
                            cur,
                        }
                    }
                    std::cmp::Ordering::Greater => {
                        return FindResult {
                            found: false,
                            prev,
                            cur,
                        }
                    }
                }
            }
        }
    }

    pub(crate) fn get_impl(&self, handle: &mut Handle, key: &K) -> Option<V>
    where
        V: Clone,
    {
        let r = self.find(key, handle);
        let out = if r.found {
            Some(unsafe { r.cur.deref() }.value.clone())
        } else {
            None
        };
        handle.reset();
        out
    }

    pub(crate) fn insert_impl(&self, handle: &mut Handle, key: K, value: V) -> bool {
        let mut node = Box::new(Node {
            next: Atomic::null(),
            key,
            value,
        });
        let mut backoff = Backoff::new();
        let out = loop {
            let r = self.find(&node.key, handle);
            if r.found {
                break false;
            }
            node.next.store_mut(r.cur);
            let new = Shared::from_raw(Box::into_raw(node));
            match unsafe { &*r.prev }.compare_exchange(r.cur, new, AcqRel, Acquire) {
                Ok(_) => break true,
                Err(_) => {
                    node = unsafe { Box::from_raw(new.as_raw()) };
                    backoff.cas_failed();
                }
            }
        };
        handle.reset();
        out
    }

    pub(crate) fn remove_impl(&self, handle: &mut Handle, key: &K) -> Option<V>
    where
        V: Clone,
    {
        let mut backoff = Backoff::new();
        let out = loop {
            let r = self.find(key, handle);
            if !r.found {
                break None;
            }
            let cur_node = unsafe { r.cur.deref() };
            let next = cur_node.next.fetch_or_tag(TAG_DELETED, AcqRel);
            if is_marked(next.tag()) {
                backoff.cas_failed();
                continue;
            }
            let value = cur_node.value.clone();
            // Physical deletion through try_unlink; the frontier (frozen
            // successor) stays protected until cur is invalidated.
            let next_clean = next.with_tag(0);
            let prev_atomic = r.prev;
            let cur_copy = r.cur;
            unsafe {
                handle.thread.try_unlink(&[next_clean], || {
                    unsafe { &*prev_atomic }
                        .compare_exchange(cur_copy, next_clean, AcqRel, Acquire)
                        .ok()
                        .map(|_| Unlinked::single(cur_copy))
                })
            };
            break Some(value);
        };
        handle.reset();
        out
    }
}

impl<K: Ord, V> Default for HMList<K, V> {
    fn default() -> Self {
        Self::new()
    }
}

impl<K, V> Drop for HMList<K, V> {
    fn drop(&mut self) {
        let mut cur = self.head.load_mut();
        while !cur.is_null() {
            let boxed = unsafe { Box::from_raw(cur.with_tag(0).as_raw()) };
            cur = boxed.next.load(Relaxed).with_tag(0);
        }
    }
}

impl<K, V> ConcurrentMap<K, V> for HMList<K, V>
where
    K: Ord + Send + Sync,
    V: Clone + Send + Sync,
{
    type Handle = Handle;

    fn new() -> Self {
        HMList::new()
    }

    fn handle(&self) -> Handle {
        Handle::new()
    }

    fn get(&self, handle: &mut Handle, key: &K) -> Option<V> {
        self.get_impl(handle, key)
    }

    fn insert(&self, handle: &mut Handle, key: K, value: V) -> bool {
        self.insert_impl(handle, key, value)
    }

    fn remove(&self, handle: &mut Handle, key: &K) -> Option<V> {
        self.remove_impl(handle, key)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_utils;

    #[test]
    fn sequential_semantics() {
        test_utils::check_sequential::<HMList<u64, u64>>();
    }

    #[test]
    fn concurrent_stress() {
        test_utils::check_concurrent::<HMList<u64, u64>>(8, 512);
    }

    #[test]
    fn striped() {
        test_utils::check_striped::<HMList<u64, u64>>(4, 64);
    }

    #[test]
    fn heavy_churn_bounded_garbage() {
        let m: HMList<u64, u64> = HMList::new();
        let mut h = ConcurrentMap::handle(&m);
        let before = smr_common::counters::garbage_now();
        for round in 0..300u64 {
            for k in 0..10 {
                ConcurrentMap::insert(&m, &mut h, k, round);
            }
            for k in 0..10 {
                ConcurrentMap::remove(&m, &mut h, &k);
            }
        }
        let after = smr_common::counters::garbage_now();
        assert!(
            after.saturating_sub(before) < 2 * hp_plus::RECLAIM_PERIOD as u64 + 128,
            "garbage grew unboundedly: {before} -> {after}"
        );
    }
}
