//! Bonsai tree under HP++.
//!
//! Dereferences are validated against the *source node's* invalidation mark
//! (published Bonsai links are immutable, so no link re-read is needed) and
//! the root CAS goes through `try_unlink`, invalidating the whole replaced
//! path. Unlike HP's validate-against-the-root, a protection here fails
//! only when its actual source was invalidated — concurrent updates
//! elsewhere in the tree do not abort the operation. This is why the paper
//! reports HP++ on Bonsai with essentially no overhead while HP suffers.
//!
//! Frontier: the children of replaced nodes that are not themselves
//! replaced (the shared subtrees). The paper notes Bonsai can skip frontier
//! protection; we pass it anyway — the cost is O(path) announcements per
//! update and it keeps the generic safety argument intact (see DESIGN.md).

use std::sync::atomic::Ordering::{Acquire, Relaxed};

use hp::HazardPointer;
use hp_plus::{Invalidate, Unlinked};
use smr_common::tagged::TAG_INVALIDATED;
use smr_common::{fence, Atomic, Backoff, ConcurrentMap, Shared};

use crate::bonsai_core::{Builder, Node, Protector, Restart};

unsafe impl<K, V> Invalidate for Node<K, V> {
    unsafe fn invalidate(ptr: *mut Self) {
        // Published links are immutable, so plain RMW-free stores suffice;
        // fetch_or keeps it simple and race-proof.
        let node = unsafe { &*ptr };
        node.left.fetch_or_tag(TAG_INVALIDATED, std::sync::atomic::Ordering::AcqRel);
        node.right
            .fetch_or_tag(TAG_INVALIDATED, std::sync::atomic::Ordering::AcqRel);
    }
}

fn is_invalid<K, V>(node: Shared<Node<K, V>>) -> bool {
    unsafe { node.deref() }.left.load(Acquire).tag() & TAG_INVALIDATED != 0
}

/// Per-thread state: HP++ registration and a growable pool of hazard slots.
pub struct Handle {
    thread: hp_plus::Thread,
    slots: Vec<HazardPointer>,
    used: usize,
}

impl Handle {
    fn new() -> Self {
        Self {
            thread: hp_plus::default_domain().register(),
            slots: Vec::new(),
            used: 0,
        }
    }

    fn reset(&mut self) {
        for s in &self.slots[..self.used] {
            s.reset();
        }
        self.used = 0;
    }

    fn announce<T>(&mut self, node: Shared<T>) {
        if self.used == self.slots.len() {
            self.slots.push(self.thread.hazard_pointer());
        }
        self.slots[self.used].protect_raw(node.as_raw());
        self.used += 1;
    }
}

impl Default for Handle {
    fn default() -> Self {
        Self::new()
    }
}

struct SrcCheck<'a, K, V> {
    handle: &'a mut Handle,
    root: &'a Atomic<Node<K, V>>,
    root0: Shared<Node<K, V>>,
}

impl<K, V> Protector<K, V> for SrcCheck<'_, K, V> {
    fn protect(
        &mut self,
        node: Shared<Node<K, V>>,
        src: Shared<Node<K, V>>,
    ) -> Result<(), Restart> {
        self.handle.announce(node);
        fence::light();
        let valid = if src.is_null() {
            // Read from the root pointer: re-validate the link itself.
            self.root.load(Acquire).with_tag(0) == self.root0
        } else {
            // Source is protected: only its invalidation aborts us.
            !is_invalid(src)
        };
        if valid {
            Ok(())
        } else {
            Err(Restart)
        }
    }
}

/// Non-blocking Bonsai tree protected by HP++.
pub struct BonsaiTree<K, V> {
    root: Atomic<Node<K, V>>,
}

unsafe impl<K: Send + Sync, V: Send + Sync> Send for BonsaiTree<K, V> {}
unsafe impl<K: Send + Sync, V: Send + Sync> Sync for BonsaiTree<K, V> {}

impl<K, V> BonsaiTree<K, V>
where
    K: Ord + Clone,
    V: Clone,
{
    /// Creates an empty tree.
    pub fn new() -> Self {
        Self {
            root: Atomic::null(),
        }
    }

    fn protect_root(&self, handle: &mut Handle) -> Shared<Node<K, V>> {
        loop {
            handle.reset();
            let root0 = self.root.load(Acquire).with_tag(0);
            if root0.is_null() {
                return root0;
            }
            handle.announce(root0);
            fence::light();
            if self.root.load(Acquire).with_tag(0) == root0 {
                return root0;
            }
        }
    }

    pub(crate) fn get_impl(&self, handle: &mut Handle, key: &K) -> Option<V> {
        'retry: loop {
            let root0 = self.protect_root(handle);
            let mut cur = root0;
            while !cur.is_null() {
                let node = unsafe { cur.deref() };
                let next = match key.cmp(&node.key) {
                    std::cmp::Ordering::Less => node.left.load(Acquire).with_tag(0),
                    std::cmp::Ordering::Greater => node.right.load(Acquire).with_tag(0),
                    std::cmp::Ordering::Equal => {
                        let out = node.value.clone();
                        handle.reset();
                        return Some(out);
                    }
                };
                if !next.is_null() {
                    handle.announce(next);
                    fence::light();
                    // Fine-grained validation: only our own source matters.
                    if is_invalid(cur) {
                        continue 'retry;
                    }
                }
                cur = next;
            }
            handle.reset();
            return None;
        }
    }

    fn publish(
        &self,
        handle: &mut Handle,
        root0: Shared<Node<K, V>>,
        new_root: Shared<Node<K, V>>,
        replaced: &[Shared<Node<K, V>>],
    ) -> bool {
        // Frontier: children of replaced nodes that survive (shared
        // subtrees), decided before the unlink, immutable afterwards.
        let mut frontier = Vec::new();
        for &r in replaced {
            let node = unsafe { r.deref() };
            for child in [
                node.left.load(Relaxed).with_tag(0),
                node.right.load(Relaxed).with_tag(0),
            ] {
                if !child.is_null() && !replaced.contains(&child) {
                    frontier.push(child);
                }
            }
        }
        let root = &self.root;
        unsafe {
            handle.thread.try_unlink(&frontier, || {
                root.compare_exchange(
                    root0,
                    new_root,
                    std::sync::atomic::Ordering::AcqRel,
                    Acquire,
                )
                .ok()
                .map(|_| match *replaced {
                    // Point updates replace one or two path nodes; only
                    // rebalancing rotations detach longer chains.
                    [one] => Unlinked::single(one),
                    [a, b] => Unlinked::pair(a, b),
                    _ => Unlinked::new(replaced.to_vec()),
                })
            })
        }
    }

    pub(crate) fn insert_impl(&self, handle: &mut Handle, key: K, value: V) -> bool {
        let mut backoff = Backoff::new();
        loop {
            let root0 = self.protect_root(handle);
            let mut b = Builder::new();
            let result = {
                let mut p = SrcCheck {
                    handle,
                    root: &self.root,
                    root0,
                };
                b.insert(&mut p, root0, &key, &value)
            };
            match result {
                Err(Restart) => b.abort(),
                Ok(None) => {
                    b.abort();
                    handle.reset();
                    return false;
                }
                Ok(Some(new_root)) => {
                    let replaced = std::mem::take(&mut b.replaced);
                    if self.publish(handle, root0, new_root, &replaced) {
                        handle.reset();
                        return true;
                    }
                    b.abort();
                    backoff.cas_failed();
                }
            }
        }
    }

    pub(crate) fn remove_impl(&self, handle: &mut Handle, key: &K) -> Option<V> {
        let mut backoff = Backoff::new();
        loop {
            let root0 = self.protect_root(handle);
            let mut b = Builder::new();
            let result = {
                let mut p = SrcCheck {
                    handle,
                    root: &self.root,
                    root0,
                };
                b.remove(&mut p, root0, key)
            };
            match result {
                Err(Restart) => b.abort(),
                Ok(None) => {
                    b.abort();
                    handle.reset();
                    return None;
                }
                Ok(Some((new_root, value))) => {
                    let replaced = std::mem::take(&mut b.replaced);
                    if self.publish(handle, root0, new_root, &replaced) {
                        handle.reset();
                        return Some(value);
                    }
                    b.abort();
                    backoff.cas_failed();
                }
            }
        }
    }
}

impl<K: Ord + Clone, V: Clone> Default for BonsaiTree<K, V> {
    fn default() -> Self {
        Self::new()
    }
}

impl<K, V> Drop for BonsaiTree<K, V> {
    fn drop(&mut self) {
        fn free_rec<K, V>(t: Shared<Node<K, V>>) {
            if t.is_null() {
                return;
            }
            let node = unsafe { Box::from_raw(t.as_raw()) };
            free_rec(node.left.load(Relaxed).with_tag(0));
            free_rec(node.right.load(Relaxed).with_tag(0));
        }
        free_rec(self.root.load_mut().with_tag(0));
        self.root.store_mut(Shared::null());
    }
}

impl<K, V> ConcurrentMap<K, V> for BonsaiTree<K, V>
where
    K: Ord + Clone + Send + Sync,
    V: Clone + Send + Sync,
{
    type Handle = Handle;

    fn new() -> Self {
        BonsaiTree::new()
    }

    fn handle(&self) -> Handle {
        Handle::new()
    }

    fn get(&self, handle: &mut Handle, key: &K) -> Option<V> {
        self.get_impl(handle, key)
    }

    fn insert(&self, handle: &mut Handle, key: K, value: V) -> bool {
        self.insert_impl(handle, key, value)
    }

    fn remove(&self, handle: &mut Handle, key: &K) -> Option<V> {
        self.remove_impl(handle, key)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_utils;

    #[test]
    fn sequential_semantics() {
        test_utils::check_sequential::<BonsaiTree<u64, u64>>();
    }

    #[test]
    fn concurrent_stress() {
        test_utils::check_concurrent::<BonsaiTree<u64, u64>>(6, 384);
    }

    #[test]
    fn striped() {
        test_utils::check_striped::<BonsaiTree<u64, u64>>(4, 96);
    }

    #[test]
    fn heavy_churn_bounded_garbage() {
        let m: BonsaiTree<u64, u64> = BonsaiTree::new();
        let mut h = ConcurrentMap::handle(&m);
        let before = smr_common::counters::garbage_now();
        for round in 0..200u64 {
            for k in 0..16 {
                ConcurrentMap::insert(&m, &mut h, k, round);
            }
            for k in 0..16 {
                ConcurrentMap::remove(&m, &mut h, &k);
            }
        }
        let after = smr_common::counters::garbage_now();
        assert!(
            after.saturating_sub(before) < 8 * hp_plus::RECLAIM_PERIOD as u64 + 512,
            "garbage grew unboundedly: {before} -> {after}"
        );
    }
}
