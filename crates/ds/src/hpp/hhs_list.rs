//! Harris's list with wait-free get, protected by HP++ — the paper's
//! running example (Algorithm 4).
//!
//! The search walks straight through chains of logically deleted nodes,
//! tracking `anchor` (the last node that was not logically deleted) and
//! `anchor_next` (its successor at that moment). When the destination is
//! reached, the whole chain `[anchor_next .. cur)` is unlinked with one CAS
//! via `try_unlink`, with `cur` as the frontier.
//!
//! Hazard bookkeeping follows Algorithm 4 lines 19–25: `anchor` and
//! `anchor_next` inherit protection from `hp_prev` as the traversal passes
//! them.

use std::sync::atomic::Ordering::{AcqRel, Acquire, Relaxed};

use hp_plus::{try_protect, HazardPointer, Unlinked};
use smr_common::tagged::TAG_DELETED;
use smr_common::{Atomic, Backoff, ConcurrentMap, Shared};

use super::{is_marked, src_is_invalid, Handle, Node};

/// Harris's list + wait-free get, protected by HP++.
pub struct HHSList<K, V> {
    head: Atomic<Node<K, V>>,
    /// Domain that nodes of this list retire into; handles returned by
    /// [`ConcurrentMap::handle`] register here.
    domain: &'static hp_plus::Domain,
}

unsafe impl<K: Send + Sync, V: Send + Sync> Send for HHSList<K, V> {}
unsafe impl<K: Send + Sync, V: Send + Sync> Sync for HHSList<K, V> {}

struct SearchResult<K, V> {
    found: bool,
    /// Link whose value is `cur`; either `&head` or a field of a node
    /// protected by `hp_prev`/`hp_anchor`.
    prev: *const Atomic<Node<K, V>>,
    cur: Shared<Node<K, V>>,
}

impl<K, V> HHSList<K, V>
where
    K: Ord,
{
    /// Creates an empty list in the default HP++ domain.
    pub fn new() -> Self {
        Self::new_in(hp_plus::default_domain())
    }

    /// Creates an empty list whose handles register with `domain`.
    pub fn new_in(domain: &'static hp_plus::Domain) -> Self {
        Self {
            head: Atomic::null(),
            domain,
        }
    }

    /// Algorithm 4's `TrySearch`. `None` means the traversal must restart
    /// (protection failure or lost unlink race).
    fn try_search(&self, key: &K, handle: &mut Handle) -> Option<SearchResult<K, V>> {
        let mut prev: *const Atomic<Node<K, V>> = &self.head;
        let mut prev_node: Shared<Node<K, V>> = Shared::null();
        let mut cur = unsafe { &*prev }.load(Acquire).with_tag(0);

        // Anchor state: non-null iff prev is logically deleted.
        let mut anchor: *const Atomic<Node<K, V>> = std::ptr::null();
        let mut anchor_node: Shared<Node<K, V>> = Shared::null();
        let mut anchor_next: Shared<Node<K, V>> = Shared::null();

        let found = loop {
            // Line 10: protect cur; fail only if prev was invalidated.
            let src = prev_node;
            if !try_protect(&handle.hp_cur, &mut cur, unsafe { &*prev }, || {
                src_is_invalid(src)
            }) {
                return None; // line 11: restart
            }
            if cur.is_null() {
                break false;
            }
            let cur_node = unsafe { cur.deref() };
            let next = cur_node.next.load(Acquire);
            if !is_marked(next.tag()) {
                if cur_node.key < *key {
                    // Lines 14–16: advance; the chain (if any) ended.
                    prev = &cur_node.next;
                    prev_node = cur;
                    HazardPointer::swap(&mut handle.hp_cur, &mut handle.hp_prev);
                    cur = next.with_tag(0);
                    anchor = std::ptr::null();
                    anchor_node = Shared::null();
                    anchor_next = Shared::null();
                } else {
                    break cur_node.key == *key; // lines 17–18
                }
            } else {
                // Lines 19–25: step through a logically deleted node.
                if anchor.is_null() {
                    anchor = prev;
                    anchor_node = prev_node;
                    anchor_next = cur;
                    HazardPointer::swap(&mut handle.hp_anchor, &mut handle.hp_prev);
                } else if anchor_next == prev_node {
                    HazardPointer::swap(&mut handle.hp_anchor_next, &mut handle.hp_prev);
                }
                prev = &cur_node.next;
                prev_node = cur;
                HazardPointer::swap(&mut handle.hp_prev, &mut handle.hp_cur);
                cur = next.with_tag(0);
            }
        };

        if !anchor.is_null() {
            // Lines 26–29: unlink the whole chain [anchor_next .. cur).
            let anchor_atomic = anchor;
            let expected = anchor_next;
            let target = cur;
            let unlinked = unsafe {
                handle.thread.try_unlink(&[target], || {
                    unsafe { &*anchor_atomic }
                        .compare_exchange(expected, target, AcqRel, Acquire)
                        .ok()
                        .map(|_| {
                            // Collect the detached chain. The links are
                            // frozen (all marked), so a relaxed walk is fine.
                            // One- and two-node chains — the common case —
                            // use the allocation-free variants.
                            let second =
                                unsafe { expected.deref() }.next.load(Relaxed).with_tag(0);
                            if second == target {
                                return Unlinked::single(expected);
                            }
                            let third =
                                unsafe { second.deref() }.next.load(Relaxed).with_tag(0);
                            if third == target {
                                return Unlinked::pair(expected, second);
                            }
                            let mut nodes = vec![expected, second];
                            let mut p = third;
                            while p != target {
                                nodes.push(p);
                                p = unsafe { p.deref() }.next.load(Relaxed).with_tag(0);
                            }
                            Unlinked::new(nodes)
                        })
                })
            };
            if unlinked {
                // Line 28: prev ← anchor.
                prev = anchor;
                prev_node = anchor_node;
                HazardPointer::swap(&mut handle.hp_prev, &mut handle.hp_anchor);
            } else {
                return None; // line 29
            }
        }
        let _ = prev_node;

        // Line 30: if cur has been logically deleted since, restart.
        if !cur.is_null() && is_marked(unsafe { cur.deref() }.next.load(Acquire).tag()) {
            return None;
        }
        Some(SearchResult { found, prev, cur })
    }

    fn search(&self, key: &K, handle: &mut Handle) -> SearchResult<K, V> {
        loop {
            if let Some(r) = self.try_search(key, handle) {
                return r;
            }
        }
    }

    pub(crate) fn get_impl(&self, handle: &mut Handle, key: &K) -> Option<V>
    where
        V: Clone,
    {
        // Optimistic get (Herlihy & Shavit): hand-over-hand protection but
        // no cleanup — logically deleted nodes are walked straight through.
        // Wait-free modulo protection failures (paper §4.3: lock-free).
        'retry: loop {
            let mut prev: *const Atomic<Node<K, V>> = &self.head;
            let mut prev_node: Shared<Node<K, V>> = Shared::null();
            let mut cur = unsafe { &*prev }.load(Acquire).with_tag(0);
            loop {
                let src = prev_node;
                if !try_protect(&handle.hp_cur, &mut cur, unsafe { &*prev }, || {
                    src_is_invalid(src)
                }) {
                    continue 'retry;
                }
                if cur.is_null() {
                    handle.reset();
                    return None;
                }
                let node = unsafe { cur.deref() };
                let next = node.next.load(Acquire);
                match node.key.cmp(key) {
                    std::cmp::Ordering::Less => {
                        prev = &node.next;
                        prev_node = cur;
                        HazardPointer::swap(&mut handle.hp_prev, &mut handle.hp_cur);
                        cur = next.with_tag(0);
                    }
                    std::cmp::Ordering::Equal => {
                        let out = if is_marked(next.tag()) {
                            None
                        } else {
                            Some(node.value.clone())
                        };
                        handle.reset();
                        return out;
                    }
                    std::cmp::Ordering::Greater => {
                        handle.reset();
                        return None;
                    }
                }
            }
        }
    }

    pub(crate) fn insert_impl(&self, handle: &mut Handle, key: K, value: V) -> bool {
        let mut node = Box::new(Node {
            next: Atomic::null(),
            key,
            value,
        });
        let mut backoff = Backoff::new();
        let out = loop {
            let r = self.search(&node.key, handle);
            if r.found {
                break false;
            }
            node.next.store_mut(r.cur);
            let new = Shared::from_raw(Box::into_raw(node));
            match unsafe { &*r.prev }.compare_exchange(r.cur, new, AcqRel, Acquire) {
                Ok(_) => break true,
                Err(_) => {
                    node = unsafe { Box::from_raw(new.as_raw()) };
                    backoff.cas_failed();
                }
            }
        };
        handle.reset();
        out
    }

    pub(crate) fn remove_impl(&self, handle: &mut Handle, key: &K) -> Option<V>
    where
        V: Clone,
    {
        let mut backoff = Backoff::new();
        let out = loop {
            let r = self.search(key, handle);
            if !r.found {
                break None;
            }
            let cur_node = unsafe { r.cur.deref() };
            let next = cur_node.next.fetch_or_tag(TAG_DELETED, AcqRel);
            if is_marked(next.tag()) {
                backoff.cas_failed();
                continue; // another deleter won; re-search
            }
            let value = cur_node.value.clone();
            // Eager physical deletion; on failure traversals clean up.
            let next_clean = next.with_tag(0);
            let prev_atomic = r.prev;
            let cur_copy = r.cur;
            unsafe {
                handle.thread.try_unlink(&[next_clean], || {
                    unsafe { &*prev_atomic }
                        .compare_exchange(cur_copy, next_clean, AcqRel, Acquire)
                        .ok()
                        .map(|_| Unlinked::single(cur_copy))
                })
            };
            break Some(value);
        };
        handle.reset();
        out
    }
}

impl<K: Ord, V> Default for HHSList<K, V> {
    fn default() -> Self {
        Self::new()
    }
}

impl<K, V> Drop for HHSList<K, V> {
    fn drop(&mut self) {
        let mut cur = self.head.load_mut();
        while !cur.is_null() {
            let boxed = unsafe { Box::from_raw(cur.with_tag(0).as_raw()) };
            cur = boxed.next.load(Relaxed).with_tag(0);
        }
    }
}

impl<K, V> ConcurrentMap<K, V> for HHSList<K, V>
where
    K: Ord + Send + Sync,
    V: Clone + Send + Sync,
{
    type Handle = Handle;

    fn new() -> Self {
        HHSList::new()
    }

    fn handle(&self) -> Handle {
        Handle::new_in(self.domain)
    }

    fn get(&self, handle: &mut Handle, key: &K) -> Option<V> {
        self.get_impl(handle, key)
    }

    fn insert(&self, handle: &mut Handle, key: K, value: V) -> bool {
        self.insert_impl(handle, key, value)
    }

    fn remove(&self, handle: &mut Handle, key: &K) -> Option<V> {
        self.remove_impl(handle, key)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_utils;

    #[test]
    fn sequential_semantics() {
        test_utils::check_sequential::<HHSList<u64, u64>>();
    }

    #[test]
    fn concurrent_stress() {
        test_utils::check_concurrent::<HHSList<u64, u64>>(8, 1024);
    }

    #[test]
    fn striped() {
        test_utils::check_striped::<HHSList<u64, u64>>(4, 64);
    }

    #[test]
    fn chain_unlink_through_deleted_nodes() {
        let m: HHSList<u64, u64> = HHSList::new();
        let mut h = ConcurrentMap::handle(&m);
        for k in 0..12 {
            assert!(ConcurrentMap::insert(&m, &mut h, k, k * 3));
        }
        // Delete a contiguous run, creating a marked chain.
        for k in 4..9 {
            assert_eq!(ConcurrentMap::remove(&m, &mut h, &k), Some(k * 3));
        }
        for k in 0..12 {
            let expected = if (4..9).contains(&k) { None } else { Some(k * 3) };
            assert_eq!(ConcurrentMap::get(&m, &mut h, &k), expected);
        }
        // And a search past the chain still inserts correctly.
        assert!(ConcurrentMap::insert(&m, &mut h, 6, 66));
        assert_eq!(ConcurrentMap::get(&m, &mut h, &6), Some(66));
    }

    #[test]
    fn heavy_churn_bounded_garbage() {
        let m: HHSList<u64, u64> = HHSList::new();
        let mut h = ConcurrentMap::handle(&m);
        let before = smr_common::counters::garbage_now();
        for round in 0..300u64 {
            for k in 0..10 {
                ConcurrentMap::insert(&m, &mut h, k, round);
            }
            for k in 0..10 {
                ConcurrentMap::remove(&m, &mut h, &k);
            }
        }
        let after = smr_common::counters::garbage_now();
        assert!(
            after.saturating_sub(before) < 2 * hp_plus::RECLAIM_PERIOD as u64 + 128,
            "garbage grew unboundedly: {before} -> {after}"
        );
    }
}
