//! Data structures protected by HP++ (the paper's §3).
//!
//! These traverse optimistically: protection (`hp_plus::try_protect`) only
//! fails when the *source* node has been invalidated by an unlinker, so
//! logically deleted nodes are traversed right through — the behavior the
//! original HP cannot support. Physical deletion goes through
//! `hp_plus::Thread::try_unlink`, which protects the unlink frontier and
//! defers invalidation.

mod bonsai;
mod hhs_list;
mod hm_list;
mod nm_tree;
mod stack;

pub use bonsai::{BonsaiTree, Handle as BonsaiHandle};
pub use hhs_list::HHSList;
pub use hm_list::HMList;
pub use nm_tree::{Handle as NMTreeHandle, NMTree};
pub use stack::{ElimStack, StackHandle, TreiberStack};

use hp_plus::{HazardPointer, Invalidate};
use smr_common::tagged::{TAG_DELETED, TAG_INVALIDATED};
use smr_common::{Atomic, Shared};
use std::sync::atomic::Ordering::{Acquire, Relaxed, Release};

/// Chaining hash map over HP++ HHSList buckets (paper §5).
pub type HashMap<K, V> = crate::hash_map::HashMap<K, V, HHSList<K, V>>;

/// Builds a [`HashMap`] whose buckets all retire into `domain`, so the
/// map's garbage is fully charged to that domain (one domain per KV shard).
pub fn hash_map_in<K, V>(domain: &'static hp_plus::Domain, buckets: usize) -> HashMap<K, V>
where
    K: Ord + std::hash::Hash + Send + Sync,
    V: Clone + Send + Sync,
{
    crate::hash_map::HashMap::with_buckets_by(buckets, || HHSList::new_in(domain))
}

/// Skiplist under HP++ in *hybrid* mode (§4.2): the multi-level find is
/// inherently careful, so it reuses the HP-style validated protection and
/// the plain retirement path of `hp_plus::Thread`. See DESIGN.md for why
/// the wait-free-get variant is not reproduced.
pub type SkipList<K, V> = crate::hp::skip_list::SkipList<K, V, hp_plus::Thread>;

/// Ellen et al. tree under HP++ in *hybrid* mode (§4.2): EFRB needs no
/// optimistic traversal (HP already supports it), so HP++ adds nothing but
/// its domain — the paper measures HP++ at 80-90% of HP here.
pub type EFRBTree<K, V> = crate::hp::efrb_tree::EFRBTree<K, V, hp_plus::Thread>;

/// List node shared by the HP++ list flavors.
///
/// Bit 0 of `next` is the logical deletion mark, bit 1 the HP++
/// invalidation mark.
pub(crate) struct Node<K, V> {
    pub(crate) next: Atomic<Node<K, V>>,
    pub(crate) key: K,
    pub(crate) value: V,
}

impl<K, V> Node<K, V> {
    pub(crate) fn is_invalid(&self) -> bool {
        self.next.load(Acquire).tag() & TAG_INVALIDATED != 0
    }
}

unsafe impl<K, V> Invalidate for Node<K, V> {
    unsafe fn invalidate(ptr: *mut Self) {
        // A plain store suffices: the node is unlinked, so its link no
        // longer changes (Assumption 1).
        let node = unsafe { &*ptr };
        let cur = node.next.load(Relaxed);
        node.next
            .store(cur.with_tag(cur.tag() | TAG_INVALIDATED), Release);
    }
}

/// Per-thread state for the HP++ lists: HP++ registration plus the four
/// hazard pointers of Algorithm 4 (`hp_prev`, `hp_cur`, `hp_anchor`,
/// `hp_anchor_next`).
pub struct Handle {
    pub(crate) thread: hp_plus::Thread,
    pub(crate) hp_prev: HazardPointer,
    pub(crate) hp_cur: HazardPointer,
    pub(crate) hp_anchor: HazardPointer,
    pub(crate) hp_anchor_next: HazardPointer,
}

impl Handle {
    /// Registers with the default HP++ domain.
    pub fn new() -> Self {
        Self::new_in(hp_plus::default_domain())
    }

    /// Registers with an explicit HP++ domain. Structures that carry their
    /// own reclamation domain (one per KV shard, say) hand it in here so
    /// garbage pressure and collector stalls stay inside that domain.
    pub fn new_in(domain: &'static hp_plus::Domain) -> Self {
        let mut thread = domain.register();
        let hp_prev = thread.hazard_pointer();
        let hp_cur = thread.hazard_pointer();
        let hp_anchor = thread.hazard_pointer();
        let hp_anchor_next = thread.hazard_pointer();
        Self {
            thread,
            hp_prev,
            hp_cur,
            hp_anchor,
            hp_anchor_next,
        }
    }

    /// Unreclaimed blocks charged to this handle's thread: retired bags
    /// plus unlinked batches still awaiting deferred invalidation.
    pub fn garbage_count(&self) -> usize {
        self.thread.garbage_count()
    }

    /// Forces an invalidation + reclamation pass now (normally triggered
    /// every `RECLAIM_PERIOD` unlinks).
    pub fn reclaim(&mut self) {
        self.thread.reclaim()
    }

    pub(crate) fn reset(&mut self) {
        self.hp_prev.reset();
        self.hp_cur.reset();
        self.hp_anchor.reset();
        self.hp_anchor_next.reset();
    }
}

impl Default for Handle {
    fn default() -> Self {
        Self::new()
    }
}

/// `is_invalid` predicate for a traversal source: the list head (null
/// source) is never invalid.
pub(crate) fn src_is_invalid<K, V>(src: Shared<Node<K, V>>) -> bool {
    !src.is_null() && unsafe { src.deref() }.is_invalid()
}

/// Helper: the logical-deletion bit of a loaded link.
pub(crate) fn is_marked(tag: usize) -> bool {
    tag & TAG_DELETED != 0
}
