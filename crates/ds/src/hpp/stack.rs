//! Treiber's stack under HP++ — the smallest complete `try_unlink` client —
//! plus its elimination-array variant ([`ElimStack`]).
//!
//! A popped head node's frontier is its successor (the new head): it is
//! reachable by one link from the unlinked node and is not itself
//! unlinked. Head nodes are immutable once pushed (Assumption 1 holds for
//! free, §4.2). CAS retry loops back off via [`smr_common::Backoff`]; the
//! elimination variant diverts colliding push/pop pairs through
//! [`crate::elim::ExchangerArray`]. Eliminated nodes never become reachable,
//! so the exchange needs neither `try_protect` nor `try_unlink`.

use std::sync::atomic::Ordering::{AcqRel, Acquire, Relaxed, Release};

use hp_plus::{try_protect, HazardPointer, Invalidate, Unlinked};
use smr_common::tagged::TAG_INVALIDATED;
use smr_common::{Atomic, Backoff, Shared};

use crate::elim::ExchangerArray;

pub(crate) struct Node<T> {
    next: Atomic<Node<T>>,
    value: Option<T>,
}

unsafe impl<T> Invalidate for Node<T> {
    unsafe fn invalidate(ptr: *mut Self) {
        let node = unsafe { &*ptr };
        let cur = node.next.load(Relaxed);
        node.next
            .store(cur.with_tag(cur.tag() | TAG_INVALIDATED), Release);
    }
}

/// A lock-free stack (Treiber 1986) reclaimed with HP++.
pub struct TreiberStack<T> {
    head: Atomic<Node<T>>,
}

unsafe impl<T: Send + Sync> Send for TreiberStack<T> {}
unsafe impl<T: Send + Sync> Sync for TreiberStack<T> {}

/// Per-thread state.
pub struct StackHandle {
    thread: hp_plus::Thread,
    hp: HazardPointer,
}

impl StackHandle {
    /// Registers with the default HP++ domain.
    pub fn new() -> Self {
        let mut thread = hp_plus::default_domain().register();
        let hp = thread.hazard_pointer();
        Self { thread, hp }
    }
}

impl Default for StackHandle {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> TreiberStack<T> {
    /// Creates an empty stack.
    pub fn new() -> Self {
        Self {
            head: Atomic::null(),
        }
    }

    /// Creates a per-thread handle.
    pub fn handle(&self) -> StackHandle {
        StackHandle::new()
    }

    /// Pushes a value.
    pub fn push(&self, value: T) {
        let node = Shared::from_owned(Node {
            next: Atomic::null(),
            value: Some(value),
        });
        let node_ref = unsafe { node.deref() };
        let mut head = self.head.load(Relaxed);
        let mut backoff = Backoff::new();
        loop {
            node_ref.next.store(head, Relaxed);
            match self.head.compare_exchange(head, node, AcqRel, Acquire) {
                Ok(_) => return,
                Err(h) => {
                    head = h;
                    backoff.cas_failed();
                }
            }
        }
    }

    /// Pops the top value: protect via `try_protect` (source = the head
    /// link, never invalid), detach via `try_unlink` (frontier = successor).
    pub fn pop(&self, handle: &mut StackHandle) -> Option<T>
    where
        T: Send,
    {
        let mut backoff = Backoff::new();
        loop {
            let mut h = self.head.load(Acquire).with_tag(0);
            if h.is_null() {
                return None;
            }
            if !try_protect(&handle.hp, &mut h, &self.head, || false) {
                backoff.cas_failed();
                continue;
            }
            if h.is_null() {
                return None;
            }
            let next = unsafe { h.deref() }.next.load(Acquire).with_tag(0);
            let head = &self.head;
            let unlinked = unsafe {
                handle.thread.try_unlink(&[next], || {
                    head.compare_exchange(h, next, AcqRel, Acquire)
                        .ok()
                        .map(|_| Unlinked::single(h))
                })
            };
            if unlinked {
                let value = unsafe { (*h.as_raw()).value.take() };
                handle.hp.reset();
                return value;
            }
            backoff.cas_failed();
        }
    }

    /// Whether the stack is (momentarily) empty.
    pub fn is_empty(&self) -> bool {
        self.head.load(Acquire).is_null()
    }
}

impl<T> Default for TreiberStack<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> Drop for TreiberStack<T> {
    fn drop(&mut self) {
        let mut cur = self.head.load_mut().with_tag(0);
        while !cur.is_null() {
            let node = unsafe { Box::from_raw(cur.as_raw()) };
            cur = node.next.load(Relaxed).with_tag(0);
        }
    }
}

/// HP++ Treiber stack + elimination array.
///
/// Same protocol as [`crate::hp::ElimStack`]: on a failed head CAS the
/// operation visits the exchanger, where a colliding push/pop pair cancels
/// without touching the head. An eliminated node was never reachable from
/// the stack, so its handoff bypasses HP++ entirely — no `try_protect`, no
/// `try_unlink`, no invalidation mark; the popper frees it directly.
pub struct ElimStack<T> {
    stack: TreiberStack<T>,
    elim: ExchangerArray<Node<T>>,
}

unsafe impl<T: Send + Sync> Send for ElimStack<T> {}
unsafe impl<T: Send + Sync> Sync for ElimStack<T> {}

impl<T> ElimStack<T> {
    /// Creates an empty stack.
    pub fn new() -> Self {
        Self {
            stack: TreiberStack::new(),
            elim: ExchangerArray::new(),
        }
    }

    /// Creates a per-thread handle (same state as the plain stack's).
    pub fn handle(&self) -> StackHandle {
        StackHandle::new()
    }

    /// Pushes a value, eliminating against a concurrent pop when contended.
    pub fn push(&self, value: T) {
        let node = Shared::from_owned(Node {
            next: Atomic::null(),
            value: Some(value),
        });
        let raw = node.as_raw();
        let mut backoff = Backoff::new();
        loop {
            let head = self.stack.head.load(Relaxed);
            unsafe { node.deref() }.next.store(head, Relaxed);
            if self
                .stack
                .head
                .compare_exchange(head, node, AcqRel, Acquire)
                .is_ok()
            {
                return;
            }
            backoff.cas_failed();
            if unsafe { self.elim.try_push(raw, &mut backoff) } {
                return;
            }
        }
    }

    /// Pops the top value, eliminating against a concurrent push when
    /// contended.
    pub fn pop(&self, handle: &mut StackHandle) -> Option<T>
    where
        T: Send,
    {
        let mut backoff = Backoff::new();
        loop {
            let mut h = self.stack.head.load(Acquire).with_tag(0);
            if h.is_null() {
                // Empty stack: a waiting pusher may still serve us.
                if let Some(node) = self.elim.try_pop(&mut backoff) {
                    let mut node = unsafe { Box::from_raw(node) };
                    return node.value.take();
                }
                return None;
            }
            if !try_protect(&handle.hp, &mut h, &self.stack.head, || false) {
                backoff.cas_failed();
                if let Some(node) = self.elim.try_pop(&mut backoff) {
                    let mut node = unsafe { Box::from_raw(node) };
                    return node.value.take();
                }
                continue;
            }
            if h.is_null() {
                return None;
            }
            let next = unsafe { h.deref() }.next.load(Acquire).with_tag(0);
            let head = &self.stack.head;
            let unlinked = unsafe {
                handle.thread.try_unlink(&[next], || {
                    head.compare_exchange(h, next, AcqRel, Acquire)
                        .ok()
                        .map(|_| Unlinked::single(h))
                })
            };
            if unlinked {
                let value = unsafe { (*h.as_raw()).value.take() };
                handle.hp.reset();
                return value;
            }
            backoff.cas_failed();
            if let Some(node) = self.elim.try_pop(&mut backoff) {
                handle.hp.reset();
                let mut node = unsafe { Box::from_raw(node) };
                return node.value.take();
            }
        }
    }

    /// Whether the stack is (momentarily) empty.
    pub fn is_empty(&self) -> bool {
        self.stack.is_empty()
    }
}

impl<T> Default for ElimStack<T> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering::Relaxed as R};

    #[test]
    fn push_pop_lifo() {
        let s = TreiberStack::new();
        let mut h = s.handle();
        for i in 0..10 {
            s.push(i);
        }
        for i in (0..10).rev() {
            assert_eq!(s.pop(&mut h), Some(i));
        }
        assert_eq!(s.pop(&mut h), None);
    }

    #[test]
    fn concurrent_push_pop_conserves_sum() {
        let s = TreiberStack::new();
        let popped_sum = AtomicU64::new(0);
        let pushed_sum = AtomicU64::new(0);
        std::thread::scope(|scope| {
            for t in 0..4u64 {
                let s = &s;
                let pushed_sum = &pushed_sum;
                scope.spawn(move || {
                    for i in 0..1000 {
                        let v = t * 10_000 + i;
                        s.push(v);
                        pushed_sum.fetch_add(v, R);
                    }
                });
            }
            for _ in 0..4 {
                let s = &s;
                let popped_sum = &popped_sum;
                scope.spawn(move || {
                    let mut h = s.handle();
                    let mut got = 0;
                    while got < 1000 {
                        if let Some(v) = s.pop(&mut h) {
                            popped_sum.fetch_add(v, R);
                            got += 1;
                        }
                    }
                });
            }
        });
        assert_eq!(popped_sum.load(R), pushed_sum.load(R));
    }

    #[test]
    fn garbage_stays_bounded() {
        let s = TreiberStack::new();
        let mut h = s.handle();
        let before = smr_common::counters::garbage_now();
        for round in 0..400u64 {
            for i in 0..8 {
                s.push(round * 8 + i);
            }
            for _ in 0..8 {
                s.pop(&mut h);
            }
        }
        let grown = smr_common::counters::garbage_now().saturating_sub(before);
        assert!(grown < 2 * hp_plus::RECLAIM_PERIOD as u64 + 64, "grew {grown}");
    }

    #[test]
    fn elim_stack_lifo_and_concurrent_sum() {
        let s = ElimStack::new();
        let mut h = s.handle();
        for i in 0..10 {
            s.push(i);
        }
        for i in (0..10).rev() {
            assert_eq!(s.pop(&mut h), Some(i));
        }
        assert_eq!(s.pop(&mut h), None);

        let popped_sum = AtomicU64::new(0);
        let pushed_sum = AtomicU64::new(0);
        std::thread::scope(|scope| {
            for t in 0..2u64 {
                let s = &s;
                let pushed_sum = &pushed_sum;
                scope.spawn(move || {
                    for i in 0..1000 {
                        let v = t * 10_000 + i;
                        s.push(v);
                        pushed_sum.fetch_add(v, R);
                    }
                });
            }
            for _ in 0..2 {
                let s = &s;
                let popped_sum = &popped_sum;
                scope.spawn(move || {
                    let mut h = s.handle();
                    let mut got = 0;
                    while got < 1000 {
                        if let Some(v) = s.pop(&mut h) {
                            popped_sum.fetch_add(v, R);
                            got += 1;
                        }
                    }
                });
            }
        });
        assert_eq!(popped_sum.load(R), pushed_sum.load(R));
        let mut h = s.handle();
        assert_eq!(s.pop(&mut h), None);
    }
}
