//! Harris–Michael linked list for guard-based schemes.
//!
//! The *careful* traversal (paper §2.2, Fig. 3): logically deleted nodes are
//! cleaned up one at a time during the search, and the traversal never takes
//! a step out of a deleted node.

use std::marker::PhantomData;
use std::sync::atomic::Ordering::{AcqRel, Acquire, Relaxed};

use smr_common::tagged::TAG_DELETED;
use smr_common::{Atomic, Backoff, ConcurrentMap, GuardedScheme, SchemeGuard, Shared};

pub(crate) struct Node<K, V> {
    pub(crate) next: Atomic<Node<K, V>>,
    pub(crate) key: K,
    pub(crate) value: V,
}

/// A sorted lock-free linked-list map (Michael 2002), guard-based flavor.
pub struct HMList<K, V, S> {
    head: Atomic<Node<K, V>>,
    _marker: PhantomData<S>,
}

unsafe impl<K: Send + Sync, V: Send + Sync, S> Send for HMList<K, V, S> {}
unsafe impl<K: Send + Sync, V: Send + Sync, S> Sync for HMList<K, V, S> {}

struct FindResult<K, V> {
    found: bool,
    /// The link that held `cur` (head or a protected node's next field).
    prev: *const Atomic<Node<K, V>>,
    cur: Shared<Node<K, V>>,
}

impl<K, V, S> HMList<K, V, S>
where
    K: Ord,
    S: GuardedScheme,
{
    /// Creates an empty list.
    pub fn new() -> Self {
        Self {
            head: Atomic::null(),
            _marker: PhantomData,
        }
    }

    /// Michael's find: positions on the first node with key ≥ `key`,
    /// physically deleting any marked node it encounters.
    fn find(&self, key: &K, guard: &mut S::Guard<'_>) -> FindResult<K, V> {
        'retry: loop {
            if !guard.validate() {
                guard.refresh();
                continue 'retry;
            }
            let mut prev: *const Atomic<Node<K, V>> = &self.head;
            let mut cur = unsafe { &*prev }.load(Acquire);
            loop {
                // A traverser preempted between validation and the next
                // link load is exactly what ejection (PEBR) must survive.
                smr_common::fault_point!("ds::guarded::traverse::validate");
                if !guard.validate() {
                    guard.refresh();
                    continue 'retry;
                }
                if cur.is_null() {
                    return FindResult {
                        found: false,
                        prev,
                        cur,
                    };
                }
                let cur_node = unsafe { cur.deref() };
                let next = cur_node.next.load(Acquire);
                if next.tag() & TAG_DELETED != 0 {
                    // cur is logically deleted: try to unlink it here.
                    let next_clean = next.with_tag(0);
                    match unsafe { &*prev }.compare_exchange(cur, next_clean, AcqRel, Acquire) {
                        Ok(_) => {
                            unsafe { guard.defer_destroy(cur) };
                            cur = next_clean;
                            continue;
                        }
                        Err(_) => continue 'retry,
                    }
                }
                match cur_node.key.cmp(key) {
                    std::cmp::Ordering::Less => {
                        prev = &cur_node.next;
                        cur = next;
                    }
                    std::cmp::Ordering::Equal => {
                        return FindResult {
                            found: true,
                            prev,
                            cur,
                        }
                    }
                    std::cmp::Ordering::Greater => {
                        return FindResult {
                            found: false,
                            prev,
                            cur,
                        }
                    }
                }
            }
        }
    }

    pub(crate) fn get_impl(&self, handle: &mut S::Handle, key: &K) -> Option<V>
    where
        V: Clone,
    {
        let mut guard = S::pin(handle);
        let r = self.find(key, &mut guard);
        if r.found {
            Some(unsafe { r.cur.deref() }.value.clone())
        } else {
            None
        }
    }

    pub(crate) fn insert_impl(&self, handle: &mut S::Handle, key: K, value: V) -> bool {
        let mut guard = S::pin(handle);
        let mut node = Box::new(Node {
            next: Atomic::null(),
            key,
            value,
        });
        let mut backoff = Backoff::new();
        loop {
            let r = self.find(&node.key, &mut guard);
            if r.found {
                return false; // node dropped here
            }
            node.next.store_mut(r.cur);
            let new = Shared::from_raw(Box::into_raw(node));
            match unsafe { &*r.prev }.compare_exchange(r.cur, new, AcqRel, Acquire) {
                Ok(_) => return true,
                Err(_) => {
                    node = unsafe { Box::from_raw(new.as_raw()) };
                    backoff.cas_failed();
                }
            }
        }
    }

    pub(crate) fn remove_impl(&self, handle: &mut S::Handle, key: &K) -> Option<V>
    where
        V: Clone,
    {
        let mut guard = S::pin(handle);
        let mut backoff = Backoff::new();
        loop {
            let r = self.find(key, &mut guard);
            if !r.found {
                return None;
            }
            let cur_node = unsafe { r.cur.deref() };
            // Logically delete. If someone else marked first, retry.
            let next = cur_node.next.fetch_or_tag(TAG_DELETED, AcqRel);
            if next.tag() & TAG_DELETED != 0 {
                backoff.cas_failed();
                continue;
            }
            let value = cur_node.value.clone();
            // Try the physical deletion; a loser leaves it to later finds.
            if unsafe { &*r.prev }
                .compare_exchange(r.cur, next.with_tag(0), AcqRel, Acquire)
                .is_ok()
            {
                unsafe { guard.defer_destroy(r.cur) };
            }
            return Some(value);
        }
    }

    /// Number of reachable (non-deleted) nodes; not linearizable, test use.
    pub fn len_approx(&self) -> usize {
        let mut n = 0;
        let mut cur = self.head.load(Acquire);
        while !cur.is_null() {
            let node = unsafe { cur.with_tag(0).deref() };
            let next = node.next.load(Acquire);
            if next.tag() & TAG_DELETED == 0 {
                n += 1;
            }
            cur = next.with_tag(0);
        }
        n
    }
}

impl<K, V, S> Default for HMList<K, V, S>
where
    K: Ord,
    S: GuardedScheme,
{
    fn default() -> Self {
        Self::new()
    }
}

impl<K, V, S> Drop for HMList<K, V, S> {
    fn drop(&mut self) {
        // Exclusive access: free every still-linked node.
        let mut cur = self.head.load_mut();
        while !cur.is_null() {
            let boxed = unsafe { Box::from_raw(cur.with_tag(0).as_raw()) };
            cur = boxed.next.load(Relaxed).with_tag(0);
        }
    }
}

impl<K, V, S> ConcurrentMap<K, V> for HMList<K, V, S>
where
    K: Ord + Send + Sync,
    V: Clone + Send + Sync,
    S: GuardedScheme,
{
    type Handle = S::Handle;

    fn new() -> Self {
        HMList::new()
    }

    fn handle(&self) -> S::Handle {
        S::handle()
    }

    fn get(&self, handle: &mut S::Handle, key: &K) -> Option<V> {
        self.get_impl(handle, key)
    }

    fn insert(&self, handle: &mut S::Handle, key: K, value: V) -> bool {
        self.insert_impl(handle, key, value)
    }

    fn remove(&self, handle: &mut S::Handle, key: &K) -> Option<V> {
        self.remove_impl(handle, key)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_utils;

    #[test]
    fn sequential_semantics_ebr() {
        test_utils::check_sequential::<HMList<u64, u64, ebr::Ebr>>();
    }

    #[test]
    fn sequential_semantics_nr() {
        test_utils::check_sequential::<HMList<u64, u64, nr::Nr>>();
    }

    #[test]
    fn sequential_semantics_pebr() {
        test_utils::check_sequential::<HMList<u64, u64, pebr::Pebr>>();
    }

    #[test]
    fn concurrent_stress_ebr() {
        test_utils::check_concurrent::<HMList<u64, u64, ebr::Ebr>>(8, 512);
    }

    #[test]
    fn concurrent_stress_pebr() {
        test_utils::check_concurrent::<HMList<u64, u64, pebr::Pebr>>(8, 512);
    }

    #[test]
    fn ordered_and_deduplicated() {
        let m: HMList<u64, u64, ebr::Ebr> = HMList::new();
        let mut h = ConcurrentMap::handle(&m);
        assert!(m.insert(&mut h, 5, 50));
        assert!(m.insert(&mut h, 1, 10));
        assert!(m.insert(&mut h, 3, 30));
        assert!(!m.insert(&mut h, 3, 31), "duplicate key must be rejected");
        assert_eq!(m.get(&mut h, &3), Some(30));
        assert_eq!(m.remove(&mut h, &3), Some(30));
        assert_eq!(m.get(&mut h, &3), None);
        assert_eq!(m.len_approx(), 2);
    }
}
