//! Ellen–Fatourou–Ruppert–van Breugel non-blocking external BST for
//! guard-based schemes.
//!
//! Updates coordinate through *Info descriptors* installed in each internal
//! node's `update` word (state in the low tag bits: CLEAN / IFLAG / DFLAG /
//! MARK); helpers complete flagged operations. Descriptor pointers double
//! as version numbers: a word that moved away from a descriptor never
//! reverts while any observer's critical section is live, which is what
//! makes the flag CAS ABA-safe under the guard-based schemes.

use std::marker::PhantomData;
use std::sync::atomic::Ordering::{AcqRel, Acquire, Relaxed};

use smr_common::{Atomic, Backoff, ConcurrentMap, GuardedScheme, SchemeGuard, Shared};

use super::nm_tree::NmKey;

/// `update` word states (tag bits).
pub(crate) const CLEAN: usize = 0;
pub(crate) const IFLAG: usize = 1;
pub(crate) const DFLAG: usize = 2;
pub(crate) const MARK: usize = 3;

/// Operation descriptor.
pub(crate) enum Info<K, V> {
    /// A pending insert: replace leaf `l` under `p` with `new_internal`.
    Insert {
        p: Shared<Node<K, V>>,
        new_internal: Shared<Node<K, V>>,
        l: Shared<Node<K, V>>,
    },
    /// A pending delete of leaf `l` (parent `p`, grandparent `gp`).
    Delete {
        gp: Shared<Node<K, V>>,
        p: Shared<Node<K, V>>,
        l: Shared<Node<K, V>>,
        /// `p.update` as observed by the deleter (expected by the mark CAS).
        pupdate: Shared<Info<K, V>>,
    },
}

pub(crate) struct Node<K, V> {
    pub(crate) key: NmKey<K>,
    pub(crate) value: Option<V>,
    pub(crate) update: Atomic<Info<K, V>>,
    pub(crate) left: Atomic<Node<K, V>>,
    pub(crate) right: Atomic<Node<K, V>>,
}

/// Insert-retry stash: a preallocated internal node and its new leaf,
/// reused across CAS retries instead of reallocating.
type Stash<K, V> = Option<(Box<Node<K, V>>, Shared<Node<K, V>>)>;

impl<K, V> Node<K, V> {
    pub(crate) fn leaf(key: NmKey<K>, value: Option<V>) -> Self {
        Self {
            key,
            value,
            update: Atomic::null(),
            left: Atomic::null(),
            right: Atomic::null(),
        }
    }

    pub(crate) fn is_leaf(&self) -> bool {
        self.left.load(Relaxed).is_null()
    }
}

pub(crate) struct SearchResult<K, V> {
    pub(crate) gp: Shared<Node<K, V>>,
    pub(crate) p: Shared<Node<K, V>>,
    pub(crate) l: Shared<Node<K, V>>,
    pub(crate) gpupdate: Shared<Info<K, V>>,
    pub(crate) pupdate: Shared<Info<K, V>>,
}

/// Ellen et al. external BST, guard-based flavor.
pub struct EFRBTree<K, V, S> {
    root: Box<Node<K, V>>,
    _marker: PhantomData<S>,
}

unsafe impl<K: Send + Sync, V: Send + Sync, S> Send for EFRBTree<K, V, S> {}
unsafe impl<K: Send + Sync, V: Send + Sync, S> Sync for EFRBTree<K, V, S> {}

impl<K, V, S> EFRBTree<K, V, S>
where
    K: Ord + Clone,
    V: Clone,
    S: GuardedScheme,
{
    /// Creates an empty tree (root sentinel with two infinite leaves).
    pub fn new() -> Self {
        let root = Node {
            key: NmKey::Inf2,
            value: None,
            update: Atomic::null(),
            left: Atomic::new(Node::leaf(NmKey::Inf1, None)),
            right: Atomic::new(Node::leaf(NmKey::Inf2, None)),
        };
        Self {
            root: Box::new(root),
            _marker: PhantomData,
        }
    }

    fn root_shared(&self) -> Shared<Node<K, V>> {
        Shared::from_raw(self.root.as_ref() as *const _ as *mut _)
    }

    fn search(&self, key: &NmKey<K>) -> SearchResult<K, V> {
        let mut gp = Shared::null();
        let mut p = Shared::null();
        let mut gpupdate = Shared::null();
        let mut pupdate = Shared::null();
        let mut l = self.root_shared();
        loop {
            let node = unsafe { l.deref() };
            if node.is_leaf() {
                break;
            }
            gp = p;
            p = l;
            gpupdate = pupdate;
            pupdate = node.update.load(Acquire);
            l = if *key < node.key {
                node.left.load(Acquire)
            } else {
                node.right.load(Acquire)
            }
            .with_tag(0);
        }
        SearchResult {
            gp,
            p,
            l,
            gpupdate,
            pupdate,
        }
    }

    /// Swings whichever child edge of `parent` holds `old` to `new`.
    fn cas_child(
        &self,
        parent: Shared<Node<K, V>>,
        old: Shared<Node<K, V>>,
        new: Shared<Node<K, V>>,
    ) -> bool {
        let pn = unsafe { parent.deref() };
        let edge = if pn.left.load(Acquire).with_tag(0) == old.with_tag(0) {
            &pn.left
        } else if pn.right.load(Acquire).with_tag(0) == old.with_tag(0) {
            &pn.right
        } else {
            return false;
        };
        edge.compare_exchange(old, new, AcqRel, Acquire).is_ok()
    }

    fn help(&self, u: Shared<Info<K, V>>, guard: &S::Guard<'_>) {
        match u.tag() {
            IFLAG => self.help_insert(u.with_tag(0), guard),
            MARK => self.help_marked(u.with_tag(0), guard),
            DFLAG => {
                self.help_delete(u.with_tag(0), guard);
            }
            _ => {}
        }
    }

    fn help_insert(&self, op: Shared<Info<K, V>>, _guard: &S::Guard<'_>) {
        let Info::Insert { p, new_internal, l } = (unsafe { op.deref() }) else {
            return;
        };
        self.cas_child(*p, *l, *new_internal);
        let pn = unsafe { p.deref() };
        let _ = pn
            .update
            .compare_exchange(op.with_tag(IFLAG), op.with_tag(CLEAN), AcqRel, Acquire);
    }

    fn help_delete(&self, op: Shared<Info<K, V>>, guard: &S::Guard<'_>) -> bool {
        let Info::Delete { gp, p, pupdate, .. } = (unsafe { op.deref() }) else {
            return false;
        };
        let pn = unsafe { p.deref() };
        match pn
            .update
            .compare_exchange(*pupdate, op.with_tag(MARK), AcqRel, Acquire)
        {
            Ok(_) => {
                // We marked p; retire the descriptor it displaced.
                let old = pupdate.with_tag(0);
                if !old.is_null() {
                    unsafe { guard.defer_destroy(old) };
                }
                self.help_marked(op, guard);
                true
            }
            Err(cur) => {
                if cur == op.with_tag(MARK) {
                    // Another helper marked it for this same op.
                    self.help_marked(op, guard);
                    true
                } else {
                    // Mark failed: back out the DFLAG.
                    let gpn = unsafe { gp.deref() };
                    let _ = gpn.update.compare_exchange(
                        op.with_tag(DFLAG),
                        op.with_tag(CLEAN),
                        AcqRel,
                        Acquire,
                    );
                    false
                }
            }
        }
    }

    fn help_marked(&self, op: Shared<Info<K, V>>, guard: &S::Guard<'_>) {
        let Info::Delete { gp, p, l, .. } = (unsafe { op.deref() }) else {
            return;
        };
        // The sibling is p's other child.
        let pn = unsafe { p.deref() };
        let left = pn.left.load(Acquire);
        let sibling = if left.with_tag(0) == l.with_tag(0) {
            pn.right.load(Acquire)
        } else {
            left
        };
        if self.cas_child(*gp, *p, sibling.with_tag(0)) {
            // The winner of the physical swing retires the detached pair.
            unsafe {
                guard.defer_destroy(*p);
                guard.defer_destroy(*l);
            }
        }
        let gpn = unsafe { gp.deref() };
        let _ = gpn
            .update
            .compare_exchange(op.with_tag(DFLAG), op.with_tag(CLEAN), AcqRel, Acquire);
    }

    pub(crate) fn get_impl(&self, handle: &mut S::Handle, key: &K) -> Option<V> {
        let mut guard = S::pin(handle);
        let key = NmKey::Fin(key.clone());
        loop {
            if !guard.validate() {
                guard.refresh();
                continue;
            }
            let sr = self.search(&key);
            if !guard.validate() {
                guard.refresh();
                continue;
            }
            let leaf = unsafe { sr.l.deref() };
            return if leaf.key == key {
                leaf.value.clone()
            } else {
                None
            };
        }
    }

    pub(crate) fn insert_impl(&self, handle: &mut S::Handle, key: K, value: V) -> bool {
        let mut guard = S::pin(handle);
        let key = NmKey::Fin(key.clone());
        let mut stash: Stash<K, V> = None;
        let mut backoff = Backoff::new();
        loop {
            if !guard.validate() {
                guard.refresh();
                continue;
            }
            let sr = self.search(&key);
            let leaf_node = unsafe { sr.l.deref() };
            if leaf_node.key == key {
                if let Some((internal, new_leaf)) = stash.take() {
                    drop(internal);
                    unsafe { new_leaf.drop_owned() };
                }
                return false;
            }
            if sr.pupdate.tag() != CLEAN {
                self.help(sr.pupdate, &guard);
                continue;
            }
            let (mut internal, new_leaf) = match stash.take() {
                Some(x) => x,
                None => {
                    let new_leaf =
                        Shared::from_owned(Node::leaf(key.clone(), Some(value.clone())));
                    (Box::new(Node::leaf(NmKey::NegInf, None)), new_leaf)
                }
            };
            if key < leaf_node.key {
                internal.key = leaf_node.key.clone();
                internal.left.store_mut(new_leaf);
                internal.right.store_mut(sr.l);
            } else {
                internal.key = key.clone();
                internal.left.store_mut(sr.l);
                internal.right.store_mut(new_leaf);
            }
            let internal_ptr = Shared::from_raw(Box::into_raw(internal));
            let op = Shared::from_owned(Info::Insert {
                p: sr.p,
                new_internal: internal_ptr,
                l: sr.l,
            });
            let pn = unsafe { sr.p.deref() };
            match pn
                .update
                .compare_exchange(sr.pupdate, op.with_tag(IFLAG), AcqRel, Acquire)
            {
                Ok(_) => {
                    let old = sr.pupdate.with_tag(0);
                    if !old.is_null() {
                        unsafe { guard.defer_destroy(old) };
                    }
                    self.help_insert(op, &guard);
                    return true;
                }
                Err(_) => {
                    unsafe { op.drop_owned() };
                    let internal = unsafe { Box::from_raw(internal_ptr.as_raw()) };
                    stash = Some((internal, new_leaf));
                    backoff.cas_failed();
                }
            }
        }
    }

    pub(crate) fn remove_impl(&self, handle: &mut S::Handle, key: &K) -> Option<V> {
        let mut guard = S::pin(handle);
        let key = NmKey::Fin(key.clone());
        let mut backoff = Backoff::new();
        loop {
            if !guard.validate() {
                guard.refresh();
                continue;
            }
            let sr = self.search(&key);
            let leaf_node = unsafe { sr.l.deref() };
            if leaf_node.key != key {
                return None;
            }
            if sr.gpupdate.tag() != CLEAN {
                self.help(sr.gpupdate, &guard);
                continue;
            }
            if sr.pupdate.tag() != CLEAN {
                self.help(sr.pupdate, &guard);
                continue;
            }
            debug_assert!(!sr.gp.is_null(), "finite leaves sit at depth >= 2");
            let value = leaf_node.value.clone();
            let op = Shared::from_owned(Info::Delete {
                gp: sr.gp,
                p: sr.p,
                l: sr.l,
                pupdate: sr.pupdate,
            });
            let gpn = unsafe { sr.gp.deref() };
            match gpn
                .update
                .compare_exchange(sr.gpupdate, op.with_tag(DFLAG), AcqRel, Acquire)
            {
                Ok(_) => {
                    let old = sr.gpupdate.with_tag(0);
                    if !old.is_null() {
                        unsafe { guard.defer_destroy(old) };
                    }
                    if self.help_delete(op, &guard) {
                        return value;
                    }
                }
                Err(_) => {
                    unsafe { op.drop_owned() };
                    backoff.cas_failed();
                }
            }
        }
    }
}

impl<K, V, S> Default for EFRBTree<K, V, S>
where
    K: Ord + Clone,
    V: Clone,
    S: GuardedScheme,
{
    fn default() -> Self {
        Self::new()
    }
}

impl<K, V, S> Drop for EFRBTree<K, V, S> {
    fn drop(&mut self) {
        fn free_rec<K, V>(edge: Shared<Node<K, V>>) {
            if edge.is_null() {
                return;
            }
            let node = unsafe { Box::from_raw(edge.with_tag(0).as_raw()) };
            let u = node.update.load(Relaxed).with_tag(0);
            if !u.is_null() {
                unsafe { u.drop_owned() };
            }
            free_rec(node.left.load(Relaxed));
            free_rec(node.right.load(Relaxed));
        }
        free_rec(self.root.left.load(Relaxed));
        free_rec(self.root.right.load(Relaxed));
        self.root.left.store_mut(Shared::null());
        self.root.right.store_mut(Shared::null());
        let u = self.root.update.load(Relaxed).with_tag(0);
        if !u.is_null() {
            unsafe { u.drop_owned() };
            self.root.update.store_mut(Shared::null());
        }
    }
}

impl<K, V, S> ConcurrentMap<K, V> for EFRBTree<K, V, S>
where
    K: Ord + Clone + Send + Sync,
    V: Clone + Send + Sync,
    S: GuardedScheme,
{
    type Handle = S::Handle;

    fn new() -> Self {
        EFRBTree::new()
    }

    fn handle(&self) -> S::Handle {
        S::handle()
    }

    fn get(&self, handle: &mut S::Handle, key: &K) -> Option<V> {
        self.get_impl(handle, key)
    }

    fn insert(&self, handle: &mut S::Handle, key: K, value: V) -> bool {
        self.insert_impl(handle, key, value)
    }

    fn remove(&self, handle: &mut S::Handle, key: &K) -> Option<V> {
        self.remove_impl(handle, key)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_utils;

    #[test]
    fn sequential_semantics_ebr() {
        test_utils::check_sequential::<EFRBTree<u64, u64, ebr::Ebr>>();
    }

    #[test]
    fn sequential_semantics_nr() {
        test_utils::check_sequential::<EFRBTree<u64, u64, nr::Nr>>();
    }

    #[test]
    fn concurrent_stress_ebr() {
        test_utils::check_concurrent::<EFRBTree<u64, u64, ebr::Ebr>>(8, 1024);
    }

    #[test]
    fn concurrent_stress_pebr() {
        test_utils::check_concurrent::<EFRBTree<u64, u64, pebr::Pebr>>(8, 512);
    }

    #[test]
    fn striped_ebr() {
        test_utils::check_striped::<EFRBTree<u64, u64, ebr::Ebr>>(4, 256);
    }

    #[test]
    fn delete_promotes_sibling() {
        let m: EFRBTree<u64, u64, ebr::Ebr> = EFRBTree::new();
        let mut h = ConcurrentMap::handle(&m);
        for k in [50, 25, 75, 10, 30] {
            assert!(ConcurrentMap::insert(&m, &mut h, k, k));
        }
        assert_eq!(ConcurrentMap::remove(&m, &mut h, &25), Some(25));
        for k in [50, 75, 10, 30] {
            assert_eq!(ConcurrentMap::get(&m, &mut h, &k), Some(k));
        }
        assert_eq!(ConcurrentMap::get(&m, &mut h, &25), None);
    }
}
