//! Natarajan–Mittal lock-free external BST for guard-based schemes.
//!
//! Deletion is *edge-based*: a delete flags the edge to its leaf
//! (injection), tags the sibling edge to freeze it, and then swings the
//! *ancestor* edge to the sibling — detaching the whole chain of
//! pending-delete nodes in one CAS. Seeks traverse flagged/tagged edges
//! optimistically, which is exactly why the original HP cannot protect this
//! structure (paper §2.3, Table 2).

use std::marker::PhantomData;
use std::sync::atomic::Ordering::{AcqRel, Acquire, Relaxed};

use smr_common::{Atomic, Backoff, ConcurrentMap, GuardedScheme, SchemeGuard, Shared};

/// Edge bit: deletion of the pointed-to leaf is in progress (injection).
pub(crate) const FLAG: usize = 0b001;
/// Edge bit: the edge is frozen as a sibling edge of a pending delete.
pub(crate) const TAG: usize = 0b010;

/// Key space with the three sentinel infinities of the NM construction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) enum NmKey<K> {
    /// Below every finite key (initial leaf of S).
    NegInf,
    /// A finite key.
    Fin(K),
    /// Above every finite key (S sentinel).
    Inf1,
    /// Above `Inf1` (R sentinel).
    Inf2,
}

/// Insert-retry stash: a preallocated internal node and its new leaf,
/// reused across CAS retries instead of reallocating.
type Stash<K, V> = Option<(Box<Node<K, V>>, Shared<Node<K, V>>)>;

impl<K: Ord> PartialOrd for NmKey<K> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl<K: Ord> Ord for NmKey<K> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        use std::cmp::Ordering::*;
        use NmKey::*;
        match (self, other) {
            (NegInf, NegInf) | (Inf1, Inf1) | (Inf2, Inf2) => Equal,
            (NegInf, _) => Less,
            (_, NegInf) => Greater,
            (Fin(a), Fin(b)) => a.cmp(b),
            (Fin(_), _) => Less,
            (_, Fin(_)) => Greater,
            (Inf1, Inf2) => Less,
            (Inf2, Inf1) => Greater,
        }
    }
}

pub(crate) struct Node<K, V> {
    pub(crate) key: NmKey<K>,
    pub(crate) value: Option<V>,
    pub(crate) left: Atomic<Node<K, V>>,
    pub(crate) right: Atomic<Node<K, V>>,
}

impl<K, V> Node<K, V> {
    pub(crate) fn leaf(key: NmKey<K>, value: Option<V>) -> Self {
        Self {
            key,
            value,
            left: Atomic::null(),
            right: Atomic::null(),
        }
    }

    pub(crate) fn is_leaf(&self) -> bool {
        self.left.load(Relaxed).is_null()
    }
}

/// The seek record (paper [48]): the ancestor edge heading the chain of
/// pending-delete nodes, and the parent edge to the terminal leaf.
pub(crate) struct SeekRecord<K, V> {
    /// Address of the last untagged edge on the path.
    pub(crate) ancestor_edge: *const Atomic<Node<K, V>>,
    /// Its value at observation time (heads the tagged chain).
    pub(crate) successor_word: Shared<Node<K, V>>,
    /// The parent node (owner of `parent_edge`).
    pub(crate) parent: Shared<Node<K, V>>,
    /// Address of the parent→leaf edge.
    pub(crate) parent_edge: *const Atomic<Node<K, V>>,
    /// Its value at observation time (flag bit included).
    pub(crate) leaf_word: Shared<Node<K, V>>,
}

impl<K, V> SeekRecord<K, V> {
    pub(crate) fn leaf(&self) -> Shared<Node<K, V>> {
        self.leaf_word.with_tag(0)
    }
}

/// Natarajan–Mittal external BST, guard-based flavor.
pub struct NMTree<K, V, S> {
    /// R sentinel (key `Inf2`).
    r: Box<Node<K, V>>,
    _marker: PhantomData<S>,
}

unsafe impl<K: Send + Sync, V: Send + Sync, S> Send for NMTree<K, V, S> {}
unsafe impl<K: Send + Sync, V: Send + Sync, S> Sync for NMTree<K, V, S> {}

impl<K, V, S> NMTree<K, V, S>
where
    K: Ord + Clone,
    V: Clone,
    S: GuardedScheme,
{
    /// Creates an empty tree (sentinels only).
    pub fn new() -> Self {
        // R(Inf2) { left: S(Inf1) { left: leaf(NegInf), right: leaf(Inf1) },
        //           right: leaf(Inf2) }
        let s = Node {
            key: NmKey::Inf1,
            value: None,
            left: Atomic::new(Node::leaf(NmKey::NegInf, None)),
            right: Atomic::new(Node::leaf(NmKey::Inf1, None)),
        };
        let r = Node {
            key: NmKey::Inf2,
            value: None,
            left: Atomic::new(s),
            right: Atomic::new(Node::leaf(NmKey::Inf2, None)),
        };
        Self {
            r: Box::new(r),
            _marker: PhantomData,
        }
    }

    /// Optimistic seek: traverses edges regardless of flags/tags, tracking
    /// the ancestor (last untagged edge) and the parent edge.
    fn seek(&self, key: &K) -> SeekRecord<K, V> {
        let key = NmKey::Fin(key.clone());
        let mut ancestor_edge: *const Atomic<Node<K, V>> = &self.r.left;
        let mut successor_word = unsafe { &*ancestor_edge }.load(Acquire);
        let mut parent: Shared<Node<K, V>> = Shared::from_raw(self.r.as_ref() as *const _ as *mut _);
        let mut parent_edge = ancestor_edge;
        let mut leaf_word = successor_word;

        loop {
            let cur = leaf_word.with_tag(0);
            debug_assert!(!cur.is_null());
            let cur_node = unsafe { cur.deref() };
            if cur_node.is_leaf() {
                break;
            }
            // Ancestor bookkeeping: the edge into cur is the candidate.
            if leaf_word.tag() & TAG == 0 {
                ancestor_edge = parent_edge;
                successor_word = leaf_word;
            }
            let next_edge: *const Atomic<Node<K, V>> = if key < cur_node.key {
                &cur_node.left
            } else {
                &cur_node.right
            };
            parent = cur;
            parent_edge = next_edge;
            leaf_word = unsafe { &*next_edge }.load(Acquire);
        }
        SeekRecord {
            ancestor_edge,
            successor_word,
            parent,
            parent_edge,
            leaf_word,
        }
    }

    /// One cleanup attempt for the pending delete under `sr.parent`.
    /// Returns whether the ancestor CAS succeeded (and retires the chain).
    fn cleanup(&self, sr: &SeekRecord<K, V>, guard: &S::Guard<'_>) -> bool {
        let parent = unsafe { sr.parent.deref() };
        let left_w = parent.left.load(Acquire);
        let (sib_edge, flagged) = if left_w.tag() & FLAG != 0 {
            (&parent.right, &parent.left)
        } else {
            let right_w = parent.right.load(Acquire);
            if right_w.tag() & FLAG != 0 {
                (&parent.left, &parent.right)
            } else {
                return false; // nothing to clean here (already done)
            }
        };
        let _ = flagged;
        // Freeze the sibling edge so its value can no longer change.
        let sib_word = sib_edge.fetch_or_tag(TAG, AcqRel);
        // Promote the sibling, preserving its flag, clearing the tag.
        let promoted = sib_word.with_tag(sib_word.tag() & FLAG);
        match unsafe { &*sr.ancestor_edge }.compare_exchange(
            sr.successor_word,
            promoted,
            AcqRel,
            Acquire,
        ) {
            Ok(_) => {
                // Retire the detached chain: every node from the successor
                // down has one flagged edge (a pendant deleted leaf) and one
                // tagged edge continuing the chain; stop at the promoted
                // sibling.
                unsafe { self.retire_chain(sr.successor_word.with_tag(0), promoted, guard) };
                true
            }
            Err(_) => false,
        }
    }

    /// # Safety
    /// Must only be called by the thread whose ancestor CAS detached the
    /// chain headed by `s`.
    unsafe fn retire_chain(
        &self,
        s: Shared<Node<K, V>>,
        promoted: Shared<Node<K, V>>,
        guard: &S::Guard<'_>,
    ) {
        let mut m = s;
        loop {
            let node = unsafe { m.deref() };
            debug_assert!(!node.is_leaf(), "chain nodes are internal");
            let lw = node.left.load(Relaxed);
            let rw = node.right.load(Relaxed);
            let (pendant, continue_w) = if lw.tag() & FLAG != 0 {
                (lw, rw)
            } else {
                debug_assert!(rw.tag() & FLAG != 0, "chain node lacks flagged edge");
                (rw, lw)
            };
            unsafe {
                guard.defer_destroy(pendant.with_tag(0));
                guard.defer_destroy(m);
            }
            if continue_w.ptr_eq(promoted) {
                break;
            }
            debug_assert!(continue_w.tag() & TAG != 0, "chain edge must be tagged");
            m = continue_w.with_tag(0);
        }
    }

    pub(crate) fn get_impl(&self, handle: &mut S::Handle, key: &K) -> Option<V> {
        let mut guard = S::pin(handle);
        loop {
            if !guard.validate() {
                guard.refresh();
                continue;
            }
            let sr = self.seek(key);
            if !guard.validate() {
                guard.refresh();
                continue;
            }
            let leaf = unsafe { sr.leaf().deref() };
            return if leaf.key == NmKey::Fin(key.clone()) && sr.leaf_word.tag() & FLAG == 0 {
                leaf.value.clone()
            } else {
                None
            };
        }
    }

    pub(crate) fn insert_impl(&self, handle: &mut S::Handle, key: K, value: V) -> bool {
        let mut guard = S::pin(handle);
        let mut stash: Stash<K, V> = None;
        let mut backoff = Backoff::new();
        loop {
            if !guard.validate() {
                guard.refresh();
                continue;
            }
            let sr = self.seek(&key);
            let leaf = sr.leaf();
            let leaf_node = unsafe { leaf.deref() };
            let is_same = leaf_node.key == NmKey::Fin(key.clone());
            if sr.leaf_word.tag() != 0 {
                // Dirty edge: a delete is pending here; help and retry.
                self.cleanup(&sr, &guard);
                continue;
            }
            if is_same {
                if let Some((internal, new_leaf)) = stash.take() {
                    drop(internal);
                    unsafe { new_leaf.drop_owned() };
                }
                return false;
            }
            // Build (or re-wire) the replacement internal node.
            let (mut internal, new_leaf) = match stash.take() {
                Some(x) => x,
                None => {
                    let new_leaf =
                        Shared::from_owned(Node::leaf(NmKey::Fin(key.clone()), Some(value.clone())));
                    let internal = Box::new(Node {
                        key: NmKey::NegInf, // patched below
                        value: None,
                        left: Atomic::null(),
                        right: Atomic::null(),
                    });
                    (internal, new_leaf)
                }
            };
            let new_key = NmKey::Fin(key.clone());
            if new_key < leaf_node.key {
                internal.key = leaf_node.key.clone();
                internal.left.store_mut(new_leaf);
                internal.right.store_mut(leaf);
            } else {
                internal.key = new_key;
                internal.left.store_mut(leaf);
                internal.right.store_mut(new_leaf);
            }
            let internal_ptr = Shared::from_raw(Box::into_raw(internal));
            match unsafe { &*sr.parent_edge }.compare_exchange(
                sr.leaf_word,
                internal_ptr,
                AcqRel,
                Acquire,
            ) {
                Ok(_) => return true,
                Err(_) => {
                    let internal = unsafe { Box::from_raw(internal_ptr.as_raw()) };
                    stash = Some((internal, new_leaf));
                    backoff.cas_failed();
                }
            }
        }
    }

    pub(crate) fn remove_impl(&self, handle: &mut S::Handle, key: &K) -> Option<V> {
        let mut guard = S::pin(handle);
        let mut backoff = Backoff::new();
        // Phase 1: injection.
        let (target_leaf, value) = loop {
            if !guard.validate() {
                guard.refresh();
                continue;
            }
            let sr = self.seek(key);
            let leaf = sr.leaf();
            let leaf_node = unsafe { leaf.deref() };
            if leaf_node.key != NmKey::Fin(key.clone()) {
                return None;
            }
            if sr.leaf_word.tag() & FLAG != 0 {
                // Another delete owns this leaf; help it along and report
                // absent (that delete linearized first).
                self.cleanup(&sr, &guard);
                return None;
            }
            if sr.leaf_word.tag() & TAG != 0 {
                // Our leaf is a frozen sibling; help the neighbour's delete.
                self.cleanup(&sr, &guard);
                continue;
            }
            match unsafe { &*sr.parent_edge }.compare_exchange(
                sr.leaf_word,
                sr.leaf_word.with_tag(FLAG),
                AcqRel,
                Acquire,
            ) {
                Ok(_) => {
                    let v = leaf_node.value.clone();
                    break (leaf, v);
                }
                Err(_) => {
                    backoff.cas_failed();
                    continue;
                }
            }
        };

        // Phase 2: cleanup until the leaf is physically detached.
        loop {
            if !guard.validate() {
                guard.refresh();
                continue;
            }
            let sr = self.seek(key);
            if !sr.leaf().ptr_eq(target_leaf) {
                break; // someone (maybe us) finished the removal
            }
            self.cleanup(&sr, &guard);
        }
        value
    }
}

impl<K, V, S> Default for NMTree<K, V, S>
where
    K: Ord + Clone,
    V: Clone,
    S: GuardedScheme,
{
    fn default() -> Self {
        Self::new()
    }
}

impl<K, V, S> Drop for NMTree<K, V, S> {
    fn drop(&mut self) {
        fn free_rec<K, V>(edge: Shared<Node<K, V>>) {
            if edge.is_null() {
                return;
            }
            let node = unsafe { Box::from_raw(edge.with_tag(0).as_raw()) };
            free_rec(node.left.load(Relaxed));
            free_rec(node.right.load(Relaxed));
        }
        free_rec(self.r.left.load(Relaxed));
        free_rec(self.r.right.load(Relaxed));
        self.r.left.store_mut(Shared::null());
        self.r.right.store_mut(Shared::null());
    }
}

impl<K, V, S> ConcurrentMap<K, V> for NMTree<K, V, S>
where
    K: Ord + Clone + Send + Sync,
    V: Clone + Send + Sync,
    S: GuardedScheme,
{
    type Handle = S::Handle;

    fn new() -> Self {
        NMTree::new()
    }

    fn handle(&self) -> S::Handle {
        S::handle()
    }

    fn get(&self, handle: &mut S::Handle, key: &K) -> Option<V> {
        self.get_impl(handle, key)
    }

    fn insert(&self, handle: &mut S::Handle, key: K, value: V) -> bool {
        self.insert_impl(handle, key, value)
    }

    fn remove(&self, handle: &mut S::Handle, key: &K) -> Option<V> {
        self.remove_impl(handle, key)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_utils;

    #[test]
    fn sequential_semantics_ebr() {
        test_utils::check_sequential::<NMTree<u64, u64, ebr::Ebr>>();
    }

    #[test]
    fn sequential_semantics_nr() {
        test_utils::check_sequential::<NMTree<u64, u64, nr::Nr>>();
    }

    #[test]
    fn concurrent_stress_ebr() {
        test_utils::check_concurrent::<NMTree<u64, u64, ebr::Ebr>>(8, 1024);
    }

    #[test]
    fn concurrent_stress_pebr() {
        test_utils::check_concurrent::<NMTree<u64, u64, pebr::Pebr>>(8, 512);
    }

    #[test]
    fn striped_ebr() {
        test_utils::check_striped::<NMTree<u64, u64, ebr::Ebr>>(4, 256);
    }

    #[test]
    fn interleaved_insert_delete_same_key() {
        let m: NMTree<u64, u64, ebr::Ebr> = NMTree::new();
        let mut h = ConcurrentMap::handle(&m);
        for i in 0..100 {
            assert!(ConcurrentMap::insert(&m, &mut h, 42, i));
            assert_eq!(ConcurrentMap::get(&m, &mut h, &42), Some(i));
            assert_eq!(ConcurrentMap::remove(&m, &mut h, &42), Some(i));
            assert_eq!(ConcurrentMap::get(&m, &mut h, &42), None);
        }
    }
}
