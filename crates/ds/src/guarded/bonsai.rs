//! Bonsai tree for guard-based schemes.

use std::marker::PhantomData;
use std::sync::atomic::Ordering::{AcqRel, Acquire, Relaxed};

use smr_common::{Atomic, Backoff, ConcurrentMap, GuardedScheme, SchemeGuard, Shared};

use crate::bonsai_core::{Builder, Node, Protector, Restart};

/// Protector that only checks critical-section validity (PEBR ejection).
struct GuardProtect<'a, G> {
    guard: &'a G,
}

impl<K, V, G: SchemeGuard> Protector<K, V> for GuardProtect<'_, G> {
    fn protect(
        &mut self,
        _node: Shared<Node<K, V>>,
        _src: Shared<Node<K, V>>,
    ) -> Result<(), Restart> {
        if self.guard.validate() {
            Ok(())
        } else {
            Err(Restart)
        }
    }
}

/// Non-blocking Bonsai tree (COW path-copy + root CAS), guard-based flavor.
pub struct BonsaiTree<K, V, S> {
    root: Atomic<Node<K, V>>,
    _marker: PhantomData<S>,
}

unsafe impl<K: Send + Sync, V: Send + Sync, S> Send for BonsaiTree<K, V, S> {}
unsafe impl<K: Send + Sync, V: Send + Sync, S> Sync for BonsaiTree<K, V, S> {}

impl<K, V, S> BonsaiTree<K, V, S>
where
    K: Ord + Clone,
    V: Clone,
    S: GuardedScheme,
{
    /// Creates an empty tree.
    pub fn new() -> Self {
        Self {
            root: Atomic::null(),
            _marker: PhantomData,
        }
    }

    pub(crate) fn get_impl(&self, handle: &mut S::Handle, key: &K) -> Option<V> {
        let mut guard = S::pin(handle);
        'retry: loop {
            if !guard.validate() {
                guard.refresh();
                continue;
            }
            let mut cur = self.root.load(Acquire).with_tag(0);
            while !cur.is_null() {
                if !guard.validate() {
                    guard.refresh();
                    continue 'retry;
                }
                let node = unsafe { cur.deref() };
                match key.cmp(&node.key) {
                    std::cmp::Ordering::Less => cur = node.left.load(Relaxed).with_tag(0),
                    std::cmp::Ordering::Greater => cur = node.right.load(Relaxed).with_tag(0),
                    std::cmp::Ordering::Equal => return Some(node.value.clone()),
                }
            }
            return None;
        }
    }

    pub(crate) fn insert_impl(&self, handle: &mut S::Handle, key: K, value: V) -> bool {
        let mut guard = S::pin(handle);
        let mut backoff = Backoff::new();
        loop {
            if !guard.validate() {
                guard.refresh();
                continue;
            }
            let root0 = self.root.load(Acquire).with_tag(0);
            let mut b = Builder::new();
            let mut p = GuardProtect { guard: &guard };
            match b.insert(&mut p, root0, &key, &value) {
                Err(Restart) => {
                    b.abort();
                    guard.refresh();
                }
                Ok(None) => {
                    b.abort();
                    return false;
                }
                Ok(Some(new_root)) => {
                    match self.root.compare_exchange(root0, new_root, AcqRel, Acquire) {
                        Ok(_) => {
                            for r in b.replaced {
                                unsafe { guard.defer_destroy(r) };
                            }
                            return true;
                        }
                        Err(_) => {
                            b.abort();
                            backoff.cas_failed();
                        }
                    }
                }
            }
        }
    }

    pub(crate) fn remove_impl(&self, handle: &mut S::Handle, key: &K) -> Option<V> {
        let mut guard = S::pin(handle);
        let mut backoff = Backoff::new();
        loop {
            if !guard.validate() {
                guard.refresh();
                continue;
            }
            let root0 = self.root.load(Acquire).with_tag(0);
            let mut b = Builder::new();
            let mut p = GuardProtect { guard: &guard };
            match b.remove(&mut p, root0, key) {
                Err(Restart) => {
                    b.abort();
                    guard.refresh();
                }
                Ok(None) => {
                    b.abort();
                    return None;
                }
                Ok(Some((new_root, value))) => {
                    match self.root.compare_exchange(root0, new_root, AcqRel, Acquire) {
                        Ok(_) => {
                            for r in b.replaced {
                                unsafe { guard.defer_destroy(r) };
                            }
                            return Some(value);
                        }
                        Err(_) => {
                            b.abort();
                            backoff.cas_failed();
                        }
                    }
                }
            }
        }
    }
}

impl<K, V, S> Default for BonsaiTree<K, V, S>
where
    K: Ord + Clone,
    V: Clone,
    S: GuardedScheme,
{
    fn default() -> Self {
        Self::new()
    }
}

impl<K, V, S> Drop for BonsaiTree<K, V, S> {
    fn drop(&mut self) {
        fn free_rec<K, V>(t: Shared<Node<K, V>>) {
            if t.is_null() {
                return;
            }
            let node = unsafe { Box::from_raw(t.as_raw()) };
            free_rec(node.left.load(Relaxed).with_tag(0));
            free_rec(node.right.load(Relaxed).with_tag(0));
        }
        free_rec(self.root.load_mut().with_tag(0));
        self.root.store_mut(Shared::null());
    }
}

impl<K, V, S> ConcurrentMap<K, V> for BonsaiTree<K, V, S>
where
    K: Ord + Clone + Send + Sync,
    V: Clone + Send + Sync,
    S: GuardedScheme,
{
    type Handle = S::Handle;

    fn new() -> Self {
        BonsaiTree::new()
    }

    fn handle(&self) -> S::Handle {
        S::handle()
    }

    fn get(&self, handle: &mut S::Handle, key: &K) -> Option<V> {
        self.get_impl(handle, key)
    }

    fn insert(&self, handle: &mut S::Handle, key: K, value: V) -> bool {
        self.insert_impl(handle, key, value)
    }

    fn remove(&self, handle: &mut S::Handle, key: &K) -> Option<V> {
        self.remove_impl(handle, key)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_utils;

    #[test]
    fn sequential_semantics_ebr() {
        test_utils::check_sequential::<BonsaiTree<u64, u64, ebr::Ebr>>();
    }

    #[test]
    fn sequential_semantics_nr() {
        test_utils::check_sequential::<BonsaiTree<u64, u64, nr::Nr>>();
    }

    #[test]
    fn concurrent_stress_ebr() {
        test_utils::check_concurrent::<BonsaiTree<u64, u64, ebr::Ebr>>(6, 512);
    }

    #[test]
    fn concurrent_stress_pebr() {
        test_utils::check_concurrent::<BonsaiTree<u64, u64, pebr::Pebr>>(6, 512);
    }

    #[test]
    fn striped_ebr() {
        test_utils::check_striped::<BonsaiTree<u64, u64, ebr::Ebr>>(4, 128);
    }
}
