//! Data structures for guard-based schemes (NR, EBR, PEBR).
//!
//! Each structure is generic over [`smr_common::GuardedScheme`]. Traversals
//! call the guard's `validate()` every step, which is a no-op for NR/EBR and
//! an ejection check for PEBR: an ejected critical section stops
//! dereferencing and restarts under a fresh pin, exactly the recovery rule
//! of the paper's §4.2.


mod bonsai;
mod efrb_tree;
mod hhs_list;
pub(crate) mod nm_tree;
mod opt_queue;
mod queue;
mod skip_list;
mod hm_list;

pub use crate::hash_map::{HashMap, DEFAULT_BUCKETS};
pub use bonsai::BonsaiTree;
pub use efrb_tree::EFRBTree;
pub use hhs_list::HHSList;
pub use hm_list::HMList;
pub use nm_tree::NMTree;
pub use opt_queue::OptQueue;
pub use queue::MSQueue;
pub use skip_list::{SkipList, MAX_HEIGHT};
