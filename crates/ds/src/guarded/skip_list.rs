//! Herlihy–Shavit lock-free skiplist for guard-based schemes.
//!
//! Removal marks the whole tower top-down (logical deletion), traversals
//! unlink marked nodes per level as they pass, and the thread that won the
//! bottom-level mark runs one clean `find` pass to fully detach the node
//! before retiring it.

use std::marker::PhantomData;
use std::sync::atomic::Ordering::{AcqRel, Acquire, Relaxed};

use rand::{rngs::SmallRng, Rng, SeedableRng};
use smr_common::tagged::TAG_DELETED;
use smr_common::{Atomic, Backoff, ConcurrentMap, GuardedScheme, SchemeGuard, Shared};

/// Maximum tower height; 2^20 expected elements is ample for the paper's
/// key ranges.
pub const MAX_HEIGHT: usize = 20;

pub(crate) struct Node<K, V> {
    pub(crate) next: [Atomic<Node<K, V>>; MAX_HEIGHT],
    pub(crate) key: K,
    pub(crate) value: V,
    pub(crate) height: usize,
}

impl<K, V> Node<K, V> {
    fn new(key: K, value: V, height: usize) -> Self {
        Self {
            next: [(); MAX_HEIGHT].map(|_| Atomic::null()),
            key,
            value,
            height,
        }
    }
}

fn random_height(rng: &mut SmallRng) -> usize {
    // Geometric with p = 1/2, clamped to MAX_HEIGHT.
    let bits: u32 = rng.gen();
    ((bits.trailing_ones() as usize) + 1).min(MAX_HEIGHT)
}

/// Lock-free skiplist map, guard-based flavor.
pub struct SkipList<K, V, S> {
    head: [Atomic<Node<K, V>>; MAX_HEIGHT],
    _marker: PhantomData<S>,
}

unsafe impl<K: Send + Sync, V: Send + Sync, S> Send for SkipList<K, V, S> {}
unsafe impl<K: Send + Sync, V: Send + Sync, S> Sync for SkipList<K, V, S> {}

struct FindResult<K, V> {
    found: Option<Shared<Node<K, V>>>,
    preds: [*const Atomic<Node<K, V>>; MAX_HEIGHT],
    succs: [Shared<Node<K, V>>; MAX_HEIGHT],
}

thread_local! {
    static HEIGHT_RNG: std::cell::RefCell<SmallRng> =
        std::cell::RefCell::new(SmallRng::from_entropy());
}

impl<K, V, S> SkipList<K, V, S>
where
    K: Ord,
    S: GuardedScheme,
{
    /// Creates an empty skiplist.
    pub fn new() -> Self {
        Self {
            head: [(); MAX_HEIGHT].map(|_| Atomic::null()),
            _marker: PhantomData,
        }
    }

    /// Positions `preds`/`succs` around `key` at every level, unlinking any
    /// marked node encountered. Restarts wholesale on CAS failure, so a
    /// completed pass implies the searched key's marked nodes are detached.
    fn find(&self, key: &K, guard: &mut S::Guard<'_>) -> FindResult<K, V> {
        'retry: loop {
            if !guard.validate() {
                guard.refresh();
                continue 'retry;
            }
            let mut result = FindResult {
                found: None,
                preds: [std::ptr::null(); MAX_HEIGHT],
                succs: [Shared::null(); MAX_HEIGHT],
            };
            // The tower of link fields we descend through; initially the
            // head tower, later a protected node's tower.
            let mut pred_tower: *const [Atomic<Node<K, V>>; MAX_HEIGHT] = &self.head;
            let mut level = MAX_HEIGHT;
            while level > 0 {
                level -= 1;
                let mut cur = unsafe { &(*pred_tower)[level] }.load(Acquire).with_tag(0);
                loop {
                    if !guard.validate() {
                        guard.refresh();
                        continue 'retry;
                    }
                    if cur.is_null() {
                        break;
                    }
                    let node = unsafe { cur.deref() };
                    let next = node.next[level].load(Acquire);
                    if next.tag() & TAG_DELETED != 0 {
                        // Unlink the marked node at this level.
                        let next_clean = next.with_tag(0);
                        match unsafe { &(*pred_tower)[level] }.compare_exchange(
                            cur,
                            next_clean,
                            AcqRel,
                            Acquire,
                        ) {
                            Ok(_) => {
                                cur = next_clean;
                                continue;
                            }
                            Err(_) => continue 'retry,
                        }
                    }
                    if node.key < *key {
                        pred_tower = &node.next;
                        cur = next.with_tag(0);
                    } else {
                        break;
                    }
                }
                result.preds[level] = unsafe { &(*pred_tower)[level] };
                result.succs[level] = cur;
            }
            let bottom = result.succs[0];
            if !bottom.is_null() && unsafe { bottom.deref() }.key == *key {
                result.found = Some(bottom);
            }
            return result;
        }
    }

    pub(crate) fn get_impl(&self, handle: &mut S::Handle, key: &K) -> Option<V>
    where
        V: Clone,
    {
        // Optimistic search: never unlinks, walks through marked nodes
        // (wait-free for NR/EBR, lock-free for PEBR).
        let mut guard = S::pin(handle);
        'retry: loop {
            if !guard.validate() {
                guard.refresh();
                continue 'retry;
            }
            let mut pred_tower: *const [Atomic<Node<K, V>>; MAX_HEIGHT] = &self.head;
            let mut level = MAX_HEIGHT;
            while level > 0 {
                level -= 1;
                let mut cur = unsafe { &(*pred_tower)[level] }.load(Acquire).with_tag(0);
                loop {
                    if !guard.validate() {
                        guard.refresh();
                        continue 'retry;
                    }
                    if cur.is_null() {
                        break;
                    }
                    let node = unsafe { cur.deref() };
                    let next = node.next[level].load(Acquire);
                    match node.key.cmp(key) {
                        std::cmp::Ordering::Less => {
                            pred_tower = &node.next;
                            cur = next.with_tag(0);
                        }
                        std::cmp::Ordering::Equal => {
                            return if next.tag() & TAG_DELETED == 0 {
                                Some(node.value.clone())
                            } else {
                                None
                            };
                        }
                        std::cmp::Ordering::Greater => break,
                    }
                }
            }
            return None;
        }
    }

    pub(crate) fn insert_impl(&self, handle: &mut S::Handle, key: K, value: V) -> bool {
        let mut guard = S::pin(handle);
        let height = HEIGHT_RNG.with(|r| random_height(&mut r.borrow_mut()));
        let node = Box::into_raw(Box::new(Node::new(key, value, height)));
        let node_shared = Shared::from_raw(node);
        let node_ref = unsafe { &*node };

        let mut backoff = Backoff::new();
        loop {
            let r = self.find(&node_ref.key, &mut guard);
            if r.found.is_some() {
                drop(unsafe { Box::from_raw(node) });
                return false;
            }
            // Wire the tower to the current successors, then link level 0.
            for (level, succ) in r.succs.iter().enumerate().take(height) {
                node_ref.next[level].store(*succ, Relaxed);
            }
            match unsafe { &*r.preds[0] }.compare_exchange(
                r.succs[0],
                node_shared,
                AcqRel,
                Acquire,
            ) {
                Ok(_) => break,
                Err(_) => {
                    backoff.cas_failed();
                    continue;
                }
            }
        }

        // Link the upper levels; on contention re-find.
        'levels: for level in 1..height {
            loop {
                let next = node_ref.next[level].load(Acquire);
                if next.tag() & TAG_DELETED != 0 {
                    break 'levels; // being removed already; stop building
                }
                let r = self.find(&node_ref.key, &mut guard);
                // The node may have been removed and even unlinked already.
                match r.found {
                    Some(f) if f == node_shared => {}
                    _ => break 'levels,
                }
                if r.succs[level] != next {
                    match node_ref.next[level].compare_exchange(
                        next,
                        r.succs[level],
                        AcqRel,
                        Acquire,
                    ) {
                        Ok(_) => {}
                        Err(_) => break 'levels, // marked meanwhile
                    }
                }
                if unsafe { &*r.preds[level] }
                    .compare_exchange(r.succs[level], node_shared, AcqRel, Acquire)
                    .is_ok()
                {
                    continue 'levels;
                }
            }
        }
        true
    }

    pub(crate) fn remove_impl(&self, handle: &mut S::Handle, key: &K) -> Option<V>
    where
        V: Clone,
    {
        let mut guard = S::pin(handle);
        let mut backoff = Backoff::new();
        loop {
            let r = self.find(key, &mut guard);
            let target = r.found?;
            let node = unsafe { target.deref() };
            // Mark the tower top-down; winning the bottom level designates
            // this thread as the deleter.
            for level in (1..node.height).rev() {
                node.next[level].fetch_or_tag(TAG_DELETED, AcqRel);
            }
            let prev = node.next[0].fetch_or_tag(TAG_DELETED, AcqRel);
            if prev.tag() & TAG_DELETED != 0 {
                backoff.cas_failed();
                continue; // someone else won; re-find (they will retire it)
            }
            let value = node.value.clone();
            // One clean pass fully detaches the node; then it is safe to
            // retire (no live link can reintroduce it — see module docs).
            let _ = self.find(key, &mut guard);
            unsafe { guard.defer_destroy(target) };
            return Some(value);
        }
    }
}

impl<K, V, S> Default for SkipList<K, V, S>
where
    K: Ord,
    S: GuardedScheme,
{
    fn default() -> Self {
        Self::new()
    }
}

impl<K, V, S> Drop for SkipList<K, V, S> {
    fn drop(&mut self) {
        // Walk the bottom level; every node is linked there.
        let mut cur = self.head[0].load_mut();
        while !cur.is_null() {
            let boxed = unsafe { Box::from_raw(cur.with_tag(0).as_raw()) };
            cur = boxed.next[0].load(Relaxed).with_tag(0);
        }
    }
}

impl<K, V, S> ConcurrentMap<K, V> for SkipList<K, V, S>
where
    K: Ord + Send + Sync,
    V: Clone + Send + Sync,
    S: GuardedScheme,
{
    type Handle = S::Handle;

    fn new() -> Self {
        SkipList::new()
    }

    fn handle(&self) -> S::Handle {
        S::handle()
    }

    fn get(&self, handle: &mut S::Handle, key: &K) -> Option<V> {
        self.get_impl(handle, key)
    }

    fn insert(&self, handle: &mut S::Handle, key: K, value: V) -> bool {
        self.insert_impl(handle, key, value)
    }

    fn remove(&self, handle: &mut S::Handle, key: &K) -> Option<V> {
        self.remove_impl(handle, key)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_utils;

    #[test]
    fn sequential_semantics_ebr() {
        test_utils::check_sequential::<SkipList<u64, u64, ebr::Ebr>>();
    }

    #[test]
    fn sequential_semantics_nr() {
        test_utils::check_sequential::<SkipList<u64, u64, nr::Nr>>();
    }

    #[test]
    fn concurrent_stress_ebr() {
        test_utils::check_concurrent::<SkipList<u64, u64, ebr::Ebr>>(8, 1024);
    }

    #[test]
    fn concurrent_stress_pebr() {
        test_utils::check_concurrent::<SkipList<u64, u64, pebr::Pebr>>(8, 512);
    }

    #[test]
    fn striped_ebr() {
        test_utils::check_striped::<SkipList<u64, u64, ebr::Ebr>>(4, 256);
    }

    #[test]
    fn towers_span_levels() {
        // With enough inserts some towers exceed level 1, exercising the
        // upper-level linking paths.
        let m: SkipList<u64, u64, ebr::Ebr> = SkipList::new();
        let mut h = ConcurrentMap::handle(&m);
        for k in 0..2000 {
            assert!(ConcurrentMap::insert(&m, &mut h, k, k));
        }
        let mut levels_used = 0;
        for level in 0..MAX_HEIGHT {
            if !m.head[level].load(Acquire).is_null() {
                levels_used = level + 1;
            }
        }
        assert!(levels_used >= 5, "expected tall towers, got {levels_used}");
        for k in (0..2000).step_by(3) {
            assert_eq!(ConcurrentMap::remove(&m, &mut h, &k), Some(k));
        }
        for k in 0..2000 {
            let expected = if k % 3 == 0 { None } else { Some(k) };
            assert_eq!(ConcurrentMap::get(&m, &mut h, &k), expected);
        }
    }
}
