//! Michael–Scott queue for guard-based schemes — the paper's §4.2 example
//! of a structure satisfying Assumption 1 "for free" (only the tail node is
//! ever mutated, and the tail is never unlinked).

use std::marker::PhantomData;
use std::sync::atomic::Ordering::{AcqRel, Acquire, Relaxed, Release};

use smr_common::{Atomic, Backoff, GuardedScheme, SchemeGuard, Shared};

struct Node<T> {
    next: Atomic<Node<T>>,
    value: Option<T>,
}

/// A lock-free FIFO queue (Michael & Scott 1996), guard-based flavor.
pub struct MSQueue<T, S> {
    head: Atomic<Node<T>>,
    tail: Atomic<Node<T>>,
    _marker: PhantomData<S>,
}

unsafe impl<T: Send + Sync, S> Send for MSQueue<T, S> {}
unsafe impl<T: Send + Sync, S> Sync for MSQueue<T, S> {}

impl<T, S> MSQueue<T, S>
where
    T: Send,
    S: GuardedScheme,
{
    /// Creates an empty queue (one sentinel node).
    pub fn new() -> Self {
        let sentinel = Shared::from_owned(Node {
            next: Atomic::null(),
            value: None,
        });
        Self {
            head: Atomic::from(sentinel),
            tail: Atomic::from(sentinel),
            _marker: PhantomData,
        }
    }

    /// Creates a per-thread handle.
    pub fn handle(&self) -> S::Handle {
        S::handle()
    }

    /// Enqueues at the tail.
    pub fn enqueue(&self, handle: &mut S::Handle, value: T) {
        let mut guard = S::pin(handle);
        let node = Shared::from_owned(Node {
            next: Atomic::null(),
            value: Some(value),
        });
        let mut backoff = Backoff::new();
        loop {
            if !guard.validate() {
                guard.refresh();
                continue;
            }
            let tail = self.tail.load(Acquire);
            let tail_node = unsafe { tail.deref() };
            let next = tail_node.next.load(Acquire);
            if !next.is_null() {
                // Help swing the lagging tail.
                let _ = self.tail.compare_exchange(tail, next, AcqRel, Acquire);
                continue;
            }
            if tail_node
                .next
                .compare_exchange(Shared::null(), node, AcqRel, Acquire)
                .is_ok()
            {
                let _ = self.tail.compare_exchange(tail, node, Release, Relaxed);
                return;
            }
            backoff.cas_failed();
        }
    }

    /// Dequeues from the head.
    pub fn dequeue(&self, handle: &mut S::Handle) -> Option<T> {
        let mut guard = S::pin(handle);
        let mut backoff = Backoff::new();
        loop {
            if !guard.validate() {
                guard.refresh();
                continue;
            }
            let head = self.head.load(Acquire);
            let next = unsafe { head.deref() }.next.load(Acquire);
            if next.is_null() {
                return None;
            }
            let tail = self.tail.load(Acquire);
            if head == tail {
                // Tail is lagging behind a non-empty queue; help it.
                let _ = self.tail.compare_exchange(tail, next, AcqRel, Acquire);
            }
            if self.head.compare_exchange(head, next, AcqRel, Acquire).is_ok() {
                // `next` becomes the new sentinel; take its value.
                let value = unsafe { (*next.as_raw()).value.take() };
                unsafe { guard.defer_destroy(head) };
                return value;
            }
            backoff.cas_failed();
        }
    }
}

impl<T: Send, S: GuardedScheme> Default for MSQueue<T, S> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T, S> Drop for MSQueue<T, S> {
    fn drop(&mut self) {
        let mut cur = self.head.load_mut();
        while !cur.is_null() {
            let node = unsafe { Box::from_raw(cur.as_raw()) };
            cur = node.next.load(Relaxed);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;
    use std::sync::Mutex;

    #[test]
    fn fifo_order() {
        let q: MSQueue<u64, ebr::Ebr> = MSQueue::new();
        let mut h = q.handle();
        for i in 0..100 {
            q.enqueue(&mut h, i);
        }
        for i in 0..100 {
            assert_eq!(q.dequeue(&mut h), Some(i));
        }
        assert_eq!(q.dequeue(&mut h), None);
    }

    #[test]
    fn concurrent_no_loss_no_duplication() {
        let q: MSQueue<u64, ebr::Ebr> = MSQueue::new();
        let seen = Mutex::new(HashSet::new());
        std::thread::scope(|s| {
            for t in 0..4u64 {
                let q = &q;
                s.spawn(move || {
                    let mut h = q.handle();
                    for i in 0..1000 {
                        q.enqueue(&mut h, t * 10_000 + i);
                    }
                });
            }
            for _ in 0..4 {
                let q = &q;
                let seen = &seen;
                s.spawn(move || {
                    let mut h = q.handle();
                    let mut got = 0;
                    while got < 1000 {
                        if let Some(v) = q.dequeue(&mut h) {
                            assert!(seen.lock().unwrap().insert(v), "duplicate {v}");
                            got += 1;
                        }
                    }
                });
            }
        });
        assert_eq!(seen.lock().unwrap().len(), 4000);
    }

    #[test]
    fn works_under_pebr_too() {
        let q: MSQueue<u64, pebr::Pebr> = MSQueue::new();
        let mut h = q.handle();
        for i in 0..50 {
            q.enqueue(&mut h, i);
        }
        for i in 0..50 {
            assert_eq!(q.dequeue(&mut h), Some(i));
        }
    }
}
