//! Harris's linked list with Herlihy–Shavit wait-free get, for guard-based
//! schemes.
//!
//! The *optimistic* traversal (paper §2.3, Fig. 4): the search walks through
//! chains of logically deleted nodes and unlinks a whole chain with a single
//! CAS. With guard-based protection this is safe out of the box — everything
//! reachable at pin time stays allocated.

use std::marker::PhantomData;
use std::sync::atomic::Ordering::{AcqRel, Acquire, Relaxed};

use smr_common::tagged::TAG_DELETED;
use smr_common::{Atomic, Backoff, ConcurrentMap, GuardedScheme, SchemeGuard, Shared};

pub(crate) struct Node<K, V> {
    pub(crate) next: Atomic<Node<K, V>>,
    pub(crate) key: K,
    pub(crate) value: V,
}

/// Harris's lock-free sorted list (2001) with a wait-free `get`.
pub struct HHSList<K, V, S> {
    head: Atomic<Node<K, V>>,
    _marker: PhantomData<S>,
}

unsafe impl<K: Send + Sync, V: Send + Sync, S> Send for HHSList<K, V, S> {}
unsafe impl<K: Send + Sync, V: Send + Sync, S> Sync for HHSList<K, V, S> {}

struct FindResult<K, V> {
    found: bool,
    prev: *const Atomic<Node<K, V>>,
    cur: Shared<Node<K, V>>,
}

impl<K, V, S> HHSList<K, V, S>
where
    K: Ord,
    S: GuardedScheme,
{
    /// Creates an empty list.
    pub fn new() -> Self {
        Self {
            head: Atomic::null(),
            _marker: PhantomData,
        }
    }

    /// Harris's find: walks *through* marked chains, remembering the last
    /// unmarked link (`prev`) and its value at that time (`chain_start`);
    /// when the destination is reached, unlinks the whole marked chain with
    /// one CAS.
    fn find(&self, key: &K, guard: &mut S::Guard<'_>) -> FindResult<K, V> {
        'retry: loop {
            if !guard.validate() {
                guard.refresh();
                continue 'retry;
            }
            let mut prev: *const Atomic<Node<K, V>> = &self.head;
            let mut chain_start = unsafe { &*prev }.load(Acquire).with_tag(0);
            let mut cur = chain_start;

            let found = loop {
                if !guard.validate() {
                    guard.refresh();
                    continue 'retry;
                }
                if cur.is_null() {
                    break false;
                }
                let cur_node = unsafe { cur.deref() };
                let next = cur_node.next.load(Acquire);
                if next.tag() & TAG_DELETED != 0 {
                    // Optimistically step through the logically deleted node.
                    cur = next.with_tag(0);
                    continue;
                }
                match cur_node.key.cmp(key) {
                    std::cmp::Ordering::Less => {
                        prev = &cur_node.next;
                        chain_start = next.with_tag(0);
                        cur = chain_start;
                    }
                    std::cmp::Ordering::Equal => break true,
                    std::cmp::Ordering::Greater => break false,
                }
            };

            if chain_start != cur {
                // Unlink the chain [chain_start .. cur) in one CAS.
                match unsafe { &*prev }.compare_exchange(chain_start, cur, AcqRel, Acquire) {
                    Ok(_) => {
                        let mut node = chain_start;
                        while node != cur {
                            let next = unsafe { node.deref() }.next.load(Relaxed).with_tag(0);
                            unsafe { guard.defer_destroy(node) };
                            node = next;
                        }
                    }
                    Err(_) => continue 'retry,
                }
            }
            return FindResult { found, prev, cur };
        }
    }

    pub(crate) fn get_impl(&self, handle: &mut S::Handle, key: &K) -> Option<V>
    where
        V: Clone,
    {
        // Wait-free search (Herlihy & Shavit): ignore marks entirely, check
        // the mark only on the matching node. Wait-freedom degrades to
        // lock-freedom only for schemes that can invalidate (PEBR here,
        // via ejection — paper footnote 11).
        let mut guard = S::pin(handle);
        'retry: loop {
            if !guard.validate() {
                guard.refresh();
                continue 'retry;
            }
            let mut cur = self.head.load(Acquire).with_tag(0);
            loop {
                if !guard.validate() {
                    guard.refresh();
                    continue 'retry;
                }
                if cur.is_null() {
                    return None;
                }
                let node = unsafe { cur.deref() };
                let next = node.next.load(Acquire);
                match node.key.cmp(key) {
                    std::cmp::Ordering::Less => cur = next.with_tag(0),
                    std::cmp::Ordering::Equal => {
                        return if next.tag() & TAG_DELETED == 0 {
                            Some(node.value.clone())
                        } else {
                            None
                        };
                    }
                    std::cmp::Ordering::Greater => return None,
                }
            }
        }
    }

    pub(crate) fn insert_impl(&self, handle: &mut S::Handle, key: K, value: V) -> bool {
        let mut guard = S::pin(handle);
        let mut node = Box::new(Node {
            next: Atomic::null(),
            key,
            value,
        });
        let mut backoff = Backoff::new();
        loop {
            let r = self.find(&node.key, &mut guard);
            if r.found {
                return false;
            }
            node.next.store_mut(r.cur);
            let new = Shared::from_raw(Box::into_raw(node));
            match unsafe { &*r.prev }.compare_exchange(r.cur, new, AcqRel, Acquire) {
                Ok(_) => return true,
                Err(_) => {
                    node = unsafe { Box::from_raw(new.as_raw()) };
                    backoff.cas_failed();
                }
            }
        }
    }

    pub(crate) fn remove_impl(&self, handle: &mut S::Handle, key: &K) -> Option<V>
    where
        V: Clone,
    {
        let mut guard = S::pin(handle);
        let mut backoff = Backoff::new();
        loop {
            let r = self.find(key, &mut guard);
            if !r.found {
                return None;
            }
            let cur_node = unsafe { r.cur.deref() };
            let next = cur_node.next.fetch_or_tag(TAG_DELETED, AcqRel);
            if next.tag() & TAG_DELETED != 0 {
                backoff.cas_failed();
                continue; // another deleter won
            }
            let value = cur_node.value.clone();
            // Try an eager unlink; losers rely on later finds.
            if unsafe { &*r.prev }
                .compare_exchange(r.cur, next.with_tag(0), AcqRel, Acquire)
                .is_ok()
            {
                unsafe { guard.defer_destroy(r.cur) };
            }
            return Some(value);
        }
    }
}

impl<K, V, S> Default for HHSList<K, V, S>
where
    K: Ord,
    S: GuardedScheme,
{
    fn default() -> Self {
        Self::new()
    }
}

impl<K, V, S> Drop for HHSList<K, V, S> {
    fn drop(&mut self) {
        let mut cur = self.head.load_mut();
        while !cur.is_null() {
            let boxed = unsafe { Box::from_raw(cur.with_tag(0).as_raw()) };
            cur = boxed.next.load(Relaxed).with_tag(0);
        }
    }
}

impl<K, V, S> ConcurrentMap<K, V> for HHSList<K, V, S>
where
    K: Ord + Send + Sync,
    V: Clone + Send + Sync,
    S: GuardedScheme,
{
    type Handle = S::Handle;

    fn new() -> Self {
        HHSList::new()
    }

    fn handle(&self) -> S::Handle {
        S::handle()
    }

    fn get(&self, handle: &mut S::Handle, key: &K) -> Option<V> {
        self.get_impl(handle, key)
    }

    fn insert(&self, handle: &mut S::Handle, key: K, value: V) -> bool {
        self.insert_impl(handle, key, value)
    }

    fn remove(&self, handle: &mut S::Handle, key: &K) -> Option<V> {
        self.remove_impl(handle, key)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_utils;

    #[test]
    fn sequential_semantics_ebr() {
        test_utils::check_sequential::<HHSList<u64, u64, ebr::Ebr>>();
    }

    #[test]
    fn sequential_semantics_nr() {
        test_utils::check_sequential::<HHSList<u64, u64, nr::Nr>>();
    }

    #[test]
    fn sequential_semantics_pebr() {
        test_utils::check_sequential::<HHSList<u64, u64, pebr::Pebr>>();
    }

    #[test]
    fn concurrent_stress_ebr() {
        test_utils::check_concurrent::<HHSList<u64, u64, ebr::Ebr>>(8, 512);
    }

    #[test]
    fn concurrent_stress_pebr() {
        test_utils::check_concurrent::<HHSList<u64, u64, pebr::Pebr>>(8, 512);
    }

    #[test]
    fn striped_ebr() {
        test_utils::check_striped::<HHSList<u64, u64, ebr::Ebr>>(4, 64);
    }

    #[test]
    fn chain_unlink_reclaims_nodes() {
        // Build a chain, mark several adjacent nodes deleted via remove-race
        // simulation, then confirm a single find cleans them all up.
        let m: HHSList<u64, u64, ebr::Ebr> = HHSList::new();
        let mut h = ConcurrentMap::handle(&m);
        for k in 0..10 {
            assert!(m.insert(&mut h, k, k));
        }
        for k in 3..7 {
            assert_eq!(m.remove(&mut h, &k), Some(k));
        }
        for k in 0..10 {
            let expected = if (3..7).contains(&k) { None } else { Some(k) };
            assert_eq!(m.get(&mut h, &k), expected);
        }
    }
}
