//! Optimistic FIFO queue (Ladan-Mozes & Shavit 2004) for guard-based
//! schemes.
//!
//! The Michael–Scott queue pays two contended CASes per enqueue (install on
//! `tail.next`, then swing `tail`). The optimistic queue inverts the list:
//! `next` pointers run from the tail *backwards* toward the head and are
//! written before the single `tail` CAS; the forward `prev` pointers that
//! dequeuers follow are written afterwards with a plain store. A dequeuer
//! that arrives before the store finds a null `prev` and repairs the chain
//! by walking the authoritative `next` pointers ([`fix_list`]) — the
//! "optimism" is that this is rare.
//!
//! Two properties make the lazy `prev` chain safe here without the original
//! paper's tag machinery:
//!
//! * nodes are never reused (reclamation is the scheme's job), and
//! * `next` pointers are immutable after the tail CAS, so the value
//!   `fix_list` writes into any node's `prev` is unique — concurrent
//!   repairs race only to store the same pointer.
//!
//! `fix_list` may run past a concurrently-advancing head into retired
//! nodes; the pin makes those dereferences safe (and writing a retired
//! node's `prev` is harmless), while PEBR's ejection is handled by the
//! `validate()`-and-restart rule like every other guarded structure.
//!
//! [`fix_list`]: OptQueue::fix_list

use std::marker::PhantomData;
use std::sync::atomic::Ordering::{AcqRel, Acquire, Relaxed, Release};

use smr_common::{Atomic, Backoff, GuardedScheme, SchemeGuard, Shared};

struct Node<T> {
    /// Toward the head (older nodes); written once before the tail CAS.
    next: Atomic<Node<T>>,
    /// Toward the tail (newer nodes); written lazily after the tail CAS.
    prev: Atomic<Node<T>>,
    value: Option<T>,
}

/// A lock-free FIFO queue with single-CAS enqueue, guard-based flavor.
pub struct OptQueue<T, S> {
    head: Atomic<Node<T>>,
    tail: Atomic<Node<T>>,
    _marker: PhantomData<S>,
}

unsafe impl<T: Send + Sync, S> Send for OptQueue<T, S> {}
unsafe impl<T: Send + Sync, S> Sync for OptQueue<T, S> {}

impl<T, S> OptQueue<T, S>
where
    T: Send,
    S: GuardedScheme,
{
    /// Creates an empty queue (one sentinel node).
    pub fn new() -> Self {
        let sentinel = Shared::from_owned(Node {
            next: Atomic::null(),
            prev: Atomic::null(),
            value: None,
        });
        Self {
            head: Atomic::from(sentinel),
            tail: Atomic::from(sentinel),
            _marker: PhantomData,
        }
    }

    /// Creates a per-thread handle.
    pub fn handle(&self) -> S::Handle {
        S::handle()
    }

    /// Enqueues at the tail: one CAS, then an uncontended `prev` store.
    pub fn enqueue(&self, handle: &mut S::Handle, value: T) {
        let mut guard = S::pin(handle);
        let node = Shared::from_owned(Node {
            next: Atomic::null(),
            prev: Atomic::null(),
            value: Some(value),
        });
        let mut backoff = Backoff::new();
        loop {
            if !guard.validate() {
                guard.refresh();
                continue;
            }
            let tail = self.tail.load(Acquire);
            // The backward link is in place *before* the node is published,
            // so the next chain from any observed tail is always complete.
            unsafe { node.deref() }.next.store(tail, Relaxed);
            if self.tail.compare_exchange(tail, node, AcqRel, Acquire).is_ok() {
                // Optimistic forward link: a plain store. The old tail is
                // still protected by our pin even if a dequeuer retires it
                // concurrently, and a dequeuer arriving before this store
                // repairs the chain itself via fix_list.
                unsafe { tail.deref() }.prev.store(node, Release);
                return;
            }
            backoff.cas_failed();
        }
    }

    /// Dequeues from the head, repairing the `prev` chain when the
    /// optimistic store has not landed yet.
    pub fn dequeue(&self, handle: &mut S::Handle) -> Option<T> {
        let mut guard = S::pin(handle);
        let mut backoff = Backoff::new();
        loop {
            if !guard.validate() {
                guard.refresh();
                continue;
            }
            let head = self.head.load(Acquire);
            let tail = self.tail.load(Acquire);
            let prev = unsafe { head.deref() }.prev.load(Acquire);
            if head == tail {
                // Only the sentinel: empty. (A lagging prev is irrelevant.)
                return None;
            }
            if prev.is_null() {
                // The enqueuer's forward store has not landed; rebuild the
                // prev chain from the authoritative next pointers.
                self.fix_list(tail, head);
                continue;
            }
            if self.head.compare_exchange(head, prev, AcqRel, Acquire).is_ok() {
                // `prev` becomes the new sentinel; take its value.
                let value = unsafe { (*prev.as_raw()).value.take() };
                unsafe { guard.defer_destroy(head) };
                return value;
            }
            backoff.cas_failed();
        }
    }

    /// Walks the immutable `next` chain from `tail` toward `head`, writing
    /// each node's forward `prev` link. Stops at `head` (or at a node whose
    /// successor is unlinked past a concurrently-advanced head).
    fn fix_list(&self, tail: Shared<Node<T>>, head: Shared<Node<T>>) {
        let mut cur = tail;
        while !cur.is_null() && cur != head {
            let next = unsafe { cur.deref() }.next.load(Acquire);
            if next.is_null() {
                break;
            }
            unsafe { next.deref() }.prev.store(cur, Release);
            cur = next;
        }
    }
}

impl<T: Send, S: GuardedScheme> Default for OptQueue<T, S> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T, S> Drop for OptQueue<T, S> {
    fn drop(&mut self) {
        // Walk the authoritative next chain from the tail, but stop at the
        // current sentinel: the chain continues past it into *retired* old
        // sentinels (next links are immutable), and those already belong to
        // the reclamation scheme.
        let head = self.head.load_mut();
        let mut cur = self.tail.load_mut();
        while !cur.is_null() {
            let at_sentinel = cur == head;
            let node = unsafe { Box::from_raw(cur.as_raw()) };
            cur = node.next.load(Relaxed);
            if at_sentinel {
                break;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;
    use std::sync::Mutex;

    #[test]
    fn fifo_order() {
        let q: OptQueue<u64, ebr::Ebr> = OptQueue::new();
        let mut h = q.handle();
        for i in 0..100 {
            q.enqueue(&mut h, i);
        }
        for i in 0..100 {
            assert_eq!(q.dequeue(&mut h), Some(i));
        }
        assert_eq!(q.dequeue(&mut h), None);
    }

    #[test]
    fn interleaved_enqueue_dequeue() {
        let q: OptQueue<u64, ebr::Ebr> = OptQueue::new();
        let mut h = q.handle();
        for round in 0..50u64 {
            q.enqueue(&mut h, 2 * round);
            q.enqueue(&mut h, 2 * round + 1);
            assert_eq!(q.dequeue(&mut h), Some(round));
        }
        for round in 50..100u64 {
            assert_eq!(q.dequeue(&mut h), Some(round));
        }
        assert_eq!(q.dequeue(&mut h), None);
    }

    #[test]
    fn concurrent_no_loss_no_duplication() {
        let q: OptQueue<u64, ebr::Ebr> = OptQueue::new();
        let seen = Mutex::new(HashSet::new());
        std::thread::scope(|s| {
            for t in 0..4u64 {
                let q = &q;
                s.spawn(move || {
                    let mut h = q.handle();
                    for i in 0..1000 {
                        q.enqueue(&mut h, t * 10_000 + i);
                    }
                });
            }
            for _ in 0..4 {
                let q = &q;
                let seen = &seen;
                s.spawn(move || {
                    let mut h = q.handle();
                    let mut got = 0;
                    while got < 1000 {
                        if let Some(v) = q.dequeue(&mut h) {
                            assert!(seen.lock().unwrap().insert(v), "duplicate {v}");
                            got += 1;
                        }
                    }
                });
            }
        });
        assert_eq!(seen.lock().unwrap().len(), 4000);
    }

    #[test]
    fn works_under_pebr_too() {
        let q: OptQueue<u64, pebr::Pebr> = OptQueue::new();
        let mut h = q.handle();
        for i in 0..50 {
            q.enqueue(&mut h, i);
        }
        for i in 0..50 {
            assert_eq!(q.dequeue(&mut h), Some(i));
        }
    }
}
