//! Data structures under CDRC reference counting (the paper's **RC**).
//!
//! Traversals read uncounted snapshots under an EBR pin; link mutations
//! transfer or adjust strong counts, with decrements deferred through EBR.
//! The paper benchmarks RC on the list-shaped structures (and omits the
//! trees, whose descriptor cycles need weak references — footnote 12);
//! we implement the same subset.

mod hhs_list;
mod hm_list;

pub use hhs_list::HHSList;
pub use hm_list::HMList;

use cdrc::{Counted, Edges};
use smr_common::{Atomic, Shared};

/// List node with a counted next link.
pub(crate) struct Node<K, V> {
    pub(crate) next: Atomic<Counted<Node<K, V>>>,
    pub(crate) key: K,
    pub(crate) value: V,
}

unsafe impl<K: Send + Sync, V: Send + Sync> Send for Node<K, V> {}
unsafe impl<K: Send + Sync, V: Send + Sync> Sync for Node<K, V> {}

impl<K, V> Edges for Node<K, V> {
    fn edges(&self, out: &mut Vec<Shared<Counted<Self>>>) {
        let next = self.next.load(std::sync::atomic::Ordering::Relaxed).with_tag(0);
        if !next.is_null() {
            out.push(next);
        }
    }
}
