//! Harris–Michael list under CDRC reference counting.

use std::sync::atomic::Ordering::{AcqRel, Acquire, Relaxed};

use cdrc::{alloc, defer_decr, incr, Counted, LocalHandle};
use smr_common::tagged::TAG_DELETED;
use smr_common::{Atomic, Backoff, ConcurrentMap, Shared};

use super::Node;

type Ptr<K, V> = Shared<Counted<Node<K, V>>>;

/// Harris–Michael list, CDRC flavor.
pub struct HMList<K, V> {
    head: Atomic<Counted<Node<K, V>>>,
}

unsafe impl<K: Send + Sync, V: Send + Sync> Send for HMList<K, V> {}
unsafe impl<K: Send + Sync, V: Send + Sync> Sync for HMList<K, V> {}

struct FindResult<K, V> {
    found: bool,
    prev: *const Atomic<Counted<Node<K, V>>>,
    cur: Ptr<K, V>,
}

impl<K, V> HMList<K, V>
where
    K: Ord + Send + Sync + 'static,
    V: Clone + Send + Sync + 'static,
{
    /// Creates an empty list.
    pub fn new() -> Self {
        Self {
            head: Atomic::null(),
        }
    }

    fn find(&self, key: &K, guard: &cdrc::Guard<'_>) -> FindResult<K, V> {
        'retry: loop {
            let mut prev: *const Atomic<Counted<Node<K, V>>> = &self.head;
            let mut cur = unsafe { &*prev }.load(Acquire);
            loop {
                if cur.is_null() {
                    return FindResult {
                        found: false,
                        prev,
                        cur,
                    };
                }
                let cur_node = unsafe { cur.deref() };
                let next = cur_node.next.load(Acquire);
                if next.tag() & TAG_DELETED != 0 {
                    let next_clean = next.with_tag(0);
                    // The prev link will own a count on next.
                    if !next_clean.is_null() {
                        unsafe { incr(next_clean) };
                    }
                    match unsafe { &*prev }.compare_exchange(cur, next_clean, AcqRel, Acquire) {
                        Ok(_) => {
                            // prev's count on cur is released.
                            unsafe { defer_decr(guard, cur) };
                            cur = next_clean;
                            continue;
                        }
                        Err(_) => {
                            if !next_clean.is_null() {
                                unsafe { defer_decr(guard, next_clean) };
                            }
                            continue 'retry;
                        }
                    }
                }
                match cur_node.key.cmp(key) {
                    std::cmp::Ordering::Less => {
                        prev = &cur_node.next;
                        cur = next;
                    }
                    std::cmp::Ordering::Equal => {
                        return FindResult {
                            found: true,
                            prev,
                            cur,
                        }
                    }
                    std::cmp::Ordering::Greater => {
                        return FindResult {
                            found: false,
                            prev,
                            cur,
                        }
                    }
                }
            }
        }
    }

    pub(crate) fn get_impl(&self, handle: &mut LocalHandle, key: &K) -> Option<V> {
        let guard = handle.pin();
        let r = self.find(key, &guard);
        if r.found {
            Some(unsafe { r.cur.deref() }.value.clone())
        } else {
            None
        }
    }

    pub(crate) fn insert_impl(&self, handle: &mut LocalHandle, key: K, value: V) -> bool {
        let guard = handle.pin();
        // The node starts with one count: the eventual prev link.
        let node = alloc(Node {
            next: Atomic::null(),
            key,
            value,
        });
        let node_ref = unsafe { node.deref() };
        let mut backoff = Backoff::new();
        loop {
            let r = self.find(&node_ref.key, &guard);
            if r.found {
                // Never shared: release our reference (cascade frees it).
                unsafe { defer_decr(&guard, node) };
                return false;
            }
            // node.next takes a count on cur.
            let old_next = node_ref.next.load(Relaxed);
            if old_next != r.cur {
                if !r.cur.is_null() {
                    unsafe { incr(r.cur) };
                }
                node_ref.next.store(r.cur, Relaxed);
                if !old_next.with_tag(0).is_null() {
                    unsafe { defer_decr(&guard, old_next.with_tag(0)) };
                }
            }
            match unsafe { &*r.prev }.compare_exchange(r.cur, node, AcqRel, Acquire) {
                Ok(_) => {
                    // prev released its count on cur; node.next now owns one.
                    if !r.cur.is_null() {
                        unsafe { defer_decr(&guard, r.cur) };
                    }
                    return true;
                }
                Err(_) => {
                    backoff.cas_failed();
                    continue;
                }
            }
        }
    }

    pub(crate) fn remove_impl(&self, handle: &mut LocalHandle, key: &K) -> Option<V> {
        let guard = handle.pin();
        let mut backoff = Backoff::new();
        loop {
            let r = self.find(key, &guard);
            if !r.found {
                return None;
            }
            let cur_node = unsafe { r.cur.deref() };
            let next = cur_node.next.fetch_or_tag(TAG_DELETED, AcqRel);
            if next.tag() & TAG_DELETED != 0 {
                backoff.cas_failed();
                continue;
            }
            let value = cur_node.value.clone();
            let next_clean = next.with_tag(0);
            if !next_clean.is_null() {
                unsafe { incr(next_clean) };
            }
            if unsafe { &*r.prev }
                .compare_exchange(r.cur, next_clean, AcqRel, Acquire)
                .is_ok()
            {
                unsafe { defer_decr(&guard, r.cur) };
            } else if !next_clean.is_null() {
                unsafe { defer_decr(&guard, next_clean) };
            }
            return Some(value);
        }
    }
}

impl<K, V> Default for HMList<K, V>
where
    K: Ord + Send + Sync + 'static,
    V: Clone + Send + Sync + 'static,
{
    fn default() -> Self {
        Self::new()
    }
}

impl<K, V> Drop for HMList<K, V> {
    fn drop(&mut self) {
        // Deferred decrements targeting these nodes may still be queued in
        // EBR bags, so the list cannot free them directly; it releases its
        // own (head) reference through the same deferred path and lets the
        // cascade finish the job.
        drop_list_via_cascade(&self.head);
    }
}

pub(crate) fn drop_list_via_cascade<K, V>(head: &Atomic<Counted<Node<K, V>>>) {
    let h = unsafe { &*(head as *const Atomic<Counted<Node<K, V>>>) }.load(Relaxed);
    let h = h.with_tag(0);
    if !h.is_null() {
        let mut handle = cdrc::default_collector().register();
        let guard = handle.pin();
        unsafe { defer_decr(&guard, h) };
    }
}

impl<K, V> ConcurrentMap<K, V> for HMList<K, V>
where
    K: Ord + Send + Sync + 'static,
    V: Clone + Send + Sync + 'static,
{
    type Handle = LocalHandle;

    fn new() -> Self {
        HMList::new()
    }

    fn handle(&self) -> LocalHandle {
        cdrc::default_collector().register()
    }

    fn get(&self, handle: &mut LocalHandle, key: &K) -> Option<V> {
        self.get_impl(handle, key)
    }

    fn insert(&self, handle: &mut LocalHandle, key: K, value: V) -> bool {
        self.insert_impl(handle, key, value)
    }

    fn remove(&self, handle: &mut LocalHandle, key: &K) -> Option<V> {
        self.remove_impl(handle, key)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_utils;

    #[test]
    fn sequential_semantics() {
        test_utils::check_sequential::<HMList<u64, u64>>();
    }

    #[test]
    fn concurrent_stress() {
        test_utils::check_concurrent::<HMList<u64, u64>>(8, 512);
    }

    #[test]
    fn striped() {
        test_utils::check_striped::<HMList<u64, u64>>(4, 64);
    }
}
